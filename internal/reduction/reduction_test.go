package reduction

import (
	"math"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/fd"
	"repro/internal/graph"
	"repro/internal/rel"
)

// exactRRFreq builds the exact RRFreq oracle (full operation space).
func exactRRFreq(singleton bool) RRFreqOracle {
	return func(p Problem) (float64, error) {
		inst := core.NewInstance(p.DB, p.Sigma)
		r, err := inst.RRFreq(singleton, 0, inst.EntailPred(p.Query, cq.Tuple{}))
		if err != nil {
			return 0, err
		}
		f, _ := r.Float64()
		return f, nil
	}
}

func TestHColoringConstructionShape(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	p := HColoring(g)
	// 2 V-facts per node + 2 E-facts + T(1).
	if p.DB.Len() != 3*2+2+1 {
		t.Fatalf("|D_G| = %d", p.DB.Len())
	}
	if p.Sigma.Classify().String() != "primary keys" {
		t.Fatalf("Σ class = %v", p.Sigma.Classify())
	}
	inst := core.NewInstance(p.DB, p.Sigma)
	// 3^{|V|} candidate repairs.
	if got := inst.CountCandidateRepairs(false); got.Int64() != 27 {
		t.Fatalf("|CORep| = %v, want 27", got)
	}
}

// TestHColoringTuringReduction validates Lemma B.1 end to end:
// HOM(G) computed through the exact OCQA oracle equals |hom(G, H)|.
func TestHColoringTuringReduction(t *testing.T) {
	h := graph.HardnessH()
	rng := rand.New(rand.NewSource(103))
	oracle := exactRRFreq(false)
	for trial := 0; trial < 12; trial++ {
		g := graph.RandomGraph(rng, 2+rng.Intn(4), 0.5)
		got, err := HOMCount(g, oracle)
		if err != nil {
			t.Fatal(err)
		}
		want := graph.CountHomomorphisms(g, h)
		wantF, _ := new(big.Float).SetInt(want).Float64()
		if math.Abs(got-wantF) > 1e-6*math.Max(1, wantF) {
			t.Fatalf("trial %d: HOM = %v, |hom| = %v", trial, got, want)
		}
	}
}

// TestHColoringAgreesAcrossGenerators verifies the equalities the item
// (1) proofs of Theorems 6.1 and 7.1 rely on: on D_G, rrfreq = srfreq =
// P_{uo} (the chain is uniform over sequences by symmetry).
func TestHColoringAgreesAcrossGenerators(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	p := HColoring(g)
	inst := core.NewInstance(p.DB, p.Sigma)
	pred := inst.EntailPred(p.Query, cq.Tuple{})
	rr, err := inst.RRFreq(false, 0, pred)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := inst.SRFreq(false, 0, pred)
	if err != nil {
		t.Fatal(err)
	}
	uo, err := inst.ProbUO(false, 0, pred)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Cmp(sr) != 0 || rr.Cmp(uo) != 0 {
		t.Fatalf("rrfreq=%s srfreq=%s uo=%s must coincide on D_G",
			rr.RatString(), sr.RatString(), uo.RatString())
	}
}

func TestPos2DNFCountSat(t *testing.T) {
	// φ = (x0 ∧ x1): satisfied iff both true: 1 of 4 assignments...
	// plus x2 free if Vars=2? Here Vars=2: exactly 1.
	f := Pos2DNF{Vars: 2, Clauses: [][2]int{{0, 1}}}
	if got := f.CountSat(); got != 1 {
		t.Fatalf("CountSat = %d, want 1", got)
	}
	// φ = x0∧x0 ∨ x1∧x1 over 2 vars: x0 ∨ x1: 3 of 4.
	f2 := Pos2DNF{Vars: 2, Clauses: [][2]int{{0, 0}, {1, 1}}}
	if got := f2.CountSat(); got != 3 {
		t.Fatalf("CountSat = %d, want 3", got)
	}
	// Empty formula: no satisfying assignments.
	f3 := Pos2DNF{Vars: 3}
	if got := f3.CountSat(); got != 0 {
		t.Fatalf("CountSat = %d, want 0", got)
	}
}

// TestPos2DNFTuringReduction validates the Appendix E reduction:
// SAT(φ) via the exact rrfreq¹ oracle equals the brute-force count.
func TestPos2DNFTuringReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	oracle := exactRRFreq(true)
	for trial := 0; trial < 12; trial++ {
		f := RandomPos2DNF(2+rng.Intn(3), 1+rng.Intn(4), rng.Intn)
		got, err := SATCount(f, oracle)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(f.CountSat())
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("trial %d: SAT = %v, want %v (φ=%+v)", trial, got, want, f)
		}
	}
}

// TestPos2DNFGeneratorEqualities validates the equalities behind
// Theorems E.8(1) and E.11: on D_φ, rrfreq¹ = srfreq¹ = P_{M^{uo,1}}.
func TestPos2DNFGeneratorEqualities(t *testing.T) {
	f := Pos2DNF{Vars: 3, Clauses: [][2]int{{0, 1}, {1, 2}}}
	p := Pos2DNFProblem(f)
	inst := core.NewInstance(p.DB, p.Sigma)
	pred := inst.EntailPred(p.Query, cq.Tuple{})
	rr, err := inst.RRFreq(true, 0, pred)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := inst.SRFreq(true, 0, pred)
	if err != nil {
		t.Fatal(err)
	}
	uo, err := inst.ProbUO(true, 0, pred)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Cmp(sr) != 0 || rr.Cmp(uo) != 0 {
		t.Fatalf("rrfreq¹=%s srfreq¹=%s uo¹=%s must coincide on D_φ",
			rr.RatString(), sr.RatString(), uo.RatString())
	}
	// And the value is |sat| / 2^3 = 3/8: assignments with (x0∧x1) or
	// (x1∧x2): {110, 111, 011} = 3.
	if rr.Cmp(big.NewRat(3, 8)) != 0 {
		t.Fatalf("rrfreq¹ = %s, want 3/8", rr.RatString())
	}
}

func TestPos2DNFRepairCount(t *testing.T) {
	f := Pos2DNF{Vars: 4, Clauses: [][2]int{{0, 1}}}
	p := Pos2DNFProblem(f)
	inst := core.NewInstance(p.DB, p.Sigma)
	if got := inst.CountCandidateRepairs(true); got.Int64() != 16 {
		t.Fatalf("|CORep^1| = %v, want 2^4", got)
	}
}

// TestVizingConflictGraphIsomorphic validates Lemma B.6: the conflict
// graph of the Vizing database is isomorphic to the source graph under
// the node-to-fact mapping.
func TestVizingConflictGraphIsomorphic(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	for trial := 0; trial < 15; trial++ {
		g := graph.RandomConnectedBoundedDegreeGraph(rng, 2+rng.Intn(8), 4, 20)
		vp := Vizing(g)
		inst := core.NewInstance(vp.DB, vp.Sigma)
		cg := inst.ConflictGraph()
		if !graph.EqualUnderMapping(g, cg, vp.NodeFact) {
			t.Fatalf("trial %d: CG(D_G, Σ_K) not isomorphic to G", trial)
		}
	}
}

// TestVizingRepairCounts validates Proposition 5.5 via Lemma 5.4:
// |CORep(D_G,Σ_K)| = |IS(G)| and |CORep^1| = |IS≠∅(G)| for connected G.
func TestVizingRepairCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomConnectedBoundedDegreeGraph(rng, 2+rng.Intn(7), 3, 10)
		vp := Vizing(g)
		inst := core.NewInstance(vp.DB, vp.Sigma)
		if got, want := inst.CountCandidateRepairs(false), g.CountIndependentSets(); got.Cmp(want) != 0 {
			t.Fatalf("trial %d: |CORep| = %v, |IS(G)| = %v", trial, got, want)
		}
		if got, want := inst.CountCandidateRepairs(true), g.CountNonEmptyIndependentSets(); got.Cmp(want) != 0 {
			t.Fatalf("trial %d: |CORep^1| = %v, |IS≠∅(G)| = %v", trial, got, want)
		}
	}
}

func TestVizingSigmaIsKeys(t *testing.T) {
	g := graph.RandomConnectedBoundedDegreeGraph(rand.New(rand.NewSource(127)), 5, 3, 10)
	vp := Vizing(g)
	if cls := vp.Sigma.Classify().String(); cls != "keys" {
		t.Fatalf("Σ_K class = %q, want keys", cls)
	}
}

// TestFDTransferCount validates Lemma 5.6's counting identity and the
// query property, on Vizing databases (which are non-trivially
// Σ_K-connected by construction).
func TestFDTransferCount(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 8; trial++ {
		g := graph.RandomConnectedBoundedDegreeGraph(rng, 2+rng.Intn(6), 3, 8)
		vp := Vizing(g)
		base := core.NewInstance(vp.DB, vp.Sigma)
		tp := FDTransfer(vp.DB, vp.Sigma)
		lifted := core.NewInstance(tp.DB, tp.Sigma)

		for _, singleton := range []bool{false, true} {
			baseCount := base.CountCandidateRepairs(singleton)
			liftCount := lifted.CountCandidateRepairs(singleton)
			want := new(big.Int).Add(baseCount, big.NewInt(1))
			if liftCount.Cmp(want) != 0 {
				t.Fatalf("trial %d singleton=%v: |CORep(D_F)| = %v, want %v+1",
					trial, singleton, liftCount, baseCount)
			}
			// rrfreq(Q_F) = 1/(|CORep(D,Σ_K)|+1).
			r, err := lifted.RRFreq(singleton, 0, lifted.EntailPred(tp.Query, cq.Tuple{}))
			if err != nil {
				t.Fatal(err)
			}
			wantR := new(big.Rat).SetFrac(big.NewInt(1), want)
			if r.Cmp(wantR) != 0 {
				t.Fatalf("trial %d singleton=%v: rrfreq = %s, want %s",
					trial, singleton, r.RatString(), wantR.RatString())
			}
		}
	}
}

func TestFDTransferStarConflictsWithAll(t *testing.T) {
	g := graph.RandomConnectedBoundedDegreeGraph(rand.New(rand.NewSource(137)), 4, 3, 6)
	vp := Vizing(g)
	tp := FDTransfer(vp.DB, vp.Sigma)
	for _, f := range tp.DB.Facts() {
		if f.Equal(tp.StarFact) {
			continue
		}
		if !tp.Sigma.InConflict(tp.StarFact, f) {
			t.Fatalf("f* does not conflict with %v", f)
		}
	}
	// Σ_F must be proper FDs, not keys.
	if cls := tp.Sigma.Classify().String(); cls != "FDs" {
		t.Fatalf("Σ_F class = %q, want FDs", cls)
	}
}

func TestFDTransferFreshConstants(t *testing.T) {
	// Databases already containing "@a" must still get fresh constants.
	d := rel.NewDatabase(
		rel.NewFact("R", "@a", "x"),
		rel.NewFact("R", "@a", "y"),
	)
	sch := rel.MustSchema(rel.NewRelation("R", 2))
	sigmaK := fd.MustSet(sch, fd.New("R", []int{0}, []int{1}))
	tp := FDTransfer(d, sigmaK)
	if tp.StarFact.Arg(0) == "@a" {
		t.Fatal("star constant collides with dom(D)")
	}
	lifted := core.NewInstance(tp.DB, tp.Sigma)
	base := core.NewInstance(d, sigmaK)
	want := new(big.Int).Add(base.CountCandidateRepairs(false), big.NewInt(1))
	if got := lifted.CountCandidateRepairs(false); got.Cmp(want) != 0 {
		t.Fatalf("|CORep(D_F)| = %v, want %v", got, want)
	}
}

// PropD6 construction tests.
func TestPropD6Shape(t *testing.T) {
	p := PropD6(5)
	if p.DB.Len() != 5 {
		t.Fatalf("|D_5| = %d", p.DB.Len())
	}
	inst := core.NewInstance(p.DB, p.Sigma)
	// R(0,0,0) conflicts with each R(0,1,i): star conflict graph.
	if got := len(inst.ConflictPairs()); got != 4 {
		t.Fatalf("conflict pairs = %d, want 4", got)
	}
	pr, err := inst.ProbUO(false, 0, inst.EntailPred(p.Query, cq.Tuple{}))
	if err != nil {
		t.Fatal(err)
	}
	if pr.Sign() <= 0 {
		t.Fatal("P must be positive")
	}
	bound := big.NewRat(1, 16) // 1/2^{5-1}
	if pr.Cmp(bound) > 0 {
		t.Fatalf("P = %s exceeds 1/2^{n-1} = %s", pr.RatString(), bound.RatString())
	}
}

func TestPropD6PanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PropD6(0)
}

// TestPropD6SingletonIsWellBehaved contrasts Theorem 7.5: under
// M^{uo,1} the same family has probability ≥ 1/(e‖D‖)^‖Q‖ — the
// singleton restriction removes the exponential decay.
func TestPropD6SingletonIsWellBehaved(t *testing.T) {
	for n := 2; n <= 7; n++ {
		p := PropD6(n)
		inst := core.NewInstance(p.DB, p.Sigma)
		pr, err := inst.ProbUO(true, 0, inst.EntailPred(p.Query, cq.Tuple{}))
		if err != nil {
			t.Fatal(err)
		}
		f, _ := pr.Float64()
		bound := math.Pow(math.E*float64(n), -1) // ‖Q‖ = 1 atom
		if f < bound {
			t.Fatalf("n=%d: P_uo,1 = %v below Lemma D.8 bound %v", n, f, bound)
		}
	}
}
