// Package reduction implements the paper's hardness and
// inapproximability constructions as executable artefacts:
//
//   - the ♯H-Coloring polynomial-time Turing reduction of §B.1 (behind
//     the ♯P-hardness of Theorems 5.1(1), 6.1(1), 7.1(1));
//   - the ♯Pos2DNF reduction of Appendix E (Theorems E.1(1), E.8(1),
//     E.11);
//   - the Vizing edge-colouring database of Proposition 5.5, whose
//     conflict graph is isomorphic to a given bounded-degree graph (so
//     counting its repairs counts independent sets);
//   - the FD-transfer construction of Lemma 5.6 (and its singleton
//     analogue, Lemma E.7), which adds one universally conflicting fact;
//   - the database family of Proposition D.6, witnessing exponentially
//     small M^uo probabilities under general FDs.
//
// Each construction packages the database, constraints and query, and
// the experiments validate the defining equalities exactly.
package reduction

import (
	"fmt"

	"repro/internal/cq"
	"repro/internal/fd"
	"repro/internal/graph"
	"repro/internal/rel"
)

// Problem bundles the artefacts of a reduction target instance.
type Problem struct {
	Schema *rel.Schema
	Sigma  *fd.Set
	DB     *rel.Database
	Query  *cq.Query
}

// --- ♯H-Coloring (§B.1) -------------------------------------------------

// HColoringSchema returns the schema {V/2, E/2, T/1} of §B.1.
func HColoringSchema() *rel.Schema {
	return rel.MustSchema(
		rel.NewRelation("V", 2),
		rel.NewRelation("E", 2),
		rel.NewRelation("T", 1),
	)
}

// HColoring builds the §B.1 instance for an undirected graph G:
// Σ = {V: A → B} (a primary key on the binary relation V), the Boolean
// CQ Ans() :- E(x,y), V(x,z), V(y,z), T(z), and the database
// D_G = {V(u,0), V(u,1) | u ∈ V_G} ∪ {E(u,v) | {u,v} ∈ E_G} ∪ {T(1)}.
func HColoring(g *graph.Graph) Problem {
	sch := HColoringSchema()
	sigma := fd.MustSet(sch, fd.New("V", []int{0}, []int{1}))
	q := cq.MustNew(nil,
		cq.NewAtom("E", cq.Var("x"), cq.Var("y")),
		cq.NewAtom("V", cq.Var("x"), cq.Var("z")),
		cq.NewAtom("V", cq.Var("y"), cq.Var("z")),
		cq.NewAtom("T", cq.Var("z")),
	)
	var facts []rel.Fact
	for u := 0; u < g.N(); u++ {
		facts = append(facts,
			rel.NewFact("V", nodeName(u), "0"),
			rel.NewFact("V", nodeName(u), "1"),
		)
	}
	for _, e := range g.Edges() {
		facts = append(facts, rel.NewFact("E", nodeName(e[0]), nodeName(e[1])))
	}
	facts = append(facts, rel.NewFact("T", "1"))
	return Problem{Schema: sch, Sigma: sigma, DB: rel.NewDatabase(facts...), Query: q}
}

func nodeName(u int) string { return fmt.Sprintf("n%d", u) }

// RRFreqOracle answers the RRFreq(Σ,Q) problem on a database: it
// returns rrfreq_{Σ,Q}(D, ()) for the Boolean query of the reduction.
// Exact engines and FPRAS estimators both fit this shape, matching the
// paper's oracle-based Turing reductions.
type RRFreqOracle func(Problem) (float64, error)

// HOMCount is algorithm HOM of §B.1: given G and an oracle for
// RRFreq(Σ,Q), it returns 3^{|V_G|} · (1 − r), which equals
// |hom(G, H)| for the hardness target H (Lemma B.1).
func HOMCount(g *graph.Graph, oracle RRFreqOracle) (float64, error) {
	p := HColoring(g)
	r, err := oracle(p)
	if err != nil {
		return 0, err
	}
	pow := 1.0
	for i := 0; i < g.N(); i++ {
		pow *= 3
	}
	return pow * (1 - r), nil
}

// --- ♯Pos2DNF (Appendix E) ----------------------------------------------

// Pos2DNF is a positive 2DNF formula: a disjunction of conjunctions of
// two (not necessarily distinct) positive variables, over variables
// 0..Vars-1.
type Pos2DNF struct {
	Vars    int
	Clauses [][2]int
}

// CountSat counts the satisfying assignments by enumeration (Vars ≤ 30).
func (f Pos2DNF) CountSat() int64 {
	if f.Vars > 30 {
		panic("reduction: formula too large for exact counting")
	}
	var count int64
	for mask := 0; mask < 1<<uint(f.Vars); mask++ {
		for _, c := range f.Clauses {
			if mask&(1<<uint(c[0])) != 0 && mask&(1<<uint(c[1])) != 0 {
				count++
				break
			}
		}
	}
	return count
}

// Pos2DNFSchema returns the schema {V/2, C/2, T/1} of Appendix E.
func Pos2DNFSchema() *rel.Schema {
	return rel.MustSchema(
		rel.NewRelation("V", 2),
		rel.NewRelation("C", 2),
		rel.NewRelation("T", 1),
	)
}

// Pos2DNFProblem builds the Appendix E instance for φ: Σ = {V: A → B},
// Q = Ans() :- C(x,y), V(x,z), V(y,z), T(z), and
// D_φ = {V(c_x,0), V(c_x,1) | x ∈ var(φ)} ∪ {C(c_x,c_y) | (x∧y) ∈ φ} ∪ {T(1)}.
// Under singleton operations, rrfreq¹_{Σ,Q}(D_φ, ()) = |sat(φ)| / 2^{|var(φ)|}.
func Pos2DNFProblem(f Pos2DNF) Problem {
	sch := Pos2DNFSchema()
	sigma := fd.MustSet(sch, fd.New("V", []int{0}, []int{1}))
	q := cq.MustNew(nil,
		cq.NewAtom("C", cq.Var("x"), cq.Var("y")),
		cq.NewAtom("V", cq.Var("x"), cq.Var("z")),
		cq.NewAtom("V", cq.Var("y"), cq.Var("z")),
		cq.NewAtom("T", cq.Var("z")),
	)
	var facts []rel.Fact
	for x := 0; x < f.Vars; x++ {
		facts = append(facts,
			rel.NewFact("V", varName(x), "0"),
			rel.NewFact("V", varName(x), "1"),
		)
	}
	for _, c := range f.Clauses {
		facts = append(facts, rel.NewFact("C", varName(c[0]), varName(c[1])))
	}
	facts = append(facts, rel.NewFact("T", "1"))
	return Problem{Schema: sch, Sigma: sigma, DB: rel.NewDatabase(facts...), Query: q}
}

func varName(x int) string { return fmt.Sprintf("x%d", x) }

// RandomPos2DNF samples a formula with the given number of variables
// and clauses, using the provided pseudo-random indices function (so
// callers control determinism without importing math/rand here).
func RandomPos2DNF(vars, clauses int, intn func(int) int) Pos2DNF {
	f := Pos2DNF{Vars: vars}
	for i := 0; i < clauses; i++ {
		f.Clauses = append(f.Clauses, [2]int{intn(vars), intn(vars)})
	}
	return f
}

// SATCount is algorithm SAT of Appendix E: 2^{|var(φ)|} · rrfreq¹.
func SATCount(f Pos2DNF, oracle RRFreqOracle) (float64, error) {
	p := Pos2DNFProblem(f)
	r, err := oracle(p)
	if err != nil {
		return 0, err
	}
	pow := 1.0
	for i := 0; i < f.Vars; i++ {
		pow *= 2
	}
	return pow * r, nil
}

// --- Vizing database (Proposition 5.5) -----------------------------------

// VizingProblem carries the Proposition 5.5 construction: a database
// over {R/(Δ+1)} with keys Σ_K = {R: A_i → att(R) | i ∈ [Δ+1]} whose
// conflict graph is isomorphic to the source graph (Lemma B.6), so
// |CORep(D_G, Σ_K)| = |IS(G)| by Lemma 5.4.
type VizingProblem struct {
	Problem
	// G is the source graph; the fact with database index NodeFact[u]
	// encodes node u.
	G        *graph.Graph
	NodeFact []int
}

// Vizing builds the Proposition 5.5 database from a loop-free graph of
// maximum degree Δ, using the Misra–Gries (Δ+1)-edge colouring: the
// fact of node v carries, at position i, the name of v's colour-i edge
// if it has one, and a fresh constant otherwise.
func Vizing(g *graph.Graph) VizingProblem {
	delta := g.MaxDegree()
	arity := delta + 1
	if arity < 1 {
		arity = 1
	}
	sch := rel.MustSchema(rel.NewRelation("R", arity))
	var fds []fd.FD
	for i := 0; i < arity; i++ {
		rest := make([]int, 0, arity-1)
		for j := 0; j < arity; j++ {
			if j != i {
				rest = append(rest, j)
			}
		}
		fds = append(fds, fd.New("R", []int{i}, rest))
	}
	sigma := fd.MustSet(sch, fds...)
	ec := graph.ColorEdgesMisraGries(g)
	facts := make([]rel.Fact, g.N())
	for v := 0; v < g.N(); v++ {
		args := make([]string, arity)
		for i := range args {
			args[i] = fmt.Sprintf("fresh_%d_%d", v, i)
		}
		for _, u := range g.Neighbors(v) {
			c := ec.ColorOf(v, u)
			args[c-1] = edgeName(v, u)
		}
		facts[v] = rel.NewFact("R", args...)
	}
	db := rel.NewDatabase(facts...)
	nodeFact := make([]int, g.N())
	for v, f := range facts {
		nodeFact[v] = db.IndexOf(f)
	}
	// A Boolean query asking for any surviving fact; not used by the
	// counting argument but convenient for query experiments.
	vars := make([]cq.Term, arity)
	for i := range vars {
		vars[i] = cq.Var(fmt.Sprintf("v%d", i))
	}
	q := cq.MustNew(nil, cq.NewAtom("R", vars...))
	return VizingProblem{
		Problem:  Problem{Schema: sch, Sigma: sigma, DB: db, Query: q},
		G:        g,
		NodeFact: nodeFact,
	}
}

func edgeName(u, v int) string {
	if u > v {
		u, v = v, u
	}
	return fmt.Sprintf("e%d_%d", u, v)
}

// --- FD transfer (Lemma 5.6 / Lemma E.7) ----------------------------------

// FDTransferProblem carries the Lemma 5.6 construction.
type FDTransferProblem struct {
	Problem
	// StarFact is the universally conflicting fact f* = R'(a, a, ..., a).
	StarFact rel.Fact
}

// FDTransfer lifts a database D over {R/n} with a key set Σ_K to a
// database D_F over {R'/(n+2)} with the FD set
// Σ_F = {R': X⁺ → Y⁺ | R: X → Y ∈ Σ_K} ∪ {R': A → B} (attributes
// shifted by two) and the extra fact f* = R'(a, a, ..., a), which
// conflicts with every other fact via A → B. For non-trivially
// Σ_K-connected D:
//
//	|CORep(D_F, Σ_F)| = |CORep(D, Σ_K)| + 1,
//
// and the atomic query Q_F = Ans() :- R'(x, x, ..., x) has
// rrfreq_{Σ_F,Q_F}(D_F, ()) = 1 / (|CORep(D, Σ_K)| + 1); likewise for
// the singleton-operation variants (Lemma E.7).
func FDTransfer(d *rel.Database, sigmaK *fd.Set) FDTransferProblem {
	rels := sigmaK.Schema().Relations()
	if len(rels) != 1 {
		panic("reduction: FDTransfer requires a single-relation schema {R}")
	}
	n := rels[0].Arity()
	m := n + 2
	sch := rel.MustSchema(rel.NewRelation("Rp", m))
	var fds []fd.FD
	for _, phi := range sigmaK.FDs() {
		lhs := shift(phi.LHS, 2)
		rhs := shift(phi.RHS, 2)
		fds = append(fds, fd.New("Rp", lhs, rhs))
	}
	fds = append(fds, fd.New("Rp", []int{0}, []int{1}))
	sigmaF := fd.MustSet(sch, fds...)

	// Pick the constants a, b outside dom(D).
	dom := make(map[string]bool)
	for _, c := range d.ActiveDomain() {
		dom[c] = true
	}
	a, b := "@a", "@b"
	for dom[a] {
		a += "'"
	}
	for dom[b] || b == a {
		b += "'"
	}
	var facts []rel.Fact
	for _, f := range d.Facts() {
		args := append([]string{a, b}, f.Args...)
		facts = append(facts, rel.NewFact("Rp", args...))
	}
	starArgs := make([]string, m)
	for i := range starArgs {
		starArgs[i] = a
	}
	star := rel.NewFact("Rp", starArgs...)
	facts = append(facts, star)

	terms := make([]cq.Term, m)
	for i := range terms {
		terms[i] = cq.Var("x")
	}
	q := cq.MustNew(nil, cq.NewAtom("Rp", terms...))
	return FDTransferProblem{
		Problem:  Problem{Schema: sch, Sigma: sigmaF, DB: rel.NewDatabase(facts...), Query: q},
		StarFact: star,
	}
}

func shift(xs []int, by int) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = x + by
	}
	return out
}

// --- Proposition D.6 family ------------------------------------------------

// PropD6 builds the n-fact database D_n = {R(0,0,0)} ∪ {R(0,1,i)}
// (i < n−1) with Σ = {R: A1 → A2} and Q = Ans() :- R(0,0,0), for which
// 0 < P_{M^uo,Q}(D_n, ()) ≤ 1/2^{n−1}: the witness that the
// Monte-Carlo route to an FPRAS fails for FDs under M^uo.
func PropD6(n int) Problem {
	if n < 1 {
		panic("reduction: PropD6 needs n ≥ 1")
	}
	sch := rel.MustSchema(rel.NewRelation("R", 3))
	sigma := fd.MustSet(sch, fd.New("R", []int{0}, []int{1}))
	q := cq.MustNew(nil, cq.NewAtom("R", cq.Const("0"), cq.Const("0"), cq.Const("0")))
	facts := []rel.Fact{rel.NewFact("R", "0", "0", "0")}
	for i := 1; i < n; i++ {
		facts = append(facts, rel.NewFact("R", "0", "1", fmt.Sprintf("%d", i)))
	}
	return Problem{Schema: sch, Sigma: sigma, DB: rel.NewDatabase(facts...), Query: q}
}
