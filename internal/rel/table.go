package rel

// factTable is the open-addressing hash index from an interned fact row
// (relation id + argument ids) to its fact index. It replaces the old
// map[string]int keyed on escaped Fact.Key() strings: membership tests
// hash a handful of int32s with no per-lookup allocation, and the slot
// array round-trips through the v2 snapshot codec so a warm boot does
// not have to rehash the instance.
type factTable struct {
	// slots holds fact index + 1; 0 marks an empty slot. Length is a
	// power of two ≥ 2·n, so linear probing terminates.
	slots []int32
	mask  uint64
}

// tableSize returns the power-of-two slot count for n facts.
func tableSize(n int) int {
	size := 8
	for size < 2*n {
		size <<= 1
	}
	return size
}

func newFactTable(n int) factTable {
	size := tableSize(n)
	return factTable{slots: make([]int32, size), mask: uint64(size - 1)}
}

// factTableFromSlots adopts a precomputed slot array (snapshot decode).
// The length must be a power of two.
func factTableFromSlots(slots []int32) (factTable, bool) {
	n := len(slots)
	if n == 0 || n&(n-1) != 0 {
		return factTable{}, false
	}
	return factTable{slots: slots, mask: uint64(n - 1)}, true
}

// hashRow hashes an interned fact row. FNV-style combining with a
// final avalanche so that power-of-two masking sees well-mixed bits.
func hashRow(rid int32, args []int32) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	h = (h ^ uint64(uint32(rid))) * prime
	for _, a := range args {
		h = (h ^ uint64(uint32(a))) * prime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// insert records fact index i under its row hash. The caller guarantees
// the row is not already present (constructors insert each distinct
// fact exactly once).
func (t *factTable) insert(d *Database, i int) {
	h := hashRow(d.rels[i], d.argRow(i))
	for probe := h & t.mask; ; probe = (probe + 1) & t.mask {
		if t.slots[probe] == 0 {
			t.slots[probe] = int32(i + 1)
			return
		}
	}
}

// lookup returns the fact index of the row, or -1 when absent.
func (t *factTable) lookup(d *Database, rid int32, args []int32) int {
	if len(t.slots) == 0 {
		return -1
	}
	h := hashRow(rid, args)
	for probe := h & t.mask; ; probe = (probe + 1) & t.mask {
		s := t.slots[probe]
		if s == 0 {
			return -1
		}
		j := int(s - 1)
		if d.rels[j] == rid && eqIDs(d.argRow(j), args) {
			return j
		}
	}
}

func eqIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
