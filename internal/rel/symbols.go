package rel

// Symbols is a per-database symbol table: every constant and relation
// name that occurs in a Database is dictionary-encoded to a dense int32
// id, so the hot paths (homomorphism search, conflict indexing,
// sampling) compare and hash machine words instead of strings. Ids are
// assigned in first-intern order; because every Database constructor
// interns its facts in sorted order, the id assignment — and therefore
// the whole columnar encoding — is deterministic for a given fact set.
//
// A Symbols value is append-only: existing ids never change, so a
// Database produced by a copy-on-write mutation can share its parent's
// table (cloning only when the mutation introduces an unseen string).
// Sharing is read-only; Intern must not be called on a table that is
// reachable from a live Database.
type Symbols struct {
	strs []string
	ids  map[string]int32
}

// NewSymbols returns an empty symbol table.
func NewSymbols() *Symbols {
	return &Symbols{ids: make(map[string]int32)}
}

// Len reports the number of interned symbols.
func (s *Symbols) Len() int { return len(s.strs) }

// Intern returns the id of str, assigning the next dense id on first
// sight.
func (s *Symbols) Intern(str string) int32 {
	if id, ok := s.ids[str]; ok {
		return id
	}
	id := int32(len(s.strs))
	s.strs = append(s.strs, str)
	s.ids[str] = id
	return id
}

// Lookup returns the id of str without interning. The second result is
// false when the string has never been interned — for a query constant
// this means no fact of the database can mention it.
func (s *Symbols) Lookup(str string) (int32, bool) {
	id, ok := s.ids[str]
	return id, ok
}

// Str returns the string for an id. Ids come from Intern/Lookup on the
// same table; anything else panics like a slice bounds error.
func (s *Symbols) Str(id int32) string { return s.strs[id] }

// Strings exposes the id→string column in id order. The returned slice
// is the table's backing array and must not be modified; it is the
// snapshot codec's symbol section.
func (s *Symbols) Strings() []string { return s.strs }

// Clone returns an independent copy sharing the string contents. The
// copy can be Interned into without affecting the original — the
// copy-on-write escape hatch for Database.Insert.
func (s *Symbols) Clone() *Symbols {
	cp := &Symbols{
		strs: append([]string(nil), s.strs...),
		ids:  make(map[string]int32, len(s.ids)),
	}
	for k, v := range s.ids {
		cp.ids[k] = v
	}
	return cp
}

// newSymbolsFromStrings rebuilds a table from its string column (the
// snapshot decode path). Duplicate strings would make ids ambiguous, so
// they are rejected by returning false.
func newSymbolsFromStrings(strs []string) (*Symbols, bool) {
	s := &Symbols{strs: strs, ids: make(map[string]int32, len(strs))}
	for i, str := range strs {
		if _, dup := s.ids[str]; dup {
			return nil, false
		}
		s.ids[str] = int32(i)
	}
	return s, true
}
