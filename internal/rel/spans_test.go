package rel

import (
	"fmt"
	"math/rand"
	"testing"
)

// factsOfScan is the pre-cache implementation of FactsOf, kept as the
// test oracle.
func factsOfScan(d *Database, rel string) []Fact {
	var out []Fact
	for _, f := range d.Facts() {
		if f.Rel == rel {
			out = append(out, f)
		}
	}
	return out
}

func checkSpans(t *testing.T, d *Database, rels []string) {
	t.Helper()
	for _, r := range rels {
		want := factsOfScan(d, r)
		got := d.FactsOf(r)
		if len(got) != len(want) {
			t.Fatalf("FactsOf(%q): %d facts, scan gives %d", r, len(got), len(want))
		}
		for i := range want {
			if !got[i].Equal(want[i]) {
				t.Fatalf("FactsOf(%q)[%d] = %v, want %v", r, i, got[i], want[i])
			}
		}
		lo, hi := d.RelRange(r)
		if hi-lo != len(want) {
			t.Fatalf("RelRange(%q) = [%d,%d), want width %d", r, lo, hi, len(want))
		}
		for j := lo; j < hi; j++ {
			if d.Fact(j).Rel != r {
				t.Fatalf("RelRange(%q) covers foreign fact %v at %d", r, d.Fact(j), j)
			}
		}
	}
}

// TestRelSpansAcrossConstructors: the cached grouping stays consistent
// through NewDatabase, Insert and Remove.
func TestRelSpansAcrossConstructors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rels := []string{"A", "B", "C", "missing"}
	for trial := 0; trial < 40; trial++ {
		var facts []Fact
		for i, n := 0, rng.Intn(12); i < n; i++ {
			facts = append(facts, NewFact(rels[rng.Intn(3)], fmt.Sprintf("c%d", rng.Intn(6))))
		}
		d := NewDatabase(facts...)
		checkSpans(t, d, rels)

		d2, _, ok := d.Insert(NewFact("B", "zz"))
		if ok {
			checkSpans(t, d2, rels)
		}
		if d.Len() > 0 {
			checkSpans(t, d.Remove(rng.Intn(d.Len())), rels)
		}
		// The original is untouched (copy-on-write).
		checkSpans(t, d, rels)
	}
}
