package rel

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewRelationDefaultAttrs(t *testing.T) {
	r := NewRelation("R", 3)
	want := []string{"A1", "A2", "A3"}
	if !reflect.DeepEqual(r.Attrs, want) {
		t.Fatalf("attrs = %v, want %v", r.Attrs, want)
	}
	if r.Arity() != 3 {
		t.Fatalf("arity = %d, want 3", r.Arity())
	}
}

func TestRelationAttrIndex(t *testing.T) {
	r := Relation{Name: "Emp", Attrs: []string{"id", "name"}}
	if got := r.AttrIndex("name"); got != 1 {
		t.Errorf("AttrIndex(name) = %d, want 1", got)
	}
	if got := r.AttrIndex("salary"); got != -1 {
		t.Errorf("AttrIndex(salary) = %d, want -1", got)
	}
}

func TestNewSchemaRejectsDuplicates(t *testing.T) {
	_, err := NewSchema(NewRelation("R", 2), NewRelation("R", 3))
	if err == nil {
		t.Fatal("expected duplicate-relation error")
	}
}

func TestNewSchemaRejectsZeroArity(t *testing.T) {
	_, err := NewSchema(Relation{Name: "R"})
	if err == nil {
		t.Fatal("expected zero-arity error")
	}
}

func TestNewSchemaRejectsRepeatedAttr(t *testing.T) {
	_, err := NewSchema(Relation{Name: "R", Attrs: []string{"A", "A"}})
	if err == nil {
		t.Fatal("expected repeated-attribute error")
	}
}

func TestSchemaLookup(t *testing.T) {
	s := MustSchema(NewRelation("R", 2), NewRelation("S", 1))
	r, ok := s.Relation("R")
	if !ok || r.Arity() != 2 {
		t.Fatalf("Relation(R) = %v, %v", r, ok)
	}
	if _, ok := s.Relation("T"); ok {
		t.Fatal("Relation(T) should be absent")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	rels := s.Relations()
	if rels[0].Name != "R" || rels[1].Name != "S" {
		t.Fatalf("Relations order = %v", rels)
	}
}

func TestFactEqualAndKey(t *testing.T) {
	f := NewFact("R", "a", "b")
	g := NewFact("R", "a", "b")
	h := NewFact("R", "a", "c")
	if !f.Equal(g) {
		t.Error("f should equal g")
	}
	if f.Equal(h) {
		t.Error("f should differ from h")
	}
	if f.Key() != g.Key() {
		t.Error("equal facts must have equal keys")
	}
	if f.Key() == h.Key() {
		t.Error("distinct facts must have distinct keys")
	}
}

func TestFactKeyEscaping(t *testing.T) {
	// Constants containing the separator must not collide.
	f := NewFact("R", "a|b", "c")
	g := NewFact("R", "a", "b|c")
	if f.Key() == g.Key() {
		t.Fatalf("keys collide: %q", f.Key())
	}
	h := NewFact("R", `a\`, "|b")
	k := NewFact("R", "a", `\|b`)
	if h.Key() == k.Key() {
		t.Fatalf("keys collide: %q", h.Key())
	}
}

func TestFactString(t *testing.T) {
	f := NewFact("Emp", "1", "Alice")
	if got := f.String(); got != "Emp(1,Alice)" {
		t.Fatalf("String = %q", got)
	}
}

func TestFactArgIsImmutableCopy(t *testing.T) {
	args := []string{"a", "b"}
	f := NewFact("R", args...)
	args[0] = "mutated"
	if f.Arg(0) != "a" {
		t.Fatal("NewFact must copy its arguments")
	}
}

func TestFactLessTotalOrder(t *testing.T) {
	facts := []Fact{
		NewFact("S", "a"),
		NewFact("R", "b"),
		NewFact("R", "a", "z"),
		NewFact("R", "a"),
	}
	sort.Slice(facts, func(i, j int) bool { return facts[i].Less(facts[j]) })
	want := []string{"R(a)", "R(a,z)", "R(b)", "S(a)"}
	for i, f := range facts {
		if f.String() != want[i] {
			t.Fatalf("sorted[%d] = %s, want %s", i, f, want[i])
		}
	}
}

func TestDatabaseDedupAndOrder(t *testing.T) {
	d := NewDatabase(
		NewFact("R", "b"),
		NewFact("R", "a"),
		NewFact("R", "b"), // duplicate
	)
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	if d.Fact(0).String() != "R(a)" || d.Fact(1).String() != "R(b)" {
		t.Fatalf("order wrong: %v", d.Facts())
	}
}

func TestDatabaseIndexOfContains(t *testing.T) {
	f, g := NewFact("R", "a"), NewFact("R", "b")
	d := NewDatabase(f, g)
	if d.IndexOf(f) != 0 || d.IndexOf(g) != 1 {
		t.Fatalf("IndexOf: %d %d", d.IndexOf(f), d.IndexOf(g))
	}
	if d.IndexOf(NewFact("R", "c")) != -1 {
		t.Fatal("absent fact should have index -1")
	}
	if !d.Contains(f) || d.Contains(NewFact("S", "a")) {
		t.Fatal("Contains wrong")
	}
}

func TestActiveDomain(t *testing.T) {
	d := NewDatabase(NewFact("R", "a", "b"), NewFact("S", "b", "c"))
	want := []string{"a", "b", "c"}
	if got := d.ActiveDomain(); !reflect.DeepEqual(got, want) {
		t.Fatalf("ActiveDomain = %v, want %v", got, want)
	}
}

func TestFactsOf(t *testing.T) {
	d := NewDatabase(NewFact("R", "a"), NewFact("S", "b"), NewFact("R", "c"))
	rs := d.FactsOf("R")
	if len(rs) != 2 || rs[0].String() != "R(a)" || rs[1].String() != "R(c)" {
		t.Fatalf("FactsOf(R) = %v", rs)
	}
	if len(d.FactsOf("T")) != 0 {
		t.Fatal("FactsOf(T) should be empty")
	}
}

func TestDatabaseWithoutAndUnion(t *testing.T) {
	f, g, h := NewFact("R", "a"), NewFact("R", "b"), NewFact("R", "c")
	d := NewDatabase(f, g)
	e := d.Without(f)
	if e.Len() != 1 || !e.Contains(g) {
		t.Fatalf("Without: %v", e)
	}
	if d.Len() != 2 {
		t.Fatal("Without must not mutate the receiver")
	}
	u := d.Union(NewDatabase(h))
	if u.Len() != 3 {
		t.Fatalf("Union len = %d", u.Len())
	}
}

func TestDatabaseEqual(t *testing.T) {
	a := NewDatabase(NewFact("R", "a"), NewFact("R", "b"))
	b := NewDatabase(NewFact("R", "b"), NewFact("R", "a"))
	c := NewDatabase(NewFact("R", "a"))
	if !a.Equal(b) {
		t.Error("a should equal b (order-independent)")
	}
	if a.Equal(c) {
		t.Error("a should differ from c")
	}
}

func TestDatabaseRestrict(t *testing.T) {
	d := NewDatabase(NewFact("R", "a"), NewFact("R", "b"), NewFact("R", "c"))
	s := NewSubset(3)
	s.Set(0)
	s.Set(2)
	r := d.Restrict(s)
	if r.Len() != 2 || !r.Contains(NewFact("R", "a")) || !r.Contains(NewFact("R", "c")) {
		t.Fatalf("Restrict = %v", r)
	}
}

func TestFullSubset(t *testing.T) {
	d := NewDatabase(NewFact("R", "a"), NewFact("R", "b"))
	s := d.FullSubset()
	if s.Count() != 2 || !s.Has(0) || !s.Has(1) {
		t.Fatalf("FullSubset = %v", s.Indices())
	}
}

func TestSubsetBasics(t *testing.T) {
	s := NewSubset(130) // force multiple words
	for _, i := range []int{0, 63, 64, 129} {
		s.Set(i)
	}
	if s.Count() != 4 {
		t.Fatalf("Count = %d, want 4", s.Count())
	}
	s.Clear(64)
	if s.Has(64) || s.Count() != 3 {
		t.Fatal("Clear failed")
	}
	want := []int{0, 63, 129}
	if got := s.Indices(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Indices = %v, want %v", got, want)
	}
}

func TestSubsetCloneIsIndependent(t *testing.T) {
	s := NewSubset(10)
	s.Set(1)
	c := s.Clone()
	c.Set(2)
	if s.Has(2) {
		t.Fatal("Clone must not share storage")
	}
}

func TestSubsetWithoutIndices(t *testing.T) {
	s := NewSubset(5)
	for i := 0; i < 5; i++ {
		s.Set(i)
	}
	r := s.WithoutIndices(1, 3)
	if r.Count() != 3 || r.Has(1) || r.Has(3) {
		t.Fatalf("WithoutIndices = %v", r.Indices())
	}
	if s.Count() != 5 {
		t.Fatal("WithoutIndices must not mutate the receiver")
	}
}

func TestSubsetKeyDistinguishes(t *testing.T) {
	a := NewSubset(70)
	b := NewSubset(70)
	a.Set(0)
	b.Set(65)
	if a.Key() == b.Key() {
		t.Fatal("distinct subsets must have distinct keys")
	}
	c := NewSubset(70)
	c.Set(0)
	if a.Key() != c.Key() {
		t.Fatal("equal subsets must have equal keys")
	}
}

func TestSubsetSubsetOfAndEqual(t *testing.T) {
	a, b := NewSubset(8), NewSubset(8)
	a.Set(1)
	b.Set(1)
	b.Set(2)
	if !a.SubsetOf(b) || b.SubsetOf(a) {
		t.Fatal("SubsetOf wrong")
	}
	if a.Equal(b) {
		t.Fatal("Equal wrong")
	}
	a.Set(2)
	if !a.Equal(b) {
		t.Fatal("Equal after update wrong")
	}
}

// Property: Restrict(FullSubset) is the identity, and the index map is
// consistent with sorted order, for random databases.
func TestQuickDatabaseInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	prop := func() bool {
		n := rng.Intn(20)
		facts := make([]Fact, n)
		for i := range facts {
			facts[i] = NewFact("R", string(rune('a'+rng.Intn(5))), string(rune('a'+rng.Intn(5))))
		}
		d := NewDatabase(facts...)
		if !d.Restrict(d.FullSubset()).Equal(d) {
			return false
		}
		for i := 0; i < d.Len(); i++ {
			if d.IndexOf(d.Fact(i)) != i {
				return false
			}
			if i > 0 && !d.Fact(i-1).Less(d.Fact(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: subset Key is injective on random subsets of a fixed universe.
func TestQuickSubsetKeyInjective(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	seen := make(map[string][]int)
	for trial := 0; trial < 300; trial++ {
		s := NewSubset(100)
		for i := 0; i < 100; i++ {
			if rng.Intn(2) == 0 {
				s.Set(i)
			}
		}
		k := s.Key()
		if prev, ok := seen[k]; ok {
			if !reflect.DeepEqual(prev, s.Indices()) {
				t.Fatalf("key collision: %v vs %v", prev, s.Indices())
			}
		}
		seen[k] = s.Indices()
	}
}
