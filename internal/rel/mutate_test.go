package rel

import (
	"math/rand"
	"testing"
)

func TestInsertKeepsSortedOrderAndIndex(t *testing.T) {
	d := NewDatabase(
		NewFact("R", "b"),
		NewFact("R", "d"),
		NewFact("S", "a"),
	)
	nd, pos, ok := d.Insert(NewFact("R", "c"))
	if !ok {
		t.Fatal("Insert of a fresh fact reported ok=false")
	}
	if nd.Len() != 4 || d.Len() != 3 {
		t.Fatalf("lengths after insert: new %d (want 4), old %d (want 3)", nd.Len(), d.Len())
	}
	if got := nd.Fact(pos); !got.Equal(NewFact("R", "c")) {
		t.Fatalf("fact at returned pos %d is %v", pos, got)
	}
	for i := 1; i < nd.Len(); i++ {
		if nd.Fact(i).Less(nd.Fact(i - 1)) {
			t.Fatalf("facts out of order at %d: %v > %v", i, nd.Fact(i-1), nd.Fact(i))
		}
	}
	for i := 0; i < nd.Len(); i++ {
		if nd.IndexOf(nd.Fact(i)) != i {
			t.Fatalf("index map stale: IndexOf(%v) = %d, want %d", nd.Fact(i), nd.IndexOf(nd.Fact(i)), i)
		}
	}
}

func TestInsertDuplicateReturnsExistingIndex(t *testing.T) {
	d := NewDatabase(NewFact("R", "a"), NewFact("R", "b"))
	nd, pos, ok := d.Insert(NewFact("R", "b"))
	if ok {
		t.Fatal("duplicate insert reported ok=true")
	}
	if nd != d {
		t.Fatal("duplicate insert allocated a new database")
	}
	if pos != d.IndexOf(NewFact("R", "b")) {
		t.Fatalf("duplicate insert pos = %d, want existing index %d", pos, d.IndexOf(NewFact("R", "b")))
	}
}

func TestRemoveShiftsIndices(t *testing.T) {
	d := NewDatabase(NewFact("R", "a"), NewFact("R", "b"), NewFact("R", "c"))
	nd := d.Remove(1)
	if nd.Len() != 2 || d.Len() != 3 {
		t.Fatalf("lengths after remove: new %d, old %d", nd.Len(), d.Len())
	}
	if nd.Contains(NewFact("R", "b")) {
		t.Fatal("removed fact still present")
	}
	if nd.IndexOf(NewFact("R", "c")) != 1 {
		t.Fatalf("index of R(c) = %d, want 1", nd.IndexOf(NewFact("R", "c")))
	}
}

func TestRemoveOutOfRangePanics(t *testing.T) {
	d := NewDatabase(NewFact("R", "a"))
	defer func() {
		if recover() == nil {
			t.Fatal("Remove(5) did not panic")
		}
	}()
	d.Remove(5)
}

// TestInsertRemoveEquivalentToRebuild drives a random mutation sequence
// and checks the copy-on-write path agrees with rebuilding from scratch.
func TestInsertRemoveEquivalentToRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cur := NewDatabase()
	var facts []Fact
	for step := 0; step < 200; step++ {
		if len(facts) == 0 || rng.Intn(3) > 0 {
			f := NewFact("R", string(rune('a'+rng.Intn(12))), string(rune('a'+rng.Intn(12))))
			nd, pos, ok := cur.Insert(f)
			if ok {
				facts = append(facts, f)
				if !nd.Fact(pos).Equal(f) {
					t.Fatalf("step %d: inserted fact not at pos %d", step, pos)
				}
			}
			cur = nd
		} else {
			i := rng.Intn(cur.Len())
			removed := cur.Fact(i)
			cur = cur.Remove(i)
			for j, f := range facts {
				if f.Equal(removed) {
					facts = append(facts[:j], facts[j+1:]...)
					break
				}
			}
		}
		if want := NewDatabase(facts...); !cur.Equal(want) {
			t.Fatalf("step %d: incremental %v != rebuilt %v", step, cur, want)
		}
	}
}
