// Package rel implements the relational model of Section 2 of the paper:
// schemas, facts, and databases (finite sets of facts) over a countably
// infinite domain of constants, together with the bitset sub-database
// machinery the repair engines use to explore the space of databases
// D' ⊆ D.
package rel

import (
	"fmt"
	"sort"
	"strings"
)

// Relation describes a relation name R/n with an associated tuple of
// distinct attribute names (A_1, ..., A_n).
type Relation struct {
	Name  string
	Attrs []string
}

// Arity reports the arity n of the relation.
func (r Relation) Arity() int { return len(r.Attrs) }

// AttrIndex returns the position of the attribute with the given name,
// or -1 if the relation has no such attribute.
func (r Relation) AttrIndex(name string) int {
	for i, a := range r.Attrs {
		if a == name {
			return i
		}
	}
	return -1
}

// String renders the relation as "R(A1,...,An)".
func (r Relation) String() string {
	return fmt.Sprintf("%s(%s)", r.Name, strings.Join(r.Attrs, ","))
}

// NewRelation builds a relation with default attribute names A1..An.
func NewRelation(name string, arity int) Relation {
	attrs := make([]string, arity)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("A%d", i+1)
	}
	return Relation{Name: name, Attrs: attrs}
}

// Schema is a finite set of relation names with associated arities.
type Schema struct {
	rels  map[string]Relation
	order []string
}

// NewSchema builds a schema from the given relations. Duplicate relation
// names are rejected.
func NewSchema(rels ...Relation) (*Schema, error) {
	s := &Schema{rels: make(map[string]Relation, len(rels))}
	for _, r := range rels {
		if r.Arity() == 0 {
			return nil, fmt.Errorf("rel: relation %q has arity 0", r.Name)
		}
		if _, dup := s.rels[r.Name]; dup {
			return nil, fmt.Errorf("rel: duplicate relation %q", r.Name)
		}
		seen := make(map[string]bool, r.Arity())
		for _, a := range r.Attrs {
			if seen[a] {
				return nil, fmt.Errorf("rel: relation %q repeats attribute %q", r.Name, a)
			}
			seen[a] = true
		}
		s.rels[r.Name] = r
		s.order = append(s.order, r.Name)
	}
	return s, nil
}

// MustSchema is like NewSchema but panics on error. It is intended for
// statically known schemas in examples and tests.
func MustSchema(rels ...Relation) *Schema {
	s, err := NewSchema(rels...)
	if err != nil {
		panic(err)
	}
	return s
}

// Relation looks up a relation by name.
func (s *Schema) Relation(name string) (Relation, bool) {
	r, ok := s.rels[name]
	return r, ok
}

// Relations returns the relations in declaration order.
func (s *Schema) Relations() []Relation {
	out := make([]Relation, 0, len(s.order))
	for _, n := range s.order {
		out = append(out, s.rels[n])
	}
	return out
}

// Len reports the number of relations in the schema.
func (s *Schema) Len() int { return len(s.order) }

// A Fact is an expression R(c1,...,cn) where each c_i is a constant.
// Facts are immutable after construction; Args must not be mutated.
type Fact struct {
	Rel  string
	Args []string
}

// NewFact builds a fact over the given relation name.
func NewFact(rel string, args ...string) Fact {
	cp := make([]string, len(args))
	copy(cp, args)
	return Fact{Rel: rel, Args: cp}
}

// Arg returns the constant at attribute position i (0-based). In the
// paper's notation this is f[A_{i+1}].
func (f Fact) Arg(i int) string { return f.Args[i] }

// Equal reports whether two facts are identical.
func (f Fact) Equal(g Fact) bool {
	if f.Rel != g.Rel || len(f.Args) != len(g.Args) {
		return false
	}
	for i := range f.Args {
		if f.Args[i] != g.Args[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical string encoding of the fact, used as a map key.
// The encoding escapes the separator so distinct facts cannot collide.
func (f Fact) Key() string {
	var b strings.Builder
	b.WriteString(escape(f.Rel))
	for _, a := range f.Args {
		b.WriteByte('|')
		b.WriteString(escape(a))
	}
	return b.String()
}

func escape(s string) string {
	if !strings.ContainsAny(s, `|\`) {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, `|`, `\|`)
}

// String renders the fact as "R(c1,...,cn)".
func (f Fact) String() string {
	return fmt.Sprintf("%s(%s)", f.Rel, strings.Join(f.Args, ","))
}

// Less imposes a total order on facts (relation name, then arguments).
// Databases keep their facts sorted in this order so that fact indices
// are deterministic across runs.
func (f Fact) Less(g Fact) bool {
	if f.Rel != g.Rel {
		return f.Rel < g.Rel
	}
	n := len(f.Args)
	if len(g.Args) < n {
		n = len(g.Args)
	}
	for i := 0; i < n; i++ {
		if f.Args[i] != g.Args[i] {
			return f.Args[i] < g.Args[i]
		}
	}
	return len(f.Args) < len(g.Args)
}

// Database is a finite set of facts. It maintains set semantics and a
// deterministic (sorted) iteration order, and assigns each fact a stable
// index in [0, Len()) used by the bitset sub-database machinery.
type Database struct {
	facts []Fact
	index map[string]int
	// spans maps each relation name to its contiguous [lo, hi) index
	// range in facts. The sort order is relation-major, so every
	// relation's facts occupy one run; caching the runs makes FactsOf
	// (and the per-relation iteration of the homomorphism search) a
	// lookup instead of a full scan, with the global fact index of the
	// j-th fact of relation R available as lo+j.
	spans map[string]span
}

// span is a half-open index range [lo, hi) into Database.facts.
type span struct{ lo, hi int }

// buildSpans derives the per-relation ranges from the sorted fact
// slice. Every constructor ends with it.
func (d *Database) buildSpans() {
	d.spans = make(map[string]span)
	for i := 0; i < len(d.facts); {
		j := i + 1
		for j < len(d.facts) && d.facts[j].Rel == d.facts[i].Rel {
			j++
		}
		d.spans[d.facts[i].Rel] = span{i, j}
		i = j
	}
}

// NewDatabase builds a database from the given facts, deduplicating and
// sorting them.
func NewDatabase(facts ...Fact) *Database {
	d := &Database{index: make(map[string]int, len(facts))}
	for _, f := range facts {
		k := f.Key()
		if _, dup := d.index[k]; dup {
			continue
		}
		d.index[k] = -1 // placeholder until sort
		d.facts = append(d.facts, f)
	}
	sort.Slice(d.facts, func(i, j int) bool { return d.facts[i].Less(d.facts[j]) })
	for i, f := range d.facts {
		d.index[f.Key()] = i
	}
	d.buildSpans()
	return d
}

// Len reports the number of facts |D|.
func (d *Database) Len() int { return len(d.facts) }

// Fact returns the fact at index i.
func (d *Database) Fact(i int) Fact { return d.facts[i] }

// Facts returns the facts in sorted order. The returned slice must not
// be modified.
func (d *Database) Facts() []Fact { return d.facts }

// IndexOf returns the index of the fact, or -1 if it is absent.
func (d *Database) IndexOf(f Fact) int {
	i, ok := d.index[f.Key()]
	if !ok {
		return -1
	}
	return i
}

// Contains reports whether the fact is in the database.
func (d *Database) Contains(f Fact) bool { return d.IndexOf(f) >= 0 }

// ActiveDomain returns dom(D), the sorted set of constants occurring
// in the database.
func (d *Database) ActiveDomain() []string {
	set := make(map[string]bool)
	for _, f := range d.facts {
		for _, a := range f.Args {
			set[a] = true
		}
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// FactsOf returns the facts over the given relation name, in sorted
// order — a sub-slice of the cached relation run, not a copy. The
// returned slice must not be modified.
func (d *Database) FactsOf(rel string) []Fact {
	sp, ok := d.spans[rel]
	if !ok {
		return nil
	}
	return d.facts[sp.lo:sp.hi]
}

// RelRange returns the half-open fact-index range [lo, hi) of the
// relation's facts (empty when the relation has none): the fact at
// global index lo+j is the j-th fact of FactsOf(rel). Index-based
// consumers (the subset-restricted homomorphism search) use it to test
// bitset membership without per-fact index lookups.
func (d *Database) RelRange(rel string) (lo, hi int) {
	sp := d.spans[rel]
	return sp.lo, sp.hi
}

// Restrict returns the database containing exactly the facts of d whose
// indices are set in the subset.
func (d *Database) Restrict(s Subset) *Database {
	var facts []Fact
	for i := 0; i < d.Len(); i++ {
		if s.Has(i) {
			facts = append(facts, d.facts[i])
		}
	}
	return NewDatabase(facts...)
}

// Union returns a new database containing the facts of both databases.
func (d *Database) Union(other *Database) *Database {
	facts := make([]Fact, 0, d.Len()+other.Len())
	facts = append(facts, d.facts...)
	facts = append(facts, other.facts...)
	return NewDatabase(facts...)
}

// Without returns a new database with the given facts removed.
func (d *Database) Without(remove ...Fact) *Database {
	drop := make(map[string]bool, len(remove))
	for _, f := range remove {
		drop[f.Key()] = true
	}
	var facts []Fact
	for _, f := range d.facts {
		if !drop[f.Key()] {
			facts = append(facts, f)
		}
	}
	return NewDatabase(facts...)
}

// Equal reports whether two databases contain the same set of facts.
func (d *Database) Equal(other *Database) bool {
	if d.Len() != other.Len() {
		return false
	}
	for i := range d.facts {
		if !d.facts[i].Equal(other.facts[i]) {
			return false
		}
	}
	return true
}

// String renders the database as "{f1, f2, ...}" in sorted order.
func (d *Database) String() string {
	parts := make([]string, d.Len())
	for i, f := range d.facts {
		parts[i] = f.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Insert returns a new database with f added at its sorted position,
// leaving d untouched (copy-on-write), together with the index f was
// assigned. Every fact previously at index ≥ pos moves to index+1 in
// the new database — callers maintaining index-based structures must
// remap. ok is false (and d is returned unchanged with f's existing
// index) when the fact is already present.
func (d *Database) Insert(f Fact) (nd *Database, pos int, ok bool) {
	if i := d.IndexOf(f); i >= 0 {
		return d, i, false
	}
	f = NewFact(f.Rel, f.Args...) // defensive copy: Facts are immutable
	pos = sort.Search(len(d.facts), func(i int) bool { return f.Less(d.facts[i]) })
	facts := make([]Fact, 0, len(d.facts)+1)
	facts = append(facts, d.facts[:pos]...)
	facts = append(facts, f)
	facts = append(facts, d.facts[pos:]...)
	nd = &Database{facts: facts, index: make(map[string]int, len(facts))}
	for i, g := range facts {
		nd.index[g.Key()] = i
	}
	nd.buildSpans()
	return nd, pos, true
}

// Remove returns a new database with the fact at index i removed,
// leaving d untouched (copy-on-write). Every fact previously at index
// > i moves to index−1 in the new database. It panics when i is out of
// range, matching slice-index semantics.
func (d *Database) Remove(i int) *Database {
	if i < 0 || i >= len(d.facts) {
		panic(fmt.Sprintf("rel: Remove index %d out of range [0,%d)", i, len(d.facts)))
	}
	facts := make([]Fact, 0, len(d.facts)-1)
	facts = append(facts, d.facts[:i]...)
	facts = append(facts, d.facts[i+1:]...)
	nd := &Database{facts: facts, index: make(map[string]int, len(facts))}
	for j, g := range facts {
		nd.index[g.Key()] = j
	}
	nd.buildSpans()
	return nd
}

// FullSubset returns the subset containing every fact of d.
func (d *Database) FullSubset() Subset {
	s := NewSubset(d.Len())
	for i := 0; i < d.Len(); i++ {
		s.Set(i)
	}
	return s
}
