// Package rel implements the relational model of Section 2 of the paper:
// schemas, facts, and databases (finite sets of facts) over a countably
// infinite domain of constants, together with the bitset sub-database
// machinery the repair engines use to explore the space of databases
// D' ⊆ D.
//
// Databases are stored columnar and dictionary-encoded: a per-database
// symbol table interns every constant and relation name to a dense
// int32 id, and the fact set lives in three flat columns (per-fact
// relation id, argument offsets, argument ids) plus an open-addressing
// hash index. The string-based Fact API remains for construction,
// formatting, and the exact engines; the samplers, the homomorphism
// search, and the conflict indexes operate on the id columns directly.
package rel

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Relation describes a relation name R/n with an associated tuple of
// distinct attribute names (A_1, ..., A_n).
type Relation struct {
	Name  string
	Attrs []string
}

// Arity reports the arity n of the relation.
func (r Relation) Arity() int { return len(r.Attrs) }

// AttrIndex returns the position of the attribute with the given name,
// or -1 if the relation has no such attribute.
func (r Relation) AttrIndex(name string) int {
	for i, a := range r.Attrs {
		if a == name {
			return i
		}
	}
	return -1
}

// String renders the relation as "R(A1,...,An)".
func (r Relation) String() string {
	return fmt.Sprintf("%s(%s)", r.Name, strings.Join(r.Attrs, ","))
}

// NewRelation builds a relation with default attribute names A1..An.
func NewRelation(name string, arity int) Relation {
	attrs := make([]string, arity)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("A%d", i+1)
	}
	return Relation{Name: name, Attrs: attrs}
}

// Schema is a finite set of relation names with associated arities.
type Schema struct {
	rels  map[string]Relation
	order []string
}

// NewSchema builds a schema from the given relations. Duplicate relation
// names are rejected.
func NewSchema(rels ...Relation) (*Schema, error) {
	s := &Schema{rels: make(map[string]Relation, len(rels))}
	for _, r := range rels {
		if r.Arity() == 0 {
			return nil, fmt.Errorf("rel: relation %q has arity 0", r.Name)
		}
		if _, dup := s.rels[r.Name]; dup {
			return nil, fmt.Errorf("rel: duplicate relation %q", r.Name)
		}
		seen := make(map[string]bool, r.Arity())
		for _, a := range r.Attrs {
			if seen[a] {
				return nil, fmt.Errorf("rel: relation %q repeats attribute %q", r.Name, a)
			}
			seen[a] = true
		}
		s.rels[r.Name] = r
		s.order = append(s.order, r.Name)
	}
	return s, nil
}

// MustSchema is like NewSchema but panics on error. It is intended for
// statically known schemas in examples and tests.
func MustSchema(rels ...Relation) *Schema {
	s, err := NewSchema(rels...)
	if err != nil {
		panic(err)
	}
	return s
}

// Relation looks up a relation by name.
func (s *Schema) Relation(name string) (Relation, bool) {
	r, ok := s.rels[name]
	return r, ok
}

// Relations returns the relations in declaration order.
func (s *Schema) Relations() []Relation {
	out := make([]Relation, 0, len(s.order))
	for _, n := range s.order {
		out = append(out, s.rels[n])
	}
	return out
}

// Len reports the number of relations in the schema.
func (s *Schema) Len() int { return len(s.order) }

// A Fact is an expression R(c1,...,cn) where each c_i is a constant.
// Facts are immutable after construction; Args must not be mutated.
type Fact struct {
	Rel  string
	Args []string
}

// NewFact builds a fact over the given relation name.
func NewFact(rel string, args ...string) Fact {
	cp := make([]string, len(args))
	copy(cp, args)
	return Fact{Rel: rel, Args: cp}
}

// Arg returns the constant at attribute position i (0-based). In the
// paper's notation this is f[A_{i+1}].
func (f Fact) Arg(i int) string { return f.Args[i] }

// Equal reports whether two facts are identical.
func (f Fact) Equal(g Fact) bool {
	if f.Rel != g.Rel || len(f.Args) != len(g.Args) {
		return false
	}
	for i := range f.Args {
		if f.Args[i] != g.Args[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical string encoding of the fact, used as a map key.
// The encoding escapes the separator so distinct facts cannot collide.
// The data plane itself no longer uses Key — membership goes through the
// interned hash index — but external consumers (oracles, tests, ad-hoc
// dedup) still rely on it as a stable canonical form.
func (f Fact) Key() string {
	var b strings.Builder
	b.WriteString(escape(f.Rel))
	for _, a := range f.Args {
		b.WriteByte('|')
		b.WriteString(escape(a))
	}
	return b.String()
}

func escape(s string) string {
	if !strings.ContainsAny(s, `|\`) {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, `|`, `\|`)
}

// String renders the fact as "R(c1,...,cn)".
func (f Fact) String() string {
	return fmt.Sprintf("%s(%s)", f.Rel, strings.Join(f.Args, ","))
}

// Less imposes a total order on facts (relation name, then arguments).
// Databases keep their facts sorted in this order so that fact indices
// are deterministic across runs — and across representations: the
// columnar encoding preserves exactly this order, so indices, subsets,
// and snapshots mean the same thing they did under the struct-per-fact
// layout.
func (f Fact) Less(g Fact) bool {
	if f.Rel != g.Rel {
		return f.Rel < g.Rel
	}
	n := len(f.Args)
	if len(g.Args) < n {
		n = len(g.Args)
	}
	for i := 0; i < n; i++ {
		if f.Args[i] != g.Args[i] {
			return f.Args[i] < g.Args[i]
		}
	}
	return len(f.Args) < len(g.Args)
}

// Database is a finite set of facts. It maintains set semantics and a
// deterministic (sorted) iteration order, and assigns each fact a stable
// index in [0, Len()) used by the bitset sub-database machinery.
//
// The representation is columnar: fact i is (rels[i],
// args[offs[i]:offs[i+1]]) over the database's symbol table. The sort
// order is relation-major string-lexicographic (Fact.Less), identical
// to the pre-columnar layout.
type Database struct {
	syms *Symbols
	// rels[i] is the relation id of fact i.
	rels []int32
	// offs has length Len()+1; the argument ids of fact i are
	// args[offs[i]:offs[i+1]]. Arities can differ per relation name (the
	// relational model here keys arity on the schema, but raw databases
	// tolerate mixed arities, and the homomorphism search checks them),
	// so offsets are explicit rather than derived.
	offs []int32
	args []int32
	// table maps a row to its fact index without materialising strings.
	table factTable
	// spans maps each relation id to its contiguous [lo, hi) index
	// range. The sort order is relation-major, so every relation's facts
	// occupy one run; caching the runs makes per-relation iteration a
	// lookup instead of a full scan, with the global fact index of the
	// j-th fact of relation R available as lo+j.
	spans map[int32]span

	// factsOnce/factsAll lazily materialise the []Fact view for cold
	// paths (formatting, the exact engines, the brute-force oracle). Hot
	// paths read the columns and never pay for this.
	factsOnce sync.Once
	factsAll  []Fact
}

// span is a half-open fact-index range [lo, hi).
type span struct{ lo, hi int }

// argRow returns the argument ids of fact i (a view, not a copy).
func (d *Database) argRow(i int) []int32 {
	return d.args[d.offs[i]:d.offs[i+1]]
}

// buildSpans derives the per-relation ranges from the sorted relation
// id column. Every constructor ends with it.
func (d *Database) buildSpans() {
	d.spans = make(map[int32]span)
	n := len(d.rels)
	for i := 0; i < n; {
		j := i + 1
		for j < n && d.rels[j] == d.rels[i] {
			j++
		}
		d.spans[d.rels[i]] = span{i, j}
		i = j
	}
}

// buildTable rebuilds the row hash index from the columns.
func (d *Database) buildTable() {
	d.table = newFactTable(len(d.rels))
	for i := range d.rels {
		d.table.insert(d, i)
	}
}

// encodeFacts fills the columns from sorted, deduplicated facts,
// interning into d.syms. Interning in sorted fact order keeps id
// assignment deterministic for a given fact set.
func (d *Database) encodeFacts(facts []Fact) {
	d.rels = make([]int32, len(facts))
	d.offs = make([]int32, len(facts)+1)
	total := 0
	for _, f := range facts {
		total += len(f.Args)
	}
	d.args = make([]int32, 0, total)
	for i, f := range facts {
		d.rels[i] = d.syms.Intern(f.Rel)
		for _, a := range f.Args {
			d.args = append(d.args, d.syms.Intern(a))
		}
		d.offs[i+1] = int32(len(d.args))
	}
}

// NewDatabase builds a database from the given facts, deduplicating and
// sorting them.
func NewDatabase(facts ...Fact) *Database {
	sorted := make([]Fact, len(facts))
	copy(sorted, facts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	// Duplicates are adjacent after sorting; identical facts are
	// interchangeable, so keeping the first preserves set semantics.
	dedup := sorted[:0]
	for i, f := range sorted {
		if i == 0 || !f.Equal(sorted[i-1]) {
			dedup = append(dedup, f)
		}
	}
	d := &Database{syms: NewSymbols()}
	d.encodeFacts(dedup)
	d.buildTable()
	d.buildSpans()
	return d
}

// NewDatabaseColumnar adopts a ready-made columnar encoding: a symbol
// table and the three fact columns, already in Fact.Less order with no
// duplicate rows. This is the snapshot codec's O(columns) boot path —
// no string parsing, no re-sort, no per-fact allocation. Order and
// well-formedness are validated (cheap integer scans plus one adjacent
// string comparison per fact); violations return an error rather than a
// silently corrupt database.
func NewDatabaseColumnar(syms *Symbols, rels, offs, args []int32) (*Database, error) {
	d, err := newColumnar(syms, rels, offs, args)
	if err != nil {
		return nil, err
	}
	d.buildTable()
	d.buildSpans()
	return d, nil
}

// NewDatabaseFromParts is NewDatabaseColumnar plus a precomputed hash
// slot array (as exposed by LookupSlots), the warm-boot path for
// mmap-style snapshot loads: adopting the stored table avoids the O(n)
// rehash, leaving only integer validation scans.
func NewDatabaseFromParts(syms *Symbols, rels, offs, args, slots []int32) (*Database, error) {
	d, err := newColumnar(syms, rels, offs, args)
	if err != nil {
		return nil, err
	}
	t, ok := factTableFromSlots(slots)
	if !ok {
		return nil, fmt.Errorf("rel: lookup slot count %d is not a power of two", len(slots))
	}
	if len(slots) != tableSize(len(rels)) {
		return nil, fmt.Errorf("rel: lookup slot count %d does not match %d facts", len(slots), len(rels))
	}
	for _, s := range t.slots {
		if int(s) < 0 || int(s) > len(rels) {
			return nil, fmt.Errorf("rel: lookup slot value %d out of range", s)
		}
	}
	d.table = t
	d.buildSpans()
	return d, nil
}

func newColumnar(syms *Symbols, rels, offs, args []int32) (*Database, error) {
	n := len(rels)
	if n == 0 && len(offs) == 0 {
		offs = []int32{0}
	}
	if len(offs) != n+1 {
		return nil, fmt.Errorf("rel: offset column has %d entries for %d facts", len(offs), n)
	}
	if offs[0] != 0 || int(offs[n]) != len(args) {
		return nil, fmt.Errorf("rel: offset column does not cover %d argument ids", len(args))
	}
	nsyms := int32(syms.Len())
	for i := 0; i < n; i++ {
		if offs[i] > offs[i+1] {
			return nil, fmt.Errorf("rel: offset column decreases at fact %d", i)
		}
		if rels[i] < 0 || rels[i] >= nsyms {
			return nil, fmt.Errorf("rel: relation id %d of fact %d out of range", rels[i], i)
		}
	}
	for _, a := range args {
		if a < 0 || a >= nsyms {
			return nil, fmt.Errorf("rel: argument id %d out of range", a)
		}
	}
	d := &Database{syms: syms, rels: rels, offs: offs, args: args}
	for i := 1; i < n; i++ {
		if !d.rowLess(i-1, i) {
			return nil, fmt.Errorf("rel: facts %d and %d out of order or duplicated", i-1, i)
		}
	}
	return d, nil
}

// rowLess is Fact.Less on two rows of d without materialising them.
func (d *Database) rowLess(i, j int) bool {
	if d.rels[i] != d.rels[j] {
		return d.syms.Str(d.rels[i]) < d.syms.Str(d.rels[j])
	}
	a, b := d.argRow(i), d.argRow(j)
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for k := 0; k < n; k++ {
		if a[k] != b[k] {
			return d.syms.Str(a[k]) < d.syms.Str(b[k])
		}
	}
	return len(a) < len(b)
}

// factLessRow is f.Less(fact i) without materialising fact i.
func (d *Database) factLessRow(f Fact, i int) bool {
	rn := d.syms.Str(d.rels[i])
	if f.Rel != rn {
		return f.Rel < rn
	}
	row := d.argRow(i)
	n := len(f.Args)
	if len(row) < n {
		n = len(row)
	}
	for k := 0; k < n; k++ {
		if s := d.syms.Str(row[k]); f.Args[k] != s {
			return f.Args[k] < s
		}
	}
	return len(f.Args) < len(row)
}

// Len reports the number of facts |D|.
func (d *Database) Len() int { return len(d.rels) }

// Fact materialises the fact at index i. The strings are shared with
// the symbol table; only the headers are fresh. Hot paths should read
// the id columns (RelID, ArgIDs) instead.
func (d *Database) Fact(i int) Fact {
	row := d.argRow(i)
	args := make([]string, len(row))
	for k, id := range row {
		args[k] = d.syms.Str(id)
	}
	return Fact{Rel: d.syms.Str(d.rels[i]), Args: args}
}

// Facts returns the facts in sorted order, materialising the []Fact
// view on first use (cold paths only: formatting, exact engines, the
// oracle). The returned slice must not be modified.
func (d *Database) Facts() []Fact {
	d.factsOnce.Do(func() {
		if d.Len() == 0 {
			return
		}
		out := make([]Fact, d.Len())
		for i := range out {
			out[i] = d.Fact(i)
		}
		d.factsAll = out
	})
	return d.factsAll
}

// Symbols returns the database's symbol table. It is read-only from the
// caller's perspective: interning into a live database's table corrupts
// sharing.
func (d *Database) Symbols() *Symbols { return d.syms }

// RelID returns the interned relation id of fact i.
func (d *Database) RelID(i int) int32 { return d.rels[i] }

// ArgIDs returns the interned argument ids of fact i. The slice is a
// view into the argument column and must not be modified.
func (d *Database) ArgIDs(i int) []int32 { return d.argRow(i) }

// Arity reports the number of arguments of fact i.
func (d *Database) Arity(i int) int { return int(d.offs[i+1] - d.offs[i]) }

// RelIDOf resolves a relation name to its id; ok is false when no fact
// of the database uses the name.
func (d *Database) RelIDOf(name string) (int32, bool) {
	id, ok := d.syms.Lookup(name)
	if !ok {
		return 0, false
	}
	if _, hasSpan := d.spans[id]; !hasSpan {
		return 0, false
	}
	return id, true
}

// Columns exposes the raw columnar encoding for the snapshot codec.
// All three slices are backing arrays and must not be modified.
func (d *Database) Columns() (syms *Symbols, rels, offs, args []int32) {
	return d.syms, d.rels, d.offs, d.args
}

// LookupSlots exposes the open-addressing slot array (fact index + 1
// per slot, 0 = empty) for the snapshot codec. Read-only.
func (d *Database) LookupSlots() []int32 { return d.table.slots }

// IndexOf returns the index of the fact, or -1 if it is absent. The
// lookup translates the fact's strings through the symbol table and
// probes the row hash — no allocation, no Key() escaping.
func (d *Database) IndexOf(f Fact) int {
	rid, ok := d.syms.Lookup(f.Rel)
	if !ok {
		return -1
	}
	var buf [8]int32
	ids := buf[:0]
	if len(f.Args) > len(buf) {
		ids = make([]int32, 0, len(f.Args))
	}
	for _, a := range f.Args {
		id, ok := d.syms.Lookup(a)
		if !ok {
			return -1
		}
		ids = append(ids, id)
	}
	return d.table.lookup(d, rid, ids)
}

// IndexOfIDs returns the index of the row (rid, args) of interned ids,
// or -1 if absent. Ids must come from this database's symbol table.
func (d *Database) IndexOfIDs(rid int32, args []int32) int {
	return d.table.lookup(d, rid, args)
}

// Contains reports whether the fact is in the database.
func (d *Database) Contains(f Fact) bool { return d.IndexOf(f) >= 0 }

// ActiveDomain returns dom(D), the sorted set of constants occurring
// in the database.
func (d *Database) ActiveDomain() []string {
	seen := make([]bool, d.syms.Len())
	out := make([]string, 0, d.syms.Len())
	for _, id := range d.args {
		if !seen[id] {
			seen[id] = true
			out = append(out, d.syms.Str(id))
		}
	}
	sort.Strings(out)
	return out
}

// FactsOf returns the facts over the given relation name, in sorted
// order — a sub-slice of the materialised fact view, not a copy. The
// returned slice must not be modified.
func (d *Database) FactsOf(rel string) []Fact {
	id, ok := d.RelIDOf(rel)
	if !ok {
		return nil
	}
	sp := d.spans[id]
	return d.Facts()[sp.lo:sp.hi]
}

// RelRange returns the half-open fact-index range [lo, hi) of the
// relation's facts (empty when the relation has none): the fact at
// global index lo+j is the j-th fact of FactsOf(rel). Index-based
// consumers (the subset-restricted homomorphism search) use it to test
// bitset membership without per-fact index lookups.
func (d *Database) RelRange(rel string) (lo, hi int) {
	id, ok := d.RelIDOf(rel)
	if !ok {
		return 0, 0
	}
	sp := d.spans[id]
	return sp.lo, sp.hi
}

// RelRangeID is RelRange keyed on an interned relation id.
func (d *Database) RelRangeID(rid int32) (lo, hi int) {
	sp := d.spans[rid]
	return sp.lo, sp.hi
}

// Restrict returns the database containing exactly the facts of d whose
// indices are set in the subset. The result shares d's symbol table and
// is assembled by copying column rows — selection preserves sort order
// and distinctness, so there is nothing to re-sort or dedup.
func (d *Database) Restrict(s Subset) *Database {
	nd := &Database{syms: d.syms}
	keep := s.Count()
	nd.rels = make([]int32, 0, keep)
	nd.offs = make([]int32, 1, keep+1)
	nd.args = make([]int32, 0, len(d.args))
	for i := 0; i < d.Len(); i++ {
		if s.Has(i) {
			nd.rels = append(nd.rels, d.rels[i])
			nd.args = append(nd.args, d.argRow(i)...)
			nd.offs = append(nd.offs, int32(len(nd.args)))
		}
	}
	nd.buildTable()
	nd.buildSpans()
	return nd
}

// Union returns a new database containing the facts of both databases.
func (d *Database) Union(other *Database) *Database {
	facts := make([]Fact, 0, d.Len()+other.Len())
	facts = append(facts, d.Facts()...)
	facts = append(facts, other.Facts()...)
	return NewDatabase(facts...)
}

// Without returns a new database with the given facts removed.
func (d *Database) Without(remove ...Fact) *Database {
	mask := d.FullSubset()
	for _, f := range remove {
		if i := d.IndexOf(f); i >= 0 {
			mask.Clear(i)
		}
	}
	return d.Restrict(mask)
}

// Equal reports whether two databases contain the same set of facts.
func (d *Database) Equal(other *Database) bool {
	if d.Len() != other.Len() {
		return false
	}
	if d.syms == other.syms {
		// Shared symbol table (Restrict/Insert lineage): ids are
		// directly comparable.
		for i := range d.rels {
			if d.rels[i] != other.rels[i] || !eqIDs(d.argRow(i), other.argRow(i)) {
				return false
			}
		}
		return true
	}
	for i := range d.rels {
		if d.syms.Str(d.rels[i]) != other.syms.Str(other.rels[i]) {
			return false
		}
		a, b := d.argRow(i), other.argRow(i)
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if d.syms.Str(a[k]) != other.syms.Str(b[k]) {
				return false
			}
		}
	}
	return true
}

// String renders the database as "{f1, f2, ...}" in sorted order.
func (d *Database) String() string {
	parts := make([]string, d.Len())
	for i, f := range d.Facts() {
		parts[i] = f.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Insert returns a new database with f added at its sorted position,
// leaving d untouched (copy-on-write), together with the index f was
// assigned. Every fact previously at index ≥ pos moves to index+1 in
// the new database — callers maintaining index-based structures must
// remap. ok is false (and d is returned unchanged with f's existing
// index) when the fact is already present.
func (d *Database) Insert(f Fact) (nd *Database, pos int, ok bool) {
	if i := d.IndexOf(f); i >= 0 {
		return d, i, false
	}
	pos = sort.Search(d.Len(), func(i int) bool { return d.factLessRow(f, i) })
	// Share the symbol table unless f mentions unseen strings; then
	// clone before interning so d's table stays frozen.
	syms := d.syms
	needClone := false
	if _, ok := syms.Lookup(f.Rel); !ok {
		needClone = true
	}
	for _, a := range f.Args {
		if _, ok := syms.Lookup(a); !ok {
			needClone = true
		}
	}
	if needClone {
		syms = syms.Clone()
	}
	rid := syms.Intern(f.Rel)
	ids := make([]int32, len(f.Args))
	for k, a := range f.Args {
		ids[k] = syms.Intern(a)
	}

	nd = &Database{syms: syms}
	n := d.Len()
	nd.rels = make([]int32, 0, n+1)
	nd.rels = append(nd.rels, d.rels[:pos]...)
	nd.rels = append(nd.rels, rid)
	nd.rels = append(nd.rels, d.rels[pos:]...)
	cut := d.offs[pos]
	nd.args = make([]int32, 0, len(d.args)+len(ids))
	nd.args = append(nd.args, d.args[:cut]...)
	nd.args = append(nd.args, ids...)
	nd.args = append(nd.args, d.args[cut:]...)
	nd.offs = make([]int32, 0, n+2)
	nd.offs = append(nd.offs, d.offs[:pos+1]...)
	nd.offs = append(nd.offs, cut+int32(len(ids)))
	for _, o := range d.offs[pos+1:] {
		nd.offs = append(nd.offs, o+int32(len(ids)))
	}
	nd.buildTable()
	nd.buildSpans()
	return nd, pos, true
}

// Remove returns a new database with the fact at index i removed,
// leaving d untouched (copy-on-write). Every fact previously at index
// > i moves to index−1 in the new database. It panics when i is out of
// range, matching slice-index semantics.
func (d *Database) Remove(i int) *Database {
	if i < 0 || i >= d.Len() {
		panic(fmt.Sprintf("rel: Remove index %d out of range [0,%d)", i, d.Len()))
	}
	nd := &Database{syms: d.syms}
	n := d.Len()
	nd.rels = make([]int32, 0, n-1)
	nd.rels = append(nd.rels, d.rels[:i]...)
	nd.rels = append(nd.rels, d.rels[i+1:]...)
	lo, hi := d.offs[i], d.offs[i+1]
	gap := hi - lo
	nd.args = make([]int32, 0, int32(len(d.args))-gap)
	nd.args = append(nd.args, d.args[:lo]...)
	nd.args = append(nd.args, d.args[hi:]...)
	nd.offs = make([]int32, 0, n)
	nd.offs = append(nd.offs, d.offs[:i+1]...)
	for _, o := range d.offs[i+2:] {
		nd.offs = append(nd.offs, o-gap)
	}
	nd.buildTable()
	nd.buildSpans()
	return nd
}

// FullSubset returns the subset containing every fact of d.
func (d *Database) FullSubset() Subset {
	s := NewSubset(d.Len())
	for i := 0; i < d.Len(); i++ {
		s.Set(i)
	}
	return s
}

// NewSymbolsFromStrings rebuilds a symbol table from its string column
// in id order (the snapshot decode path). It fails on duplicates,
// which would make ids ambiguous.
func NewSymbolsFromStrings(strs []string) (*Symbols, error) {
	s, ok := newSymbolsFromStrings(strs)
	if !ok {
		return nil, fmt.Errorf("rel: duplicate string in symbol column")
	}
	return s, nil
}
