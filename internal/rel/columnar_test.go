package rel

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestColumnarRoundTrip re-assembles a database from its exposed
// columns and checks the copy is indistinguishable from the original:
// same facts, same indices, same spans, same lookup behaviour.
func TestColumnarRoundTrip(t *testing.T) {
	d := NewDatabase(
		NewFact("R", "a", "b"),
		NewFact("R", "a", "c"),
		NewFact("S", "x"),
		NewFact("R", "b", "b"),
		NewFact("T", "a", "b", "c"),
	)
	syms, rels, offs, args := d.Columns()

	nd, err := NewDatabaseColumnar(syms, rels, offs, args)
	if err != nil {
		t.Fatalf("NewDatabaseColumnar: %v", err)
	}
	if !d.Equal(nd) {
		t.Fatalf("columnar round trip changed the fact set: %v vs %v", d, nd)
	}
	for i := 0; i < d.Len(); i++ {
		f := d.Fact(i)
		if got := nd.IndexOf(f); got != i {
			t.Fatalf("IndexOf(%v) = %d, want %d", f, got, i)
		}
	}

	np, err := NewDatabaseFromParts(syms, rels, offs, args, d.LookupSlots())
	if err != nil {
		t.Fatalf("NewDatabaseFromParts: %v", err)
	}
	if !d.Equal(np) {
		t.Fatalf("from-parts round trip changed the fact set")
	}
	if got := np.IndexOf(NewFact("R", "a", "c")); got != d.IndexOf(NewFact("R", "a", "c")) {
		t.Fatalf("from-parts lookup disagrees: %d", got)
	}
	if np.Contains(NewFact("R", "zzz", "b")) {
		t.Fatalf("from-parts contains a fact that was never inserted")
	}
}

// TestColumnarRejectsCorruptColumns feeds malformed columns to the
// columnar constructors: each must error, never panic or accept.
func TestColumnarRejectsCorruptColumns(t *testing.T) {
	d := NewDatabase(NewFact("R", "a"), NewFact("R", "b"), NewFact("S", "a"))
	syms, rels, offs, args := d.Columns()

	cp := func(xs []int32) []int32 { return append([]int32(nil), xs...) }

	cases := []struct {
		name             string
		rels, offs, args []int32
		mutate           func(rels, offs, args []int32)
	}{
		{name: "out of order", rels: cp(rels), offs: cp(offs), args: cp(args),
			mutate: func(r, o, a []int32) { r[0], r[2] = r[2], r[0] }},
		{name: "duplicate rows", rels: cp(rels), offs: cp(offs), args: cp(args),
			mutate: func(r, o, a []int32) { r[1] = r[0]; a[1] = a[0] }},
		{name: "offsets decrease", rels: cp(rels), offs: cp(offs), args: cp(args),
			mutate: func(r, o, a []int32) { o[1] = 3; o[2] = 1 }},
		{name: "rel id out of range", rels: cp(rels), offs: cp(offs), args: cp(args),
			mutate: func(r, o, a []int32) { r[0] = 99 }},
		{name: "arg id out of range", rels: cp(rels), offs: cp(offs), args: cp(args),
			mutate: func(r, o, a []int32) { a[0] = -1 }},
		{name: "short offsets", rels: cp(rels), offs: cp(offs)[:2], args: cp(args)},
	}
	for _, tc := range cases {
		if tc.mutate != nil {
			tc.mutate(tc.rels, tc.offs, tc.args)
		}
		if _, err := NewDatabaseColumnar(syms, tc.rels, tc.offs, tc.args); err == nil {
			t.Errorf("%s: NewDatabaseColumnar accepted corrupt columns", tc.name)
		}
	}

	if _, err := NewDatabaseFromParts(syms, rels, offs, args, []int32{1, 2, 3}); err == nil {
		t.Errorf("NewDatabaseFromParts accepted a non-power-of-two slot array")
	}
	bad := cp(d.LookupSlots())
	bad[0] = 99
	if _, err := NewDatabaseFromParts(syms, rels, offs, args, bad); err == nil {
		t.Errorf("NewDatabaseFromParts accepted out-of-range slot values")
	}
}

// TestInternedLookupMatchesLinearScan cross-checks the hash index
// against a brute-force scan on a randomized instance, including facts
// that are almost-members (same relation, one argument off).
func TestInternedLookupMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var facts []Fact
	for i := 0; i < 400; i++ {
		facts = append(facts, NewFact(
			fmt.Sprintf("R%d", rng.Intn(5)),
			fmt.Sprintf("a%d", rng.Intn(20)),
			fmt.Sprintf("b%d", rng.Intn(20)),
		))
	}
	d := NewDatabase(facts...)
	probe := append([]Fact(nil), facts...)
	for i := 0; i < 200; i++ {
		probe = append(probe, NewFact(
			fmt.Sprintf("R%d", rng.Intn(6)),
			fmt.Sprintf("a%d", rng.Intn(25)),
			fmt.Sprintf("b%d", rng.Intn(25)),
		))
	}
	for _, f := range probe {
		want := -1
		for i := 0; i < d.Len(); i++ {
			if d.Fact(i).Equal(f) {
				want = i
				break
			}
		}
		if got := d.IndexOf(f); got != want {
			t.Fatalf("IndexOf(%v) = %d, want %d", f, got, want)
		}
	}
}

// TestSymbolsSharingAcrossMutations checks the copy-on-write contract:
// inserting a fact made of known strings shares the parent's symbol
// table, inserting an unseen string clones it, and the parent is
// unchanged either way.
func TestSymbolsSharingAcrossMutations(t *testing.T) {
	d := NewDatabase(NewFact("R", "a"), NewFact("R", "b"))
	before := d.Symbols().Len()

	nd, _, ok := d.Insert(NewFact("R", "a"))
	if ok || nd != d {
		t.Fatalf("inserting an existing fact must return the receiver unchanged")
	}

	shared, _, ok := d.Insert(NewFact("R", "b")) // present → unchanged
	if ok || shared != d {
		t.Fatalf("inserting a present fact must be a no-op")
	}

	// Known strings, new combination: share the table.
	two := NewDatabase(NewFact("R", "a", "b"), NewFact("R", "b", "a"))
	comb, _, ok := two.Insert(NewFact("R", "a", "a"))
	if !ok {
		t.Fatalf("insert of new fact failed")
	}
	if comb.Symbols() != two.Symbols() {
		t.Fatalf("insert of known strings must share the symbol table")
	}

	// Unseen string: clone, parent untouched.
	grown, _, ok := d.Insert(NewFact("R", "zzz"))
	if !ok {
		t.Fatalf("insert of new fact failed")
	}
	if grown.Symbols() == d.Symbols() {
		t.Fatalf("insert of an unseen string must clone the symbol table")
	}
	if d.Symbols().Len() != before {
		t.Fatalf("parent symbol table grew from %d to %d", before, d.Symbols().Len())
	}
	if _, ok := d.Symbols().Lookup("zzz"); ok {
		t.Fatalf("parent symbol table learned the child's string")
	}
}
