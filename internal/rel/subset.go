package rel

import (
	"math/bits"
	"strings"
)

// Subset is a bitset over the fact indices of a fixed database D,
// representing a sub-database D' ⊆ D. The repair engines use subsets as
// compact, hashable state keys when exploring the space of databases
// reachable by repairing sequences.
type Subset struct {
	words []uint64
	n     int
}

// NewSubset returns an empty subset over a universe of n facts.
func NewSubset(n int) Subset {
	return Subset{words: make([]uint64, (n+63)/64), n: n}
}

// Universe reports the size n of the underlying universe.
func (s Subset) Universe() int { return s.n }

// Set marks index i as present.
func (s Subset) Set(i int) { s.words[i/64] |= 1 << uint(i%64) }

// Clear marks index i as absent.
func (s Subset) Clear(i int) { s.words[i/64] &^= 1 << uint(i%64) }

// Has reports whether index i is present.
func (s Subset) Has(i int) bool { return s.words[i/64]&(1<<uint(i%64)) != 0 }

// Count reports the number of present indices (the size |D'|).
func (s Subset) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns an independent copy of the subset.
func (s Subset) Clone() Subset {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return Subset{words: w, n: s.n}
}

// WithoutIndices returns a copy of the subset with the given indices
// cleared. It is the bitset analogue of applying the operation −F.
func (s Subset) WithoutIndices(idx ...int) Subset {
	c := s.Clone()
	for _, i := range idx {
		c.Clear(i)
	}
	return c
}

// Key returns a canonical string encoding suitable for use as a map key.
func (s Subset) Key() string {
	var b strings.Builder
	b.Grow(len(s.words) * 8)
	for _, w := range s.words {
		for k := 0; k < 8; k++ {
			b.WriteByte(byte(w >> (8 * k)))
		}
	}
	return b.String()
}

// Equal reports whether two subsets over the same universe are equal.
func (s Subset) Equal(t Subset) bool {
	if s.n != t.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != t.words[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every index of s is present in t.
func (s Subset) SubsetOf(t Subset) bool {
	if s.n != t.n {
		return false
	}
	for i := range s.words {
		if s.words[i]&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// AddTo increments counts[i] for every present index i — the
// allocation-free form of iterating Indices, used by the marginal
// counting hot loop where one sampled repair updates every surviving
// fact's counter.
func (s Subset) AddTo(counts []int) {
	for wi, w := range s.words {
		base := wi * 64
		for w != 0 {
			b := bits.TrailingZeros64(w)
			counts[base+b]++
			w &= w - 1
		}
	}
}

// Indices returns the present indices in increasing order.
func (s Subset) Indices() []int {
	out := make([]int, 0, s.Count())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*64+b)
			w &= w - 1
		}
	}
	return out
}
