// Package fd implements functional dependencies over relational schemas
// (Section 2 of the paper): satisfaction, the violation set V(D,Σ)
// (Definition 3.2), conflict graphs CG(D,Σ), blocks of key-equal facts,
// and the classification of constraint sets into the classes the paper's
// complexity results distinguish (primary keys ⊂ keys ⊂ FDs).
package fd

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rel"
)

// FD is a functional dependency R : X → Y where X and Y are sets of
// attribute positions (0-based) of the relation R.
type FD struct {
	Rel string
	LHS []int
	RHS []int
}

// New builds an FD, normalising the attribute sets (sorted, deduplicated).
func New(relName string, lhs, rhs []int) FD {
	return FD{Rel: relName, LHS: normalise(lhs), RHS: normalise(rhs)}
}

func normalise(xs []int) []int {
	seen := make(map[int]bool, len(xs))
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	sort.Ints(out)
	return out
}

// Validate checks that the FD is well-formed w.r.t. the schema: the
// relation exists and every attribute position is within its arity.
func (f FD) Validate(s *rel.Schema) error {
	r, ok := s.Relation(f.Rel)
	if !ok {
		return fmt.Errorf("fd: unknown relation %q", f.Rel)
	}
	for _, sets := range [][]int{f.LHS, f.RHS} {
		for _, i := range sets {
			if i < 0 || i >= r.Arity() {
				return fmt.Errorf("fd: attribute position %d out of range for %s/%d", i, f.Rel, r.Arity())
			}
		}
	}
	if len(f.LHS) == 0 && len(f.RHS) == 0 {
		return fmt.Errorf("fd: empty dependency on %q", f.Rel)
	}
	return nil
}

// IsKey reports whether the FD is a key w.r.t. the schema, i.e.
// X ∪ Y = att(R).
func (f FD) IsKey(s *rel.Schema) bool {
	r, ok := s.Relation(f.Rel)
	if !ok {
		return false
	}
	covered := make(map[int]bool, r.Arity())
	for _, i := range f.LHS {
		covered[i] = true
	}
	for _, i := range f.RHS {
		covered[i] = true
	}
	return len(covered) == r.Arity()
}

// ViolatedBy reports whether the pair of facts {f1, f2} jointly violates
// the FD: they agree on every attribute of X but disagree on some
// attribute of Y. A fact never violates an FD with itself.
func (f FD) ViolatedBy(f1, f2 rel.Fact) bool {
	if f1.Rel != f.Rel || f2.Rel != f.Rel {
		return false
	}
	for _, i := range f.LHS {
		if f1.Arg(i) != f2.Arg(i) {
			return false
		}
	}
	for _, i := range f.RHS {
		if f1.Arg(i) != f2.Arg(i) {
			return true
		}
	}
	return false
}

// String renders the FD as "R: A1,A2 -> A3" using the schema-independent
// positional attribute names A1..An.
func (f FD) String() string {
	return fmt.Sprintf("%s: %s -> %s", f.Rel, attrList(f.LHS), attrList(f.RHS))
}

func attrList(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprintf("A%d", x+1)
	}
	return strings.Join(parts, ",")
}

// Set is a finite set Σ of FDs over a schema.
type Set struct {
	schema *rel.Schema
	fds    []FD
}

// NewSet builds a validated FD set over the schema.
func NewSet(schema *rel.Schema, fds ...FD) (*Set, error) {
	for _, f := range fds {
		if err := f.Validate(schema); err != nil {
			return nil, err
		}
	}
	cp := make([]FD, len(fds))
	copy(cp, fds)
	return &Set{schema: schema, fds: cp}, nil
}

// MustSet is like NewSet but panics on error.
func MustSet(schema *rel.Schema, fds ...FD) *Set {
	s, err := NewSet(schema, fds...)
	if err != nil {
		panic(err)
	}
	return s
}

// Schema returns the schema the set is defined over.
func (s *Set) Schema() *rel.Schema { return s.schema }

// FDs returns the dependencies in declaration order. The returned slice
// must not be modified.
func (s *Set) FDs() []FD { return s.fds }

// Len reports |Σ|.
func (s *Set) Len() int { return len(s.fds) }

// Class is the constraint class of an FD set, in increasing generality.
// The paper's approximability results are stated per class.
type Class int

const (
	// PrimaryKeys: every FD is a key and there is at most one key per
	// relation name.
	PrimaryKeys Class = iota
	// Keys: every FD is a key (possibly several per relation).
	Keys
	// GeneralFDs: arbitrary functional dependencies.
	GeneralFDs
)

// String names the class as the paper does.
func (c Class) String() string {
	switch c {
	case PrimaryKeys:
		return "primary keys"
	case Keys:
		return "keys"
	default:
		return "FDs"
	}
}

// Classify determines the most specific class the set belongs to.
func (s *Set) Classify() Class {
	perRel := make(map[string]int)
	allKeys := true
	for _, f := range s.fds {
		if !f.IsKey(s.schema) {
			allKeys = false
			break
		}
		perRel[f.Rel]++
	}
	if !allKeys {
		return GeneralFDs
	}
	for _, n := range perRel {
		if n > 1 {
			return Keys
		}
	}
	return PrimaryKeys
}

// Satisfies reports whether D |= Σ.
func (s *Set) Satisfies(d *rel.Database) bool {
	return len(s.Violations(d)) == 0
}

// SatisfiesFD reports whether D |= φ for a single FD.
func SatisfiesFD(d *rel.Database, phi FD) bool {
	ok := true
	violationsOf(d, phi, func(_, _ int) bool {
		ok = false
		return false
	})
	return ok
}

// Violation is an element (φ, {f, g}) of V(D,Σ): the FD at index FDIndex
// in the set is violated by the pair of facts at database indices I < J.
type Violation struct {
	FDIndex int
	I, J    int
}

// Violations computes V(D,Σ) as pairs of fact indices of d, sorted by
// (FDIndex, I, J). For each FD the scan covers only the relation's
// fact span, bucketed by the interned LHS projection (id comparisons,
// no key strings), so consistent relations cost near-linear time.
func (s *Set) Violations(d *rel.Database) []Violation {
	var out []Violation
	for fi, phi := range s.fds {
		fi := fi
		violationsOf(d, phi, func(i, j int) bool {
			out = append(out, Violation{FDIndex: fi, I: i, J: j})
			return true
		})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].FDIndex != out[b].FDIndex {
			return out[a].FDIndex < out[b].FDIndex
		}
		if out[a].I != out[b].I {
			return out[a].I < out[b].I
		}
		return out[a].J < out[b].J
	})
	return out
}

// ConflictPairs returns the edge set of the conflict graph CG(D,Σ): the
// sorted, deduplicated pairs {i, j} of fact indices with {f_i, f_j} ̸|= Σ.
func (s *Set) ConflictPairs(d *rel.Database) [][2]int {
	seen := make(map[[2]int]bool)
	var out [][2]int
	for _, v := range s.Violations(d) {
		p := [2]int{v.I, v.J}
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}

// InConflict reports whether the two facts jointly violate some FD of Σ.
func (s *Set) InConflict(f, g rel.Fact) bool {
	for _, phi := range s.fds {
		if phi.ViolatedBy(f, g) {
			return true
		}
	}
	return false
}

// Block is a maximal set of facts of one relation that agree on the LHS
// of that relation's (primary) key. Facts of the same block of size ≥ 2
// pairwise violate the key; facts of different blocks never conflict
// (when Σ is a set of primary keys).
type Block struct {
	Rel     string
	Indices []int // fact indices in d, sorted
}

// Size reports |B|.
func (b Block) Size() int { return len(b.Indices) }

// Blocks partitions the facts of d into blocks w.r.t. the primary key of
// each relation. Facts of relations without a key in Σ form singleton
// blocks, as do facts of keyed relations that share their LHS values with
// no other fact. The result is sorted by the smallest fact index.
//
// Blocks must only be used when s.Classify() == PrimaryKeys; it panics
// otherwise, because the block decomposition is not meaningful for
// general keys or FDs.
func (s *Set) Blocks(d *rel.Database) []Block {
	if s.Classify() != PrimaryKeys {
		panic("fd: Blocks requires a set of primary keys")
	}
	keyOf := make(map[string]FD)
	for _, f := range s.fds {
		keyOf[f.Rel] = f
	}
	var out []Block
	// The sort order is relation-major, so each relation is one
	// contiguous span; group each keyed span by its interned LHS
	// projection, and emit singleton blocks for keyless relations.
	n := d.Len()
	for lo := 0; lo < n; {
		hi := lo + 1
		for hi < n && d.RelID(hi) == d.RelID(lo) {
			hi++
		}
		relName := d.Symbols().Str(d.RelID(lo))
		phi, keyed := keyOf[relName]
		if !keyed {
			for i := lo; i < hi; i++ {
				out = append(out, Block{Rel: relName, Indices: []int{i}})
			}
		} else {
			g := newGrouper(d, phi.LHS, lo, hi)
			for i := lo; i < hi; i++ {
				g.add(i)
			}
			g.buckets(func(idxs []int) bool {
				out = append(out, Block{Rel: relName, Indices: append([]int(nil), idxs...)})
				return true
			})
		}
		lo = hi
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Indices[0] < out[b].Indices[0] })
	return out
}

// String renders the set as "{fd1; fd2; ...}".
func (s *Set) String() string {
	parts := make([]string, len(s.fds))
	for i, f := range s.fds {
		parts[i] = f.String()
	}
	return "{" + strings.Join(parts, "; ") + "}"
}
