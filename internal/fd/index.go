package fd

// This file implements incremental conflict maintenance: a per-FD hash
// index over the LHS projections of a database's facts, supporting
// O(block)-time discovery of the conflict partners of a single fact.
// The index is what lets InsertFact/DeleteFact (internal/core) update
// the conflict pairs of CG(D,Σ) by bucketing only the touched fact
// against each FD's LHS groups instead of recomputing ConflictPairs
// from scratch.
//
// Bucket keys are the packed interned LHS projections (4 bytes per
// symbol id — fixed width, so no escaping or terminators). Symbol ids
// are append-only across a copy-on-write mutation lineage, which makes
// keys packed against the lineage's different databases comparable;
// that is what lets WithInsert/WithRemove shift-copy the buckets
// without re-deriving a single key.

import (
	"sort"

	"repro/internal/rel"
)

// Index is a per-FD LHS bucket index over a fixed database: for each FD
// φ of Σ, a map from packed LHS-projection key to the (sorted) indices
// of the facts of φ's relation carrying that projection. An Index is
// immutable after construction; WithInsert/WithRemove produce shifted
// copies for the mutated database, so instances sharing structure never
// observe each other's mutations.
type Index struct {
	set     *Set
	buckets []map[string][]int // one per FD of set, packed key → fact indices
}

// NewIndex builds the LHS index of (d, Σ) in O(‖D‖·|Σ|).
func NewIndex(s *Set, d *rel.Database) *Index {
	ix := &Index{set: s, buckets: make([]map[string][]int, len(s.fds))}
	var buf []byte
	for fi, phi := range s.fds {
		b := make(map[string][]int)
		lo, hi := d.RelRange(phi.Rel)
		for i := lo; i < hi; i++ {
			buf = packLHS(buf, d, phi, i)
			b[string(buf)] = append(b[string(buf)], i)
		}
		ix.buckets[fi] = b
	}
	return ix
}

// Set returns the FD set the index is built for.
func (ix *Index) Set() *Set { return ix.set }

// ConflictsOf returns the sorted, deduplicated indices of the facts of
// d that jointly violate some FD of Σ with the fact at index i. Only
// the buckets the fact falls into are inspected, so the cost is
// O(Σ_φ |block_φ(f_i)|) — independent of ‖D‖ outside f_i's blocks.
func (ix *Index) ConflictsOf(d *rel.Database, i int) []int {
	rid := d.RelID(i)
	seen := make(map[int]bool)
	var out []int
	var buf []byte
	for fi, phi := range ix.set.fds {
		phiRID, ok := d.RelIDOf(phi.Rel)
		if !ok || phiRID != rid {
			continue
		}
		buf = packLHS(buf, d, phi, i)
		for _, j := range ix.buckets[fi][string(buf)] {
			if j == i || seen[j] {
				continue
			}
			if violatedRows(d, phi, i, j) {
				seen[j] = true
				out = append(out, j)
			}
		}
	}
	sort.Ints(out)
	return out
}

// WithInsert returns the index of the database nd obtained by inserting
// a fact at position pos (every old index ≥ pos shifted up by one, the
// new fact bucketed in). O(‖D‖) pure copying; no violation checks.
func (ix *Index) WithInsert(nd *rel.Database, pos int) *Index {
	out := &Index{set: ix.set, buckets: make([]map[string][]int, len(ix.buckets))}
	rid := nd.RelID(pos)
	var buf []byte
	for fi, phi := range ix.set.fds {
		b := make(map[string][]int, len(ix.buckets[fi])+1)
		for k, idxs := range ix.buckets[fi] {
			shifted := make([]int, len(idxs))
			for x, j := range idxs {
				if j >= pos {
					j++
				}
				shifted[x] = j
			}
			b[k] = shifted
		}
		if phiRID, ok := nd.RelIDOf(phi.Rel); ok && phiRID == rid {
			buf = packLHS(buf, nd, phi, pos)
			b[string(buf)] = insertSorted(b[string(buf)], pos)
		}
		out.buckets[fi] = b
	}
	return out
}

// WithRemove returns the index of the database nd obtained by removing
// the fact previously at position pos (every old index > pos shifted
// down by one, pos dropped from its buckets). O(‖D‖) pure copying.
func (ix *Index) WithRemove(nd *rel.Database, pos int) *Index {
	out := &Index{set: ix.set, buckets: make([]map[string][]int, len(ix.buckets))}
	for fi := range ix.set.fds {
		b := make(map[string][]int, len(ix.buckets[fi]))
		for k, idxs := range ix.buckets[fi] {
			shifted := make([]int, 0, len(idxs))
			for _, j := range idxs {
				switch {
				case j == pos:
					continue
				case j > pos:
					shifted = append(shifted, j-1)
				default:
					shifted = append(shifted, j)
				}
			}
			if len(shifted) > 0 {
				b[k] = shifted
			}
		}
		out.buckets[fi] = b
	}
	return out
}

// insertSorted inserts v into the sorted slice xs, keeping it sorted.
func insertSorted(xs []int, v int) []int {
	at := sort.SearchInts(xs, v)
	xs = append(xs, 0)
	copy(xs[at+1:], xs[at:])
	xs[at] = v
	return xs
}
