package fd

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/rel"
)

func indexFixture(t *testing.T) (*rel.Database, *Set) {
	t.Helper()
	d := rel.NewDatabase(
		rel.NewFact("Emp", "1", "Alice"),
		rel.NewFact("Emp", "1", "Tom"),
		rel.NewFact("Emp", "2", "Bob"),
		rel.NewFact("Emp", "3", "Eve"),
		rel.NewFact("Emp", "3", "Mallory"),
	)
	sch := rel.MustSchema(rel.NewRelation("Emp", 2))
	sigma := MustSet(sch, New("Emp", []int{0}, []int{1}))
	return d, sigma
}

// conflictsFromPairs derives fact i's conflict partners from the full
// ConflictPairs recompute — the ground truth the index must match.
func conflictsFromPairs(s *Set, d *rel.Database, i int) []int {
	var out []int
	for _, p := range s.ConflictPairs(d) {
		if p[0] == i {
			out = append(out, p[1])
		}
		if p[1] == i {
			out = append(out, p[0])
		}
	}
	sort.Ints(out)
	return out
}

func TestConflictsOfMatchesConflictPairs(t *testing.T) {
	d, sigma := indexFixture(t)
	ix := NewIndex(sigma, d)
	for i := 0; i < d.Len(); i++ {
		got := ix.ConflictsOf(d, i)
		want := conflictsFromPairs(sigma, d, i)
		if !reflect.DeepEqual(got, want) && (len(got) != 0 || len(want) != 0) {
			t.Fatalf("fact %d (%v): ConflictsOf = %v, want %v", i, d.Fact(i), got, want)
		}
	}
}

// TestIndexShiftingMatchesRebuild mutates a database through random
// inserts and removals, maintaining the index incrementally, and checks
// every intermediate index answers ConflictsOf exactly like a fresh
// NewIndex over the mutated database.
func TestIndexShiftingMatchesRebuild(t *testing.T) {
	sch := rel.MustSchema(rel.NewRelation("R", 3))
	sigma := MustSet(sch,
		New("R", []int{0}, []int{1}),
		New("R", []int{1}, []int{2}),
	)
	rng := rand.New(rand.NewSource(11))
	d := rel.NewDatabase()
	ix := NewIndex(sigma, d)
	letter := func() string { return string(rune('a' + rng.Intn(5))) }
	for step := 0; step < 150; step++ {
		if d.Len() == 0 || rng.Intn(3) > 0 {
			f := rel.NewFact("R", letter(), letter(), letter())
			nd, pos, ok := d.Insert(f)
			if !ok {
				continue
			}
			d, ix = nd, ix.WithInsert(nd, pos)
		} else {
			pos := rng.Intn(d.Len())
			nd := d.Remove(pos)
			d, ix = nd, ix.WithRemove(nd, pos)
		}
		fresh := NewIndex(sigma, d)
		for i := 0; i < d.Len(); i++ {
			got, want := ix.ConflictsOf(d, i), fresh.ConflictsOf(d, i)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("step %d, fact %d: incremental %v != rebuilt %v", step, i, got, want)
			}
		}
	}
}

func TestIndexCopyOnWriteDoesNotAliasOld(t *testing.T) {
	d, sigma := indexFixture(t)
	ix := NewIndex(sigma, d)
	before := make([][]int, d.Len())
	for i := range before {
		before[i] = ix.ConflictsOf(d, i)
	}
	nd, pos, ok := d.Insert(rel.NewFact("Emp", "2", "Carol"))
	if !ok {
		t.Fatal("insert failed")
	}
	_ = ix.WithInsert(nd, pos)
	for i := range before {
		if got := ix.ConflictsOf(d, i); !reflect.DeepEqual(got, before[i]) && (len(got) != 0 || len(before[i]) != 0) {
			t.Fatalf("old index mutated for fact %d: %v != %v", i, got, before[i])
		}
	}
}
