package fd

// This file implements classical FD reasoning — attribute-set closure
// (Armstrong's axioms), implication Σ ⊨ φ, equivalence, and minimal
// covers. The operational semantics of the paper depends on Σ only
// through the violation set V(D,Σ) up to conflict pairs, so replacing
// Σ by an equivalent cover changes neither the conflict graph nor the
// candidate repairs — a property the tests verify against the core
// engines. Minimal covers are the practical preprocessing step for
// large constraint sets.

// Closure computes the attribute closure X⁺ of the given attribute
// positions of relation relName under the FDs of the set: the largest
// set of positions functionally determined by X.
func (s *Set) Closure(relName string, attrs []int) []int {
	inClosure := make(map[int]bool, len(attrs))
	for _, a := range attrs {
		inClosure[a] = true
	}
	for changed := true; changed; {
		changed = false
		for _, phi := range s.fds {
			if phi.Rel != relName {
				continue
			}
			all := true
			for _, a := range phi.LHS {
				if !inClosure[a] {
					all = false
					break
				}
			}
			if !all {
				continue
			}
			for _, b := range phi.RHS {
				if !inClosure[b] {
					inClosure[b] = true
					changed = true
				}
			}
		}
	}
	out := make([]int, 0, len(inClosure))
	for a := range inClosure {
		out = append(out, a)
	}
	return normalise(out)
}

// Implies reports whether Σ ⊨ φ: every database satisfying Σ satisfies
// φ, decided by the closure test RHS ⊆ LHS⁺.
func (s *Set) Implies(phi FD) bool {
	cl := make(map[int]bool)
	for _, a := range s.Closure(phi.Rel, phi.LHS) {
		cl[a] = true
	}
	for _, b := range phi.RHS {
		if !cl[b] {
			return false
		}
	}
	return true
}

// Equivalent reports whether the two sets imply each other (over the
// same schema).
func (s *Set) Equivalent(other *Set) bool {
	for _, phi := range other.fds {
		if !s.Implies(phi) {
			return false
		}
	}
	for _, phi := range s.fds {
		if !other.Implies(phi) {
			return false
		}
	}
	return true
}

// MinimalCover computes a minimal cover of Σ: an equivalent set whose
// FDs have singleton right-hand sides, no extraneous left-hand-side
// attributes, and no redundant members. The classical three-phase
// algorithm; the result is deterministic for a fixed input order.
func (s *Set) MinimalCover() *Set {
	// Phase 1: singleton RHS.
	var work []FD
	for _, phi := range s.fds {
		for _, b := range phi.RHS {
			work = append(work, New(phi.Rel, phi.LHS, []int{b}))
		}
	}
	cover := &Set{schema: s.schema, fds: work}

	// Phase 2: drop extraneous LHS attributes: a ∈ X is extraneous in
	// X → b if (X \ {a})⁺ under the current cover contains b.
	for i := range cover.fds {
		phi := cover.fds[i]
		lhs := append([]int(nil), phi.LHS...)
		for j := 0; j < len(lhs); j++ {
			if len(lhs) == 1 {
				break
			}
			reduced := append(append([]int(nil), lhs[:j]...), lhs[j+1:]...)
			cl := cover.Closure(phi.Rel, reduced)
			if containsAll(cl, phi.RHS) {
				lhs = reduced
				j--
			}
		}
		cover.fds[i] = New(phi.Rel, lhs, phi.RHS)
	}

	// Phase 3: drop redundant FDs: φ is redundant if Σ \ {φ} ⊨ φ.
	for i := 0; i < len(cover.fds); i++ {
		without := &Set{schema: s.schema}
		without.fds = append(append([]FD(nil), cover.fds[:i]...), cover.fds[i+1:]...)
		if without.Implies(cover.fds[i]) {
			cover.fds = without.fds
			i--
		}
	}

	// Deduplicate (phase 1 can create duplicates that phase 3 already
	// prunes, but keep the invariant explicit).
	return cover
}

func containsAll(haystack, needles []int) bool {
	set := make(map[int]bool, len(haystack))
	for _, a := range haystack {
		set[a] = true
	}
	for _, n := range needles {
		if !set[n] {
			return false
		}
	}
	return true
}

// IsKeySet reports whether the attribute positions form a superkey of
// the relation under Σ: their closure covers every attribute.
func (s *Set) IsKeySet(relName string, attrs []int) bool {
	r, ok := s.schema.Relation(relName)
	if !ok {
		return false
	}
	return len(s.Closure(relName, attrs)) == r.Arity()
}

// CandidateKeys enumerates the minimal superkeys of the relation under
// Σ by breadth-first search over attribute subsets (exponential in the
// arity; relations have small arity in this domain).
func (s *Set) CandidateKeys(relName string) [][]int {
	r, ok := s.schema.Relation(relName)
	if !ok {
		return nil
	}
	n := r.Arity()
	var keys [][]int
	isMinimal := func(attrs []int) bool {
		for _, k := range keys {
			if containsAll(attrs, k) {
				return false
			}
		}
		return true
	}
	// Subsets in order of increasing size.
	for size := 1; size <= n; size++ {
		var recur func(start int, cur []int)
		recur = func(start int, cur []int) {
			if len(cur) == size {
				attrs := append([]int(nil), cur...)
				if isMinimal(attrs) && s.IsKeySet(relName, attrs) {
					keys = append(keys, attrs)
				}
				return
			}
			for a := start; a < n; a++ {
				recur(a+1, append(cur, a))
			}
		}
		recur(0, nil)
	}
	return keys
}
