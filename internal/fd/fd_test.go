package fd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rel"
)

func schemaR3() *rel.Schema {
	return rel.MustSchema(rel.NewRelation("R", 3))
}

// runningExample returns the database and FD set of Example 3.6:
// D = {R(a1,b1,c1), R(a1,b2,c2), R(a2,b1,c2)} with φ1 = R: A→B and
// φ2 = R: C→B.
func runningExample() (*rel.Database, *Set) {
	d := rel.NewDatabase(
		rel.NewFact("R", "a1", "b1", "c1"),
		rel.NewFact("R", "a1", "b2", "c2"),
		rel.NewFact("R", "a2", "b1", "c2"),
	)
	s := MustSet(schemaR3(),
		New("R", []int{0}, []int{1}),
		New("R", []int{2}, []int{1}),
	)
	return d, s
}

func TestNewNormalises(t *testing.T) {
	f := New("R", []int{2, 0, 2}, []int{1, 1})
	if len(f.LHS) != 2 || f.LHS[0] != 0 || f.LHS[1] != 2 {
		t.Fatalf("LHS = %v", f.LHS)
	}
	if len(f.RHS) != 1 || f.RHS[0] != 1 {
		t.Fatalf("RHS = %v", f.RHS)
	}
}

func TestValidate(t *testing.T) {
	s := schemaR3()
	if err := New("R", []int{0}, []int{1}).Validate(s); err != nil {
		t.Fatalf("valid FD rejected: %v", err)
	}
	if err := New("S", []int{0}, []int{1}).Validate(s); err == nil {
		t.Fatal("unknown relation accepted")
	}
	if err := New("R", []int{0}, []int{3}).Validate(s); err == nil {
		t.Fatal("out-of-range attribute accepted")
	}
	if err := New("R", nil, nil).Validate(s); err == nil {
		t.Fatal("empty FD accepted")
	}
}

func TestIsKey(t *testing.T) {
	s := schemaR3()
	if !New("R", []int{0}, []int{1, 2}).IsKey(s) {
		t.Error("A -> B,C should be a key of R/3")
	}
	if New("R", []int{0}, []int{1}).IsKey(s) {
		t.Error("A -> B is not a key of R/3")
	}
	if !New("R", []int{0, 1}, []int{2}).IsKey(s) {
		t.Error("A,B -> C should be a key of R/3")
	}
}

func TestViolatedBy(t *testing.T) {
	phi := New("R", []int{0}, []int{1})
	f1 := rel.NewFact("R", "a", "b", "c")
	f2 := rel.NewFact("R", "a", "x", "c")
	f3 := rel.NewFact("R", "z", "x", "c")
	if !phi.ViolatedBy(f1, f2) {
		t.Error("same LHS, different RHS should violate")
	}
	if phi.ViolatedBy(f1, f3) {
		t.Error("different LHS should not violate")
	}
	if phi.ViolatedBy(f1, f1) {
		t.Error("a fact cannot violate an FD with itself")
	}
	if phi.ViolatedBy(f1, rel.NewFact("S", "a", "x")) {
		t.Error("facts of other relations cannot violate")
	}
}

func TestStringRendering(t *testing.T) {
	f := New("R", []int{0, 2}, []int{1})
	if got := f.String(); got != "R: A1,A3 -> A2" {
		t.Fatalf("String = %q", got)
	}
}

func TestClassify(t *testing.T) {
	s := schemaR3()
	tests := []struct {
		name string
		fds  []FD
		want Class
	}{
		{"empty", nil, PrimaryKeys},
		{"one key", []FD{New("R", []int{0}, []int{1, 2})}, PrimaryKeys},
		{"two keys same rel", []FD{
			New("R", []int{0}, []int{1, 2}),
			New("R", []int{1}, []int{0, 2}),
		}, Keys},
		{"non-key FD", []FD{New("R", []int{0}, []int{1})}, GeneralFDs},
		{"mixed", []FD{
			New("R", []int{0}, []int{1, 2}),
			New("R", []int{2}, []int{1}),
		}, GeneralFDs},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			set := MustSet(s, tc.fds...)
			if got := set.Classify(); got != tc.want {
				t.Fatalf("Classify = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestClassifyTwoRelationsPrimary(t *testing.T) {
	sch := rel.MustSchema(rel.NewRelation("R", 2), rel.NewRelation("S", 2))
	set := MustSet(sch,
		New("R", []int{0}, []int{1}),
		New("S", []int{0}, []int{1}),
	)
	if set.Classify() != PrimaryKeys {
		t.Fatal("one key per relation should be primary keys")
	}
}

func TestClassString(t *testing.T) {
	if PrimaryKeys.String() != "primary keys" || Keys.String() != "keys" || GeneralFDs.String() != "FDs" {
		t.Fatal("Class.String wrong")
	}
}

func TestViolationsRunningExample(t *testing.T) {
	d, s := runningExample()
	vs := s.Violations(d)
	// V(D,Σ) = {(φ1,{f1,f2}), (φ2,{f2,f3})} where facts sort as
	// f1=R(a1,b1,c1)=0, f2=R(a1,b2,c2)=1, f3=R(a2,b1,c2)=2.
	if len(vs) != 2 {
		t.Fatalf("got %d violations, want 2: %v", len(vs), vs)
	}
	if vs[0] != (Violation{FDIndex: 0, I: 0, J: 1}) {
		t.Errorf("vs[0] = %v", vs[0])
	}
	if vs[1] != (Violation{FDIndex: 1, I: 1, J: 2}) {
		t.Errorf("vs[1] = %v", vs[1])
	}
	if s.Satisfies(d) {
		t.Error("D should be inconsistent")
	}
}

func TestSatisfiesConsistent(t *testing.T) {
	d := rel.NewDatabase(
		rel.NewFact("R", "a1", "b1", "c1"),
		rel.NewFact("R", "a2", "b2", "c2"),
	)
	_, s := runningExample()
	if !s.Satisfies(d) {
		t.Error("consistent database rejected")
	}
}

func TestSatisfiesFD(t *testing.T) {
	d, _ := runningExample()
	if SatisfiesFD(d, New("R", []int{0}, []int{1})) {
		t.Error("φ1 should be violated")
	}
	if !SatisfiesFD(d, New("R", []int{0, 1}, []int{2})) {
		t.Error("A,B -> C should hold")
	}
}

func TestConflictPairsDedup(t *testing.T) {
	// Two keys both violated by the same pair must yield one edge.
	sch := rel.MustSchema(rel.NewRelation("R", 2))
	s := MustSet(sch,
		New("R", []int{0}, []int{1}),
		New("R", []int{1}, []int{0}),
	)
	d := rel.NewDatabase(
		rel.NewFact("R", "a", "b"),
		rel.NewFact("R", "a", "c"),
		rel.NewFact("R", "z", "c"),
	)
	// R(a,b)-R(a,c) violate key1; R(a,c)-R(z,c) violate key2.
	pairs := s.ConflictPairs(d)
	if len(pairs) != 2 {
		t.Fatalf("pairs = %v", pairs)
	}
}

func TestInConflict(t *testing.T) {
	_, s := runningExample()
	f1 := rel.NewFact("R", "a1", "b1", "c1")
	f2 := rel.NewFact("R", "a1", "b2", "c2")
	f3 := rel.NewFact("R", "a2", "b1", "c2")
	if !s.InConflict(f1, f2) || !s.InConflict(f2, f3) {
		t.Error("expected conflicts missing")
	}
	if s.InConflict(f1, f3) {
		t.Error("f1, f3 do not conflict")
	}
}

// figure2 returns the database of Figure 2 with Σ = {R: A1 → A2}.
func figure2() (*rel.Database, *Set) {
	d := rel.NewDatabase(
		rel.NewFact("R", "a1", "b1"),
		rel.NewFact("R", "a1", "b2"),
		rel.NewFact("R", "a1", "b3"),
		rel.NewFact("R", "a2", "b1"),
		rel.NewFact("R", "a3", "b1"),
		rel.NewFact("R", "a3", "b2"),
	)
	sch := rel.MustSchema(rel.NewRelation("R", 2))
	return d, MustSet(sch, New("R", []int{0}, []int{1}))
}

func TestBlocksFigure2(t *testing.T) {
	d, s := figure2()
	blocks := s.Blocks(d)
	if len(blocks) != 3 {
		t.Fatalf("got %d blocks, want 3", len(blocks))
	}
	sizes := []int{blocks[0].Size(), blocks[1].Size(), blocks[2].Size()}
	if sizes[0] != 3 || sizes[1] != 1 || sizes[2] != 2 {
		t.Fatalf("block sizes = %v, want [3 1 2]", sizes)
	}
}

func TestBlocksKeylessRelation(t *testing.T) {
	sch := rel.MustSchema(rel.NewRelation("R", 2), rel.NewRelation("S", 1))
	s := MustSet(sch, New("R", []int{0}, []int{1}))
	d := rel.NewDatabase(
		rel.NewFact("R", "a", "b"),
		rel.NewFact("R", "a", "c"),
		rel.NewFact("S", "x"),
		rel.NewFact("S", "y"),
	)
	blocks := s.Blocks(d)
	// One block of size 2 for R, singleton blocks for each S fact.
	if len(blocks) != 3 {
		t.Fatalf("got %d blocks, want 3", len(blocks))
	}
	var twos, ones int
	for _, b := range blocks {
		switch b.Size() {
		case 1:
			ones++
		case 2:
			twos++
		}
	}
	if twos != 1 || ones != 2 {
		t.Fatalf("block sizes wrong: %v", blocks)
	}
}

func TestBlocksPanicsForNonPrimary(t *testing.T) {
	d, s := runningExample() // general FDs
	defer func() {
		if recover() == nil {
			t.Fatal("Blocks should panic for non-primary-key sets")
		}
	}()
	s.Blocks(d)
}

func TestSetString(t *testing.T) {
	_, s := runningExample()
	want := "{R: A1 -> A2; R: A3 -> A2}"
	if got := s.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

// Property: the conflict-pair relation is exactly the pairs (i,j) with
// InConflict, and blocks partition the database with intra-block pairs
// conflicting and inter-block pairs not (primary keys).
func TestQuickBlocksMatchConflicts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sch := rel.MustSchema(rel.NewRelation("R", 2))
	s := MustSet(sch, New("R", []int{0}, []int{1}))
	prop := func() bool {
		n := 1 + rng.Intn(12)
		facts := make([]rel.Fact, n)
		for i := range facts {
			facts[i] = rel.NewFact("R",
				string(rune('a'+rng.Intn(3))),
				string(rune('p'+rng.Intn(4))))
		}
		d := rel.NewDatabase(facts...)
		blocks := s.Blocks(d)
		covered := make(map[int]int) // fact index -> block id
		for bi, b := range blocks {
			for _, i := range b.Indices {
				if _, dup := covered[i]; dup {
					return false // not a partition
				}
				covered[i] = bi
			}
		}
		if len(covered) != d.Len() {
			return false
		}
		for i := 0; i < d.Len(); i++ {
			for j := i + 1; j < d.Len(); j++ {
				conf := s.InConflict(d.Fact(i), d.Fact(j))
				same := covered[i] == covered[j]
				if conf != same {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: Violations agrees with a naive all-pairs check.
func TestQuickViolationsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sch := rel.MustSchema(rel.NewRelation("R", 3))
	s := MustSet(sch,
		New("R", []int{0}, []int{1}),
		New("R", []int{2}, []int{1}),
	)
	prop := func() bool {
		n := rng.Intn(10)
		facts := make([]rel.Fact, n)
		for i := range facts {
			facts[i] = rel.NewFact("R",
				string(rune('a'+rng.Intn(3))),
				string(rune('p'+rng.Intn(3))),
				string(rune('x'+rng.Intn(3))))
		}
		d := rel.NewDatabase(facts...)
		got := s.Violations(d)
		var want []Violation
		for fi, phi := range s.FDs() {
			for i := 0; i < d.Len(); i++ {
				for j := i + 1; j < d.Len(); j++ {
					if phi.ViolatedBy(d.Fact(i), d.Fact(j)) {
						want = append(want, Violation{FDIndex: fi, I: i, J: j})
					}
				}
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
