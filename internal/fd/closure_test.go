package fd

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/rel"
)

func schemaR4() *rel.Schema {
	return rel.MustSchema(rel.NewRelation("R", 4))
}

func TestClosureTextbook(t *testing.T) {
	// Σ = {A→B, B→C}: A⁺ = ABC, C⁺ = C, D⁺ = D.
	s := MustSet(schemaR4(),
		New("R", []int{0}, []int{1}),
		New("R", []int{1}, []int{2}),
	)
	if got := s.Closure("R", []int{0}); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("A+ = %v", got)
	}
	if got := s.Closure("R", []int{2}); !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("C+ = %v", got)
	}
	if got := s.Closure("R", []int{3}); !reflect.DeepEqual(got, []int{3}) {
		t.Errorf("D+ = %v", got)
	}
}

func TestClosureIgnoresOtherRelations(t *testing.T) {
	sch := rel.MustSchema(rel.NewRelation("R", 2), rel.NewRelation("S", 2))
	s := MustSet(sch, New("S", []int{0}, []int{1}))
	if got := s.Closure("R", []int{0}); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("closure crossed relations: %v", got)
	}
}

func TestImplies(t *testing.T) {
	s := MustSet(schemaR4(),
		New("R", []int{0}, []int{1}),
		New("R", []int{1}, []int{2}),
	)
	if !s.Implies(New("R", []int{0}, []int{2})) {
		t.Error("transitivity: A→C should follow")
	}
	if !s.Implies(New("R", []int{0, 3}, []int{2})) {
		t.Error("augmentation: AD→C should follow")
	}
	if s.Implies(New("R", []int{2}, []int{0})) {
		t.Error("C→A should not follow")
	}
	if !s.Implies(New("R", []int{0}, []int{0})) {
		t.Error("reflexivity: A→A always holds")
	}
}

func TestEquivalent(t *testing.T) {
	a := MustSet(schemaR4(),
		New("R", []int{0}, []int{1}),
		New("R", []int{1}, []int{2}),
	)
	b := MustSet(schemaR4(),
		New("R", []int{0}, []int{1, 2}),
		New("R", []int{1}, []int{2}),
	)
	if !a.Equivalent(b) || !b.Equivalent(a) {
		t.Error("a and b should be equivalent")
	}
	c := MustSet(schemaR4(), New("R", []int{0}, []int{1}))
	if a.Equivalent(c) {
		t.Error("a is strictly stronger than c")
	}
}

func TestMinimalCoverSingletonRHS(t *testing.T) {
	s := MustSet(schemaR4(), New("R", []int{0}, []int{1, 2, 3}))
	mc := s.MinimalCover()
	for _, phi := range mc.FDs() {
		if len(phi.RHS) != 1 {
			t.Fatalf("non-singleton RHS in cover: %v", phi)
		}
	}
	if !mc.Equivalent(s) {
		t.Fatal("cover not equivalent")
	}
}

func TestMinimalCoverDropsRedundant(t *testing.T) {
	// A→B, B→C, A→C: the last is redundant.
	s := MustSet(schemaR4(),
		New("R", []int{0}, []int{1}),
		New("R", []int{1}, []int{2}),
		New("R", []int{0}, []int{2}),
	)
	mc := s.MinimalCover()
	if mc.Len() != 2 {
		t.Fatalf("cover size = %d, want 2: %v", mc.Len(), mc.FDs())
	}
	if !mc.Equivalent(s) {
		t.Fatal("cover not equivalent")
	}
}

func TestMinimalCoverDropsExtraneousLHS(t *testing.T) {
	// A→B and AB→C: B is extraneous in AB→C (since A→B gives A⁺ ⊇ B).
	s := MustSet(schemaR4(),
		New("R", []int{0}, []int{1}),
		New("R", []int{0, 1}, []int{2}),
	)
	mc := s.MinimalCover()
	for _, phi := range mc.FDs() {
		if len(phi.LHS) > 1 {
			t.Fatalf("extraneous LHS survived: %v", phi)
		}
	}
	if !mc.Equivalent(s) {
		t.Fatal("cover not equivalent")
	}
}

func TestIsKeySetAndCandidateKeys(t *testing.T) {
	// R(A,B,C,D) with A→B, B→C, C→D: the unique candidate key is {A}.
	s := MustSet(schemaR4(),
		New("R", []int{0}, []int{1}),
		New("R", []int{1}, []int{2}),
		New("R", []int{2}, []int{3}),
	)
	if !s.IsKeySet("R", []int{0}) {
		t.Error("{A} should be a key")
	}
	if s.IsKeySet("R", []int{1}) {
		t.Error("{B} should not be a key")
	}
	keys := s.CandidateKeys("R")
	if len(keys) != 1 || !reflect.DeepEqual(keys[0], []int{0}) {
		t.Fatalf("candidate keys = %v", keys)
	}
}

func TestCandidateKeysCycle(t *testing.T) {
	// A→B, B→A, AB→CD over R/4... make it A→B,B→A plus A→C, A→D:
	// candidate keys {A} and {B}.
	s := MustSet(schemaR4(),
		New("R", []int{0}, []int{1}),
		New("R", []int{1}, []int{0}),
		New("R", []int{0}, []int{2, 3}),
	)
	keys := s.CandidateKeys("R")
	if len(keys) != 2 {
		t.Fatalf("candidate keys = %v", keys)
	}
}

func TestCandidateKeysUnknownRelation(t *testing.T) {
	s := MustSet(schemaR4())
	if s.CandidateKeys("Nope") != nil {
		t.Error("unknown relation should yield nil")
	}
	if s.IsKeySet("Nope", []int{0}) {
		t.Error("unknown relation cannot have keys")
	}
}

// randomFDSet builds a random FD set over R/4.
func randomFDSet(rng *rand.Rand) *Set {
	n := 1 + rng.Intn(4)
	var fds []FD
	for i := 0; i < n; i++ {
		lhs := []int{rng.Intn(4)}
		if rng.Intn(2) == 0 {
			lhs = append(lhs, rng.Intn(4))
		}
		fds = append(fds, New("R", lhs, []int{rng.Intn(4)}))
	}
	return MustSet(schemaR4(), fds...)
}

// TestQuickMinimalCoverEquivalent: minimal covers are equivalent to
// the original set, have singleton RHS, and are no larger.
func TestQuickMinimalCoverEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(227))
	for trial := 0; trial < 100; trial++ {
		s := randomFDSet(rng)
		mc := s.MinimalCover()
		if !mc.Equivalent(s) {
			t.Fatalf("trial %d: cover %v not equivalent to %v", trial, mc, s)
		}
		for _, phi := range mc.FDs() {
			if len(phi.RHS) != 1 {
				t.Fatalf("trial %d: non-singleton RHS", trial)
			}
		}
	}
}

// TestQuickEquivalentSetsSameConflicts: replacing Σ by its minimal
// cover preserves satisfaction on random databases — the property that
// lets the operational engines preprocess constraints.
func TestQuickEquivalentSetsSameConflicts(t *testing.T) {
	rng := rand.New(rand.NewSource(229))
	for trial := 0; trial < 80; trial++ {
		s := randomFDSet(rng)
		mc := s.MinimalCover()
		n := 2 + rng.Intn(6)
		facts := make([]rel.Fact, n)
		for i := range facts {
			facts[i] = rel.NewFact("R",
				string(rune('a'+rng.Intn(2))),
				string(rune('a'+rng.Intn(2))),
				string(rune('a'+rng.Intn(2))),
				string(rune('a'+rng.Intn(2))))
		}
		d := rel.NewDatabase(facts...)
		if s.Satisfies(d) != mc.Satisfies(d) {
			t.Fatalf("trial %d: satisfaction differs between Σ and its cover", trial)
		}
		// Pairwise conflicts agree (the conflict graph is the same).
		for i := 0; i < d.Len(); i++ {
			for j := i + 1; j < d.Len(); j++ {
				if s.InConflict(d.Fact(i), d.Fact(j)) != mc.InConflict(d.Fact(i), d.Fact(j)) {
					t.Fatalf("trial %d: conflict pair (%d,%d) differs", trial, i, j)
				}
			}
		}
	}
}
