package fd

// Interned conflict detection over the columnar database
// representation: FD violation checks compare argument id columns, and
// LHS-projection grouping runs through an open-addressing grouper that
// hashes id tuples and chains equal projections — no per-fact key
// string, no map allocation. The string-keyed variants remain only in
// the incremental Index, whose buckets must persist across databases of
// one mutation lineage.

import (
	"encoding/binary"

	"repro/internal/rel"
)

// violatedRows reports whether the facts at indices i and j of d
// jointly violate phi: agreement on every LHS position, disagreement on
// some RHS position. Callers guarantee both facts belong to phi's
// relation (the per-relation span makes that free); like
// FD.ViolatedBy's Arg calls, an attribute position beyond a fact's
// arity panics.
func violatedRows(d *rel.Database, phi FD, i, j int) bool {
	a, b := d.ArgIDs(i), d.ArgIDs(j)
	for _, x := range phi.LHS {
		if a[x] != b[x] {
			return false
		}
	}
	for _, y := range phi.RHS {
		if a[y] != b[y] {
			return true
		}
	}
	return false
}

// projHash hashes the projection of fact i onto the attribute
// positions of attrs.
func projHash(d *rel.Database, attrs []int, i int) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	row := d.ArgIDs(i)
	for _, a := range attrs {
		h = (h ^ uint64(uint32(row[a]))) * prime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// projEqual reports whether facts i and j agree on every position of
// attrs.
func projEqual(d *rel.Database, attrs []int, i, j int) bool {
	a, b := d.ArgIDs(i), d.ArgIDs(j)
	for _, x := range attrs {
		if a[x] != b[x] {
			return false
		}
	}
	return true
}

// grouper buckets the facts of one relation span by their projection
// onto a fixed attribute set. Buckets are intrusive linked lists over a
// dense next array — two int32 slices total, regardless of how many
// groups form.
type grouper struct {
	d     *rel.Database
	attrs []int
	lo    int
	// slots holds the most recently added fact index + 1 of each
	// bucket; 0 is empty. Power-of-two sized for mask probing.
	slots []int32
	mask  uint64
	// next[i-lo] chains fact i to the previously added fact of its
	// bucket (+1, 0 terminates), so each chain lists its facts in
	// decreasing index order.
	next []int32
}

func newGrouper(d *rel.Database, attrs []int, lo, hi int) *grouper {
	n := hi - lo
	size := 8
	for size < 2*n {
		size <<= 1
	}
	return &grouper{
		d: d, attrs: attrs, lo: lo,
		slots: make([]int32, size),
		mask:  uint64(size - 1),
		next:  make([]int32, n),
	}
}

// add buckets fact i (lo ≤ i < hi) by its projection.
func (g *grouper) add(i int) {
	h := projHash(g.d, g.attrs, i)
	for probe := h & g.mask; ; probe = (probe + 1) & g.mask {
		s := g.slots[probe]
		if s == 0 {
			g.slots[probe] = int32(i + 1)
			return
		}
		head := int(s - 1)
		if projEqual(g.d, g.attrs, head, i) {
			g.next[i-g.lo] = int32(head + 1)
			g.slots[probe] = int32(i + 1)
			return
		}
	}
}

// buckets invokes yield once per non-empty bucket with the fact
// indices in increasing order. The slice is reused across yields and
// must not be retained. Enumeration order is hash-slot order; callers
// needing determinism sort their aggregate output, exactly as the
// string-bucket implementation did.
func (g *grouper) buckets(yield func(idxs []int) bool) {
	var scratch []int
	for _, s := range g.slots {
		if s == 0 {
			continue
		}
		scratch = scratch[:0]
		for j := int(s); j != 0; j = int(g.next[j-1-g.lo]) {
			scratch = append(scratch, j-1)
		}
		// The chain is newest-first; reverse to increasing index order.
		for x, y := 0, len(scratch)-1; x < y; x, y = x+1, y-1 {
			scratch[x], scratch[y] = scratch[y], scratch[x]
		}
		if !yield(scratch) {
			return
		}
	}
}

// violationsOf enumerates the violations of a single FD in
// (I, J)-sorted order within each LHS bucket, stopping early when
// yield returns false. The shared driver behind Violations (collect
// all) and SatisfiesFD (exists any).
func violationsOf(d *rel.Database, phi FD, yield func(i, j int) bool) {
	lo, hi := d.RelRange(phi.Rel)
	if lo == hi {
		return
	}
	g := newGrouper(d, phi.LHS, lo, hi)
	for i := lo; i < hi; i++ {
		g.add(i)
	}
	g.buckets(func(idxs []int) bool {
		for x := 0; x < len(idxs); x++ {
			for y := x + 1; y < len(idxs); y++ {
				if violatedRows(d, phi, idxs[x], idxs[y]) {
					if !yield(idxs[x], idxs[y]) {
						return false
					}
				}
			}
		}
		return true
	})
}

// packLHS renders the LHS projection of fact i as a fixed-width byte
// key (4 bytes per id — no escaping, no terminators needed). Symbol
// ids are append-only across a copy-on-write mutation lineage, so keys
// packed against different databases of one lineage are comparable;
// the incremental Index depends on that.
func packLHS(buf []byte, d *rel.Database, phi FD, i int) []byte {
	buf = buf[:0]
	row := d.ArgIDs(i)
	for _, a := range phi.LHS {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(row[a]))
	}
	return buf
}
