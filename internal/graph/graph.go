// Package graph implements the undirected-graph substrate the paper's
// proofs and reductions rely on: connectivity, independent-set counting
// and enumeration (Lemma 5.4 identifies candidate repairs with
// independent sets of the conflict graph), Misra–Gries (Δ+1)-edge
// colouring (the constructive Vizing theorem used by Proposition 5.5),
// and graph-homomorphism counting (the ♯H-Coloring problem of §B.1).
package graph

import (
	"fmt"
	"math/big"
	"math/rand"
	"sort"
)

// Graph is a simple undirected graph over nodes 0..n-1. Self-loops are
// permitted (H-colouring targets use them) but parallel edges are not.
type Graph struct {
	n   int
	adj []map[int]bool
}

// New returns an empty graph on n nodes.
func New(n int) *Graph {
	g := &Graph{n: n, adj: make([]map[int]bool, n)}
	for i := range g.adj {
		g.adj[i] = make(map[int]bool)
	}
	return g
}

// N reports the number of nodes.
func (g *Graph) N() int { return g.n }

// AddEdge inserts the undirected edge {u, v} (a self-loop if u == v).
func (g *Graph) AddEdge(u, v int) {
	g.adj[u][v] = true
	g.adj[v][u] = true
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool { return g.adj[u][v] }

// Neighbors returns the sorted neighbours of u (including u itself when
// u has a self-loop).
func (g *Graph) Neighbors(u int) []int {
	out := make([]int, 0, len(g.adj[u]))
	for v := range g.adj[u] {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Degree reports the number of edges incident to u, counting a self-loop
// once.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// MaxDegree reports Δ(G).
func (g *Graph) MaxDegree() int {
	d := 0
	for u := 0; u < g.n; u++ {
		if deg := g.Degree(u); deg > d {
			d = deg
		}
	}
	return d
}

// Edges returns the edge set with u ≤ v, sorted.
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	for u := 0; u < g.n; u++ {
		for v := range g.adj[u] {
			if u <= v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// NumEdges reports |E|.
func (g *Graph) NumEdges() int { return len(g.Edges()) }

// HasSelfLoop reports whether any node carries a self-loop.
func (g *Graph) HasSelfLoop() bool {
	for u := 0; u < g.n; u++ {
		if g.adj[u][u] {
			return true
		}
	}
	return false
}

// Components returns the connected components as sorted node lists,
// ordered by smallest node.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var out [][]int
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		var comp []int
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for v := range g.adj[u] {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		sort.Ints(comp)
		out = append(out, comp)
	}
	return out
}

// Connected reports whether the graph is connected (the empty graph and
// single-node graph are connected).
func (g *Graph) Connected() bool { return g.n <= 1 || len(g.Components()) == 1 }

// NonTriviallyConnected reports the paper's notion: at least two nodes
// and connected.
func (g *Graph) NonTriviallyConnected() bool { return g.n >= 2 && g.Connected() }

// InducedSubgraph returns the subgraph induced by the given nodes,
// renumbered 0..len(nodes)-1 in the given order.
func (g *Graph) InducedSubgraph(nodes []int) *Graph {
	idx := make(map[int]int, len(nodes))
	for i, u := range nodes {
		idx[u] = i
	}
	h := New(len(nodes))
	for i, u := range nodes {
		for v := range g.adj[u] {
			if j, ok := idx[v]; ok && i <= j {
				h.AddEdge(i, j)
			}
		}
	}
	return h
}

// CountIndependentSets computes |IS(G)|, the number of independent sets
// of G (including the empty set), exactly. Nodes with self-loops can
// never be in an independent set. The computation is component-wise; per
// component it uses branching on a maximum-degree vertex with memoised
// sub-problems, which is exact and fast for the laptop-scale graphs the
// reductions produce.
func (g *Graph) CountIndependentSets() *big.Int {
	total := big.NewInt(1)
	for _, comp := range g.Components() {
		sub := g.InducedSubgraph(comp)
		total.Mul(total, countISConnected(sub))
	}
	return total
}

// CountNonEmptyIndependentSets computes |IS≠∅(G)| = |IS(G)| − 1.
func (g *Graph) CountNonEmptyIndependentSets() *big.Int {
	c := g.CountIndependentSets()
	return c.Sub(c, big.NewInt(1))
}

// countISConnected counts independent sets of an arbitrary graph by
// recursive branching: pick a vertex v of maximum degree; IS(G) =
// IS(G−v) + IS(G−N[v]) unless v has a self-loop, in which case
// IS(G) = IS(G−v).
func countISConnected(g *Graph) *big.Int {
	alive := make([]bool, g.n)
	for i := range alive {
		alive[i] = true
	}
	memo := make(map[string]*big.Int)
	return countISRec(g, alive, memo)
}

func aliveKey(alive []bool) string {
	b := make([]byte, (len(alive)+7)/8)
	for i, a := range alive {
		if a {
			b[i/8] |= 1 << uint(i%8)
		}
	}
	return string(b)
}

func countISRec(g *Graph, alive []bool, memo map[string]*big.Int) *big.Int {
	key := aliveKey(alive)
	if v, ok := memo[key]; ok {
		return new(big.Int).Set(v)
	}
	// Find an alive vertex of maximum alive-degree.
	best, bestDeg := -1, -1
	for u := 0; u < g.n; u++ {
		if !alive[u] {
			continue
		}
		d := 0
		for v := range g.adj[u] {
			if v != u && alive[v] {
				d++
			}
		}
		if d > bestDeg {
			best, bestDeg = u, d
		}
	}
	var res *big.Int
	switch {
	case best == -1:
		res = big.NewInt(1) // empty graph: only the empty set
	case bestDeg == 0:
		// All alive vertices are isolated; each contributes factor 2
		// unless it has a self-loop (factor 1).
		res = big.NewInt(1)
		for u := 0; u < g.n; u++ {
			if alive[u] && !g.adj[u][u] {
				res.Lsh(res, 1)
			}
		}
	default:
		// Branch on best.
		alive[best] = false
		without := countISRec(g, alive, memo)
		if g.adj[best][best] {
			res = without
		} else {
			var removed []int
			for v := range g.adj[best] {
				if alive[v] {
					alive[v] = false
					removed = append(removed, v)
				}
			}
			with := countISRec(g, alive, memo)
			for _, v := range removed {
				alive[v] = true
			}
			res = new(big.Int).Add(without, with)
		}
		alive[best] = true
	}
	memo[key] = new(big.Int).Set(res)
	return res
}

// IndependentSets enumerates every independent set of G (as a sorted
// node list), invoking yield for each; enumeration stops early if yield
// returns false. Intended for small graphs.
func (g *Graph) IndependentSets(yield func([]int) bool) {
	var cur []int
	var recur func(int) bool
	recur = func(next int) bool {
		if next == g.n {
			cp := append([]int(nil), cur...)
			return yield(cp)
		}
		// Exclude next.
		if !recur(next + 1) {
			return false
		}
		// Include next if compatible.
		if g.adj[next][next] {
			return true
		}
		for _, u := range cur {
			if g.adj[u][next] {
				return true
			}
		}
		cur = append(cur, next)
		ok := recur(next + 1)
		cur = cur[:len(cur)-1]
		return ok
	}
	recur(0)
}

// IsIndependentSet reports whether the node set is independent in G.
func (g *Graph) IsIndependentSet(nodes []int) bool {
	for i, u := range nodes {
		if g.adj[u][u] {
			return false
		}
		for _, v := range nodes[i+1:] {
			if g.adj[u][v] {
				return false
			}
		}
	}
	return true
}

// IsomorphicBySignature performs a cheap necessary check for graph
// isomorphism used by the reduction tests: equal node counts, equal
// sorted degree sequences, and equal sorted neighbourhood-degree
// multiset signatures. For the conflict-graph constructions in the
// experiments the mapping is known explicitly, so the full check is done
// elsewhere; this guards against gross mismatches.
func IsomorphicBySignature(a, b *Graph) bool {
	if a.n != b.n {
		return false
	}
	sig := func(g *Graph) []string {
		out := make([]string, g.n)
		for u := 0; u < g.n; u++ {
			degs := make([]int, 0, g.Degree(u))
			for v := range g.adj[u] {
				degs = append(degs, g.Degree(v))
			}
			sort.Ints(degs)
			out[u] = fmt.Sprint(g.Degree(u), degs)
		}
		sort.Strings(out)
		return out
	}
	sa, sb := sig(a), sig(b)
	for i := range sa {
		if sa[i] != sb[i] {
			return false
		}
	}
	return true
}

// EqualUnderMapping reports whether perm (a bijection node-of-a →
// node-of-b) is a graph isomorphism from a to b.
func EqualUnderMapping(a, b *Graph, perm []int) bool {
	if a.n != b.n || len(perm) != a.n {
		return false
	}
	seen := make([]bool, a.n)
	for _, p := range perm {
		if p < 0 || p >= a.n || seen[p] {
			return false
		}
		seen[p] = true
	}
	for u := 0; u < a.n; u++ {
		for v := u; v < a.n; v++ {
			if a.HasEdge(u, v) != b.HasEdge(perm[u], perm[v]) {
				return false
			}
		}
	}
	return true
}

// RandomGraph samples G(n, p): each of the C(n,2) potential edges is
// present independently with probability p. No self-loops.
func RandomGraph(rng *rand.Rand, n int, p float64) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// RandomConnectedGraph samples a connected graph on n ≥ 1 nodes: a
// uniform random spanning tree (random Prüfer-like attachment) plus
// G(n,p) extra edges.
func RandomConnectedGraph(rng *rand.Rand, n int, p float64) *Graph {
	g := New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(perm[i], perm[rng.Intn(i)])
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// RandomBoundedDegreeGraph samples a graph with maximum degree ≤ maxDeg
// by attempting m random edges and keeping those that respect the bound.
func RandomBoundedDegreeGraph(rng *rand.Rand, n, maxDeg, attempts int) *Graph {
	g := New(n)
	for i := 0; i < attempts; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if g.Degree(u) < maxDeg && g.Degree(v) < maxDeg {
			g.AddEdge(u, v)
		}
	}
	return g
}

// RandomConnectedBoundedDegreeGraph samples a connected graph with max
// degree ≤ maxDeg (maxDeg ≥ 2): a path plus degree-respecting random
// edges.
func RandomConnectedBoundedDegreeGraph(rng *rand.Rand, n, maxDeg, attempts int) *Graph {
	if maxDeg < 2 && n > 2 {
		panic("graph: need maxDeg >= 2 for a connected graph on more than 2 nodes")
	}
	g := New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(perm[i-1], perm[i])
	}
	for i := 0; i < attempts; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if g.Degree(u) < maxDeg && g.Degree(v) < maxDeg {
			g.AddEdge(u, v)
		}
	}
	return g
}
