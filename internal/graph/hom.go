package graph

import "math/big"

// This file implements graph-homomorphism counting (the ♯H-Coloring
// problem of §B.1). A homomorphism from G to H maps nodes of G to nodes
// of H such that every edge of G maps to an edge of H (self-loops of H
// permit adjacent G-nodes to share an image).

// HardnessH returns the fixed 3-node target graph H of §B.1 used in the
// ♯P-hardness proofs: nodes {0, 1, ?} (encoded 0, 1, 2) with every edge
// present except the self-loop on node 1. By the Dyer–Greenhill
// dichotomy, ♯H-Coloring for this H is ♯P-hard.
func HardnessH() *Graph {
	h := New(3)
	const zero, one, star = 0, 1, 2
	h.AddEdge(zero, zero)
	h.AddEdge(star, star)
	h.AddEdge(zero, one)
	h.AddEdge(zero, star)
	h.AddEdge(one, star)
	// No self-loop on node 1.
	return h
}

// CountHomomorphisms computes |hom(G, H)| exactly by backtracking over
// the nodes of G in a connectivity-aware order with memoisation-free
// forward checking. Intended for the small validation instances of the
// reduction experiments.
func CountHomomorphisms(g, h *Graph) *big.Int {
	if g.N() == 0 {
		return big.NewInt(1)
	}
	// Order nodes so each node (after the first per component) has a
	// previously placed neighbour: improves pruning.
	order := make([]int, 0, g.N())
	placed := make([]bool, g.N())
	for _, comp := range g.Components() {
		order = append(order, comp[0])
		placed[comp[0]] = true
		for len(order) > 0 {
			grew := false
			for _, u := range comp {
				if placed[u] {
					continue
				}
				for _, v := range g.Neighbors(u) {
					if placed[v] {
						order = append(order, u)
						placed[u] = true
						grew = true
						break
					}
				}
			}
			if !grew {
				break
			}
		}
		// Isolated-in-component leftovers (cannot happen for connected
		// components, but keep the order total).
		for _, u := range comp {
			if !placed[u] {
				order = append(order, u)
				placed[u] = true
			}
		}
	}
	assign := make([]int, g.N())
	for i := range assign {
		assign[i] = -1
	}
	total := big.NewInt(0)
	one := big.NewInt(1)
	var recur func(int)
	recur = func(i int) {
		if i == len(order) {
			total.Add(total, one)
			return
		}
		u := order[i]
		for img := 0; img < h.N(); img++ {
			ok := true
			for _, v := range g.Neighbors(u) {
				if assign[v] >= 0 && !h.HasEdge(img, assign[v]) {
					ok = false
					break
				}
				if v == u && !h.HasEdge(img, img) {
					ok = false
					break
				}
			}
			if ok {
				assign[u] = img
				recur(i + 1)
				assign[u] = -1
			}
		}
	}
	recur(0)
	return total
}
