package graph

import (
	"math/big"
	"math/rand"
)

// ISSampler draws uniform random independent sets of a fixed graph.
// It reuses the branching recursion of CountIndependentSets: at each
// step a maximum-degree vertex v is included with probability
// |IS(G − N[v])| / |IS(G)| and excluded otherwise, which induces the
// uniform distribution over IS(G). The count memo is shared across
// draws, so repeated sampling amortises the counting cost.
//
// The candidate-repair samplers build on this: by Lemma 5.4 the
// candidate repairs of a conflict component are exactly its independent
// sets, so uniform IS sampling per component gives uniform
// CORep sampling for arbitrary FDs (not just primary keys).
type ISSampler struct {
	g     *Graph
	memo  map[string]*big.Int
	alive []bool
}

// NewISSampler prepares a sampler for g.
func NewISSampler(g *Graph) *ISSampler {
	return &ISSampler{g: g, memo: make(map[string]*big.Int), alive: make([]bool, g.N())}
}

// Count returns |IS(g)|.
func (s *ISSampler) Count() *big.Int {
	for i := range s.alive {
		s.alive[i] = true
	}
	return countISRec(s.g, s.alive, s.memo)
}

// Sample draws a uniform independent set of g, returned as a sorted
// node list (possibly empty).
func (s *ISSampler) Sample(rng *rand.Rand) []int {
	for i := range s.alive {
		s.alive[i] = true
	}
	var chosen []int
	for {
		// Find an alive vertex of maximum alive-degree (mirrors the
		// counting recursion so the memo is shared).
		best, bestDeg := -1, -1
		for u := 0; u < s.g.n; u++ {
			if !s.alive[u] {
				continue
			}
			d := 0
			for v := range s.g.adj[u] {
				if v != u && s.alive[v] {
					d++
				}
			}
			if d > bestDeg {
				best, bestDeg = u, d
			}
		}
		if best == -1 {
			break
		}
		if bestDeg == 0 {
			// All remaining vertices are isolated: include each
			// loop-free one independently with probability 1/2.
			for u := 0; u < s.g.n; u++ {
				if s.alive[u] && !s.g.adj[u][u] {
					if rng.Intn(2) == 0 {
						chosen = append(chosen, u)
					}
				}
				s.alive[u] = false
			}
			break
		}
		if s.g.adj[best][best] {
			s.alive[best] = false
			continue
		}
		// total = without + with, where with counts sets containing
		// best (i.e. IS of G − N[best]).
		s.alive[best] = false
		without := countISRec(s.g, s.alive, s.memo)
		var removed []int
		for v := range s.g.adj[best] {
			if s.alive[v] {
				s.alive[v] = false
				removed = append(removed, v)
			}
		}
		with := countISRec(s.g, s.alive, s.memo)
		total := new(big.Int).Add(without, with)
		r := new(big.Int).Rand(rng, total)
		if r.Cmp(with) < 0 {
			// Include best; neighbours stay dead.
			chosen = append(chosen, best)
		} else {
			// Exclude best; restore its neighbours.
			for _, v := range removed {
				s.alive[v] = true
			}
		}
	}
	sortInts(chosen)
	return chosen
}

// SampleNonEmpty draws a uniform non-empty independent set by
// rejection. It panics if g has no non-empty independent set (every
// node carries a self-loop).
func (s *ISSampler) SampleNonEmpty(rng *rand.Rand) []int {
	possible := false
	for u := 0; u < s.g.n; u++ {
		if !s.g.adj[u][u] {
			possible = true
			break
		}
	}
	if !possible {
		panic("graph: no non-empty independent set exists")
	}
	for {
		if set := s.Sample(rng); len(set) > 0 {
			return set
		}
	}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
