package graph

// This file implements the Misra–Gries constructive proof of Vizing's
// theorem [20 in the paper]: every simple graph of maximum degree Δ has
// a proper (Δ+1)-edge-colouring, computable in O(|V|·|E|) time. The
// database construction of Proposition 5.5 consumes such a colouring:
// the colour of an edge decides the attribute position at which the two
// incident facts share a constant.

// EdgeColoring is a proper edge colouring: a map from edges (with u < v)
// to colours in 1..NumColors.
type EdgeColoring struct {
	Colors    map[[2]int]int
	NumColors int
}

// ColorOf returns the colour of edge {u, v}, or 0 if uncoloured.
func (ec *EdgeColoring) ColorOf(u, v int) int {
	return ec.Colors[edgeKey(u, v)]
}

func edgeKey(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// Valid reports whether the colouring is proper on g: every edge has a
// colour in 1..NumColors and no two incident edges share a colour.
func (ec *EdgeColoring) Valid(g *Graph) bool {
	for _, e := range g.Edges() {
		c := ec.ColorOf(e[0], e[1])
		if c < 1 || c > ec.NumColors {
			return false
		}
	}
	for u := 0; u < g.N(); u++ {
		seen := make(map[int]bool)
		for _, v := range g.Neighbors(u) {
			c := ec.ColorOf(u, v)
			if seen[c] {
				return false
			}
			seen[c] = true
		}
	}
	return true
}

// misraGries holds the working state of the colouring algorithm.
type misraGries struct {
	g      *Graph
	colors map[[2]int]int
	// used[u][c] = the neighbour v such that edge (u,v) has colour c,
	// or 0 entry absent if c is free on u.
	used []map[int]int
	k    int // number of colours = Δ+1
}

// ColorEdgesMisraGries computes a proper (Δ+1)-edge-colouring of a
// simple loop-free graph via the Misra–Gries algorithm. It panics if the
// graph has a self-loop (edge colourings are undefined for loops).
func ColorEdgesMisraGries(g *Graph) *EdgeColoring {
	if g.HasSelfLoop() {
		panic("graph: edge colouring requires a loop-free graph")
	}
	mg := &misraGries{
		g:      g,
		colors: make(map[[2]int]int),
		used:   make([]map[int]int, g.N()),
		k:      g.MaxDegree() + 1,
	}
	for i := range mg.used {
		mg.used[i] = make(map[int]int)
	}
	for _, e := range g.Edges() {
		mg.colorEdge(e[0], e[1])
	}
	return &EdgeColoring{Colors: mg.colors, NumColors: mg.k}
}

func (mg *misraGries) colorOf(u, v int) int { return mg.colors[edgeKey(u, v)] }

func (mg *misraGries) setColor(u, v, c int) {
	if old := mg.colorOf(u, v); old != 0 {
		delete(mg.used[u], old)
		delete(mg.used[v], old)
	}
	if c == 0 {
		delete(mg.colors, edgeKey(u, v))
		return
	}
	mg.colors[edgeKey(u, v)] = c
	mg.used[u][c] = v + 1 // store v+1 so 0 means absent
	mg.used[v][c] = u + 1
}

// freeColor returns the smallest colour in 1..k free on u.
func (mg *misraGries) freeColor(u int) int {
	for c := 1; c <= mg.k; c++ {
		if mg.used[u][c] == 0 {
			return c
		}
	}
	panic("graph: no free colour; degree bound violated")
}

func (mg *misraGries) isFree(u, c int) bool { return mg.used[u][c] == 0 }

// maximalFan builds a maximal fan of u starting at uncoloured neighbour
// v: a maximal sequence of distinct neighbours F[0]=v, F[1], ..., F[k]
// such that the colour of (u, F[i+1]) is free on F[i].
func (mg *misraGries) maximalFan(u, v int) []int {
	fan := []int{v}
	inFan := map[int]bool{v: true}
	for {
		extended := false
		last := fan[len(fan)-1]
		for _, w := range mg.g.Neighbors(u) {
			if inFan[w] {
				continue
			}
			c := mg.colorOf(u, w)
			if c != 0 && mg.isFree(last, c) {
				fan = append(fan, w)
				inFan[w] = true
				extended = true
				break
			}
		}
		if !extended {
			return fan
		}
	}
}

// invertCDPath walks the maximal path starting at u along edges coloured
// alternately c, d and swaps the two colours along it.
func (mg *misraGries) invertCDPath(u, c, d int) {
	cur, want := u, c
	prev := -1
	type step struct{ a, b, newColor int }
	var steps []step
	for {
		nb := mg.used[cur][want]
		if nb == 0 {
			break
		}
		next := nb - 1
		if next == prev {
			break
		}
		newColor := c
		if want == c {
			newColor = d
		}
		steps = append(steps, step{cur, next, newColor})
		prev, cur = cur, next
		if want == c {
			want = d
		} else {
			want = c
		}
	}
	// Uncolour the whole path first, then recolour, so intermediate
	// states never trip the incidence bookkeeping.
	for _, s := range steps {
		mg.setColor(s.a, s.b, 0)
	}
	for _, s := range steps {
		mg.setColor(s.a, s.b, s.newColor)
	}
}

// rotateFan shifts colours down the fan prefix F[0..w]: edge (u,F[i])
// receives the colour of (u,F[i+1]); (u,F[w]) becomes uncoloured. All
// prefix edges are uncoloured before recolouring so that the incidence
// bookkeeping never observes two edges at u sharing a colour.
func (mg *misraGries) rotateFan(u int, fan []int, w int) {
	cols := make([]int, w+1)
	for i := 0; i <= w; i++ {
		cols[i] = mg.colorOf(u, fan[i])
		mg.setColor(u, fan[i], 0)
	}
	for i := 0; i < w; i++ {
		mg.setColor(u, fan[i], cols[i+1])
	}
}

// isPrefixFan reports whether F[0..w] is a fan of u under the current
// colouring: for each i < w, the colour of (u, F[i+1]) is free on F[i].
func (mg *misraGries) isPrefixFan(u int, fan []int, w int) bool {
	for i := 0; i < w; i++ {
		c := mg.colorOf(u, fan[i+1])
		if c == 0 || !mg.isFree(fan[i], c) {
			return false
		}
	}
	return true
}

// colorEdge colours the uncoloured edge (u, v) following Misra–Gries.
func (mg *misraGries) colorEdge(u, v int) {
	fan := mg.maximalFan(u, v)
	c := mg.freeColor(u)
	d := mg.freeColor(fan[len(fan)-1])
	if c != d {
		mg.invertCDPath(u, d, c)
	}
	// After the inversion d is free on u. Find w such that F[0..w] is
	// still a fan under the (possibly changed) colouring and d is free
	// on F[w]; the Misra–Gries lemma guarantees such w exists.
	w := -1
	for i := range fan {
		if mg.isFree(fan[i], d) && mg.isPrefixFan(u, fan, i) {
			w = i
			break
		}
	}
	if w < 0 {
		panic("graph: Misra–Gries invariant violated: no valid fan prefix")
	}
	mg.rotateFan(u, fan, w)
	mg.setColor(u, fan[w], d)
}
