package graph

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func cycle(n int) *Graph {
	g := path(n)
	g.AddEdge(n-1, 0)
	return g
}

func complete(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

func TestBasicAccessors(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 3)
	if g.N() != 4 {
		t.Fatalf("N = %d", g.N())
	}
	if !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Fatal("HasEdge wrong")
	}
	if d := g.Degree(1); d != 2 {
		t.Fatalf("Degree(1) = %d", d)
	}
	if d := g.Degree(3); d != 1 {
		t.Fatalf("self-loop Degree(3) = %d", d)
	}
	if g.MaxDegree() != 2 {
		t.Fatalf("MaxDegree = %d", g.MaxDegree())
	}
	if !g.HasSelfLoop() {
		t.Fatal("self-loop not detected")
	}
	edges := g.Edges()
	if len(edges) != 3 || g.NumEdges() != 3 {
		t.Fatalf("Edges = %v", edges)
	}
}

func TestComponentsAndConnectivity(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(3, 4)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %v", comps)
	}
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	if !path(4).Connected() || !path(4).NonTriviallyConnected() {
		t.Fatal("path should be (non-trivially) connected")
	}
	if New(1).NonTriviallyConnected() {
		t.Fatal("single node is trivially connected")
	}
	if !New(1).Connected() || !New(0).Connected() {
		t.Fatal("tiny graphs are connected")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := cycle(5)
	sub := g.InducedSubgraph([]int{0, 1, 3})
	if sub.N() != 3 || !sub.HasEdge(0, 1) || sub.HasEdge(1, 2) || sub.HasEdge(0, 2) {
		t.Fatalf("induced subgraph wrong: edges %v", sub.Edges())
	}
}

// fib returns the n-th Fibonacci number with fib(1)=1, fib(2)=1.
func fib(n int) int64 {
	a, b := int64(0), int64(1)
	for i := 0; i < n; i++ {
		a, b = b, a+b
	}
	return a
}

func TestCountIndependentSetsKnownValues(t *testing.T) {
	// Path P_n has fib(n+2) independent sets; cycle C_n has Lucas(n);
	// complete K_n has n+1; empty graph on n nodes has 2^n.
	if got := path(5).CountIndependentSets(); got.Int64() != fib(7) {
		t.Errorf("P5: got %v, want %d", got, fib(7))
	}
	if got := complete(6).CountIndependentSets(); got.Int64() != 7 {
		t.Errorf("K6: got %v, want 7", got)
	}
	if got := New(10).CountIndependentSets(); got.Int64() != 1024 {
		t.Errorf("empty(10): got %v, want 1024", got)
	}
	// Lucas numbers: C3=4, C4=7, C5=11, C6=18.
	lucas := map[int]int64{3: 4, 4: 7, 5: 11, 6: 18}
	for n, want := range lucas {
		if got := cycle(n).CountIndependentSets(); got.Int64() != want {
			t.Errorf("C%d: got %v, want %d", n, got, want)
		}
	}
}

func TestCountIndependentSetsSelfLoop(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 0)
	// Node 0 can never be chosen: IS = {∅, {1}}.
	if got := g.CountIndependentSets(); got.Int64() != 2 {
		t.Fatalf("got %v, want 2", got)
	}
}

func TestCountNonEmptyIndependentSets(t *testing.T) {
	if got := complete(3).CountNonEmptyIndependentSets(); got.Int64() != 3 {
		t.Fatalf("got %v, want 3", got)
	}
}

func TestIndependentSetsEnumeration(t *testing.T) {
	g := path(3) // IS: {}, {0}, {1}, {2}, {0,2} = 5
	var sets [][]int
	g.IndependentSets(func(s []int) bool {
		sets = append(sets, s)
		return true
	})
	if len(sets) != 5 {
		t.Fatalf("enumerated %d sets, want 5: %v", len(sets), sets)
	}
	for _, s := range sets {
		if !g.IsIndependentSet(s) {
			t.Fatalf("%v is not independent", s)
		}
	}
}

func TestIndependentSetsEarlyStop(t *testing.T) {
	g := New(10)
	count := 0
	g.IndependentSets(func([]int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop failed: %d", count)
	}
}

func TestIsIndependentSet(t *testing.T) {
	g := path(3)
	if !g.IsIndependentSet([]int{0, 2}) {
		t.Error("{0,2} independent in P3")
	}
	if g.IsIndependentSet([]int{0, 1}) {
		t.Error("{0,1} not independent in P3")
	}
	loop := New(1)
	loop.AddEdge(0, 0)
	if loop.IsIndependentSet([]int{0}) {
		t.Error("self-loop node is not independent")
	}
}

// Property: CountIndependentSets equals the enumeration count on random
// graphs.
func TestQuickISCountMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	prop := func() bool {
		g := RandomGraph(rng, 1+rng.Intn(10), 0.3)
		count := 0
		g.IndependentSets(func([]int) bool { count++; return true })
		return g.CountIndependentSets().Int64() == int64(count)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeColoringPath(t *testing.T) {
	g := path(6)
	ec := ColorEdgesMisraGries(g)
	if !ec.Valid(g) {
		t.Fatal("colouring of path invalid")
	}
	if ec.NumColors != 3 { // Δ+1 = 3
		t.Fatalf("NumColors = %d", ec.NumColors)
	}
}

func TestEdgeColoringComplete(t *testing.T) {
	for n := 2; n <= 8; n++ {
		g := complete(n)
		ec := ColorEdgesMisraGries(g)
		if !ec.Valid(g) {
			t.Fatalf("K%d colouring invalid", n)
		}
	}
}

func TestEdgeColoringPanicsOnLoop(t *testing.T) {
	g := New(1)
	g.AddEdge(0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for self-loop")
		}
	}()
	ColorEdgesMisraGries(g)
}

// Property: Misra–Gries produces a proper colouring with at most Δ+1
// colours on random graphs.
func TestQuickEdgeColoringProper(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	prop := func() bool {
		g := RandomGraph(rng, 2+rng.Intn(20), 0.4)
		ec := ColorEdgesMisraGries(g)
		if !ec.Valid(g) {
			return false
		}
		for _, e := range g.Edges() {
			if c := ec.ColorOf(e[0], e[1]); c > g.MaxDegree()+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestHardnessHShape(t *testing.T) {
	h := HardnessH()
	if h.N() != 3 {
		t.Fatal("H has 3 nodes")
	}
	if !h.HasEdge(0, 0) || !h.HasEdge(2, 2) || h.HasEdge(1, 1) {
		t.Fatal("H self-loops wrong: loop on 0 and ?, none on 1")
	}
	if !h.HasEdge(0, 1) || !h.HasEdge(0, 2) || !h.HasEdge(1, 2) {
		t.Fatal("H must be complete between distinct nodes")
	}
}

func TestCountHomomorphismsKnown(t *testing.T) {
	h := HardnessH()
	// Single node, no edges: 3 homomorphisms.
	if got := CountHomomorphisms(New(1), h); got.Int64() != 3 {
		t.Errorf("single node: %v, want 3", got)
	}
	// Single edge {0,1}: all pairs except (1,1): 9-1 = 8.
	e := New(2)
	e.AddEdge(0, 1)
	if got := CountHomomorphisms(e, h); got.Int64() != 8 {
		t.Errorf("single edge: %v, want 8", got)
	}
	// Two isolated nodes: 3^2 = 9.
	if got := CountHomomorphisms(New(2), h); got.Int64() != 9 {
		t.Errorf("two nodes: %v, want 9", got)
	}
	// Empty graph: exactly one (empty) homomorphism.
	if got := CountHomomorphisms(New(0), h); got.Int64() != 1 {
		t.Errorf("empty graph: %v, want 1", got)
	}
}

// naiveHomCount enumerates all |H|^|G| assignments.
func naiveHomCount(g, h *Graph) *big.Int {
	n := g.N()
	if n == 0 {
		return big.NewInt(1)
	}
	assign := make([]int, n)
	count := big.NewInt(0)
	one := big.NewInt(1)
	var recur func(int)
	recur = func(i int) {
		if i == n {
			for _, e := range g.Edges() {
				if !h.HasEdge(assign[e[0]], assign[e[1]]) {
					return
				}
			}
			count.Add(count, one)
			return
		}
		for v := 0; v < h.N(); v++ {
			assign[i] = v
			recur(i + 1)
		}
	}
	recur(0)
	return count
}

// Property: backtracking hom count equals naive enumeration on random
// graphs into HardnessH.
func TestQuickHomCountMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	h := HardnessH()
	prop := func() bool {
		g := RandomGraph(rng, 1+rng.Intn(7), 0.4)
		return CountHomomorphisms(g, h).Cmp(naiveHomCount(g, h)) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestEqualUnderMapping(t *testing.T) {
	a := path(3)
	b := New(3)
	b.AddEdge(2, 1)
	b.AddEdge(1, 0)
	if !EqualUnderMapping(a, b, []int{0, 1, 2}) {
		t.Error("identity should be an isomorphism P3 -> P3")
	}
	if !EqualUnderMapping(a, b, []int{2, 1, 0}) {
		t.Error("reversal should be an isomorphism")
	}
	c := cycle(3)
	if EqualUnderMapping(a, c, []int{0, 1, 2}) {
		t.Error("P3 is not isomorphic to C3 under identity")
	}
	if EqualUnderMapping(a, b, []int{0, 0, 2}) {
		t.Error("non-bijection accepted")
	}
}

func TestIsomorphicBySignature(t *testing.T) {
	if !IsomorphicBySignature(path(4), path(4)) {
		t.Error("P4 ~ P4")
	}
	if IsomorphicBySignature(path(4), cycle(4)) {
		t.Error("P4 !~ C4")
	}
	if IsomorphicBySignature(path(4), path(5)) {
		t.Error("different sizes")
	}
}

func TestRandomGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	g := RandomConnectedGraph(rng, 12, 0.1)
	if !g.Connected() {
		t.Error("RandomConnectedGraph not connected")
	}
	b := RandomBoundedDegreeGraph(rng, 15, 4, 100)
	if b.MaxDegree() > 4 {
		t.Errorf("degree bound violated: %d", b.MaxDegree())
	}
	cb := RandomConnectedBoundedDegreeGraph(rng, 15, 5, 60)
	if !cb.Connected() {
		t.Error("RandomConnectedBoundedDegreeGraph not connected")
	}
	if cb.MaxDegree() > 5 {
		t.Errorf("degree bound violated: %d", cb.MaxDegree())
	}
}

func TestRandomGraphRespectsP(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := RandomGraph(rng, 10, 0)
	if g.NumEdges() != 0 {
		t.Error("p=0 should give no edges")
	}
	g = RandomGraph(rng, 10, 1)
	if g.NumEdges() != 45 {
		t.Errorf("p=1 should give all 45 edges, got %d", g.NumEdges())
	}
}
