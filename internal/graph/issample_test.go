package graph

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func TestISSamplerCountMatches(t *testing.T) {
	g := cycle(5)
	s := NewISSampler(g)
	if s.Count().Cmp(g.CountIndependentSets()) != 0 {
		t.Fatal("sampler count disagrees with CountIndependentSets")
	}
}

func TestISSamplerUniform(t *testing.T) {
	// P4 has 8 independent sets; check the empirical distribution.
	g := path(4)
	s := NewISSampler(g)
	rng := rand.New(rand.NewSource(139))
	const n = 40000
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		set := s.Sample(rng)
		if !g.IsIndependentSet(set) {
			t.Fatalf("sampled non-independent set %v", set)
		}
		counts[fmt.Sprint(set)]++
	}
	cells := int(g.CountIndependentSets().Int64())
	if len(counts) != cells {
		t.Fatalf("observed %d outcomes, want %d", len(counts), cells)
	}
	p := 1.0 / float64(cells)
	sigma := math.Sqrt(p * (1 - p) * n)
	for k, c := range counts {
		if math.Abs(float64(c)-p*n) > 5*sigma {
			t.Errorf("set %s count %d deviates from %.0f", k, c, p*n)
		}
	}
}

func TestISSamplerSelfLoopNeverChosen(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 0)
	g.AddEdge(1, 2)
	s := NewISSampler(g)
	rng := rand.New(rand.NewSource(149))
	for i := 0; i < 500; i++ {
		for _, v := range s.Sample(rng) {
			if v == 0 {
				t.Fatal("self-loop node sampled")
			}
		}
	}
}

func TestSampleNonEmpty(t *testing.T) {
	g := complete(3)
	s := NewISSampler(g)
	rng := rand.New(rand.NewSource(151))
	counts := map[int]int{}
	const n = 9000
	for i := 0; i < n; i++ {
		set := s.SampleNonEmpty(rng)
		if len(set) != 1 {
			t.Fatalf("K3 nonempty IS must be singletons, got %v", set)
		}
		counts[set[0]]++
	}
	for v, c := range counts {
		if math.Abs(float64(c)-n/3.0) > 5*math.Sqrt(n/3.0) {
			t.Errorf("node %d count %d far from uniform", v, c)
		}
	}
}

func TestSampleNonEmptyPanicsWhenImpossible(t *testing.T) {
	g := New(1)
	g.AddEdge(0, 0)
	s := NewISSampler(g)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.SampleNonEmpty(rand.New(rand.NewSource(1)))
}

func TestISSamplerIsolatedVertices(t *testing.T) {
	// Graph with isolated vertices only: every subset equally likely.
	g := New(3)
	s := NewISSampler(g)
	rng := rand.New(rand.NewSource(157))
	counts := map[string]int{}
	const n = 16000
	for i := 0; i < n; i++ {
		counts[fmt.Sprint(s.Sample(rng))]++
	}
	if len(counts) != 8 {
		t.Fatalf("observed %d outcomes, want 8", len(counts))
	}
	for k, c := range counts {
		if math.Abs(float64(c)-n/8.0) > 5*math.Sqrt(n/8.0) {
			t.Errorf("subset %s count %d far from uniform", k, c)
		}
	}
}
