package parse

import (
	"strings"
	"testing"

	"repro/internal/cq"
	"repro/internal/fd"
	"repro/internal/rel"
)

func TestParseFact(t *testing.T) {
	f, err := ParseFact("R(a, b, c)")
	if err != nil {
		t.Fatal(err)
	}
	if f.String() != "R(a,b,c)" {
		t.Fatalf("fact = %v", f)
	}
}

func TestParseFactQuoted(t *testing.T) {
	f, err := ParseFact("Emp('1', 'Alice, PhD')")
	if err != nil {
		t.Fatal(err)
	}
	if f.Arg(1) != "Alice, PhD" {
		t.Fatalf("arg = %q", f.Arg(1))
	}
}

func TestParseFactErrors(t *testing.T) {
	for _, bad := range []string{"R", "R(", "(a,b)", "R()", "R(a"} {
		if _, err := ParseFact(bad); err == nil {
			t.Errorf("ParseFact(%q) should fail", bad)
		}
	}
}

func TestParseDatabase(t *testing.T) {
	text := `
# employees
Emp(1, Alice)
Emp(1, Tom)   # conflicting source
Dept(sales)
`
	d, sch, err := ParseDatabase(text)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Fatalf("|D| = %d", d.Len())
	}
	r, ok := sch.Relation("Emp")
	if !ok || r.Arity() != 2 {
		t.Fatalf("schema wrong: %v", sch.Relations())
	}
	if _, ok := sch.Relation("Dept"); !ok {
		t.Fatal("Dept missing from schema")
	}
}

func TestParseDatabaseArityMismatch(t *testing.T) {
	_, _, err := ParseDatabase("R(a)\nR(a,b)")
	if err == nil || !strings.Contains(err.Error(), "arity") {
		t.Fatalf("err = %v", err)
	}
}

func TestParseFD(t *testing.T) {
	sch := rel.MustSchema(rel.NewRelation("R", 3))
	f, err := ParseFD("R: A1 -> A2, A3", sch)
	if err != nil {
		t.Fatal(err)
	}
	if !f.IsKey(sch) {
		t.Fatal("A1 -> A2,A3 should be a key of R/3")
	}
	if f.String() != "R: A1 -> A2,A3" {
		t.Fatalf("String = %q", f.String())
	}
}

func TestParseFDNamedAttrs(t *testing.T) {
	sch := rel.MustSchema(rel.Relation{Name: "Emp", Attrs: []string{"id", "name"}})
	f, err := ParseFD("Emp: id -> name", sch)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.LHS) != 1 || f.LHS[0] != 0 {
		t.Fatalf("FD = %+v", f)
	}
}

func TestParseFDErrors(t *testing.T) {
	sch := rel.MustSchema(rel.NewRelation("R", 2))
	for _, bad := range []string{
		"R A1 -> A2",  // missing colon
		"R: A1 A2",    // missing arrow
		"S: A1 -> A2", // unknown relation
		"R: A9 -> A2", // unknown attribute
		"R:  -> A2",   // empty LHS
		"R: A1 -> ",   // empty RHS
	} {
		if _, err := ParseFD(bad, sch); err == nil {
			t.Errorf("ParseFD(%q) should fail", bad)
		}
	}
}

func TestParseFDs(t *testing.T) {
	sch := rel.MustSchema(rel.NewRelation("R", 3))
	set, err := ParseFDs("# keys\nR: A1 -> A2\nR: A3 -> A2\n", sch)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 2 {
		t.Fatalf("|Σ| = %d", set.Len())
	}
	if set.Classify() != fd.GeneralFDs {
		t.Fatalf("class = %v", set.Classify())
	}
}

func TestParseQueryBoolean(t *testing.T) {
	q, err := ParseQuery("Ans() :- R(x, 'hot')")
	if err != nil {
		t.Fatal(err)
	}
	if !q.IsBoolean() || q.Size() != 1 {
		t.Fatalf("query = %v", q)
	}
	if q.Atoms[0].Terms[1].IsVar {
		t.Fatal("'hot' must be a constant")
	}
	if !q.Atoms[0].Terms[0].IsVar {
		t.Fatal("x must be a variable")
	}
}

func TestParseQueryAnswerVars(t *testing.T) {
	q, err := ParseQuery("Ans(x, y) :- E(x,z), E(z,y)")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.AnswerVars) != 2 || q.AnswerVars[0] != "x" {
		t.Fatalf("answer vars = %v", q.AnswerVars)
	}
	if q.Size() != 2 {
		t.Fatalf("|Q| = %d", q.Size())
	}
}

func TestParseQueryConstWithComma(t *testing.T) {
	q, err := ParseQuery("Ans() :- R('a,b', x)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Atoms[0].Terms[0].Value != "a,b" {
		t.Fatalf("term = %v", q.Atoms[0].Terms[0])
	}
}

func TestParseQueryErrors(t *testing.T) {
	for _, bad := range []string{
		"R(x)",             // no :-
		"Q() :- R(x)",      // wrong head
		"Ans('c') :- R(x)", // constant answer position
		"Ans(y) :- R(x)",   // unsafe
		"Ans() :- R(x",     // unbalanced
		"Ans() :- ",        // empty body atom
	} {
		if _, err := ParseQuery(bad); err == nil {
			t.Errorf("ParseQuery(%q) should fail", bad)
		}
	}
}

func TestParseTuple(t *testing.T) {
	tup := ParseTuple("a, 'b,c' , d")
	want := cq.Tuple{"a", "b,c", "d"}
	if len(tup) != 3 {
		t.Fatalf("tuple = %v", tup)
	}
	for i := range want {
		if tup[i] != want[i] {
			t.Fatalf("tuple = %v, want %v", tup, want)
		}
	}
	if len(ParseTuple("")) != 0 {
		t.Fatal("empty string must parse to the empty tuple")
	}
}

func TestRoundTripQueryEvaluation(t *testing.T) {
	// Parse a database and query, then evaluate.
	d, _, err := ParseDatabase("E(a,b)\nE(b,c)")
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery("Ans(x) :- E(x,y), E(y,z)")
	if err != nil {
		t.Fatal(err)
	}
	ans := q.Answers(d)
	if len(ans) != 1 || ans[0][0] != "a" {
		t.Fatalf("answers = %v", ans)
	}
}
