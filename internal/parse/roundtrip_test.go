package parse

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/fd"
	"repro/internal/rel"
)

// nasty is the alphabet the property tests draw constants from: every
// metacharacter of the text format (separators, quotes, the comment
// marker, escapes, whitespace, newlines) plus plain letters.
var nasty = []rune{'a', 'b', 'z', '0', ',', '(', ')', '\'', '#', '\\', ' ', '\t', '\n', '\r', '|', 'é'}

func randConstant(rng *rand.Rand) string {
	n := rng.Intn(6)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteRune(nasty[rng.Intn(len(nasty))])
	}
	return b.String()
}

func TestFactRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 2000; trial++ {
		arity := 1 + rng.Intn(4)
		args := make([]string, arity)
		for i := range args {
			args[i] = randConstant(rng)
		}
		f := rel.NewFact("R", args...)
		text := FormatFact(f)
		got, err := ParseFact(text)
		if err != nil {
			t.Fatalf("trial %d: ParseFact(%q): %v (fact %#v)", trial, text, err, f)
		}
		if !got.Equal(f) {
			t.Fatalf("trial %d: round trip %#v → %q → %#v", trial, f, text, got)
		}
	}
}

// TestDatabaseRoundTripProperty is the satellite property: for random
// databases over adversarial constants, ParseDatabase ∘ FormatDatabase
// is the identity (same facts, same sorted order, same schema arities),
// so snapshots and the text format cannot drift apart.
func TestDatabaseRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	rels := []struct {
		name  string
		arity int
	}{{"R", 2}, {"S", 3}, {"T", 1}}
	for trial := 0; trial < 300; trial++ {
		var facts []rel.Fact
		for i := 0; i < rng.Intn(12); i++ {
			r := rels[rng.Intn(len(rels))]
			args := make([]string, r.arity)
			for j := range args {
				args[j] = randConstant(rng)
			}
			facts = append(facts, rel.NewFact(r.name, args...))
		}
		d := rel.NewDatabase(facts...)
		text := FormatDatabase(d)
		got, sch, err := ParseDatabase(text)
		if err != nil {
			t.Fatalf("trial %d: ParseDatabase of\n%s: %v", trial, text, err)
		}
		if !got.Equal(d) {
			t.Fatalf("trial %d: round trip diverges:\noriginal %v\nreparsed %v\ntext:\n%s", trial, d, got, text)
		}
		// Second hop: Format(Parse(Format(d))) must be stable too.
		if text2 := FormatDatabase(got); text2 != text {
			t.Fatalf("trial %d: formatting not idempotent:\n%q\nvs\n%q", trial, text, text2)
		}
		for _, r := range sch.Relations() {
			want, ok := rel.MustSchema(rel.NewRelation(r.Name, r.Arity())).Relation(r.Name)
			if !ok || want.Arity() != r.Arity() {
				t.Fatalf("trial %d: schema relation %v malformed", trial, r)
			}
		}
	}
}

// TestFDRoundTripProperty: random FD sets over a declared schema render
// via FormatFDs and re-parse to an identical set.
func TestFDRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	sch := rel.MustSchema(rel.NewRelation("R", 4), rel.NewRelation("S", 2))
	arity := map[string]int{"R": 4, "S": 2}
	for trial := 0; trial < 500; trial++ {
		var fds []fd.FD
		for i := 0; i < 1+rng.Intn(4); i++ {
			name := "R"
			if rng.Intn(2) == 0 {
				name = "S"
			}
			n := arity[name]
			pick := func() []int {
				var out []int
				for a := 0; a < n; a++ {
					if rng.Intn(2) == 0 {
						out = append(out, a)
					}
				}
				if len(out) == 0 {
					out = append(out, rng.Intn(n))
				}
				return out
			}
			fds = append(fds, fd.New(name, pick(), pick()))
		}
		set, err := fd.NewSet(sch, fds...)
		if err != nil {
			t.Fatalf("trial %d: building set: %v", trial, err)
		}
		text := FormatFDs(set)
		got, err := ParseFDs(text, sch)
		if err != nil {
			t.Fatalf("trial %d: ParseFDs of %q: %v", trial, text, err)
		}
		if got.String() != set.String() {
			t.Fatalf("trial %d: round trip %q → %q", trial, set, got)
		}
	}
}

func TestStripCommentHonoursQuotes(t *testing.T) {
	cases := []struct{ in, want string }{
		{"R(a) # trailing", "R(a)"},
		{"R('a#b')", "R('a#b')"},
		{"R('a#b') # real comment", "R('a#b')"},
		{`R('a\'#b')`, `R('a\'#b')`},
		{"# whole line", ""},
	}
	for _, c := range cases {
		if got := stripComment(c.in); got != c.want {
			t.Fatalf("stripComment(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestQuotedConstantWithCommentAndQuote(t *testing.T) {
	f := rel.NewFact("Emp", "o'brien, jr. #1", "line\nbreak")
	db := rel.NewDatabase(f)
	got, _, err := ParseDatabase(FormatDatabase(db))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(db) {
		t.Fatalf("round trip: %v != %v", got, db)
	}
}
