package parse

// FuzzParseFactRoundTrip checks the lossless-format contract from both
// directions on arbitrary input: whatever ParseFact accepts, FormatFact
// must render back to an equal fact (Format∘Parse = id up to canonical
// quoting, and Parse∘Format = id exactly), and the canonical rendering
// must be a fixed point.

import (
	"testing"
)

func FuzzParseFactRoundTrip(f *testing.F) {
	for _, s := range []string{
		"R(a)",
		"R(a,b,c)",
		"Emp(1, Alice)",
		"R('quoted constant')",
		`R('with \' escape',x)`,
		`R('back\\slash')`,
		`R('comma,inside')`,
		`R('paren)inside')`,
		`R('#not a comment')`,
		`R('line\nbreak','carriage\rreturn')`,
		"R( spaced , args )",
		"R('')",
		"R(''( , )",
		"R(a,b", // malformed: no closing paren
		"(a,b)", // malformed: no relation name
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		fact, err := ParseFact(s)
		if err != nil {
			return // rejected input: only the accepted language must round-trip
		}
		text := FormatFact(fact)
		back, err := ParseFact(text)
		if err != nil {
			t.Fatalf("FormatFact(%q-parse) = %q does not re-parse: %v", s, text, err)
		}
		if !back.Equal(fact) {
			t.Fatalf("round trip changed the fact: %q → %v → %q → %v", s, fact, text, back)
		}
		if again := FormatFact(back); again != text {
			t.Fatalf("canonical rendering is not a fixed point: %q vs %q", text, again)
		}
	})
}
