// Package parse implements the small text formats the command-line
// tools and examples use:
//
//	facts     R(a,b,c)                 one per line, '#' comments
//	FDs       R: A1,A3 -> A2           attribute names A1..An
//	queries   Ans(x) :- R(x,'c'), S(x) quoted terms are constants,
//	                                   bare identifiers are variables
//	tuples    a,b,c
package parse

import (
	"fmt"
	"strings"

	"repro/internal/cq"
	"repro/internal/fd"
	"repro/internal/rel"
)

// ParseFact parses "R(c1,...,cn)". Constants may be quoted with single
// quotes (required when they contain commas or parentheses).
func ParseFact(s string) (rel.Fact, error) {
	name, args, err := splitAtomText(strings.TrimSpace(s))
	if err != nil {
		return rel.Fact{}, err
	}
	vals := make([]string, len(args))
	for i, a := range args {
		vals[i] = unquote(a)
	}
	if len(vals) == 0 {
		return rel.Fact{}, fmt.Errorf("parse: fact %q has no arguments", s)
	}
	return rel.NewFact(name, vals...), nil
}

// ParseDatabase parses a multi-line fact list, inferring the schema
// (default attribute names A1..An). Blank lines and '#' comments are
// skipped. It errors when a relation appears with inconsistent arities.
func ParseDatabase(text string) (*rel.Database, *rel.Schema, error) {
	var facts []rel.Fact
	arity := map[string]int{}
	var order []string
	for ln, line := range strings.Split(text, "\n") {
		line = stripComment(line)
		if line == "" {
			continue
		}
		f, err := ParseFact(line)
		if err != nil {
			return nil, nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		if prev, ok := arity[f.Rel]; ok {
			if prev != len(f.Args) {
				return nil, nil, fmt.Errorf("line %d: relation %q used with arity %d and %d", ln+1, f.Rel, prev, len(f.Args))
			}
		} else {
			arity[f.Rel] = len(f.Args)
			order = append(order, f.Rel)
		}
		facts = append(facts, f)
	}
	rels := make([]rel.Relation, 0, len(order))
	for _, name := range order {
		rels = append(rels, rel.NewRelation(name, arity[name]))
	}
	sch, err := rel.NewSchema(rels...)
	if err != nil {
		return nil, nil, err
	}
	return rel.NewDatabase(facts...), sch, nil
}

// ParseFD parses "R: A1,A2 -> A3" against the schema (attribute names
// as declared; the defaults are A1..An).
func ParseFD(s string, sch *rel.Schema) (fd.FD, error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return fd.FD{}, fmt.Errorf("parse: FD %q missing ':'", s)
	}
	relName := strings.TrimSpace(parts[0])
	r, ok := sch.Relation(relName)
	if !ok {
		return fd.FD{}, fmt.Errorf("parse: unknown relation %q in FD", relName)
	}
	sides := strings.SplitN(parts[1], "->", 2)
	if len(sides) != 2 {
		return fd.FD{}, fmt.Errorf("parse: FD %q missing '->'", s)
	}
	lhs, err := parseAttrList(sides[0], r)
	if err != nil {
		return fd.FD{}, err
	}
	rhs, err := parseAttrList(sides[1], r)
	if err != nil {
		return fd.FD{}, err
	}
	out := fd.New(relName, lhs, rhs)
	if err := out.Validate(sch); err != nil {
		return fd.FD{}, err
	}
	return out, nil
}

func parseAttrList(s string, r rel.Relation) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		i := r.AttrIndex(tok)
		if i < 0 {
			return nil, fmt.Errorf("parse: relation %s has no attribute %q", r.Name, tok)
		}
		out = append(out, i)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("parse: empty attribute list in FD")
	}
	return out, nil
}

// ParseFDs parses a multi-line FD list ('#' comments, blank lines ok).
func ParseFDs(text string, sch *rel.Schema) (*fd.Set, error) {
	var fds []fd.FD
	for ln, line := range strings.Split(text, "\n") {
		line = stripComment(line)
		if line == "" {
			continue
		}
		f, err := ParseFD(line, sch)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		fds = append(fds, f)
	}
	return fd.NewSet(sch, fds...)
}

// ParseQuery parses "Ans(x,y) :- R(x,'c'), S(y)". Quoted terms are
// constants; bare identifiers are variables.
func ParseQuery(s string) (*cq.Query, error) {
	parts := strings.SplitN(s, ":-", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("parse: query %q missing ':-'", s)
	}
	headName, headArgs, err := splitAtomText(strings.TrimSpace(parts[0]))
	if err != nil {
		return nil, fmt.Errorf("parse: bad query head: %w", err)
	}
	if headName != "Ans" {
		return nil, fmt.Errorf("parse: query head must be Ans(...), got %q", headName)
	}
	var answerVars []string
	for _, a := range headArgs {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		if isQuoted(a) {
			return nil, fmt.Errorf("parse: answer position %q must be a variable", a)
		}
		answerVars = append(answerVars, a)
	}
	bodyText := strings.TrimSpace(parts[1])
	atomTexts, err := splitTopLevel(bodyText)
	if err != nil {
		return nil, err
	}
	var atoms []cq.Atom
	for _, at := range atomTexts {
		name, args, err := splitAtomText(strings.TrimSpace(at))
		if err != nil {
			return nil, fmt.Errorf("parse: bad atom %q: %w", at, err)
		}
		terms := make([]cq.Term, len(args))
		for i, a := range args {
			a = strings.TrimSpace(a)
			if isQuoted(a) {
				terms[i] = cq.Const(unquote(a))
			} else {
				terms[i] = cq.Var(a)
			}
		}
		atoms = append(atoms, cq.NewAtom(name, terms...))
	}
	return cq.New(answerVars, atoms...)
}

// ParseTuple parses "a,b,c" into an answer tuple; the empty string is
// the empty tuple (Boolean queries).
func ParseTuple(s string) cq.Tuple {
	s = strings.TrimSpace(s)
	if s == "" {
		return cq.Tuple{}
	}
	parts, err := splitQuoted(s, ',')
	if err != nil {
		parts = strings.Split(s, ",")
	}
	out := make(cq.Tuple, len(parts))
	for i, p := range parts {
		out[i] = unquote(strings.TrimSpace(p))
	}
	return out
}

// splitAtomText splits "R(a,b)" into the relation name and raw
// argument strings, honouring quotes.
func splitAtomText(s string) (string, []string, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return "", nil, fmt.Errorf("malformed atom %q", s)
	}
	name := strings.TrimSpace(s[:open])
	if name == "" {
		return "", nil, fmt.Errorf("atom %q has no relation name", s)
	}
	inner := s[open+1 : len(s)-1]
	if strings.TrimSpace(inner) == "" {
		return name, nil, nil
	}
	args, err := splitQuoted(inner, ',')
	if err != nil {
		return "", nil, err
	}
	for i := range args {
		args[i] = strings.TrimSpace(args[i])
	}
	return name, args, nil
}

// splitTopLevel splits a query body on commas that are outside
// parentheses and quotes. Backslash escapes inside quotes are skipped.
func splitTopLevel(s string) ([]string, error) {
	var out []string
	depth := 0
	quoted := false
	start := 0
	for i := 0; i < len(s); i++ {
		if quoted && s[i] == '\\' && i+1 < len(s) {
			i++
			continue
		}
		switch s[i] {
		case '\'':
			quoted = !quoted
		case '(':
			if !quoted {
				depth++
			}
		case ')':
			if !quoted {
				depth--
				if depth < 0 {
					return nil, fmt.Errorf("parse: unbalanced ')' in %q", s)
				}
			}
		case ',':
			if !quoted && depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if quoted || depth != 0 {
		return nil, fmt.Errorf("parse: unbalanced quotes or parentheses in %q", s)
	}
	out = append(out, s[start:])
	return out, nil
}

// splitQuoted splits on sep outside single quotes. Inside quotes a
// backslash escapes the next byte, so quoted constants may contain the
// quote and backslash characters themselves.
func splitQuoted(s string, sep byte) ([]string, error) {
	var out []string
	quoted := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch {
		case quoted && s[i] == '\\' && i+1 < len(s):
			i++
		case s[i] == '\'':
			quoted = !quoted
		case s[i] == sep && !quoted:
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if quoted {
		return nil, fmt.Errorf("parse: unbalanced quote in %q", s)
	}
	out = append(out, s[start:])
	return out, nil
}

func isQuoted(s string) bool {
	return len(s) >= 2 && s[0] == '\'' && s[len(s)-1] == '\''
}

// unquote strips the outer quotes and resolves the escape sequences
// \\, \', \n and \r; an unknown escape keeps the escaped byte. Bare
// (unquoted) tokens are returned verbatim — backslashes there are
// literal, preserving the pre-escape behaviour of the format.
func unquote(s string) string {
	if !isQuoted(s) {
		return s
	}
	s = s[1 : len(s)-1]
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' || i+1 == len(s) {
			b.WriteByte(s[i])
			continue
		}
		i++
		switch s[i] {
		case 'n':
			b.WriteByte('\n')
		case 'r':
			b.WriteByte('\r')
		default: // \\ and \' resolve to the byte itself
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// FormatConstant renders a constant so ParseFact reads it back
// verbatim: simple constants stay bare; anything carrying format
// metacharacters (separators, quotes, comment marker, whitespace) is
// quoted with \', \\, \n, \r escaped.
func FormatConstant(c string) string {
	if c != "" && c == strings.TrimSpace(c) && !strings.ContainsAny(c, ",()'#\\ \t\n\r") {
		return c
	}
	var b strings.Builder
	b.WriteByte('\'')
	for i := 0; i < len(c); i++ {
		switch c[i] {
		case '\\':
			b.WriteString(`\\`)
		case '\'':
			b.WriteString(`\'`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		default:
			b.WriteByte(c[i])
		}
	}
	b.WriteByte('\'')
	return b.String()
}

// FormatFact renders a fact in the text format, quoting constants as
// needed; ParseFact(FormatFact(f)) == f for every fact.
func FormatFact(f rel.Fact) string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = FormatConstant(a)
	}
	return f.Rel + "(" + strings.Join(parts, ",") + ")"
}

// FormatDatabase renders a database as ParseDatabase input: one fact
// per line, in the database's sorted fact order, so
// ParseDatabase(FormatDatabase(d)) reproduces d exactly.
func FormatDatabase(d *rel.Database) string {
	var b strings.Builder
	for _, f := range d.Facts() {
		b.WriteString(FormatFact(f))
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatFDs renders an FD set as ParseFDs input, one dependency per
// line in declaration order (positional attribute names A1..An, which
// is what parse-inferred schemas declare).
func FormatFDs(s *fd.Set) string {
	var b strings.Builder
	for _, f := range s.FDs() {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// stripComment removes a '#' comment, honouring quotes: a '#' inside a
// quoted constant is data, not a comment marker.
func stripComment(line string) string {
	quoted := false
	for i := 0; i < len(line); i++ {
		switch {
		case quoted && line[i] == '\\' && i+1 < len(line):
			i++
		case line[i] == '\'':
			quoted = !quoted
		case line[i] == '#' && !quoted:
			return strings.TrimSpace(line[:i])
		}
	}
	return strings.TrimSpace(line)
}
