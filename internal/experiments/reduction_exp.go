package experiments

import (
	"fmt"
	"math/big"
	"math/rand"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/graph"
	"repro/internal/reduction"
	"repro/internal/sampler"
)

// This file implements the reduction experiments: E8 (♯H-Coloring,
// §B.1), E9 (♯Pos2DNF, Appendix E), E10 (Vizing / independent sets,
// Proposition 5.5), E11 (FD transfer, Lemma 5.6).

func init() {
	register("E08", "♯H-Coloring Turing reduction (§B.1)", runE08)
	register("E09", "♯Pos2DNF Turing reduction (Appendix E)", runE09)
	register("E10", "Vizing database: conflict graph ≅ G, repairs = independent sets (Prop 5.5)", runE10)
	register("E11", "FD transfer: |CORep(D_F)| = |CORep(D)|+1 (Lemma 5.6)", runE11)
}

func exactOracle(singleton bool) reduction.RRFreqOracle {
	return func(p reduction.Problem) (float64, error) {
		inst := core.NewInstance(p.DB, p.Sigma)
		r, err := inst.RRFreq(singleton, 0, inst.EntailPred(p.Query, cq.Tuple{}))
		if err != nil {
			return 0, err
		}
		f, _ := r.Float64()
		return f, nil
	}
}

// sampledOracle estimates rrfreq with the block sampler (the databases
// of both reductions are primary-key instances).
func sampledOracle(singleton bool, eps, delta float64, seed int64) reduction.RRFreqOracle {
	return func(p reduction.Problem) (float64, error) {
		inst := core.NewInstance(p.DB, p.Sigma)
		bs, err := sampler.NewBlockSampler(inst)
		if err != nil {
			return 0, err
		}
		pred := inst.EntailPred(p.Query, cq.Tuple{})
		est := estimateSR(func(r *rand.Rand) bool {
			return pred(bs.SampleRepair(r, singleton))
		}, eps, delta, seed, 4_000_000)
		return est.Value, nil
	}
}

func runE08(cfg Config) (Table, error) {
	t := Table{
		ID:     "E08",
		Title:  "♯H-Coloring via the OCQA oracle",
		Claim:  "HOM(G) = 3^|V|·(1−rrfreq) equals |hom(G,H)| exactly (Lemma B.1); the FPRAS oracle recovers it approximately — counting graph homomorphisms with a CQA engine",
		Header: Row{"graph", "|hom(G,H)|", "HOM exact oracle", "HOM sampled", "exact match", "sampled rel.err"},
		OK:     true,
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 8))
	h := graph.HardnessH()
	trials := 5
	maxN := 6
	if cfg.Quick {
		trials, maxN = 3, 4
	}
	for i := 0; i < trials; i++ {
		g := graph.RandomGraph(rng, 2+rng.Intn(maxN-1), 0.5)
		want := graph.CountHomomorphisms(g, h)
		wantF, _ := new(big.Float).SetInt(want).Float64()
		gotExact, err := reduction.HOMCount(g, exactOracle(false))
		if err != nil {
			return t, err
		}
		gotSampled, err := reduction.HOMCount(g, sampledOracle(false, 0.02, 0.02, cfg.Seed+41))
		if err != nil {
			return t, err
		}
		exactMatch := relErr(gotExact, wantF) < 1e-9
		sampErr := relErr(gotSampled, wantF)
		if !exactMatch {
			t.OK = false
		}
		t.Rows = append(t.Rows, Row{
			fmt.Sprintf("G(n=%d,m=%d)", g.N(), g.NumEdges()),
			want.String(), f2s(gotExact), f2s(gotSampled),
			b2s(exactMatch), f2s(sampErr),
		})
	}
	t.Notes = append(t.Notes,
		"sampled HOM amplifies the rrfreq error by 3^|V|/|hom|; the paper's reduction needs an exact oracle, the sampled column is illustrative")
	return t, nil
}

func runE09(cfg Config) (Table, error) {
	t := Table{
		ID:     "E09",
		Title:  "♯Pos2DNF via the OCQA oracle (singleton operations)",
		Claim:  "SAT(φ) = 2^|var|·rrfreq¹ equals the brute-force model count (Appendix E); rrfreq¹ = srfreq¹ = P_{M^{uo,1}} on D_φ",
		Header: Row{"formula", "#sat", "SAT exact oracle", "match", "rrfreq¹=srfreq¹=P_uo¹"},
		OK:     true,
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 9))
	trials := 6
	if cfg.Quick {
		trials = 3
	}
	for i := 0; i < trials; i++ {
		f := reduction.RandomPos2DNF(2+rng.Intn(3), 1+rng.Intn(4), rng.Intn)
		want := float64(f.CountSat())
		got, err := reduction.SATCount(f, exactOracle(true))
		if err != nil {
			return t, err
		}
		match := relErr(got, want) < 1e-9

		p := reduction.Pos2DNFProblem(f)
		inst := core.NewInstance(p.DB, p.Sigma)
		pred := inst.EntailPred(p.Query, cq.Tuple{})
		rr, err := inst.RRFreq(true, 0, pred)
		if err != nil {
			return t, err
		}
		sr, err := inst.SRFreq(true, 0, pred)
		if err != nil {
			return t, err
		}
		uo, err := inst.ProbUO(true, 0, pred)
		if err != nil {
			return t, err
		}
		agree := rr.Cmp(sr) == 0 && rr.Cmp(uo) == 0
		if !match || !agree {
			t.OK = false
		}
		t.Rows = append(t.Rows, Row{
			fmt.Sprintf("vars=%d clauses=%d", f.Vars, len(f.Clauses)),
			f2s(want), f2s(got), b2s(match), b2s(agree),
		})
	}
	return t, nil
}

func runE10(cfg Config) (Table, error) {
	t := Table{
		ID:     "E10",
		Title:  "Vizing database (Prop 5.5)",
		Claim:  "CG(D_G,Σ_K) ≅ G via Misra–Gries (Δ+1)-edge colouring (Lemma B.6); |CORep| = |IS(G)| and |CORep¹| = |IS≠∅(G)| (Lemmas 5.4/E.4)",
		Header: Row{"graph", "Δ", "CG ≅ G", "|IS(G)|", "|CORep|", "|IS≠∅|", "|CORep¹|", "match"},
		OK:     true,
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 10))
	shapes := [][2]int{{6, 3}, {10, 4}, {14, 5}}
	if cfg.Quick {
		shapes = [][2]int{{5, 3}, {8, 3}}
	}
	for _, sh := range shapes {
		g := graph.RandomConnectedBoundedDegreeGraph(rng, sh[0], sh[1], sh[0]*2)
		vp := reduction.Vizing(g)
		inst := core.NewInstance(vp.DB, vp.Sigma)
		iso := graph.EqualUnderMapping(g, inst.ConflictGraph(), vp.NodeFact)
		is := g.CountIndependentSets()
		isNE := g.CountNonEmptyIndependentSets()
		co := inst.CountCandidateRepairs(false)
		co1 := inst.CountCandidateRepairs(true)
		match := iso && is.Cmp(co) == 0 && isNE.Cmp(co1) == 0
		if !match {
			t.OK = false
		}
		t.Rows = append(t.Rows, Row{
			fmt.Sprintf("G(n=%d,m=%d)", g.N(), g.NumEdges()),
			fmt.Sprint(g.MaxDegree()), b2s(iso),
			is.String(), co.String(), isNE.String(), co1.String(), b2s(match),
		})
	}
	return t, nil
}

func runE11(cfg Config) (Table, error) {
	t := Table{
		ID:     "E11",
		Title:  "FD transfer (Lemma 5.6 / E.7)",
		Claim:  "|CORep(D_F,Σ_F)| = |CORep(D,Σ_K)|+1 and rrfreq(Q_F) = 1/(|CORep(D,Σ_K)|+1); inverting an rrfreq estimate approximately counts repairs (the FPRAS-transfer argument)",
		Header: Row{"graph", "|CORep(D,Σ_K)|", "|CORep(D_F,Σ_F)|", "+1 holds", "rrfreq(Q_F)", "est. count via FPRAS", "rel.err"},
		OK:     true,
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 11))
	shapes := [][2]int{{5, 3}, {8, 3}}
	if cfg.Quick {
		shapes = [][2]int{{5, 3}}
	}
	for _, sh := range shapes {
		g := graph.RandomConnectedBoundedDegreeGraph(rng, sh[0], sh[1], sh[0]*2)
		vp := reduction.Vizing(g)
		base := core.NewInstance(vp.DB, vp.Sigma)
		tp := reduction.FDTransfer(vp.DB, vp.Sigma)
		lifted := core.NewInstance(tp.DB, tp.Sigma)

		baseCount := base.CountCandidateRepairs(false)
		liftCount := lifted.CountCandidateRepairs(false)
		plusOne := new(big.Int).Add(baseCount, big.NewInt(1)).Cmp(liftCount) == 0

		pred := lifted.EntailPred(tp.Query, cq.Tuple{})
		rr, err := lifted.RRFreq(false, 0, pred)
		if err != nil {
			return t, err
		}
		// The FPRAS-transfer step of Lemma 5.6: estimate rrfreq(Q_F) by
		// uniform candidate-repair sampling over D_F (component-wise
		// independent-set sampling — Σ_F is not primary keys), then
		// invert: count ≈ 1/est − 1, mirroring A(D, ε, δ) in the proof.
		rs := lifted.NewRepairSampler()
		rng2 := rand.New(rand.NewSource(cfg.Seed + 43))
		hits, n := 0, 4000
		for i := 0; i < n; i++ {
			if pred(rs.Sample(rng2, false)) {
				hits++
			}
		}
		est := float64(hits) / float64(n)
		var estCount float64
		if est > 0 {
			estCount = 1/est - 1
		}
		baseF, _ := new(big.Float).SetInt(baseCount).Float64()
		re := relErr(estCount, baseF)
		if !plusOne || rr.Cmp(new(big.Rat).SetFrac(big.NewInt(1), liftCount)) != 0 {
			t.OK = false
		}
		t.Rows = append(t.Rows, Row{
			fmt.Sprintf("G(n=%d,m=%d)", g.N(), g.NumEdges()),
			baseCount.String(), liftCount.String(), b2s(plusOne),
			rr.RatString(), f2s(estCount), f2s(re),
		})
	}
	t.Notes = append(t.Notes,
		"the estimated count inverts a Monte-Carlo rrfreq over uniform candidate repairs, mirroring the A(D,ε,δ) construction in the proof of Lemma 5.6")
	return t, nil
}
