package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fpras"
	"repro/internal/reduction"
	"repro/internal/rel"
	"repro/internal/sampler"
	"repro/internal/workload"
)

// This file implements the approximation experiments: E3 (Theorem
// 5.1(2)), E4 (Theorem 6.1(2) + Lemma C.1), E5 (Theorem 7.1(2)), E6
// (Proposition D.6), E7 (Theorem 7.5).

// estimateSR runs the engine's stopping rule without a cancellation
// scope: experiment runs are batch work, so the context error cannot
// occur under context.Background().
func estimateSR(s engine.Sampler, eps, delta float64, seed int64, maxSamples int) engine.Estimate {
	est, _ := engine.EstimateStoppingRule(context.Background(), s, eps, delta, seed, maxSamples)
	return est
}

func init() {
	register("E03", "FPRAS for RRFreq under primary keys (Thm 5.1(2))", runE03)
	register("E04", "FPRAS for SRFreq under primary keys (Thm 6.1(2), Lemma C.1)", runE04)
	register("E05", "FPRAS for M^uo under keys (Thm 7.1(2))", runE05)
	register("E06", "Exponentially small M^uo probability for FDs (Prop D.6)", runE06)
	register("E07", "FPRAS for M^{uo,1} under FDs (Thm 7.5)", runE07)
}

// exactVsEstimate runs one row of an exact-vs-FPRAS comparison.
type evRow struct {
	label    string
	exact    float64
	estimate engine.Estimate
	eps      float64
}

func (r evRow) row() Row {
	within := relErr(r.estimate.Value, r.exact) <= r.eps
	return Row{
		r.label,
		f2s(r.exact),
		f2s(r.estimate.Value),
		f2s(relErr(r.estimate.Value, r.exact)),
		fmt.Sprintf("%.2f", r.eps),
		fmt.Sprint(r.estimate.Samples),
		b2s(within),
	}
}

func evHeader() Row {
	return Row{"instance", "exact P", "estimate", "rel.err", "ε", "samples", "within ε"}
}

func runE03(cfg Config) (Table, error) {
	t := Table{
		ID:     "E03",
		Title:  "RRFreq FPRAS under primary keys",
		Claim:  "Monte Carlo over the uniform repair sampler (Lemma 5.2) estimates rrfreq within ε of the exact value; sample cost is polynomial",
		Header: evHeader(),
		OK:     true,
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	sizes := [][2]int{{3, 3}, {5, 3}, {6, 4}}
	eps := 0.1
	if cfg.Quick {
		sizes = [][2]int{{3, 2}, {4, 3}}
	}
	for _, sz := range sizes {
		w := workload.HotBlockDatabase(rng, workload.BlockSpec{
			Blocks: sz[0], MinSize: sz[1], MaxSize: sz[1], ValueSkew: 0.5,
		})
		inst := w.Core()
		pred := inst.EntailPred(w.Query, w.Tuple)
		exact, err := inst.RRFreq(false, 0, pred)
		if err != nil {
			return t, err
		}
		ef, _ := exact.Float64()
		bs, err := sampler.NewBlockSampler(inst)
		if err != nil {
			return t, err
		}
		est := estimateSR(func(r *rand.Rand) bool {
			return pred(bs.SampleRepair(r, false))
		}, eps, 0.02, cfg.Seed+17, 0)
		r := evRow{
			label:    fmt.Sprintf("%d blocks × %d (‖D‖=%d)", sz[0], sz[1], inst.D.Len()),
			exact:    ef,
			estimate: est,
			eps:      eps,
		}
		t.Rows = append(t.Rows, r.row())
		if relErr(est.Value, ef) > eps {
			t.OK = false
		}
	}
	// Analytic large-instance row: under M^ur the block outcomes are
	// independent and uniform, so P(hot survives) has a closed form;
	// the sampler must match it at a scale exact enumeration cannot
	// reach.
	blocks, size := 60, 4
	if cfg.Quick {
		blocks, size = 20, 3
	}
	w := largeHotWorkload(rng, blocks, size)
	inst := w.Core()
	pred := inst.EntailPred(w.Query, w.Tuple)
	analytic := 1 - math.Pow(1-1/float64(size+1), float64(blocks))
	bs, err := sampler.NewBlockSampler(inst)
	if err != nil {
		return t, err
	}
	est := estimateSR(func(r *rand.Rand) bool {
		return pred(bs.SampleRepair(r, false))
	}, eps, 0.02, cfg.Seed+19, 0)
	r := evRow{
		label:    fmt.Sprintf("%d blocks × %d analytic (‖D‖=%d)", blocks, size, inst.D.Len()),
		exact:    analytic,
		estimate: est,
		eps:      eps,
	}
	t.Rows = append(t.Rows, r.row())
	if relErr(est.Value, analytic) > eps {
		t.OK = false
	}
	t.Notes = append(t.Notes, "last row compares against the closed form 1−(1−1/(m+1))^b, valid because M^ur block outcomes are independent")
	return t, nil
}

// largeHotWorkload builds a block database where every block of the
// given size contains exactly one hot fact, so under M^ur the survival
// probability has the closed form 1 − (1 − 1/(size+1))^blocks.
func largeHotWorkload(rng *rand.Rand, blocks, size int) workload.Instance {
	w := workload.BlockDatabase(rng, workload.BlockSpec{Blocks: blocks, MinSize: size, MaxSize: size, ValueSkew: 0})
	var facts []rel.Fact
	next := 0
	for b := 0; b < blocks; b++ {
		facts = append(facts, rel.NewFact("R", fmt.Sprintf("k%d", b), "hot"))
		for j := 1; j < size; j++ {
			facts = append(facts, rel.NewFact("R", fmt.Sprintf("k%d", b), fmt.Sprintf("v%d", next)))
			next++
		}
	}
	w.DB = rel.NewDatabase(facts...)
	return w
}

func runE04(cfg Config) (Table, error) {
	t := Table{
		ID:     "E04",
		Title:  "SRFreq FPRAS under primary keys",
		Claim:  "Algorithm 1 samples CRS uniformly using the Lemma C.1 counting DP; estimates land within ε; DP = DAG count on every instance",
		Header: append(evHeader(), "DP=|CRS|"),
		OK:     true,
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 4))
	sizes := [][2]int{{3, 3}, {4, 3}}
	if cfg.Quick {
		sizes = [][2]int{{3, 2}}
	}
	eps := 0.1
	for _, sz := range sizes {
		w := workload.HotBlockDatabase(rng, workload.BlockSpec{
			Blocks: sz[0], MinSize: sz[1], MaxSize: sz[1], ValueSkew: 0.5,
		})
		inst := w.Core()
		pred := inst.EntailPred(w.Query, w.Tuple)
		exact, err := inst.SRFreq(false, 0, pred)
		if err != nil {
			return t, err
		}
		ef, _ := exact.Float64()
		bs, err := sampler.NewBlockSampler(inst)
		if err != nil {
			return t, err
		}
		dagCount, err := inst.CountCRS(false, 0)
		if err != nil {
			return t, err
		}
		dpMatches := bs.CountSequences(false).Cmp(dagCount) == 0
		est := estimateSR(func(r *rand.Rand) bool {
			_, res := bs.SampleSequence(r, false)
			return pred(res)
		}, eps, 0.02, cfg.Seed+23, 0)
		r := evRow{
			label:    fmt.Sprintf("%d blocks × %d (‖D‖=%d)", sz[0], sz[1], inst.D.Len()),
			exact:    ef,
			estimate: est,
			eps:      eps,
		}
		row := append(r.row(), b2s(dpMatches))
		t.Rows = append(t.Rows, row)
		if relErr(est.Value, ef) > eps || !dpMatches {
			t.OK = false
		}
	}
	return t, nil
}

func runE05(cfg Config) (Table, error) {
	t := Table{
		ID:     "E05",
		Title:  "M^uo FPRAS under (non-primary) keys",
		Claim:  "the local chain walk (Lemma 7.2) estimates P_{M^uo,Q} within ε; positive probabilities stay ≥ 1/poly (Prop 7.3)",
		Header: evHeader(),
		OK:     true,
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 5))
	ns := []int{6, 9, 12}
	if cfg.Quick {
		ns = []int{5, 7}
	}
	eps := 0.1
	minP := math.Inf(1)
	for _, n := range ns {
		w := workload.MultiKeyDatabase(rng, n, 3)
		inst := w.Core()
		pred := inst.EntailPred(w.Query, w.Tuple)
		exact, err := inst.ProbUO(false, 400000, pred)
		if err != nil {
			continue // state space too large for exact; skip row
		}
		ef, _ := exact.Float64()
		if ef > 0 && ef < minP {
			minP = ef
		}
		est := estimateSR(func(r *rand.Rand) bool {
			_, res := sampler.SampleUO(inst, false, r)
			return pred(res)
		}, eps, 0.02, cfg.Seed+29, 2_000_000)
		if ef == 0 {
			continue
		}
		r := evRow{
			label:    fmt.Sprintf("multikey n=%d (‖D‖=%d)", n, inst.D.Len()),
			exact:    ef,
			estimate: est,
			eps:      eps,
		}
		t.Rows = append(t.Rows, r.row())
		if est.Converged && relErr(est.Value, ef) > eps {
			t.OK = false
		}
	}
	if len(t.Rows) == 0 {
		t.OK = false
		t.Notes = append(t.Notes, "no instance admitted exact computation")
	}
	t.Notes = append(t.Notes, fmt.Sprintf("minimum positive exact probability observed: %s (polynomially bounded per Prop 7.3)", f2s(minP)))
	return t, nil
}

func runE06(cfg Config) (Table, error) {
	t := Table{
		ID:     "E06",
		Title:  "Proposition D.6: exponential decay for FDs under M^uo",
		Claim:  "0 < P_{M^uo,Q}(D_n) ≤ 1/2^{n−1}, so Monte Carlo sample cost explodes exponentially — no FPRAS via sampling",
		Header: Row{"n", "exact P", "bound 1/2^{n-1}", "P ≤ bound", "samples for ε=0.1 (≈1/(ε²P))"},
		OK:     true,
	}
	max := 14
	if cfg.Quick {
		max = 9
	}
	for n := 2; n <= max; n += 2 {
		p := reduction.PropD6(n)
		inst := core.NewInstance(p.DB, p.Sigma)
		pr, err := inst.ProbUO(false, 0, inst.EntailPred(p.Query, nil))
		if err != nil {
			return t, err
		}
		pf, _ := pr.Float64()
		bound := math.Pow(2, -float64(n-1))
		ok := pf > 0 && pf <= bound+1e-15
		if !ok {
			t.OK = false
		}
		t.Rows = append(t.Rows, Row{
			fmt.Sprint(n), f2s(pf), f2s(bound), b2s(ok),
			fmt.Sprintf("%.3g", 1/(0.01*pf)),
		})
	}
	t.Notes = append(t.Notes, "contrast with E07: the singleton restriction M^{uo,1} keeps the same family polynomially bounded")
	return t, nil
}

func runE07(cfg Config) (Table, error) {
	t := Table{
		ID:     "E07",
		Title:  "M^{uo,1} FPRAS under general FDs",
		Claim:  "singleton-operation walks estimate P within ε; positive probabilities respect the Lemma D.8 bound 1/(e‖D‖)^‖Q‖",
		Header: append(evHeader(), "≥ D.8 bound"),
		OK:     true,
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	ns := []int{6, 9, 12}
	if cfg.Quick {
		ns = []int{5, 7}
	}
	eps := 0.1
	for _, n := range ns {
		w := workload.FDChainDatabase(rng, n, 3)
		inst := w.Core()
		pred := inst.EntailPred(w.Query, w.Tuple)
		exact, err := inst.ProbUO(true, 400000, pred)
		if err != nil {
			continue
		}
		ef, _ := exact.Float64()
		if ef == 0 {
			continue
		}
		bound := fpras.LowerBoundSingletonFD(inst.D.Len(), w.Query.Size())
		est := estimateSR(func(r *rand.Rand) bool {
			_, res := sampler.SampleUO(inst, true, r)
			return pred(res)
		}, eps, 0.02, cfg.Seed+31, 2_000_000)
		r := evRow{
			label:    fmt.Sprintf("fdchain n=%d (‖D‖=%d)", n, inst.D.Len()),
			exact:    ef,
			estimate: est,
			eps:      eps,
		}
		row := append(r.row(), b2s(ef >= bound))
		t.Rows = append(t.Rows, row)
		if (est.Converged && relErr(est.Value, ef) > eps) || ef < bound {
			t.OK = false
		}
	}
	// Include the Prop D.6 family under singleton ops: the decay is gone.
	for _, n := range []int{6, 10} {
		p := reduction.PropD6(n)
		inst := core.NewInstance(p.DB, p.Sigma)
		pr, err := inst.ProbUO(true, 0, inst.EntailPred(p.Query, nil))
		if err != nil {
			return t, err
		}
		pf, _ := pr.Float64()
		bound := fpras.LowerBoundSingletonFD(n, 1)
		ok := pf >= bound
		if !ok {
			t.OK = false
		}
		t.Rows = append(t.Rows, Row{
			fmt.Sprintf("PropD6 n=%d under M^{uo,1}", n),
			f2s(pf), "-", "-", "-", "-", b2s(true), b2s(ok),
		})
	}
	return t, nil
}
