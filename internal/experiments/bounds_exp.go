package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/fpras"
	"repro/internal/sampler"
	"repro/internal/workload"
)

// This file implements E12 (lower-bound tightness sweep across Lemmas
// 5.3, 6.3, E.3, E.10 and D.8), E13 (polynomial-time sampler scaling,
// Lemmas 5.2/6.2/7.2) and E14 (exact-vs-FPRAS wall-clock crossover —
// the motivation of Sections 1 and 4).

func init() {
	register("E12", "Lower-bound tightness sweep (Lemmas 5.3, 6.3, E.3, E.10, D.8)", runE12)
	register("E13", "Sampler and counting-DP scaling (Lemmas 5.2, 6.2, 7.2, C.1)", runE13)
	register("E14", "Exact vs FPRAS wall-clock crossover", runE14)
}

func runE12(cfg Config) (Table, error) {
	t := Table{
		ID:     "E12",
		Title:  "Lower bounds on positive probabilities",
		Claim:  "every positive frequency/probability observed over random instances respects the paper's lower bound; the minimum observed ratio measured/bound stays ≥ 1",
		Header: Row{"lemma", "quantity", "instances", "min measured", "bound at min", "min ratio", "holds"},
		OK:     true,
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 12))
	trials := 40
	if cfg.Quick {
		trials = 12
	}

	type sweep struct {
		lemma, quantity string
		bound           func(dbSize, qSize int) float64
		measure         func(w workload.Instance) (float64, int, bool) // value, dbSize, ok
	}
	sweeps := []sweep{
		{
			lemma: "5.3", quantity: "rrfreq (primary keys)",
			bound: fpras.LowerBoundRRFreqPrimary,
			measure: func(w workload.Instance) (float64, int, bool) {
				inst := w.Core()
				r, err := inst.RRFreq(false, 100000, inst.EntailPred(w.Query, w.Tuple))
				if err != nil {
					return 0, 0, false
				}
				f, _ := r.Float64()
				return f, inst.D.Len(), true
			},
		},
		{
			lemma: "6.3", quantity: "srfreq (primary keys)",
			bound: fpras.LowerBoundRRFreqPrimary, // same bound as 5.3
			measure: func(w workload.Instance) (float64, int, bool) {
				inst := w.Core()
				r, err := inst.SRFreq(false, 100000, inst.EntailPred(w.Query, w.Tuple))
				if err != nil {
					return 0, 0, false
				}
				f, _ := r.Float64()
				return f, inst.D.Len(), true
			},
		},
		{
			lemma: "E.3", quantity: "rrfreq¹ (primary keys)",
			bound: fpras.LowerBoundSingletonPrimary,
			measure: func(w workload.Instance) (float64, int, bool) {
				inst := w.Core()
				r, err := inst.RRFreq(true, 100000, inst.EntailPred(w.Query, w.Tuple))
				if err != nil {
					return 0, 0, false
				}
				f, _ := r.Float64()
				return f, inst.D.Len(), true
			},
		},
		{
			lemma: "E.10", quantity: "srfreq¹ (primary keys)",
			bound: fpras.LowerBoundSingletonPrimary,
			measure: func(w workload.Instance) (float64, int, bool) {
				inst := w.Core()
				r, err := inst.SRFreq(true, 100000, inst.EntailPred(w.Query, w.Tuple))
				if err != nil {
					return 0, 0, false
				}
				f, _ := r.Float64()
				return f, inst.D.Len(), true
			},
		},
	}
	for _, sw := range sweeps {
		minVal, boundAtMin, minRatio := math.Inf(1), 0.0, math.Inf(1)
		used := 0
		for i := 0; i < trials; i++ {
			w := workload.HotBlockDatabase(rng, workload.BlockSpec{
				Blocks: 2 + rng.Intn(3), MinSize: 2, MaxSize: 3, ValueSkew: 0.4,
			})
			v, dbSize, ok := sw.measure(w)
			if !ok || v == 0 {
				continue
			}
			used++
			b := sw.bound(dbSize, w.Query.Size())
			if v < minVal {
				minVal, boundAtMin = v, b
			}
			if r := v / b; r < minRatio {
				minRatio = r
			}
		}
		holds := minRatio >= 1
		if !holds {
			t.OK = false
		}
		t.Rows = append(t.Rows, Row{
			sw.lemma, sw.quantity, fmt.Sprint(used),
			f2s(minVal), f2s(boundAtMin), f2s(minRatio), b2s(holds),
		})
	}

	// Lemma D.8: M^{uo,1} over general FDs.
	minVal, boundAtMin, minRatio := math.Inf(1), 0.0, math.Inf(1)
	used := 0
	for i := 0; i < trials; i++ {
		w := workload.FDChainDatabase(rng, 4+rng.Intn(4), 3)
		inst := w.Core()
		r, err := inst.ProbUO(true, 100000, inst.EntailPred(w.Query, w.Tuple))
		if err != nil {
			continue
		}
		v, _ := r.Float64()
		if v == 0 {
			continue
		}
		used++
		b := fpras.LowerBoundSingletonFD(inst.D.Len(), w.Query.Size())
		if v < minVal {
			minVal, boundAtMin = v, b
		}
		if ratio := v / b; ratio < minRatio {
			minRatio = ratio
		}
	}
	holds := minRatio >= 1
	if !holds {
		t.OK = false
	}
	t.Rows = append(t.Rows, Row{
		"D.8", "P_{M^{uo,1}} (FDs)", fmt.Sprint(used),
		f2s(minVal), f2s(boundAtMin), f2s(minRatio), b2s(holds),
	})
	return t, nil
}

func runE13(cfg Config) (Table, error) {
	t := Table{
		ID:     "E13",
		Title:  "Polynomial-time sampler scaling",
		Claim:  "per-sample cost of SampleRep (Lemma 5.2), SampleSeq (Lemma 6.2: Algorithm 1 and the O(‖D‖) traceback variant) and the M^uo walk (Lemma 7.2) grows polynomially with ‖D‖; the Lemma C.1 DP counts |CRS| far beyond enumeration reach",
		Header: Row{"‖D‖ (blocks×size)", "SampleRep ns/op", "Alg.1 ns/op", "traceback ns/op", "WalkUO ns/op", "DP count time", "|CRS| digits"},
		OK:     true,
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 13))
	shapes := [][2]int{{25, 4}, {50, 4}, {100, 4}, {200, 4}, {400, 4}}
	reps := 100
	alg1Cap := 50 // Algorithm 1 re-counts per step; skip beyond this
	if cfg.Quick {
		shapes = [][2]int{{10, 3}, {25, 3}}
		reps = 30
	}
	var prev float64
	for _, sh := range shapes {
		w := workload.BlockDatabase(rng, workload.BlockSpec{
			Blocks: sh[0], MinSize: sh[1], MaxSize: sh[1], ValueSkew: 0.3,
		})
		inst := w.Core()
		bs, err := sampler.NewBlockSampler(inst)
		if err != nil {
			return t, err
		}
		ss, err := sampler.NewSequenceSampler(inst, false)
		if err != nil {
			return t, err
		}
		walker := sampler.NewUOWalker(inst)
		timeIt := func(f func()) float64 {
			start := time.Now()
			for i := 0; i < reps; i++ {
				f()
			}
			return float64(time.Since(start).Nanoseconds()) / float64(reps)
		}
		repNs := timeIt(func() { bs.SampleRepair(rng, false) })
		alg1 := "-"
		if sh[0] <= alg1Cap {
			alg1 = fmt.Sprintf("%.0f", timeIt(func() { bs.SampleSequence(rng, false) }))
		}
		seqNs := timeIt(func() { ss.Sample(rng) })
		uoNs := timeIt(func() { walker.WalkResult(rng, false) })
		start := time.Now()
		crs := bs.CountSequences(false)
		dpTime := time.Since(start)
		digits := len(crs.String())
		t.Rows = append(t.Rows, Row{
			fmt.Sprintf("%d (%d×%d)", inst.D.Len(), sh[0], sh[1]),
			fmt.Sprintf("%.0f", repNs),
			alg1,
			fmt.Sprintf("%.0f", seqNs),
			fmt.Sprintf("%.0f", uoNs),
			dpTime.String(),
			fmt.Sprint(digits),
		})
		// Polynomial shape check: doubling ‖D‖ must not blow up the
		// per-sample traceback cost by more than ~32× (degree ≤ 5).
		if prev > 0 && seqNs > prev*32 {
			t.OK = false
		}
		prev = seqNs
	}
	t.Notes = append(t.Notes,
		"|CRS| digits column shows the counts are astronomically beyond enumeration — only the DP and the samplers make the space tractable",
		"Algorithm 1 is capped at 50 blocks: its per-step re-counting is polynomial but impractical; the traceback sampler draws the identical distribution in O(‖D‖) per sample")
	return t, nil
}

func runE14(cfg Config) (Table, error) {
	t := Table{
		ID:     "E14",
		Title:  "Exact enumeration vs FPRAS crossover",
		Claim:  "exact rrfreq costs Θ(|CORep|) = Θ((m+1)^b) and explodes with the number of blocks b, while the FPRAS cost is flat — approximate CQA wins beyond a small crossover, the practical motivation of the paper",
		Header: Row{"blocks", "‖D‖", "|CORep|", "exact time", "FPRAS time", "FPRAS rel.err", "winner"},
		OK:     true,
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 14))
	maxBlocks := []int{2, 4, 6, 8, 10}
	if cfg.Quick {
		maxBlocks = []int{2, 4, 6}
	}
	eps := 0.1
	var exactBeaten bool
	for _, b := range maxBlocks {
		w := largeHotWorkload(rng, b, 3)
		inst := w.Core()
		pred := inst.EntailPred(w.Query, w.Tuple)
		analytic := 1 - math.Pow(1-0.25, float64(b))

		start := time.Now()
		exact, err := inst.RRFreq(false, 0, pred)
		exactTime := time.Since(start)
		if err != nil {
			return t, err
		}
		ef, _ := exact.Float64()
		if relErr(ef, analytic) > 1e-9 {
			t.OK = false
		}

		bs, err := sampler.NewBlockSampler(inst)
		if err != nil {
			return t, err
		}
		start = time.Now()
		est := estimateSR(func(r *rand.Rand) bool {
			return pred(bs.SampleRepair(r, false))
		}, eps, 0.05, cfg.Seed+47, 0)
		fprasTime := time.Since(start)

		winner := "exact"
		if fprasTime < exactTime {
			winner = "FPRAS"
			exactBeaten = true
		}
		t.Rows = append(t.Rows, Row{
			fmt.Sprint(b), fmt.Sprint(inst.D.Len()),
			inst.CountCandidateRepairs(false).String(),
			exactTime.String(), fprasTime.String(),
			f2s(relErr(est.Value, ef)), winner,
		})
	}
	if !exactBeaten {
		t.OK = false
		t.Notes = append(t.Notes, "FPRAS never beat exact — crossover not reached at these sizes")
	}
	return t, nil
}
