package experiments

import (
	"fmt"
	"math/big"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/fd"
	"repro/internal/rel"
)

// This file reproduces the paper's two figures and their worked
// examples (E1: Figure 1 / Example 3.6 / Section 4; E2: Figure 2 /
// Examples B.2, B.3, C.2, C.3).

func init() {
	register("E01", "Figure 1: repairing Markov chain of the running example", runE01)
	register("E02", "Figure 2: block database counts and frequencies", runE02)
}

// runningExample is Example 3.6.
func runningExample() *core.Instance {
	d := rel.NewDatabase(
		rel.NewFact("R", "a1", "b1", "c1"),
		rel.NewFact("R", "a1", "b2", "c2"),
		rel.NewFact("R", "a2", "b1", "c2"),
	)
	sch := rel.MustSchema(rel.NewRelation("R", 3))
	sigma := fd.MustSet(sch,
		fd.New("R", []int{0}, []int{1}),
		fd.New("R", []int{2}, []int{1}),
	)
	return core.NewInstance(d, sigma)
}

// figure2 is the database of Figure 2.
func figure2() *core.Instance {
	d := rel.NewDatabase(
		rel.NewFact("R", "a1", "b1"),
		rel.NewFact("R", "a1", "b2"),
		rel.NewFact("R", "a1", "b3"),
		rel.NewFact("R", "a2", "b1"),
		rel.NewFact("R", "a3", "b1"),
		rel.NewFact("R", "a3", "b2"),
	)
	sch := rel.MustSchema(rel.NewRelation("R", 2))
	return core.NewInstance(d, fd.MustSet(sch, fd.New("R", []int{0}, []int{1})))
}

func runE01(cfg Config) (Table, error) {
	inst := runningExample()
	t := Table{
		ID:     "E01",
		Title:  "Figure 1: repairing Markov chain of Example 3.6",
		Claim:  "chain has 12 nodes / 9 leaves / 5 repairs; §4 worked probabilities: M^us leaves 1/9 each, M^ur reachable leaves 1/5 each, M^uo root edges 1/5 and inner edges 1/3",
		Header: Row{"quantity", "paper", "computed", "match"},
		OK:     true,
	}
	add := func(name, paper, computed string) {
		match := paper == computed
		if !match {
			t.OK = false
		}
		t.Rows = append(t.Rows, Row{name, paper, computed, b2s(match)})
	}
	tree, err := inst.BuildTree(false, 0)
	if err != nil {
		return t, err
	}
	add("|RS(D,Σ)| (nodes)", "12", fmt.Sprint(tree.NodeCount))
	add("|CRS(D,Σ)| (leaves)", "9", fmt.Sprint(len(tree.Leaves)))
	add("|CORep(D,Σ)|", "5", inst.CountCandidateRepairs(false).String())
	add("|CanCRS(D,Σ)|", "5", tree.CanonicalLeafCount().String())

	// M^us: all leaves 1/9.
	usOK := true
	for _, p := range tree.LeafDistribution(core.UniformSequences) {
		if p.Cmp(big.NewRat(1, 9)) != 0 {
			usOK = false
		}
	}
	add("M^us leaf probabilities all 1/9", "yes", b2s(usOK))

	// M^ur: exactly 5 reachable leaves, 1/5 each.
	urDist := tree.LeafDistribution(core.UniformRepairs)
	reach := 0
	urOK := true
	for _, p := range urDist {
		if p.Sign() > 0 {
			reach++
			if p.Cmp(big.NewRat(1, 5)) != 0 {
				urOK = false
			}
		}
	}
	add("M^ur reachable leaves", "5", fmt.Sprint(reach))
	add("M^ur reachable leaf probabilities all 1/5", "yes", b2s(urOK))

	// M^uo: root edges 1/5, inner edges 1/3.
	uoOK := true
	for i := range tree.Root.Children {
		if tree.TransitionProb(core.UniformOperations, tree.Root, i).Cmp(big.NewRat(1, 5)) != 0 {
			uoOK = false
		}
	}
	for _, c := range tree.Root.Children {
		for i := range c.Children {
			if tree.TransitionProb(core.UniformOperations, c, i).Cmp(big.NewRat(1, 3)) != 0 {
				uoOK = false
			}
		}
	}
	add("M^uo edge probabilities (1/5 root, 1/3 inner)", "yes", b2s(uoOK))

	// Operational semantics per generator.
	ur, err := inst.SemanticsUR(false, 0)
	if err != nil {
		return t, err
	}
	add("[[D]]_{M^ur} distribution", "uniform 1/5 over 5 repairs", semShape(ur))
	us, err := inst.SemanticsUS(false, 0)
	if err != nil {
		return t, err
	}
	add("[[D]]_{M^us} max repair probability", "2/9", maxProb(us))
	uo, err := inst.SemanticsUO(false, 0)
	if err != nil {
		return t, err
	}
	add("[[D]]_{M^uo} max repair probability", "4/15", maxProb(uo))
	return t, nil
}

func semShape(sem []core.RepairProb) string {
	if len(sem) == 0 {
		return "empty"
	}
	uniform := true
	for _, rp := range sem {
		if rp.Prob.Cmp(sem[0].Prob) != 0 {
			uniform = false
			break
		}
	}
	if uniform {
		return fmt.Sprintf("uniform %s over %d repairs", sem[0].Prob.RatString(), len(sem))
	}
	return fmt.Sprintf("non-uniform over %d repairs", len(sem))
}

func maxProb(sem []core.RepairProb) string {
	max := new(big.Rat)
	for _, rp := range sem {
		if rp.Prob.Cmp(max) > 0 {
			max = rp.Prob
		}
	}
	return max.RatString()
}

func runE02(cfg Config) (Table, error) {
	inst := figure2()
	t := Table{
		ID:     "E02",
		Title:  "Figure 2: block database of Examples B.2/B.3/C.2/C.3",
		Claim:  "12 candidate repairs; |CRS| = 99; rrfreq(Q,(b1)) = 1/4 ≥ 1/12 (Lemma 5.3); srfreq = 24/99 ≥ 1/12 (Lemma 6.3); singleton: |CORep^1| = 6, |CRS^1| = 36",
		Header: Row{"quantity", "paper", "computed", "match"},
		OK:     true,
	}
	add := func(name, paper, computed string) {
		match := paper == computed
		if !match {
			t.OK = false
		}
		t.Rows = append(t.Rows, Row{name, paper, computed, b2s(match)})
	}
	add("|CORep(D,Σ)| (Example B.2)", "12", inst.CountCandidateRepairs(false).String())
	crs, err := inst.CountCRS(false, 0)
	if err != nil {
		return t, err
	}
	add("|CRS(D,Σ)| (Example C.2)", "99", crs.String())
	add("|CORep^1(D,Σ)|", "6", inst.CountCandidateRepairs(true).String())
	crs1, err := inst.CountCRS(true, 0)
	if err != nil {
		return t, err
	}
	add("|CRS^1(D,Σ)|", "36", crs1.String())

	q := cq.MustNew([]string{"x"}, cq.NewAtom("R", cq.Const("a1"), cq.Var("x")))
	pred := inst.EntailPred(q, cq.Tuple{"b1"})
	rr, err := inst.RRFreq(false, 0, pred)
	if err != nil {
		return t, err
	}
	add("rrfreq_{Σ,Q}(D,(b1)) (Example B.3)", "1/4", rr.RatString())
	sr, err := inst.SRFreq(false, 0, pred)
	if err != nil {
		return t, err
	}
	add("srfreq_{Σ,Q}(D,(b1)) (Example C.3)", "8/33", sr.RatString())
	// Lower bound 1/(2|D|)^|Q| = 1/12.
	bound := big.NewRat(1, 12)
	add("rrfreq ≥ 1/(2|D|)^|Q| = 1/12", "yes", b2s(rr.Cmp(bound) >= 0))
	add("srfreq ≥ 1/(2|D|)^|Q| = 1/12", "yes", b2s(sr.Cmp(bound) >= 0))
	return t, nil
}
