// Package experiments implements the reproduction's evaluation suite.
// The paper is a theory contribution with two figures and no
// measurement tables, so the suite reproduces both figures exactly and
// validates every theorem, lemma and proposition empirically: sampler
// uniformity, FPRAS error guarantees, the polynomial lower bounds, the
// exponential FD counterexample, the counting DP, and the Turing
// reductions. Each experiment returns a printable table;
// cmd/ocqa-bench runs the registry and EXPERIMENTS.md records the
// output against the paper's claims.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Config tunes an experiment run.
type Config struct {
	// Seed drives all randomness (deterministic tables per seed).
	Seed int64
	// Quick shrinks instance sizes and sample counts so the whole
	// registry runs in seconds (used by tests and testing.B loops).
	Quick bool
}

// Row is one table row.
type Row []string

// Table is an experiment's result.
type Table struct {
	ID     string
	Title  string
	Claim  string // the paper artefact being reproduced and its expected shape
	Header Row
	Rows   []Row
	Notes  []string
	// OK aggregates the per-row pass/fail checks.
	OK bool
}

// Format renders the table as aligned text.
func (t Table) Format() string {
	var b strings.Builder
	status := "PASS"
	if !t.OK {
		status = "FAIL"
	}
	fmt.Fprintf(&b, "== %s: %s [%s]\n", t.ID, t.Title, status)
	fmt.Fprintf(&b, "   claim: %s\n", t.Claim)
	widths := make([]int, len(t.Header))
	rows := append([]Row{t.Header}, t.Rows...)
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(r Row) {
		for i, c := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make(Row, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "   note: %s\n", n)
	}
	return b.String()
}

// Experiment is a registered experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) (Table, error)
}

var registry []Experiment

func register(id, title string, run func(Config) (Table, error)) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All returns the experiments sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// helpers shared by the experiment files

func f2s(f float64) string { return fmt.Sprintf("%.6g", f) }

func b2s(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}

func relErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return 1
	}
	d := got - want
	if d < 0 {
		d = -d
	}
	return d / want
}
