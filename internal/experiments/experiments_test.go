package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsRegistered checks the registry covers E01..E14.
func TestAllExperimentsRegistered(t *testing.T) {
	all := All()
	if len(all) != 14 {
		t.Fatalf("registered %d experiments, want 14", len(all))
	}
	for i, e := range all {
		want := "E" + pad(i+1)
		if e.ID != want {
			t.Errorf("experiment %d has ID %q, want %q", i, e.ID, want)
		}
		if e.Title == "" {
			t.Errorf("%s has no title", e.ID)
		}
	}
}

func pad(i int) string {
	if i < 10 {
		return "0" + string(rune('0'+i))
	}
	return "1" + string(rune('0'+i-10))
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E01"); !ok {
		t.Error("E01 missing")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("E99 should not exist")
	}
}

// TestAllExperimentsPassQuick runs the entire registry in Quick mode;
// every experiment must complete and report OK (its paper claims hold).
func TestAllExperimentsPassQuick(t *testing.T) {
	cfg := Config{Seed: 42, Quick: true}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if !tab.OK {
				t.Fatalf("%s claims violated:\n%s", e.ID, tab.Format())
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
		})
	}
}

func TestTableFormat(t *testing.T) {
	tab := Table{
		ID: "EXX", Title: "demo", Claim: "c",
		Header: Row{"a", "bb"},
		Rows:   []Row{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"n1"},
		OK:     true,
	}
	out := tab.Format()
	for _, want := range []string{"EXX", "PASS", "claim: c", "333", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
	tab.OK = false
	if !strings.Contains(tab.Format(), "FAIL") {
		t.Error("FAIL marker missing")
	}
}

func TestHelpers(t *testing.T) {
	if relErr(1.1, 1.0) < 0.09 || relErr(1.1, 1.0) > 0.11 {
		t.Error("relErr wrong")
	}
	if relErr(0, 0) != 0 || relErr(1, 0) != 1 {
		t.Error("relErr zero handling wrong")
	}
	if b2s(true) != "yes" || b2s(false) != "NO" {
		t.Error("b2s wrong")
	}
}

func TestEvRowFormatting(t *testing.T) {
	r := evRow{label: "x", exact: 0.5, eps: 0.1}
	r.estimate.Value = 0.52
	r.estimate.Samples = 100
	row := r.row()
	if len(row) != len(evHeader()) {
		t.Fatalf("row width %d != header width %d", len(row), len(evHeader()))
	}
	if row[len(row)-1] != "yes" {
		t.Fatalf("0.52 vs 0.5 is within ε=0.1: %v", row)
	}
	r.estimate.Value = 0.7
	if row := r.row(); row[len(row)-1] != "NO" {
		t.Fatalf("0.7 vs 0.5 is outside ε=0.1: %v", row)
	}
}

func TestF2S(t *testing.T) {
	if f2s(0.25) != "0.25" {
		t.Errorf("f2s(0.25) = %q", f2s(0.25))
	}
	if f2s(1.0/3) == "" {
		t.Error("f2s empty")
	}
}

// TestExperimentsDeterministicPerSeed: re-running an experiment with
// the same seed reproduces the same table rows.
func TestExperimentsDeterministicPerSeed(t *testing.T) {
	e, ok := ByID("E12")
	if !ok {
		t.Fatal("E12 missing")
	}
	cfg := Config{Seed: 7, Quick: true}
	a, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatal("row counts differ")
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				t.Fatalf("row %d col %d differs: %q vs %q", i, j, a.Rows[i][j], b.Rows[i][j])
			}
		}
	}
}
