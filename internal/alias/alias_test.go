package alias

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// refScan is the linear subtract-and-scan weighted draw the samplers
// used before alias tables; the BigTable must be draw-for-draw
// identical to it.
func refScan(rng *rand.Rand, weights []*big.Int) int {
	total := big.NewInt(0)
	for _, w := range weights {
		total.Add(total, w)
	}
	r := new(big.Int).Rand(rng, total)
	for i, w := range weights {
		if r.Cmp(w) < 0 {
			return i
		}
		r.Sub(r, w)
	}
	panic("fell through")
}

func TestBigTableMatchesLinearScanExactly(t *testing.T) {
	weights := []*big.Int{
		big.NewInt(3), big.NewInt(0), big.NewInt(17), big.NewInt(1),
		new(big.Int).Lsh(big.NewInt(1), 80), // force the big path
		big.NewInt(0), big.NewInt(29),
	}
	bt, err := NewBig(weights)
	if err != nil {
		t.Fatal(err)
	}
	rngA := rand.New(rand.NewSource(42))
	rngB := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		want := refScan(rngA, weights)
		got := bt.Draw(rngB)
		if got != want {
			t.Fatalf("draw %d: BigTable=%d, linear scan=%d", i, got, want)
		}
	}
}

// TestTableFrequencies checks the alias table empirically against the
// exact distribution on a skewed vector, with a 5-sigma bound per
// index.
func TestTableFrequencies(t *testing.T) {
	weights := []uint64{1, 0, 50, 9, 40, 0, 900}
	tab, err := New(weights)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, w := range weights {
		total += float64(w)
	}
	const draws = 200_000
	counts := make([]int, len(weights))
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < draws; i++ {
		counts[tab.Draw(rng)]++
	}
	for i, w := range weights {
		p := float64(w) / total
		sigma := math.Sqrt(float64(draws) * p * (1 - p))
		diff := math.Abs(float64(counts[i]) - float64(draws)*p)
		if w == 0 {
			if counts[i] != 0 {
				t.Fatalf("index %d has zero weight but %d draws", i, counts[i])
			}
			continue
		}
		if diff > 5*sigma+1 {
			t.Fatalf("index %d: %d draws, expected %.0f ± %.0f", i, counts[i], float64(draws)*p, 5*sigma)
		}
	}
}

// TestTableExhaustiveMass verifies exactness structurally rather than
// statistically: summing the acceptance mass of every column must
// reproduce each weight exactly (scaled by n).
func TestTableExhaustiveMass(t *testing.T) {
	cases := [][]uint64{
		{1},
		{1, 1},
		{1, 2, 3},
		{7, 0, 0, 1},
		{1000000, 1, 999},
		{5, 5, 5, 5, 5, 5, 5},
	}
	for _, weights := range cases {
		tab, err := New(weights)
		if err != nil {
			t.Fatal(err)
		}
		var total uint64
		for _, w := range weights {
			total += w
		}
		// mass[i] · 1/(n·total) is the exact probability of index i.
		mass := make([]uint64, len(weights))
		for c := range weights {
			mass[c] += tab.prob[c]
			mass[tab.alias[c]] += uint64(tab.total) - tab.prob[c]
		}
		for i, w := range weights {
			if mass[i] != w*uint64(len(weights)) {
				t.Fatalf("weights %v: index %d carries mass %d, want %d·n=%d",
					weights, i, mass[i], w, w*uint64(len(weights)))
			}
		}
	}
}

func TestNewExactSelectsRepresentation(t *testing.T) {
	smallW := []*big.Int{big.NewInt(2), big.NewInt(5)}
	c, err := NewExact(smallW)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.(*Table); !ok {
		t.Fatalf("small weights should build an alias Table, got %T", c)
	}
	bigW := []*big.Int{new(big.Int).Lsh(big.NewInt(1), 100), big.NewInt(1)}
	c, err = NewExact(bigW)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.(*BigTable); !ok {
		t.Fatalf("huge weights should fall back to BigTable, got %T", c)
	}
	if _, err := NewExact([]*big.Int{big.NewInt(0)}); err == nil {
		t.Fatal("zero total weight must be rejected")
	}
	if _, err := New(nil); err == nil {
		t.Fatal("empty vector must be rejected")
	}
}
