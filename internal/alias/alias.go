// Package alias implements exact discrete sampling from fixed integer
// weight vectors: a Walker–Vose alias table when the weights fit
// machine words, and a cumulative-sum binary search over big.Ints when
// they do not. Both are O(1)/O(log n) per draw and produce exactly the
// distribution weight[i]/Σweights — all arithmetic is integer, so no
// rounding ever perturbs a sampler's law. The sequence samplers
// precompute these tables for their draw-invariant weighted choices
// (total-length distribution, per-block split counts), replacing
// per-draw linear scans over big.Int weight vectors.
package alias

import (
	"fmt"
	"math"
	"math/big"
	"math/rand"
	"sort"
)

// Chooser draws an index i with probability weights[i]/Σweights for
// the weight vector it was built from. Implementations are immutable
// and safe for concurrent use; only the rng is per-caller.
type Chooser interface {
	Draw(rng *rand.Rand) int
}

// Table is a Walker–Vose alias table over uint64 weights. Construction
// scales every weight by n (exactly, in integers), so each of the n
// columns carries total probability mass Σweights and a draw is one
// column pick plus one threshold comparison.
type Table struct {
	n     int
	total int64
	// prob[c] is the acceptance threshold of column c in [0, total]:
	// a uniform r < prob[c] keeps c, otherwise the draw is alias[c].
	prob  []uint64
	alias []int32
}

// New builds an alias table. It fails when the vector is empty, sums
// to zero, or is too large for exact integer construction
// (Σweights · n must stay below 2⁶³).
func New(weights []uint64) (*Table, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("alias: empty weight vector")
	}
	var total uint64
	for _, w := range weights {
		if total+w < total {
			return nil, fmt.Errorf("alias: weight sum overflows uint64")
		}
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("alias: zero total weight")
	}
	if total > math.MaxInt64/uint64(n) {
		return nil, fmt.Errorf("alias: total weight %d too large for %d-column exact construction", total, n)
	}
	// rem[i] starts at weights[i]·n; the invariant Σrem = (#unplaced)·total
	// holds throughout, so with integer arithmetic every leftover column
	// ends at exactly total (no floating-point slop to special-case).
	rem := make([]uint64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		rem[i] = w * uint64(n)
		if rem[i] < total {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	t := &Table{n: n, total: int64(total), prob: make([]uint64, n), alias: make([]int32, n)}
	for len(small) > 0 && len(large) > 0 {
		l := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		large = large[:len(large)-1]
		t.prob[l] = rem[l]
		t.alias[l] = g
		rem[g] -= total - rem[l]
		if rem[g] < total {
			small = append(small, g)
		} else {
			large = append(large, g)
		}
	}
	for _, c := range append(small, large...) {
		t.prob[c] = total
		t.alias[c] = c
	}
	return t, nil
}

// Draw returns an index with probability weights[i]/Σweights.
func (t *Table) Draw(rng *rand.Rand) int {
	c := rng.Intn(t.n)
	if uint64(rng.Int63n(t.total)) < t.prob[c] {
		return c
	}
	return int(t.alias[c])
}

// BigTable draws by binary search over precomputed big.Int cumulative
// sums — the fallback when weights exceed the alias table's exact
// range. For the same rng it consumes exactly one big.Int.Rand per
// draw and returns exactly the index a linear subtract-and-scan over
// the same weights would, so swapping a scan for a BigTable never
// changes a deterministic stream.
type BigTable struct {
	cum   []*big.Int
	total *big.Int
}

// NewBig builds the cumulative table. It fails when the vector is
// empty or sums to zero (or negative — weights must be counts).
func NewBig(weights []*big.Int) (*BigTable, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("alias: empty weight vector")
	}
	cum := make([]*big.Int, len(weights))
	total := new(big.Int)
	for i, w := range weights {
		if w.Sign() < 0 {
			return nil, fmt.Errorf("alias: negative weight at index %d", i)
		}
		total.Add(total, w)
		cum[i] = new(big.Int).Set(total)
	}
	if total.Sign() <= 0 {
		return nil, fmt.Errorf("alias: zero total weight")
	}
	return &BigTable{cum: cum, total: total}, nil
}

// Draw returns an index with probability weights[i]/Σweights.
func (b *BigTable) Draw(rng *rand.Rand) int {
	r := new(big.Int).Rand(rng, b.total)
	// Smallest i with r < cum[i]; zero-weight indices have cum[i] equal
	// to their predecessor and can never be returned.
	return sort.Search(len(b.cum), func(i int) bool { return r.Cmp(b.cum[i]) < 0 })
}

// NewExact builds the cheapest exact chooser for a big.Int weight
// vector: an alias Table when every weight and the scaled construction
// fit machine words, a BigTable otherwise.
func NewExact(weights []*big.Int) (Chooser, error) {
	small := make([]uint64, len(weights))
	fits := true
	for i, w := range weights {
		if w.Sign() < 0 {
			return nil, fmt.Errorf("alias: negative weight at index %d", i)
		}
		if !w.IsUint64() {
			fits = false
			break
		}
		small[i] = w.Uint64()
	}
	if fits {
		if t, err := New(small); err == nil {
			return t, nil
		}
		// Fall through: sum overflow or scaled range too large for the
		// exact alias construction — the BigTable handles any magnitude.
	}
	return NewBig(weights)
}
