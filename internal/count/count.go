// Package count implements the polynomial-time counting results the
// paper's samplers rely on, for sets of primary keys:
//
//   - the closed-form per-block sequence counts S^{ne,i}_m and S^{e,i}_m
//     of Lemma C.1;
//   - |CRS(D,Σ)| via two independent dynamic programs: the paper's
//     triple-index interleaving DP (P^{k,i}_j) and a re-derived
//     binomial-convolution DP over per-block length-indexed weights
//     (tested equal everywhere);
//   - closed forms for |CORep|, |CORep^1| and |CRS^1|.
//
// Everything is exact big-integer arithmetic: the counts grow
// factorially in ‖D‖.
package count

import (
	"math/big"
	"sync"
)

var (
	factMu    sync.Mutex
	factCache = []*big.Int{big.NewInt(1)} // factCache[i] = i!
)

// Factorial returns n! (n ≥ 0), cached.
func Factorial(n int) *big.Int {
	if n < 0 {
		panic("count: negative factorial")
	}
	factMu.Lock()
	defer factMu.Unlock()
	for len(factCache) <= n {
		k := len(factCache)
		next := new(big.Int).Mul(factCache[k-1], big.NewInt(int64(k)))
		factCache = append(factCache, next)
	}
	return new(big.Int).Set(factCache[n])
}

// Binomial returns C(n, k), 0 when k < 0 or k > n.
func Binomial(n, k int) *big.Int {
	if k < 0 || k > n || n < 0 {
		return big.NewInt(0)
	}
	return new(big.Int).Binomial(int64(n), int64(k))
}

// pow2 returns 2^i.
func pow2(i int) *big.Int { return new(big.Int).Lsh(big.NewInt(1), uint(i)) }

// SneBlock computes S^{ne,i}_m (Lemma C.1): the number of complete
// repairing sequences of a single block of m ≥ 2 key-equal facts whose
// result is non-empty (keeps exactly one fact) and that use exactly i
// pair removals:
//
//	S^{ne,i}_m = m! · (m−i−1)! / (2^i · i! · (m−2i−1)!)
//
// and 0 when the parameters are out of range (e.g. i = m/2 for even m).
func SneBlock(m, i int) *big.Int {
	if m < 2 || i < 0 || m-2*i-1 < 0 {
		return big.NewInt(0)
	}
	num := new(big.Int).Mul(Factorial(m), Factorial(m-i-1))
	den := new(big.Int).Mul(pow2(i), Factorial(i))
	den.Mul(den, Factorial(m-2*i-1))
	return num.Div(num, den)
}

// SeBlock computes S^{e,i}_m (Lemma C.1): the number of complete
// repairing sequences of a single block of m ≥ 2 facts whose result is
// empty and that use exactly i ≥ 1 pair removals:
//
//	S^{e,i}_m = m! · (m−i−1)! / (2^i · (i−1)! · (m−2i)!)
//
// and 0 when out of range (in particular S^{e,0}_m = 0: an empty result
// needs a final pair removal).
func SeBlock(m, i int) *big.Int {
	if m < 2 || i < 1 || m-2*i < 0 || m-i-1 < 0 {
		return big.NewInt(0)
	}
	num := new(big.Int).Mul(Factorial(m), Factorial(m-i-1))
	den := new(big.Int).Mul(pow2(i), Factorial(i-1))
	den.Mul(den, Factorial(m-2*i))
	return num.Div(num, den)
}

// BlockLengthWeights returns W with W[ℓ] = the number of complete
// repairing sequences of length ℓ for a single block of m facts. With
// singleton set, only single-fact removals are counted (so the block
// keeps exactly one fact via a sequence of length m−1). Blocks of size
// ≤ 1 admit only the empty sequence.
func BlockLengthWeights(m int, singleton bool) []*big.Int {
	if m <= 1 {
		return []*big.Int{big.NewInt(1)}
	}
	if singleton {
		w := make([]*big.Int, m)
		for i := range w {
			w[i] = big.NewInt(0)
		}
		// Choose the surviving fact (m ways) and an order of the m−1
		// removals: m · (m−1)! = m! sequences, all of length m−1.
		w[m-1] = Factorial(m)
		return w
	}
	w := make([]*big.Int, m+1)
	for i := range w {
		w[i] = big.NewInt(0)
	}
	for i := 0; 2*i <= m; i++ {
		// Non-empty result: i pair removals, length m−i−1.
		if l := m - i - 1; l >= 0 {
			w[l].Add(w[l], SneBlock(m, i))
		}
		// Empty result: i ≥ 1 pair removals, length m−i.
		if i >= 1 {
			w[m-i].Add(w[m-i], SeBlock(m, i))
		}
	}
	return w
}

// CRSPrimaryKeys computes |CRS(D,Σ)| for a database whose blocks (w.r.t.
// a set of primary keys) have the given sizes, by the binomial-
// convolution interleaving DP:
//
//	U_j[L] = Σ_ℓ U_{j-1}[L−ℓ] · W_j[ℓ] · C(L, ℓ)
//
// where W_j are the per-block length weights. Sequences for different
// blocks are independent and interleave freely (proof of Lemma C.1),
// and C(L, ℓ) counts the interleavings of a length-ℓ block sequence
// into a combined sequence of length L.
func CRSPrimaryKeys(blockSizes []int, singleton bool) *big.Int {
	u := []*big.Int{big.NewInt(1)} // U_0: only the empty sequence, length 0
	for _, m := range blockSizes {
		if m <= 1 {
			continue
		}
		w := BlockLengthWeights(m, singleton)
		nu := make([]*big.Int, len(u)+len(w)-1)
		for i := range nu {
			nu[i] = big.NewInt(0)
		}
		for a, ua := range u {
			if ua.Sign() == 0 {
				continue
			}
			for l, wl := range w {
				if wl.Sign() == 0 {
					continue
				}
				term := new(big.Int).Mul(ua, wl)
				term.Mul(term, Binomial(a+l, l))
				nu[a+l].Add(nu[a+l], term)
			}
		}
		u = nu
	}
	total := big.NewInt(0)
	for _, v := range u {
		total.Add(total, v)
	}
	return total
}

// CRSPrimaryKeysPaperDP computes |CRS(D,Σ)| with the paper's own
// triple-index dynamic program from the proof of Lemma C.1, tracking
// P^{k,i}_j — the number of sequences over the first j blocks with
// exactly i pair removals leaving exactly k of those blocks non-empty.
// It exists to validate the convolution DP against the published
// formulas; both must agree everywhere.
func CRSPrimaryKeysPaperDP(blockSizes []int) *big.Int {
	// Keep only blocks with at least two facts.
	var ms []int
	maxPairs := 0
	totalFacts := 0
	for _, m := range blockSizes {
		if m >= 2 {
			ms = append(ms, m)
			maxPairs += m / 2
			totalFacts += m
		}
	}
	n := len(ms)
	if n == 0 {
		return big.NewInt(1)
	}
	// p[k][i] for the first j blocks.
	p := make([][]*big.Int, n+1)
	for k := range p {
		p[k] = make([]*big.Int, maxPairs+1)
		for i := range p[k] {
			p[k][i] = big.NewInt(0)
		}
	}
	for i := 0; i <= ms[0]/2; i++ {
		p[0][i].Set(SeBlock(ms[0], i))
		p[1][i].Set(SneBlock(ms[0], i))
	}
	prefix := ms[0]
	for j := 1; j < n; j++ {
		mj := ms[j]
		np := make([][]*big.Int, n+1)
		for k := range np {
			np[k] = make([]*big.Int, maxPairs+1)
			for i := range np[k] {
				np[k][i] = big.NewInt(0)
			}
		}
		for k := 0; k <= j+1; k++ {
			for i := 0; i <= maxPairs; i++ {
				acc := big.NewInt(0)
				for i2 := 0; i2 <= mj/2 && i2 <= i; i2++ {
					i1 := i - i2
					// Term 1: block j ends empty; k blocks kept among
					// the first j-1.
					se := SeBlock(mj, i2)
					if se.Sign() != 0 && p[k][i1].Sign() != 0 {
						lenAll := prefix + mj - i1 - i2 - k
						lenLeft := prefix - i1 - k
						lenRight := mj - i2
						if lenLeft >= 0 && lenRight >= 0 {
							t := new(big.Int).Mul(p[k][i1], se)
							t.Mul(t, interleavings(lenAll, lenLeft, lenRight))
							acc.Add(acc, t)
						}
					}
					// Term 2: block j ends non-empty; k−1 blocks kept
					// among the first j-1.
					if k >= 1 {
						sne := SneBlock(mj, i2)
						if sne.Sign() != 0 && p[k-1][i1].Sign() != 0 {
							lenAll := prefix + mj - i1 - i2 - k
							lenLeft := prefix - i1 - (k - 1)
							lenRight := mj - i2 - 1
							if lenLeft >= 0 && lenRight >= 0 {
								t := new(big.Int).Mul(p[k-1][i1], sne)
								t.Mul(t, interleavings(lenAll, lenLeft, lenRight))
								acc.Add(acc, t)
							}
						}
					}
				}
				np[k][i] = acc
			}
		}
		p = np
		prefix += mj
	}
	total := big.NewInt(0)
	for k := 0; k <= n; k++ {
		for i := 0; i <= maxPairs; i++ {
			total.Add(total, p[k][i])
		}
	}
	return total
}

// interleavings returns all!/(left!·right!) with all = left + right, the
// multinomial factor of the paper's DP.
func interleavings(all, left, right int) *big.Int {
	if all != left+right || left < 0 || right < 0 {
		return big.NewInt(0)
	}
	num := Factorial(all)
	den := new(big.Int).Mul(Factorial(left), Factorial(right))
	return num.Div(num, den)
}

// CORepPrimaryKeys computes |CORep(D,Σ)| = Π (|B|+1) over blocks of
// size ≥ 2 (proof of Lemma 5.2), or |CORep^1(D,Σ)| = Π |B| with
// singleton set (proof of Lemma E.2).
func CORepPrimaryKeys(blockSizes []int, singleton bool) *big.Int {
	total := big.NewInt(1)
	for _, m := range blockSizes {
		if m <= 1 {
			continue
		}
		if singleton {
			total.Mul(total, big.NewInt(int64(m)))
		} else {
			total.Mul(total, big.NewInt(int64(m+1)))
		}
	}
	return total
}
