package count

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/rel"
)

func TestFactorial(t *testing.T) {
	want := []int64{1, 1, 2, 6, 24, 120, 720}
	for n, w := range want {
		if got := Factorial(n); got.Int64() != w {
			t.Errorf("%d! = %v, want %d", n, got, w)
		}
	}
	// Cache must return fresh values that callers can mutate safely.
	a := Factorial(5)
	a.SetInt64(999)
	if Factorial(5).Int64() != 120 {
		t.Fatal("Factorial cache corrupted by caller mutation")
	}
}

func TestFactorialPanicsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Factorial(-1)
}

func TestBinomial(t *testing.T) {
	if Binomial(5, 2).Int64() != 10 {
		t.Error("C(5,2) != 10")
	}
	if Binomial(5, 6).Sign() != 0 || Binomial(5, -1).Sign() != 0 {
		t.Error("out-of-range binomials must be 0")
	}
	if Binomial(0, 0).Int64() != 1 {
		t.Error("C(0,0) != 1")
	}
}

// TestSneSeExampleC2 checks the worked values of Example C.2:
// S^{ne,0}_3 = 6, S^{ne,1}_3 = 3, S^{e,0}_3 = 0, S^{e,1}_3 = 3,
// S^{ne,0}_2 = 2, S^{ne,1}_2 = 0, S^{e,0}_2 = 0, S^{e,1}_2 = 1.
func TestSneSeExampleC2(t *testing.T) {
	cases := []struct {
		m, i   int
		ne, e  int64
		within string
	}{
		{3, 0, 6, 0, "m=3,i=0"},
		{3, 1, 3, 3, "m=3,i=1"},
		{2, 0, 2, 0, "m=2,i=0"},
		{2, 1, 0, 1, "m=2,i=1"},
	}
	for _, c := range cases {
		if got := SneBlock(c.m, c.i); got.Int64() != c.ne {
			t.Errorf("Sne(%s) = %v, want %d", c.within, got, c.ne)
		}
		if got := SeBlock(c.m, c.i); got.Int64() != c.e {
			t.Errorf("Se(%s) = %v, want %d", c.within, got, c.e)
		}
	}
}

func TestSneEvenBlockFullPairing(t *testing.T) {
	// Even m with i = m/2 pair removals cannot leave a non-empty result.
	if SneBlock(4, 2).Sign() != 0 {
		t.Error("Sne(4,2) must be 0")
	}
	// But the empty result is achievable: Se(4,2) > 0.
	if SeBlock(4, 2).Sign() <= 0 {
		t.Error("Se(4,2) must be positive")
	}
}

// blockDB builds a single-relation database whose blocks (w.r.t. the
// primary key A1 → A2) have the given sizes.
func blockDB(sizes []int) (*rel.Database, *fd.Set) {
	var facts []rel.Fact
	for b, m := range sizes {
		for j := 0; j < m; j++ {
			facts = append(facts, rel.NewFact("R", fmt.Sprintf("a%d", b), fmt.Sprintf("b%d", j)))
		}
	}
	sch := rel.MustSchema(rel.NewRelation("R", 2))
	return rel.NewDatabase(facts...), fd.MustSet(sch, fd.New("R", []int{0}, []int{1}))
}

func TestCRSPrimaryKeysExampleC2(t *testing.T) {
	// Blocks of sizes 3, 1, 2 (Figure 2): |CRS| = 99.
	if got := CRSPrimaryKeys([]int{3, 1, 2}, false); got.Int64() != 99 {
		t.Fatalf("|CRS| = %v, want 99", got)
	}
	if got := CRSPrimaryKeysPaperDP([]int{3, 1, 2}); got.Int64() != 99 {
		t.Fatalf("paper DP |CRS| = %v, want 99", got)
	}
	// Singleton: 3!·2!·C(3,1) = 36.
	if got := CRSPrimaryKeys([]int{3, 1, 2}, true); got.Int64() != 36 {
		t.Fatalf("|CRS^1| = %v, want 36", got)
	}
}

func TestCRSSingleBlock(t *testing.T) {
	// One block of size 2: sequences -f, -g, -{f,g}: 3.
	if got := CRSPrimaryKeys([]int{2}, false); got.Int64() != 3 {
		t.Fatalf("got %v, want 3", got)
	}
	// One block of size 3: 12 (listed in Example C.2).
	if got := CRSPrimaryKeys([]int{3}, false); got.Int64() != 12 {
		t.Fatalf("got %v, want 12", got)
	}
	// Consistent database: only ε.
	if got := CRSPrimaryKeys([]int{1, 1, 1}, false); got.Int64() != 1 {
		t.Fatalf("got %v, want 1", got)
	}
	if got := CRSPrimaryKeys(nil, false); got.Int64() != 1 {
		t.Fatalf("got %v, want 1", got)
	}
}

func TestCORepPrimaryKeys(t *testing.T) {
	// Figure 2: (3+1)(2+1) = 12; singleton: 3·2 = 6.
	if got := CORepPrimaryKeys([]int{3, 1, 2}, false); got.Int64() != 12 {
		t.Fatalf("|CORep| = %v, want 12", got)
	}
	if got := CORepPrimaryKeys([]int{3, 1, 2}, true); got.Int64() != 6 {
		t.Fatalf("|CORep^1| = %v, want 6", got)
	}
}

func TestBlockLengthWeights(t *testing.T) {
	// m=3, pair ops: W[1] = Sne(3,1) = 3; W[2] = Sne(3,0) + Se(3,1) = 9.
	w := BlockLengthWeights(3, false)
	if w[0].Sign() != 0 || w[1].Int64() != 3 || w[2].Int64() != 9 || w[3].Sign() != 0 {
		t.Fatalf("W(3) = %v", w)
	}
	// Singleton m=3: all 6 sequences have length 2.
	w1 := BlockLengthWeights(3, true)
	if w1[2].Int64() != 6 || w1[0].Sign() != 0 || w1[1].Sign() != 0 {
		t.Fatalf("W1(3) = %v", w1)
	}
	// Size-1 block: only the empty sequence.
	if w := BlockLengthWeights(1, false); len(w) != 1 || w[0].Int64() != 1 {
		t.Fatalf("W(1) = %v", w)
	}
}

// TestQuickDPMatchesBruteForce validates both DPs against the exact DAG
// engine on random block databases.
func TestQuickDPMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	prop := func() bool {
		nBlocks := 1 + rng.Intn(3)
		sizes := make([]int, nBlocks)
		total := 0
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(4)
			total += sizes[i]
		}
		if total > 9 {
			return true // keep the brute force fast
		}
		d, sigma := blockDB(sizes)
		inst := core.NewInstance(d, sigma)
		for _, singleton := range []bool{false, true} {
			want, err := inst.CountCRS(singleton, 0)
			if err != nil {
				return false
			}
			if CRSPrimaryKeys(sizes, singleton).Cmp(want) != 0 {
				return false
			}
			if !singleton && CRSPrimaryKeysPaperDP(sizes).Cmp(want) != 0 {
				return false
			}
			if CORepPrimaryKeys(sizes, singleton).Cmp(inst.CountCandidateRepairs(singleton)) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTwoDPsAgree checks the convolution DP against the paper's DP
// on larger block profiles where brute force is impossible.
func TestQuickTwoDPsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	prop := func() bool {
		n := 1 + rng.Intn(5)
		sizes := make([]int, n)
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(7)
		}
		return CRSPrimaryKeys(sizes, false).Cmp(CRSPrimaryKeysPaperDP(sizes)) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSneSeMatchEnumeration validates the closed forms against an
// explicit tree enumeration of a single block, split by pair-removal
// count and result emptiness.
func TestQuickSneSeMatchEnumeration(t *testing.T) {
	for m := 2; m <= 5; m++ {
		d, sigma := blockDB([]int{m})
		inst := core.NewInstance(d, sigma)
		tree, err := inst.BuildTree(false, 0)
		if err != nil {
			t.Fatal(err)
		}
		gotNE := map[int]int64{}
		gotE := map[int]int64{}
		for _, leaf := range tree.Leaves {
			seq := tree.SequenceOf(leaf)
			pairs := 0
			for _, op := range seq {
				if !op.Singleton() {
					pairs++
				}
			}
			if leaf.State.Count() == 0 {
				gotE[pairs]++
			} else {
				gotNE[pairs]++
			}
		}
		for i := 0; 2*i <= m; i++ {
			if SneBlock(m, i).Int64() != gotNE[i] {
				t.Errorf("m=%d i=%d: Sne = %v, enumeration = %d", m, i, SneBlock(m, i), gotNE[i])
			}
			if SeBlock(m, i).Int64() != gotE[i] {
				t.Errorf("m=%d i=%d: Se = %v, enumeration = %d", m, i, SeBlock(m, i), gotE[i])
			}
		}
	}
}

func TestCRSGrowsFactorially(t *testing.T) {
	// Sanity: the count for 6 blocks of size 4 is astronomically larger
	// than for 3 blocks, and both DPs stay exact (big.Int).
	small := CRSPrimaryKeys([]int{4, 4, 4}, false)
	large := CRSPrimaryKeys([]int{4, 4, 4, 4, 4, 4}, false)
	if large.Cmp(new(big.Int).Mul(small, small)) < 0 {
		t.Fatalf("expected super-multiplicative growth: %v vs %v", small, large)
	}
}
