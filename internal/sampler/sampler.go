// Package sampler implements the paper's polynomial-time samplers:
//
//   - SampleRepair: uniform over CORep(D,Σ) for primary keys
//     (Lemma 5.2), and over CORep^1 (Lemma E.2);
//   - SampleSequence: uniform over CRS(D,Σ) for primary keys via
//     Algorithm 1 (Lemma 6.2), and over CRS^1 (Lemma E.9), driven by
//     the counting DP of internal/count;
//   - SampleUO: a walk of the uniform-operations chain M^uo (or
//     M^{uo,1}), whose leaf is distributed per the chain's leaf
//     distribution (Lemmas 7.2 and D.7) — valid for arbitrary FDs.
//
// All samplers are exact (no approximation): uniformity is over the
// respective combinatorial space, using big-integer weights where the
// paper's Algorithm 1 requires the counts |CRS(·)|.
package sampler

import (
	"fmt"
	"math/big"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/count"
	"repro/internal/fd"
	"repro/internal/rel"
)

// constructions counts successful DP-table sampler constructions
// (BlockSampler and SequenceSampler) process-wide. Caching layers use
// it to verify that prepared samplers are actually reused rather than
// rebuilt per query.
var constructions atomic.Int64

// Constructions returns the number of DP-table sampler constructions
// performed so far in this process.
func Constructions() int64 { return constructions.Load() }

// BlockSampler holds the block decomposition of a primary-key instance
// and a cache of |CRS| counts per block-size profile. It provides the
// repair and sequence samplers that require primary keys.
//
// The block decomposition is immutable after construction, so
// SampleRepair, CountRepairs and Blocks are safe for concurrent use;
// the |CRS| cache is mutex-guarded, so SampleSequence and
// CountSequences are safe too — one sampler can serve many goroutines.
type BlockSampler struct {
	inst *core.Instance
	// blocks lists the fact indices of every block with ≥ 2 facts.
	blocks [][]int
	// fixed are the fact indices that survive every repair (singleton
	// blocks and keyless relations).
	fixed []int

	crsMu    sync.Mutex
	crsCache map[string]*big.Int
}

// NewBlockSampler builds the sampler; it fails unless Σ is a set of
// primary keys (the block decomposition — and with it Lemmas 5.2 and
// 6.2 — is only available there).
func NewBlockSampler(inst *core.Instance) (*BlockSampler, error) {
	if cls := inst.Sigma.Classify(); cls != fd.PrimaryKeys {
		return nil, fmt.Errorf("sampler: block sampler requires primary keys, got %v", cls)
	}
	bs := &BlockSampler{inst: inst, crsCache: make(map[string]*big.Int)}
	for _, b := range inst.Sigma.Blocks(inst.D) {
		if b.Size() >= 2 {
			idx := append([]int(nil), b.Indices...)
			bs.blocks = append(bs.blocks, idx)
		} else {
			bs.fixed = append(bs.fixed, b.Indices...)
		}
	}
	constructions.Add(1)
	return bs, nil
}

// Blocks returns the sizes of the non-singleton blocks.
func (bs *BlockSampler) Blocks() []int {
	sizes := make([]int, len(bs.blocks))
	for i, b := range bs.blocks {
		sizes[i] = len(b)
	}
	return sizes
}

// CountRepairs returns |CORep(D,Σ)| (or |CORep^1| with singleton set).
func (bs *BlockSampler) CountRepairs(singleton bool) *big.Int {
	return count.CORepPrimaryKeys(bs.Blocks(), singleton)
}

// CountSequences returns |CRS(D,Σ)| (or |CRS^1| with singleton set).
func (bs *BlockSampler) CountSequences(singleton bool) *big.Int {
	return bs.crs(bs.Blocks(), singleton)
}

// crs returns |CRS| for the block-size profile, cached by the sorted
// multiset of sizes ≥ 2 (sequence counts are symmetric in block order).
func (bs *BlockSampler) crs(sizes []int, singleton bool) *big.Int {
	var key strings.Builder
	if singleton {
		key.WriteByte('1')
	}
	trimmed := make([]int, 0, len(sizes))
	for _, m := range sizes {
		if m >= 2 {
			trimmed = append(trimmed, m)
		}
	}
	sort.Ints(trimmed)
	for _, m := range trimmed {
		key.WriteByte(':')
		key.WriteString(strconv.Itoa(m))
	}
	k := key.String()
	bs.crsMu.Lock()
	defer bs.crsMu.Unlock()
	if v, ok := bs.crsCache[k]; ok {
		return v
	}
	v := count.CRSPrimaryKeys(trimmed, singleton)
	bs.crsCache[k] = v
	return v
}

// SampleRepair draws a uniform element of CORep(D,Σ) (Lemma 5.2): per
// block of size m ≥ 2, one of the m+1 outcomes (keep fact i, or keep
// none) is chosen uniformly. With singleton set it draws from
// CORep^1(D,Σ) (Lemma E.2): one surviving fact per block, uniformly.
func (bs *BlockSampler) SampleRepair(rng *rand.Rand, singleton bool) rel.Subset {
	s := rel.NewSubset(bs.inst.D.Len())
	for _, i := range bs.fixed {
		s.Set(i)
	}
	for _, block := range bs.blocks {
		m := len(block)
		if singleton {
			s.Set(block[rng.Intn(m)])
			continue
		}
		pick := rng.Intn(m + 1)
		if pick < m {
			s.Set(block[pick])
		}
		// pick == m: the whole block is removed.
	}
	return s
}

// AddRepairCounts draws one uniform repair — the same law and rng
// consumption as SampleRepair — and increments the survival counter of
// every surviving block fact, without materialising a Subset. Facts in
// fixed (singleton) blocks survive every repair and are deliberately
// skipped: callers obtain them once via FixedIndices instead of paying
// for them on every draw. This is the marginals hot path: per draw it
// costs O(#blocks) instead of O(‖D‖).
func (bs *BlockSampler) AddRepairCounts(rng *rand.Rand, singleton bool, counts []int) {
	for _, block := range bs.blocks {
		m := len(block)
		if singleton {
			counts[block[rng.Intn(m)]]++
			continue
		}
		if pick := rng.Intn(m + 1); pick < m {
			counts[block[pick]]++
		}
		// pick == m: the whole block is removed.
	}
}

// FixedIndices returns the fact indices that survive every repair
// (singleton blocks and keyless relations) — the complement of the
// facts AddRepairCounts touches. The returned slice is a copy.
func (bs *BlockSampler) FixedIndices() []int {
	return append([]int(nil), bs.fixed...)
}

// SampleSequence draws a uniform element of CRS(D,Σ) via Algorithm 1
// (Lemma 6.2), returning the sequence and its result. At each step the
// justified operations are grouped by symmetry: within a block of
// current size m, all m singleton removals lead to profiles with equal
// |CRS|, as do all C(m,2) pair removals; a group is selected with
// probability (group size)·|CRS(after)| / |CRS(now)| and a uniform
// member within it — exactly Algorithm 1's per-operation law. With
// singleton set it samples CRS^1 uniformly (Lemma E.9).
func (bs *BlockSampler) SampleSequence(rng *rand.Rand, singleton bool) (core.Sequence, rel.Subset) {
	// present[b] = surviving fact indices of block b.
	present := make([][]int, len(bs.blocks))
	for i, b := range bs.blocks {
		present[i] = append([]int(nil), b...)
	}
	sizes := make([]int, len(bs.blocks))
	for i := range present {
		sizes[i] = len(present[i])
	}
	var seq core.Sequence
	for {
		total := bs.crs(sizes, singleton)
		// Weights per (block, kind): kind 0 = singleton removal, kind 1
		// = pair removal.
		type group struct {
			block, kind int
			weight      *big.Int // group size × |CRS(after)|
		}
		var groups []group
		sum := big.NewInt(0)
		for b, m := range sizes {
			if m < 2 {
				continue
			}
			sizes[b] = m - 1
			ws := new(big.Int).Mul(big.NewInt(int64(m)), bs.crs(sizes, singleton))
			sizes[b] = m
			groups = append(groups, group{b, 0, ws})
			sum.Add(sum, ws)
			if !singleton {
				sizes[b] = m - 2
				wp := new(big.Int).Mul(big.NewInt(int64(m*(m-1)/2)), bs.crs(sizes, singleton))
				sizes[b] = m
				groups = append(groups, group{b, 1, wp})
				sum.Add(sum, wp)
			}
		}
		if len(groups) == 0 {
			break // consistent: no block has two facts left
		}
		if sum.Cmp(total) != 0 {
			panic("sampler: block weights do not sum to |CRS|; counting bug")
		}
		// Draw r uniform in [0, total) and walk the groups.
		r := new(big.Int).Rand(rng, total)
		var g group
		for _, cand := range groups {
			if r.Cmp(cand.weight) < 0 {
				g = cand
				break
			}
			r.Sub(r, cand.weight)
		}
		p := present[g.block]
		if g.kind == 0 {
			j := rng.Intn(len(p))
			seq = append(seq, core.Op{I: p[j], J: -1})
			present[g.block] = append(p[:j:j], p[j+1:]...)
			sizes[g.block]--
		} else {
			j := rng.Intn(len(p))
			k := rng.Intn(len(p) - 1)
			if k >= j {
				k++
			}
			if j > k {
				j, k = k, j
			}
			seq = append(seq, core.Op{I: p[j], J: p[k]})
			np := make([]int, 0, len(p)-2)
			for x, v := range p {
				if x != j && x != k {
					np = append(np, v)
				}
			}
			present[g.block] = np
			sizes[g.block] -= 2
		}
	}
	s := rel.NewSubset(bs.inst.D.Len())
	for _, i := range bs.fixed {
		s.Set(i)
	}
	for _, p := range present {
		for _, i := range p {
			s.Set(i)
		}
	}
	return seq, s
}

// SampleUO runs one walk of the uniform-operations chain M^uo (or
// M^{uo,1} with singleton set): starting from D, repeatedly apply a
// uniformly chosen justified operation until consistent (Lemma 7.2 /
// Lemma D.7). It works for arbitrary FDs and returns the sequence and
// its result; the result is distributed per the chain's leaf
// distribution. For repeated sampling, construct a UOWalker once
// instead — it amortises the conflict bookkeeping.
func SampleUO(inst *core.Instance, singleton bool, rng *rand.Rand) (core.Sequence, rel.Subset) {
	return NewUOWalker(inst).Walk(rng, singleton)
}
