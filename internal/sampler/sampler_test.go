package sampler

import (
	"math"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/rel"
)

func figure2() *core.Instance {
	d := rel.NewDatabase(
		rel.NewFact("R", "a1", "b1"),
		rel.NewFact("R", "a1", "b2"),
		rel.NewFact("R", "a1", "b3"),
		rel.NewFact("R", "a2", "b1"),
		rel.NewFact("R", "a3", "b1"),
		rel.NewFact("R", "a3", "b2"),
	)
	sch := rel.MustSchema(rel.NewRelation("R", 2))
	return core.NewInstance(d, fd.MustSet(sch, fd.New("R", []int{0}, []int{1})))
}

func runningExample() *core.Instance {
	d := rel.NewDatabase(
		rel.NewFact("R", "a1", "b1", "c1"),
		rel.NewFact("R", "a1", "b2", "c2"),
		rel.NewFact("R", "a2", "b1", "c2"),
	)
	sch := rel.MustSchema(rel.NewRelation("R", 3))
	sigma := fd.MustSet(sch,
		fd.New("R", []int{0}, []int{1}),
		fd.New("R", []int{2}, []int{1}),
	)
	return core.NewInstance(d, sigma)
}

func TestNewBlockSamplerRejectsFDs(t *testing.T) {
	if _, err := NewBlockSampler(runningExample()); err == nil {
		t.Fatal("block sampler must reject general FDs")
	}
}

func TestNewBlockSamplerRejectsMultipleKeys(t *testing.T) {
	sch := rel.MustSchema(rel.NewRelation("R", 2))
	sigma := fd.MustSet(sch,
		fd.New("R", []int{0}, []int{1}),
		fd.New("R", []int{1}, []int{0}),
	)
	d := rel.NewDatabase(rel.NewFact("R", "a", "b"))
	if _, err := NewBlockSampler(core.NewInstance(d, sigma)); err == nil {
		t.Fatal("block sampler must reject non-primary keys")
	}
}

func TestBlockSamplerCounts(t *testing.T) {
	bs, err := NewBlockSampler(figure2())
	if err != nil {
		t.Fatal(err)
	}
	if got := bs.CountRepairs(false); got.Int64() != 12 {
		t.Errorf("|CORep| = %v, want 12", got)
	}
	if got := bs.CountRepairs(true); got.Int64() != 6 {
		t.Errorf("|CORep^1| = %v, want 6", got)
	}
	if got := bs.CountSequences(false); got.Int64() != 99 {
		t.Errorf("|CRS| = %v, want 99", got)
	}
	if got := bs.CountSequences(true); got.Int64() != 36 {
		t.Errorf("|CRS^1| = %v, want 36", got)
	}
	sizes := bs.Blocks()
	if len(sizes) != 2 {
		t.Fatalf("blocks = %v, want the two non-singleton blocks", sizes)
	}
}

// assertUniform checks that the observed counts over cells are within
// tol standard deviations of uniform.
func assertUniform(t *testing.T, counts map[string]int, cells, n int, tol float64) {
	t.Helper()
	if len(counts) != cells {
		t.Fatalf("observed %d distinct outcomes, want %d", len(counts), cells)
	}
	p := 1.0 / float64(cells)
	sigma := math.Sqrt(p * (1 - p) * float64(n))
	want := p * float64(n)
	for k, c := range counts {
		if math.Abs(float64(c)-want) > tol*sigma {
			t.Errorf("cell %q: count %d deviates from %.1f by more than %.0fσ", k, c, want, tol)
		}
	}
}

func TestSampleRepairUniform(t *testing.T) {
	inst := figure2()
	bs, err := NewBlockSampler(inst)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(61))
	const n = 36000
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		s := bs.SampleRepair(rng, false)
		if !inst.IsCandidateRepair(s, false) {
			t.Fatalf("sampled non-repair %v", s.Indices())
		}
		counts[s.Key()]++
	}
	assertUniform(t, counts, 12, n, 5)
}

func TestSampleRepairSingletonUniform(t *testing.T) {
	inst := figure2()
	bs, err := NewBlockSampler(inst)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(67))
	const n = 18000
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		s := bs.SampleRepair(rng, true)
		if !inst.IsCandidateRepair(s, true) {
			t.Fatalf("sampled non-CORep^1 element %v", s.Indices())
		}
		counts[s.Key()]++
	}
	assertUniform(t, counts, 6, n, 5)
}

func TestSampleSequenceValidAndComplete(t *testing.T) {
	inst := figure2()
	bs, err := NewBlockSampler(inst)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(71))
	for i := 0; i < 200; i++ {
		singleton := i%2 == 1
		seq, res := bs.SampleSequence(rng, singleton)
		if !inst.IsComplete(seq, singleton) {
			t.Fatalf("sampled sequence %v not complete (singleton=%v)", seq, singleton)
		}
		if !inst.Result(seq).Equal(res) {
			t.Fatal("returned result does not match sequence result")
		}
	}
}

// seqKey canonically encodes a sequence for counting.
func seqKey(s core.Sequence) string {
	out := ""
	for _, op := range s {
		out += "("
		out += itoa(op.I)
		out += ","
		out += itoa(op.J)
		out += ")"
	}
	return out
}

func itoa(i int) string {
	if i < 0 {
		return "-" + itoa(-i)
	}
	if i < 10 {
		return string(rune('0' + i))
	}
	return itoa(i/10) + string(rune('0'+i%10))
}

func TestSampleSequenceUniformSmall(t *testing.T) {
	// Two blocks of size 2: |CRS| = 18 cells.
	d := rel.NewDatabase(
		rel.NewFact("R", "a", "x"),
		rel.NewFact("R", "a", "y"),
		rel.NewFact("R", "b", "x"),
		rel.NewFact("R", "b", "y"),
	)
	sch := rel.MustSchema(rel.NewRelation("R", 2))
	inst := core.NewInstance(d, fd.MustSet(sch, fd.New("R", []int{0}, []int{1})))
	bs, err := NewBlockSampler(inst)
	if err != nil {
		t.Fatal(err)
	}
	if got := bs.CountSequences(false); got.Int64() != 18 {
		t.Fatalf("|CRS| = %v, want 18", got)
	}
	rng := rand.New(rand.NewSource(73))
	const n = 54000
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		seq, _ := bs.SampleSequence(rng, false)
		counts[seqKey(seq)]++
	}
	assertUniform(t, counts, 18, n, 5)
}

func TestSampleSequenceSingletonUniform(t *testing.T) {
	// One block of size 3 singleton: 3! = 6 sequences.
	d := rel.NewDatabase(
		rel.NewFact("R", "a", "x"),
		rel.NewFact("R", "a", "y"),
		rel.NewFact("R", "a", "z"),
	)
	sch := rel.MustSchema(rel.NewRelation("R", 2))
	inst := core.NewInstance(d, fd.MustSet(sch, fd.New("R", []int{0}, []int{1})))
	bs, err := NewBlockSampler(inst)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(79))
	const n = 30000
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		seq, _ := bs.SampleSequence(rng, true)
		counts[seqKey(seq)]++
	}
	assertUniform(t, counts, 6, n, 5)
}

// TestSampleSequenceMatchesUSSemantics checks that the repair
// distribution induced by uniform sequences matches SemanticsUS on
// Figure 2.
func TestSampleSequenceMatchesUSSemantics(t *testing.T) {
	inst := figure2()
	bs, err := NewBlockSampler(inst)
	if err != nil {
		t.Fatal(err)
	}
	want, err := inst.SemanticsUS(false, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(83))
	const n = 60000
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		_, res := bs.SampleSequence(rng, false)
		counts[res.Key()]++
	}
	for _, rp := range want {
		p, _ := rp.Prob.Float64()
		got := float64(counts[rp.Repair.Key()]) / n
		sigma := math.Sqrt(p * (1 - p) / n)
		if math.Abs(got-p) > 5*sigma {
			t.Errorf("repair %v: sampled %.4f, exact %.4f", rp.Repair.Indices(), got, p)
		}
	}
}

// TestSampleUOMatchesExact checks the M^uo walk against the exact DAG
// distribution on the running example (general FDs).
func TestSampleUOMatchesExact(t *testing.T) {
	inst := runningExample()
	for _, singleton := range []bool{false, true} {
		want, err := inst.SemanticsUO(singleton, 0)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(89))
		const n = 60000
		counts := map[string]int{}
		for i := 0; i < n; i++ {
			seq, res := SampleUO(inst, singleton, rng)
			if !inst.IsComplete(seq, singleton) {
				t.Fatalf("sampled incomplete sequence %v", seq)
			}
			counts[res.Key()]++
		}
		totalSeen := 0
		for _, c := range counts {
			totalSeen += c
		}
		if totalSeen != n {
			t.Fatal("lost samples")
		}
		for _, rp := range want {
			p, _ := rp.Prob.Float64()
			got := float64(counts[rp.Repair.Key()]) / n
			sigma := math.Sqrt(p*(1-p)/n) + 1e-12
			if math.Abs(got-p) > 5*sigma {
				t.Errorf("singleton=%v repair %v: sampled %.4f, exact %.4f", singleton, rp.Repair.Indices(), got, p)
			}
		}
	}
}

// TestSampleUOConsistentInput checks that a consistent database yields
// the empty sequence and the database itself.
func TestSampleUOConsistentInput(t *testing.T) {
	sch := rel.MustSchema(rel.NewRelation("R", 2))
	d := rel.NewDatabase(rel.NewFact("R", "a", "b"))
	inst := core.NewInstance(d, fd.MustSet(sch, fd.New("R", []int{0}, []int{1})))
	seq, res := SampleUO(inst, false, rand.New(rand.NewSource(1)))
	if len(seq) != 0 || res.Count() != 1 {
		t.Fatalf("seq = %v, res = %v", seq, res.Indices())
	}
}

// TestSampleSequenceLargerInstanceStillExact stresses the weight
// invariant (panic inside SampleSequence if the group weights do not
// sum to |CRS|) on a larger block profile.
func TestSampleSequenceLargerInstanceStillExact(t *testing.T) {
	var facts []rel.Fact
	blockSizes := []int{5, 4, 3, 3, 2, 1}
	for b, m := range blockSizes {
		for j := 0; j < m; j++ {
			facts = append(facts, rel.NewFact("R", "a"+itoa(b), "b"+itoa(j)))
		}
	}
	sch := rel.MustSchema(rel.NewRelation("R", 2))
	inst := core.NewInstance(rel.NewDatabase(facts...), fd.MustSet(sch, fd.New("R", []int{0}, []int{1})))
	bs, err := NewBlockSampler(inst)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(97))
	for i := 0; i < 50; i++ {
		seq, _ := bs.SampleSequence(rng, false)
		if !inst.IsComplete(seq, false) {
			t.Fatalf("incomplete sequence on larger instance")
		}
	}
	// Cross-check the DP against the DAG engine once.
	want, err := inst.CountCRS(false, 0)
	if err == nil {
		if bs.CountSequences(false).Cmp(want) != 0 {
			t.Fatalf("DP %v != DAG %v", bs.CountSequences(false), want)
		}
	}
}

// TestSampleRepairMatchesURSemantics: uniform repairs equals the exact
// M^ur semantics (Proposition A.2) empirically.
func TestSampleRepairMatchesURSemantics(t *testing.T) {
	inst := figure2()
	bs, err := NewBlockSampler(inst)
	if err != nil {
		t.Fatal(err)
	}
	want, err := inst.SemanticsUR(false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 12 {
		t.Fatalf("expected 12 repairs, got %d", len(want))
	}
	for _, rp := range want {
		if rp.Prob.Cmp(big.NewRat(1, 12)) != 0 {
			t.Fatalf("non-uniform exact semantics: %s", rp.Prob.RatString())
		}
	}
	rng := rand.New(rand.NewSource(101))
	const n = 24000
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		counts[bs.SampleRepair(rng, false).Key()]++
	}
	assertUniform(t, counts, 12, n, 5)
}
