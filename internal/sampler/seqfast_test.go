package sampler

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/rel"
)

func TestSequenceSamplerRejectsFDs(t *testing.T) {
	if _, err := NewSequenceSampler(runningExample(), false); err == nil {
		t.Fatal("sequence sampler must reject general FDs")
	}
}

func TestSequenceSamplerCountMatches(t *testing.T) {
	inst := figure2()
	for _, singleton := range []bool{false, true} {
		ss, err := NewSequenceSampler(inst, singleton)
		if err != nil {
			t.Fatal(err)
		}
		want, err := inst.CountCRS(singleton, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ss.Count().Cmp(want) != 0 {
			t.Fatalf("singleton=%v: Count = %v, want %v", singleton, ss.Count(), want)
		}
	}
}

func TestSequenceSamplerValid(t *testing.T) {
	inst := figure2()
	for _, singleton := range []bool{false, true} {
		ss, err := NewSequenceSampler(inst, singleton)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(173))
		for i := 0; i < 300; i++ {
			seq, res := ss.Sample(rng)
			if !inst.IsComplete(seq, singleton) {
				t.Fatalf("singleton=%v: sampled sequence %v not complete", singleton, seq)
			}
			if !inst.Result(seq).Equal(res) {
				t.Fatal("result mismatch")
			}
		}
	}
}

// TestSequenceSamplerUniform checks the fast sampler induces the
// uniform distribution over all 99 sequences of Figure 2 — the same
// law as Algorithm 1.
func TestSequenceSamplerUniform(t *testing.T) {
	inst := figure2()
	ss, err := NewSequenceSampler(inst, false)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(179))
	const n = 99000
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		seq, _ := ss.Sample(rng)
		counts[seqKey(seq)]++
	}
	assertUniform(t, counts, 99, n, 5)
}

func TestSequenceSamplerSingletonUniform(t *testing.T) {
	inst := figure2()
	ss, err := NewSequenceSampler(inst, true)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(181))
	const n = 36000
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		seq, _ := ss.Sample(rng)
		counts[seqKey(seq)]++
	}
	assertUniform(t, counts, 36, n, 5)
}

// TestSequenceSamplerMatchesAlgorithm1 compares the repair-level
// distributions of the fast sampler and Algorithm 1 on Figure 2.
func TestSequenceSamplerMatchesAlgorithm1(t *testing.T) {
	inst := figure2()
	ss, err := NewSequenceSampler(inst, false)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := NewBlockSampler(inst)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(191))
	const n = 40000
	fast := map[string]float64{}
	slow := map[string]float64{}
	for i := 0; i < n; i++ {
		_, r1 := ss.Sample(rng)
		fast[r1.Key()]++
		_, r2 := bs.SampleSequence(rng, false)
		slow[r2.Key()]++
	}
	if len(fast) != len(slow) {
		t.Fatalf("support sizes differ: %d vs %d", len(fast), len(slow))
	}
	for k := range fast {
		pf, ps := fast[k]/n, slow[k]/n
		if math.Abs(pf-ps) > 0.015 {
			t.Errorf("repair %q: fast %.4f vs Algorithm 1 %.4f", k, pf, ps)
		}
	}
}

// TestSequenceSamplerLargeScale exercises a profile far beyond
// Algorithm 1's reach and checks throughput stays sane.
func TestSequenceSamplerLargeScale(t *testing.T) {
	var facts []rel.Fact
	for b := 0; b < 300; b++ {
		for j := 0; j < 3; j++ {
			facts = append(facts, rel.NewFact("R", "k"+itoa(b), "v"+itoa(j)))
		}
	}
	sch := rel.MustSchema(rel.NewRelation("R", 2))
	inst := core.NewInstance(rel.NewDatabase(facts...), fd.MustSet(sch, fd.New("R", []int{0}, []int{1})))
	ss, err := NewSequenceSampler(inst, false)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(193))
	for i := 0; i < 20; i++ {
		seq, _ := ss.Sample(rng)
		if len(seq) < 300 { // at least one op per block of 3
			t.Fatalf("sequence too short: %d", len(seq))
		}
		if !inst.IsComplete(seq, false) {
			t.Fatal("large-scale sequence invalid")
		}
	}
}

func TestSequenceSamplerConsistentDatabase(t *testing.T) {
	sch := rel.MustSchema(rel.NewRelation("R", 2))
	d := rel.NewDatabase(rel.NewFact("R", "a", "b"))
	inst := core.NewInstance(d, fd.MustSet(sch, fd.New("R", []int{0}, []int{1})))
	ss, err := NewSequenceSampler(inst, false)
	if err != nil {
		t.Fatal(err)
	}
	seq, res := ss.Sample(rand.New(rand.NewSource(1)))
	if len(seq) != 0 || res.Count() != 1 {
		t.Fatalf("consistent DB must yield ε: %v", seq)
	}
	if ss.Count().Int64() != 1 {
		t.Fatalf("Count = %v", ss.Count())
	}
}
