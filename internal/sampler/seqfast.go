package sampler

import (
	"fmt"
	"math/big"
	"math/rand"

	"repro/internal/alias"
	"repro/internal/core"
	"repro/internal/count"
	"repro/internal/fd"
	"repro/internal/rel"
)

// SequenceSampler draws uniform complete repairing sequences for
// primary-key instances with O(‖D‖) work per draw after a one-off
// dynamic-programming pass — the scalable alternative to Algorithm 1
// (whose step-wise law re-counts |CRS| at every step).
//
// It exploits the decomposition in the proof of Lemma C.1: a uniform
// element of CRS(D,Σ) is (i) a per-block complete sequence and (ii) a
// uniform interleaving. The sampler materialises the interleaving DP
//
//	U_j[L] = Σ_ℓ U_{j-1}[L−ℓ] · W_j[ℓ] · C(L,ℓ)
//
// once, then per draw: samples the total length L ∝ U_n[L], tracebacks
// per-block lengths ℓ_j ∝ U_{j-1}[L−ℓ]·W_j[ℓ]·C(L,ℓ), generates a
// uniform per-block sequence of the drawn length from the closed-form
// counts S^{ne,i}_m / S^{e,i}_m, and shuffles a uniform interleaving.
// The resulting distribution over CRS(D,Σ) is exactly uniform — the
// tests check it coincides with Algorithm 1's. The DP tables are
// immutable after construction, so Sample and Count are safe for
// concurrent use; only the rng is per-caller.
type SequenceSampler struct {
	inst      *core.Instance
	singleton bool
	// blocks with ≥ 2 facts; fact indices into D.
	blocks [][]int
	// w[j][ℓ] = number of complete sequences of block j with length ℓ.
	w [][]*big.Int
	// u[j][L] = weighted interleaving count over the first j blocks.
	u [][]*big.Int
	// lengthChooser draws the total length L ∝ U_n[L] — the weights are
	// fixed at construction, so the draw is a precomputed alias table
	// (or an exact cumulative search when the counts exceed uint64)
	// instead of a per-draw linear scan over big.Ints.
	lengthChooser alias.Chooser
	// splits[m][ℓ] draws the non-empty/empty-result split of a block of
	// m facts at sequence length ℓ (pair mode): the two weights
	// S^{ne}_{m,i} and S^{e}_{m,i} depend only on (m, ℓ), so one table
	// per distinct pair serves every block and every draw. nil entries
	// mark lengths the interleaving DP can never assign (W_j[ℓ] = 0).
	splits map[int][]alias.Chooser
}

// NewSequenceSampler precomputes the DP tables. It requires primary
// keys (like every CRS sampler in the paper).
func NewSequenceSampler(inst *core.Instance, singleton bool) (*SequenceSampler, error) {
	if cls := inst.Sigma.Classify(); cls != fd.PrimaryKeys {
		return nil, fmt.Errorf("sampler: sequence sampler requires primary keys, got %v", cls)
	}
	ss := &SequenceSampler{inst: inst, singleton: singleton}
	for _, b := range inst.Sigma.Blocks(inst.D) {
		if b.Size() >= 2 {
			ss.blocks = append(ss.blocks, append([]int(nil), b.Indices...))
		}
	}
	ss.w = make([][]*big.Int, len(ss.blocks))
	ss.u = make([][]*big.Int, len(ss.blocks)+1)
	ss.u[0] = []*big.Int{big.NewInt(1)}
	for j, block := range ss.blocks {
		ss.w[j] = count.BlockLengthWeights(len(block), singleton)
		prev := ss.u[j]
		nu := make([]*big.Int, len(prev)+len(ss.w[j])-1)
		for i := range nu {
			nu[i] = big.NewInt(0)
		}
		for a, ua := range prev {
			if ua.Sign() == 0 {
				continue
			}
			for l, wl := range ss.w[j] {
				if wl.Sign() == 0 {
					continue
				}
				term := new(big.Int).Mul(ua, wl)
				term.Mul(term, count.Binomial(a+l, l))
				nu[a+l].Add(nu[a+l], term)
			}
		}
		ss.u[j+1] = nu
	}
	if n := len(ss.blocks); n > 0 {
		ch, err := alias.NewExact(ss.u[n])
		if err != nil {
			return nil, fmt.Errorf("sampler: building length table: %w", err)
		}
		ss.lengthChooser = ch
	}
	if !singleton {
		ss.splits = make(map[int][]alias.Chooser)
		for j, block := range ss.blocks {
			m := len(block)
			if _, done := ss.splits[m]; done {
				continue
			}
			perLen := make([]alias.Chooser, len(ss.w[j]))
			for l, wl := range ss.w[j] {
				if wl.Sign() == 0 {
					continue
				}
				ne := count.SneBlock(m, m-l-1)
				e := count.SeBlock(m, m-l)
				ch, err := alias.NewExact([]*big.Int{ne, e})
				if err != nil {
					return nil, fmt.Errorf("sampler: building split table for block size %d length %d: %w", m, l, err)
				}
				perLen[l] = ch
			}
			ss.splits[m] = perLen
		}
	}
	constructions.Add(1)
	return ss, nil
}

// Count returns |CRS(D,Σ)| (or |CRS^1| in singleton mode).
func (ss *SequenceSampler) Count() *big.Int {
	total := big.NewInt(0)
	for _, v := range ss.u[len(ss.blocks)] {
		total.Add(total, v)
	}
	return total
}

// weightedIndex draws an index i with probability weights[i]/Σweights.
func weightedIndex(rng *rand.Rand, weights []*big.Int) int {
	total := big.NewInt(0)
	for _, w := range weights {
		total.Add(total, w)
	}
	if total.Sign() <= 0 {
		panic("sampler: empty weight vector")
	}
	r := new(big.Int).Rand(rng, total)
	for i, w := range weights {
		if r.Cmp(w) < 0 {
			return i
		}
		r.Sub(r, w)
	}
	panic("sampler: weighted draw fell through")
}

// Sample draws a uniform complete repairing sequence and its result.
func (ss *SequenceSampler) Sample(rng *rand.Rand) (core.Sequence, rel.Subset) {
	n := len(ss.blocks)
	// 1. Total length L ∝ U_n[L].
	lengths := make([]int, n)
	if n > 0 {
		bigL := ss.lengthChooser.Draw(rng)
		// 2. Traceback per-block lengths.
		for j := n; j >= 1; j-- {
			wj := ss.w[j-1]
			prev := ss.u[j-1]
			cand := make([]*big.Int, len(wj))
			for l := range wj {
				cand[l] = big.NewInt(0)
				if wj[l].Sign() == 0 || bigL-l < 0 || bigL-l >= len(prev) || prev[bigL-l].Sign() == 0 {
					continue
				}
				t := new(big.Int).Mul(prev[bigL-l], wj[l])
				t.Mul(t, count.Binomial(bigL, l))
				cand[l] = t
			}
			l := weightedIndex(rng, cand)
			lengths[j-1] = l
			bigL -= l
		}
	}
	// 3. Generate a uniform per-block sequence of the drawn length.
	perBlock := make([][]core.Op, n)
	for j, block := range ss.blocks {
		perBlock[j] = ss.sampleBlockSequence(rng, block, lengths[j])
	}
	// 4. Uniform interleaving: shuffle block slots.
	var slots []int
	for j, ops := range perBlock {
		for range ops {
			slots = append(slots, j)
		}
	}
	rng.Shuffle(len(slots), func(a, b int) { slots[a], slots[b] = slots[b], slots[a] })
	next := make([]int, n)
	seq := make(core.Sequence, 0, len(slots))
	for _, j := range slots {
		seq = append(seq, perBlock[j][next[j]])
		next[j]++
	}
	return seq, ss.inst.Result(seq)
}

// sampleBlockSequence draws a uniform complete repairing sequence of
// the given length for one block (fact indices given), using the
// S^{ne,i}_m / S^{e,i}_m split of Lemma C.1.
func (ss *SequenceSampler) sampleBlockSequence(rng *rand.Rand, block []int, length int) []core.Op {
	m := len(block)
	if ss.singleton {
		if length != m-1 {
			panic("sampler: singleton block sequence must have length m-1")
		}
		// Uniform survivor and uniform removal order.
		perm := rng.Perm(m)
		ops := make([]core.Op, 0, m-1)
		for _, idx := range perm[:m-1] {
			ops = append(ops, core.Op{I: block[idx], J: -1})
		}
		return ops
	}
	// Pair mode: length ℓ arises from a non-empty result with
	// i = m−ℓ−1 pair removals, or an empty result with i = m−ℓ; the
	// (m, ℓ)-indexed split table was precomputed at construction.
	pick := ss.splits[m][length].Draw(rng)
	perm := rng.Perm(m)
	facts := make([]int, m)
	for i, p := range perm {
		facts[i] = block[p]
	}
	if pick == 0 {
		// Non-empty: facts[0] survives; of the rest, the first 2i form
		// i pairs (consecutive pairing of a shuffled list is uniform),
		// the remainder are singletons; then shuffle the op order.
		i := m - length - 1
		rest := facts[1:]
		ops := make([]core.Op, 0, length)
		for k := 0; k < 2*i; k += 2 {
			ops = append(ops, pairOp(rest[k], rest[k+1]))
		}
		for _, f := range rest[2*i:] {
			ops = append(ops, core.Op{I: f, J: -1})
		}
		rng.Shuffle(len(ops), func(a, b int) { ops[a], ops[b] = ops[b], ops[a] })
		return ops
	}
	// Empty result with i = m−ℓ pairs: the final operation removes the
	// last surviving pair; the first two shuffled facts play that role,
	// the next 2(i−1) form the other pairs, the rest are singletons.
	i := m - length
	last := pairOp(facts[0], facts[1])
	rest := facts[2:]
	ops := make([]core.Op, 0, length-1)
	for k := 0; k < 2*(i-1); k += 2 {
		ops = append(ops, pairOp(rest[k], rest[k+1]))
	}
	for _, f := range rest[2*(i-1):] {
		ops = append(ops, core.Op{I: f, J: -1})
	}
	rng.Shuffle(len(ops), func(a, b int) { ops[a], ops[b] = ops[b], ops[a] })
	return append(ops, last)
}

func pairOp(a, b int) core.Op {
	if a > b {
		a, b = b, a
	}
	return core.Op{I: a, J: b}
}
