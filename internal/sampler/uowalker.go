package sampler

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/rel"
)

// UOWalker runs walks of the uniform-operations chain (Lemma 7.2 /
// D.7) with incremental conflict maintenance: instead of re-deriving
// the justified operations from scratch at every step (which costs
// O(|conflict pairs|) per step), it maintains
//
//   - the dense list of alive violating pairs, and
//   - the dense list of facts participating in at least one alive pair
//     (exactly the facts whose singleton removal is justified),
//
// and updates both in O(degree) when a fact is removed. A full walk
// costs O(|D| + |conflict pairs|) amortised. The induced distribution
// over complete sequences is identical to core.Instance.JustifiedOps +
// uniform choice; the tests check this against the exact engine.
type UOWalker struct {
	inst    *core.Instance
	pairs   [][2]int
	pairsOf [][]int

	// per-walk state, reset by Walk.
	present    []bool
	pairAlive  []bool
	pairPos    []int
	alive      []int // alive pair ids
	cnt        []int // per fact: alive pairs it participates in
	factPos    []int
	activeFact []int // facts with cnt > 0
}

// NewUOWalker prepares a walker for the instance (any FD set).
func NewUOWalker(inst *core.Instance) *UOWalker {
	n := inst.D.Len()
	pairs := inst.ConflictPairs()
	w := &UOWalker{
		inst:      inst,
		pairs:     pairs,
		pairsOf:   make([][]int, n),
		present:   make([]bool, n),
		pairAlive: make([]bool, len(pairs)),
		pairPos:   make([]int, len(pairs)),
		cnt:       make([]int, n),
		factPos:   make([]int, n),
	}
	for pid, p := range pairs {
		w.pairsOf[p[0]] = append(w.pairsOf[p[0]], pid)
		w.pairsOf[p[1]] = append(w.pairsOf[p[1]], pid)
	}
	return w
}

func (w *UOWalker) reset() {
	w.alive = w.alive[:0]
	w.activeFact = w.activeFact[:0]
	for i := range w.present {
		w.present[i] = true
		w.cnt[i] = 0
		w.factPos[i] = -1
	}
	for pid, p := range w.pairs {
		w.pairAlive[pid] = true
		w.pairPos[pid] = len(w.alive)
		w.alive = append(w.alive, pid)
		w.cnt[p[0]]++
		w.cnt[p[1]]++
	}
	for i, c := range w.cnt {
		if c > 0 {
			w.factPos[i] = len(w.activeFact)
			w.activeFact = append(w.activeFact, i)
		}
	}
}

// killPair removes a pair from the alive list and decrements both
// endpoint counters.
func (w *UOWalker) killPair(pid int) {
	if !w.pairAlive[pid] {
		return
	}
	w.pairAlive[pid] = false
	pos := w.pairPos[pid]
	last := w.alive[len(w.alive)-1]
	w.alive[pos] = last
	w.pairPos[last] = pos
	w.alive = w.alive[:len(w.alive)-1]
	for _, f := range []int{w.pairs[pid][0], w.pairs[pid][1]} {
		w.cnt[f]--
		if w.cnt[f] == 0 && w.factPos[f] >= 0 {
			fpos := w.factPos[f]
			lastF := w.activeFact[len(w.activeFact)-1]
			w.activeFact[fpos] = lastF
			w.factPos[lastF] = fpos
			w.activeFact = w.activeFact[:len(w.activeFact)-1]
			w.factPos[f] = -1
		}
	}
}

// removeFact removes a fact and kills every alive pair through it.
func (w *UOWalker) removeFact(f int) {
	if !w.present[f] {
		return
	}
	w.present[f] = false
	for _, pid := range w.pairsOf[f] {
		w.killPair(pid)
	}
}

// walkCore runs the chain walk proper — reset, then apply uniformly
// chosen justified operations until consistent — leaving the outcome
// in w.present. All public walk variants share it, so the sampling law
// lives in exactly one place; record (nil-able) receives each applied
// operation for the variant that materialises the sequence.
func (w *UOWalker) walkCore(rng *rand.Rand, singleton bool, record func(core.Op)) {
	w.reset()
	for len(w.alive) > 0 {
		nOps := len(w.activeFact)
		if !singleton {
			nOps += len(w.alive)
		}
		r := rng.Intn(nOps)
		if r < len(w.activeFact) {
			op := core.Op{I: w.activeFact[r], J: -1}
			if record != nil {
				record(op)
			}
			w.removeFact(op.I)
		} else {
			p := w.pairs[w.alive[r-len(w.activeFact)]]
			if record != nil {
				record(core.Op{I: p[0], J: p[1]})
			}
			w.removeFact(p[0])
			w.removeFact(p[1])
		}
	}
}

// result materialises w.present as a Subset.
func (w *UOWalker) result() rel.Subset {
	s := rel.NewSubset(w.inst.D.Len())
	for i, p := range w.present {
		if p {
			s.Set(i)
		}
	}
	return s
}

// Walk runs one chain walk and returns the complete repairing sequence
// and its result. With singleton set, only single-fact removals are
// available (M^{uo,1}).
func (w *UOWalker) Walk(rng *rand.Rand, singleton bool) (core.Sequence, rel.Subset) {
	var seq core.Sequence
	w.walkCore(rng, singleton, func(op core.Op) { seq = append(seq, op) })
	return seq, w.result()
}

// WalkAddCounts runs one walk and increments the survival counter of
// every fact of its result, without materialising a Subset or a
// sequence — the marginals hot path for M^uo.
func (w *UOWalker) WalkAddCounts(rng *rand.Rand, singleton bool, counts []int) {
	w.walkCore(rng, singleton, nil)
	for i, p := range w.present {
		if p {
			counts[i]++
		}
	}
}

// WalkResult is Walk without materialising the sequence (the common
// case for Monte Carlo estimation, avoiding the sequence allocation).
func (w *UOWalker) WalkResult(rng *rand.Rand, singleton bool) rel.Subset {
	w.walkCore(rng, singleton, nil)
	return w.result()
}
