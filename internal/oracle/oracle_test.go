package oracle

// Unit tests against hand-derived values only: the oracle is the
// independent side of the differential harness, so its own tests must
// not lean on the engines it exists to check.

import (
	"math/big"
	"testing"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/fd"
	"repro/internal/rel"
)

func mustOracle(t *testing.T, facts []rel.Fact, fds func(*rel.Schema) *fd.Set, sch *rel.Schema) *Oracle {
	t.Helper()
	o, err := New(rel.NewDatabase(facts...), fds(sch))
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// triangle is one block of three facts pairwise violating the primary
// key A1 → A2.
func triangle(t *testing.T) *Oracle {
	sch := rel.MustSchema(rel.NewRelation("R", 2))
	return mustOracle(t, []rel.Fact{
		rel.NewFact("R", "k", "1"),
		rel.NewFact("R", "k", "2"),
		rel.NewFact("R", "k", "3"),
	}, func(s *rel.Schema) *fd.Set { return fd.MustSet(s, fd.New("R", []int{0}, []int{1})) }, sch)
}

// path is the conflict path a—b—c under the general FDs A1 → A2 and
// A3 → A2 (a,b share A1; b,c share A3; a,c share nothing).
func path(t *testing.T) *Oracle {
	sch := rel.MustSchema(rel.NewRelation("R", 3))
	return mustOracle(t, []rel.Fact{
		rel.NewFact("R", "x", "1", "s"),
		rel.NewFact("R", "x", "2", "t"),
		rel.NewFact("R", "z", "3", "t"),
	}, func(s *rel.Schema) *fd.Set {
		return fd.MustSet(s, fd.New("R", []int{0}, []int{1}), fd.New("R", []int{2}, []int{1}))
	}, sch)
}

func ratEq(t *testing.T, got *big.Rat, num, den int64, what string) {
	t.Helper()
	if want := big.NewRat(num, den); got.Cmp(want) != 0 {
		t.Errorf("%s = %s, want %s", what, got.RatString(), want.RatString())
	}
}

func TestDistributionsSumToOne(t *testing.T) {
	for name, o := range map[string]*Oracle{"triangle": triangle(t), "path": path(t)} {
		for _, mode := range core.AllModes() {
			reps, err := o.Repairs(mode)
			if err != nil {
				t.Fatalf("%s %s: %v", name, mode.Symbol(), err)
			}
			sum := new(big.Rat)
			for _, rp := range reps {
				sum.Add(sum, rp.Prob)
			}
			if sum.Cmp(big.NewRat(1, 1)) != 0 {
				t.Errorf("%s %s: distribution sums to %s", name, mode.Symbol(), sum.RatString())
			}
		}
	}
}

func TestTriangleByHand(t *testing.T) {
	o := triangle(t)

	// CORep of a 3-clique: the independent sets {}, {1}, {2}, {3}.
	if n, _ := o.CountRepairs(false); n.Int64() != 4 {
		t.Errorf("|CORep| = %v, want 4", n)
	}
	// CORep^1 drops the empty set.
	if n, _ := o.CountRepairs(true); n.Int64() != 3 {
		t.Errorf("|CORep^1| = %v, want 3", n)
	}
	// CRS: 3 pair removals reach a singleton directly; 3 first
	// singleton removals each leave one conflict with 3 resolutions.
	if n, _ := o.CountSequences(false); n.Int64() != 12 {
		t.Errorf("|CRS| = %v, want 12", n)
	}
	if n, _ := o.CountSequences(true); n.Int64() != 6 {
		t.Errorf("|CRS^1| = %v, want 6", n)
	}

	q := cq.MustNew(nil, cq.NewAtom("R", cq.Var("x"), cq.Const("1")))
	// Only the repair {R(k,1)} entails the query.
	p, _ := o.Probability(core.Mode{Gen: core.UniformRepairs}, q, cq.Tuple{})
	ratEq(t, p, 1, 4, "P_ur[triangle]")
	p, _ = o.Probability(core.Mode{Gen: core.UniformSequences}, q, cq.Tuple{})
	ratEq(t, p, 3, 12, "P_us[triangle]")
	// M^uo: 1/6 via the pair removing the other two, plus 2 singleton
	// paths of mass 1/18 each.
	p, _ = o.Probability(core.Mode{Gen: core.UniformOperations}, q, cq.Tuple{})
	ratEq(t, p, 5, 18, "P_uo[triangle]")
	// Singleton spaces: the three surviving-singleton outcomes are
	// symmetric in all three generators.
	for _, mode := range []core.Mode{
		{Gen: core.UniformRepairs, Singleton: true},
		{Gen: core.UniformSequences, Singleton: true},
		{Gen: core.UniformOperations, Singleton: true},
	} {
		p, _ = o.Probability(mode, q, cq.Tuple{})
		ratEq(t, p, 1, 3, "P_"+mode.Symbol()+"[triangle]")
	}

	// The empty repair has M^uo mass 3·(1/6·1/3) = 1/6; each singleton
	// 5/18.
	reps, _ := o.Repairs(core.Mode{Gen: core.UniformOperations})
	if len(reps) != 4 {
		t.Fatalf("got %d repairs, want 4", len(reps))
	}
	ratEq(t, reps[0].Prob, 1, 6, "P_uo[∅]")
	for _, rp := range reps[1:] {
		ratEq(t, rp.Prob, 5, 18, "P_uo[singleton]")
	}
}

func TestPathByHand(t *testing.T) {
	o := path(t)
	// Independent sets of a 3-path: {}, {a}, {b}, {c}, {a,c}.
	if n, _ := o.CountRepairs(false); n.Int64() != 5 {
		t.Errorf("|CORep| = %v, want 5", n)
	}
	// Only {b} ⊆ results entail A2 = 2.
	q := cq.MustNew(nil, cq.NewAtom("R", cq.Var("x"), cq.Const("2"), cq.Var("z")))
	p, _ := o.Probability(core.Mode{Gen: core.UniformRepairs}, q, cq.Tuple{})
	ratEq(t, p, 1, 5, "P_ur[path]")
	// {a,c} is the unique maximum repair; the query A2 = 1 survives in
	// {a} and {a,c}.
	q1 := cq.MustNew(nil, cq.NewAtom("R", cq.Var("x"), cq.Const("1"), cq.Var("z")))
	p, _ = o.Probability(core.Mode{Gen: core.UniformRepairs}, q1, cq.Tuple{})
	ratEq(t, p, 2, 5, "P_ur[path A2=1]")
}

func TestIntroExampleAnswersAndMarginals(t *testing.T) {
	sch := rel.MustSchema(rel.NewRelation("Emp", 2))
	o := mustOracle(t, []rel.Fact{
		rel.NewFact("Emp", "1", "Alice"),
		rel.NewFact("Emp", "1", "Tom"),
		rel.NewFact("Emp", "2", "Bob"),
	}, func(s *rel.Schema) *fd.Set { return fd.MustSet(s, fd.New("Emp", []int{0}, []int{1})) }, sch)

	q := cq.MustNew([]string{"n"}, cq.NewAtom("Emp", cq.Var("i"), cq.Var("n")))
	ans, err := o.Answers(core.Mode{Gen: core.UniformRepairs}, q)
	if err != nil {
		t.Fatal(err)
	}
	// Sorted by tuple: Alice, Bob, Tom. The conflicted block has three
	// equally likely outcomes; Bob is certain.
	if len(ans) != 3 {
		t.Fatalf("got %d answers, want 3", len(ans))
	}
	ratEq(t, ans[0].Prob, 1, 3, "P[Alice]")
	ratEq(t, ans[1].Prob, 1, 1, "P[Bob]")
	ratEq(t, ans[2].Prob, 1, 3, "P[Tom]")

	// Singleton operations forbid the both-removed outcome.
	ans, _ = o.Answers(core.Mode{Gen: core.UniformRepairs, Singleton: true}, q)
	ratEq(t, ans[0].Prob, 1, 2, "P^1[Alice]")
	ratEq(t, ans[2].Prob, 1, 2, "P^1[Tom]")

	// Marginals in fact order (Emp(1,Alice), Emp(1,Tom), Emp(2,Bob)).
	marg, _ := o.Marginals(core.Mode{Gen: core.UniformRepairs})
	ratEq(t, marg[0], 1, 3, "marg[Alice]")
	ratEq(t, marg[1], 1, 3, "marg[Tom]")
	ratEq(t, marg[2], 1, 1, "marg[Bob]")
}

func TestConsistentDatabaseIsItsOwnRepair(t *testing.T) {
	sch := rel.MustSchema(rel.NewRelation("R", 2))
	o := mustOracle(t, []rel.Fact{
		rel.NewFact("R", "a", "1"),
		rel.NewFact("R", "b", "2"),
	}, func(s *rel.Schema) *fd.Set { return fd.MustSet(s, fd.New("R", []int{0}, []int{1})) }, sch)
	for _, mode := range core.AllModes() {
		reps, err := o.Repairs(mode)
		if err != nil {
			t.Fatal(err)
		}
		if len(reps) != 1 || reps[0].Set.Count() != 2 {
			t.Fatalf("%s: consistent D should repair to itself, got %v", mode.Symbol(), reps)
		}
		ratEq(t, reps[0].Prob, 1, 1, "P[D]")
	}
}

func TestNaiveEntailment(t *testing.T) {
	sch := rel.MustSchema(rel.NewRelation("R", 2), rel.NewRelation("S", 2))
	o := mustOracle(t, []rel.Fact{
		rel.NewFact("R", "a", "b"),
		rel.NewFact("R", "b", "c"),
		rel.NewFact("S", "c", "d"),
	}, func(s *rel.Schema) *fd.Set { return fd.MustSet(s, fd.New("R", []int{0}, []int{1})) }, sch)
	full := uint64(1)<<3 - 1

	// Join across atoms with a shared variable.
	join := cq.MustNew([]string{"z"},
		cq.NewAtom("R", cq.Var("x"), cq.Var("y")),
		cq.NewAtom("S", cq.Var("y"), cq.Var("z")))
	if !o.entails(join, cq.Tuple{"d"}, full) {
		t.Error("join query should entail (d)")
	}
	if o.entails(join, cq.Tuple{"a"}, full) {
		t.Error("join query should not entail (a)")
	}
	// Repeated variable within an atom: R(x,x) has no match.
	diag := cq.MustNew(nil, cq.NewAtom("R", cq.Var("x"), cq.Var("x")))
	if o.entails(diag, cq.Tuple{}, full) {
		t.Error("R(x,x) should not entail")
	}
	// Masking out the S fact kills the join.
	if o.entails(join, cq.Tuple{"d"}, full&^(1<<uint(o.db.IndexOf(rel.NewFact("S", "c", "d"))))) {
		t.Error("masked join should not entail")
	}
	// Arity mismatch between tuple and answer variables is probability
	// zero, not an error.
	if o.entails(join, cq.Tuple{"d", "d"}, full) {
		t.Error("wrong-arity tuple should not entail")
	}
	// Answer tuples over the full database.
	tuples := o.answerTuples(join)
	if len(tuples) != 1 || tuples[0][0] != "d" {
		t.Errorf("answerTuples = %v, want [(d)]", tuples)
	}
}

func TestBudgetError(t *testing.T) {
	sch := rel.MustSchema(rel.NewRelation("R", 2))
	var facts []rel.Fact
	for i := 0; i < 6; i++ {
		facts = append(facts, rel.NewFact("R", "k", string(rune('a'+i))))
	}
	o, err := NewWithBudget(rel.NewDatabase(facts...), fd.MustSet(sch, fd.New("R", []int{0}, []int{1})), 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Repairs(core.Mode{Gen: core.UniformRepairs}); err == nil {
		t.Fatal("expected a budget error")
	} else if _, ok := err.(BudgetError); !ok {
		t.Fatalf("got %T, want BudgetError", err)
	}
}
