package harness

import (
	"strings"
	"testing"
	"time"
)

// An infeasibly small oracle budget must terminate — either by
// completing on the trivial (consistent, single-state) scenarios that
// fit any budget, or with the infeasibility diagnostic — never by
// replacing over-budget scenarios forever.
func TestTinyBudgetTerminates(t *testing.T) {
	done := make(chan *Report, 1)
	go func() {
		rep, err := Run(Config{Seed: 5, Scenarios: 20, Budget: 1,
			EstScenarios: 1, EstTrials: 1, Traces: 1, TraceDir: t.TempDir()})
		if err != nil {
			t.Error(err)
		}
		done <- rep
	}()
	select {
	case rep := <-done:
		if !rep.OK() && !strings.Contains(rep.Failures[0], "infeasible") {
			t.Fatalf("unexpected failure class: %s", rep.Failures[0])
		}
		if rep.Scenarios < 20 && rep.Skipped <= 2*20+100 {
			t.Fatalf("run gave up early: %d scenarios, %d skipped", rep.Scenarios, rep.Skipped)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("harness did not terminate under an infeasible budget")
	}
}
