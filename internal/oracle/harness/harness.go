// Package harness is the randomized differential verification harness:
// it machine-checks every operational semantics of the production
// engines against the brute-force oracle on streams of random
// scenarios. One run performs four audits:
//
//  1. Exact differential — core.ExactProbability, Semantics,
//     ConsistentAnswers (the shared multi-tuple pass) and the facade's
//     exact FactMarginals path must be big.Rat-equal, bitwise, to the
//     oracle across all six modes on every generated scenario.
//  2. Estimator envelopes — the FPRAS constructions (Chernoff fixed
//     sample count), the Dagum–Karp stopping rule, the 𝒜𝒜 optimal
//     estimator and the shared-draw multi-target pass must land inside
//     their stated (ε, δ) envelopes at the promised empirical rate,
//     measured against oracle ground truth (cf. the conformal-
//     calibration idea of auditing stated validity guarantees
//     empirically instead of trusting them).
//  3. Durability replay — random insert/delete-fact traces are played
//     through the copy-on-write mutation path AND journalled to a
//     snapshot+WAL store; after close + reopen the reloaded instance
//     must agree with the live one and with a fresh oracle built on
//     the reloaded state.
//  4. Delta traces — random insert/delete traces are played through the
//     Prepared.ApplyInsert/ApplyDelete lineage (the incremental
//     estimation layer: per-block factor caching, maintained witness
//     sets, stratified draw reuse); after every mutation the lineage's
//     exact answers must be big.Rat-equal to a cold from-scratch
//     instance (and to the oracle, when in budget) under all six modes,
//     and its warm stratified estimates must land inside the stated
//     (ε, δ) envelope around the cold exact probability.
//
// The harness is deterministic in Config.Seed. It is invoked by
// `ocqa-bench -oracle` (the CI differential gate) and, at reduced
// scenario counts, by the tier-1 test suite.
package harness

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/big"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	ocqa "repro"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/fd"
	"repro/internal/oracle"
	"repro/internal/parse"
	"repro/internal/store"
	"repro/internal/workload"
)

// Config parameterises one harness run. The zero value resolves to the
// full differential gate (500 scenarios per mode).
type Config struct {
	// Seed drives every random choice of the run.
	Seed int64
	// Scenarios is the number of random instances for the exact
	// differential; every one is checked under all six modes.
	// Default 500.
	Scenarios int
	// EstScenarios is the number of instances for the estimator-
	// envelope audit (default 6); EstTrials is the number of
	// independent seeds per estimator per target (default 20).
	EstScenarios, EstTrials int
	// Epsilon/Delta are the guarantee audited in part 2 (defaults
	// 0.25 / 0.2 — loose enough that runs stay cheap, tight enough
	// that a broken estimator misses visibly).
	Epsilon, Delta float64
	// Traces is the number of random mutation traces replayed through
	// the durable store (default 6); TraceOps the mutations per trace
	// (default 24).
	Traces, TraceOps int
	// DeltaTraces is the number of mutation traces played through the
	// Prepared.ApplyInsert/ApplyDelete incremental-estimation lineage
	// (default 4); DeltaOps the mutations per trace (default 12). After
	// every mutation the warm lineage is checked against a cold
	// instance and the oracle under all six modes.
	DeltaTraces, DeltaOps int
	// Budget caps the oracle's sequence-tree walk per instance.
	Budget int
	// TraceDir hosts the store directories ("" = os.TempDir()).
	TraceDir string
	// Log, when set, receives progress lines.
	Log io.Writer
}

func (c *Config) fill() {
	if c.Scenarios <= 0 {
		c.Scenarios = 500
	}
	if c.EstScenarios <= 0 {
		c.EstScenarios = 6
	}
	if c.EstTrials <= 0 {
		c.EstTrials = 20
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 0.25
	}
	if c.Delta <= 0 {
		c.Delta = 0.2
	}
	if c.Traces <= 0 {
		c.Traces = 6
	}
	if c.TraceOps <= 0 {
		c.TraceOps = 24
	}
	if c.DeltaTraces <= 0 {
		c.DeltaTraces = 4
	}
	if c.DeltaOps <= 0 {
		c.DeltaOps = 12
	}
	if c.Budget <= 0 {
		c.Budget = oracle.DefaultBudget
	}
}

// Report summarises one run.
type Report struct {
	// Scenarios is the number of instances the exact differential
	// checked; ModeChecks counts (instance, mode) comparisons.
	Scenarios, ModeChecks int
	// Skipped counts scenarios abandoned because the oracle's node
	// budget was exceeded (they are replaced, not silently dropped:
	// the loop runs until Scenarios instances were actually checked).
	Skipped int
	// Cells buckets the checked scenarios by approximability-matrix
	// cell.
	Cells map[string]int
	// EstRuns / EstMisses are the pooled envelope trials and the ones
	// that landed outside ε·p; EstAllowed is the miss budget
	// (δ·runs + 3σ slack) the run is held to. EstZeroChecks counts
	// zero-probability targets verified to estimate exactly 0.
	EstRuns, EstMisses int
	EstAllowed         float64
	EstZeroChecks      int
	// Traces is the number of store replay traces completed.
	Traces int
	// DeltaTraces is the number of incremental-lineage traces completed;
	// DeltaChecks counts (step, mode) comparisons against the cold
	// instance and the oracle. DeltaEstRuns / DeltaEstMisses /
	// DeltaEstAllowed are the warm stratified-estimate envelope trials,
	// misses and miss budget, held separately from part 2 so a delta
	// regression cannot hide inside the classic estimators' slack.
	DeltaTraces, DeltaChecks     int
	DeltaEstRuns, DeltaEstMisses int
	DeltaEstAllowed              float64
	// Failures lists every divergence with a reproducible description.
	Failures []string
}

// OK reports whether the run found no divergence.
func (r *Report) OK() bool { return len(r.Failures) == 0 }

// Format renders the report for humans.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "oracle differential: %d scenarios × 6 modes (%d comparisons, %d over-budget replaced)\n",
		r.Scenarios, r.ModeChecks, r.Skipped)
	cells := make([]string, 0, len(r.Cells))
	for c := range r.Cells {
		cells = append(cells, c)
	}
	sort.Strings(cells)
	for _, c := range cells {
		fmt.Fprintf(&b, "  %4d × %s\n", r.Cells[c], c)
	}
	fmt.Fprintf(&b, "estimator envelopes: %d/%d misses (budget %.1f), %d zero-probability targets exact\n",
		r.EstMisses, r.EstRuns, r.EstAllowed, r.EstZeroChecks)
	fmt.Fprintf(&b, "store replay traces: %d\n", r.Traces)
	fmt.Fprintf(&b, "delta traces: %d traces, %d mode checks, %d/%d estimate misses (budget %.1f)\n",
		r.DeltaTraces, r.DeltaChecks, r.DeltaEstMisses, r.DeltaEstRuns, r.DeltaEstAllowed)
	if r.OK() {
		b.WriteString("PASS: every semantics agrees with the brute-force oracle\n")
	} else {
		fmt.Fprintf(&b, "FAIL: %d divergence(s)\n", len(r.Failures))
		for i, f := range r.Failures {
			fmt.Fprintf(&b, "[%d] %s\n", i+1, f)
		}
	}
	return b.String()
}

// maxFailures bounds the failure log: past it the run aborts early —
// one genuine bug tends to fail thousands of comparisons.
const maxFailures = 12

// Run executes the four audits.
func Run(cfg Config) (*Report, error) {
	cfg.fill()
	rep := &Report{Cells: map[string]int{}}
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, format+"\n", args...)
		}
	}

	exactDifferential(cfg, rep, logf)
	if len(rep.Failures) < maxFailures {
		estimatorEnvelopes(cfg, rep, logf)
	}
	if len(rep.Failures) < maxFailures {
		if err := storeTraces(cfg, rep, logf); err != nil {
			return rep, err
		}
	}
	if len(rep.Failures) < maxFailures {
		deltaTraces(cfg, rep, logf)
	}
	return rep, nil
}

// specs is the rotation of scenario specs the differential cycles
// through: every constraint class × every shape compatible with it ×
// Boolean and answer-variable queries.
func specs() []workload.ScenarioSpec {
	var out []workload.ScenarioSpec
	for _, class := range []fd.Class{fd.PrimaryKeys, fd.Keys, fd.GeneralFDs} {
		for _, shape := range workload.Shapes(class) {
			for _, av := range []bool{false, true} {
				out = append(out, workload.ScenarioSpec{Class: class, Shape: shape, AnswerVars: av})
			}
		}
	}
	return out
}

// describe renders a reproducible scenario description for failure
// messages.
func describe(sc workload.Scenario, mode core.Mode) string {
	return fmt.Sprintf("mode=%s class=%v shape=%v q=%q Σ=%s D:\n%s",
		mode.Symbol(), sc.Spec.Class, sc.Spec.Shape, sc.Query.String(), sc.Sigma, parse.FormatDatabase(sc.DB))
}

// --- part 1: exact differential -------------------------------------------

func exactDifferential(cfg Config, rep *Report, logf func(string, ...any)) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	rotation := specs()
	// A configured budget too small for the generator's instances
	// would otherwise replace scenarios forever; past this many
	// overflows the budget is infeasible, not unlucky.
	maxSkipped := 2*cfg.Scenarios + 100
	for i := 0; rep.Scenarios < cfg.Scenarios && len(rep.Failures) < maxFailures; i++ {
		sc := workload.RandomScenario(rng, rotation[i%len(rotation)])
		ok, err := checkScenario(cfg, rep, sc)
		if err != nil {
			// Over budget: replace the scenario, keep the count honest.
			rep.Skipped++
			if rep.Skipped > maxSkipped {
				rep.Failures = append(rep.Failures, fmt.Sprintf(
					"oracle budget %d is infeasible: %d of the first %d scenarios exceeded it (last: %v)",
					cfg.Budget, rep.Skipped, rep.Skipped+rep.Scenarios, err))
				return
			}
			continue
		}
		rep.Scenarios++
		rep.Cells[sc.Cell.String()]++
		if !ok && cfg.Log != nil {
			logf("scenario %d diverged", i)
		}
		if rep.Scenarios%100 == 0 {
			logf("exact differential: %d/%d scenarios", rep.Scenarios, cfg.Scenarios)
		}
	}
}

// checkScenario compares engines and oracle under all six modes.
// The returned error is only ever an oracle budget overflow.
func checkScenario(cfg Config, rep *Report, sc workload.Scenario) (bool, error) {
	orc, err := oracle.NewWithBudget(sc.DB, sc.Sigma, cfg.Budget)
	if err != nil {
		return false, err
	}
	inst := ocqa.NewInstance(sc.DB, sc.Sigma)
	fail := func(mode core.Mode, format string, args ...any) {
		rep.Failures = append(rep.Failures,
			fmt.Sprintf("%s\n  %s", fmt.Sprintf(format, args...), describe(sc, mode)))
	}
	clean := true
	for _, mode := range core.AllModes() {
		// Walk the whole space first: a budget overflow aborts the
		// scenario, not the run.
		want, err := orc.Repairs(mode)
		if err != nil {
			return false, err
		}
		rep.ModeChecks++

		// (1) The repair distribution [[D]]_M.
		sem, err := inst.Semantics(mode, 0)
		if err != nil {
			fail(mode, "Semantics error: %v", err)
			clean = false
			continue
		}
		if msg := compareDistributions(sc.DB, want, sem); msg != "" {
			fail(mode, "Semantics ≠ oracle: %s", msg)
			clean = false
		}

		// (2) Consistent answers: the shared multi-tuple exact pass.
		wantAns, err := orc.Answers(mode, sc.Query)
		if err != nil {
			return false, err
		}
		gotAns, err := inst.ConsistentAnswers(mode, sc.Query, 0)
		if err != nil {
			fail(mode, "ConsistentAnswers error: %v", err)
			clean = false
		} else if msg := compareAnswers(wantAns, gotAns); msg != "" {
			fail(mode, "ConsistentAnswers ≠ oracle: %s", msg)
			clean = false
		}

		// (3) Single-tuple exact probability, for a present tuple (the
		// first consistent answer when one exists, else the Boolean
		// empty tuple) and for a tuple certain to be absent.
		tup := cq.Tuple{}
		if len(sc.Query.AnswerVars) > 0 {
			if len(wantAns) == 0 {
				tup = nil // Q(D) = ∅: no present tuple to probe
			} else {
				tup = wantAns[0].Tuple
			}
		}
		if tup != nil {
			if msg := compareProbability(orc, inst, mode, sc.Query, tup); msg != "" {
				fail(mode, "ExactProbability ≠ oracle: %s", msg)
				clean = false
			}
		}
		if n := len(sc.Query.AnswerVars); n > 0 {
			absent := make(cq.Tuple, n)
			for i := range absent {
				absent[i] = "@absent"
			}
			if msg := compareProbability(orc, inst, mode, sc.Query, absent); msg != "" {
				fail(mode, "ExactProbability(absent) ≠ oracle: %s", msg)
				clean = false
			}
		}

		// (4) Exact per-fact marginals (the exact path behind the
		// approximate marginals endpoint).
		wantMarg, err := orc.Marginals(mode)
		if err != nil {
			return false, err
		}
		gotMarg, err := inst.FactMarginals(mode, 0)
		if err != nil {
			fail(mode, "FactMarginals error: %v", err)
			clean = false
		} else if msg := compareMarginals(wantMarg, gotMarg); msg != "" {
			fail(mode, "FactMarginals ≠ oracle: %s", msg)
			clean = false
		}
	}
	return clean, nil
}

func compareProbability(orc *oracle.Oracle, inst *ocqa.Instance, mode core.Mode, q *cq.Query, tup cq.Tuple) string {
	want, err := orc.Probability(mode, q, tup)
	if err != nil {
		return fmt.Sprintf("oracle error: %v", err)
	}
	got, err := inst.ExactProbability(mode, q, tup, 0)
	if err != nil {
		return fmt.Sprintf("engine error: %v", err)
	}
	if got.Cmp(want) != 0 {
		return fmt.Sprintf("tuple %v: engine %s, oracle %s", tup, got.RatString(), want.RatString())
	}
	return ""
}

func compareDistributions(db *ocqa.Database, want []oracle.Repair, got []core.RepairProb) string {
	if len(want) != len(got) {
		return fmt.Sprintf("%d repairs vs oracle's %d", len(got), len(want))
	}
	wantBy := make(map[string]*big.Rat, len(want))
	for _, rp := range want {
		wantBy[rp.Set.Key()] = rp.Prob
	}
	for _, rp := range got {
		w, ok := wantBy[rp.Repair.Key()]
		if !ok {
			return fmt.Sprintf("engine repair %v unreachable for the oracle", db.Restrict(rp.Repair))
		}
		if rp.Prob.Cmp(w) != 0 {
			return fmt.Sprintf("repair %v: engine %s, oracle %s",
				db.Restrict(rp.Repair), rp.Prob.RatString(), w.RatString())
		}
	}
	return ""
}

func compareAnswers(want []oracle.Answer, got []core.ConsistentAnswer) string {
	if len(want) != len(got) {
		return fmt.Sprintf("%d tuples vs oracle's %d", len(got), len(want))
	}
	// Both sides sort by tuple key.
	for i := range got {
		if !got[i].Tuple.Equal(want[i].Tuple) {
			return fmt.Sprintf("tuple[%d] %v vs oracle's %v", i, got[i].Tuple, want[i].Tuple)
		}
		if got[i].Prob.Cmp(want[i].Prob) != 0 {
			return fmt.Sprintf("tuple %v: engine %s, oracle %s",
				got[i].Tuple, got[i].Prob.RatString(), want[i].Prob.RatString())
		}
	}
	return ""
}

func compareMarginals(want []*big.Rat, got []ocqa.FactMarginal) string {
	if len(want) != len(got) {
		return fmt.Sprintf("%d facts vs oracle's %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Prob.Cmp(want[i]) != 0 {
			return fmt.Sprintf("fact %v: engine %s, oracle %s",
				got[i].Fact, got[i].Prob.RatString(), want[i].RatString())
		}
	}
	return ""
}

// --- part 2: estimator (ε, δ) envelopes -----------------------------------

// estCase is one audited (instance, mode) pair with its oracle truth.
type estCase struct {
	sc   workload.Scenario
	mode core.Mode
}

func estimatorEnvelopes(cfg Config, rep *Report, logf func(string, ...any)) {
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	var cases []estCase
	for i := 0; i < cfg.EstScenarios; i++ {
		// Primary keys: every mode is FPRAS (Theorems 5.1(2), 6.1(2),
		// 7.1(2), E.1(2), E.8(2)).
		sc := workload.RandomScenario(rng, workload.ScenarioSpec{
			Class: fd.PrimaryKeys, Shape: workload.ShapeBlocks, AnswerVars: i%2 == 1,
		})
		for _, mode := range core.AllModes() {
			cases = append(cases, estCase{sc: sc, mode: mode})
		}
		// Keys: M^uo is FPRAS (Theorem 7.1(2)).
		sck := workload.RandomScenario(rng, workload.ScenarioSpec{Class: fd.Keys})
		cases = append(cases,
			estCase{sc: sck, mode: core.Mode{Gen: core.UniformOperations}},
			estCase{sc: sck, mode: core.Mode{Gen: core.UniformOperations, Singleton: true}})
		// General FDs: M^{uo,1} is the headline FPRAS beyond keys
		// (Theorem 7.5).
		scf := workload.RandomScenario(rng, workload.ScenarioSpec{Class: fd.GeneralFDs})
		cases = append(cases, estCase{sc: scf, mode: core.Mode{Gen: core.UniformOperations, Singleton: true}})
	}

	eps, delta := cfg.Epsilon, cfg.Delta
	for ci, ec := range cases {
		if len(rep.Failures) >= maxFailures {
			return
		}
		orc, err := oracle.NewWithBudget(ec.sc.DB, ec.sc.Sigma, cfg.Budget)
		if err != nil {
			continue
		}
		inst := ocqa.NewInstance(ec.sc.DB, ec.sc.Sigma)
		fail := func(format string, args ...any) {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("%s\n  %s", fmt.Sprintf(format, args...), describe(ec.sc, ec.mode)))
		}

		// Single-target estimators against the Boolean (or first
		// present) tuple.
		tup := cq.Tuple{}
		ans, err := orc.Answers(ec.mode, ec.sc.Query)
		if err != nil {
			continue
		}
		if len(ec.sc.Query.AnswerVars) > 0 {
			if len(ans) == 0 {
				continue
			}
			tup = ans[0].Tuple
		}
		truth, err := orc.Probability(ec.mode, ec.sc.Query, tup)
		if err != nil {
			continue
		}
		p, _ := truth.Float64()
		if p > 0 {
			// The multiplicative guarantee (and the stopping rule's
			// termination) is stated for positive probabilities.
			for trial := 0; trial < cfg.EstTrials; trial++ {
				seed := cfg.Seed + int64(1000*ci+trial) + 17
				for _, opts := range []ocqa.ApproxOptions{
					{Epsilon: eps, Delta: delta, Seed: seed},                    // DKLR stopping rule
					{Epsilon: eps, Delta: delta, Seed: seed, UseAA: true},       // 𝒜𝒜 optimal estimator
					{Epsilon: eps, Delta: delta, Seed: seed, UseChernoff: true}, // FPRAS fixed-sample construction
				} {
					est, err := inst.Approximate(noCtx, ec.mode, ec.sc.Query, tup, opts)
					if err != nil {
						fail("estimator error (opts %+v): %v", opts, err)
						continue
					}
					rep.EstRuns++
					if !within(est.Value, p, eps) {
						rep.EstMisses++
					}
				}
			}
		}

		// The shared-draw multi-target pass, checked per tuple.
		if len(ans) > 0 && len(ec.sc.Query.AnswerVars) > 0 {
			truthBy := make(map[string]float64, len(ans))
			for _, a := range ans {
				truthBy[a.Tuple.Key()], _ = a.Prob.Float64()
			}
			for trial := 0; trial < cfg.EstTrials; trial++ {
				opts := ocqa.ApproxOptions{
					Epsilon: eps, Delta: delta,
					Seed:       cfg.Seed + int64(1000*ci+trial) + 41,
					MaxSamples: 200_000,
				}
				ests, err := inst.ApproximateAnswers(noCtx, ec.mode, ec.sc.Query, opts)
				if err != nil {
					fail("multi estimator error: %v", err)
					continue
				}
				for _, a := range ests {
					pt, ok := truthBy[a.Tuple.Key()]
					if !ok {
						fail("multi estimator produced tuple %v outside Q(D)", a.Tuple)
						continue
					}
					if pt == 0 {
						// A zero-probability tuple can never be hit by a
						// draw from the exact repair distribution: any
						// nonzero estimate is a soundness bug, not noise.
						rep.EstZeroChecks++
						if a.Estimate.Value != 0 {
							fail("tuple %v has probability 0 but estimate %v", a.Tuple, a.Estimate.Value)
						}
						continue
					}
					rep.EstRuns++
					if !within(a.Estimate.Value, pt, eps) {
						rep.EstMisses++
					}
				}
			}
		}
	}

	// Hold the pooled miss rate to the stated confidence: expected
	// misses ≤ δ·runs; allow 3σ of binomial noise so a sound estimator
	// fails with probability ≪ 1e-3 while a broken one (coverage below
	// 1−δ) exceeds the budget quickly.
	rep.EstAllowed = delta*float64(rep.EstRuns) + 3*math.Sqrt(delta*(1-delta)*float64(rep.EstRuns))
	logf("estimator envelopes: %d runs, %d misses (allowed %.1f)", rep.EstRuns, rep.EstMisses, rep.EstAllowed)
	if float64(rep.EstMisses) > rep.EstAllowed {
		rep.Failures = append(rep.Failures, fmt.Sprintf(
			"estimator coverage below stated confidence: %d/%d misses exceed δ=%v budget %.1f",
			rep.EstMisses, rep.EstRuns, delta, rep.EstAllowed))
	}
}

// within reports whether est satisfies the multiplicative (ε, δ)
// envelope around p (a hair of float slack for the exact boundary).
func within(est, p, eps float64) bool {
	return math.Abs(est-p) <= eps*p*(1+1e-9)+1e-12
}

// --- part 3: durable store trace replay -----------------------------------

func storeTraces(cfg Config, rep *Report, logf func(string, ...any)) error {
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	rotation := []workload.ScenarioSpec{
		{Class: fd.PrimaryKeys, Shape: workload.ShapeBlocks, AnswerVars: true},
		{Class: fd.GeneralFDs, Shape: workload.ShapeRandom},
		{Class: fd.Keys},
	}
	for j := 0; j < cfg.Traces && len(rep.Failures) < maxFailures; j++ {
		sc := workload.RandomScenario(rng, rotation[j%len(rotation)])
		if err := replayTrace(cfg, rep, rng, sc, j); err != nil {
			return err
		}
		rep.Traces++
	}
	logf("store replay: %d traces", rep.Traces)
	return nil
}

// replayTrace journals one random mutation trace through a fresh
// store, mirrors it through the facade's copy-on-write mutation path,
// then reopens the store and demands three-way agreement: live
// instance ≡ reloaded state ≡ fresh oracle.
func replayTrace(cfg Config, rep *Report, rng *rand.Rand, sc workload.Scenario, trace int) error {
	dir, err := os.MkdirTemp(cfg.TraceDir, "oracle-trace-")
	if err != nil {
		return fmt.Errorf("harness: trace dir: %w", err)
	}
	defer os.RemoveAll(dir)

	st, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		return fmt.Errorf("harness: opening store: %w", err)
	}
	const id = "i1"
	if err := st.LogRegister(id, "trace", time.Unix(0, 0), sc.DB, sc.Sigma); err != nil {
		return fmt.Errorf("harness: register: %w", err)
	}
	inst := ocqa.NewInstance(sc.DB, sc.Sigma)

	fail := func(format string, args ...any) {
		rep.Failures = append(rep.Failures,
			fmt.Sprintf("trace %d: %s\n  %s", trace, fmt.Sprintf(format, args...),
				describe(sc, core.Mode{})))
	}

	rels := sc.Schema.Relations()
	for k := 0; k < cfg.TraceOps; k++ {
		insert := inst.DB().Len() == 0 || (inst.DB().Len() < 9 && rng.Intn(2) == 0)
		if insert {
			f, ok := insertableFact(rng, inst, rels)
			if !ok {
				insert = false
			} else {
				ni, _, err := inst.InsertFact(f)
				if err != nil {
					fail("InsertFact(%v): %v", f, err)
					break
				}
				if err := st.LogInsertFact(id, f); err != nil {
					return fmt.Errorf("harness: journal insert: %w", err)
				}
				inst = ni
			}
		}
		if !insert && inst.DB().Len() > 0 {
			idx := rng.Intn(inst.DB().Len())
			ni, err := inst.DeleteFact(idx)
			if err != nil {
				fail("DeleteFact(%d): %v", idx, err)
				break
			}
			if err := st.LogDeleteFact(id, idx); err != nil {
				return fmt.Errorf("harness: journal delete: %w", err)
			}
			inst = ni
		}
		if k%9 == 8 {
			// Fold the prefix into a snapshot mid-trace so replay
			// crosses the snapshot/WAL boundary, not just the WAL.
			if err := st.Compact(); err != nil {
				return fmt.Errorf("harness: compact: %w", err)
			}
		}
	}
	if err := st.Close(); err != nil {
		return fmt.Errorf("harness: closing store: %w", err)
	}

	st2, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		return fmt.Errorf("harness: reopening store: %w", err)
	}
	defer st2.Close()
	var state *store.InstanceState
	for _, is := range st2.Instances() {
		if is.ID == id {
			state = is
		}
	}
	if state == nil {
		fail("instance missing after reload")
		return nil
	}
	if !state.DB.Equal(inst.DB()) {
		fail("reloaded database differs from the live instance:\nlive:\n%s\nreloaded:\n%s",
			parse.FormatDatabase(inst.DB()), parse.FormatDatabase(state.DB))
		return nil
	}

	orc, err := oracle.NewWithBudget(state.DB, state.Sigma, cfg.Budget)
	if err != nil {
		return nil // mutated past brute-force reach: DB equality above still verified
	}
	reloaded := ocqa.NewInstance(state.DB, state.Sigma)
	for _, mode := range core.AllModes() {
		want, err := orc.Marginals(mode)
		if err != nil {
			return nil
		}
		// The reloaded instance (fresh conflict structure) and the live
		// one (incrementally maintained through the whole trace) must
		// both match the oracle.
		for name, in := range map[string]*ocqa.Instance{"reloaded": reloaded, "live": inst} {
			got, err := in.FactMarginals(mode, 0)
			if err != nil {
				fail("%s FactMarginals %s: %v", name, mode.Symbol(), err)
				continue
			}
			if msg := compareMarginals(want, got); msg != "" {
				fail("%s FactMarginals %s ≠ oracle after replay: %s", name, mode.Symbol(), msg)
			}
		}
		tup := cq.Tuple(nil)
		if len(sc.Query.AnswerVars) == 0 {
			tup = cq.Tuple{}
		} else if ans, err := orc.Answers(mode, sc.Query); err == nil && len(ans) > 0 {
			tup = ans[0].Tuple
		}
		if tup != nil {
			if msg := compareProbability(orc, reloaded, mode, sc.Query, tup); msg != "" {
				fail("reloaded ExactProbability %s ≠ oracle after replay: %s", mode.Symbol(), msg)
			}
		}
	}
	return nil
}

// --- part 4: incremental-lineage (delta) traces ----------------------------

func deltaTraces(cfg Config, rep *Report, logf func(string, ...any)) {
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	// Primary keys under M^ur are the delta fast path (per-block factor
	// caching, stratified draw reuse); the Keys and general-FD entries
	// ride along to pin the fallback — a Prepared that cannot route
	// delta must still answer exactly like a cold instance.
	rotation := []workload.ScenarioSpec{
		{Class: fd.PrimaryKeys, Shape: workload.ShapeBlocks, AnswerVars: false},
		{Class: fd.PrimaryKeys, Shape: workload.ShapeBlocks, AnswerVars: true},
		{Class: fd.Keys},
		{Class: fd.GeneralFDs},
	}
	for j := 0; j < cfg.DeltaTraces && len(rep.Failures) < maxFailures; j++ {
		sc := workload.RandomScenario(rng, rotation[j%len(rotation)])
		deltaTrace(cfg, rep, rng, sc, j)
		rep.DeltaTraces++
	}
	rep.DeltaEstAllowed = cfg.Delta*float64(rep.DeltaEstRuns) +
		3*math.Sqrt(cfg.Delta*(1-cfg.Delta)*float64(rep.DeltaEstRuns))
	logf("delta traces: %d traces, %d mode checks, %d/%d estimate misses (allowed %.1f)",
		rep.DeltaTraces, rep.DeltaChecks, rep.DeltaEstMisses, rep.DeltaEstRuns, rep.DeltaEstAllowed)
	if float64(rep.DeltaEstMisses) > rep.DeltaEstAllowed {
		rep.Failures = append(rep.Failures, fmt.Sprintf(
			"delta stratified coverage below stated confidence: %d/%d misses exceed δ=%v budget %.1f",
			rep.DeltaEstMisses, rep.DeltaEstRuns, cfg.Delta, rep.DeltaEstAllowed))
	}
}

// deltaTrace advances one Prepared lineage through random mutations via
// ApplyInsert/ApplyDelete — never rebuilding it — and after every
// mutation demands agreement with a cold from-scratch instance and the
// oracle (deltaStep). The lineage accumulates warm factor caches,
// witness images and draw strata across the whole trace, so a stale
// cache entry surfaces as a divergence at the step that exposes it.
func deltaTrace(cfg Config, rep *Report, rng *rand.Rand, sc workload.Scenario, trace int) {
	p := ocqa.NewInstance(sc.DB, sc.Sigma).PrepareLazy()
	rels := sc.Schema.Relations()
	for k := 0; k < cfg.DeltaOps && len(rep.Failures) < maxFailures; k++ {
		mutated := false
		insert := p.DB().Len() == 0 || (p.DB().Len() < 9 && rng.Intn(2) == 0)
		if insert {
			if f, ok := insertableFact(rng, p.Instance, rels); ok {
				np, _, err := p.ApplyInsert(f)
				if err != nil {
					rep.Failures = append(rep.Failures, fmt.Sprintf(
						"delta trace %d: ApplyInsert(%v): %v\n  %s", trace, f, err, describe(sc, core.Mode{})))
					return
				}
				p, mutated = np, true
			} else {
				insert = false
			}
		}
		if !insert && p.DB().Len() > 0 {
			idx := rng.Intn(p.DB().Len())
			np, err := p.ApplyDelete(idx)
			if err != nil {
				rep.Failures = append(rep.Failures, fmt.Sprintf(
					"delta trace %d: ApplyDelete(%d): %v\n  %s", trace, idx, err, describe(sc, core.Mode{})))
				return
			}
			p, mutated = np, true
		}
		if mutated {
			deltaStep(cfg, rep, p, sc, trace, int64(1000*trace+k))
		}
	}
}

// deltaStep demands three-way agreement at the lineage's current state:
// the warm Prepared (delta-routed where eligible), a cold instance on
// the same database, and the oracle — exact answers bitwise, warm
// stratified estimates inside the (ε, δ) envelope.
func deltaStep(cfg Config, rep *Report, p *ocqa.Prepared, sc workload.Scenario, trace int, estSalt int64) {
	db := p.DB()
	orc, err := oracle.NewWithBudget(db, sc.Sigma, cfg.Budget)
	if err != nil {
		return // mutated past brute-force reach; later steps may shrink back
	}
	cold := ocqa.NewInstance(db, sc.Sigma)
	fail := func(mode core.Mode, format string, args ...any) {
		rep.Failures = append(rep.Failures, fmt.Sprintf(
			"delta trace %d: %s\n  mode=%s class=%v q=%q Σ=%s D:\n%s",
			trace, fmt.Sprintf(format, args...), mode.Symbol(), sc.Spec.Class,
			sc.Query.String(), sc.Sigma, parse.FormatDatabase(db)))
	}
	for _, mode := range core.AllModes() {
		wantAns, err := orc.Answers(mode, sc.Query)
		if err != nil {
			return
		}
		rep.DeltaChecks++

		gotAns, err := p.ConsistentAnswers(mode, sc.Query, 0)
		if err != nil {
			fail(mode, "warm ConsistentAnswers error: %v", err)
			continue
		}
		if msg := compareAnswers(wantAns, gotAns); msg != "" {
			fail(mode, "warm ConsistentAnswers ≠ oracle: %s", msg)
		}
		coldAns, err := cold.ConsistentAnswers(mode, sc.Query, 0)
		if err != nil {
			fail(mode, "cold ConsistentAnswers error: %v", err)
		} else if msg := compareAnswerLists(coldAns, gotAns); msg != "" {
			fail(mode, "warm ConsistentAnswers ≠ cold recomputation: %s", msg)
		}

		// Single-tuple exact probabilities through the delta-routed
		// facade: the present (or Boolean) tuple plus a certainly-absent
		// one, which exercises the zero-witness short-circuit.
		var tups []cq.Tuple
		if len(sc.Query.AnswerVars) == 0 {
			tups = append(tups, cq.Tuple{})
		} else {
			if len(wantAns) > 0 {
				tups = append(tups, wantAns[0].Tuple)
			}
			absent := make(cq.Tuple, len(sc.Query.AnswerVars))
			for i := range absent {
				absent[i] = "@absent"
			}
			tups = append(tups, absent)
		}
		for _, tup := range tups {
			want, err := orc.Probability(mode, sc.Query, tup)
			if err != nil {
				continue
			}
			got, err := p.ExactProbability(mode, sc.Query, tup, 0)
			if err != nil {
				fail(mode, "warm ExactProbability(%v) error: %v", tup, err)
				continue
			}
			if got.Cmp(want) != 0 {
				fail(mode, "warm ExactProbability ≠ oracle: tuple %v: warm %s, oracle %s",
					tup, got.RatString(), want.RatString())
			}
		}
	}

	// Warm stratified estimates under the delta-eligible modes must keep
	// the stated multiplicative envelope around oracle truth.
	if sc.Spec.Class != fd.PrimaryKeys {
		return // delta routing needs the primary-key product measure
	}
	for i, mode := range []core.Mode{{Gen: core.UniformRepairs}, {Gen: core.UniformRepairs, Singleton: true}} {
		tup := cq.Tuple{}
		if len(sc.Query.AnswerVars) > 0 {
			ans, err := orc.Answers(mode, sc.Query)
			if err != nil || len(ans) == 0 {
				continue
			}
			tup = ans[0].Tuple
		}
		truth, err := orc.Probability(mode, sc.Query, tup)
		if err != nil {
			continue
		}
		pt, _ := truth.Float64()
		if pt == 0 {
			continue
		}
		est, err := p.Approximate(noCtx, mode, sc.Query, tup, ocqa.ApproxOptions{
			Epsilon: cfg.Epsilon, Delta: cfg.Delta, Seed: cfg.Seed + 2*estSalt + int64(i) + 53,
		})
		if err != nil {
			fail(mode, "warm Approximate error: %v", err)
			continue
		}
		rep.DeltaEstRuns++
		if !within(est.Value, pt, cfg.Epsilon) {
			rep.DeltaEstMisses++
		}
	}
}

// compareAnswerLists compares two engine-produced answer lists (both
// sorted by tuple key) for bitwise big.Rat agreement.
func compareAnswerLists(want, got []core.ConsistentAnswer) string {
	if len(want) != len(got) {
		return fmt.Sprintf("%d tuples vs %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Tuple.Equal(want[i].Tuple) {
			return fmt.Sprintf("tuple[%d] %v vs %v", i, got[i].Tuple, want[i].Tuple)
		}
		if got[i].Prob.Cmp(want[i].Prob) != 0 {
			return fmt.Sprintf("tuple %v: %s vs %s",
				got[i].Tuple, got[i].Prob.RatString(), want[i].Prob.RatString())
		}
	}
	return ""
}

// insertableFact draws a fact not yet in the instance whose insertion
// keeps the conflict structure within brute-force reach.
func insertableFact(rng *rand.Rand, inst *ocqa.Instance, rels []ocqa.Relation) (ocqa.Fact, bool) {
	db, sigma := inst.DB(), inst.Sigma()
	edges := len(sigma.ConflictPairs(db))
	for try := 0; try < 12; try++ {
		r := rels[rng.Intn(len(rels))]
		args := make([]string, r.Arity())
		for i := range args {
			args[i] = fmt.Sprintf("m%d", rng.Intn(4))
		}
		f := ocqa.Fact{Rel: r.Name, Args: args}
		if db.Contains(f) {
			continue
		}
		added := 0
		for _, g := range db.Facts() {
			if sigma.InConflict(f, g) {
				added++
			}
		}
		if edges+added > 8 {
			continue
		}
		return f, true
	}
	return ocqa.Fact{}, false
}

// noCtx is the harness's background context (estimators require one).
var noCtx = context.Background()
