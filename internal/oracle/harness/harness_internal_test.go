package harness

// Canary tests: a differential harness that compares nothing would
// pass forever, so the comparators themselves are checked against
// deliberately diverging inputs.

import (
	"math/big"
	"testing"

	ocqa "repro"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/oracle"
	"repro/internal/rel"
)

func TestComparatorsFlagDivergence(t *testing.T) {
	s1 := rel.NewSubset(2)
	s1.Set(0)
	s2 := rel.NewSubset(2)
	s2.Set(1)
	half := big.NewRat(1, 2)
	third := big.NewRat(1, 3)

	db := rel.NewDatabase(rel.NewFact("R", "a"), rel.NewFact("R", "b"))
	wantD := []oracle.Repair{{Set: s1, Prob: half}, {Set: s2, Prob: half}}
	if msg := compareDistributions(db, wantD, []core.RepairProb{
		{Repair: s1, Prob: half}, {Repair: s2, Prob: half},
	}); msg != "" {
		t.Errorf("equal distributions flagged: %s", msg)
	}
	if msg := compareDistributions(db, wantD, []core.RepairProb{
		{Repair: s1, Prob: third}, {Repair: s2, Prob: half},
	}); msg == "" {
		t.Error("probability mismatch not flagged")
	}
	if msg := compareDistributions(db, wantD, []core.RepairProb{{Repair: s1, Prob: half}}); msg == "" {
		t.Error("missing repair not flagged")
	}

	wantA := []oracle.Answer{{Tuple: cq.Tuple{"a"}, Prob: half}}
	if msg := compareAnswers(wantA, []core.ConsistentAnswer{{Tuple: cq.Tuple{"a"}, Prob: half}}); msg != "" {
		t.Errorf("equal answers flagged: %s", msg)
	}
	if msg := compareAnswers(wantA, []core.ConsistentAnswer{{Tuple: cq.Tuple{"b"}, Prob: half}}); msg == "" {
		t.Error("tuple mismatch not flagged")
	}
	if msg := compareAnswers(wantA, []core.ConsistentAnswer{{Tuple: cq.Tuple{"a"}, Prob: third}}); msg == "" {
		t.Error("answer probability mismatch not flagged")
	}

	wantM := []*big.Rat{half}
	if msg := compareMarginals(wantM, []ocqa.FactMarginal{{Prob: third}}); msg == "" {
		t.Error("marginal mismatch not flagged")
	}
}

func TestWithinEnvelope(t *testing.T) {
	if !within(0.5, 0.5, 0.25) || !within(0.624, 0.5, 0.25) || !within(0.376, 0.5, 0.25) {
		t.Error("in-envelope estimates rejected")
	}
	if within(0.7, 0.5, 0.25) || within(0.3, 0.5, 0.25) {
		t.Error("out-of-envelope estimates accepted")
	}
	// p = 0: only an exactly-zero estimate is inside.
	if within(0.01, 0, 0.25) {
		t.Error("nonzero estimate accepted for p = 0")
	}
	if !within(0, 0, 0.25) {
		t.Error("zero estimate rejected for p = 0")
	}
}
