package oracle_test

// The reduced differential gate that runs under tier-1 `go test`: the
// same harness ocqa-bench -oracle drives at ≥500 scenarios, held to a
// CI-friendly scenario count. A divergence between any engine and the
// brute-force oracle fails the build, not just the nightly bench.

import (
	"strings"
	"testing"

	"repro/internal/oracle/harness"
)

func TestDifferentialHarnessReduced(t *testing.T) {
	cfg := harness.Config{
		Seed:         2022,
		Scenarios:    96, // the full 500-per-mode sweep runs in ocqa-bench -oracle
		EstScenarios: 2,
		EstTrials:    6,
		Traces:       3,
		TraceOps:     18,
		DeltaTraces:  3,
		DeltaOps:     10,
		TraceDir:     t.TempDir(),
	}
	if testing.Short() {
		cfg.Scenarios = 24
		cfg.EstScenarios = 1
		cfg.EstTrials = 3
		cfg.Traces = 1
		cfg.DeltaTraces = 1
	}
	rep, err := harness.Run(cfg)
	if err != nil {
		t.Fatalf("harness infrastructure error: %v", err)
	}
	t.Logf("\n%s", rep.Format())
	if !rep.OK() {
		t.Fatalf("differential harness found %d divergence(s); see log", len(rep.Failures))
	}
	if rep.Scenarios < cfg.Scenarios {
		t.Errorf("checked %d scenarios, wanted %d", rep.Scenarios, cfg.Scenarios)
	}
	if rep.EstRuns == 0 {
		t.Error("estimator envelope audit ran zero trials")
	}
	if rep.Traces != cfg.Traces {
		t.Errorf("completed %d traces, wanted %d", rep.Traces, cfg.Traces)
	}
	if rep.DeltaTraces != cfg.DeltaTraces {
		t.Errorf("completed %d delta traces, wanted %d", rep.DeltaTraces, cfg.DeltaTraces)
	}
	if rep.DeltaChecks == 0 {
		t.Error("delta trace audit performed zero mode checks")
	}
	if !testing.Short() && rep.DeltaEstRuns == 0 {
		t.Error("delta trace audit ran zero stratified-envelope trials")
	}
	// Coverage must span all three constraint classes (the cell string
	// leads with the class name, before the per-mode tags).
	classes := map[string]bool{}
	for cell := range rep.Cells {
		classes[strings.SplitN(cell, "[", 2)[0]] = true
	}
	for _, want := range []string{"primary keys", "keys", "FDs"} {
		if !classes[want] {
			t.Errorf("scenario stream never covered constraint class %q (got %v)", want, rep.Cells)
		}
	}
}
