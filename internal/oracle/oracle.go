// Package oracle is the brute-force ground truth for the operational
// semantics: it enumerates the FULL space of repairing sequences of a
// tiny instance by depth-first search and derives every quantity the
// production engines compute — exact probabilities, repair
// distributions, per-fact marginals, consistent answers — from first
// principles, as exact rationals.
//
// The point of the package is deliberate independence. The production
// code reaches those quantities through layered machinery: conflict
// graphs, independent-set characterisations (Lemma 5.4/E.4), state-DAG
// dynamic programming, canonical-leaf counting, compiled witness
// predicates. The oracle uses NONE of it:
//
//   - conflicts are re-derived from the FD definition itself (agree on
//     X, differ on Y) over raw fact pairs — not fd.Set.ConflictPairs;
//   - entailment is a naive backtracking search over atoms in body
//     order — not cq's planned, span-indexed homomorphism engine;
//   - states are raw uint64 bitmasks, sequences are walked one
//     operation at a time, and nothing is memoised — every complete
//     repairing sequence is visited explicitly.
//
// The three leaf distributions then fall out of the walk directly:
// M^us weighs each complete sequence once (Definition A.3), M^uo
// weighs it by the product of 1/|Ops| along its path (Definition A.5),
// and M^ur is uniform over the distinct results (Definition A.1 via
// Proposition A.2 — a result is reachable iff some complete sequence
// ends in it). A disagreement between this package and the engines is
// therefore a genuine bug in one of them, not a shared one.
//
// The cost is exponential twice over (the sequence tree on top of the
// state space), which is the contract: oracles run on instances of at
// most MaxFacts facts under an explicit node budget, and the harness
// generates instances sized for it.
//
// The only dependency on the engine side of the repo is the core.Mode
// enum, imported so callers name modes the same way everywhere; no
// core algorithm is invoked.
package oracle

import (
	"fmt"
	"math/big"
	"sort"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/fd"
	"repro/internal/rel"
)

// MaxFacts bounds the instances the oracle accepts: states are single
// uint64 bitmasks, and anything near that size is far beyond the
// sequence-tree budget anyway.
const MaxFacts = 62

// DefaultBudget caps the number of sequence-tree nodes one exploration
// may visit (the tree is walked once per operation space and cached).
const DefaultBudget = 4 << 20

// BudgetError reports that an exploration exceeded its node budget:
// the instance is too large for brute force, not inconsistent with
// anything.
type BudgetError struct{ Budget int }

func (e BudgetError) Error() string {
	return fmt.Sprintf("oracle: sequence tree exceeds the %d-node budget", e.Budget)
}

// Oracle is the brute-force checker for one instance (D, Σ).
type Oracle struct {
	db     *rel.Database
	sigma  *fd.Set
	budget int
	facts  []rel.Fact
	// conflict[i] is the bitmask of facts j that jointly violate some
	// FD with fact i (re-derived from the FD definition, see above).
	conflict []uint64
	// spaces caches the explored sequence tree per operation space
	// (index 1 = singleton-only).
	spaces [2]*space
}

// space aggregates the leaves of one operation space's sequence tree.
type space struct {
	// leaves maps each reachable result (consistent end state) to its
	// accumulated sequence count (M^us numerator) and M^uo mass.
	leaves map[uint64]*leaf
	// order lists the result masks in ascending numeric order.
	order []uint64
	// totalSeqs is |CRS(D,Σ)| (resp. |CRS^1|).
	totalSeqs *big.Int
	nodes     int
}

type leaf struct {
	seqs *big.Int
	uo   *big.Rat
}

// New builds an oracle over (D, Σ) with the default node budget.
func New(db *rel.Database, sigma *fd.Set) (*Oracle, error) {
	return NewWithBudget(db, sigma, DefaultBudget)
}

// NewWithBudget builds an oracle with an explicit sequence-tree node
// budget (per operation space).
func NewWithBudget(db *rel.Database, sigma *fd.Set, budget int) (*Oracle, error) {
	if db.Len() > MaxFacts {
		return nil, fmt.Errorf("oracle: %d facts exceed the %d-fact brute-force bound", db.Len(), MaxFacts)
	}
	if budget <= 0 {
		budget = DefaultBudget
	}
	o := &Oracle{db: db, sigma: sigma, budget: budget, facts: db.Facts()}
	o.conflict = make([]uint64, len(o.facts))
	for i := 0; i < len(o.facts); i++ {
		for j := i + 1; j < len(o.facts); j++ {
			if o.inConflict(o.facts[i], o.facts[j]) {
				o.conflict[i] |= 1 << uint(j)
				o.conflict[j] |= 1 << uint(i)
			}
		}
	}
	return o, nil
}

// inConflict re-implements "the pair {f, g} violates some φ ∈ Σ"
// straight from Section 2's FD definition, independent of
// fd.FD.ViolatedBy: f and g agree on every attribute of X and differ
// on some attribute of Y.
func (o *Oracle) inConflict(f, g rel.Fact) bool {
	for _, phi := range o.sigma.FDs() {
		if f.Rel != phi.Rel || g.Rel != phi.Rel {
			continue
		}
		agree := true
		for _, x := range phi.LHS {
			if f.Arg(x) != g.Arg(x) {
				agree = false
				break
			}
		}
		if !agree {
			continue
		}
		for _, y := range phi.RHS {
			if f.Arg(y) != g.Arg(y) {
				return true
			}
		}
	}
	return false
}

// op is a justified operation: remove removes its set bits (one bit
// for a singleton removal, two for a pair removal).
type op struct{ remove uint64 }

// justifiedOps lists the (s, Σ)-justified operations at the state:
// every nonempty F ⊆ {f, g} for a surviving violation {f, g}
// (Definition 3.3), singletons deduplicated across violations, pair
// removals dropped when the operation space is restricted to
// singletons. The order is deterministic (singletons by index, then
// pairs lexicographically), though no oracle quantity depends on it.
func (o *Oracle) justifiedOps(mask uint64, singleton bool) []op {
	var singles uint64
	var pairs []op
	for i := 0; i < len(o.facts); i++ {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		live := o.conflict[i] & mask
		if live != 0 {
			singles |= 1 << uint(i)
		}
		if singleton {
			continue
		}
		for j := i + 1; j < len(o.facts); j++ {
			if live&(1<<uint(j)) != 0 {
				pairs = append(pairs, op{remove: 1<<uint(i) | 1<<uint(j)})
			}
		}
	}
	ops := make([]op, 0, len(pairs))
	for i := 0; i < len(o.facts); i++ {
		if singles&(1<<uint(i)) != 0 {
			ops = append(ops, op{remove: 1 << uint(i)})
		}
	}
	return append(ops, pairs...)
}

// explore walks the entire sequence tree of the operation space,
// accumulating per-result sequence counts and M^uo path masses. The
// result is cached: every mode of the space shares one walk.
func (o *Oracle) explore(singleton bool) (*space, error) {
	idx := 0
	if singleton {
		idx = 1
	}
	if sp := o.spaces[idx]; sp != nil {
		return sp, nil
	}
	sp := &space{leaves: make(map[uint64]*leaf), totalSeqs: new(big.Int)}
	full := uint64(0)
	for i := 0; i < len(o.facts); i++ {
		full |= 1 << uint(i)
	}
	var walk func(mask uint64, uoMass *big.Rat) error
	walk = func(mask uint64, uoMass *big.Rat) error {
		sp.nodes++
		if sp.nodes > o.budget {
			return BudgetError{Budget: o.budget}
		}
		ops := o.justifiedOps(mask, singleton)
		if len(ops) == 0 {
			// A state with no justified operation is consistent (any
			// surviving violation would justify removals), so the
			// sequence ending here is complete.
			l := sp.leaves[mask]
			if l == nil {
				l = &leaf{seqs: new(big.Int), uo: new(big.Rat)}
				sp.leaves[mask] = l
			}
			l.seqs.Add(l.seqs, bigOne)
			l.uo.Add(l.uo, uoMass)
			sp.totalSeqs.Add(sp.totalSeqs, bigOne)
			return nil
		}
		share := new(big.Rat).Mul(uoMass, big.NewRat(1, int64(len(ops))))
		for _, p := range ops {
			if err := walk(mask&^p.remove, share); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(full, big.NewRat(1, 1)); err != nil {
		return nil, err
	}
	sp.order = make([]uint64, 0, len(sp.leaves))
	for m := range sp.leaves {
		sp.order = append(sp.order, m)
	}
	sort.Slice(sp.order, func(a, b int) bool { return sp.order[a] < sp.order[b] })
	o.spaces[idx] = sp
	return sp, nil
}

var bigOne = big.NewInt(1)

// Repair pairs a reachable repair with its exact probability under a
// mode.
type Repair struct {
	// Set identifies the repair as a subset of D's fact indices.
	Set rel.Subset
	// Prob is the repair's probability in [[D]]_M.
	Prob *big.Rat
}

// Repairs computes the operational semantics [[D]]_M — the exact
// distribution over operational repairs — in ascending bitmask order.
func (o *Oracle) Repairs(mode core.Mode) ([]Repair, error) {
	sp, err := o.explore(mode.Singleton)
	if err != nil {
		return nil, err
	}
	out := make([]Repair, 0, len(sp.order))
	for _, m := range sp.order {
		out = append(out, Repair{Set: o.subset(m), Prob: sp.prob(mode.Gen, m)})
	}
	return out, nil
}

// prob derives one result's probability from the walk's aggregates.
func (sp *space) prob(gen core.Generator, mask uint64) *big.Rat {
	l := sp.leaves[mask]
	switch gen {
	case core.UniformRepairs:
		// Uniform over the distinct reachable results (Definition A.1
		// via Proposition A.2).
		return big.NewRat(1, int64(len(sp.leaves)))
	case core.UniformSequences:
		// The fraction of complete sequences ending here
		// (Definition A.3 via Proposition A.4).
		return new(big.Rat).SetFrac(l.seqs, sp.totalSeqs)
	case core.UniformOperations:
		// The accumulated product of 1/|Ops| along every path ending
		// here (Definition A.5).
		return new(big.Rat).Set(l.uo)
	default:
		panic("oracle: unknown generator")
	}
}

// subset converts a bitmask state to the engines' Subset currency.
func (o *Oracle) subset(mask uint64) rel.Subset {
	s := rel.NewSubset(len(o.facts))
	for i := 0; i < len(o.facts); i++ {
		if mask&(1<<uint(i)) != 0 {
			s.Set(i)
		}
	}
	return s
}

// Probability computes P_{M,Q}(D, c̄) exactly: the total probability
// of repairs entailing c̄ ∈ Q(D').
func (o *Oracle) Probability(mode core.Mode, q *cq.Query, c cq.Tuple) (*big.Rat, error) {
	sp, err := o.explore(mode.Singleton)
	if err != nil {
		return nil, err
	}
	total := new(big.Rat)
	for _, m := range sp.order {
		if o.entails(q, c, m) {
			total.Add(total, sp.prob(mode.Gen, m))
		}
	}
	return total, nil
}

// Marginals computes P[f_i ∈ repair] exactly for every fact of D, in
// database fact order.
func (o *Oracle) Marginals(mode core.Mode) ([]*big.Rat, error) {
	sp, err := o.explore(mode.Singleton)
	if err != nil {
		return nil, err
	}
	out := make([]*big.Rat, len(o.facts))
	for i := range out {
		out[i] = new(big.Rat)
	}
	for _, m := range sp.order {
		p := sp.prob(mode.Gen, m)
		for i := 0; i < len(o.facts); i++ {
			if m&(1<<uint(i)) != 0 {
				out[i].Add(out[i], p)
			}
		}
	}
	return out, nil
}

// Answer pairs an answer tuple with its exact probability.
type Answer struct {
	Tuple cq.Tuple
	Prob  *big.Rat
}

// Answers computes the operational consistent answers to Q over D:
// every tuple of Q(D) with its probability (tuples outside Q(D) have
// probability 0 by CQ monotonicity and are omitted), sorted by tuple —
// the same contract as the engines' ConsistentAnswers.
func (o *Oracle) Answers(mode core.Mode, q *cq.Query) ([]Answer, error) {
	tuples := o.answerTuples(q)
	out := make([]Answer, 0, len(tuples))
	for _, c := range tuples {
		p, err := o.Probability(mode, q, c)
		if err != nil {
			return nil, err
		}
		out = append(out, Answer{Tuple: c, Prob: p})
	}
	return out, nil
}

// CountSequences reports |CRS(D,Σ)| (or |CRS^1|), read off the walk.
func (o *Oracle) CountSequences(singleton bool) (*big.Int, error) {
	sp, err := o.explore(singleton)
	if err != nil {
		return nil, err
	}
	return new(big.Int).Set(sp.totalSeqs), nil
}

// CountRepairs reports |CORep(D,Σ)| (or |CORep^1|): the number of
// distinct reachable results.
func (o *Oracle) CountRepairs(singleton bool) (*big.Int, error) {
	sp, err := o.explore(singleton)
	if err != nil {
		return nil, err
	}
	return big.NewInt(int64(len(sp.leaves))), nil
}

// --- naive CQ evaluation ---------------------------------------------------

// entails reports whether c̄ ∈ Q(D') for the sub-database identified
// by the mask: an exhaustive backtracking search assigning atoms to
// surviving facts in body order, with the answer variables pre-bound
// to c̄. No join planning, no per-relation indexes — deliberately the
// textbook definition.
func (o *Oracle) entails(q *cq.Query, c cq.Tuple, mask uint64) bool {
	if len(c) != len(q.AnswerVars) {
		return false
	}
	bind := make(map[string]string, len(q.AnswerVars))
	for i, v := range q.AnswerVars {
		if prev, ok := bind[v]; ok {
			if prev != c[i] {
				return false
			}
			continue
		}
		bind[v] = c[i]
	}
	found := false
	o.match(q, 0, mask, bind, func(map[string]string) bool {
		found = true
		return false
	})
	return found
}

// answerTuples computes Q(D) over the full database, sorted by tuple
// key, by enumerating every satisfying assignment.
func (o *Oracle) answerTuples(q *cq.Query) []cq.Tuple {
	full := uint64(0)
	for i := 0; i < len(o.facts); i++ {
		full |= 1 << uint(i)
	}
	seen := make(map[string]bool)
	var out []cq.Tuple
	o.match(q, 0, full, map[string]string{}, func(bind map[string]string) bool {
		tup := make(cq.Tuple, len(q.AnswerVars))
		for i, v := range q.AnswerVars {
			tup[i] = bind[v]
		}
		if k := tup.Key(); !seen[k] {
			seen[k] = true
			out = append(out, tup)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// match extends the binding atom by atom over the facts present in the
// mask, invoking yield for every complete assignment; yield returning
// false stops the search. Returns false when stopped.
func (o *Oracle) match(q *cq.Query, ai int, mask uint64, bind map[string]string, yield func(map[string]string) bool) bool {
	if ai == len(q.Atoms) {
		return yield(bind)
	}
	a := q.Atoms[ai]
	for fi := 0; fi < len(o.facts); fi++ {
		if mask&(1<<uint(fi)) == 0 {
			continue
		}
		f := o.facts[fi]
		if f.Rel != a.Rel || len(f.Args) != len(a.Terms) {
			continue
		}
		var added []string
		ok := true
		for t, term := range a.Terms {
			val := f.Arg(t)
			if !term.IsVar {
				if term.Value != val {
					ok = false
					break
				}
				continue
			}
			if prev, bound := bind[term.Value]; bound {
				if prev != val {
					ok = false
					break
				}
				continue
			}
			bind[term.Value] = val
			added = append(added, term.Value)
		}
		if ok && !o.match(q, ai+1, mask, bind, yield) {
			for _, v := range added {
				delete(bind, v)
			}
			return false
		}
		for _, v := range added {
			delete(bind, v)
		}
	}
	return true
}
