// Package fpras holds the statistical machinery the paper's positive
// results plug their samplers into: the Chernoff-derived sample counts
// of the fixed-sample Monte Carlo construction (the textbook template
// behind Theorems 5.1(2), 6.1(2), 7.1(2) and 7.5) and the polynomial
// lower bounds on positive target probabilities (Lemmas 5.3, 6.3, 7.3,
// E.3, E.10 and D.8) that turn a Monte Carlo mean into an FPRAS.
//
// The execution of the draw loops — fixed-sample, the Dagum–Karp–
// Luby–Ross stopping rule and full 𝒜𝒜 estimator, and the per-fact
// marginal counter — lives in internal/engine, which adds context
// cancellation, worker parallelism and central substream derivation on
// top of the math here.
package fpras

import (
	"fmt"
	"math"
)

// ChernoffSamples returns a sample count sufficient for a multiplicative
// (ε, δ)-guarantee on a Bernoulli mean known to be ≥ pmin (or zero):
//
//	N = ⌈3 · ln(2/δ) / (ε² · pmin)⌉.
//
// This is the generalized zero-one estimator bound; combined with the
// paper's polynomial lower bounds on the target probability it yields
// the FPRAS constructions. Panics unless 0 < ε, 0 < δ < 1, 0 < pmin ≤ 1.
func ChernoffSamples(eps, delta, pmin float64) int {
	if eps <= 0 || delta <= 0 || delta >= 1 || pmin <= 0 || pmin > 1 {
		panic(fmt.Sprintf("fpras: invalid parameters eps=%v delta=%v pmin=%v", eps, delta, pmin))
	}
	n := 3 * math.Log(2/delta) / (eps * eps * pmin)
	if n > math.MaxInt32 {
		return math.MaxInt32
	}
	return int(math.Ceil(n))
}

// The paper's polynomial lower bounds on positive target probabilities,
// used as pmin for the Chernoff construction. They shrink exponentially
// in ‖Q‖ (a constant in data complexity) and polynomially in ‖D‖, and
// can underflow to 0 for large inputs — callers should then prefer the
// stopping rule.

// LowerBoundRRFreqPrimary is Lemma 5.3 (and 6.3): positive repair (and
// sequence) relative frequencies under primary keys are ≥ 1/(2‖D‖)^‖Q‖.
func LowerBoundRRFreqPrimary(dbSize, querySize int) float64 {
	return math.Pow(2*float64(dbSize), -float64(querySize))
}

// LowerBoundSingletonPrimary is Lemma E.3 (and E.10): under primary
// keys with singleton operations the bound improves to 1/‖D‖^‖Q‖.
func LowerBoundSingletonPrimary(dbSize, querySize int) float64 {
	return math.Pow(float64(dbSize), -float64(querySize))
}

// LowerBoundSingletonFD is Lemma D.8: under arbitrary FDs with
// singleton operations, positive M^{uo,1} probabilities are
// ≥ 1/(e·‖D‖)^‖Q‖.
func LowerBoundSingletonFD(dbSize, querySize int) float64 {
	return math.Pow(math.E*float64(dbSize), -float64(querySize))
}
