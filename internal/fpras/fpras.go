// Package fpras implements the randomized approximation machinery the
// paper's positive results plug their samplers into: fixed-sample Monte
// Carlo with Chernoff-derived sample counts (the textbook construction
// behind Theorems 5.1(2), 6.1(2), 7.1(2) and 7.5, using the polynomial
// lower bounds of Lemmas 5.3, 6.3, 7.3 and D.8), and the Dagum–Karp–
// Luby–Ross stopping-rule estimator [8], whose expected sample count
// adapts to the true probability and which the experiments use when the
// worst-case bound would be impractically conservative.
package fpras

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
)

// Sampler draws one Bernoulli observation: whether a sampled repair (or
// sequence, or chain walk) satisfies the query.
type Sampler func(rng *rand.Rand) bool

// Estimate is the outcome of a randomized estimation.
type Estimate struct {
	// Value is the estimate of the target probability.
	Value float64
	// Samples is the number of draws consumed.
	Samples int
	// Epsilon and Delta echo the requested guarantee (0 when a raw
	// fixed-sample estimate was requested).
	Epsilon, Delta float64
	// Converged is false when a capped stopping-rule run exhausted its
	// budget before meeting the rule; Value is then the plain mean.
	Converged bool
}

// ChernoffSamples returns a sample count sufficient for a multiplicative
// (ε, δ)-guarantee on a Bernoulli mean known to be ≥ pmin (or zero):
//
//	N = ⌈3 · ln(2/δ) / (ε² · pmin)⌉.
//
// This is the generalized zero-one estimator bound; combined with the
// paper's polynomial lower bounds on the target probability it yields
// the FPRAS constructions. Panics unless 0 < ε, 0 < δ < 1, 0 < pmin ≤ 1.
func ChernoffSamples(eps, delta, pmin float64) int {
	if eps <= 0 || delta <= 0 || delta >= 1 || pmin <= 0 || pmin > 1 {
		panic(fmt.Sprintf("fpras: invalid parameters eps=%v delta=%v pmin=%v", eps, delta, pmin))
	}
	n := 3 * math.Log(2/delta) / (eps * eps * pmin)
	if n > math.MaxInt32 {
		return math.MaxInt32
	}
	return int(math.Ceil(n))
}

// EstimateFixed draws exactly n samples and returns the empirical mean.
// With workers > 1 the draws are split across goroutines, each with an
// independent deterministic sub-stream derived from seed.
func EstimateFixed(s Sampler, n int, seed int64, workers int) Estimate {
	if n <= 0 {
		panic("fpras: need a positive sample count")
	}
	if workers <= 1 {
		rng := rand.New(rand.NewSource(seed))
		hits := 0
		for i := 0; i < n; i++ {
			if s(rng) {
				hits++
			}
		}
		return Estimate{Value: float64(hits) / float64(n), Samples: n, Converged: true}
	}
	var hits int64
	var wg sync.WaitGroup
	per := n / workers
	extra := n % workers
	for w := 0; w < workers; w++ {
		quota := per
		if w < extra {
			quota++
		}
		if quota == 0 {
			continue
		}
		wg.Add(1)
		go func(w, quota int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*0x5851f42d4c957f2d))
			local := 0
			for i := 0; i < quota; i++ {
				if s(rng) {
					local++
				}
			}
			atomic.AddInt64(&hits, int64(local))
		}(w, quota)
	}
	wg.Wait()
	return Estimate{Value: float64(hits) / float64(n), Samples: n, Converged: true}
}

// EstimateFPRAS is the paper's FPRAS template: given a sampler whose
// success probability is either 0 or ≥ pmin, it draws
// ChernoffSamples(eps, delta, pmin) samples and returns the empirical
// mean, which satisfies Pr[|est − p| ≤ ε·p] ≥ 1−δ.
func EstimateFPRAS(s Sampler, eps, delta, pmin float64, seed int64, workers int) Estimate {
	n := ChernoffSamples(eps, delta, pmin)
	e := EstimateFixed(s, n, seed, workers)
	e.Epsilon, e.Delta = eps, delta
	return e
}

// EstimateStoppingRule implements the Dagum–Karp–Luby–Ross stopping-rule
// algorithm [8] for Bernoulli variables: sample until the running sum of
// successes reaches Υ₁ = 1 + 4(e−2)(1+ε)·ln(2/δ)/ε², and output Υ₁/N.
// For any true mean μ > 0 it guarantees Pr[|est − μ| ≤ ε·μ] ≥ 1−δ with
// E[N] = O(ln(1/δ)/(ε²·μ)) — the "number of samples proportional to
// 1/p" the paper refers to. maxSamples caps the run (0 = no cap; the
// rule does not terminate when μ = 0): on exhaustion the plain mean is
// returned with Converged = false.
func EstimateStoppingRule(s Sampler, eps, delta float64, seed int64, maxSamples int) Estimate {
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		panic(fmt.Sprintf("fpras: invalid parameters eps=%v delta=%v", eps, delta))
	}
	upsilon := 4 * (math.E - 2) * math.Log(2/delta) / (eps * eps)
	upsilon1 := 1 + (1+eps)*upsilon
	rng := rand.New(rand.NewSource(seed))
	sum := 0.0
	n := 0
	for sum < upsilon1 {
		if maxSamples > 0 && n >= maxSamples {
			return Estimate{Value: sum / float64(n), Samples: n, Epsilon: eps, Delta: delta, Converged: false}
		}
		n++
		if s(rng) {
			sum++
		}
	}
	return Estimate{Value: upsilon1 / float64(n), Samples: n, Epsilon: eps, Delta: delta, Converged: true}
}

// The paper's polynomial lower bounds on positive target probabilities,
// used as pmin for EstimateFPRAS. They shrink exponentially in ‖Q‖ (a
// constant in data complexity) and polynomially in ‖D‖, and can
// underflow to 0 for large inputs — callers should then prefer the
// stopping rule.

// LowerBoundRRFreqPrimary is Lemma 5.3 (and 6.3): positive repair (and
// sequence) relative frequencies under primary keys are ≥ 1/(2‖D‖)^‖Q‖.
func LowerBoundRRFreqPrimary(dbSize, querySize int) float64 {
	return math.Pow(2*float64(dbSize), -float64(querySize))
}

// LowerBoundSingletonPrimary is Lemma E.3 (and E.10): under primary
// keys with singleton operations the bound improves to 1/‖D‖^‖Q‖.
func LowerBoundSingletonPrimary(dbSize, querySize int) float64 {
	return math.Pow(float64(dbSize), -float64(querySize))
}

// LowerBoundSingletonFD is Lemma D.8: under arbitrary FDs with
// singleton operations, positive M^{uo,1} probabilities are
// ≥ 1/(e·‖D‖)^‖Q‖.
func LowerBoundSingletonFD(dbSize, querySize int) float64 {
	return math.Pow(math.E*float64(dbSize), -float64(querySize))
}
