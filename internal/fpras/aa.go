package fpras

import (
	"math"
	"math/rand"
)

// This file implements the full 𝒜𝒜 (approximation algorithm) of Dagum,
// Karp, Luby and Ross, "An Optimal Algorithm for Monte Carlo
// Estimation" [reference 8 of the paper] — the estimator whose expected
// sample count is within a constant factor of optimal for any random
// variable on [0,1]. The stopping rule of EstimateStoppingRule is its
// first phase; the full algorithm adds a variance-estimation phase so
// that low-variance targets (probabilities near 0 or 1) cost fewer
// samples than the plain 1/μ rule.
//
// Phases (for Bernoulli Z with mean μ):
//  1. Stopping rule with ε' = min(1/2, √ε) and δ/3 → crude estimate μ̂.
//  2. Estimate ρ = max(σ², εμ) with N = Υ₂·ε/μ̂ sample pairs, where
//     Υ₂ = 2(1+√ε)(1+2√ε)(1+ln(3/2)/ln(2/δ))·Υ and
//     Υ = 4(e−2)ln(2/δ)/ε².
//  3. Final estimate with N = Υ₂·ρ̂/μ̂² samples.
//
// Guarantee: Pr[|μ̃ − μ| ≤ ε·μ] ≥ 1−δ, with E[N] = O(ρ·ln(1/δ)/(ε²μ²)),
// which for Bernoulli variables is O(ln(1/δ)/(ε²·max(μ, ε))) — a factor
// min(1/ε, 1/μ) better than the plain stopping rule when μ ≫ ε.

// EstimateAA runs the optimal Dagum–Karp–Luby–Ross estimator.
// maxSamples caps the total draws across all three phases (0 = no
// cap); on exhaustion the current phase's plain mean is returned with
// Converged = false.
func EstimateAA(s Sampler, eps, delta float64, seed int64, maxSamples int) Estimate {
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		panic("fpras: invalid parameters for EstimateAA")
	}
	rng := rand.New(rand.NewSource(seed))
	budget := maxSamples
	used := 0
	draw := func() (float64, bool) {
		if budget > 0 && used >= budget {
			return 0, false
		}
		used++
		if s(rng) {
			return 1, true
		}
		return 0, true
	}

	upsilon := 4 * (math.E - 2) * math.Log(3/delta) / (eps * eps)
	upsilon2 := 2 * (1 + math.Sqrt(eps)) * (1 + 2*math.Sqrt(eps)) *
		(1 + math.Log(1.5)/math.Log(3/delta)) * upsilon

	// Phase 1: stopping rule with ε' = min(1/2, √ε).
	eps1 := math.Min(0.5, math.Sqrt(eps))
	upsilon1 := 1 + (1+eps1)*4*(math.E-2)*math.Log(3/delta)/(eps1*eps1)
	sum := 0.0
	n1 := 0
	for sum < upsilon1 {
		x, ok := draw()
		if !ok {
			return Estimate{Value: safeDiv(sum, n1), Samples: used, Epsilon: eps, Delta: delta}
		}
		n1++
		sum += x
	}
	muHat := upsilon1 / float64(n1)

	// Phase 2: variance estimation from sample pairs.
	n2 := int(math.Ceil(upsilon2 * eps / muHat))
	if n2 < 1 {
		n2 = 1
	}
	var s2 float64
	for i := 0; i < n2; i++ {
		a, ok := draw()
		if !ok {
			return Estimate{Value: muHat, Samples: used, Epsilon: eps, Delta: delta}
		}
		b, ok := draw()
		if !ok {
			return Estimate{Value: muHat, Samples: used, Epsilon: eps, Delta: delta}
		}
		d := a - b
		s2 += d * d / 2
	}
	rhoHat := math.Max(s2/float64(n2), eps*muHat)

	// Phase 3: final estimate.
	n3 := int(math.Ceil(upsilon2 * rhoHat / (muHat * muHat)))
	if n3 < 1 {
		n3 = 1
	}
	total := 0.0
	for i := 0; i < n3; i++ {
		x, ok := draw()
		if !ok {
			return Estimate{Value: total / float64(i+1), Samples: used, Epsilon: eps, Delta: delta}
		}
		total += x
	}
	return Estimate{
		Value:     total / float64(n3),
		Samples:   used,
		Epsilon:   eps,
		Delta:     delta,
		Converged: true,
	}
}

func safeDiv(a float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return a / float64(n)
}

// EstimateStoppingRuleParallel is a parallel variant of the stopping
// rule with the *identical* statistical behaviour: workers draw
// fixed-size batches from independent sub-streams and return the
// outcome vectors; the sequential rule is then applied to the
// canonical interleaving (worker 0's batch, then worker 1's, ...),
// which is a valid i.i.d. sample stream, stopping mid-batch exactly
// where the sequential rule would. Unused draws are discarded.
// Deterministic per (seed, workers). The returned Samples counts the
// consumed prefix, not the discarded tail.
//
// newSampler is called once per worker: samplers are typically stateful
// (walkers, caches) and not safe for concurrent use, so each worker
// needs its own instance.
func EstimateStoppingRuleParallel(newSampler func() Sampler, eps, delta float64, seed int64, workers, maxSamples int) Estimate {
	if workers <= 1 {
		return EstimateStoppingRule(newSampler(), eps, delta, seed, maxSamples)
	}
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		panic("fpras: invalid parameters")
	}
	upsilon1 := 1 + (1+eps)*4*(math.E-2)*math.Log(2/delta)/(eps*eps)
	const batch = 256
	rngs := make([]*rand.Rand, workers)
	samplers := make([]Sampler, workers)
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(seed + int64(i)*0x5851f42d4c957f2d))
		samplers[i] = newSampler()
	}
	sum := 0.0
	n := 0
	outcomes := make([][]bool, workers)
	for {
		if maxSamples > 0 && n >= maxSamples {
			return Estimate{Value: safeDiv(sum, n), Samples: n, Epsilon: eps, Delta: delta}
		}
		var wg chan int = make(chan int, workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				out := make([]bool, batch)
				for i := range out {
					out[i] = samplers[w](rngs[w])
				}
				outcomes[w] = out
				wg <- w
			}(w)
		}
		for w := 0; w < workers; w++ {
			<-wg
		}
		// Consume the canonical interleaving sequentially.
		for w := 0; w < workers; w++ {
			for _, hit := range outcomes[w] {
				n++
				if hit {
					sum++
				}
				if sum >= upsilon1 {
					return Estimate{Value: upsilon1 / float64(n), Samples: n, Epsilon: eps, Delta: delta, Converged: true}
				}
			}
		}
	}
}
