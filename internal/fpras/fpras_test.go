package fpras

import (
	"math"
	"math/rand"
	"testing"
)

func bernoulli(p float64) Sampler {
	return func(rng *rand.Rand) bool { return rng.Float64() < p }
}

func TestChernoffSamplesFormula(t *testing.T) {
	n := ChernoffSamples(0.1, 0.05, 0.5)
	want := int(math.Ceil(3 * math.Log(40.0) / (0.01 * 0.5)))
	if n != want {
		t.Fatalf("N = %d, want %d", n, want)
	}
	// Smaller pmin needs more samples.
	if ChernoffSamples(0.1, 0.05, 0.01) <= n {
		t.Fatal("sample count must grow as pmin shrinks")
	}
	// Huge requirements are clamped, not overflowed.
	if ChernoffSamples(1e-6, 0.01, 1e-9) != math.MaxInt32 {
		t.Fatal("expected clamp at MaxInt32")
	}
}

func TestChernoffSamplesPanics(t *testing.T) {
	for _, args := range [][3]float64{
		{0, 0.1, 0.5}, {-1, 0.1, 0.5}, {0.1, 0, 0.5}, {0.1, 1, 0.5},
		{0.1, 0.1, 0}, {0.1, 0.1, 2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ChernoffSamples(%v) should panic", args)
				}
			}()
			ChernoffSamples(args[0], args[1], args[2])
		}()
	}
}

func TestEstimateFixedAccuracy(t *testing.T) {
	const p = 0.3
	e := EstimateFixed(bernoulli(p), 200000, 7, 1)
	if math.Abs(e.Value-p) > 0.01 {
		t.Fatalf("estimate %.4f far from %.2f", e.Value, p)
	}
	if e.Samples != 200000 || !e.Converged {
		t.Fatal("metadata wrong")
	}
}

func TestEstimateFixedParallelMatchesBudget(t *testing.T) {
	const p = 0.25
	e := EstimateFixed(bernoulli(p), 100001, 11, 4)
	if e.Samples != 100001 {
		t.Fatalf("Samples = %d", e.Samples)
	}
	if math.Abs(e.Value-p) > 0.02 {
		t.Fatalf("parallel estimate %.4f far from %.2f", e.Value, p)
	}
}

func TestEstimateFixedPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EstimateFixed(bernoulli(0.5), 0, 1, 1)
}

// TestEstimateFPRASGuarantee runs the FPRAS template many times and
// checks the empirical failure rate is below δ.
func TestEstimateFPRASGuarantee(t *testing.T) {
	const (
		p     = 0.2
		eps   = 0.2
		delta = 0.1
	)
	fail := 0
	const runs = 60
	for i := 0; i < runs; i++ {
		e := EstimateFPRAS(bernoulli(p), eps, delta, p, int64(1000+i), 2)
		if math.Abs(e.Value-p) > eps*p {
			fail++
		}
		if e.Epsilon != eps || e.Delta != delta {
			t.Fatal("guarantee metadata missing")
		}
	}
	// Expected failures ≤ δ·runs = 6; allow generous slack.
	if fail > 12 {
		t.Fatalf("failed %d/%d runs; guarantee broken", fail, runs)
	}
}

func TestEstimateStoppingRuleAccuracy(t *testing.T) {
	for _, p := range []float64{0.5, 0.1, 0.01} {
		e := EstimateStoppingRule(bernoulli(p), 0.1, 0.05, 13, 0)
		if !e.Converged {
			t.Fatalf("p=%v did not converge", p)
		}
		if math.Abs(e.Value-p) > 0.15*p {
			t.Fatalf("p=%v: estimate %.5f outside 15%%", p, e.Value)
		}
	}
}

// TestStoppingRuleAdaptiveCost verifies E[N] scales like 1/p: the run
// at p=0.01 must use roughly 10× the samples of the run at p=0.1.
func TestStoppingRuleAdaptiveCost(t *testing.T) {
	hi := EstimateStoppingRule(bernoulli(0.1), 0.2, 0.1, 17, 0)
	lo := EstimateStoppingRule(bernoulli(0.01), 0.2, 0.1, 17, 0)
	ratio := float64(lo.Samples) / float64(hi.Samples)
	if ratio < 5 || ratio > 20 {
		t.Fatalf("sample ratio %.1f, want ≈10 (N_hi=%d, N_lo=%d)", ratio, hi.Samples, lo.Samples)
	}
}

func TestStoppingRuleZeroProbabilityCapped(t *testing.T) {
	e := EstimateStoppingRule(bernoulli(0), 0.1, 0.1, 19, 5000)
	if e.Converged {
		t.Fatal("p=0 cannot converge")
	}
	if e.Value != 0 || e.Samples != 5000 {
		t.Fatalf("capped estimate = %+v", e)
	}
}

func TestStoppingRulePanics(t *testing.T) {
	for _, args := range [][2]float64{{0, 0.1}, {1, 0.1}, {0.1, 0}, {0.1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("EstimateStoppingRule(%v) should panic", args)
				}
			}()
			EstimateStoppingRule(bernoulli(0.5), args[0], args[1], 1, 0)
		}()
	}
}

func TestLowerBounds(t *testing.T) {
	// Lemma 5.3: (2·6)^-1 for a single-atom query over 6 facts.
	if got, want := LowerBoundRRFreqPrimary(6, 1), 1.0/12; math.Abs(got-want) > 1e-12 {
		t.Errorf("RRFreq bound = %v, want %v", got, want)
	}
	// Lemma E.3: 6^-1.
	if got, want := LowerBoundSingletonPrimary(6, 1), 1.0/6; math.Abs(got-want) > 1e-12 {
		t.Errorf("singleton primary bound = %v, want %v", got, want)
	}
	// Lemma D.8: (e·6)^-1.
	if got, want := LowerBoundSingletonFD(6, 1), 1/(math.E*6); math.Abs(got-want) > 1e-12 {
		t.Errorf("singleton FD bound = %v, want %v", got, want)
	}
	// Bounds decay with query size.
	if LowerBoundRRFreqPrimary(10, 3) >= LowerBoundRRFreqPrimary(10, 2) {
		t.Error("bound must shrink with query size")
	}
	// The singleton bound is strictly better (larger) than the pair
	// bound for the primary-key case.
	if LowerBoundSingletonPrimary(10, 2) <= LowerBoundRRFreqPrimary(10, 2) {
		t.Error("singleton bound should dominate")
	}
}

func TestEstimateFixedDeterministicPerSeed(t *testing.T) {
	a := EstimateFixed(bernoulli(0.4), 10000, 42, 1)
	b := EstimateFixed(bernoulli(0.4), 10000, 42, 1)
	if a.Value != b.Value {
		t.Fatal("same seed must give same estimate")
	}
	c := EstimateFixed(bernoulli(0.4), 10000, 43, 1)
	if a.Value == c.Value {
		t.Fatal("different seeds should differ (overwhelmingly)")
	}
}
