package fpras

import (
	"math"
	"testing"
)

func TestChernoffSamplesFormula(t *testing.T) {
	n := ChernoffSamples(0.1, 0.05, 0.5)
	want := int(math.Ceil(3 * math.Log(40.0) / (0.01 * 0.5)))
	if n != want {
		t.Fatalf("N = %d, want %d", n, want)
	}
	// Smaller pmin needs more samples.
	if ChernoffSamples(0.1, 0.05, 0.01) <= n {
		t.Fatal("sample count must grow as pmin shrinks")
	}
	// Huge requirements are clamped, not overflowed.
	if ChernoffSamples(1e-6, 0.01, 1e-9) != math.MaxInt32 {
		t.Fatal("expected clamp at MaxInt32")
	}
}

func TestChernoffSamplesPanics(t *testing.T) {
	for _, args := range [][3]float64{
		{0, 0.1, 0.5}, {-1, 0.1, 0.5}, {0.1, 0, 0.5}, {0.1, 1, 0.5},
		{0.1, 0.1, 0}, {0.1, 0.1, 2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ChernoffSamples(%v) should panic", args)
				}
			}()
			ChernoffSamples(args[0], args[1], args[2])
		}()
	}
}

func TestLowerBounds(t *testing.T) {
	// Lemma 5.3: (2·6)^-1 for a single-atom query over 6 facts.
	if got, want := LowerBoundRRFreqPrimary(6, 1), 1.0/12; math.Abs(got-want) > 1e-12 {
		t.Errorf("RRFreq bound = %v, want %v", got, want)
	}
	// Lemma E.3: 6^-1.
	if got, want := LowerBoundSingletonPrimary(6, 1), 1.0/6; math.Abs(got-want) > 1e-12 {
		t.Errorf("singleton primary bound = %v, want %v", got, want)
	}
	// Lemma D.8: (e·6)^-1.
	if got, want := LowerBoundSingletonFD(6, 1), 1/(math.E*6); math.Abs(got-want) > 1e-12 {
		t.Errorf("singleton FD bound = %v, want %v", got, want)
	}
	// Bounds decay with query size.
	if LowerBoundRRFreqPrimary(10, 3) >= LowerBoundRRFreqPrimary(10, 2) {
		t.Error("bound must shrink with query size")
	}
	// The singleton bound is strictly better (larger) than the pair
	// bound for the primary-key case.
	if LowerBoundSingletonPrimary(10, 2) <= LowerBoundRRFreqPrimary(10, 2) {
		t.Error("singleton bound should dominate")
	}
}
