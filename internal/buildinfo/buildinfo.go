// Package buildinfo identifies the running binary: the VCS commit the
// Go toolchain stamped into it, the Go version and the scheduler
// width. The server exposes these on /varz and as the ocqa_build_info
// metric, matching the fields ocqa-bench stamps into BENCH_*.json, so
// a scrape (or a bench file) always names the binary it came from.
package buildinfo

import (
	"runtime"
	"runtime/debug"
)

// Commit returns the VCS revision recorded by the Go toolchain at
// build time (truncated to 12 hex digits, "-dirty" appended for a
// modified working tree), or "unknown" when no stamp exists — `go
// run` and `go test` binaries are built without VCS stamping.
func Commit() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := "", false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "unknown"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "-dirty"
	}
	return rev
}

// GoVersion returns the running toolchain's version string.
func GoVersion() string { return runtime.Version() }

// MaxProcs returns the effective GOMAXPROCS.
func MaxProcs() int { return runtime.GOMAXPROCS(0) }

// NumCPU returns the host's logical CPU count.
func NumCPU() int { return runtime.NumCPU() }
