package core

import (
	"math/big"
	"math/rand"

	"repro/internal/rel"
)

// This file implements arbitrary repairing Markov chain generators
// (Definition 3.5 in full generality): the caller chooses the
// probability of each available operation, subject only to the
// locality condition that weights depend on the current database
// s(D) — exactly the freedom the original operational framework [5]
// exposes and the intro's source-trust example exercises. The three
// uniform generators of Section 4 are the special cases the paper's
// complexity results are about; weighted chains are provided for
// modelling (e.g. source trust) and carry the Theorem 4.1/4.2 caveat:
// exact answering is ♯P-hard and, for adversarial weights, not even
// approximable — sampling remains efficient, guarantees do not.

// WeightFn assigns a positive weight to every justified operation
// available at the sub-database s; the chain applies op with
// probability weight(op)/Σweights. Weights must be positive and must
// depend only on (s, op) — not on the path taken to s — so that the
// chain is well-defined on the state DAG (every tree node with the
// same residual database gets the same outgoing distribution).
type WeightFn func(d *rel.Database, s rel.Subset, op Op) *big.Rat

// UniformWeights is the WeightFn of M^uo: every operation weighs 1.
func UniformWeights(*rel.Database, rel.Subset, Op) *big.Rat { return big.NewRat(1, 1) }

// TrustWeights builds distrust-proportional weights: each fact carries
// a reliability trust(f) ∈ (0, 1), and the weight of removing a set F
// is Π_{f∈F} (1 − trust(f)) — the less a fact is trusted, the likelier
// every operation deleting it. More elaborate policies (e.g. the
// introduction's exact 3/8–3/8–1/4 split, which tie-breaks between the
// two survivors when both facts are trusted) are written directly as
// WeightFn closures; see the weighted-engine tests.
func TrustWeights(trust func(f rel.Fact) *big.Rat) WeightFn {
	one := big.NewRat(1, 1)
	return func(d *rel.Database, _ rel.Subset, op Op) *big.Rat {
		w := new(big.Rat).Sub(one, trust(d.Fact(op.I)))
		if !op.Singleton() {
			w.Mul(w, new(big.Rat).Sub(one, trust(d.Fact(op.J))))
		}
		return w
	}
}

// ProbWeighted computes the probability that the weighted chain ends
// in a state satisfying pred, exactly, by the same memoised DAG
// recursion as ProbUO but with caller-supplied transition weights. It
// panics if a weight is non-positive.
func (inst *Instance) ProbWeighted(weights WeightFn, singleton bool, limit int, pred func(rel.Subset) bool) (*big.Rat, error) {
	e := &dagEngine{inst: inst, singleton: singleton, limit: limit}
	memo := make(map[string]*big.Rat)
	var recur func(rel.Subset) (*big.Rat, error)
	recur = func(s rel.Subset) (*big.Rat, error) {
		key := s.Key()
		if v, ok := memo[key]; ok {
			return v, nil
		}
		if err := e.charge(); err != nil {
			return nil, err
		}
		ops := e.inst.JustifiedOps(s, e.singleton)
		var res *big.Rat
		if len(ops) == 0 {
			if pred(s) {
				res = big.NewRat(1, 1)
			} else {
				res = new(big.Rat)
			}
		} else {
			total := new(big.Rat)
			ws := make([]*big.Rat, len(ops))
			for i, op := range ops {
				w := weights(inst.D, s, op)
				if w.Sign() <= 0 {
					panic("core: WeightFn must return positive weights")
				}
				ws[i] = w
				total.Add(total, w)
			}
			res = new(big.Rat)
			for i, op := range ops {
				p, err := recur(op.Apply(s))
				if err != nil {
					return nil, err
				}
				term := new(big.Rat).Mul(ws[i], p)
				res.Add(res, term)
			}
			res.Quo(res, total)
		}
		memo[key] = res
		return res, nil
	}
	return recur(inst.Full())
}

// SemanticsWeighted computes the exact repair distribution [[D]]_M of
// the weighted chain by forward probability propagation (the weighted
// analogue of SemanticsUO).
func (inst *Instance) SemanticsWeighted(weights WeightFn, singleton bool, limit int) ([]RepairProb, error) {
	type entry struct {
		s    rel.Subset
		mass *big.Rat
	}
	mass := map[string]*entry{}
	full := inst.Full()
	mass[full.Key()] = &entry{s: full, mass: big.NewRat(1, 1)}
	byCard := map[int][]*entry{full.Count(): {mass[full.Key()]}}
	leaves := map[string]*entry{}
	states := 0
	for card := full.Count(); card >= 0; card-- {
		for _, en := range byCard[card] {
			states++
			if limit > 0 && states > limit {
				return nil, StateLimitError{Limit: limit}
			}
			ops := inst.JustifiedOps(en.s, singleton)
			if len(ops) == 0 {
				k := en.s.Key()
				if l, ok := leaves[k]; ok {
					l.mass.Add(l.mass, en.mass)
				} else {
					leaves[k] = &entry{s: en.s, mass: new(big.Rat).Set(en.mass)}
				}
				continue
			}
			total := new(big.Rat)
			ws := make([]*big.Rat, len(ops))
			for i, op := range ops {
				w := weights(inst.D, en.s, op)
				if w.Sign() <= 0 {
					panic("core: WeightFn must return positive weights")
				}
				ws[i] = w
				total.Add(total, w)
			}
			for i, op := range ops {
				share := new(big.Rat).Mul(en.mass, ws[i])
				share.Quo(share, total)
				t := op.Apply(en.s)
				k := t.Key()
				if nx, ok := mass[k]; ok {
					nx.mass.Add(nx.mass, share)
				} else {
					nx = &entry{s: t, mass: share}
					mass[k] = nx
					byCard[t.Count()] = append(byCard[t.Count()], nx)
				}
			}
		}
	}
	out := make([]RepairProb, 0, len(leaves))
	for _, l := range leaves {
		out = append(out, RepairProb{Repair: l.s, Prob: l.mass})
	}
	sortRepairProbs(out)
	return out, nil
}

// SampleWeighted runs one walk of the weighted chain, returning the
// sequence and its result — the efficient sampler exists for any
// locally computable weights (the Lemma 7.2 argument needs only
// locality), but the paper warns the target probability can be
// exponentially small even for uniform weights over FDs
// (Proposition D.6), so estimates carry no multiplicative guarantee in
// general.
func (inst *Instance) SampleWeighted(weights WeightFn, singleton bool, rng *rand.Rand) (Sequence, rel.Subset) {
	s := inst.Full()
	var seq Sequence
	for {
		ops := inst.JustifiedOps(s, singleton)
		if len(ops) == 0 {
			return seq, s
		}
		// Scale the rational weights to a common denominator so the
		// draw is an exact integer-weighted choice.
		ws := make([]*big.Rat, len(ops))
		lcm := big.NewInt(1)
		for i, op := range ops {
			w := weights(inst.D, s, op)
			if w.Sign() <= 0 {
				panic("core: WeightFn must return positive weights")
			}
			ws[i] = w
			g := new(big.Int).GCD(nil, nil, lcm, w.Denom())
			lcm.Div(lcm, g)
			lcm.Mul(lcm, w.Denom())
		}
		ints := make([]*big.Int, len(ops))
		total := big.NewInt(0)
		for i, w := range ws {
			v := new(big.Int).Div(lcm, w.Denom())
			v.Mul(v, w.Num())
			ints[i] = v
			total.Add(total, v)
		}
		r := new(big.Int).Rand(rng, total)
		op := ops[len(ops)-1]
		for i := range ops {
			if r.Cmp(ints[i]) < 0 {
				op = ops[i]
				break
			}
			r.Sub(r, ints[i])
		}
		seq = append(seq, op)
		s = op.Apply(s)
	}
}
