package core

import (
	"math"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/fd"
	"repro/internal/rel"
)

// introInstance is the introduction's example: Emp(1, Alice) and
// Emp(1, Tom) violating the key on the first attribute.
func introInstance() *Instance {
	sch := rel.MustSchema(rel.NewRelation("Emp", 2))
	sigma := fd.MustSet(sch, fd.New("Emp", []int{0}, []int{1}))
	d := rel.NewDatabase(
		rel.NewFact("Emp", "1", "Alice"),
		rel.NewFact("Emp", "1", "Tom"),
	)
	return NewInstance(d, sigma)
}

func introWeightFn() WeightFn {
	return func(d *rel.Database, _ rel.Subset, op Op) *big.Rat {
		if op.Singleton() {
			return big.NewRat(3, 8)
		}
		return big.NewRat(1, 4)
	}
}

func TestWeightedIntroExample(t *testing.T) {
	inst := introInstance()
	sem, err := inst.SemanticsWeighted(introWeightFn(), false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sem) != 3 {
		t.Fatalf("repairs = %d, want 3", len(sem))
	}
	// ∅ with 1/4, {Alice} with 3/8 (removing Tom), {Tom} with 3/8.
	for _, rp := range sem {
		var want *big.Rat
		switch rp.Repair.Count() {
		case 0:
			want = big.NewRat(1, 4)
		case 1:
			want = big.NewRat(3, 8)
		default:
			t.Fatalf("unexpected repair %v", rp.Repair.Indices())
		}
		if rp.Prob.Cmp(want) != 0 {
			t.Fatalf("repair %v prob = %s, want %s", rp.Repair.Indices(), rp.Prob.RatString(), want.RatString())
		}
	}
}

func TestWeightedUniformMatchesUO(t *testing.T) {
	inst := runningExample()
	pred := func(s rel.Subset) bool { return s.Has(0) }
	want, err := inst.ProbUO(false, 0, pred)
	if err != nil {
		t.Fatal(err)
	}
	got, err := inst.ProbWeighted(UniformWeights, false, 0, pred)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(want) != 0 {
		t.Fatalf("weighted(1) = %s, uo = %s", got.RatString(), want.RatString())
	}
	semUO, err := inst.SemanticsUO(false, 0)
	if err != nil {
		t.Fatal(err)
	}
	semW, err := inst.SemanticsWeighted(UniformWeights, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(semUO) != len(semW) {
		t.Fatal("distribution supports differ")
	}
	for i := range semUO {
		if semUO[i].Prob.Cmp(semW[i].Prob) != 0 {
			t.Fatalf("repair %d: %s vs %s", i, semUO[i].Prob.RatString(), semW[i].Prob.RatString())
		}
	}
}

func TestTrustWeightsBiasTowardDistrusted(t *testing.T) {
	inst := introInstance()
	// Alice's fact (index 0 after sorting: Emp(1,Alice) < Emp(1,Tom))
	// is barely trusted; Tom's is solid.
	trust := func(f rel.Fact) *big.Rat {
		if f.Arg(1) == "Alice" {
			return big.NewRat(1, 10)
		}
		return big.NewRat(9, 10)
	}
	sem, err := inst.SemanticsWeighted(TrustWeights(trust), false, 0)
	if err != nil {
		t.Fatal(err)
	}
	probs := map[int]*big.Rat{}
	for _, rp := range sem {
		probs[rp.Repair.Count()] = rp.Prob
		if rp.Repair.Count() == 1 {
			// Which fact survived?
			if rp.Repair.Has(1) { // Tom survived (Alice removed)
				probs[-1] = rp.Prob
			} else {
				probs[-2] = rp.Prob // Alice survived
			}
		}
	}
	// Weights: -Alice: 9/10, -Tom: 1/10, -both: 9/100 → Tom-survives
	// must dominate Alice-survives.
	if probs[-1].Cmp(probs[-2]) <= 0 {
		t.Fatalf("Tom-survives %s should exceed Alice-survives %s",
			probs[-1].RatString(), probs[-2].RatString())
	}
}

func TestSampleWeightedMatchesExact(t *testing.T) {
	inst := runningExample()
	// A deliberately skewed weight: pairs weigh 5, singletons 1.
	weights := func(_ *rel.Database, _ rel.Subset, op Op) *big.Rat {
		if op.Singleton() {
			return big.NewRat(1, 1)
		}
		return big.NewRat(5, 1)
	}
	want, err := inst.SemanticsWeighted(weights, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(197))
	const n = 60000
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		seq, res := inst.SampleWeighted(weights, false, rng)
		if !inst.IsComplete(seq, false) {
			t.Fatal("weighted walk produced an incomplete sequence")
		}
		counts[res.Key()]++
	}
	for _, rp := range want {
		p, _ := rp.Prob.Float64()
		got := float64(counts[rp.Repair.Key()]) / n
		sigma := math.Sqrt(p*(1-p)/n) + 1e-12
		if math.Abs(got-p) > 5*sigma {
			t.Errorf("repair %v: sampled %.4f, exact %.4f", rp.Repair.Indices(), got, p)
		}
	}
}

func TestWeightedPanicsOnNonPositive(t *testing.T) {
	inst := introInstance()
	bad := func(*rel.Database, rel.Subset, Op) *big.Rat { return new(big.Rat) }
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero weight")
		}
	}()
	_, _ = inst.ProbWeighted(bad, false, 0, func(rel.Subset) bool { return true })
}

func TestWeightedSingletonMode(t *testing.T) {
	inst := runningExample()
	pred := func(s rel.Subset) bool { return s.Has(0) }
	want, err := inst.ProbUO(true, 0, pred)
	if err != nil {
		t.Fatal(err)
	}
	got, err := inst.ProbWeighted(UniformWeights, true, 0, pred)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(want) != 0 {
		t.Fatalf("weighted singleton = %s, uo,1 = %s", got.RatString(), want.RatString())
	}
}
