package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/parse"
	"repro/internal/rel"
)

// randomMultiInstance builds a small inconsistent instance plus a
// two-variable query with several candidate answers.
func randomMultiInstance(t *testing.T, rng *rand.Rand) (*Instance, *cq.Query) {
	t.Helper()
	var text string
	n := 6 + rng.Intn(5)
	for i := 0; i < n; i++ {
		text += fmt.Sprintf("R(k%d,v%d)\n", rng.Intn(4), rng.Intn(3))
	}
	for i := 0; i < 3; i++ {
		text += fmt.Sprintf("S(v%d,w%d)\n", rng.Intn(3), rng.Intn(2))
	}
	db, sch, err := parse.ParseDatabase(text)
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := parse.ParseFDs("R: A1 -> A2\nS: A1 -> A2", sch)
	if err != nil {
		t.Fatal(err)
	}
	q := cq.MustNew([]string{"x", "y"},
		cq.NewAtom("R", cq.Var("k"), cq.Var("x")),
		cq.NewAtom("S", cq.Var("x"), cq.Var("y")))
	return NewInstance(db, sigma), q
}

func randomSubset(rng *rand.Rand, n int) rel.Subset {
	s := rel.NewSubset(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			s.Set(i)
		}
	}
	return s
}

// TestMultiPredTuplesMatchAnswers: the compiled target list is exactly
// Q(D) in Answers order.
func TestMultiPredTuplesMatchAnswers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		inst, q := randomMultiInstance(t, rng)
		mp := inst.CompileMultiPred(q, 0)
		want := q.Answers(inst.D)
		got := mp.Tuples()
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d tuples, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if !got[i].Equal(want[i]) {
				t.Fatalf("trial %d: tuple %d = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestMultiPredMatchesPerTuplePredicates: one Eval call agrees with
// the per-tuple WitnessPred and EntailPred on random subsets — with
// and without forcing the overflow fallback.
func TestMultiPredMatchesPerTuplePredicates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		inst, q := randomMultiInstance(t, rng)
		for _, maxImages := range []int{0, 1} { // 1 forces overflow for most tuples
			mp := inst.CompileMultiPred(q, maxImages)
			tuples := mp.Tuples()
			out := make([]bool, len(tuples))
			for k := 0; k < 20; k++ {
				s := randomSubset(rng, inst.D.Len())
				mp.Eval(s, out)
				for ti, c := range tuples {
					if want := inst.EntailPred(q, c)(s); out[ti] != want {
						t.Fatalf("trial %d maxImages=%d: Eval[%v]=%v on %v, EntailPred says %v",
							trial, maxImages, c, out[ti], s.Indices(), want)
					}
					if fast, ok := inst.WitnessPred(q, c, 0); ok {
						if got := fast(s); got != out[ti] {
							t.Fatalf("trial %d: WitnessPred disagrees with Eval for %v", trial, c)
						}
					}
				}
			}
			if maxImages == 1 && mp.OverflowCount() == 0 && mp.Witnesses() > len(tuples) {
				t.Fatalf("trial %d: expected overflow with cap 1", trial)
			}
		}
	}
}

// TestConsistentAnswersSharedMatchesExactProbability: the shared exact
// pass (one Semantics walk marginalised over all tuples) returns
// exactly the per-tuple ExactProbability rationals, for every
// generator and singleton variant.
func TestConsistentAnswersSharedMatchesExactProbability(t *testing.T) {
	inst, q := mustInstance(t)
	for _, gen := range []Generator{UniformRepairs, UniformSequences, UniformOperations} {
		for _, singleton := range []bool{false, true} {
			mode := Mode{Gen: gen, Singleton: singleton}
			ans, err := inst.ConsistentAnswers(mode, q, 0)
			if err != nil {
				t.Fatalf("%v: %v", mode, err)
			}
			if len(ans) == 0 {
				t.Fatalf("%v: no answers", mode)
			}
			for _, a := range ans {
				want, err := inst.ExactProbability(mode, q, a.Tuple, 0)
				if err != nil {
					t.Fatalf("%v %v: %v", mode, a.Tuple, err)
				}
				if a.Prob.Cmp(want) != 0 {
					t.Errorf("%v %v: shared pass %v, per-tuple %v", mode, a.Tuple, a.Prob, want)
				}
			}
		}
	}
}

// mustInstance builds the shared small fixture of the exact
// differential test: two conflicting blocks and a clean fact, with a
// unary query over the values.
func mustInstance(t *testing.T) (*Instance, *cq.Query) {
	t.Helper()
	db, sch, err := parse.ParseDatabase("R(1,a)\nR(1,b)\nR(2,b)\nR(2,c)\nR(3,d)")
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := parse.ParseFDs("R: A1 -> A2", sch)
	if err != nil {
		t.Fatal(err)
	}
	q := cq.MustNew([]string{"x"}, cq.NewAtom("R", cq.Var("k"), cq.Var("x")))
	return NewInstance(db, sigma), q
}
