package core

import (
	"sort"

	"repro/internal/rel"
)

// This file implements the constructive direction (⊇) of Lemma 5.4
// (and Lemma E.4 for singleton operations): given a candidate repair
// D' — an independent set of each conflict component, with trivial
// facts kept — it builds an explicit complete repairing sequence s with
// s(D) = D'. The construction is the proof's stratification: per
// component, facts are layered by distance from the kept set (or from
// an arbitrary anchor fact when the component is emptied), and removed
// farthest-layer first, so every removal is justified by a conflict
// with a not-yet-removed fact one layer closer.
//
// The resulting sequence doubles as an *explanation*: it exhibits the
// operational process that produces a given repair.

// WitnessSequence constructs a complete repairing sequence whose
// result is the given candidate repair, or ok=false when the subset is
// not a candidate repair for the operation space (IsCandidateRepair
// fails). With singleton set, the sequence uses only single-fact
// removals (possible exactly when the repair leaves every nontrivial
// component non-empty, per Lemma E.4).
func (inst *Instance) WitnessSequence(repair rel.Subset, singleton bool) (Sequence, bool) {
	if !inst.IsCandidateRepair(repair, singleton) {
		return nil, false
	}
	g := inst.ConflictGraph()
	var seq Sequence
	for _, comp := range g.Components() {
		if len(comp) == 1 && g.Degree(comp[0]) == 0 {
			continue // trivial component: nothing to remove
		}
		var kept []int
		for _, f := range comp {
			if repair.Has(f) {
				kept = append(kept, f)
			}
		}
		if len(kept) > 0 {
			seq = append(seq, inst.stratifiedRemoval(g, comp, kept, -1)...)
			continue
		}
		// Empty the component: anchor at its smallest fact (Case 2 of
		// the Lemma 5.4 proof); only reachable with pair operations.
		seq = append(seq, inst.stratifiedRemoval(g, comp, []int{comp[0]}, comp[0])...)
	}
	return seq, true
}

// stratifiedRemoval removes every fact of the component outside the
// kept layer L0, farthest stratum first. When anchor ≥ 0, the kept
// "layer" is the single anchor fact which must itself be removed at
// the end, paired with the last fact of stratum L1.
func (inst *Instance) stratifiedRemoval(g interface {
	Neighbors(int) []int
}, comp []int, l0 []int, anchor int) Sequence {
	inComp := make(map[int]bool, len(comp))
	for _, f := range comp {
		inComp[f] = true
	}
	layer := make(map[int]int, len(comp))
	for _, f := range l0 {
		layer[f] = 0
	}
	// BFS strata over the conflict graph restricted to the component.
	frontier := append([]int(nil), l0...)
	var strata [][]int
	for depth := 1; len(frontier) > 0; depth++ {
		var next []int
		for _, f := range frontier {
			for _, nb := range g.Neighbors(f) {
				if !inComp[nb] {
					continue
				}
				if _, seen := layer[nb]; !seen {
					layer[nb] = depth
					next = append(next, nb)
				}
			}
		}
		sort.Ints(next)
		if len(next) > 0 {
			strata = append(strata, next)
		}
		frontier = next
	}
	var seq Sequence
	// Remove strata L_n .. L_2 (and L_1 entirely when anchor < 0).
	last := 0
	if anchor >= 0 {
		last = 1
	}
	for i := len(strata) - 1; i >= last; i-- {
		for _, f := range strata[i] {
			seq = append(seq, Op{I: f, J: -1})
		}
	}
	if anchor >= 0 {
		// L_1 exists because the component is nontrivially connected.
		l1 := strata[0]
		for _, f := range l1[:len(l1)-1] {
			seq = append(seq, Op{I: f, J: -1})
		}
		seq = append(seq, pairOpOf(l1[len(l1)-1], anchor))
	}
	return seq
}

func pairOpOf(a, b int) Op {
	if a > b {
		a, b = b, a
	}
	return Op{I: a, J: b}
}
