package core

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/fd"
	"repro/internal/rel"
)

// runningExample is Example 3.6: D = {f1, f2, f3} over R/3 with
// f1 = R(a1,b1,c1), f2 = R(a1,b2,c2), f3 = R(a2,b1,c2) and
// Σ = {R: A→B, R: C→B}. The sorted fact order matches f1, f2, f3.
func runningExample() *Instance {
	d := rel.NewDatabase(
		rel.NewFact("R", "a1", "b1", "c1"),
		rel.NewFact("R", "a1", "b2", "c2"),
		rel.NewFact("R", "a2", "b1", "c2"),
	)
	sch := rel.MustSchema(rel.NewRelation("R", 3))
	sigma := fd.MustSet(sch,
		fd.New("R", []int{0}, []int{1}),
		fd.New("R", []int{2}, []int{1}),
	)
	return NewInstance(d, sigma)
}

// figure2 is the database of Figure 2 over R/2 with the primary key
// R: A1 → A2. Blocks: {f11,f12,f13}, {f21}, {f31,f32}.
func figure2() *Instance {
	d := rel.NewDatabase(
		rel.NewFact("R", "a1", "b1"),
		rel.NewFact("R", "a1", "b2"),
		rel.NewFact("R", "a1", "b3"),
		rel.NewFact("R", "a2", "b1"),
		rel.NewFact("R", "a3", "b1"),
		rel.NewFact("R", "a3", "b2"),
	)
	sch := rel.MustSchema(rel.NewRelation("R", 2))
	sigma := fd.MustSet(sch, fd.New("R", []int{0}, []int{1}))
	return NewInstance(d, sigma)
}

func ratEq(t *testing.T, got *big.Rat, num, den int64, what string) {
	t.Helper()
	want := big.NewRat(num, den)
	if got.Cmp(want) != 0 {
		t.Fatalf("%s = %s, want %s", what, got.RatString(), want.RatString())
	}
}

func TestConflictStructureRunningExample(t *testing.T) {
	inst := runningExample()
	pairs := inst.ConflictPairs()
	if len(pairs) != 2 || pairs[0] != [2]int{0, 1} || pairs[1] != [2]int{1, 2} {
		t.Fatalf("pairs = %v", pairs)
	}
	if inst.ConflictGraphDegree() != 2 {
		t.Fatalf("degree = %d", inst.ConflictGraphDegree())
	}
	if inst.IsConsistent(inst.Full()) {
		t.Fatal("D should be inconsistent")
	}
}

func TestJustifiedOpsRunningExample(t *testing.T) {
	inst := runningExample()
	ops := inst.JustifiedOps(inst.Full(), false)
	// Singletons -f1, -f2, -f3 and pairs -{f1,f2}, -{f2,f3}.
	if len(ops) != 5 {
		t.Fatalf("got %d ops, want 5: %v", len(ops), ops)
	}
	if inst.CountJustifiedOps(inst.Full(), false) != 5 {
		t.Fatal("CountJustifiedOps mismatch")
	}
	opsS := inst.JustifiedOps(inst.Full(), true)
	if len(opsS) != 3 {
		t.Fatalf("singleton ops = %v", opsS)
	}
	if inst.CountJustifiedOps(inst.Full(), true) != 3 {
		t.Fatal("CountJustifiedOps singleton mismatch")
	}
	// After removing f2, the database is consistent: no ops.
	s := inst.Full().WithoutIndices(1)
	if len(inst.JustifiedOps(s, false)) != 0 {
		t.Fatal("consistent state must have no justified ops")
	}
}

func TestOpStringAndApply(t *testing.T) {
	inst := runningExample()
	single := Op{I: 0, J: -1}
	pair := Op{I: 0, J: 1}
	if single.String(inst.D) != "-R(a1,b1,c1)" {
		t.Fatalf("String = %q", single.String(inst.D))
	}
	if pair.String(inst.D) != "-{R(a1,b1,c1),R(a1,b2,c2)}" {
		t.Fatalf("String = %q", pair.String(inst.D))
	}
	s := pair.Apply(inst.Full())
	if s.Count() != 1 || !s.Has(2) {
		t.Fatalf("Apply wrong: %v", s.Indices())
	}
}

func TestIsRepairingAndComplete(t *testing.T) {
	inst := runningExample()
	f1, f2, f3 := Op{I: 0, J: -1}, Op{I: 1, J: -1}, Op{I: 2, J: -1}
	pair23 := Op{I: 1, J: 2}
	// -f1, -f2 is repairing and complete.
	if !inst.IsComplete(Sequence{f1, f2}, false) {
		t.Error("-f1,-f2 should be complete")
	}
	// -f2 alone resolves everything.
	if !inst.IsComplete(Sequence{f2}, false) {
		t.Error("-f2 should be complete")
	}
	// -f1 alone is repairing but not complete.
	if !inst.IsRepairing(Sequence{f1}, false) || inst.IsComplete(Sequence{f1}, false) {
		t.Error("-f1 should be repairing but incomplete")
	}
	// -f1, -f3 leaves {f2}: wait, f2 conflicts with nothing once f1, f3
	// are gone; it IS complete. Check -f3, -f1 then -f2 unjustified:
	if inst.IsRepairing(Sequence{f3, f1, f2}, false) {
		t.Error("after -f3,-f1 the database {f2} is consistent; -f2 unjustified")
	}
	// Pair removal of a non-violating pair is not justified.
	if inst.IsRepairing(Sequence{{I: 0, J: 2}}, false) {
		t.Error("-{f1,f3} is not justified")
	}
	// Singleton mode rejects pair removals.
	if inst.IsRepairing(Sequence{pair23}, true) {
		t.Error("pair op in singleton mode")
	}
	if !inst.IsRepairing(Sequence{pair23}, false) {
		t.Error("-{f2,f3} should be justified")
	}
	// ε is repairing and, for inconsistent D, incomplete.
	if !inst.IsRepairing(Sequence{}, false) || inst.IsComplete(Sequence{}, false) {
		t.Error("ε wrong")
	}
}

func TestSequenceString(t *testing.T) {
	inst := runningExample()
	if got := inst.SequenceString(Sequence{}); got != "ε" {
		t.Fatalf("empty = %q", got)
	}
	s := Sequence{{I: 0, J: -1}, {I: 1, J: 2}}
	want := "-R(a1,b1,c1), -{R(a1,b2,c2),R(a2,b1,c2)}"
	if got := inst.SequenceString(s); got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

// TestFigure1TreeShape reproduces Figure 1: the repairing Markov chain
// of the running example has 12 nodes (ε, 5 depth-1 nodes, 3+3 leaves
// below -f1 and -f3), 9 leaves, and the CRS subtree counts of Section 4
// (|CRS_ε| = 9, |CRS_{-f1}| = |CRS_{-f3}| = 3).
func TestFigure1TreeShape(t *testing.T) {
	inst := runningExample()
	tree, err := inst.BuildTree(false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tree.NodeCount != 12 {
		t.Errorf("NodeCount = %d, want 12 (= |RS(D,Σ)|)", tree.NodeCount)
	}
	if len(tree.Leaves) != 9 {
		t.Errorf("leaves = %d, want 9 (= |CRS(D,Σ)|)", len(tree.Leaves))
	}
	if tree.Root.SubtreeLeaves().Int64() != 9 {
		t.Errorf("|CRS_ε| = %v, want 9", tree.Root.SubtreeLeaves())
	}
	if len(tree.Root.Children) != 5 {
		t.Fatalf("root children = %d, want 5", len(tree.Root.Children))
	}
	// Our deterministic child order: -f1, -f2, -f3, -{f1,f2}, -{f2,f3}.
	wantCRS := []int64{3, 1, 3, 1, 1}
	wantCan := []int64{3, 1, 1, 0, 0}
	for i, c := range tree.Root.Children {
		if c.SubtreeLeaves().Int64() != wantCRS[i] {
			t.Errorf("child %d |CRS| = %v, want %d", i, c.SubtreeLeaves(), wantCRS[i])
		}
		if c.CanonicalLeaves().Int64() != wantCan[i] {
			t.Errorf("child %d |CanCRS| = %v, want %d", i, c.CanonicalLeaves(), wantCan[i])
		}
	}
	if tree.CanonicalLeafCount().Int64() != 5 {
		t.Errorf("|CanCRS| = %v, want 5 = |CORep|", tree.CanonicalLeafCount())
	}
}

// TestFigure1Probabilities checks the worked probabilities of Section 4
// for all three generators.
func TestFigure1Probabilities(t *testing.T) {
	inst := runningExample()
	tree, err := inst.BuildTree(false, 0)
	if err != nil {
		t.Fatal(err)
	}
	// M^us: root transitions 3/9, 1/9, 3/9, 1/9, 1/9; every leaf 1/9.
	wantUS := []*big.Rat{big.NewRat(1, 3), big.NewRat(1, 9), big.NewRat(1, 3), big.NewRat(1, 9), big.NewRat(1, 9)}
	for i := range tree.Root.Children {
		if got := tree.TransitionProb(UniformSequences, tree.Root, i); got.Cmp(wantUS[i]) != 0 {
			t.Errorf("us P(ε, child %d) = %s, want %s", i, got.RatString(), wantUS[i].RatString())
		}
	}
	for i, p := range tree.LeafDistribution(UniformSequences) {
		if p.Cmp(big.NewRat(1, 9)) != 0 {
			t.Errorf("us leaf %d prob = %s, want 1/9", i, p.RatString())
		}
	}
	// M^ur: root transitions 3/5, 1/5, 1/5, 0, 0; reachable leaves are
	// the 5 canonical ones, each with probability 1/5.
	wantUR := []*big.Rat{big.NewRat(3, 5), big.NewRat(1, 5), big.NewRat(1, 5), new(big.Rat), new(big.Rat)}
	for i := range tree.Root.Children {
		if got := tree.TransitionProb(UniformRepairs, tree.Root, i); got.Cmp(wantUR[i]) != 0 {
			t.Errorf("ur P(ε, child %d) = %s, want %s", i, got.RatString(), wantUR[i].RatString())
		}
	}
	rl := tree.ReachableLeaves(UniformRepairs)
	if len(rl) != 5 {
		t.Fatalf("ur reachable leaves = %d, want 5", len(rl))
	}
	dist := tree.LeafDistribution(UniformRepairs)
	for _, i := range rl {
		if dist[i].Cmp(big.NewRat(1, 5)) != 0 {
			t.Errorf("ur leaf %d prob = %s, want 1/5", i, dist[i].RatString())
		}
		if !tree.Leaves[i].Canonical() {
			t.Errorf("reachable leaf %d not canonical", i)
		}
	}
	// M^uo: root transitions all 1/5; depth-1 inner nodes have 3
	// children with probability 1/3.
	for i := range tree.Root.Children {
		if got := tree.TransitionProb(UniformOperations, tree.Root, i); got.Cmp(big.NewRat(1, 5)) != 0 {
			t.Errorf("uo P(ε, child %d) = %s, want 1/5", i, got.RatString())
		}
	}
	for _, c := range tree.Root.Children {
		for i := range c.Children {
			if got := tree.TransitionProb(UniformOperations, c, i); got.Cmp(big.NewRat(1, 3)) != 0 {
				t.Errorf("uo inner transition = %s, want 1/3", got.RatString())
			}
		}
	}
}

// TestRunningExampleSemantics checks [[D]]_M for all three generators
// against hand-computed distributions.
func TestRunningExampleSemantics(t *testing.T) {
	inst := runningExample()
	keyOf := func(idx ...int) string {
		s := rel.NewSubset(3)
		for _, i := range idx {
			s.Set(i)
		}
		return s.Key()
	}
	empty, f1, f2, f3, f13 := keyOf(), keyOf(0), keyOf(1), keyOf(2), keyOf(0, 2)

	check := func(got []RepairProb, want map[string]*big.Rat, label string) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: %d repairs, want %d", label, len(got), len(want))
		}
		sum := new(big.Rat)
		for _, rp := range got {
			w, ok := want[rp.Repair.Key()]
			if !ok {
				t.Fatalf("%s: unexpected repair %v", label, rp.Repair.Indices())
			}
			if rp.Prob.Cmp(w) != 0 {
				t.Errorf("%s: repair %v prob = %s, want %s", label, rp.Repair.Indices(), rp.Prob.RatString(), w.RatString())
			}
			sum.Add(sum, rp.Prob)
		}
		if sum.Cmp(big.NewRat(1, 1)) != 0 {
			t.Errorf("%s: probabilities sum to %s", label, sum.RatString())
		}
	}

	// M^ur: uniform 1/5 over the five candidate repairs.
	ur, err := inst.SemanticsUR(false, 0)
	if err != nil {
		t.Fatal(err)
	}
	check(ur, map[string]*big.Rat{
		empty: big.NewRat(1, 5), f1: big.NewRat(1, 5), f2: big.NewRat(1, 5),
		f3: big.NewRat(1, 5), f13: big.NewRat(1, 5),
	}, "ur")

	// M^us: sequence counts per repair: ∅:2, {f1}:2, {f2}:2, {f3}:2,
	// {f1,f3}:1, out of 9.
	us, err := inst.SemanticsUS(false, 0)
	if err != nil {
		t.Fatal(err)
	}
	check(us, map[string]*big.Rat{
		empty: big.NewRat(2, 9), f1: big.NewRat(2, 9), f2: big.NewRat(2, 9),
		f3: big.NewRat(2, 9), f13: big.NewRat(1, 9),
	}, "us")

	// M^uo: hand-computed: ∅:2/15, {f1}:4/15, {f2}:2/15, {f3}:4/15,
	// {f1,f3}:3/15.
	uo, err := inst.SemanticsUO(false, 0)
	if err != nil {
		t.Fatal(err)
	}
	check(uo, map[string]*big.Rat{
		empty: big.NewRat(2, 15), f1: big.NewRat(4, 15), f2: big.NewRat(2, 15),
		f3: big.NewRat(4, 15), f13: big.NewRat(1, 5),
	}, "uo")
}

// TestTreeMatchesDAGEngines cross-validates the explicit tree against
// the DAG engines on the running example.
func TestTreeMatchesDAGEngines(t *testing.T) {
	inst := runningExample()
	tree, err := inst.BuildTree(false, 0)
	if err != nil {
		t.Fatal(err)
	}
	q := cq.MustNew(nil, cq.NewAtom("R", cq.Var("x"), cq.Const("b1"), cq.Var("y")))
	pred := inst.EntailPred(q, cq.Tuple{})

	wantUO, err := inst.ProbUO(false, 0, pred)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Probability(UniformOperations, pred); got.Cmp(wantUO) != 0 {
		t.Errorf("uo: tree %s vs dag %s", got.RatString(), wantUO.RatString())
	}
	wantUS, err := inst.SRFreq(false, 0, pred)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Probability(UniformSequences, pred); got.Cmp(wantUS) != 0 {
		t.Errorf("us: tree %s vs dag %s", got.RatString(), wantUS.RatString())
	}
	wantUR, err := inst.RRFreq(false, 0, pred)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Probability(UniformRepairs, pred); got.Cmp(wantUR) != 0 {
		t.Errorf("ur: tree %s vs component engine %s", got.RatString(), wantUR.RatString())
	}
	// Known values: rrfreq = 3/5 ({f1},{f3},{f1,f3} entail), srfreq =
	// 5/9, uo = 11/15.
	ratEq(t, wantUR, 3, 5, "rrfreq")
	ratEq(t, wantUS, 5, 9, "srfreq")
	ratEq(t, wantUO, 11, 15, "P_uo")
}

func TestCandidateRepairsRunningExample(t *testing.T) {
	inst := runningExample()
	if got := inst.CountCandidateRepairs(false); got.Int64() != 5 {
		t.Fatalf("|CORep| = %v, want 5", got)
	}
	var repairs []rel.Subset
	inst.CandidateRepairs(false, func(s rel.Subset) bool {
		repairs = append(repairs, s)
		return true
	})
	if len(repairs) != 5 {
		t.Fatalf("enumerated %d repairs", len(repairs))
	}
	for _, r := range repairs {
		if !inst.IsCandidateRepair(r, false) {
			t.Errorf("enumerated non-repair %v", r.Indices())
		}
		if !inst.IsConsistent(r) {
			t.Errorf("inconsistent repair %v", r.Indices())
		}
	}
	// Candidate repairs equal the distinct tree-leaf results.
	tree, err := inst.BuildTree(false, 0)
	if err != nil {
		t.Fatal(err)
	}
	leafResults := map[string]bool{}
	for _, l := range tree.Leaves {
		leafResults[l.State.Key()] = true
	}
	if len(leafResults) != 5 {
		t.Fatalf("distinct leaf results = %d", len(leafResults))
	}
	for _, r := range repairs {
		if !leafResults[r.Key()] {
			t.Errorf("repair %v not reachable in tree", r.Indices())
		}
	}
}

func TestSingletonVariantRunningExample(t *testing.T) {
	inst := runningExample()
	// CORep^1: nonempty independent sets of the path f1-f2-f3:
	// {f1},{f2},{f3},{f1,f3} — the empty repair is unreachable.
	if got := inst.CountCandidateRepairs(true); got.Int64() != 4 {
		t.Fatalf("|CORep^1| = %v, want 4", got)
	}
	tree, err := inst.BuildTree(true, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Singleton sequences: -f1 then (-f2 or -f3); -f2; -f3 then (-f1 or
	// -f2): total 5.
	if len(tree.Leaves) != 5 {
		t.Fatalf("singleton |CRS^1| = %d, want 5", len(tree.Leaves))
	}
	n, err := inst.CountCRS(true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n.Int64() != 5 {
		t.Fatalf("CountCRS singleton = %v, want 5", n)
	}
	if tree.CanonicalLeafCount().Int64() != 4 {
		t.Fatalf("|CanCRS^1| = %v, want 4", tree.CanonicalLeafCount())
	}
}

func TestFigure2Counts(t *testing.T) {
	inst := figure2()
	// Example B.2: 12 candidate repairs.
	if got := inst.CountCandidateRepairs(false); got.Int64() != 12 {
		t.Fatalf("|CORep| = %v, want 12", got)
	}
	// Example C.2: 99 complete repairing sequences.
	n, err := inst.CountCRS(false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n.Int64() != 99 {
		t.Fatalf("|CRS| = %v, want 99", n)
	}
	// Singleton: |CORep^1| = 3·2 = 6 and |CRS^1| = 3!·2!·(3 choose 2
	// interleavings) = 36.
	if got := inst.CountCandidateRepairs(true); got.Int64() != 6 {
		t.Fatalf("|CORep^1| = %v, want 6", got)
	}
	n1, err := inst.CountCRS(true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n1.Int64() != 36 {
		t.Fatalf("|CRS^1| = %v, want 36", n1)
	}
}

func TestFigure2Frequencies(t *testing.T) {
	inst := figure2()
	// Example B.3: Q = Ans(x) :- R(a1,x), tuple (b1): rrfreq = 1/4.
	q := cq.MustNew([]string{"x"}, cq.NewAtom("R", cq.Const("a1"), cq.Var("x")))
	pred := inst.EntailPred(q, cq.Tuple{"b1"})
	rr, err := inst.RRFreq(false, 0, pred)
	if err != nil {
		t.Fatal(err)
	}
	ratEq(t, rr, 1, 4, "rrfreq Figure 2")
	// Example C.3: srfreq = 24/99 = 8/33.
	sr, err := inst.SRFreq(false, 0, pred)
	if err != nil {
		t.Fatal(err)
	}
	ratEq(t, sr, 24, 99, "srfreq Figure 2")
}

func TestExactProbabilityDispatch(t *testing.T) {
	inst := figure2()
	q := cq.MustNew([]string{"x"}, cq.NewAtom("R", cq.Const("a1"), cq.Var("x")))
	c := cq.Tuple{"b1"}
	pr, err := inst.ExactProbability(Mode{Gen: UniformRepairs}, q, c, 0)
	if err != nil {
		t.Fatal(err)
	}
	ratEq(t, pr, 1, 4, "ExactProbability ur")
	ps, err := inst.ExactProbability(Mode{Gen: UniformSequences}, q, c, 0)
	if err != nil {
		t.Fatal(err)
	}
	ratEq(t, ps, 24, 99, "ExactProbability us")
	po, err := inst.ExactProbability(Mode{Gen: UniformOperations}, q, c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if po.Sign() <= 0 || po.Cmp(big.NewRat(1, 1)) >= 0 {
		t.Fatalf("P_uo = %s out of range", po.RatString())
	}
}

func TestConsistentAnswers(t *testing.T) {
	inst := figure2()
	q := cq.MustNew([]string{"x"}, cq.NewAtom("R", cq.Const("a1"), cq.Var("x")))
	ans, err := inst.ConsistentAnswers(Mode{Gen: UniformRepairs}, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	// b1, b2, b3 each appear in 3 of 12 repairs: probability 1/4 each.
	if len(ans) != 3 {
		t.Fatalf("answers = %v", ans)
	}
	for _, a := range ans {
		ratEq(t, a.Prob, 1, 4, "answer "+a.Tuple.String())
	}
}

// TestPropD6Family validates Proposition D.6: for D_n = {R(0,0,0)} ∪
// {R(0,1,i)} with Σ = {R: A1 → A2}, 0 < P_{uo,Q}(D_n) ≤ 1/2^{n-1} for
// Q = Ans() :- R(0,0,0).
func TestPropD6Family(t *testing.T) {
	sch := rel.MustSchema(rel.NewRelation("R", 3))
	sigma := fd.MustSet(sch, fd.New("R", []int{0}, []int{1}))
	q := cq.MustNew(nil, cq.NewAtom("R", cq.Const("0"), cq.Const("0"), cq.Const("0")))
	for n := 1; n <= 7; n++ {
		facts := []rel.Fact{rel.NewFact("R", "0", "0", "0")}
		for i := 1; i < n; i++ {
			facts = append(facts, rel.NewFact("R", "0", "1", itoa(i)))
		}
		d := rel.NewDatabase(facts...)
		inst := NewInstance(d, sigma)
		p, err := inst.ProbUO(false, 0, inst.EntailPred(q, cq.Tuple{}))
		if err != nil {
			t.Fatal(err)
		}
		if p.Sign() <= 0 {
			t.Fatalf("n=%d: P_uo = %s, want > 0", n, p.RatString())
		}
		bound := new(big.Rat).SetFrac(big.NewInt(1), new(big.Int).Lsh(big.NewInt(1), uint(n-1)))
		if p.Cmp(bound) > 0 {
			t.Fatalf("n=%d: P_uo = %s exceeds 1/2^{n-1} = %s", n, p.RatString(), bound.RatString())
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestStateLimit(t *testing.T) {
	inst := figure2()
	if _, err := inst.CountCRS(false, 3); err == nil {
		t.Error("CountCRS should hit the state limit")
	} else if _, ok := err.(StateLimitError); !ok {
		t.Errorf("error type = %T", err)
	}
	if _, err := inst.BuildTree(false, 4); err == nil {
		t.Error("BuildTree should hit the node limit")
	}
	if _, err := inst.RRFreq(false, 2, func(rel.Subset) bool { return true }); err == nil {
		t.Error("RRFreq should hit the repair limit")
	}
	if _, err := inst.SemanticsUO(false, 2); err == nil {
		t.Error("SemanticsUO should hit the state limit")
	}
	if _, err := inst.SemanticsUS(false, 2); err == nil {
		t.Error("SemanticsUS should hit the state limit")
	}
}

func TestCountReachableStates(t *testing.T) {
	inst := runningExample()
	n, err := inst.CountReachableStates(false, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Reachable states: D, {f2,f3}, {f1,f3}, {f1,f2}, {f1}, {f2}, {f3},
	// ∅ = 8.
	if n != 8 {
		t.Fatalf("reachable states = %d, want 8", n)
	}
	if _, err := inst.CountReachableStates(false, 2); err == nil {
		t.Error("expected state limit error")
	}
}

func TestConsistentDatabaseIsItsOnlyRepair(t *testing.T) {
	sch := rel.MustSchema(rel.NewRelation("R", 2))
	sigma := fd.MustSet(sch, fd.New("R", []int{0}, []int{1}))
	d := rel.NewDatabase(rel.NewFact("R", "a", "b"), rel.NewFact("R", "c", "d"))
	inst := NewInstance(d, sigma)
	if got := inst.CountCandidateRepairs(false); got.Int64() != 1 {
		t.Fatalf("|CORep| = %v, want 1", got)
	}
	n, err := inst.CountCRS(false, 0)
	if err != nil || n.Int64() != 1 {
		t.Fatalf("|CRS| = %v (err %v), want 1 (the empty sequence)", n, err)
	}
	sem, err := inst.SemanticsUO(false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sem) != 1 || sem[0].Prob.Cmp(big.NewRat(1, 1)) != 0 || sem[0].Repair.Count() != 2 {
		t.Fatalf("semantics = %v", sem)
	}
}

// randomInstance builds a random binary-relation instance with the key
// A1 → A2 (and optionally a second FD), small enough for both engines.
func randomInstance(rng *rand.Rand, twoFDs bool) *Instance {
	sch := rel.MustSchema(rel.NewRelation("R", 2))
	fds := []fd.FD{fd.New("R", []int{0}, []int{1})}
	if twoFDs {
		fds = append(fds, fd.New("R", []int{1}, []int{0}))
	}
	sigma := fd.MustSet(sch, fds...)
	n := 2 + rng.Intn(4)
	facts := make([]rel.Fact, 0, n)
	for i := 0; i < n; i++ {
		facts = append(facts, rel.NewFact("R",
			string(rune('a'+rng.Intn(3))),
			string(rune('p'+rng.Intn(3)))))
	}
	return NewInstance(rel.NewDatabase(facts...), sigma)
}

// TestQuickTreeVsDAG cross-validates the tree and DAG engines, and the
// component-based CORep enumeration against tree leaf results, on
// random instances (both one-FD and two-FD, both op spaces).
func TestQuickTreeVsDAG(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	q := cq.MustNew(nil, cq.NewAtom("R", cq.Var("x"), cq.Const("p")))
	for trial := 0; trial < 60; trial++ {
		inst := randomInstance(rng, trial%2 == 1)
		singleton := trial%4 >= 2
		tree, err := inst.BuildTree(singleton, 200000)
		if err != nil {
			continue // too big; skip
		}
		pred := inst.EntailPred(q, cq.Tuple{})

		// |CRS| via DAG equals tree leaf count.
		n, err := inst.CountCRS(singleton, 0)
		if err != nil {
			t.Fatal(err)
		}
		if n.Int64() != int64(len(tree.Leaves)) {
			t.Fatalf("trial %d: CountCRS = %v, tree leaves = %d", trial, n, len(tree.Leaves))
		}
		// srfreq via DAG equals tree probability.
		sr, err := inst.SRFreq(singleton, 0, pred)
		if err != nil {
			t.Fatal(err)
		}
		if got := tree.Probability(UniformSequences, pred); got.Cmp(sr) != 0 {
			t.Fatalf("trial %d: srfreq tree %s vs dag %s", trial, got.RatString(), sr.RatString())
		}
		// P_uo via DAG equals tree probability.
		po, err := inst.ProbUO(singleton, 0, pred)
		if err != nil {
			t.Fatal(err)
		}
		if got := tree.Probability(UniformOperations, pred); got.Cmp(po) != 0 {
			t.Fatalf("trial %d: uo tree %s vs dag %s", trial, got.RatString(), po.RatString())
		}
		// rrfreq via components equals tree canonical probability.
		rr, err := inst.RRFreq(singleton, 0, pred)
		if err != nil {
			t.Fatal(err)
		}
		if got := tree.Probability(UniformRepairs, pred); got.Cmp(rr) != 0 {
			t.Fatalf("trial %d: rrfreq tree %s vs comp %s", trial, got.RatString(), rr.RatString())
		}
		// |CORep| equals the number of canonical leaves and the number
		// of distinct leaf results.
		distinct := map[string]bool{}
		for _, l := range tree.Leaves {
			distinct[l.State.Key()] = true
		}
		if c := inst.CountCandidateRepairs(singleton); c.Int64() != int64(len(distinct)) {
			t.Fatalf("trial %d: CountCandidateRepairs = %v, distinct leaves = %d", trial, c, len(distinct))
		}
		if tree.CanonicalLeafCount().Int64() != int64(len(distinct)) {
			t.Fatalf("trial %d: canonical leaves != distinct results", trial)
		}
	}
}

// TestQuickSemanticsAgree cross-validates tree-level and DAG-level
// operational semantics on random instances.
func TestQuickSemanticsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 40; trial++ {
		inst := randomInstance(rng, trial%2 == 1)
		tree, err := inst.BuildTree(false, 200000)
		if err != nil {
			continue
		}
		for _, gen := range []Generator{UniformSequences, UniformOperations, UniformRepairs} {
			want := tree.Semantics(gen)
			var got []RepairProb
			switch gen {
			case UniformSequences:
				got, err = inst.SemanticsUS(false, 0)
			case UniformOperations:
				got, err = inst.SemanticsUO(false, 0)
			case UniformRepairs:
				got, err = inst.SemanticsUR(false, 0)
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d %v: %d vs %d repairs", trial, gen, len(got), len(want))
			}
			for i := range got {
				if !got[i].Repair.Equal(want[i].Repair) || got[i].Prob.Cmp(want[i].Prob) != 0 {
					t.Fatalf("trial %d %v: repair %d mismatch (%v %s vs %v %s)", trial, gen,
						i, got[i].Repair.Indices(), got[i].Prob.RatString(),
						want[i].Repair.Indices(), want[i].Prob.RatString())
				}
			}
		}
	}
}

func TestModeSymbols(t *testing.T) {
	tests := []struct {
		m    Mode
		want string
	}{
		{Mode{Gen: UniformRepairs}, "M^ur"},
		{Mode{Gen: UniformSequences}, "M^us"},
		{Mode{Gen: UniformOperations}, "M^uo"},
		{Mode{Gen: UniformOperations, Singleton: true}, "M^uo,1"},
		{Mode{Gen: UniformRepairs, Singleton: true}, "M^ur,1"},
	}
	for _, tc := range tests {
		if got := tc.m.Symbol(); got != tc.want {
			t.Errorf("Symbol = %q, want %q", got, tc.want)
		}
	}
	if UniformRepairs.String() != "uniform repairs" {
		t.Error("Generator.String wrong")
	}
	if (Mode{Gen: UniformSequences, Singleton: true}).String() != "uniform sequences (singleton operations)" {
		t.Error("Mode.String wrong")
	}
}

func TestRenderContainsProbabilities(t *testing.T) {
	inst := runningExample()
	tree, err := inst.BuildTree(false, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := tree.Render(UniformSequences)
	if len(out) == 0 {
		t.Fatal("empty render")
	}
	for _, want := range []string{"ε", "p=1/3", "p=1/9", "[leaf, canonical]"} {
		if !contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestSequenceOf(t *testing.T) {
	inst := runningExample()
	tree, err := inst.BuildTree(false, 0)
	if err != nil {
		t.Fatal(err)
	}
	leaf := tree.Leaves[0]
	seq := tree.SequenceOf(leaf)
	if len(seq) == 0 {
		t.Fatal("empty sequence for leaf")
	}
	if !inst.IsComplete(seq, false) {
		t.Fatalf("reconstructed sequence %v not complete", seq)
	}
	if !inst.Result(seq).Equal(leaf.State) {
		t.Fatal("reconstructed sequence has wrong result")
	}
}

// TestRepairSamplerUniform validates the general-FD candidate-repair
// sampler against the exact M^ur semantics on the running example.
func TestRepairSamplerUniform(t *testing.T) {
	inst := runningExample()
	for _, singleton := range []bool{false, true} {
		want, err := inst.SemanticsUR(singleton, 0)
		if err != nil {
			t.Fatal(err)
		}
		rs := inst.NewRepairSampler()
		rng := rand.New(rand.NewSource(163))
		const n = 40000
		counts := map[string]int{}
		for i := 0; i < n; i++ {
			s := rs.Sample(rng, singleton)
			if !inst.IsCandidateRepair(s, singleton) {
				t.Fatalf("sampled non-repair %v (singleton=%v)", s.Indices(), singleton)
			}
			counts[s.Key()]++
		}
		if len(counts) != len(want) {
			t.Fatalf("singleton=%v: observed %d repairs, want %d", singleton, len(counts), len(want))
		}
		for _, rp := range want {
			p, _ := rp.Prob.Float64()
			got := float64(counts[rp.Repair.Key()]) / n
			sigma := 5 * (p*(1-p)/n + 1e-12)
			_ = sigma
			if got < p-5*0.01 || got > p+5*0.01 {
				t.Errorf("singleton=%v repair %v: freq %.4f, want %.4f", singleton, rp.Repair.Indices(), got, p)
			}
		}
	}
}

// TestRepairSamplerTrivialFactsAlwaysKept: keyless facts survive every
// sampled repair.
func TestRepairSamplerTrivialFacts(t *testing.T) {
	sch := rel.MustSchema(rel.NewRelation("R", 2), rel.NewRelation("S", 1))
	sigma := fd.MustSet(sch, fd.New("R", []int{0}, []int{1}))
	d := rel.NewDatabase(
		rel.NewFact("R", "a", "x"),
		rel.NewFact("R", "a", "y"),
		rel.NewFact("S", "keep"),
	)
	inst := NewInstance(d, sigma)
	rs := inst.NewRepairSampler()
	rng := rand.New(rand.NewSource(167))
	keepIdx := d.IndexOf(rel.NewFact("S", "keep"))
	for i := 0; i < 200; i++ {
		if !rs.Sample(rng, false).Has(keepIdx) {
			t.Fatal("trivial fact dropped from a sampled repair")
		}
	}
}

// TestWitnessPredMatchesEntailPred: the witness-image predicate agrees
// with the materialising predicate on every reachable state of random
// instances and queries.
func TestWitnessPredMatchesEntailPred(t *testing.T) {
	rng := rand.New(rand.NewSource(199))
	q := cq.MustNew([]string{"x"},
		cq.NewAtom("R", cq.Var("x"), cq.Var("y")),
		cq.NewAtom("R", cq.Var("z"), cq.Var("y")),
	)
	for trial := 0; trial < 30; trial++ {
		inst := randomInstance(rng, trial%2 == 1)
		dom := inst.D.ActiveDomain()
		if len(dom) == 0 {
			continue
		}
		c := cq.Tuple{dom[rng.Intn(len(dom))]}
		slow := inst.EntailPred(q, c)
		fast, ok := inst.WitnessPred(q, c, 0)
		if !ok {
			t.Fatal("witness pred overflowed on a tiny instance")
		}
		// Compare on every candidate repair and on D itself.
		if fast(inst.Full()) != slow(inst.Full()) {
			t.Fatalf("trial %d: disagreement on D", trial)
		}
		inst.CandidateRepairs(false, func(s rel.Subset) bool {
			if fast(s) != slow(s) {
				t.Fatalf("trial %d: disagreement on %v", trial, s.Indices())
			}
			return true
		})
	}
}

// TestWitnessPredBooleanAndMismatch covers Boolean queries and
// wrong-arity tuples.
func TestWitnessPredBooleanAndMismatch(t *testing.T) {
	inst := figure2()
	qb := cq.MustNew(nil, cq.NewAtom("R", cq.Const("a1"), cq.Var("x")))
	pred, ok := inst.WitnessPred(qb, cq.Tuple{}, 0)
	if !ok {
		t.Fatal("overflow")
	}
	if !pred(inst.Full()) {
		t.Error("Boolean query should hold on D")
	}
	empty := rel.NewSubset(inst.D.Len())
	if pred(empty) {
		t.Error("Boolean query cannot hold on the empty database")
	}
	// Wrong arity tuple: constant false predicate.
	predBad, ok := inst.WitnessPred(qb, cq.Tuple{"a1", "b1"}, 0)
	if !ok || predBad(inst.Full()) {
		t.Error("wrong-arity tuple must yield the constant-false predicate")
	}
}

// TestWitnessPredOverflow forces the image cap.
func TestWitnessPredOverflow(t *testing.T) {
	inst := figure2()
	q := cq.MustNew(nil, cq.NewAtom("R", cq.Var("x"), cq.Var("y")))
	if _, ok := inst.WitnessPred(q, cq.Tuple{}, 2); ok {
		t.Fatal("expected overflow with maxImages=2 and 6 facts")
	}
}

// TestWitnessPredConstantOnlyQuery: queries whose atoms mention
// constants absent from D have no witnesses.
func TestWitnessPredConstantOnlyQuery(t *testing.T) {
	inst := figure2()
	q := cq.MustNew(nil, cq.NewAtom("R", cq.Const("nope"), cq.Var("x")))
	pred, ok := inst.WitnessPred(q, cq.Tuple{}, 0)
	if !ok {
		t.Fatal("overflow")
	}
	if pred(inst.Full()) {
		t.Error("no witness should exist")
	}
}

// TestWitnessSequenceEveryRepair: the Lemma 5.4 construction yields a
// valid complete sequence for every candidate repair of random
// instances, in both operation spaces.
func TestWitnessSequenceEveryRepair(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 40; trial++ {
		inst := randomInstance(rng, trial%2 == 1)
		for _, singleton := range []bool{false, true} {
			inst.CandidateRepairs(singleton, func(r rel.Subset) bool {
				seq, ok := inst.WitnessSequence(r, singleton)
				if !ok {
					t.Fatalf("trial %d: repair %v rejected", trial, r.Indices())
				}
				if !inst.IsComplete(seq, singleton) {
					t.Fatalf("trial %d singleton=%v: witness %v not a complete sequence for %v",
						trial, singleton, seq, r.Indices())
				}
				if !inst.Result(seq).Equal(r) {
					t.Fatalf("trial %d: witness result %v != repair %v",
						trial, inst.Result(seq).Indices(), r.Indices())
				}
				return true
			})
		}
	}
}

// TestWitnessSequenceRejectsNonRepairs: subsets that are not candidate
// repairs are rejected.
func TestWitnessSequenceRejectsNonRepairs(t *testing.T) {
	inst := runningExample()
	// {f1, f2} is inconsistent.
	bad := rel.NewSubset(3)
	bad.Set(0)
	bad.Set(1)
	if _, ok := inst.WitnessSequence(bad, false); ok {
		t.Error("inconsistent subset accepted")
	}
	// ∅ is a candidate repair with pairs but not with singletons.
	empty := rel.NewSubset(3)
	if _, ok := inst.WitnessSequence(empty, false); !ok {
		t.Error("∅ should be reachable with pair operations")
	}
	if _, ok := inst.WitnessSequence(empty, true); ok {
		t.Error("∅ must be unreachable with singleton operations")
	}
}

// TestWitnessSequenceEmptyRepairUsesOnePair: emptying a component uses
// exactly one pair removal (the last operation), per the Lemma 5.4
// Case 2 construction.
func TestWitnessSequenceEmptyRepairUsesOnePair(t *testing.T) {
	inst := runningExample()
	empty := rel.NewSubset(3)
	seq, ok := inst.WitnessSequence(empty, false)
	if !ok {
		t.Fatal("empty repair rejected")
	}
	pairs := 0
	for _, op := range seq {
		if !op.Singleton() {
			pairs++
		}
	}
	if pairs != 1 || seq[len(seq)-1].Singleton() {
		t.Fatalf("want exactly one final pair removal, got %v", seq)
	}
}

// TestPropositionA2A4LeafDistributions verifies the appendix
// propositions on random instances: under M^ur the reachable leaves
// are exactly the canonical sequences, each with probability
// 1/|CanCRS| (Prop A.2); under M^us every leaf has probability
// 1/|CRS| (Prop A.4).
func TestPropositionA2A4LeafDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	for trial := 0; trial < 25; trial++ {
		inst := randomInstance(rng, trial%2 == 1)
		tree, err := inst.BuildTree(false, 100000)
		if err != nil {
			continue
		}
		crs := int64(len(tree.Leaves))
		can := tree.CanonicalLeafCount().Int64()
		urDist := tree.LeafDistribution(UniformRepairs)
		usDist := tree.LeafDistribution(UniformSequences)
		for i, leaf := range tree.Leaves {
			if usDist[i].Cmp(big.NewRat(1, crs)) != 0 {
				t.Fatalf("trial %d: us leaf %d prob %s, want 1/%d", trial, i, usDist[i].RatString(), crs)
			}
			if leaf.Canonical() {
				if urDist[i].Cmp(big.NewRat(1, can)) != 0 {
					t.Fatalf("trial %d: canonical leaf %d prob %s, want 1/%d", trial, i, urDist[i].RatString(), can)
				}
			} else if urDist[i].Sign() != 0 {
				t.Fatalf("trial %d: non-canonical leaf %d has prob %s", trial, i, urDist[i].RatString())
			}
		}
	}
}

// prop73Family builds the structured keys family behind Proposition
// 7.3's analysis: a hot fact conflicting with k facts through the
// first key and k facts through the second key of R/3.
func prop73Family(k int) *Instance {
	sch := rel.MustSchema(rel.NewRelation("R", 3))
	sigma := fd.MustSet(sch,
		fd.New("R", []int{0}, []int{1, 2}),
		fd.New("R", []int{1}, []int{0, 2}),
	)
	facts := []rel.Fact{rel.NewFact("R", "a", "b", "hot")}
	for i := 0; i < k; i++ {
		facts = append(facts, rel.NewFact("R", "a", "b"+itoa(i+1), "x"+itoa(i)))
		facts = append(facts, rel.NewFact("R", "a"+itoa(i+1), "b", "y"+itoa(i)))
	}
	return NewInstance(rel.NewDatabase(facts...), sigma)
}

// TestProp73RatioPolynomial checks the quantitative heart of
// Proposition 7.3 on the structured family: Λ_{¬f}/Λ_f — the odds
// against the witness fact surviving an M^uo walk — stays polynomially
// bounded in ‖D‖ (here against the loose envelope (2‖D‖)²), in sharp
// contrast with the exponential FD family of Proposition D.6.
func TestProp73RatioPolynomial(t *testing.T) {
	for k := 1; k <= 4; k++ {
		inst := prop73Family(k)
		hot := inst.D.IndexOf(rel.NewFact("R", "a", "b", "hot"))
		p, err := inst.ProbUO(false, 500000, func(s rel.Subset) bool { return s.Has(hot) })
		if err != nil {
			t.Fatal(err)
		}
		pf, _ := p.Float64()
		if pf <= 0 {
			t.Fatalf("k=%d: probability vanished", k)
		}
		n := float64(inst.D.Len())
		ratio := (1 - pf) / pf
		if ratio > 4*n*n {
			t.Fatalf("k=%d: odds ratio %.2f exceeds the polynomial envelope %.2f", k, ratio, 4*n*n)
		}
	}
}

// TestPropD6ContrastExponential: on the Proposition D.6 family the
// same odds ratio grows exponentially — the two tests together exhibit
// the keys-vs-FDs separation of Section 7.
func TestPropD6ContrastExponential(t *testing.T) {
	sch := rel.MustSchema(rel.NewRelation("R", 3))
	sigma := fd.MustSet(sch, fd.New("R", []int{0}, []int{1}))
	prev := 0.0
	for n := 4; n <= 10; n += 2 {
		facts := []rel.Fact{rel.NewFact("R", "0", "0", "0")}
		for i := 1; i < n; i++ {
			facts = append(facts, rel.NewFact("R", "0", "1", itoa(i)))
		}
		inst := NewInstance(rel.NewDatabase(facts...), sigma)
		hot := inst.D.IndexOf(rel.NewFact("R", "0", "0", "0"))
		p, err := inst.ProbUO(false, 0, func(s rel.Subset) bool { return s.Has(hot) })
		if err != nil {
			t.Fatal(err)
		}
		pf, _ := p.Float64()
		ratio := (1 - pf) / pf
		if prev > 0 && ratio < 2.5*prev {
			t.Fatalf("n=%d: odds ratio %.1f did not grow exponentially from %.1f", n, ratio, prev)
		}
		prev = ratio
	}
}
