package core

import (
	"math/big"
	"sort"
	"strings"

	"repro/internal/cq"
	"repro/internal/rel"
)

// This file exposes the exact OCQA problem (Section 3): computing
// P_{M_Σ,Q}(D, c̄) for the uniform generators, and the operational
// consistent answers. All functions take a state budget (limit, 0 =
// unlimited) and return StateLimitError when exact computation is
// infeasible; the polynomial path is sampling (internal/sampler +
// internal/fpras).

// EntailPred builds the predicate "c̄ ∈ Q(D')" over subsets of D. The
// homomorphism search runs against the subset mask directly (candidate
// facts are tested by index against the bitset), so no sub-database is
// ever materialised — this is the fallback entailment check of the
// Monte-Carlo hot loop when the witness compilation overflows.
func (inst *Instance) EntailPred(q *cq.Query, c cq.Tuple) func(rel.Subset) bool {
	return func(s rel.Subset) bool {
		return q.HasAnswerIn(inst.D, s, c)
	}
}

// ExactProbability computes P_{M,Q}(D, c̄) exactly under the given mode:
//
//   - UniformRepairs: the repair relative frequency rrfreq (the
//     restatement of Section 5, justified by Proposition A.2);
//   - UniformSequences: the sequence relative frequency srfreq
//     (Section 6, Proposition A.4);
//   - UniformOperations: the leaf-distribution sum over the state DAG
//     (Proposition A.6).
func (inst *Instance) ExactProbability(mode Mode, q *cq.Query, c cq.Tuple, limit int) (*big.Rat, error) {
	pred := inst.EntailPred(q, c)
	switch mode.Gen {
	case UniformRepairs:
		return inst.RRFreq(mode.Singleton, limit, pred)
	case UniformSequences:
		return inst.SRFreq(mode.Singleton, limit, pred)
	case UniformOperations:
		return inst.ProbUO(mode.Singleton, limit, pred)
	default:
		panic("core: unknown generator")
	}
}

// Semantics computes the operational semantics [[D]]_M exactly under
// the given mode.
func (inst *Instance) Semantics(mode Mode, limit int) ([]RepairProb, error) {
	switch mode.Gen {
	case UniformRepairs:
		return inst.SemanticsUR(mode.Singleton, limit)
	case UniformSequences:
		return inst.SemanticsUS(mode.Singleton, limit)
	case UniformOperations:
		return inst.SemanticsUO(mode.Singleton, limit)
	default:
		panic("core: unknown generator")
	}
}

// ConsistentAnswer pairs an answer tuple with its probability.
type ConsistentAnswer struct {
	Tuple cq.Tuple
	Prob  *big.Rat
}

// ConsistentAnswers computes the operational consistent answers to Q
// over D under the given mode: every tuple of Q(D) together with its
// probability (tuples outside Q(D) have probability 0 by monotonicity
// of CQs and are omitted). Results are sorted by tuple.
//
// All tuples share ONE pass over the repair space: the exact repair
// distribution [[D]]_M is computed once (the same Semantics engine a
// single-tuple ExactProbability walks per call) and marginalised per
// tuple through the compiled multi-tuple witness predicate, so K
// candidate answers cost one repair-space walk instead of K.
func (inst *Instance) ConsistentAnswers(mode Mode, q *cq.Query, limit int) ([]ConsistentAnswer, error) {
	return inst.ConsistentAnswersWith(inst.CompileMultiPred(q, 0), mode, limit)
}

// ConsistentAnswersWith is ConsistentAnswers over an already compiled
// multi-tuple witness predicate — the entry point for callers that
// cache compiled witness sets per query.
//
// M^ur streams: its distribution is uniform over CORep (Proposition
// A.2), so one CandidateRepairs walk accumulates every tuple's hit
// count in O(K) memory — the multi-predicate form of RRFreq, never
// materialising the repair list. The DAG generators marginalise the
// Semantics result; their engines already hold every reachable state
// in memory to propagate masses, so the repair list adds no
// asymptotic cost there.
func (inst *Instance) ConsistentAnswersWith(mp *MultiPred, mode Mode, limit int) ([]ConsistentAnswer, error) {
	tuples := mp.Tuples()
	out := make([]ConsistentAnswer, 0, len(tuples))
	if len(tuples) == 0 {
		return out, nil
	}
	hits := make([]bool, len(tuples))
	if mode.Gen == UniformRepairs {
		total := inst.CountCandidateRepairs(mode.Singleton)
		if total.Sign() == 0 {
			return nil, StateLimitError{}
		}
		good := make([]*big.Int, len(tuples))
		for t := range good {
			good[t] = big.NewInt(0)
		}
		one := big.NewInt(1)
		visited := 0
		var overflow bool
		inst.CandidateRepairs(mode.Singleton, func(s rel.Subset) bool {
			visited++
			if limit > 0 && visited > limit {
				overflow = true
				return false
			}
			mp.Eval(s, hits)
			for t, hit := range hits {
				if hit {
					good[t].Add(good[t], one)
				}
			}
			return true
		})
		if overflow {
			return nil, StateLimitError{Limit: limit}
		}
		for t, c := range tuples {
			out = append(out, ConsistentAnswer{Tuple: c, Prob: new(big.Rat).SetFrac(good[t], total)})
		}
		return out, nil
	}
	sem, err := inst.Semantics(mode, limit)
	if err != nil {
		return nil, err
	}
	for _, c := range tuples {
		out = append(out, ConsistentAnswer{Tuple: c, Prob: new(big.Rat)})
	}
	for _, rp := range sem {
		mp.Eval(rp.Repair, hits)
		for t, hit := range hits {
			if hit {
				out[t].Prob.Add(out[t].Prob, rp.Prob)
			}
		}
	}
	return out, nil
}

// DefaultMaxImages is the witness-image cap applied when a caller
// passes maxImages ≤ 0 to WitnessPred or CompileMultiPred: past it,
// the compiled predicate would cost more per draw than the fallback
// subset-mask search it replaces.
const DefaultMaxImages = 4096

// canonWitness canonicalises the matched fact indices of one
// homomorphic image: sorted, deduplicated (two atoms may match the
// same fact), written into buf, together with a compact byte-string
// key for the dedup map. Keying on fact indices replaces the full text
// rendering of the image the previous implementation rebuilt per
// homomorphism at prepare time.
func canonWitness(facts []int, buf []int) ([]int, string) {
	buf = append(buf[:0], facts...)
	sort.Ints(buf)
	w := buf[:0]
	for i, idx := range buf {
		if i > 0 && idx == buf[i-1] {
			continue
		}
		w = append(w, idx)
	}
	var b strings.Builder
	b.Grow(4 * len(w))
	for _, idx := range w {
		b.WriteByte(byte(idx >> 24))
		b.WriteByte(byte(idx >> 16))
		b.WriteByte(byte(idx >> 8))
		b.WriteByte(byte(idx))
	}
	return w, b.String()
}

// witnessHolds reports whether some witness index set is fully
// contained in the subset.
func witnessHolds(witnesses [][]int, s rel.Subset) bool {
	for _, w := range witnesses {
		all := true
		for _, idx := range w {
			if !s.Has(idx) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// WitnessPred builds a fast entailment predicate by precomputing the
// homomorphic images h(Q) ⊆ D with h(x̄) = c̄ as index subsets: by CQ
// monotonicity, c̄ ∈ Q(D') for D' ⊆ D iff some image is contained in
// D'. The predicate costs O(#images · ‖Q‖) per call — no database
// materialisation — which matters in the Monte-Carlo hot loop. Images
// are deduplicated by their sorted fact-index sets, read directly off
// the matched facts of the homomorphism search. It returns ok=false
// (and a nil predicate) when the number of images exceeds maxImages
// (0 means DefaultMaxImages); callers then fall back to EntailPred.
func (inst *Instance) WitnessPred(q *cq.Query, c cq.Tuple, maxImages int) (func(rel.Subset) bool, bool) {
	if maxImages <= 0 {
		maxImages = DefaultMaxImages
	}
	if len(c) != len(q.AnswerVars) {
		return func(rel.Subset) bool { return false }, true
	}
	var witnesses [][]int
	seen := make(map[string]bool)
	overflow := false
	scratch := make([]int, 0, len(q.Atoms))
	q.HomomorphismsMatched(inst.D, func(h cq.Homomorphism, facts []int) bool {
		for i, v := range q.AnswerVars {
			if h[v] != c[i] {
				return true
			}
		}
		w, key := canonWitness(facts, scratch)
		if seen[key] {
			return true
		}
		seen[key] = true
		witnesses = append(witnesses, append([]int(nil), w...))
		if len(witnesses) > maxImages {
			overflow = true
			return false
		}
		return true
	})
	if overflow {
		return nil, false
	}
	return func(s rel.Subset) bool { return witnessHolds(witnesses, s) }, true
}
