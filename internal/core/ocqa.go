package core

import (
	"math/big"
	"sort"

	"repro/internal/cq"
	"repro/internal/rel"
)

// This file exposes the exact OCQA problem (Section 3): computing
// P_{M_Σ,Q}(D, c̄) for the uniform generators, and the operational
// consistent answers. All functions take a state budget (limit, 0 =
// unlimited) and return StateLimitError when exact computation is
// infeasible; the polynomial path is sampling (internal/sampler +
// internal/fpras).

// EntailPred builds the predicate "c̄ ∈ Q(D')" over subsets of D.
func (inst *Instance) EntailPred(q *cq.Query, c cq.Tuple) func(rel.Subset) bool {
	return func(s rel.Subset) bool {
		return q.HasAnswer(inst.D.Restrict(s), c)
	}
}

// ExactProbability computes P_{M,Q}(D, c̄) exactly under the given mode:
//
//   - UniformRepairs: the repair relative frequency rrfreq (the
//     restatement of Section 5, justified by Proposition A.2);
//   - UniformSequences: the sequence relative frequency srfreq
//     (Section 6, Proposition A.4);
//   - UniformOperations: the leaf-distribution sum over the state DAG
//     (Proposition A.6).
func (inst *Instance) ExactProbability(mode Mode, q *cq.Query, c cq.Tuple, limit int) (*big.Rat, error) {
	pred := inst.EntailPred(q, c)
	switch mode.Gen {
	case UniformRepairs:
		return inst.RRFreq(mode.Singleton, limit, pred)
	case UniformSequences:
		return inst.SRFreq(mode.Singleton, limit, pred)
	case UniformOperations:
		return inst.ProbUO(mode.Singleton, limit, pred)
	default:
		panic("core: unknown generator")
	}
}

// Semantics computes the operational semantics [[D]]_M exactly under
// the given mode.
func (inst *Instance) Semantics(mode Mode, limit int) ([]RepairProb, error) {
	switch mode.Gen {
	case UniformRepairs:
		return inst.SemanticsUR(mode.Singleton, limit)
	case UniformSequences:
		return inst.SemanticsUS(mode.Singleton, limit)
	case UniformOperations:
		return inst.SemanticsUO(mode.Singleton, limit)
	default:
		panic("core: unknown generator")
	}
}

// ConsistentAnswer pairs an answer tuple with its probability.
type ConsistentAnswer struct {
	Tuple cq.Tuple
	Prob  *big.Rat
}

// ConsistentAnswers computes the operational consistent answers to Q
// over D under the given mode: every tuple of Q(D) together with its
// probability (tuples outside Q(D) have probability 0 by monotonicity
// of CQs and are omitted). Results are sorted by tuple.
func (inst *Instance) ConsistentAnswers(mode Mode, q *cq.Query, limit int) ([]ConsistentAnswer, error) {
	candidates := q.Answers(inst.D)
	out := make([]ConsistentAnswer, 0, len(candidates))
	for _, c := range candidates {
		p, err := inst.ExactProbability(mode, q, c, limit)
		if err != nil {
			return nil, err
		}
		out = append(out, ConsistentAnswer{Tuple: c, Prob: p})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tuple.Key() < out[j].Tuple.Key() })
	return out, nil
}

// WitnessPred builds a fast entailment predicate by precomputing the
// homomorphic images h(Q) ⊆ D with h(x̄) = c̄ as index subsets: by CQ
// monotonicity, c̄ ∈ Q(D') for D' ⊆ D iff some image is contained in
// D'. The predicate costs O(#images · ‖Q‖) per call — no database
// materialisation — which matters in the Monte-Carlo hot loop. It
// returns ok=false (and a nil predicate) when the number of images
// exceeds maxImages (0 means 4096); callers then fall back to
// EntailPred.
func (inst *Instance) WitnessPred(q *cq.Query, c cq.Tuple, maxImages int) (func(rel.Subset) bool, bool) {
	if maxImages <= 0 {
		maxImages = 4096
	}
	if len(c) != len(q.AnswerVars) {
		return func(rel.Subset) bool { return false }, true
	}
	type witness []int
	var witnesses []witness
	seen := make(map[string]bool)
	overflow := false
	q.Homomorphisms(inst.D, func(h cq.Homomorphism) bool {
		for i, v := range q.AnswerVars {
			if h[v] != c[i] {
				return true
			}
		}
		img := q.Image(h)
		k := img.String()
		if seen[k] {
			return true
		}
		seen[k] = true
		w := make(witness, 0, img.Len())
		for _, f := range img.Facts() {
			idx := inst.D.IndexOf(f)
			if idx < 0 {
				return true // image leaves D (constants in Q): not a witness
			}
			w = append(w, idx)
		}
		witnesses = append(witnesses, w)
		if len(witnesses) > maxImages {
			overflow = true
			return false
		}
		return true
	})
	if overflow {
		return nil, false
	}
	return func(s rel.Subset) bool {
		for _, w := range witnesses {
			all := true
			for _, idx := range w {
				if !s.Has(idx) {
					all = false
					break
				}
			}
			if all {
				return true
			}
		}
		return false
	}, true
}
