package core

import (
	"math/big"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/rel"
)

// This file implements candidate operational repairs (Section 3) via
// the conflict-graph characterisation of Lemma 5.4 and Lemma E.4:
//
//   - facts in trivial components of CG(D,Σ) (no conflicts) survive in
//     every candidate repair;
//   - per non-trivially connected component C, the reachable results
//     are exactly the independent sets of C (the non-empty ones when
//     only singleton operations are allowed);
//   - components repair independently, so CORep(D,Σ) is the product.
//
// This yields polynomial-delay enumeration and product-form counting —
// for primary keys the components are the blocks (cliques) and the
// count collapses to Π(|B_i|+1), the formula in the proof of Lemma 5.2.

// ConflictGraph materialises CG(D,Σ) as a graph over fact indices.
func (inst *Instance) ConflictGraph() *graph.Graph {
	g := graph.New(inst.D.Len())
	for _, p := range inst.pairs {
		g.AddEdge(p[0], p[1])
	}
	return g
}

// repairComponents splits the fact indices into the always-surviving
// trivial facts and the nontrivial connected components of CG(D,Σ).
func (inst *Instance) repairComponents() (trivial []int, comps [][]int) {
	g := inst.ConflictGraph()
	for _, comp := range g.Components() {
		if len(comp) == 1 && g.Degree(comp[0]) == 0 {
			trivial = append(trivial, comp[0])
		} else {
			comps = append(comps, comp)
		}
	}
	return trivial, comps
}

// CountCandidateRepairs computes |CORep(D,Σ)| (with singleton set,
// |CORep^1(D,Σ)|) exactly in time polynomial in ‖D‖ times the cost of
// exact independent-set counting per conflict component.
func (inst *Instance) CountCandidateRepairs(singleton bool) *big.Int {
	_, comps := inst.repairComponents()
	g := inst.ConflictGraph()
	total := big.NewInt(1)
	for _, comp := range comps {
		sub := g.InducedSubgraph(comp)
		var c *big.Int
		if singleton {
			c = sub.CountNonEmptyIndependentSets()
		} else {
			c = sub.CountIndependentSets()
		}
		total.Mul(total, c)
	}
	return total
}

// CandidateRepairs enumerates CORep(D,Σ) (or CORep^1 with singleton
// set) as subsets of D, invoking yield for each; enumeration stops when
// yield returns false. The order is deterministic.
func (inst *Instance) CandidateRepairs(singleton bool, yield func(rel.Subset) bool) {
	trivial, comps := inst.repairComponents()
	g := inst.ConflictGraph()

	// Pre-enumerate the independent sets of each component.
	perComp := make([][][]int, len(comps))
	for ci, comp := range comps {
		sub := g.InducedSubgraph(comp)
		var sets [][]int
		sub.IndependentSets(func(s []int) bool {
			if singleton && len(s) == 0 {
				return true
			}
			// Translate back to global fact indices.
			global := make([]int, len(s))
			for i, v := range s {
				global[i] = comp[v]
			}
			sets = append(sets, global)
			return true
		})
		perComp[ci] = sets
	}

	base := rel.NewSubset(inst.D.Len())
	for _, i := range trivial {
		base.Set(i)
	}
	stopped := false
	var recur func(ci int, cur rel.Subset)
	recur = func(ci int, cur rel.Subset) {
		if stopped {
			return
		}
		if ci == len(comps) {
			if !yield(cur.Clone()) {
				stopped = true
			}
			return
		}
		for _, set := range perComp[ci] {
			next := cur.Clone()
			for _, i := range set {
				next.Set(i)
			}
			recur(ci+1, next)
			if stopped {
				return
			}
		}
	}
	recur(0, base)
}

// IsCandidateRepair reports whether the subset is a candidate repair:
// consistent, contains every trivial fact, and (with singleton set)
// leaves no nontrivial component empty.
func (inst *Instance) IsCandidateRepair(s rel.Subset, singleton bool) bool {
	if !inst.IsConsistent(s) {
		return false
	}
	trivial, comps := inst.repairComponents()
	for _, i := range trivial {
		if !s.Has(i) {
			return false
		}
	}
	if singleton {
		for _, comp := range comps {
			nonEmpty := false
			for _, i := range comp {
				if s.Has(i) {
					nonEmpty = true
					break
				}
			}
			if !nonEmpty {
				return false
			}
		}
	}
	return true
}

// RRFreq computes the repair relative frequency (Section 5):
// rrfreq_{Σ,Q}(D,c̄) = |{D' ∈ CORep | pred(D')}| / |CORep|, where pred
// is the entailment check; with singleton set, rrfreq^1 (Appendix E.1).
// It equals P_{M^ur,Q}(D,c̄) by Proposition A.2. The cost is
// proportional to |CORep|; limit (0 = unlimited) bounds the number of
// repairs visited.
func (inst *Instance) RRFreq(singleton bool, limit int, pred func(rel.Subset) bool) (*big.Rat, error) {
	total := inst.CountCandidateRepairs(singleton)
	good := big.NewInt(0)
	visited := 0
	var overflow bool
	inst.CandidateRepairs(singleton, func(s rel.Subset) bool {
		visited++
		if limit > 0 && visited > limit {
			overflow = true
			return false
		}
		if pred(s) {
			good.Add(good, big.NewInt(1))
		}
		return true
	})
	if overflow {
		return nil, StateLimitError{Limit: limit}
	}
	if total.Sign() == 0 {
		// Only possible with singleton ops... it is not: every
		// nontrivial component has a nonempty independent set. Guard
		// anyway.
		return nil, StateLimitError{}
	}
	return new(big.Rat).SetFrac(good, total), nil
}

// SemanticsUR computes [[D]]_{M^ur} exactly: by Proposition A.2 the
// distribution is uniform over CORep(D,Σ).
func (inst *Instance) SemanticsUR(singleton bool, limit int) ([]RepairProb, error) {
	total := inst.CountCandidateRepairs(singleton)
	var out []RepairProb
	visited := 0
	var overflow bool
	inst.CandidateRepairs(singleton, func(s rel.Subset) bool {
		visited++
		if limit > 0 && visited > limit {
			overflow = true
			return false
		}
		out = append(out, RepairProb{Repair: s, Prob: new(big.Rat).SetFrac(big.NewInt(1), total)})
		return true
	})
	if overflow {
		return nil, StateLimitError{Limit: limit}
	}
	sortRepairProbs(out)
	return out, nil
}

// RepairSampler draws uniform candidate repairs of (D, Σ) for
// arbitrary FDs, by sampling a uniform independent set of each
// nontrivial conflict component (Lemma 5.4 identifies the two). The
// per-component cost is that of exact independent-set counting, so the
// sampler is polynomial for bounded component sizes (and in particular
// for primary keys, where components are blocks); internal/sampler's
// BlockSampler remains the specialised fast path.
type RepairSampler struct {
	inst     *Instance
	trivial  []int
	comps    [][]int
	samplers []*graph.ISSampler
}

// NewRepairSampler prepares the component samplers.
func (inst *Instance) NewRepairSampler() *RepairSampler {
	rs := &RepairSampler{inst: inst}
	rs.trivial, rs.comps = inst.repairComponents()
	g := inst.ConflictGraph()
	for _, comp := range rs.comps {
		rs.samplers = append(rs.samplers, graph.NewISSampler(g.InducedSubgraph(comp)))
	}
	return rs
}

// Sample draws a uniform element of CORep(D,Σ) (or CORep^1 with
// singleton set: per component, a uniform non-empty independent set).
func (rs *RepairSampler) Sample(rng *rand.Rand, singleton bool) rel.Subset {
	s := rel.NewSubset(rs.inst.D.Len())
	for _, i := range rs.trivial {
		s.Set(i)
	}
	for ci, smp := range rs.samplers {
		var set []int
		if singleton {
			set = smp.SampleNonEmpty(rng)
		} else {
			set = smp.Sample(rng)
		}
		for _, v := range set {
			s.Set(rs.comps[ci][v])
		}
	}
	return s
}
