// Package core implements the paper's primary contribution: the
// operational approach to consistent query answering (Section 3) and the
// three uniform repairing Markov chain generators with their
// singleton-operation variants (Section 4 and Appendices A, E).
//
// The package offers two exact engines:
//
//   - a state-DAG engine for M^us and M^uo (and their singleton
//     variants), exploiting that their transition law at a sequence s
//     depends only on the current database s(D), so the sequence tree
//     quotients losslessly onto the DAG of reachable sub-databases; and
//
//   - an explicit sequence-tree engine that materialises the repairing
//     Markov chain of Definition 3.5 (needed for M^ur, whose canonical-
//     sequence probabilities of Definition A.1 are inherently
//     tree-level, and used to cross-validate the DAG engine).
//
// Both engines are exponential in the worst case — the problems are
// ♯P-hard (Theorems 5.1, 6.1, 7.1) — and are intended for exact ground
// truth at small scale; the polynomial-time path is sampling + FPRAS
// (internal/sampler, internal/fpras).
package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/fd"
	"repro/internal/rel"
)

// Instance bundles a database D and a set Σ of FDs together with the
// precomputed conflict structure every engine needs: the deduplicated
// conflict pairs of CG(D,Σ) and, per fact, the list of pairs it
// participates in.
type Instance struct {
	D     *rel.Database
	Sigma *fd.Set

	// pairs are the edges of the conflict graph, sorted, with I < J.
	pairs [][2]int
	// pairsOf[i] lists indices into pairs that involve fact i.
	pairsOf [][]int
	// index is the per-FD LHS bucket index behind the incremental
	// InsertFact/DeleteFact paths; immutable once built. Instances
	// produced by a mutation carry it pre-shifted; everything else
	// builds it lazily at the first mutation (indexOnce), so the many
	// never-mutated instances pay nothing for it.
	index     *fd.Index
	indexOnce sync.Once
}

// NewInstance precomputes the conflict structure of (D, Σ).
func NewInstance(d *rel.Database, sigma *fd.Set) *Instance {
	inst := &Instance{D: d, Sigma: sigma}
	inst.pairs = sigma.ConflictPairs(d)
	inst.rebuildPairsOf()
	return inst
}

// lhsIndex returns the LHS bucket index, building it at most once.
func (inst *Instance) lhsIndex() *fd.Index {
	inst.indexOnce.Do(func() {
		if inst.index == nil {
			inst.index = fd.NewIndex(inst.Sigma, inst.D)
		}
	})
	return inst.index
}

// rebuildPairsOf derives the per-fact pair lists from inst.pairs.
func (inst *Instance) rebuildPairsOf() {
	inst.pairsOf = make([][]int, inst.D.Len())
	for pi, p := range inst.pairs {
		inst.pairsOf[p[0]] = append(inst.pairsOf[p[0]], pi)
		inst.pairsOf[p[1]] = append(inst.pairsOf[p[1]], pi)
	}
}

// ConflictPairs returns the edges of CG(D,Σ) as fact-index pairs (I<J).
func (inst *Instance) ConflictPairs() [][2]int { return inst.pairs }

// ConflictGraphDegree reports the maximum degree of CG(D,Σ).
func (inst *Instance) ConflictGraphDegree() int {
	best := 0
	for _, ps := range inst.pairsOf {
		if len(ps) > best {
			best = len(ps)
		}
	}
	return best
}

// Full returns the subset representing D itself.
func (inst *Instance) Full() rel.Subset { return inst.D.FullSubset() }

// IsConsistent reports whether the sub-database identified by s
// satisfies Σ, i.e. no conflict pair survives in s.
func (inst *Instance) IsConsistent(s rel.Subset) bool {
	for _, p := range inst.pairs {
		if s.Has(p[0]) && s.Has(p[1]) {
			return false
		}
	}
	return true
}

// ViolatingPairs returns the conflict pairs both of whose facts are
// present in s — the pair components of V(s(D), Σ) modulo FD labels.
func (inst *Instance) ViolatingPairs(s rel.Subset) [][2]int {
	var out [][2]int
	for _, p := range inst.pairs {
		if s.Has(p[0]) && s.Has(p[1]) {
			out = append(out, p)
		}
	}
	return out
}

// Op is a D-operation −F (Definition 3.1) identified by the removed
// fact indices. J == -1 encodes a singleton removal −{f_I}; otherwise
// the pair removal −{f_I, f_J} with I < J.
type Op struct {
	I, J int
}

// Singleton reports whether the operation removes a single fact.
func (o Op) Singleton() bool { return o.J < 0 }

// Apply returns op(s) = s \ F.
func (o Op) Apply(s rel.Subset) rel.Subset {
	if o.Singleton() {
		return s.WithoutIndices(o.I)
	}
	return s.WithoutIndices(o.I, o.J)
}

// String renders the operation in the paper's notation against the
// facts of d.
func (o Op) String(d *rel.Database) string {
	if o.Singleton() {
		return fmt.Sprintf("-%s", d.Fact(o.I))
	}
	return fmt.Sprintf("-{%s,%s}", d.Fact(o.I), d.Fact(o.J))
}

// less orders operations deterministically: singletons by index first,
// then pairs lexicographically. The tree engine uses this order for the
// DFS ordering ≺ on sequences (Section 4 instantiates ≺ as a DFS
// traversal order).
func (o Op) less(p Op) bool {
	os, ps := o.Singleton(), p.Singleton()
	if os != ps {
		return os
	}
	if o.I != p.I {
		return o.I < p.I
	}
	return o.J < p.J
}

// JustifiedOps returns the (s, Σ)-justified operations (Definition 3.3)
// available at the sub-database s, in deterministic order: every
// nonempty F ⊆ {f, g} for some surviving violation {f, g}. With
// singleton set, only operations removing a single fact are returned
// (the restricted space of Section 7 / Appendix E).
func (inst *Instance) JustifiedOps(s rel.Subset, singleton bool) []Op {
	singles := make(map[int]bool)
	var ops []Op
	for _, p := range inst.pairs {
		if !s.Has(p[0]) || !s.Has(p[1]) {
			continue
		}
		if !singles[p[0]] {
			singles[p[0]] = true
			ops = append(ops, Op{I: p[0], J: -1})
		}
		if !singles[p[1]] {
			singles[p[1]] = true
			ops = append(ops, Op{I: p[1], J: -1})
		}
		if !singleton {
			ops = append(ops, Op{I: p[0], J: p[1]})
		}
	}
	sort.Slice(ops, func(a, b int) bool { return ops[a].less(ops[b]) })
	return ops
}

// CountJustifiedOps returns |Ops_s(D,Σ)| without materialising the
// operations.
func (inst *Instance) CountJustifiedOps(s rel.Subset, singleton bool) int {
	singles := make(map[int]bool)
	pairsN := 0
	for _, p := range inst.pairs {
		if !s.Has(p[0]) || !s.Has(p[1]) {
			continue
		}
		singles[p[0]] = true
		singles[p[1]] = true
		pairsN++
	}
	if singleton {
		return len(singles)
	}
	return len(singles) + pairsN
}

// Sequence is a sequence of D-operations.
type Sequence []Op

// IsRepairing reports whether s is a (D,Σ)-repairing sequence
// (Definition 3.4): each op_i is justified at D^s_{i-1}. With singleton
// set, additionally every operation must be a singleton removal.
func (inst *Instance) IsRepairing(s Sequence, singleton bool) bool {
	cur := inst.Full()
	for _, op := range s {
		if singleton && !op.Singleton() {
			return false
		}
		justified := false
		for _, p := range inst.pairs {
			if !cur.Has(p[0]) || !cur.Has(p[1]) {
				continue
			}
			switch {
			case op.Singleton():
				if op.I == p[0] || op.I == p[1] {
					justified = true
				}
			default:
				if op.I == p[0] && op.J == p[1] {
					justified = true
				}
			}
			if justified {
				break
			}
		}
		if !justified {
			return false
		}
		cur = op.Apply(cur)
	}
	return true
}

// IsComplete reports whether s is a complete repairing sequence: it is
// repairing and its result satisfies Σ.
func (inst *Instance) IsComplete(s Sequence, singleton bool) bool {
	if !inst.IsRepairing(s, singleton) {
		return false
	}
	return inst.IsConsistent(inst.Result(s))
}

// Result computes s(D) as a subset (assuming s is a valid sequence of
// removals; no justification check is performed).
func (inst *Instance) Result(s Sequence) rel.Subset {
	cur := inst.Full()
	for _, op := range s {
		cur = op.Apply(cur)
	}
	return cur
}

// String renders the sequence in the paper's comma-separated notation.
func (inst *Instance) SequenceString(s Sequence) string {
	if len(s) == 0 {
		return "ε"
	}
	out := ""
	for i, op := range s {
		if i > 0 {
			out += ", "
		}
		out += op.String(inst.D)
	}
	return out
}
