package core

import (
	"fmt"
	"testing"

	"repro/internal/fd"
	"repro/internal/rel"
)

// benchDB builds a database of `blocks` key-blocks of `blockSize`
// mutually conflicting facts each, under a single primary key — the
// block-heavy shape where the full ConflictPairs recompute is
// quadratic per block.
func benchDB(blocks, blockSize int) (*rel.Database, *fd.Set) {
	var facts []rel.Fact
	for b := 0; b < blocks; b++ {
		for i := 0; i < blockSize; i++ {
			facts = append(facts, rel.NewFact("R", fmt.Sprintf("k%d", b), fmt.Sprintf("v%d", i)))
		}
	}
	sch := rel.MustSchema(rel.NewRelation("R", 2))
	return rel.NewDatabase(facts...), fd.MustSet(sch, fd.New("R", []int{0}, []int{1}))
}

// BenchmarkInsertFactIncremental inserts one conflicting fact via the
// incremental path (copy-on-write off a fixed base instance).
func BenchmarkInsertFactIncremental(b *testing.B) {
	d, sigma := benchDB(200, 8)
	inst := NewInstance(d, sigma)
	f := rel.NewFact("R", "k7", "fresh")
	if _, _, err := inst.InsertFact(f); err != nil { // warm the lazy LHS index
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := inst.InsertFact(f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInsertFactRebuild performs the same logical mutation by
// rebuilding the whole conflict structure from scratch — the cost the
// incremental path avoids.
func BenchmarkInsertFactRebuild(b *testing.B) {
	d, sigma := benchDB(200, 8)
	f := rel.NewFact("R", "k7", "fresh")
	d2, _, ok := d.Insert(f)
	if !ok {
		b.Fatal("insert failed")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NewInstance(d2, sigma)
	}
}
