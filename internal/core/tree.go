package core

import (
	"fmt"
	"math/big"
	"strings"

	"repro/internal/rel"
)

// This file materialises the repairing Markov chain of Definition 3.5
// as an explicit edge-labelled rooted tree whose nodes are the
// repairing sequences RS(D,Σ). It is exponential by nature and exists
// for three purposes: (1) the M^ur generator of Definition A.1 assigns
// probabilities through canonical-leaf counts, which are tree-level
// quantities; (2) reproducing Figure 1 and the worked example of
// Section 4; (3) cross-validating the DAG engines.

// TreeNode is a node of the repairing Markov chain: the repairing
// sequence leading to it, its current database, and its children (one
// per justified operation), in the deterministic operation order.
type TreeNode struct {
	// Op is the operation labelling the edge from the parent (zero
	// value at the root).
	Op Op
	// State is s(D) for the sequence s ending at this node.
	State rel.Subset
	// Depth is |s|.
	Depth int
	// Children are the extensions Ops_s(D,Σ), ordered by Op.less; nil
	// for leaves (complete sequences).
	Children []*TreeNode

	// crs is |CRS_s(D,Σ)|: the number of leaves in the subtree.
	crs *big.Int
	// can is |CanCRS_s(D,Σ)|: the number of canonical leaves below.
	can *big.Int
	// canonical marks canonical leaves (DFS-first per distinct result).
	canonical bool
}

// IsLeaf reports whether the node is a complete repairing sequence.
func (n *TreeNode) IsLeaf() bool { return len(n.Children) == 0 }

// SubtreeLeaves returns |CRS_s|, the number of complete sequences with
// this node's sequence as a prefix.
func (n *TreeNode) SubtreeLeaves() *big.Int { return new(big.Int).Set(n.crs) }

// CanonicalLeaves returns |CanCRS_s|.
func (n *TreeNode) CanonicalLeaves() *big.Int { return new(big.Int).Set(n.can) }

// Canonical reports whether a leaf is the canonical complete sequence
// for its result (meaningless for inner nodes).
func (n *TreeNode) Canonical() bool { return n.canonical }

// Tree is a fully materialised (D,Σ)-repairing Markov chain.
type Tree struct {
	inst      *Instance
	singleton bool
	Root      *TreeNode
	// Leaves lists the complete sequences in DFS order — the order the
	// canonical ordering ≺ of Section 4 refers to.
	Leaves []*TreeNode
	// NodeCount is |RS(D,Σ)|.
	NodeCount int
}

// BuildTree materialises the repairing Markov chain of (D,Σ). The
// number of nodes is capped by maxNodes (0 = unlimited); building stops
// with a StateLimitError beyond it. With singleton set, only singleton
// operations are used (the M^{·,1} chains).
func (inst *Instance) BuildTree(singleton bool, maxNodes int) (*Tree, error) {
	t := &Tree{inst: inst, singleton: singleton}
	root := &TreeNode{State: inst.Full()}
	t.Root = root
	t.NodeCount = 1
	var build func(n *TreeNode) error
	build = func(n *TreeNode) error {
		ops := inst.JustifiedOps(n.State, singleton)
		if len(ops) == 0 {
			t.Leaves = append(t.Leaves, n)
			return nil
		}
		for _, op := range ops {
			child := &TreeNode{Op: op, State: op.Apply(n.State), Depth: n.Depth + 1}
			t.NodeCount++
			if maxNodes > 0 && t.NodeCount > maxNodes {
				return StateLimitError{Limit: maxNodes}
			}
			n.Children = append(n.Children, child)
			if err := build(child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := build(root); err != nil {
		return nil, err
	}
	t.annotate()
	return t, nil
}

// annotate computes subtree leaf counts, marks canonical leaves (the
// DFS-first complete sequence per distinct result database, matching
// the ordering ≺ used in the Section 4 example), and computes canonical
// leaf counts.
func (t *Tree) annotate() {
	seen := make(map[string]bool)
	for _, leaf := range t.Leaves { // Leaves are in DFS order
		k := leaf.State.Key()
		if !seen[k] {
			seen[k] = true
			leaf.canonical = true
		}
	}
	var up func(n *TreeNode)
	up = func(n *TreeNode) {
		if n.IsLeaf() {
			n.crs = big.NewInt(1)
			if n.canonical {
				n.can = big.NewInt(1)
			} else {
				n.can = big.NewInt(0)
			}
			return
		}
		n.crs = big.NewInt(0)
		n.can = big.NewInt(0)
		for _, c := range n.Children {
			up(c)
			n.crs.Add(n.crs, c.crs)
			n.can.Add(n.can, c.can)
		}
	}
	up(t.Root)
}

// TransitionProb returns P(s, s') for the child edge from parent to its
// i-th child under the given generator, per Definitions A.1, A.3, A.5.
func (t *Tree) TransitionProb(gen Generator, parent *TreeNode, i int) *big.Rat {
	child := parent.Children[i]
	switch gen {
	case UniformOperations:
		return big.NewRat(1, int64(len(parent.Children)))
	case UniformSequences:
		return new(big.Rat).SetFrac(child.crs, parent.crs)
	case UniformRepairs:
		if parent.can.Sign() == 0 {
			// Dead subtree: arbitrary distribution, the paper suggests
			// uniform over the available operations.
			return big.NewRat(1, int64(len(parent.Children)))
		}
		return new(big.Rat).SetFrac(child.can, parent.can)
	default:
		panic("core: unknown generator")
	}
}

// LeafDistribution computes π, the leaf distribution of the chain under
// the given generator: the product of transition probabilities along
// the root-to-leaf path, in DFS leaf order.
func (t *Tree) LeafDistribution(gen Generator) []*big.Rat {
	out := make([]*big.Rat, 0, len(t.Leaves))
	var walk func(n *TreeNode, acc *big.Rat)
	walk = func(n *TreeNode, acc *big.Rat) {
		if n.IsLeaf() {
			out = append(out, acc)
			return
		}
		for i, c := range n.Children {
			p := t.TransitionProb(gen, n, i)
			walk(c, new(big.Rat).Mul(acc, p))
		}
	}
	walk(t.Root, big.NewRat(1, 1))
	return out
}

// ReachableLeaves returns the indices (into Leaves) of RL(M_Σ(D)): the
// leaves with non-zero probability under the generator.
func (t *Tree) ReachableLeaves(gen Generator) []int {
	dist := t.LeafDistribution(gen)
	var out []int
	for i, p := range dist {
		if p.Sign() > 0 {
			out = append(out, i)
		}
	}
	return out
}

// Semantics computes [[D]]_M on the explicit tree: the distribution
// over repairs obtained by summing leaf probabilities per distinct
// result (Definition 3.8).
func (t *Tree) Semantics(gen Generator) []RepairProb {
	dist := t.LeafDistribution(gen)
	acc := map[string]*RepairProb{}
	for i, leaf := range t.Leaves {
		if dist[i].Sign() == 0 {
			continue
		}
		k := leaf.State.Key()
		if rp, ok := acc[k]; ok {
			rp.Prob.Add(rp.Prob, dist[i])
		} else {
			acc[k] = &RepairProb{Repair: leaf.State, Prob: new(big.Rat).Set(dist[i])}
		}
	}
	out := make([]RepairProb, 0, len(acc))
	for _, rp := range acc {
		out = append(out, *rp)
	}
	sortRepairProbs(out)
	return out
}

// Probability computes P_{M,Q}(D, c̄) on the explicit tree: the total
// probability of leaves whose result satisfies pred.
func (t *Tree) Probability(gen Generator, pred func(rel.Subset) bool) *big.Rat {
	dist := t.LeafDistribution(gen)
	sum := new(big.Rat)
	for i, leaf := range t.Leaves {
		if pred(leaf.State) {
			sum.Add(sum, dist[i])
		}
	}
	return sum
}

// CanonicalLeafCount returns |CanCRS(D,Σ)| = |CORep(D,Σ)| (each
// distinct result has exactly one canonical sequence).
func (t *Tree) CanonicalLeafCount() *big.Int { return t.Root.CanonicalLeaves() }

// SequenceOf reconstructs the operation sequence of a node by walking
// from the root (O(depth · branching); for rendering only).
func (t *Tree) SequenceOf(target *TreeNode) Sequence {
	var path Sequence
	var find func(n *TreeNode, acc Sequence) bool
	find = func(n *TreeNode, acc Sequence) bool {
		if n == target {
			path = append(Sequence(nil), acc...)
			return true
		}
		for _, c := range n.Children {
			if find(c, append(acc, c.Op)) {
				return true
			}
		}
		return false
	}
	find(t.Root, nil)
	return path
}

// Render pretty-prints the chain with transition probabilities under
// the given generator — the textual analogue of Figure 1.
func (t *Tree) Render(gen Generator) string {
	var b strings.Builder
	var walk func(n *TreeNode, prefix string, edge string)
	walk = func(n *TreeNode, prefix string, edge string) {
		label := "ε"
		if n != t.Root {
			label = n.Op.String(t.inst.D)
		}
		marker := ""
		if n.IsLeaf() {
			marker = "  [leaf"
			if n.canonical {
				marker += ", canonical"
			}
			marker += "]"
		}
		fmt.Fprintf(&b, "%s%s%s%s\n", prefix, edge, label, marker)
		for i, c := range n.Children {
			p := t.TransitionProb(gen, n, i)
			childEdge := fmt.Sprintf("├─ p=%s ─ ", p.RatString())
			childPrefix := prefix + "│  "
			if i == len(n.Children)-1 {
				childEdge = fmt.Sprintf("└─ p=%s ─ ", p.RatString())
				childPrefix = prefix + "   "
			}
			walk(c, childPrefix, childEdge)
		}
	}
	walk(t.Root, "", "")
	return b.String()
}

// DOT renders the chain in Graphviz format with edge probabilities
// under the given generator; leaves are boxes (canonical leaves filled).
func (t *Tree) DOT(gen Generator) string {
	var b strings.Builder
	b.WriteString("digraph chain {\n  rankdir=TB;\n  node [fontname=\"monospace\"];\n")
	id := 0
	var walk func(n *TreeNode) int
	walk = func(n *TreeNode) int {
		me := id
		id++
		label := "ε"
		if n != t.Root {
			label = n.Op.String(t.inst.D)
		}
		attrs := "shape=ellipse"
		if n.IsLeaf() {
			attrs = "shape=box"
			if n.canonical {
				attrs += ", style=filled, fillcolor=lightgrey"
			}
		}
		fmt.Fprintf(&b, "  n%d [label=%q, %s];\n", me, label, attrs)
		for i, c := range n.Children {
			child := walk(c)
			p := t.TransitionProb(gen, n, i)
			fmt.Fprintf(&b, "  n%d -> n%d [label=%q];\n", me, child, p.RatString())
		}
		return me
	}
	walk(t.Root)
	b.WriteString("}\n")
	return b.String()
}
