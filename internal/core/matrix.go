package core

import (
	"repro/internal/fd"
)

// This file is the approximability matrix of the paper: for every
// (generator, constraint class) pair, what is proved about polynomial-
// time randomized approximation of P_{M,Q}(D, c̄). It lives in core —
// next to the Mode it classifies — so that every layer (the public
// facade, the server's 422 refusals, the workload generator's scenario
// tags) reads the one table instead of keeping a private copy.

// ApproxStatus describes what the paper proves about approximating
// OCQA for a (mode, constraint class) pair.
type ApproxStatus int

const (
	// StatusFPRAS: an FPRAS exists and this library implements it.
	StatusFPRAS ApproxStatus = iota
	// StatusHeuristic: an efficient sampler exists but no polynomial
	// lower bound on positive probabilities, so Monte Carlo estimates
	// carry no multiplicative guarantee (e.g. M^uo with FDs,
	// Proposition D.6). Allowed only with Force.
	StatusHeuristic
	// StatusOpen: approximability is open and no efficient sampler is
	// known (e.g. M^us beyond primary keys); refused.
	StatusOpen
	// StatusNoFPRAS: the paper refutes an FPRAS under RP ≠ NP (e.g.
	// M^ur with FDs, Theorem 5.1(3)); refused.
	StatusNoFPRAS
)

// String names the status.
func (s ApproxStatus) String() string {
	switch s {
	case StatusFPRAS:
		return "FPRAS"
	case StatusHeuristic:
		return "heuristic (sampler without guarantee)"
	case StatusOpen:
		return "open"
	default:
		return "no FPRAS (unless RP = NP)"
	}
}

// Tag is the compact single-word rendering used in scenario labels and
// reports ("fpras", "heuristic", "open", "none").
func (s ApproxStatus) Tag() string {
	switch s {
	case StatusFPRAS:
		return "fpras"
	case StatusHeuristic:
		return "heuristic"
	case StatusOpen:
		return "open"
	default:
		return "none"
	}
}

// Approximability returns the paper's verdict for the pair, with the
// citation it rests on.
func Approximability(mode Mode, class fd.Class) (ApproxStatus, string) {
	switch mode.Gen {
	case UniformRepairs:
		switch class {
		case fd.PrimaryKeys:
			if mode.Singleton {
				return StatusFPRAS, "Theorem E.1(2)"
			}
			return StatusFPRAS, "Theorem 5.1(2)"
		case fd.Keys:
			return StatusOpen, "open (counting repairs has no FPRAS: Proposition 5.5)"
		default:
			if mode.Singleton {
				return StatusNoFPRAS, "Theorem E.1(3)"
			}
			return StatusNoFPRAS, "Theorem 5.1(3)"
		}
	case UniformSequences:
		if class == fd.PrimaryKeys {
			if mode.Singleton {
				return StatusFPRAS, "Theorem E.8(2)"
			}
			return StatusFPRAS, "Theorem 6.1(2)"
		}
		return StatusOpen, "open; conjectured no FPRAS (Section 6)"
	case UniformOperations:
		switch class {
		case fd.PrimaryKeys, fd.Keys:
			return StatusFPRAS, "Theorem 7.1(2)"
		default:
			if mode.Singleton {
				return StatusFPRAS, "Theorem 7.5"
			}
			return StatusHeuristic, "open; Monte Carlo fails (Proposition D.6)"
		}
	default:
		panic("core: unknown generator")
	}
}

// AllModes lists the six operational modes — the three uniform
// generators crossed with the singleton-operation restriction — in the
// paper's presentation order. It is the iteration order of every
// exhaustive mode sweep (matrix cells, differential harnesses).
func AllModes() []Mode {
	return []Mode{
		{Gen: UniformRepairs}, {Gen: UniformRepairs, Singleton: true},
		{Gen: UniformSequences}, {Gen: UniformSequences, Singleton: true},
		{Gen: UniformOperations}, {Gen: UniformOperations, Singleton: true},
	}
}
