package core
