package core

import (
	"sort"

	"repro/internal/cq"
)

// Incremental witness maintenance primitives for the delta-estimation
// layer (facade delta.go): after a single-fact mutation, the witness
// images of a query change only at the mutated fact — deleted images
// are the ones containing it, inserted images are the ones anchored at
// it — so per-query witness state can be maintained in time
// proportional to the affected images instead of a full re-enumeration
// of Q over D.

// Witness is one homomorphic image of a query, tagged with the answer
// tuple it witnesses: the canonical (sorted, deduplicated) set of fact
// indices the image occupies.
type Witness struct {
	Tuple cq.Tuple
	Facts []int
}

// BlockOf returns the fact indices that share a conflict with fact i,
// including i itself, sorted ascending. For primary keys, conflicts are
// exactly co-membership in a key block, so this is i's block; a
// consistent fact returns the singleton {i}. The conflict structure is
// the incrementally maintained one, so the call costs O(degree(i)) and
// stays correct across InsertFact/DeleteFact lineages.
func (inst *Instance) BlockOf(i int) []int {
	ps := inst.pairsOf[i]
	out := make([]int, 0, len(ps)+1)
	out = append(out, i)
	for _, pi := range ps {
		p := inst.pairs[pi]
		if p[0] == i {
			out = append(out, p[1])
		} else {
			out = append(out, p[0])
		}
	}
	sort.Ints(out)
	return out
}

// AnchoredWitnesses enumerates the witness images of q that use the
// fact at index fi — exactly the images created by inserting that fact.
// Images are deduplicated across anchor atoms (an image using fi in two
// atoms is found once per anchor). ok is false when more than maxImages
// images are anchored at the fact (0 means DefaultMaxImages); callers
// then drop their compiled state and fall back to full recomputation.
func (inst *Instance) AnchoredWitnesses(q *cq.Query, fi int, maxImages int) ([]Witness, bool) {
	if maxImages <= 0 {
		maxImages = DefaultMaxImages
	}
	c := q.CompileFor(inst.D)
	var out []Witness
	seen := make(map[string]bool)
	scratch := make([]int, 0, len(q.Atoms))
	overflow := false
	for ai := 0; ai < c.NumAtoms() && !overflow; ai++ {
		c.AnchoredMatches(ai, fi, func(binding []int32, facts []int) bool {
			w, key := canonWitness(facts, scratch)
			if seen[key] {
				return true
			}
			seen[key] = true
			out = append(out, Witness{Tuple: c.AnswerOf(binding), Facts: append([]int(nil), w...)})
			if len(out) > maxImages {
				overflow = true
				return false
			}
			return true
		})
	}
	if overflow {
		return nil, false
	}
	return out, true
}
