package core

import (
	"sort"

	"repro/internal/cq"
	"repro/internal/rel"
)

// This file implements the multi-tuple form of the witness-image
// predicate: ONE homomorphism enumeration compiles the witness sets of
// EVERY candidate answer tuple of Q(D), so one drawn subset can be
// mapped to the full vector of satisfied tuples. It is the shared
// substrate of the exact ConsistentAnswers pass and the shared-draw
// Monte-Carlo answers estimation — the per-tuple probabilities of the
// operational semantics are defined over the SAME repair distribution,
// so one repair draw (or one exact repair-space walk) can serve all of
// them.

// MultiPred maps one subset D' ⊆ D to the set of candidate answer
// tuples c̄ with c̄ ∈ Q(D'). For most tuples the test runs over
// precompiled witness index sets (some homomorphic image contained in
// D', by CQ monotonicity); tuples whose image count exceeded the
// compile cap are instead evaluated by the subset-mask homomorphism
// search — still no sub-database materialisation. A MultiPred is
// immutable after compilation and safe for concurrent Eval calls.
type MultiPred struct {
	inst *Instance
	q    *cq.Query
	// tuples are the candidate answers Q(D), sorted by Tuple.Key — the
	// target order of Eval's out vector.
	tuples []cq.Tuple
	// witnesses[t] lists tuple t's distinct homomorphic images as
	// sorted fact-index sets; nil exactly when overflow[t].
	witnesses [][][]int
	// overflow[t] marks tuples whose image count exceeded maxImages;
	// Eval falls back to the mask-restricted search for them.
	overflow  []bool
	nOverflow int
}

// CompileMultiPred enumerates the homomorphisms from Q to D once and
// compiles, per candidate answer tuple, the deduplicated witness-image
// index sets. maxImages caps the images kept per tuple (0 means
// DefaultMaxImages); a tuple past the cap drops its compiled set and
// is marked for the fallback search — the enumeration still completes,
// because other tuples' sets are only discovered by the same pass.
func (inst *Instance) CompileMultiPred(q *cq.Query, maxImages int) *MultiPred {
	if maxImages <= 0 {
		maxImages = DefaultMaxImages
	}
	mp := &MultiPred{inst: inst, q: q}
	byKey := make(map[string]int)
	var seen []map[string]bool // per tuple: witness keys already kept
	scratch := make([]int, 0, len(q.Atoms))
	q.HomomorphismsMatched(inst.D, func(h cq.Homomorphism, facts []int) bool {
		tup := make(cq.Tuple, len(q.AnswerVars))
		for i, v := range q.AnswerVars {
			tup[i] = h[v]
		}
		ti, ok := byKey[tup.Key()]
		if !ok {
			ti = len(mp.tuples)
			byKey[tup.Key()] = ti
			mp.tuples = append(mp.tuples, tup)
			mp.witnesses = append(mp.witnesses, nil)
			mp.overflow = append(mp.overflow, false)
			seen = append(seen, make(map[string]bool))
		}
		if mp.overflow[ti] {
			return true
		}
		w, key := canonWitness(facts, scratch)
		if seen[ti][key] {
			return true
		}
		seen[ti][key] = true
		mp.witnesses[ti] = append(mp.witnesses[ti], append([]int(nil), w...))
		if len(mp.witnesses[ti]) > maxImages {
			mp.overflow[ti] = true
			mp.witnesses[ti] = nil // release: the fallback search replaces it
			seen[ti] = nil
			mp.nOverflow++
		}
		return true
	})
	mp.sortTuples()
	return mp
}

// sortTuples orders the targets by Tuple.Key — the order q.Answers
// returns and every consumer sorts by — permuting the per-tuple tables
// in lockstep.
func (mp *MultiPred) sortTuples() {
	ord := make([]int, len(mp.tuples))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(i, j int) bool { return mp.tuples[ord[i]].Key() < mp.tuples[ord[j]].Key() })
	tuples := make([]cq.Tuple, len(ord))
	witnesses := make([][][]int, len(ord))
	overflow := make([]bool, len(ord))
	for i, o := range ord {
		tuples[i], witnesses[i], overflow[i] = mp.tuples[o], mp.witnesses[o], mp.overflow[o]
	}
	mp.tuples, mp.witnesses, mp.overflow = tuples, witnesses, overflow
}

// Tuples returns the candidate answer tuples Q(D) in Eval's target
// order (sorted by Tuple.Key). The slice must not be modified.
func (mp *MultiPred) Tuples() []cq.Tuple { return mp.tuples }

// OverflowCount reports how many tuples exceeded the image cap and are
// evaluated by the fallback search per draw.
func (mp *MultiPred) OverflowCount() int { return mp.nOverflow }

// TupleWitnesses exposes tuple t's compiled witness-image index sets,
// in Tuples() order. ok is false when the tuple overflowed the compile
// cap (no compiled sets exist). The returned slices are the compiled
// tables themselves and must not be modified — callers that maintain
// witness state across mutations (the delta-estimation layer) copy what
// they keep.
func (mp *MultiPred) TupleWitnesses(t int) ([][]int, bool) {
	if t < 0 || t >= len(mp.tuples) || mp.overflow[t] {
		return nil, false
	}
	return mp.witnesses[t], true
}

// Witnesses reports the total number of compiled witness index sets
// across all non-overflowed tuples.
func (mp *MultiPred) Witnesses() int {
	n := 0
	for _, ws := range mp.witnesses {
		n += len(ws)
	}
	return n
}

// Eval sets out[t] to whether tuple t is an answer of the sub-database
// identified by s, for every target t. len(out) must equal
// len(Tuples()). Safe for concurrent use with distinct out vectors.
func (mp *MultiPred) Eval(s rel.Subset, out []bool) {
	for t := range mp.tuples {
		out[t] = mp.evalOne(t, s)
	}
}

// EvalTargets is Eval restricted to the given ascending target
// indices (nil means all); out entries outside targets are left
// untouched. The stopping-rule driver uses it to stop paying for
// tuples whose estimate has already converged.
func (mp *MultiPred) EvalTargets(s rel.Subset, out []bool, targets []int) {
	if targets == nil {
		mp.Eval(s, out)
		return
	}
	for _, t := range targets {
		out[t] = mp.evalOne(t, s)
	}
}

// evalOne tests one tuple against the subset: compiled witness sets
// where available, the mask-restricted search past the image cap.
func (mp *MultiPred) evalOne(t int, s rel.Subset) bool {
	if mp.overflow[t] {
		return mp.q.HasAnswerIn(mp.inst.D, s, mp.tuples[t])
	}
	return witnessHolds(mp.witnesses[t], s)
}
