package core

import "fmt"

// Generator selects one of the paper's uniform repairing Markov chain
// generators (Section 4).
type Generator int

const (
	// UniformRepairs is M^ur: the leaf distribution is uniform over the
	// candidate operational repairs CORep(D,Σ) (Definition A.1).
	UniformRepairs Generator = iota
	// UniformSequences is M^us: the leaf distribution is uniform over
	// the complete repairing sequences CRS(D,Σ) (Definition A.3).
	UniformSequences
	// UniformOperations is M^uo: every available operation at a step is
	// equally likely (Definition A.5).
	UniformOperations
)

// String names the generator as the paper does.
func (g Generator) String() string {
	switch g {
	case UniformRepairs:
		return "uniform repairs"
	case UniformSequences:
		return "uniform sequences"
	case UniformOperations:
		return "uniform operations"
	default:
		return fmt.Sprintf("Generator(%d)", int(g))
	}
}

// Mode is a generator together with the operation-space restriction: if
// Singleton is set, only operations removing a single fact are
// considered (the M^{·,1} generators of Section 7 and Appendix E).
type Mode struct {
	Gen       Generator
	Singleton bool
}

// Symbol renders the mode in the paper's superscript notation, e.g.
// "M^ur" or "M^uo,1".
func (m Mode) Symbol() string {
	s := "M^u"
	switch m.Gen {
	case UniformRepairs:
		s += "r"
	case UniformSequences:
		s += "s"
	case UniformOperations:
		s += "o"
	}
	if m.Singleton {
		s += ",1"
	}
	return s
}

// String renders a human-readable description.
func (m Mode) String() string {
	if m.Singleton {
		return m.Gen.String() + " (singleton operations)"
	}
	return m.Gen.String()
}
