package core

import (
	"math/big"

	"repro/internal/rel"
)

// This file implements the state-DAG exact engines. For M^us and M^uo
// (and the singleton variants) the transition law at a sequence s
// depends only on the current database s(D): the available operations
// are the (s(D),Σ)-justified ones, and
//
//   - M^uo assigns each of them probability 1/|Ops_s(D,Σ)|
//     (Definition A.5), and
//   - M^us assigns P(s,s') = |CRS_{s'}|/|CRS_s|, and |CRS_s| is a
//     function of s(D) alone (the extensions of s depend only on s(D)).
//
// Sequences are exactly the paths of the DAG of reachable
// sub-databases, so leaf-level sums become memoised DAG recursions.

// StateLimitError is returned when an exact engine would exceed its
// state budget; callers should fall back to sampling.
type StateLimitError struct{ Limit int }

func (e StateLimitError) Error() string {
	return "core: exact engine exceeded state limit"
}

// dagEngine memoises per-state values across a DAG exploration.
type dagEngine struct {
	inst      *Instance
	singleton bool
	limit     int // 0 = unlimited
	states    int
}

func (e *dagEngine) charge() error {
	e.states++
	if e.limit > 0 && e.states > e.limit {
		return StateLimitError{Limit: e.limit}
	}
	return nil
}

// CountCRS computes |CRS(D,Σ)| (or |CRS^1| with singleton set) exactly
// by the DAG path-count recursion:
//
//	N(S) = 1                       if S |= Σ
//	N(S) = Σ_{op justified at S} N(op(S))   otherwise.
//
// limit bounds the number of distinct states explored (0 = unlimited).
func (inst *Instance) CountCRS(singleton bool, limit int) (*big.Int, error) {
	e := &dagEngine{inst: inst, singleton: singleton, limit: limit}
	memo := make(map[string]*big.Int)
	n, err := e.countCRS(inst.Full(), memo)
	if err != nil {
		return nil, err
	}
	return n, nil
}

func (e *dagEngine) countCRS(s rel.Subset, memo map[string]*big.Int) (*big.Int, error) {
	key := s.Key()
	if v, ok := memo[key]; ok {
		return v, nil
	}
	if err := e.charge(); err != nil {
		return nil, err
	}
	ops := e.inst.JustifiedOps(s, e.singleton)
	if len(ops) == 0 {
		// With pair removals, a state with no justified ops is
		// consistent. With singleton removals only, the same holds:
		// any surviving violation justifies its two singleton removals.
		one := big.NewInt(1)
		memo[key] = one
		return one, nil
	}
	total := big.NewInt(0)
	for _, op := range ops {
		n, err := e.countCRS(op.Apply(s), memo)
		if err != nil {
			return nil, err
		}
		total.Add(total, n)
	}
	memo[key] = total
	return total, nil
}

// CountCRSWhere computes |{s ∈ CRS(D,Σ) | pred(s(D))}| exactly, where
// pred is evaluated on the final (consistent) state.
func (inst *Instance) CountCRSWhere(singleton bool, limit int, pred func(rel.Subset) bool) (*big.Int, error) {
	e := &dagEngine{inst: inst, singleton: singleton, limit: limit}
	memo := make(map[string]*big.Int)
	var recur func(rel.Subset) (*big.Int, error)
	recur = func(s rel.Subset) (*big.Int, error) {
		key := s.Key()
		if v, ok := memo[key]; ok {
			return v, nil
		}
		if err := e.charge(); err != nil {
			return nil, err
		}
		ops := e.inst.JustifiedOps(s, e.singleton)
		var res *big.Int
		if len(ops) == 0 {
			if pred(s) {
				res = big.NewInt(1)
			} else {
				res = big.NewInt(0)
			}
		} else {
			res = big.NewInt(0)
			for _, op := range ops {
				n, err := recur(op.Apply(s))
				if err != nil {
					return nil, err
				}
				res.Add(res, n)
			}
		}
		memo[key] = res
		return res, nil
	}
	return recur(inst.Full())
}

// SRFreq computes the sequence relative frequency (Section 6):
// srfreq_{Σ,Q}(D,c̄) = |{s ∈ CRS | pred(s(D))}| / |CRS|, with pred the
// entailment check. With singleton set it computes srfreq^1
// (Appendix E.2). It equals P_{M^us,Q}(D,c̄) by Proposition A.4.
func (inst *Instance) SRFreq(singleton bool, limit int, pred func(rel.Subset) bool) (*big.Rat, error) {
	total, err := inst.CountCRS(singleton, limit)
	if err != nil {
		return nil, err
	}
	good, err := inst.CountCRSWhere(singleton, limit, pred)
	if err != nil {
		return nil, err
	}
	if total.Sign() == 0 {
		return nil, StateLimitError{} // cannot happen: ε is always complete for consistent D
	}
	return new(big.Rat).SetFrac(good, total), nil
}

// ProbUO computes P_{M^uo,Q}(D, c̄) exactly (with singleton set, the
// M^{uo,1} analogue): the probability that a run of the uniform-
// operations chain ends in a state satisfying pred. The recursion
//
//	p(S) = [pred(S)]                          if S is a leaf
//	p(S) = (1/|Ops(S)|) · Σ_op p(op(S))       otherwise
//
// is exact on the DAG because the chain's transition law is a function
// of the state.
func (inst *Instance) ProbUO(singleton bool, limit int, pred func(rel.Subset) bool) (*big.Rat, error) {
	e := &dagEngine{inst: inst, singleton: singleton, limit: limit}
	memo := make(map[string]*big.Rat)
	var recur func(rel.Subset) (*big.Rat, error)
	recur = func(s rel.Subset) (*big.Rat, error) {
		key := s.Key()
		if v, ok := memo[key]; ok {
			return v, nil
		}
		if err := e.charge(); err != nil {
			return nil, err
		}
		ops := e.inst.JustifiedOps(s, e.singleton)
		var res *big.Rat
		if len(ops) == 0 {
			if pred(s) {
				res = big.NewRat(1, 1)
			} else {
				res = new(big.Rat)
			}
		} else {
			sum := new(big.Rat)
			for _, op := range ops {
				p, err := recur(op.Apply(s))
				if err != nil {
					return nil, err
				}
				sum.Add(sum, p)
			}
			res = sum.Mul(sum, big.NewRat(1, int64(len(ops))))
		}
		memo[key] = res
		return res, nil
	}
	return recur(inst.Full())
}

// RepairProb pairs a repair (as a subset of D) with its probability.
type RepairProb struct {
	Repair rel.Subset
	Prob   *big.Rat
}

// SemanticsUO computes the operational semantics [[D]]_{M^uo} exactly
// (Definition 3.8): the distribution over operational repairs, by
// forward-propagating path probabilities through the state DAG in
// decreasing-cardinality order.
func (inst *Instance) SemanticsUO(singleton bool, limit int) ([]RepairProb, error) {
	type entry struct {
		s    rel.Subset
		mass *big.Rat
	}
	mass := map[string]*entry{}
	full := inst.Full()
	mass[full.Key()] = &entry{s: full, mass: big.NewRat(1, 1)}
	// Process states grouped by cardinality, largest first: every
	// operation strictly shrinks the state.
	byCard := make(map[int][]*entry)
	byCard[full.Count()] = []*entry{mass[full.Key()]}
	leaves := map[string]*entry{}
	states := 0
	for card := full.Count(); card >= 0; card-- {
		for _, en := range byCard[card] {
			states++
			if limit > 0 && states > limit {
				return nil, StateLimitError{Limit: limit}
			}
			ops := inst.JustifiedOps(en.s, singleton)
			if len(ops) == 0 {
				k := en.s.Key()
				if l, ok := leaves[k]; ok {
					l.mass.Add(l.mass, en.mass)
				} else {
					leaves[k] = &entry{s: en.s, mass: new(big.Rat).Set(en.mass)}
				}
				continue
			}
			share := new(big.Rat).Mul(en.mass, big.NewRat(1, int64(len(ops))))
			for _, op := range ops {
				t := op.Apply(en.s)
				k := t.Key()
				if nx, ok := mass[k]; ok {
					nx.mass.Add(nx.mass, share)
				} else {
					nx = &entry{s: t, mass: new(big.Rat).Set(share)}
					mass[k] = nx
					byCard[t.Count()] = append(byCard[t.Count()], nx)
				}
			}
		}
	}
	out := make([]RepairProb, 0, len(leaves))
	for _, l := range leaves {
		out = append(out, RepairProb{Repair: l.s, Prob: l.mass})
	}
	sortRepairProbs(out)
	return out, nil
}

// SemanticsUS computes [[D]]_{M^us} exactly: each repair's probability
// is the fraction of complete sequences leading to it, via forward
// path-count propagation.
func (inst *Instance) SemanticsUS(singleton bool, limit int) ([]RepairProb, error) {
	type entry struct {
		s     rel.Subset
		paths *big.Int
	}
	cnt := map[string]*entry{}
	full := inst.Full()
	cnt[full.Key()] = &entry{s: full, paths: big.NewInt(1)}
	byCard := map[int][]*entry{full.Count(): {cnt[full.Key()]}}
	leaves := map[string]*entry{}
	total := big.NewInt(0)
	states := 0
	for card := full.Count(); card >= 0; card-- {
		for _, en := range byCard[card] {
			states++
			if limit > 0 && states > limit {
				return nil, StateLimitError{Limit: limit}
			}
			ops := inst.JustifiedOps(en.s, singleton)
			if len(ops) == 0 {
				k := en.s.Key()
				if l, ok := leaves[k]; ok {
					l.paths.Add(l.paths, en.paths)
				} else {
					leaves[k] = &entry{s: en.s, paths: new(big.Int).Set(en.paths)}
				}
				total.Add(total, en.paths)
				continue
			}
			for _, op := range ops {
				t := op.Apply(en.s)
				k := t.Key()
				if nx, ok := cnt[k]; ok {
					nx.paths.Add(nx.paths, en.paths)
				} else {
					nx = &entry{s: t, paths: new(big.Int).Set(en.paths)}
					cnt[k] = nx
					byCard[t.Count()] = append(byCard[t.Count()], nx)
				}
			}
		}
	}
	out := make([]RepairProb, 0, len(leaves))
	for _, l := range leaves {
		out = append(out, RepairProb{Repair: l.s, Prob: new(big.Rat).SetFrac(l.paths, total)})
	}
	sortRepairProbs(out)
	return out, nil
}

func sortRepairProbs(rp []RepairProb) {
	// Sort by repair key for deterministic output.
	for i := 1; i < len(rp); i++ {
		for j := i; j > 0 && rp[j].Repair.Key() < rp[j-1].Repair.Key(); j-- {
			rp[j], rp[j-1] = rp[j-1], rp[j]
		}
	}
}

// CountReachableStates reports the number of distinct sub-databases
// reachable by repairing sequences (including D itself), a measure of
// exact-engine cost used by the scaling experiments.
func (inst *Instance) CountReachableStates(singleton bool, limit int) (int, error) {
	seen := map[string]bool{}
	var stack []rel.Subset
	full := inst.Full()
	stack = append(stack, full)
	seen[full.Key()] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if limit > 0 && len(seen) > limit {
			return 0, StateLimitError{Limit: limit}
		}
		for _, op := range inst.JustifiedOps(s, singleton) {
			t := op.Apply(s)
			if k := t.Key(); !seen[k] {
				seen[k] = true
				stack = append(stack, t)
			}
		}
	}
	return len(seen), nil
}
