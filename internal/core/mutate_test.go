package core

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/fd"
	"repro/internal/rel"
)

func mutFixture() (*rel.Database, *fd.Set) {
	d := rel.NewDatabase(
		rel.NewFact("Emp", "1", "Alice"),
		rel.NewFact("Emp", "1", "Tom"),
		rel.NewFact("Emp", "2", "Bob"),
	)
	sch := rel.MustSchema(rel.NewRelation("Emp", 2))
	sigma := fd.MustSet(sch, fd.New("Emp", []int{0}, []int{1}))
	return d, sigma
}

// assertSameStructure checks the incrementally maintained instance is
// indistinguishable from a from-scratch NewInstance over the same
// database: identical conflict pairs, per-fact lists and degree.
func assertSameStructure(t *testing.T, got *Instance) {
	t.Helper()
	want := NewInstance(got.D, got.Sigma)
	if !reflect.DeepEqual(got.pairs, want.pairs) && (len(got.pairs) != 0 || len(want.pairs) != 0) {
		t.Fatalf("conflict pairs diverge:\nincremental %v\nfrom-scratch %v", got.pairs, want.pairs)
	}
	if !reflect.DeepEqual(got.pairsOf, want.pairsOf) {
		t.Fatalf("pairsOf diverges:\nincremental %v\nfrom-scratch %v", got.pairsOf, want.pairsOf)
	}
	if got.ConflictGraphDegree() != want.ConflictGraphDegree() {
		t.Fatalf("degree diverges: %d vs %d", got.ConflictGraphDegree(), want.ConflictGraphDegree())
	}
}

func TestInsertFactConflictingMatchesRebuild(t *testing.T) {
	d, sigma := mutFixture()
	inst := NewInstance(d, sigma)
	// A fact conflicting with the whole "2"-block and a fresh block.
	for _, f := range []rel.Fact{
		rel.NewFact("Emp", "2", "Carol"), // conflicts with Emp(2,Bob)
		rel.NewFact("Emp", "1", "Zed"),   // conflicts with both "1" facts
		rel.NewFact("Emp", "9", "Solo"),  // no conflicts
	} {
		ni, pos, err := inst.InsertFact(f)
		if err != nil {
			t.Fatalf("InsertFact(%v): %v", f, err)
		}
		if !ni.D.Fact(pos).Equal(f) {
			t.Fatalf("InsertFact(%v): returned index %d holds %v", f, pos, ni.D.Fact(pos))
		}
		if inst.D.Contains(f) {
			t.Fatalf("InsertFact mutated the receiver's database")
		}
		assertSameStructure(t, ni)
	}
}

func TestDeleteFactMatchesRebuild(t *testing.T) {
	d, sigma := mutFixture()
	inst := NewInstance(d, sigma)
	for i := 0; i < d.Len(); i++ {
		ni, err := inst.DeleteFact(i)
		if err != nil {
			t.Fatalf("DeleteFact(%d): %v", i, err)
		}
		if ni.D.Len() != d.Len()-1 {
			t.Fatalf("DeleteFact(%d): %d facts remain", i, ni.D.Len())
		}
		assertSameStructure(t, ni)
	}
}

func TestMutationErrors(t *testing.T) {
	d, sigma := mutFixture()
	inst := NewInstance(d, sigma)
	if _, _, err := inst.InsertFact(rel.NewFact("Emp", "1", "Alice")); !errors.Is(err, ErrDuplicateFact) {
		t.Fatalf("duplicate insert: %v", err)
	}
	if _, _, err := inst.InsertFact(rel.NewFact("Nope", "1")); !errors.Is(err, ErrUnknownRelation) {
		t.Fatalf("unknown relation: %v", err)
	}
	if _, _, err := inst.InsertFact(rel.NewFact("Emp", "1")); !errors.Is(err, ErrArityMismatch) {
		t.Fatalf("arity mismatch: %v", err)
	}
	if _, err := inst.DeleteFact(99); !errors.Is(err, ErrFactIndex) {
		t.Fatalf("out-of-range delete: %v", err)
	}
	if _, err := inst.DeleteFact(-1); !errors.Is(err, ErrFactIndex) {
		t.Fatalf("negative delete: %v", err)
	}
}

// TestMutationChainMatchesRebuild drives a long random insert/delete
// chain over a multi-FD schema (general FDs, not just keys) and checks
// the differential property at every step — the acceptance criterion
// that an inserted conflicting fact changes ConflictPairs identically
// to a from-scratch NewInstance.
func TestMutationChainMatchesRebuild(t *testing.T) {
	sch := rel.MustSchema(rel.NewRelation("R", 3), rel.NewRelation("S", 2))
	sigma := fd.MustSet(sch,
		fd.New("R", []int{0}, []int{1}),
		fd.New("R", []int{1, 2}, []int{0}),
		fd.New("S", []int{0}, []int{1}),
	)
	rng := rand.New(rand.NewSource(23))
	inst := NewInstance(rel.NewDatabase(), sigma)
	letter := func(n int) string { return fmt.Sprintf("c%d", rng.Intn(n)) }
	for step := 0; step < 200; step++ {
		if inst.D.Len() == 0 || rng.Intn(3) > 0 {
			var f rel.Fact
			if rng.Intn(2) == 0 {
				f = rel.NewFact("R", letter(4), letter(4), letter(4))
			} else {
				f = rel.NewFact("S", letter(4), letter(4))
			}
			ni, _, err := inst.InsertFact(f)
			if errors.Is(err, ErrDuplicateFact) {
				continue
			}
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			inst = ni
		} else {
			ni, err := inst.DeleteFact(rng.Intn(inst.D.Len()))
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			inst = ni
		}
		assertSameStructure(t, inst)
	}
}

// TestMutatedInstanceDrivesEngines checks a mutated instance is a
// first-class Instance: the exact engines agree with a from-scratch
// instance over the same database.
func TestMutatedInstanceDrivesEngines(t *testing.T) {
	d, sigma := mutFixture()
	inst := NewInstance(d, sigma)
	inst, _, err := inst.InsertFact(rel.NewFact("Emp", "2", "Carol"))
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewInstance(inst.D, inst.Sigma)
	for _, mode := range []Mode{{Gen: UniformRepairs}, {Gen: UniformSequences}, {Gen: UniformOperations, Singleton: true}} {
		got, err := inst.Semantics(mode, 0)
		if err != nil {
			t.Fatalf("%v semantics (mutated): %v", mode, err)
		}
		want, err := fresh.Semantics(mode, 0)
		if err != nil {
			t.Fatalf("%v semantics (fresh): %v", mode, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%v: %d repairs vs %d", mode, len(got), len(want))
		}
		for i := range got {
			if got[i].Repair.Key() != want[i].Repair.Key() || got[i].Prob.Cmp(want[i].Prob) != 0 {
				t.Fatalf("%v repair %d: (%v, %v) vs (%v, %v)", mode, i,
					got[i].Repair, got[i].Prob, want[i].Repair, want[i].Prob)
			}
		}
	}
}
