package core

// Incremental fact mutations. The conflict structure of (D, Σ) is the
// expensive part of NewInstance — ConflictPairs rebuckets every fact
// under every FD and scans every bucket pairwise. InsertFact and
// DeleteFact instead reuse the previous instance's structure: the
// touched fact is bucketed against each FD's LHS groups (O(block) per
// FD, via fd.Index), surviving pairs are remapped to the shifted fact
// indices, and the per-fact lists are rebuilt. Both are copy-on-write:
// the receiver, its database and its conflict structure are never
// mutated, so in-flight readers of the old instance are unaffected.

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/rel"
)

// Mutation errors. Callers distinguish them with errors.Is.
var (
	// ErrDuplicateFact: InsertFact of a fact already in D.
	ErrDuplicateFact = errors.New("core: fact already present")
	// ErrUnknownRelation: the fact's relation is not in Σ's schema.
	ErrUnknownRelation = errors.New("core: unknown relation")
	// ErrArityMismatch: the fact's arity differs from the schema's.
	ErrArityMismatch = errors.New("core: arity mismatch")
	// ErrFactIndex: DeleteFact index outside [0, |D|).
	ErrFactIndex = errors.New("core: fact index out of range")
)

// InsertFact returns a new instance for (D ∪ {f}, Σ) together with the
// index assigned to f, updating the conflict structure incrementally:
// old pairs are remapped across the index shift and the new fact's
// conflicts are discovered by bucketing it against each FD's LHS
// groups — O(‖D‖ + |pairs|) bookkeeping plus O(block) violation
// checks, instead of NewInstance's full recompute.
func (inst *Instance) InsertFact(f rel.Fact) (*Instance, int, error) {
	r, ok := inst.Sigma.Schema().Relation(f.Rel)
	if !ok {
		return nil, 0, fmt.Errorf("%w: %q is not in the schema", ErrUnknownRelation, f.Rel)
	}
	if len(f.Args) != r.Arity() {
		return nil, 0, fmt.Errorf("%w: %s has %d arguments, relation %s/%d",
			ErrArityMismatch, f, len(f.Args), f.Rel, r.Arity())
	}
	d2, pos, fresh := inst.D.Insert(f)
	if !fresh {
		return nil, pos, fmt.Errorf("%w: %s (index %d)", ErrDuplicateFact, f, pos)
	}
	ix2 := inst.lhsIndex().WithInsert(d2, pos)

	// Remap surviving pairs across the shift (monotone, so the list
	// stays sorted), then merge in the new fact's conflicts.
	pairs := make([][2]int, 0, len(inst.pairs)+4)
	for _, p := range inst.pairs {
		a, b := p[0], p[1]
		if a >= pos {
			a++
		}
		if b >= pos {
			b++
		}
		pairs = append(pairs, [2]int{a, b})
	}
	for _, j := range ix2.ConflictsOf(d2, pos) {
		a, b := pos, j
		if a > b {
			a, b = b, a
		}
		pairs = append(pairs, [2]int{a, b})
	}
	sortPairs(pairs)

	out := &Instance{D: d2, Sigma: inst.Sigma, pairs: pairs, index: ix2}
	out.rebuildPairsOf()
	return out, pos, nil
}

// DeleteFact returns a new instance for (D ∖ {f_i}, Σ): pairs touching
// i are dropped, the rest remapped across the index shift. The same
// copy-on-write and cost bounds as InsertFact apply.
func (inst *Instance) DeleteFact(i int) (*Instance, error) {
	if i < 0 || i >= inst.D.Len() {
		return nil, fmt.Errorf("%w: %d not in [0,%d)", ErrFactIndex, i, inst.D.Len())
	}
	d2 := inst.D.Remove(i)
	ix2 := inst.lhsIndex().WithRemove(d2, i)
	pairs := make([][2]int, 0, len(inst.pairs))
	for _, p := range inst.pairs {
		if p[0] == i || p[1] == i {
			continue
		}
		a, b := p[0], p[1]
		if a > i {
			a--
		}
		if b > i {
			b--
		}
		pairs = append(pairs, [2]int{a, b})
	}
	out := &Instance{D: d2, Sigma: inst.Sigma, pairs: pairs, index: ix2}
	out.rebuildPairsOf()
	return out, nil
}

// sortPairs orders conflict pairs the way ConflictPairs does, so the
// incremental structure is bit-identical to a from-scratch rebuild.
func sortPairs(pairs [][2]int) {
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a][0] != pairs[b][0] {
			return pairs[a][0] < pairs[b][0]
		}
		return pairs[a][1] < pairs[b][1]
	})
}
