package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	ocqa "repro"
	"repro/internal/buildinfo"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/sampler"
)

// serverMetrics is the server's metrics core: every operational counter
// lives in one metrics.Registry, so the same registered values feed the
// back-compatible JSON /varz snapshot and the Prometheus text at
// GET /metrics. Handler hot paths touch pre-resolved handles (one
// atomic op each); anything derivable from live state — registry size,
// cache occupancy, per-instance gauges, store stats — is read at
// scrape time instead, via func metrics and the collect hook.
type serverMetrics struct {
	reg *metrics.Registry

	queriesServed  *metrics.Counter
	exactQueries   *metrics.Counter
	approxQueries  *metrics.Counter
	answersQueries *metrics.Counter
	answerTuples   *metrics.Counter
	batchRequests  *metrics.Counter
	cacheHits      *metrics.Counter
	cacheMisses    *metrics.Counter
	refusals       *metrics.Counter
	timeouts       *metrics.Counter
	errors         *metrics.Counter
	sampleDraws    *metrics.Counter
	registered     *metrics.Counter
	mutations      *metrics.Counter
	evictions      *metrics.Counter
	// cacheRefreshes counts result-cache entries delta-refreshed in
	// place after a mutation; deltaRefreshLatency is the per-entry
	// refresh latency (the mutate-then-requery cost a client no longer
	// pays).
	cacheRefreshes      *metrics.Counter
	deltaRefreshLatency *metrics.Histogram

	// Replication counters: feed pulls served as an owner, incremental
	// ops and full-state transfers applied as a follower, replicas
	// promoted into the live registry, and query-path requests shed by
	// the inflight gate.
	replFeeds      *metrics.Counter
	replOpsApplied *metrics.Counter
	replFullSyncs  *metrics.Counter
	replPromotes   *metrics.Counter
	shedRequests   *metrics.Counter

	// Per-endpoint request observability, fed by ServeHTTP for every
	// request (the classified endpoint label keeps cardinality fixed).
	httpRequests *metrics.CounterVec   // endpoint, code
	httpLatency  *metrics.HistogramVec // endpoint

	// Engine run histograms, fed by the engine's run hook: one
	// observation per estimation run, cancelled runs included.
	engineDraws *metrics.Histogram
	engineWall  *metrics.Histogram

	// Empirical (ε, δ)-envelope coverage: an approx single-tuple result
	// whose exact counterpart is in the result cache is checked against
	// |est − v| ≤ ε·v and counted per instance.
	coverageChecks *metrics.CounterVec // instance
	coverageWithin *metrics.CounterVec // instance

	// Per-instance gauges, rebuilt from the registry at every scrape.
	instFacts     *metrics.GaugeVec // instance
	instBlocks    *metrics.GaugeVec
	instConflicts *metrics.GaugeVec
	instGen       *metrics.GaugeVec
	instRuns      *metrics.GaugeVec
	instDraws     *metrics.GaugeVec
	instWall      *metrics.GaugeVec
}

// latencyBuckets spans 1 ms – ~65 s in ×4 steps: wide enough for both
// cache hits and near-deadline estimations, cheap enough to render.
func latencyBuckets() []float64 { return metrics.ExponentialBuckets(0.001, 4, 9) }

func newServerMetrics(s *Server) *serverMetrics {
	r := metrics.New()
	m := &serverMetrics{reg: r}

	m.queriesServed = r.NewCounter("ocqa_queries_served_total",
		"Requests served by the query, batch-element, count and marginals paths.")
	m.exactQueries = r.NewCounter("ocqa_exact_queries_total", "Queries executed by the exact engines.")
	m.approxQueries = r.NewCounter("ocqa_approx_queries_total", "Queries executed by the estimation engines.")
	m.answersQueries = r.NewCounter("ocqa_answers_queries_total",
		"Queries executed in all-answers shape (every tuple of Q(D) in one computation).")
	m.answerTuples = r.NewCounter("ocqa_answer_tuples_total", "Tuples returned by all-answers queries.")
	m.batchRequests = r.NewCounter("ocqa_batch_requests_total", "Batch requests accepted.")
	m.cacheHits = r.NewCounter("ocqa_result_cache_hits_total", "Query executions served from the result cache.")
	m.cacheMisses = r.NewCounter("ocqa_result_cache_misses_total", "Query executions that missed the result cache.")
	m.refusals = r.NewCounter("ocqa_refusals_total", "Requests refused by the approximability matrix or a state budget (HTTP 422).")
	m.timeouts = r.NewCounter("ocqa_timeouts_total", "Requests that exceeded the server deadline (HTTP 504).")
	m.errors = r.NewCounter("ocqa_errors_total", "Requests failed with any other error status.")
	m.sampleDraws = r.NewCounter("ocqa_sample_draws_total",
		"Monte-Carlo draws accounted at the handler level (shared passes count their longest prefix once).")
	m.registered = r.NewCounter("ocqa_instances_registered_total", "Instance registrations over the server's lifetime.")
	m.mutations = r.NewCounter("ocqa_fact_mutations_total", "Applied insert-fact and delete-fact operations.")
	m.evictions = r.NewCounter("ocqa_instance_evictions_total", "Instances evicted by over-capacity registrations.")
	m.cacheRefreshes = r.NewCounter("ocqa_result_cache_delta_refreshes_total",
		"Result-cache entries re-executed against the post-mutation generation and re-cached in place.")
	m.deltaRefreshLatency = r.NewHistogram("ocqa_delta_refresh_seconds",
		"Latency of one result-cache entry's delta-refresh after a fact mutation.",
		metrics.ExponentialBuckets(0.0001, 4, 10))

	m.replFeeds = r.NewCounter("ocqa_replication_feeds_total",
		"Replication feed pulls served to follower backends.")
	m.replOpsApplied = r.NewCounter("ocqa_replication_ops_applied_total",
		"Incremental mutation ops applied to local replicas.")
	m.replFullSyncs = r.NewCounter("ocqa_replication_full_syncs_total",
		"Replica syncs that fell back to a full-state transfer.")
	m.replPromotes = r.NewCounter("ocqa_replication_promotions_total",
		"Replicas promoted into the live registry (failovers).")
	m.shedRequests = r.NewCounter("ocqa_shed_requests_total",
		"Query-path requests shed with HTTP 503 by the inflight load gate.")

	m.httpRequests = r.NewCounterVec("ocqa_http_requests_total",
		"HTTP requests by classified endpoint and status code.", "endpoint", "code")
	m.httpLatency = r.NewHistogramVec("ocqa_http_request_duration_seconds",
		"HTTP request latency by classified endpoint.", latencyBuckets(), "endpoint")

	m.engineDraws = r.NewHistogram("ocqa_engine_run_draws",
		"Monte-Carlo draws per estimation run (discarded parallel tails included).",
		metrics.ExponentialBuckets(256, 4, 10))
	m.engineWall = r.NewHistogram("ocqa_engine_run_duration_seconds",
		"Wall time per estimation run.", metrics.ExponentialBuckets(0.0001, 4, 10))

	m.coverageChecks = r.NewCounterVec("ocqa_coverage_checks_total",
		"Approx results compared against a cached exact counterpart.", "instance")
	m.coverageWithin = r.NewCounterVec("ocqa_coverage_within_total",
		"Compared approx results that landed inside their (epsilon, delta) envelope.", "instance")

	m.instFacts = r.NewGaugeVec("ocqa_instance_facts", "Facts in the instance's database.", "instance")
	m.instBlocks = r.NewGaugeVec("ocqa_instance_blocks",
		"Non-singleton conflict blocks (present only once the sampler artifacts are built).", "instance")
	m.instConflicts = r.NewGaugeVec("ocqa_instance_conflict_pairs", "Conflicting fact pairs.", "instance")
	m.instGen = r.NewGaugeVec("ocqa_instance_generation", "Mutation generation (1 at registration).", "instance")
	m.instRuns = r.NewGaugeVec("ocqa_instance_estimation_runs", "Estimation runs served by the instance's current generation.", "instance")
	m.instDraws = r.NewGaugeVec("ocqa_instance_estimation_draws", "Monte-Carlo draws consumed by the instance's current generation.", "instance")
	m.instWall = r.NewGaugeVec("ocqa_instance_estimation_seconds", "Estimation wall time spent on the instance's current generation.", "instance")

	// The info-gauge idiom: a constant 1 whose labels identify the
	// running binary, joinable against any other series. The fields
	// mirror the provenance stamp ocqa-bench writes into BENCH_*.json,
	// so a scrape and a bench file name builds the same way.
	buildInfo := r.NewGaugeVec("ocqa_build_info",
		"Build identity of the running binary (constant 1; the labels carry the information).",
		"git_commit", "go_version", "gomaxprocs")
	buildInfo.With(buildinfo.Commit(), buildinfo.GoVersion(), strconv.Itoa(buildinfo.MaxProcs())).Set(1)

	r.NewGaugeFunc("ocqa_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
	r.NewGaugeFunc("ocqa_instances", "Instances currently registered.",
		func() float64 { return float64(s.reg.len()) })
	r.NewGaugeFunc("ocqa_replicas", "Warm follower replicas currently held.",
		func() float64 { return float64(len(s.repl.listReplicas())) })
	r.NewGaugeFunc("ocqa_result_cache_entries", "Entries in the result cache.",
		func() float64 { return float64(s.cache.len()) })
	r.NewCounterFunc("ocqa_result_cache_evictions_total", "Result-cache entries evicted by the LRU capacity bound.",
		func() float64 { return float64(s.cache.evicted()) })
	r.NewCounterFunc("ocqa_sampler_constructions_total", "DP-table sampler constructions process-wide.",
		func() float64 { return float64(sampler.Constructions()) })
	r.NewCounterFunc("ocqa_engine_samples_drawn_total", "Monte-Carlo draws performed by the estimation engine process-wide.",
		func() float64 { return float64(engine.SamplesDrawn()) })
	r.NewCounterFunc("ocqa_engine_cancelled_runs_total", "Estimation runs stopped early by context cancellation.",
		func() float64 { return float64(engine.CancelledRuns()) })
	r.NewCounterFunc("ocqa_engine_multi_runs_total", "Shared-draw multi-target estimation passes.",
		func() float64 { return float64(engine.MultiRuns()) })
	r.NewCounterFunc("ocqa_engine_multi_targets_total", "Answer tuples served by shared-draw passes.",
		func() float64 { return float64(engine.MultiTargets()) })
	r.NewCounterFunc("ocqa_engine_auto_worker_runs_total", "Estimation runs whose worker count was resolved adaptively.",
		func() float64 { return float64(engine.AutoWorkerRuns()) })
	r.NewCounterFunc("ocqa_delta_refreshes_total", "Warm delta-path evaluations served by the incremental estimation layer process-wide.",
		func() float64 { return float64(ocqa.DeltaRefreshes()) })
	r.NewCounterFunc("ocqa_delta_factor_cache_hits_total", "Per-block exact factor cache hits in the delta estimation layer.",
		func() float64 { return float64(ocqa.DeltaFactorCacheHits()) })
	r.NewCounterFunc("ocqa_delta_factor_cache_misses_total", "Per-block exact factor cache misses (factors recomputed) in the delta estimation layer.",
		func() float64 { return float64(ocqa.DeltaFactorCacheMisses()) })
	r.NewCounterFunc("ocqa_delta_reused_draws_total", "Monte-Carlo draws whose statistics were reused from a previous generation's strata instead of being redrawn.",
		func() float64 { return float64(ocqa.DeltaReusedDraws()) })
	r.NewGaugeFunc("ocqa_engine_last_auto_workers", "Worker count chosen by the most recent adaptive resolution.",
		func() float64 { return float64(engine.LastAutoWorkers()) })

	if s.store != nil {
		r.NewCounterFunc("ocqa_store_wal_appends_total", "WAL append batches.",
			func() float64 { return float64(s.store.Stats().WalAppends) })
		r.NewCounterFunc("ocqa_store_wal_records_total", "WAL records written.",
			func() float64 { return float64(s.store.Stats().WalRecords) })
		r.NewCounterFunc("ocqa_store_snapshots_total", "Snapshots written.",
			func() float64 { return float64(s.store.Stats().Snapshots) })
		r.NewCounterFunc("ocqa_store_replayed_ops_total", "Operations replayed at boot.",
			func() float64 { return float64(s.store.Stats().ReplayedOps) })
		r.NewCounterFunc("ocqa_store_compactions_total", "Log compactions performed.",
			func() float64 { return float64(s.store.Stats().Compactions) })
	}

	r.OnCollect(s.collectInstanceGauges)
	return m
}

// collectInstanceGauges rebuilds the per-instance gauge families from
// the current registry — deregistered instances drop out of the scrape
// rather than freezing at their last value. BlockCount deliberately
// never forces a deferred sampler build: a metrics scrape must stay
// read-only.
func (s *Server) collectInstanceGauges() {
	m := s.met
	for _, v := range []*metrics.GaugeVec{
		m.instFacts, m.instBlocks, m.instConflicts, m.instGen,
		m.instRuns, m.instDraws, m.instWall,
	} {
		v.Reset()
	}
	for _, e := range s.reg.list() {
		in := e.prepared.Instance
		m.instFacts.With(e.id).Set(float64(in.DB().Len()))
		m.instConflicts.With(e.id).Set(float64(len(in.Core().ConflictPairs())))
		m.instGen.With(e.id).Set(float64(e.gen))
		if n, ok := e.prepared.BlockCount(); ok {
			m.instBlocks.With(e.id).Set(float64(n))
		}
		u := e.prepared.Usage()
		m.instRuns.With(e.id).Set(float64(u.Runs))
		m.instDraws.With(e.id).Set(float64(u.Draws))
		m.instWall.With(e.id).Set(time.Duration(u.WallNanos).Seconds())
	}
}

// varz is the JSON shape of GET /varz. The original field set is a
// compatibility contract — dashboards read it — so fields are only ever
// added, and every value is sourced from the same registry handles that
// feed GET /metrics.
type varz struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Instances     int     `json:"instances"`
	CacheEntries  int     `json:"cache_entries"`

	// Build identifies the running binary — the same fields ocqa-bench
	// stamps into BENCH_*.json, so a /varz snapshot and a bench file can
	// be matched to the same build.
	Build buildVarz `json:"build"`

	QueriesServed int64 `json:"queries_served"`
	ExactQueries  int64 `json:"exact_queries"`
	ApproxQueries int64 `json:"approx_queries"`
	// AnswersQueries counts queries executed in all-answers shape (no
	// explicit tuple): every tuple of Q(D) served by one computation.
	// AnswerTuples totals the tuples those queries returned.
	AnswersQueries int64 `json:"answers_queries"`
	AnswerTuples   int64 `json:"answer_tuples"`
	BatchRequests  int64 `json:"batch_requests"`
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	Refusals       int64 `json:"refusals"`
	Timeouts       int64 `json:"timeouts"`
	Errors         int64 `json:"errors"`
	// SampleDraws totals the Monte-Carlo draws consumed by approx
	// queries and marginals.
	SampleDraws int64 `json:"sample_draws"`
	// InstancesRegistered counts registrations over the server's
	// lifetime (deletions do not decrement it).
	InstancesRegistered int64 `json:"instances_registered"`
	// FactMutations counts applied insert-fact/delete-fact operations.
	FactMutations int64 `json:"fact_mutations"`
	// Evictions counts LRU evictions performed by over-capacity
	// registrations.
	Evictions int64 `json:"evictions"`
	// SamplerConstructions counts DP-table sampler constructions
	// process-wide; with prepared instances it moves at registration
	// time only, never per query.
	SamplerConstructions int64 `json:"sampler_constructions"`

	// EngineSamplesDrawn counts Monte-Carlo draws performed by the
	// estimation engine process-wide, partial draws of cancelled runs
	// included (unlike SampleDraws, which accounts requested budgets at
	// the handler level).
	EngineSamplesDrawn int64 `json:"engine_samples_drawn"`
	// EngineCancelledRuns counts estimation runs stopped early by
	// context cancellation (server deadline or client disconnect) —
	// each one is sampling work that no longer burns a worker to
	// completion.
	EngineCancelledRuns int64 `json:"engine_cancelled_runs"`
	// EngineMultiRuns counts shared-draw multi-target estimation
	// passes (one per all-answers approximation); EngineMultiTargets
	// totals the answer tuples those passes served, so
	// EngineMultiTargets/EngineMultiRuns is the mean fan-out a single
	// Monte-Carlo pass amortised.
	EngineMultiRuns    int64 `json:"engine_multi_runs"`
	EngineMultiTargets int64 `json:"engine_multi_targets"`
	// EngineAutoWorkerRuns counts estimation runs whose worker count
	// was resolved adaptively (request had workers ≤ 0);
	// EngineLastAutoWorkers is the count the most recent such
	// resolution chose, so an operator can see what "auto" currently
	// means on this host and workload.
	EngineAutoWorkerRuns  int64 `json:"engine_auto_worker_runs"`
	EngineLastAutoWorkers int64 `json:"engine_last_auto_workers"`

	// ResultCacheEvictions counts result-cache entries dropped by the
	// LRU capacity bound (instance-scoped invalidations not included).
	ResultCacheEvictions int64 `json:"result_cache_evictions"`
	// DeltaRefreshes counts warm delta-path evaluations served by the
	// incremental estimation layer (library-wide). DeltaFactorCacheHits
	// and DeltaFactorCacheMisses split the per-block exact factor cache
	// lookups behind them; DeltaReusedDraws totals the Monte-Carlo draws
	// whose statistics were carried over from a previous generation's
	// strata instead of being redrawn. CacheDeltaRefreshes counts
	// result-cache entries the server re-executed and re-cached in place
	// after a mutation.
	DeltaRefreshes         int64 `json:"delta_refreshes"`
	DeltaFactorCacheHits   int64 `json:"delta_factor_cache_hits"`
	DeltaFactorCacheMisses int64 `json:"delta_factor_cache_misses"`
	DeltaReusedDraws       int64 `json:"delta_reused_draws"`
	CacheDeltaRefreshes    int64 `json:"result_cache_delta_refreshes"`
	// Replication: ReplFeeds counts feed pulls served to followers,
	// ReplOpsApplied incremental ops applied to local replicas,
	// ReplFullSyncs syncs that fell back to a full-state transfer,
	// ReplPromotes replicas promoted into the live registry (failovers),
	// Replicas the warm replicas currently held, and ShedRequests
	// query-path requests shed with 503 by the inflight load gate.
	ReplFeeds      int64 `json:"replication_feeds"`
	ReplOpsApplied int64 `json:"replication_ops_applied"`
	ReplFullSyncs  int64 `json:"replication_full_syncs"`
	ReplPromotes   int64 `json:"replication_promotions"`
	Replicas       int   `json:"replicas"`
	ShedRequests   int64 `json:"shed_requests"`
	// CoverageChecks / CoverageWithin total the empirical
	// (ε, δ)-envelope checks across instances: approx results compared
	// against a cached exact counterpart, and how many landed within
	// ε relative error.
	CoverageChecks int64 `json:"coverage_checks"`
	CoverageWithin int64 `json:"coverage_within"`
	// EndpointLatency summarises the per-endpoint request histograms;
	// endpoints that have served no requests are omitted.
	EndpointLatency map[string]endpointLatency `json:"endpoint_latency,omitempty"`

	// Persistence counters, all zero when the server runs without a
	// durable store (-data-dir unset).
	Persistent  bool  `json:"persistent"`
	WalAppends  int64 `json:"wal_appends"`
	WalRecords  int64 `json:"wal_records"`
	Snapshots   int64 `json:"snapshots"`
	ReplayedOps int64 `json:"replayed_ops"`
	Compactions int64 `json:"compactions"`
}

// buildVarz is the build-identity object in /varz.
type buildVarz struct {
	GitCommit  string `json:"git_commit"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"gomaxprocs"`
}

// endpointLatency is one endpoint's latency summary in /varz.
type endpointLatency struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50_seconds"`
	P90   float64 `json:"p90_seconds"`
	P99   float64 `json:"p99_seconds"`
}

func (s *Server) handleVarz(w http.ResponseWriter, r *http.Request) {
	m := s.met
	v := varz{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Instances:     s.reg.len(),
		CacheEntries:  s.cache.len(),
		Build: buildVarz{
			GitCommit:  buildinfo.Commit(),
			GoVersion:  buildinfo.GoVersion(),
			NumCPU:     buildinfo.NumCPU(),
			GoMaxProcs: buildinfo.MaxProcs(),
		},
		QueriesServed:          m.queriesServed.Value(),
		ExactQueries:           m.exactQueries.Value(),
		ApproxQueries:          m.approxQueries.Value(),
		AnswersQueries:         m.answersQueries.Value(),
		AnswerTuples:           m.answerTuples.Value(),
		BatchRequests:          m.batchRequests.Value(),
		CacheHits:              m.cacheHits.Value(),
		CacheMisses:            m.cacheMisses.Value(),
		Refusals:               m.refusals.Value(),
		Timeouts:               m.timeouts.Value(),
		Errors:                 m.errors.Value(),
		SampleDraws:            m.sampleDraws.Value(),
		InstancesRegistered:    m.registered.Value(),
		FactMutations:          m.mutations.Value(),
		Evictions:              m.evictions.Value(),
		SamplerConstructions:   sampler.Constructions(),
		EngineSamplesDrawn:     engine.SamplesDrawn(),
		EngineCancelledRuns:    engine.CancelledRuns(),
		EngineMultiRuns:        engine.MultiRuns(),
		EngineMultiTargets:     engine.MultiTargets(),
		EngineAutoWorkerRuns:   engine.AutoWorkerRuns(),
		EngineLastAutoWorkers:  engine.LastAutoWorkers(),
		ResultCacheEvictions:   s.cache.evicted(),
		DeltaRefreshes:         ocqa.DeltaRefreshes(),
		DeltaFactorCacheHits:   ocqa.DeltaFactorCacheHits(),
		DeltaFactorCacheMisses: ocqa.DeltaFactorCacheMisses(),
		DeltaReusedDraws:       ocqa.DeltaReusedDraws(),
		CacheDeltaRefreshes:    m.cacheRefreshes.Value(),
		ReplFeeds:              m.replFeeds.Value(),
		ReplOpsApplied:         m.replOpsApplied.Value(),
		ReplFullSyncs:          m.replFullSyncs.Value(),
		ReplPromotes:           m.replPromotes.Value(),
		Replicas:               len(s.repl.listReplicas()),
		ShedRequests:           m.shedRequests.Value(),
	}
	m.coverageChecks.Each(func(_ []string, n int64) { v.CoverageChecks += n })
	m.coverageWithin.Each(func(_ []string, n int64) { v.CoverageWithin += n })
	m.httpLatency.Each(func(labels []string, h *metrics.Histogram) {
		if h.Count() == 0 {
			return // Quantile is NaN on an empty histogram, which JSON cannot carry
		}
		if v.EndpointLatency == nil {
			v.EndpointLatency = make(map[string]endpointLatency)
		}
		v.EndpointLatency[labels[0]] = endpointLatency{
			Count: h.Count(),
			P50:   h.Quantile(0.5),
			P90:   h.Quantile(0.9),
			P99:   h.Quantile(0.99),
		}
	})
	if s.store != nil {
		st := s.store.Stats()
		v.Persistent = true
		v.WalAppends = st.WalAppends
		v.WalRecords = st.WalRecords
		v.Snapshots = st.Snapshots
		v.ReplayedOps = st.ReplayedOps
		v.Compactions = st.Compactions
	}
	writeJSON(w, http.StatusOK, v)
}

// handleMetrics serves the registry in the Prometheus text exposition
// format (version 0.0.4).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.met.reg.WritePrometheus(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// writeJSON renders v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
