package server

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/sampler"
)

// counters are the server's expvar-style operational counters, all
// lock-free and safe under concurrent handlers. They are exposed as
// JSON at GET /varz.
type counters struct {
	queriesServed  atomic.Int64
	exactQueries   atomic.Int64
	approxQueries  atomic.Int64
	answersQueries atomic.Int64
	answerTuples   atomic.Int64
	batchRequests  atomic.Int64
	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	refusals       atomic.Int64
	timeouts       atomic.Int64
	errors         atomic.Int64
	sampleDraws    atomic.Int64
	registered     atomic.Int64
	mutations      atomic.Int64
	evictions      atomic.Int64
}

// varz is the JSON shape of GET /varz.
type varz struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Instances     int     `json:"instances"`
	CacheEntries  int     `json:"cache_entries"`

	QueriesServed int64 `json:"queries_served"`
	ExactQueries  int64 `json:"exact_queries"`
	ApproxQueries int64 `json:"approx_queries"`
	// AnswersQueries counts queries executed in all-answers shape (no
	// explicit tuple): every tuple of Q(D) served by one computation.
	// AnswerTuples totals the tuples those queries returned.
	AnswersQueries int64 `json:"answers_queries"`
	AnswerTuples   int64 `json:"answer_tuples"`
	BatchRequests  int64 `json:"batch_requests"`
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	Refusals       int64 `json:"refusals"`
	Timeouts       int64 `json:"timeouts"`
	Errors         int64 `json:"errors"`
	// SampleDraws totals the Monte-Carlo draws consumed by approx
	// queries and marginals.
	SampleDraws int64 `json:"sample_draws"`
	// InstancesRegistered counts registrations over the server's
	// lifetime (deletions do not decrement it).
	InstancesRegistered int64 `json:"instances_registered"`
	// FactMutations counts applied insert-fact/delete-fact operations.
	FactMutations int64 `json:"fact_mutations"`
	// Evictions counts LRU evictions performed by over-capacity
	// registrations.
	Evictions int64 `json:"evictions"`
	// SamplerConstructions counts DP-table sampler constructions
	// process-wide; with prepared instances it moves at registration
	// time only, never per query.
	SamplerConstructions int64 `json:"sampler_constructions"`

	// EngineSamplesDrawn counts Monte-Carlo draws performed by the
	// estimation engine process-wide, partial draws of cancelled runs
	// included (unlike SampleDraws, which accounts requested budgets at
	// the handler level).
	EngineSamplesDrawn int64 `json:"engine_samples_drawn"`
	// EngineCancelledRuns counts estimation runs stopped early by
	// context cancellation (server deadline or client disconnect) —
	// each one is sampling work that no longer burns a worker to
	// completion.
	EngineCancelledRuns int64 `json:"engine_cancelled_runs"`
	// EngineMultiRuns counts shared-draw multi-target estimation
	// passes (one per all-answers approximation); EngineMultiTargets
	// totals the answer tuples those passes served, so
	// EngineMultiTargets/EngineMultiRuns is the mean fan-out a single
	// Monte-Carlo pass amortised.
	EngineMultiRuns    int64 `json:"engine_multi_runs"`
	EngineMultiTargets int64 `json:"engine_multi_targets"`

	// Persistence counters, all zero when the server runs without a
	// durable store (-data-dir unset).
	Persistent  bool  `json:"persistent"`
	WalAppends  int64 `json:"wal_appends"`
	WalRecords  int64 `json:"wal_records"`
	Snapshots   int64 `json:"snapshots"`
	ReplayedOps int64 `json:"replayed_ops"`
	Compactions int64 `json:"compactions"`
}

func (s *Server) handleVarz(w http.ResponseWriter, r *http.Request) {
	v := varz{
		UptimeSeconds:        time.Since(s.start).Seconds(),
		Instances:            s.reg.len(),
		CacheEntries:         s.cache.len(),
		QueriesServed:        s.counters.queriesServed.Load(),
		ExactQueries:         s.counters.exactQueries.Load(),
		ApproxQueries:        s.counters.approxQueries.Load(),
		AnswersQueries:       s.counters.answersQueries.Load(),
		AnswerTuples:         s.counters.answerTuples.Load(),
		BatchRequests:        s.counters.batchRequests.Load(),
		CacheHits:            s.counters.cacheHits.Load(),
		CacheMisses:          s.counters.cacheMisses.Load(),
		Refusals:             s.counters.refusals.Load(),
		Timeouts:             s.counters.timeouts.Load(),
		Errors:               s.counters.errors.Load(),
		SampleDraws:          s.counters.sampleDraws.Load(),
		InstancesRegistered:  s.counters.registered.Load(),
		FactMutations:        s.counters.mutations.Load(),
		Evictions:            s.counters.evictions.Load(),
		SamplerConstructions: sampler.Constructions(),
		EngineSamplesDrawn:   engine.SamplesDrawn(),
		EngineCancelledRuns:  engine.CancelledRuns(),
		EngineMultiRuns:      engine.MultiRuns(),
		EngineMultiTargets:   engine.MultiTargets(),
	}
	if s.store != nil {
		st := s.store.Stats()
		v.Persistent = true
		v.WalAppends = st.WalAppends
		v.WalRecords = st.WalRecords
		v.Snapshots = st.Snapshots
		v.ReplayedOps = st.ReplayedOps
		v.Compactions = st.Compactions
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// writeJSON renders v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
