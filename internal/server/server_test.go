package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	ocqa "repro"
	"repro/internal/sampler"
)

// Text fixtures: a primary-key instance with two conflicting blocks
// (the running Emp example) and a general-FD instance (the FD is not a
// key, so the class is GeneralFDs and M^ur has no FPRAS).
const (
	pkFacts = "Emp(1,Alice)\nEmp(1,Tom)\nEmp(2,Bob)\nEmp(3,Eve)\nEmp(3,Mallory)\n"
	pkFDs   = "Emp: A1 -> A2\n"

	fdFacts = "R(1,x,p)\nR(1,y,q)\nR(2,x,r)\n"
	fdFDs   = "R: A1 -> A2\n"
)

func newTestServer(t *testing.T, opts Options) (*httptest.Server, *Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts, s
}

// do posts (or gets/deletes) JSON and decodes the response into out,
// returning the HTTP status.
func do(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s %s response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func register(t *testing.T, base, facts, fds string) RegisterResponse {
	t.Helper()
	var reg RegisterResponse
	status := do(t, http.MethodPost, base+"/v1/instances", RegisterRequest{Facts: facts, FDs: fds}, &reg)
	if status != http.StatusCreated {
		t.Fatalf("register: status %d", status)
	}
	return reg
}

func TestRegistryLifecycle(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	reg := register(t, ts.URL, pkFacts, pkFDs)
	if reg.ID == "" || reg.Facts != 5 || !reg.Prepared {
		t.Fatalf("unexpected register response: %+v", reg)
	}
	if reg.Class != ocqa.PrimaryKeys.String() {
		t.Fatalf("class = %q, want primary keys", reg.Class)
	}

	var listed []InstanceInfo
	if status := do(t, http.MethodGet, ts.URL+"/v1/instances", nil, &listed); status != http.StatusOK {
		t.Fatalf("list: status %d", status)
	}
	if len(listed) != 1 || listed[0].ID != reg.ID {
		t.Fatalf("list = %+v", listed)
	}

	var info InstanceInfo
	if status := do(t, http.MethodGet, ts.URL+"/v1/instances/"+reg.ID, nil, &info); status != http.StatusOK {
		t.Fatalf("info: status %d", status)
	}
	if info.Facts != 5 || info.Consistent {
		t.Fatalf("info = %+v", info)
	}

	if status := do(t, http.MethodDelete, ts.URL+"/v1/instances/"+reg.ID, nil, nil); status != http.StatusOK {
		t.Fatalf("delete: status %d", status)
	}
	var e errorResponse
	if status := do(t, http.MethodPost, ts.URL+"/v1/instances/"+reg.ID+"/query",
		QueryRequest{Generator: "ur", Mode: "exact", Query: "Ans(n) :- Emp(i, n)"}, &e); status != http.StatusNotFound {
		t.Fatalf("query after delete: status %d, body %+v", status, e)
	}
}

func TestBadRequests(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	reg := register(t, ts.URL, pkFacts, pkFDs)
	qURL := ts.URL + "/v1/instances/" + reg.ID + "/query"

	cases := []struct {
		name string
		req  QueryRequest
	}{
		{"bad generator", QueryRequest{Generator: "xx", Mode: "exact", Query: "Ans(n) :- Emp(i, n)"}},
		{"bad mode", QueryRequest{Generator: "ur", Mode: "guess", Query: "Ans(n) :- Emp(i, n)"}},
		{"bad query", QueryRequest{Generator: "ur", Mode: "exact", Query: "not a query"}},
	}
	for _, tc := range cases {
		var e errorResponse
		if status := do(t, http.MethodPost, qURL, tc.req, &e); status != http.StatusBadRequest {
			t.Errorf("%s: status %d (want 400), body %+v", tc.name, status, e)
		}
	}

	var e errorResponse
	if status := do(t, http.MethodPost, ts.URL+"/v1/instances", RegisterRequest{Facts: "R(1"}, &e); status != http.StatusBadRequest {
		t.Errorf("malformed facts: status %d", status)
	}
	if status := do(t, http.MethodPost, ts.URL+"/v1/instances", map[string]string{"facts": "R(1,2)", "bogus": "x"}, &e); status != http.StatusBadRequest {
		t.Errorf("unknown field: status %d", status)
	}
}

// TestExactQueryMatchesLibrary checks the HTTP exact path returns the
// same rationals as the library path.
func TestExactQueryMatchesLibrary(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	reg := register(t, ts.URL, pkFacts, pkFDs)

	inst, err := ocqa.NewInstanceFromText(pkFacts, pkFDs)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ocqa.ParseQuery("Ans(n) :- Emp(i, n)")
	if err != nil {
		t.Fatal(err)
	}

	for _, gen := range []string{"ur", "us", "uo"} {
		var resp QueryResponse
		status := do(t, http.MethodPost, ts.URL+"/v1/instances/"+reg.ID+"/query",
			QueryRequest{Generator: gen, Mode: "exact", Query: "Ans(n) :- Emp(i, n)"}, &resp)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d", gen, status)
		}
		m, he := parseGenerator(gen, false)
		if he != nil {
			t.Fatal(he)
		}
		want, err := inst.ConsistentAnswers(m, q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Answers) != len(want) {
			t.Fatalf("%s: %d answers, want %d", gen, len(resp.Answers), len(want))
		}
		for i, a := range resp.Answers {
			if a.Prob != want[i].Prob.RatString() {
				t.Errorf("%s: answer %v = %s, library says %s", gen, a.Tuple, a.Prob, want[i].Prob.RatString())
			}
		}
	}
}

// TestApproxMatchesLibraryWithZeroConstructions is the acceptance
// check: after registration, queries reuse the prepared samplers — the
// process-wide construction counter must not move — and the estimates
// coincide with the library's prepared path under the same seed.
func TestApproxMatchesLibraryWithZeroConstructions(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	reg := register(t, ts.URL, pkFacts, pkFDs)
	qURL := ts.URL + "/v1/instances/" + reg.ID + "/query"

	inst, err := ocqa.NewInstanceFromText(pkFacts, pkFDs)
	if err != nil {
		t.Fatal(err)
	}
	prepared := inst.Prepare()
	q, err := ocqa.ParseQuery("Ans(n) :- Emp(i, n)")
	if err != nil {
		t.Fatal(err)
	}

	// First query (cold cache): constructions may not move even here,
	// since registration prepared everything.
	before := sampler.Constructions()
	var first QueryResponse
	if status := do(t, http.MethodPost, qURL,
		QueryRequest{Generator: "us", Mode: "approx", Query: "Ans(n) :- Emp(i, n)", Tuple: "Bob", Seed: 7}, &first); status != http.StatusOK {
		t.Fatalf("first query: status %d", status)
	}
	// Second query, different tuple so the result cache cannot answer.
	var second QueryResponse
	if status := do(t, http.MethodPost, qURL,
		QueryRequest{Generator: "ur", Mode: "approx", Query: "Ans(n) :- Emp(i, n)", Tuple: "Alice", Seed: 7}, &second); status != http.StatusOK {
		t.Fatalf("second query: status %d", status)
	}
	if after := sampler.Constructions(); after != before {
		t.Fatalf("sampler constructions moved during queries: %d -> %d (prepared instance must be reused)", before, after)
	}

	// The estimates equal the library's prepared path bit-for-bit.
	est, err := prepared.Approximate(context.Background(), ocqa.Mode{Gen: ocqa.UniformSequences}, q, ocqa.ParseTuple("Bob"), ocqa.ApproxOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Answers) != 1 || first.Answers[0].Value != est.Value || first.Answers[0].Samples != est.Samples {
		t.Fatalf("server estimate %+v != library estimate %+v", first.Answers, est)
	}
	est, err = prepared.Approximate(context.Background(), ocqa.Mode{Gen: ocqa.UniformRepairs}, q, ocqa.ParseTuple("Alice"), ocqa.ApproxOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(second.Answers) != 1 || second.Answers[0].Value != est.Value || second.Answers[0].Samples != est.Samples {
		t.Fatalf("server estimate %+v != library estimate %+v", second.Answers, est)
	}
}

// TestRefusalCitesTheorem: a (generator, class) pair without an FPRAS
// is a 4xx whose body carries the paper's citation, exactly as the
// library refuses.
func TestRefusalCitesTheorem(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	reg := register(t, ts.URL, fdFacts, fdFDs)
	if reg.Class != ocqa.GeneralFDs.String() {
		t.Fatalf("fixture class = %q, want general FDs", reg.Class)
	}

	var e errorResponse
	status := do(t, http.MethodPost, ts.URL+"/v1/instances/"+reg.ID+"/query",
		QueryRequest{Generator: "ur", Mode: "approx", Query: "Ans(y) :- R(x, y, z)"}, &e)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("refusal status = %d, want 422 (body %+v)", status, e)
	}
	if !strings.Contains(e.Error, "Theorem 5.1(3)") {
		t.Fatalf("refusal does not cite Theorem 5.1(3): %q", e.Error)
	}
	// M^uo over general FDs is heuristic-only: refused without force,
	// served with it.
	status = do(t, http.MethodPost, ts.URL+"/v1/instances/"+reg.ID+"/query",
		QueryRequest{Generator: "uo", Mode: "approx", Query: "Ans(y) :- R(x, y, z)"}, &e)
	if status != http.StatusUnprocessableEntity || !strings.Contains(e.Error, "Force") {
		t.Fatalf("heuristic pair: status %d, body %+v", status, e)
	}
	var resp QueryResponse
	status = do(t, http.MethodPost, ts.URL+"/v1/instances/"+reg.ID+"/query",
		QueryRequest{Generator: "uo", Mode: "approx", Query: "Ans(y) :- R(x, y, z)", Force: true}, &resp)
	if status != http.StatusOK {
		t.Fatalf("forced heuristic pair: status %d", status)
	}
}

func TestCacheHitSecondQuery(t *testing.T) {
	ts, srv := newTestServer(t, Options{})
	reg := register(t, ts.URL, pkFacts, pkFDs)
	qURL := ts.URL + "/v1/instances/" + reg.ID + "/query"
	req := QueryRequest{Generator: "ur", Mode: "approx", Query: "Ans(n) :- Emp(i, n)", Tuple: "Bob", Seed: 3}

	var first, second QueryResponse
	do(t, http.MethodPost, qURL, req, &first)
	do(t, http.MethodPost, qURL, req, &second)
	if first.Cached || !second.Cached {
		t.Fatalf("cached flags: first %v, second %v", first.Cached, second.Cached)
	}
	if first.Answers[0].Value != second.Answers[0].Value {
		t.Fatalf("cache changed the answer: %v != %v", first.Answers[0], second.Answers[0])
	}
	if hits := srv.met.cacheHits.Value(); hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}
}

// TestBatchDeterminism: a batch fans out over the worker pool but the
// response must be byte-identical run over run (fixed seeds) and
// element-wise identical to single queries.
func TestBatchDeterminism(t *testing.T) {
	ts, _ := newTestServer(t, Options{BatchWorkers: 4, CacheSize: -1})
	reg := register(t, ts.URL, pkFacts, pkFDs)
	bURL := ts.URL + "/v1/instances/" + reg.ID + "/batch"

	var queries []QueryRequest
	for i := 0; i < 12; i++ {
		gen := []string{"ur", "us", "uo"}[i%3]
		queries = append(queries, QueryRequest{
			Generator: gen, Mode: "approx",
			Query: "Ans(n) :- Emp(i, n)", Tuple: []string{"Alice", "Bob", "Eve"}[i%3],
			Seed: int64(i + 1),
		})
	}
	batch := BatchRequest{Queries: queries}

	var runs [2]BatchResponse
	for i := range runs {
		if status := do(t, http.MethodPost, bURL, batch, &runs[i]); status != http.StatusOK {
			t.Fatalf("batch run %d: status %d", i, status)
		}
		// Cost carries wall time, which legitimately differs run over
		// run; the draw counts must not.
		for _, res := range runs[i].Results {
			if res.Result == nil || res.Result.Cost == nil {
				t.Fatalf("run %d result %d: missing cost accounting: %+v", i, res.Index, res.Result)
			}
			res.Result.Cost.WallSeconds = 0
		}
	}
	for j, res := range runs[1].Results {
		if a, b := runs[0].Results[j].Result.Cost.Draws, res.Result.Cost.Draws; a != b {
			t.Fatalf("element %d: draw accounting differs between runs: %d vs %d", j, a, b)
		}
	}
	if !reflect.DeepEqual(runs[0], runs[1]) {
		t.Fatalf("batch runs differ:\n%+v\n%+v", runs[0], runs[1])
	}
	for i, res := range runs[0].Results {
		if res.Index != i || res.Status != http.StatusOK || res.Result == nil {
			t.Fatalf("result %d: %+v", i, res)
		}
		var single QueryResponse
		if status := do(t, http.MethodPost, ts.URL+"/v1/instances/"+reg.ID+"/query", queries[i], &single); status != http.StatusOK {
			t.Fatalf("single query %d: status %d", i, status)
		}
		if !reflect.DeepEqual(single.Answers, res.Result.Answers) {
			t.Fatalf("batch element %d differs from single query:\n%+v\n%+v", i, res.Result.Answers, single.Answers)
		}
	}
}

// TestBatchSurfacesPerElementErrors: one refused element must not sink
// the batch.
func TestBatchSurfacesPerElementErrors(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	reg := register(t, ts.URL, fdFacts, fdFDs)

	batch := BatchRequest{Queries: []QueryRequest{
		{Generator: "uo", Mode: "exact", Query: "Ans(y) :- R(x, y, z)"},
		{Generator: "ur", Mode: "approx", Query: "Ans(y) :- R(x, y, z)"}, // refused: no FPRAS
		{Generator: "zz", Mode: "exact", Query: "Ans(y) :- R(x, y, z)"},  // bad generator
	}}
	var resp BatchResponse
	if status := do(t, http.MethodPost, ts.URL+"/v1/instances/"+reg.ID+"/batch", batch, &resp); status != http.StatusOK {
		t.Fatalf("batch: status %d", status)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("results: %+v", resp.Results)
	}
	if resp.Results[0].Status != http.StatusOK {
		t.Errorf("element 0: %+v", resp.Results[0])
	}
	if resp.Results[1].Status != http.StatusUnprocessableEntity || !strings.Contains(resp.Results[1].Error, "Theorem 5.1(3)") {
		t.Errorf("element 1: %+v", resp.Results[1])
	}
	if resp.Results[2].Status != http.StatusBadRequest {
		t.Errorf("element 2: %+v", resp.Results[2])
	}
}

func TestCountMarginalsSemantics(t *testing.T) {
	ts, srv := newTestServer(t, Options{})
	reg := register(t, ts.URL, pkFacts, pkFDs)
	base := ts.URL + "/v1/instances/" + reg.ID

	inst, _ := ocqa.NewInstanceFromText(pkFacts, pkFDs)

	var cr CountResponse
	if status := do(t, http.MethodPost, base+"/repairs/count", CountRequest{}, &cr); status != http.StatusOK {
		t.Fatalf("count: status %d", status)
	}
	if want := inst.CountRepairs(false).String(); cr.Count != want {
		t.Fatalf("|CORep| = %s, want %s", cr.Count, want)
	}
	if status := do(t, http.MethodPost, base+"/repairs/count", CountRequest{Sequences: true, Singleton: true}, &cr); status != http.StatusOK {
		t.Fatalf("count sequences: status %d", status)
	}
	wantSeq, err := inst.CountSequences(true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Count != wantSeq.String() {
		t.Fatalf("|CRS^1| = %s, want %s", cr.Count, wantSeq)
	}

	var mr MarginalsResponse
	if status := do(t, http.MethodPost, base+"/marginals", MarginalsRequest{Generator: "ur", Mode: "exact"}, &mr); status != http.StatusOK {
		t.Fatalf("marginals: status %d", status)
	}
	want, err := inst.FactMarginals(ocqa.Mode{Gen: ocqa.UniformRepairs}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(mr.Marginals) != len(want) {
		t.Fatalf("marginals: %d entries, want %d", len(mr.Marginals), len(want))
	}
	for i, fm := range mr.Marginals {
		if fm.Prob != want[i].Prob.RatString() {
			t.Errorf("marginal %s = %s, want %s", fm.Fact, fm.Prob, want[i].Prob.RatString())
		}
	}

	// Approx marginals must respect the requested draw count exactly
	// (the old facade clamped large values down).
	drawsBefore := srv.met.sampleDraws.Value()
	if status := do(t, http.MethodPost, base+"/marginals",
		MarginalsRequest{Generator: "ur", Mode: "approx", MaxSamples: 250_000, Seed: 5}, &mr); status != http.StatusOK {
		t.Fatalf("approx marginals: status %d", status)
	}
	if got := srv.met.sampleDraws.Value() - drawsBefore; got != 250_000 {
		t.Fatalf("approx marginals consumed %d draws, want exactly 250000", got)
	}

	var sr SemanticsResponse
	if status := do(t, http.MethodPost, base+"/semantics", SemanticsRequest{Generator: "us"}, &sr); status != http.StatusOK {
		t.Fatalf("semantics: status %d", status)
	}
	sem, err := inst.Semantics(ocqa.Mode{Gen: ocqa.UniformSequences}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Repairs) != len(sem) {
		t.Fatalf("semantics: %d repairs, want %d", len(sr.Repairs), len(sem))
	}
}

func TestHealthzAndVarz(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	var h map[string]string
	if status := do(t, http.MethodGet, ts.URL+"/healthz", nil, &h); status != http.StatusOK || h["status"] != "ok" {
		t.Fatalf("healthz: %d %+v", status, h)
	}
	reg := register(t, ts.URL, pkFacts, pkFDs)
	var resp QueryResponse
	do(t, http.MethodPost, ts.URL+"/v1/instances/"+reg.ID+"/query",
		QueryRequest{Generator: "ur", Mode: "exact", Query: "Ans(n) :- Emp(i, n)"}, &resp)

	var v varz
	if status := do(t, http.MethodGet, ts.URL+"/varz", nil, &v); status != http.StatusOK {
		t.Fatalf("varz: status %d", status)
	}
	if v.Instances != 1 || v.QueriesServed != 1 || v.ExactQueries != 1 || v.InstancesRegistered != 1 {
		t.Fatalf("varz counters: %+v", v)
	}
}

func TestQueryDeadline(t *testing.T) {
	// The deadline also governs registration, so it must be long
	// enough for the tiny fixture to register yet far shorter than a
	// tight-ε stopping-rule run (millions of draws).
	ts, _ := newTestServer(t, Options{QueryTimeout: 20 * time.Millisecond})
	reg := register(t, ts.URL, pkFacts, pkFDs)
	var e errorResponse
	status := do(t, http.MethodPost, ts.URL+"/v1/instances/"+reg.ID+"/query",
		QueryRequest{Generator: "ur", Mode: "approx", Query: "Ans(n) :- Emp(i, n)", Tuple: "Bob", Epsilon: 0.001}, &e)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("deadline: status %d, body %+v", status, e)
	}
}

// TestConcurrentClients hammers one prepared instance from many
// goroutines mixing every endpoint; run under -race it proves the
// registry, cache, counters and shared samplers are data-race free.
func TestConcurrentClients(t *testing.T) {
	ts, _ := newTestServer(t, Options{BatchWorkers: 4})
	reg := register(t, ts.URL, pkFacts, pkFDs)
	base := ts.URL + "/v1/instances/" + reg.ID

	const clients = 8
	const perClient = 6
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				var status int
				switch i % 4 {
				case 0:
					var resp QueryResponse
					status = do(t, http.MethodPost, base+"/query", QueryRequest{
						Generator: []string{"ur", "us", "uo"}[c%3], Mode: "approx",
						Query: "Ans(n) :- Emp(i, n)", Tuple: "Bob", Seed: int64(c*100 + i + 1),
					}, &resp)
				case 1:
					var resp QueryResponse
					status = do(t, http.MethodPost, base+"/query", QueryRequest{
						Generator: "us", Mode: "exact", Query: "Ans(n) :- Emp(i, n)",
					}, &resp)
				case 2:
					var cr CountResponse
					status = do(t, http.MethodPost, base+"/repairs/count", CountRequest{Sequences: c%2 == 0}, &cr)
				case 3:
					var mr MarginalsResponse
					status = do(t, http.MethodPost, base+"/marginals", MarginalsRequest{
						Generator: "us", Mode: "approx", MaxSamples: 2000, Seed: int64(c + 1),
					}, &mr)
				}
				if status != http.StatusOK {
					errs <- fmt.Errorf("client %d op %d: status %d", c, i, status)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestExactCacheIgnoresApproxParams: parameters the exact mode ignores
// (seed, epsilon) must not fragment the cache.
func TestExactCacheIgnoresApproxParams(t *testing.T) {
	ts, srv := newTestServer(t, Options{})
	reg := register(t, ts.URL, pkFacts, pkFDs)
	qURL := ts.URL + "/v1/instances/" + reg.ID + "/query"

	var first, second QueryResponse
	do(t, http.MethodPost, qURL, QueryRequest{Generator: "ur", Mode: "exact", Query: "Ans(n) :- Emp(i, n)", Seed: 5, Epsilon: 0.2}, &first)
	do(t, http.MethodPost, qURL, QueryRequest{Generator: "ur", Mode: "exact", Query: "Ans(n) :- Emp(i, n)", Seed: 9}, &second)
	if !second.Cached {
		t.Fatal("exact query with a different (irrelevant) seed missed the cache")
	}
	if hits := srv.met.cacheHits.Value(); hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}
}

// TestBodySizeLimit: oversized request bodies are rejected with 413.
func TestBodySizeLimit(t *testing.T) {
	ts, _ := newTestServer(t, Options{MaxBodyBytes: 512})
	var e errorResponse
	status := do(t, http.MethodPost, ts.URL+"/v1/instances",
		RegisterRequest{Facts: "Emp(1," + strings.Repeat("x", 2048) + ")"}, &e)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, body %+v", status, e)
	}
}

// TestBatchSizeLimit: batches beyond the configured element cap are
// rejected up front.
func TestBatchSizeLimit(t *testing.T) {
	ts, _ := newTestServer(t, Options{MaxBatchQueries: 2})
	reg := register(t, ts.URL, pkFacts, pkFDs)
	batch := BatchRequest{Queries: make([]QueryRequest, 3)}
	var e errorResponse
	if status := do(t, http.MethodPost, ts.URL+"/v1/instances/"+reg.ID+"/batch", batch, &e); status != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d, body %+v", status, e)
	}
	if !strings.Contains(e.Error, "exceeds the limit of 2") {
		t.Fatalf("unhelpful error: %q", e.Error)
	}
}

// TestCacheKeyCanonicalisesQueryText: whitespace variants of the same
// query share one cache entry.
func TestCacheKeyCanonicalisesQueryText(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	reg := register(t, ts.URL, pkFacts, pkFDs)
	qURL := ts.URL + "/v1/instances/" + reg.ID + "/query"

	var first, second QueryResponse
	do(t, http.MethodPost, qURL, QueryRequest{Generator: "ur", Mode: "exact", Query: "Ans(n) :- Emp(i, n)"}, &first)
	do(t, http.MethodPost, qURL, QueryRequest{Generator: "ur", Mode: "exact", Query: "Ans(n):-Emp(i,n)"}, &second)
	if !second.Cached {
		t.Fatal("whitespace variant of the same query missed the cache")
	}
}

// TestSampleCapClampsRequests: a request demanding an absurd draw
// budget is clamped to the server's SampleCap rather than honored.
func TestSampleCapClampsRequests(t *testing.T) {
	ts, srv := newTestServer(t, Options{SampleCap: 1000})
	reg := register(t, ts.URL, pkFacts, pkFDs)
	var mr MarginalsResponse
	if status := do(t, http.MethodPost, ts.URL+"/v1/instances/"+reg.ID+"/marginals",
		MarginalsRequest{Generator: "ur", Mode: "approx", MaxSamples: 2_000_000_000, Seed: 3}, &mr); status != http.StatusOK {
		t.Fatalf("marginals: status %d", status)
	}
	if got := srv.met.sampleDraws.Value(); got != 1000 {
		t.Fatalf("marginals consumed %d draws, want the 1000-draw cap", got)
	}
}

// TestInvalidEpsilonDeltaRejected: out-of-range estimator parameters
// are a 400, never a panic in fpras.
func TestInvalidEpsilonDeltaRejected(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	reg := register(t, ts.URL, pkFacts, pkFDs)
	qURL := ts.URL + "/v1/instances/" + reg.ID + "/query"
	for _, req := range []QueryRequest{
		{Generator: "ur", Mode: "approx", Query: "Ans(n) :- Emp(i, n)", Tuple: "Bob", Epsilon: 1.5},
		{Generator: "ur", Mode: "approx", Query: "Ans(n) :- Emp(i, n)", Tuple: "Bob", Epsilon: -0.1},
		{Generator: "ur", Mode: "approx", Query: "Ans(n) :- Emp(i, n)", Tuple: "Bob", Delta: 2},
	} {
		var e errorResponse
		if status := do(t, http.MethodPost, qURL, req, &e); status != http.StatusBadRequest {
			t.Errorf("eps=%v delta=%v: status %d, body %+v", req.Epsilon, req.Delta, status, e)
		}
	}
	// The server must still be alive afterwards.
	var h map[string]string
	if status := do(t, http.MethodGet, ts.URL+"/healthz", nil, &h); status != http.StatusOK {
		t.Fatalf("server died: healthz %d", status)
	}
}

// TestWorkersClamped: a request demanding absurd estimator parallelism
// is clamped to the server pool size and still answers correctly.
func TestWorkersClamped(t *testing.T) {
	ts, _ := newTestServer(t, Options{BatchWorkers: 2})
	reg := register(t, ts.URL, pkFacts, pkFDs)
	var resp QueryResponse
	status := do(t, http.MethodPost, ts.URL+"/v1/instances/"+reg.ID+"/query",
		QueryRequest{Generator: "ur", Mode: "approx", Query: "Ans(n) :- Emp(i, n)", Tuple: "Bob", Workers: 10_000, Seed: 4}, &resp)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if len(resp.Answers) != 1 || resp.Answers[0].Value <= 0.9 {
		t.Fatalf("answers = %+v (Bob survives every repair, value should be ~1)", resp.Answers)
	}
}

// TestTupleArityValidated: an arity-mismatched tuple is a 400, not a
// full-budget estimate of zero.
func TestTupleArityValidated(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	reg := register(t, ts.URL, pkFacts, pkFDs)
	qURL := ts.URL + "/v1/instances/" + reg.ID + "/query"
	var e errorResponse
	status := do(t, http.MethodPost, qURL,
		QueryRequest{Generator: "ur", Mode: "approx", Query: "Ans(n) :- Emp(i, n)", Tuple: "Alice,extra"}, &e)
	if status != http.StatusBadRequest || !strings.Contains(e.Error, "answer variables") {
		t.Fatalf("arity mismatch: status %d, body %+v", status, e)
	}
}

// TestRegistryCapacity: registrations beyond MaxInstances are refused
// until an instance is deleted.
func TestRegistryCapacityEvictsLRU(t *testing.T) {
	ts, s := newTestServer(t, Options{MaxInstances: 2})
	a := register(t, ts.URL, pkFacts, pkFDs)
	b := register(t, ts.URL, fdFacts, fdFDs)
	// Touch a so b becomes the least-recently-used entry.
	if status := do(t, http.MethodGet, ts.URL+"/v1/instances/"+a.ID, nil, nil); status != http.StatusOK {
		t.Fatalf("touch a: status %d", status)
	}
	c := register(t, ts.URL, pkFacts, pkFDs)
	if c.ID == a.ID || c.ID == b.ID {
		t.Fatalf("IDs must never be reused within a process, got %s again", c.ID)
	}
	// b was evicted; a and c survive.
	if status := do(t, http.MethodGet, ts.URL+"/v1/instances/"+b.ID, nil, nil); status != http.StatusNotFound {
		t.Fatalf("evicted instance still served: status %d", status)
	}
	for _, id := range []string{a.ID, c.ID} {
		if status := do(t, http.MethodGet, ts.URL+"/v1/instances/"+id, nil, nil); status != http.StatusOK {
			t.Fatalf("surviving instance %s: status %d", id, status)
		}
	}
	if n := s.reg.len(); n != 2 {
		t.Fatalf("registry holds %d entries, want capacity 2", n)
	}
	var v varz
	if status := do(t, http.MethodGet, ts.URL+"/varz", nil, &v); status != http.StatusOK || v.Evictions != 1 {
		t.Fatalf("evictions counter = %d (status %d), want 1", v.Evictions, status)
	}
}
