package server

// Regression tests for server lifecycle shutdown semantics: Close must
// stop post-mutation delta refreshes (they run on the server's own
// authority, not a client request) and wake parked /watch long-polls,
// and the watch hub must not leak one map entry per ever-watched
// instance once all waiters are gone.

import (
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestShutdownCancelsDeltaRefresh: a mutation landing after Close must
// not spend engine time refreshing cached entries nobody will read.
// Pre-fix, refreshAfterMutation ran on context.Background() with no
// lifecycle to consult, so the refresh always executed.
func TestShutdownCancelsDeltaRefresh(t *testing.T) {
	ts, s := newTestServer(t, Options{})
	reg := register(t, ts.URL, pkFacts, pkFDs)
	url := ts.URL + "/v1/instances/" + reg.ID

	q := QueryRequest{Generator: "ur", Mode: "exact", Query: "Ans(n) :- Emp(i, n)"}
	var cold QueryResponse
	if status := do(t, http.MethodPost, url+"/query", q, &cold); status != http.StatusOK {
		t.Fatalf("cold query: status %d", status)
	}

	s.Close()

	var mut FactMutationResponse
	if status := do(t, http.MethodPost, url+"/facts", InsertFactRequest{Fact: "Emp(2,Carol)"}, &mut); status != http.StatusOK {
		t.Fatalf("insert after Close: status %d", status)
	}
	if n := s.met.cacheRefreshes.Value(); n != 0 {
		t.Fatalf("cacheRefreshes = %d after Close, want 0 (shutdown must cancel delta refreshes)", n)
	}
	// The entry was dropped, not refreshed: the next query is a miss.
	var warm QueryResponse
	if status := do(t, http.MethodPost, url+"/query", q, &warm); status != http.StatusOK {
		t.Fatalf("post-mutation query: status %d", status)
	}
	if warm.Cached {
		t.Fatal("post-Close mutation still refreshed the cache entry")
	}
}

// TestShutdownWakesParkedWatchers: a long-poll parked inside its wait
// window must return (204) promptly once Close cancels the lifecycle,
// instead of holding the connection for the full WatchWait.
func TestShutdownWakesParkedWatchers(t *testing.T) {
	ts, s := newTestServer(t, Options{WatchWait: time.Minute})
	reg := register(t, ts.URL, pkFacts, pkFDs)
	watchURL := ts.URL + "/v1/instances/" + reg.ID +
		"/watch?generator=ur&mode=exact&query=Ans(n)%20:-%20Emp(i,%20n)&since=1"

	type out struct {
		status int
		err    error
	}
	ch := make(chan out, 1)
	go func() {
		r, err := http.Get(watchURL)
		if err != nil {
			ch <- out{0, err}
			return
		}
		r.Body.Close()
		ch <- out{r.StatusCode, nil}
	}()

	time.Sleep(50 * time.Millisecond) // let the watcher park
	s.Close()

	select {
	case o := <-ch:
		if o.err != nil {
			t.Fatalf("watch during shutdown: %v", o.err)
		}
		if o.status != http.StatusNoContent {
			t.Fatalf("watch during shutdown: status %d, want 204", o.status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not wake the parked watcher")
	}
	if n := s.watch.size(); n != 0 {
		t.Fatalf("watch hub holds %d entries after shutdown, want 0", n)
	}
}

// TestWatchHubReleasesEntries: the hub map entry for an instance must
// disappear when its last waiter times out or disconnects — pre-fix,
// one channel per ever-watched id lived until the next mutation,
// unbounded for read-only instances.
func TestWatchHubReleasesEntries(t *testing.T) {
	ts, s := newTestServer(t, Options{WatchWait: 50 * time.Millisecond})
	reg := register(t, ts.URL, pkFacts, pkFDs)

	// Many ids, each watched once with a since beyond the current
	// generation so every poll parks and then times out with 204.
	for i := 0; i < 4; i++ {
		u := fmt.Sprintf("%s/v1/instances/%s/watch?generator=ur&mode=exact&query=Ans(n)%%20:-%%20Emp(i,%%20n)&since=%d",
			ts.URL, reg.ID, 100+i)
		r, err := http.Get(u)
		if err != nil {
			t.Fatalf("watch: %v", err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusNoContent {
			t.Fatalf("idle watch: status %d, want 204", r.StatusCode)
		}
	}
	if n := s.watch.size(); n != 0 {
		t.Fatalf("watch hub holds %d entries after all waiters timed out, want 0", n)
	}
}

// TestWatchHubRefcounting drives the hub directly: concurrent waiters
// share one entry, release drops it only when the last waiter leaves,
// and a release racing a changed()+fresh wait() must not delete the
// successor entry installed under the same id.
func TestWatchHubRefcounting(t *testing.T) {
	h := newWatchHub()

	ch1, rel1 := h.wait("i1")
	ch2, rel2 := h.wait("i1")
	if ch1 != ch2 {
		t.Fatal("two concurrent waiters got different channels")
	}
	if n := h.size(); n != 1 {
		t.Fatalf("size = %d with two waiters on one id, want 1", n)
	}
	rel1()
	if n := h.size(); n != 1 {
		t.Fatalf("size = %d after first release, want 1 (second waiter still parked)", n)
	}
	rel2()
	rel2() // double release must be a no-op
	if n := h.size(); n != 0 {
		t.Fatalf("size = %d after last release, want 0", n)
	}

	// Stale release after changed(): waiter A parks, a mutation closes
	// and removes its entry, waiter B installs a fresh one. A's release
	// must not evict B's live entry.
	_, relA := h.wait("i2")
	h.changed("i2")
	chB, relB := h.wait("i2")
	relA()
	if n := h.size(); n != 1 {
		t.Fatalf("stale release evicted the successor entry: size = %d, want 1", n)
	}
	// The successor channel must still be live (waking on changed).
	done := make(chan struct{})
	go func() {
		<-chB
		close(done)
	}()
	h.changed("i2")
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("successor waiter never woke after stale release")
	}
	relB()
	if n := h.size(); n != 0 {
		t.Fatalf("size = %d after all waiters released, want 0", n)
	}

	// Hammer the hub from many goroutines to give the race detector
	// something to chew on; the invariant at the end is still zero.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := fmt.Sprintf("i%d", g%3)
			for i := 0; i < 200; i++ {
				_, rel := h.wait(id)
				if i%7 == 0 {
					h.changed(id)
				}
				rel()
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < 3; g++ {
		h.changed(fmt.Sprintf("i%d", g))
	}
	if n := h.size(); n != 0 {
		t.Fatalf("size = %d after stress, want 0", n)
	}
}
