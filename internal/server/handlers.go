package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	ocqa "repro"
)

// --- registry lifecycle ---------------------------------------------------

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if he := s.decodeJSON(w, r, &req); he != nil {
		s.writeError(w, he)
		return
	}
	if req.Facts == "" {
		s.writeError(w, badRequest("empty \"facts\": at least one fact is required"))
		return
	}
	if req.ID != "" {
		if !validRequestID(req.ID) {
			s.writeError(w, badRequest("instance id %q: want at most %d characters of [A-Za-z0-9._-]", req.ID, maxRequestIDLen))
			return
		}
		s.handleRegisterWithID(w, r, req)
		return
	}
	// Parsing and eager preparation are engine work like any query, so
	// they run under the same deadline and compute semaphore. A 504
	// here abandons the registration from the client's view; the
	// background goroutine may still complete it, in which case the
	// instance is discoverable via GET /v1/instances.
	resp, he := runWithDeadline(s, r.Context(), func(context.Context) (RegisterResponse, *httpError) {
		inst, err := ocqa.NewInstanceFromText(req.Facts, req.FDs)
		if err != nil {
			return RegisterResponse{}, badRequest("%v", err)
		}
		// Preparation happens outside the registry lock on purpose:
		// DP-table construction is the expensive part and must not
		// block lookups.
		prepared := inst.Prepare()
		now := time.Now()
		id := s.reg.allocID()
		// Journal before acknowledging: a registration the client saw
		// succeed survives a restart.
		if s.store != nil {
			if err := s.store.LogRegister(id, req.Name, now, inst.DB(), inst.Sigma()); err != nil {
				return RegisterResponse{}, &httpError{status: http.StatusInternalServerError, msg: fmt.Sprintf("journalling registration: %v", err)}
			}
		}
		e, evicted := s.reg.add(id, req.Name, prepared, now)
		for _, v := range evicted {
			s.met.evictions.Inc()
			s.cache.invalidate(v.id)
			s.repl.dropTail(v.id)
			// Best-effort journalling of the eviction: on failure the
			// evicted instance resurrects at the next boot and is
			// evicted again once the registry refills — benign.
			if s.store != nil {
				if err := s.store.LogUnregister(v.id); err != nil {
					s.met.errors.Inc()
				}
			}
		}
		s.met.registered.Inc()
		info := e.info()
		return RegisterResponse{
			ID:         e.id,
			Name:       e.name,
			Facts:      info.Facts,
			Class:      info.Class,
			Consistent: info.Consistent,
			Prepared:   info.Prepared,
		}, nil
	})
	if he != nil {
		s.writeError(w, he)
		return
	}
	writeJSON(w, http.StatusCreated, resp)
}

// handleRegisterWithID is the caller-named registration path the
// cluster coordinator uses. The order differs from the auto-id path:
// the registry install runs FIRST (it is the collision authority — a
// 409 must not leave a journalled registration behind), and the WAL
// record follows while the client still waits, rolled back from the
// registry if journalling fails so the acknowledgement stays truthful.
func (s *Server) handleRegisterWithID(w http.ResponseWriter, r *http.Request, req RegisterRequest) {
	resp, he := runWithDeadline(s, r.Context(), func(context.Context) (RegisterResponse, *httpError) {
		inst, err := ocqa.NewInstanceFromText(req.Facts, req.FDs)
		if err != nil {
			return RegisterResponse{}, badRequest("%v", err)
		}
		prepared := inst.Prepare()
		now := time.Now()
		e, evicted, err := s.reg.installExplicit(req.ID, req.Name, prepared, now, 1)
		if err != nil {
			return RegisterResponse{}, &httpError{status: http.StatusConflict, msg: err.Error()}
		}
		if s.store != nil {
			if err := s.store.LogRegister(e.id, req.Name, now, inst.DB(), inst.Sigma()); err != nil {
				s.reg.remove(e.id)
				return RegisterResponse{}, &httpError{status: http.StatusInternalServerError, msg: fmt.Sprintf("journalling registration: %v", err)}
			}
		}
		for _, v := range evicted {
			s.met.evictions.Inc()
			s.cache.invalidate(v.id)
			s.repl.dropTail(v.id)
			if s.store != nil {
				if err := s.store.LogUnregister(v.id); err != nil {
					s.met.errors.Inc()
				}
			}
		}
		s.met.registered.Inc()
		info := e.info()
		return RegisterResponse{
			ID:         e.id,
			Name:       e.name,
			Facts:      info.Facts,
			Class:      info.Class,
			Consistent: info.Consistent,
			Prepared:   info.Prepared,
		}, nil
	})
	if he != nil {
		s.writeError(w, he)
		return
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	entries := s.reg.list()
	out := make([]InstanceInfo, 0, len(entries))
	for _, e := range entries {
		out = append(out, e.info())
	}
	writeJSON(w, http.StatusOK, out)
}

// lookup resolves {id} or writes a 404, recording the instance in the
// request's trace either way.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*instanceEntry, bool) {
	id := r.PathValue("id")
	if ri := infoFrom(r.Context()); ri != nil {
		ri.instance.Store(id)
	}
	e, ok := s.reg.get(id)
	if !ok {
		s.writeError(w, &httpError{status: http.StatusNotFound, msg: "unknown instance " + strconv.Quote(id)})
		return nil, false
	}
	return e, true
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, e.info())
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.reg.remove(id) {
		s.writeError(w, &httpError{status: http.StatusNotFound, msg: "unknown instance " + strconv.Quote(id)})
		return
	}
	if s.store != nil {
		if err := s.store.LogUnregister(id); err != nil {
			// The instance is gone from the registry either way; a
			// failed journal entry only means it resurrects at boot.
			s.met.errors.Inc()
		}
	}
	s.cache.invalidate(id)
	s.repl.dropTail(id)
	// Wake the instance's watchers: their next lookup 404s instead of
	// blocking out the full wait window on a gone instance.
	s.watch.changed(id)
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted", "id": id})
}

// --- incremental fact mutations -------------------------------------------

// mutationError maps library mutation failures onto HTTP statuses.
func mutationError(err error) *httpError {
	switch {
	case errors.Is(err, errNotFound):
		return &httpError{status: http.StatusNotFound, msg: err.Error()}
	case errors.Is(err, ocqa.ErrDuplicateFact):
		return &httpError{status: http.StatusConflict, msg: err.Error()}
	case errors.Is(err, ocqa.ErrUnknownRelation),
		errors.Is(err, ocqa.ErrArityMismatch),
		errors.Is(err, ocqa.ErrFactIndex):
		return badRequest("%v", err)
	default:
		return &httpError{status: http.StatusInternalServerError, msg: err.Error()}
	}
}

// mutateInstance runs one copy-on-write mutation under the registry's
// write lock: derive the new prepared instance, journal the operation,
// install a fresh entry, and delta-refresh (or drop) the instance's
// cached results. The op receives — and returns — a *Prepared rather
// than a bare instance: Prepared.ApplyInsert/ApplyDelete derive the
// successor generation's estimation state incrementally (per-block
// factor cache, stratified draw statistics, maintained witness sets),
// so queries after the mutation pay only for the touched block instead
// of a cold rebuild. The WAL append happens inside the critical
// section, so the log order is the order the registry applied.
// Mutations deliberately do NOT run under runWithDeadline: abandoning a
// write on timeout would report failure for an operation that still
// commits (and journals) behind the client's back — for an
// index-addressed API that is actively dangerous. Only the compute
// semaphore is held (by the handler), to bound simultaneous copy and
// refresh work.
func (s *Server) mutateInstance(id string, op func(*ocqa.Prepared) (*ocqa.Prepared, *FactMutationResponse, error)) (FactMutationResponse, *httpError) {
	var out FactMutationResponse
	ne, err := s.reg.mutate(id, func(e *instanceEntry) (*instanceEntry, error) {
		np, resp, err := op(e.prepared)
		if err != nil {
			return nil, err
		}
		out = *resp
		return &instanceEntry{id: e.id, name: e.name, prepared: np, created: e.created, gen: e.gen + 1}, nil
	})
	if err != nil {
		return out, mutationError(err)
	}
	out.Gen = ne.gen
	// Record the op in the replication tail so a follower inside the
	// window syncs incrementally instead of re-transferring the state.
	s.repl.appendOp(id, ReplOp{Gen: ne.gen, Op: out.Op, Fact: out.Fact, Index: out.Index})
	s.met.mutations.Inc()
	s.refreshAfterMutation(ne)
	return out, nil
}

func (s *Server) handleInsertFact(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req InsertFactRequest
	if he := s.decodeJSON(w, r, &req); he != nil {
		s.writeError(w, he)
		return
	}
	f, err := ocqa.ParseFact(req.Fact)
	if err != nil {
		s.writeError(w, badRequest("%v", err))
		return
	}
	s.compute <- struct{}{}
	defer func() { <-s.compute }()
	resp, he := s.mutateInstance(id, func(p *ocqa.Prepared) (*ocqa.Prepared, *FactMutationResponse, error) {
		np, pos, err := p.ApplyInsert(f)
		if err != nil {
			return nil, nil, err
		}
		if s.store != nil {
			if err := s.store.LogInsertFact(id, f); err != nil {
				return nil, nil, fmt.Errorf("journalling insert: %w", err)
			}
		}
		return np, &FactMutationResponse{
			ID:            id,
			Op:            "insert",
			Fact:          ocqa.FormatFact(f),
			Index:         pos,
			Facts:         np.DB().Len(),
			Consistent:    np.IsConsistent(),
			ConflictPairs: len(np.Core().ConflictPairs()),
		}, nil
	})
	if he != nil {
		s.writeError(w, he)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDeleteFact(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	idx, err := strconv.Atoi(r.PathValue("index"))
	if err != nil {
		s.writeError(w, badRequest("fact index %q is not an integer", r.PathValue("index")))
		return
	}
	s.compute <- struct{}{}
	defer func() { <-s.compute }()
	resp, he := s.mutateInstance(id, func(p *ocqa.Prepared) (*ocqa.Prepared, *FactMutationResponse, error) {
		if idx < 0 || idx >= p.DB().Len() {
			return nil, nil, fmt.Errorf("%w: %d not in [0,%d)", ocqa.ErrFactIndex, idx, p.DB().Len())
		}
		removed := p.DB().Fact(idx)
		np, err := p.ApplyDelete(idx)
		if err != nil {
			return nil, nil, err
		}
		if s.store != nil {
			if err := s.store.LogDeleteFact(id, idx); err != nil {
				return nil, nil, fmt.Errorf("journalling delete: %w", err)
			}
		}
		return np, &FactMutationResponse{
			ID:            id,
			Op:            "delete",
			Fact:          ocqa.FormatFact(removed),
			Index:         idx,
			Facts:         np.DB().Len(),
			Consistent:    np.IsConsistent(),
			ConflictPairs: len(np.Core().ConflictPairs()),
		}, nil
	})
	if he != nil {
		s.writeError(w, he)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- query execution ------------------------------------------------------

// parseGenerator maps the wire name to a Mode.
func parseGenerator(name string, singleton bool) (ocqa.Mode, *httpError) {
	var gen ocqa.Generator
	switch name {
	case "ur":
		gen = ocqa.UniformRepairs
	case "us":
		gen = ocqa.UniformSequences
	case "uo":
		gen = ocqa.UniformOperations
	default:
		return ocqa.Mode{}, badRequest("unknown generator %q (want \"ur\", \"us\" or \"uo\")", name)
	}
	return ocqa.Mode{Gen: gen, Singleton: singleton}, nil
}

// normalizeQuery canonicalises the request so every wording of the
// same computation produces the same cache key: defaults are filled
// in, the state budget is clamped, and parameters the selected mode
// ignores are zeroed (an exact answer doesn't depend on ε or the
// seed; an estimate doesn't depend on the exact state budget).
func (s *Server) normalizeQuery(req *QueryRequest) {
	switch req.Mode {
	case "exact":
		req.Epsilon, req.Delta, req.Seed = 0, 0, 0
		req.MaxSamples, req.Workers, req.Force = 0, 0, false
		req.Limit = s.clampLimit(req.Limit)
	case "approx":
		if req.Epsilon == 0 {
			req.Epsilon = 0.1
		}
		if req.Delta == 0 {
			req.Delta = 0.05
		}
		if req.Seed == 0 {
			req.Seed = 1
		}
		// Per-query estimator parallelism is bounded by the same pool
		// size that bounds batches; an unbounded client value would
		// spawn that many goroutines inside fpras. A request that omits
		// workers (or sends ≤ 0) gets the server default — itself 0
		// unless the operator pinned one, meaning adaptive selection in
		// the engine, bounded by GOMAXPROCS.
		if req.Workers <= 0 {
			req.Workers = s.opts.DefaultWorkers
		}
		if req.Workers > s.opts.BatchWorkers {
			req.Workers = s.opts.BatchWorkers
		}
		req.MaxSamples = s.clampSamples(req.MaxSamples)
		req.Limit = 0
	}
}

// validateApproxParams rejects (ε, δ) outside (0, 1) before they reach
// the fpras estimators, whose parameter checks panic. Zero means "use
// the default" and is allowed.
func validateApproxParams(req *QueryRequest) *httpError {
	if req.Epsilon != 0 && !(req.Epsilon > 0 && req.Epsilon < 1) {
		return badRequest("epsilon must lie in (0,1), got %v", req.Epsilon)
	}
	if req.Delta != 0 && !(req.Delta > 0 && req.Delta < 1) {
		return badRequest("delta must lie in (0,1), got %v", req.Delta)
	}
	return nil
}

func boolField(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// queryCacheKey captures the full identity of the computation,
// including the entry's mutation generation: a query computed against
// an older generation of the instance caches under a key no
// post-mutation lookup will ever form, so a mutation can never be
// masked by a stale in-flight result landing after the invalidation.
func (s *Server) queryCacheKey(e *instanceEntry, req QueryRequest) string {
	return cacheKey(e.id, strconv.FormatInt(e.gen, 10),
		"query", req.Generator, boolField(req.Singleton), req.Mode,
		req.Query, req.Tuple, boolField(req.HasTuple),
		strconv.FormatFloat(req.Epsilon, 'g', -1, 64),
		strconv.FormatFloat(req.Delta, 'g', -1, 64),
		strconv.FormatInt(req.Seed, 10),
		strconv.Itoa(req.MaxSamples),
		strconv.Itoa(req.Workers),
		boolField(req.Force),
		strconv.Itoa(req.Limit),
	)
}

// costFromAcct renders engine accounting as a wire cost object.
// elapsed is the handler-measured wall time, which also covers the
// work the engine's own clock excludes (witness-set compilation,
// marshalling).
func costFromAcct(a ocqa.Accounting, elapsed time.Duration) *CostInfo {
	c := &CostInfo{
		Draws:       a.Draws,
		Chunks:      a.Chunks,
		ReusedDraws: a.ReusedDraws,
		Workers:     a.Workers,
		WallSeconds: elapsed.Seconds(),
		Cancelled:   a.Cancelled,
	}
	if len(a.PerWorker) > 0 {
		c.PerWorkerDraws = append([]int64(nil), a.PerWorker...)
	}
	return c
}

// checkCoverage feeds the empirical (ε, δ)-envelope counters: when the
// exact counterpart of a freshly computed single-tuple estimate is
// sitting in the result cache, the estimate is checked against the
// ε relative-error envelope the FPRAS promised. No engine ever runs
// for this — it is a cache probe, so the counters only accumulate
// where clients have asked both questions.
func (s *Server) checkCoverage(e *instanceEntry, req QueryRequest, est ocqa.Estimate) {
	exact := req
	exact.Mode = "exact"
	s.normalizeQuery(&exact)
	cached, ok := s.cache.get(s.queryCacheKey(e, exact))
	if !ok || len(cached.Answers) != 1 {
		return
	}
	v := cached.Answers[0].Value
	s.met.coverageChecks.With(e.id).Inc()
	// For v = 0 the relative envelope degenerates to requiring an exact
	// zero — which the estimators do deliver for empty witness sets.
	if math.Abs(est.Value-v) <= req.Epsilon*v {
		s.met.coverageWithin.With(e.id).Inc()
	}
}

// explainRequested reports the ?explain=1 opt-in. A URL parameter
// rather than a body field on purpose: bodies are decoded with
// DisallowUnknownFields as a compatibility contract, and explain is
// presentation, not computation identity — it must never reach the
// result-cache key.
func explainRequested(r *http.Request) bool {
	switch r.URL.Query().Get("explain") {
	case "1", "true", "yes":
		return true
	}
	return false
}

// traceFor picks the trace one query execution records into: the
// request-wide trace when the flight recorder or the slow-query log
// armed one in ServeHTTP, else a fresh per-call trace when the client
// asked to see it (?explain=1), else nil — the default, where the
// engine's trace hooks are nil-receiver no-ops and cost nothing.
func traceFor(ri *reqInfo, explain bool) *ocqa.Trace {
	if ri != nil && ri.trace != nil {
		return ri.trace
	}
	if explain {
		return ocqa.NewTrace()
	}
	return nil
}

// executeQuery runs one QueryRequest against a registered instance:
// the shared path behind the query endpoint and every batch element.
// The instance's prepared samplers make it construction-free; results
// land in (and are first looked up from) the LRU cache. The context —
// the request's own, bounded by the server deadline — reaches the
// estimation loops, which stop within one sample chunk of its
// cancellation; a response computed from such a truncated run is never
// produced (the library returns the context error with the partial
// estimates instead, which travel in the error body), so nothing
// partial can land in the cache. With explain set the execution
// additionally computes the pre-sampling plan and records a
// convergence trace, both attached as resp.Explain — never cached.
func (s *Server) executeQuery(ctx context.Context, e *instanceEntry, req QueryRequest, explain bool) (QueryResponse, *httpError) {
	start := time.Now()
	m, he := parseGenerator(req.Generator, req.Singleton)
	if he != nil {
		return QueryResponse{}, he
	}
	if req.Mode != "exact" && req.Mode != "approx" {
		return QueryResponse{}, badRequest("unknown mode %q (want \"exact\" or \"approx\")", req.Mode)
	}
	ri := infoFrom(ctx)
	if ri != nil {
		ri.generator.Store(req.Generator)
		ri.mode.Store(req.Mode)
	}
	if req.Mode == "approx" {
		if he := validateApproxParams(&req); he != nil {
			return QueryResponse{}, he
		}
	}
	q, err := ocqa.ParseQuery(req.Query)
	if err != nil {
		return QueryResponse{}, badRequest("%v", err)
	}
	// Key by the canonical renderings, not the request spelling, so
	// whitespace variants of the same query share a cache entry.
	req.Query = q.String()
	c := ocqa.ParseTuple(req.Tuple)
	req.Tuple = strings.Join(c, ",")
	s.normalizeQuery(&req)
	key := s.queryCacheKey(e, req)
	if resp, ok := s.cache.get(key); ok {
		s.met.cacheHits.Inc()
		s.met.queriesServed.Inc()
		if ri != nil {
			ri.cacheHit.Add(1)
		}
		// The cached cost keeps the original run's draw accounting but
		// reports this request's disposition: served from cache, in
		// lookup time. (The clone is the caller's own copy — mutating
		// its Cost cannot reach the cached entry.)
		if resp.Cost == nil {
			resp.Cost = &CostInfo{}
		}
		resp.Cost.Cached = true
		resp.Cost.WallSeconds = time.Since(start).Seconds()
		if explain {
			// The cache entry carries no trace (explain is stripped before
			// put); a hit explains itself as the zero-draw cached route.
			resp.Explain = &ExplainInfo{Plan: ocqa.CachedPlan()}
		}
		return resp, nil
	}
	s.met.cacheMisses.Inc()
	if ri != nil {
		ri.cacheMiss.Add(1)
	}
	tr := traceFor(ri, explain)
	if tr != nil {
		ctx = ocqa.ContextWithTrace(ctx, tr)
	}

	p := e.prepared
	status, cite := ocqa.Approximability(m, p.Class())
	resp := QueryResponse{
		Instance:        e.id,
		Generator:       m.Symbol(),
		Mode:            req.Mode,
		Query:           q.String(),
		Approximability: status.String(),
		Citation:        cite,
	}
	// Single-tuple semantics mirror the CLI: an explicit tuple, or a
	// Boolean query (whose only candidate is the empty tuple).
	single := req.HasTuple || req.Tuple != "" || q.IsBoolean()
	if single && len(c) != len(q.AnswerVars) {
		// An arity-mismatched tuple would otherwise become a
		// constant-false predicate that burns the full sample budget
		// estimating 0.
		return QueryResponse{}, badRequest("tuple %v has %d values but %s has %d answer variables",
			c, len(c), q, len(q.AnswerVars))
	}

	var plan ocqa.QueryPlan
	switch req.Mode {
	case "exact":
		s.met.exactQueries.Inc()
		limit := req.Limit // already clamped by normalizeQuery
		if single {
			prob, err := p.ExactProbability(m, q, c, limit)
			if err != nil {
				return QueryResponse{}, toHTTPError(err)
			}
			f, _ := prob.Float64()
			resp.Answers = []Answer{{Tuple: tupleJSON(c), Prob: prob.RatString(), Value: f}}
		} else {
			answers, err := p.ConsistentAnswers(m, q, limit)
			if err != nil {
				return QueryResponse{}, toHTTPError(err)
			}
			s.met.answersQueries.Inc()
			s.met.answerTuples.Add(int64(len(answers)))
			resp.Answers = make([]Answer, 0, len(answers))
			for _, a := range answers {
				f, _ := a.Prob.Float64()
				resp.Answers = append(resp.Answers, Answer{Tuple: tupleJSON(a.Tuple), Prob: a.Prob.RatString(), Value: f})
			}
		}
	case "approx":
		s.met.approxQueries.Inc()
		opts := ocqa.ApproxOptions{
			Epsilon:    req.Epsilon,
			Delta:      req.Delta,
			Seed:       req.Seed,
			MaxSamples: req.MaxSamples,
			Workers:    req.Workers,
			Force:      req.Force,
		}
		if explain {
			// The routing decision and draw-budget prediction, computed
			// before any sampling from the same bounds the estimators run
			// on. Its approximability check is the one the execution below
			// would perform, so a refusal here is the identical error.
			endPlan := tr.StartSpan("plan")
			pl, perr := p.PlanApproximate(m, q, single, opts)
			endPlan()
			if perr != nil {
				return QueryResponse{}, toHTTPError(perr)
			}
			plan = pl
		}
		if single {
			est, err := p.Approximate(ctx, m, q, c, opts)
			if err != nil {
				he := toHTTPError(err)
				he.cost = costFromAcct(est.Acct, time.Since(start))
				if est.Samples > 0 {
					conv := est.Converged
					he.partial = []Answer{{Tuple: tupleJSON(c), Value: est.Value, Samples: est.Samples, Converged: &conv}}
				}
				return QueryResponse{}, he
			}
			s.met.sampleDraws.Add(int64(est.Samples))
			if ri != nil {
				ri.draws.Add(int64(est.Samples))
			}
			conv := est.Converged
			resp.Answers = []Answer{{Tuple: tupleJSON(c), Value: est.Value, Samples: est.Samples, Converged: &conv}}
			resp.Cost = costFromAcct(est.Acct, time.Since(start))
			s.checkCoverage(e, req, est)
		} else {
			// The all-answers shape runs ONE shared Monte-Carlo pass for
			// every candidate tuple (witness sets cached per query
			// fingerprint on the prepared instance); req.Workers
			// parallelises that single pass.
			answers, acct, err := p.ApproximateAnswersAcct(ctx, m, q, opts)
			if err != nil {
				he := toHTTPError(err)
				he.cost = costFromAcct(acct, time.Since(start))
				// The partial per-tuple estimates accompany the error.
				for _, a := range answers {
					if a.Estimate.Samples == 0 {
						continue
					}
					conv := a.Estimate.Converged
					he.partial = append(he.partial, Answer{Tuple: tupleJSON(a.Tuple), Value: a.Estimate.Value, Samples: a.Estimate.Samples, Converged: &conv})
				}
				return QueryResponse{}, he
			}
			s.met.answersQueries.Inc()
			s.met.answerTuples.Add(int64(len(answers)))
			resp.Answers = make([]Answer, 0, len(answers))
			// The tuples share one draw stream: the pass's cost is the
			// longest per-tuple prefix, not the per-tuple sum.
			shared := 0
			for _, a := range answers {
				if a.Estimate.Samples > shared {
					shared = a.Estimate.Samples
				}
				conv := a.Estimate.Converged
				resp.Answers = append(resp.Answers, Answer{Tuple: tupleJSON(a.Tuple), Value: a.Estimate.Value, Samples: a.Estimate.Samples, Converged: &conv})
			}
			s.met.sampleDraws.Add(int64(shared))
			if ri != nil {
				ri.draws.Add(int64(shared))
			}
			resp.Cost = costFromAcct(acct, time.Since(start))
		}
	}
	// Exact paths carry a cost too: zero draws, handler wall time.
	if resp.Cost == nil {
		resp.Cost = &CostInfo{WallSeconds: time.Since(start).Seconds()}
	}
	s.met.queriesServed.Inc()
	// Best-effort guard against caching for an instance deregistered
	// mid-query (the entry would be unreachable, since IDs are never
	// reused). A delete landing between this check and the put can
	// still slip one in; the stray entry is bounded — it occupies one
	// LRU slot until capacity eviction.
	if _, ok := s.reg.get(e.id); ok {
		s.cache.putQuery(key, e.gen, req, resp)
	}
	// Attached after the cache put on purpose: the cached entry never
	// carries an explain payload, so a later hit (explain or not) starts
	// from a clean response and hits report the cached plan instead.
	if explain {
		if req.Mode == "exact" {
			plan = ocqa.PlanExact(len(resp.Answers))
		}
		resp.Explain = &ExplainInfo{
			Plan:        plan,
			Spans:       tr.Spans(),
			Convergence: tr.Curve(),
			ActualDraws: resp.Cost.Draws,
		}
	}
	return resp, nil
}

// tupleJSON renders a tuple as a non-nil string slice.
func tupleJSON(c ocqa.Tuple) []string {
	out := make([]string, len(c))
	copy(out, c)
	return out
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req QueryRequest
	if he := s.decodeJSON(w, r, &req); he != nil {
		s.writeError(w, he)
		return
	}
	explain := explainRequested(r)
	resp, he := runWithDeadline(s, r.Context(), func(ctx context.Context) (QueryResponse, *httpError) {
		return s.executeQuery(ctx, e, req, explain)
	})
	if he != nil {
		s.writeError(w, he)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- counting, marginals, semantics ---------------------------------------

func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req CountRequest
	if he := s.decodeJSON(w, r, &req); he != nil {
		s.writeError(w, he)
		return
	}
	explain := explainRequested(r)
	resp, he := runWithDeadline(s, r.Context(), func(context.Context) (CountResponse, *httpError) {
		start := time.Now()
		p := e.prepared
		out := CountResponse{Singleton: req.Singleton}
		// Counting is pure DP — the only phase worth a span is the count
		// itself, and the plan is the zero-draw exact route.
		tr := traceFor(infoFrom(r.Context()), explain)
		endCount := tr.StartSpan("count")
		if req.Sequences {
			n, err := p.CountSequences(req.Singleton, s.clampLimit(req.Limit))
			if err != nil {
				return CountResponse{}, toHTTPError(err)
			}
			out.Count, out.Sequences = n.String(), true
		} else {
			out.Count = p.CountRepairs(req.Singleton).String()
		}
		endCount()
		out.Cost = &CostInfo{WallSeconds: time.Since(start).Seconds()}
		if explain {
			out.Explain = &ExplainInfo{Plan: ocqa.PlanExact(1), Spans: tr.Spans()}
		}
		return out, nil
	})
	if he != nil {
		s.writeError(w, he)
		return
	}
	s.met.queriesServed.Inc()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMarginals(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req MarginalsRequest
	if he := s.decodeJSON(w, r, &req); he != nil {
		s.writeError(w, he)
		return
	}
	m, he := parseGenerator(req.Generator, req.Singleton)
	if he != nil {
		s.writeError(w, he)
		return
	}
	if ri := infoFrom(r.Context()); ri != nil {
		ri.generator.Store(req.Generator)
		ri.mode.Store(req.Mode)
	}
	explain := explainRequested(r)
	resp, he := runWithDeadline(s, r.Context(), func(ctx context.Context) (MarginalsResponse, *httpError) {
		start := time.Now()
		p := e.prepared
		resp := MarginalsResponse{Instance: e.id, Generator: m.Symbol(), Mode: req.Mode}
		db := p.DB()
		tr := traceFor(infoFrom(ctx), explain)
		switch req.Mode {
		case "exact":
			marginals, err := p.FactMarginals(m, s.clampLimit(req.Limit))
			if err != nil {
				return MarginalsResponse{}, toHTTPError(err)
			}
			resp.Marginals = make([]FactMarginal, 0, len(marginals))
			for _, fm := range marginals {
				f, _ := fm.Prob.Float64()
				resp.Marginals = append(resp.Marginals, FactMarginal{Fact: fm.Fact.String(), Prob: fm.Prob.RatString(), Value: f})
			}
			resp.Cost = &CostInfo{WallSeconds: time.Since(start).Seconds()}
			if explain {
				resp.Explain = &ExplainInfo{Plan: ocqa.PlanExact(db.Len())}
			}
		case "approx":
			// The draw count is resolved here (not left to the library
			// default) only because the server must clamp it and account
			// for it; the default itself is the library's.
			draws := req.MaxSamples
			if draws <= 0 {
				draws = ocqa.DefaultMarginalSamples
			}
			draws = s.clampSamples(draws)
			// Marginal estimation parallelises like a batch: bound the
			// per-request workers by the same pool size. Omitted (≤ 0)
			// falls back to the server default, 0 meaning adaptive
			// selection in the engine.
			workers := req.Workers
			if workers <= 0 {
				workers = s.opts.DefaultWorkers
			}
			if workers > s.opts.BatchWorkers {
				workers = s.opts.BatchWorkers
			}
			if tr != nil {
				ctx = ocqa.ContextWithTrace(ctx, tr)
			}
			vals, acct, err := p.ApproximateFactMarginalsAcct(ctx, m, ocqa.ApproxOptions{
				Seed:       req.Seed,
				MaxSamples: draws,
				Workers:    workers,
				Force:      req.Force,
			})
			if err != nil {
				he := toHTTPError(err)
				he.cost = costFromAcct(acct, time.Since(start))
				return MarginalsResponse{}, he
			}
			s.met.sampleDraws.Add(acct.Draws)
			if ri := infoFrom(ctx); ri != nil {
				ri.draws.Add(acct.Draws)
			}
			resp.Marginals = make([]FactMarginal, 0, len(vals))
			for i, v := range vals {
				resp.Marginals = append(resp.Marginals, FactMarginal{Fact: db.Fact(i).String(), Value: v})
			}
			resp.Cost = costFromAcct(acct, time.Since(start))
			if explain {
				// Marginals run one fixed-budget shared pass scoring every
				// fact, so the plan's prediction is the resolved draw count
				// itself; the |D|-sized output keeps the trace span-only.
				plan := ocqa.QueryPlan{
					Route:          "marginals-fixed",
					Targets:        db.Len(),
					Blocks:         -1,
					RequiredDraws:  int64(draws),
					PredictedDraws: int64(draws),
					MaxSamples:     draws,
				}
				if n, ok := p.BlockCount(); ok {
					plan.Blocks = n
				}
				resp.Explain = &ExplainInfo{Plan: plan, Spans: tr.Spans(), ActualDraws: acct.Draws}
			}
		default:
			return MarginalsResponse{}, badRequest("unknown mode %q (want \"exact\" or \"approx\")", req.Mode)
		}
		return resp, nil
	})
	if he != nil {
		s.writeError(w, he)
		return
	}
	s.met.queriesServed.Inc()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSemantics(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req SemanticsRequest
	if he := s.decodeJSON(w, r, &req); he != nil {
		s.writeError(w, he)
		return
	}
	m, he := parseGenerator(req.Generator, req.Singleton)
	if he != nil {
		s.writeError(w, he)
		return
	}
	resp, he := runWithDeadline(s, r.Context(), func(context.Context) (SemanticsResponse, *httpError) {
		p := e.prepared
		sem, err := p.Semantics(m, s.clampLimit(req.Limit))
		if err != nil {
			return SemanticsResponse{}, toHTTPError(err)
		}
		resp := SemanticsResponse{Instance: e.id, Generator: m.Symbol()}
		resp.Repairs = make([]RepairEntry, 0, len(sem))
		for _, rp := range sem {
			repair := p.RepairOf(rp)
			facts := make([]string, 0, repair.Len())
			for _, f := range repair.Facts() {
				facts = append(facts, f.String())
			}
			f, _ := rp.Prob.Float64()
			resp.Repairs = append(resp.Repairs, RepairEntry{Facts: facts, Prob: rp.Prob.RatString(), Value: f})
		}
		return resp, nil
	})
	if he != nil {
		s.writeError(w, he)
		return
	}
	s.met.queriesServed.Inc()
	writeJSON(w, http.StatusOK, resp)
}
