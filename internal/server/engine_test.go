package server

// Tests for the estimation-engine integration: batch worker clamping
// (the zero-worker deadlock regression), request-scoped cancellation
// of sampling work, the parallel marginals endpoint, and the engine
// counters surfaced at /varz.

import (
	"net/http"
	"reflect"
	"testing"
	"time"

	"repro/internal/engine"
)

// TestOptionsFillClampsBatchWorkers: options validation never lets a
// non-positive worker count through — the pool that handleBatch spawns
// must have at least one goroutine or the jobs sends block forever.
func TestOptionsFillClampsBatchWorkers(t *testing.T) {
	for _, w := range []int{-5, -1, 0} {
		o := Options{BatchWorkers: w}
		o.fill()
		if o.BatchWorkers < 1 {
			t.Fatalf("fill left BatchWorkers = %d for input %d", o.BatchWorkers, w)
		}
	}
}

// TestBatchZeroWorkersRegression: even if the validated option is
// bypassed (a future refactor, a test fixture building Options by
// hand), handleBatch itself must clamp to one worker instead of
// deadlocking with zero.
func TestBatchZeroWorkersRegression(t *testing.T) {
	ts, s := newTestServer(t, Options{})
	reg := register(t, ts.URL, pkFacts, pkFDs)
	// Force the broken configuration past fill's clamp.
	s.opts.BatchWorkers = 0
	done := make(chan int, 1)
	go func() {
		var out BatchResponse
		done <- do(t, http.MethodPost, ts.URL+"/v1/instances/"+reg.ID+"/batch", BatchRequest{
			Queries: []QueryRequest{{Generator: "ur", Mode: "exact", Query: "Ans(n) :- Emp(i, n)"}},
		}, &out)
	}()
	select {
	case status := <-done:
		if status != http.StatusOK {
			t.Fatalf("batch status = %d", status)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("batch request deadlocked with zero workers")
	}
}

// TestQueryDeadlineStopsSampling: a sampling query that would run far
// past the server deadline returns 504 AND the engine actually stops —
// observed via the cancelled-runs counter, not just the status code.
func TestQueryDeadlineStopsSampling(t *testing.T) {
	ts, _ := newTestServer(t, Options{QueryTimeout: 50 * time.Millisecond, SampleCap: 2_000_000_000})
	reg := register(t, ts.URL, pkFacts, pkFDs)
	before := engine.CancelledRuns()
	var out errorResponse
	// A tiny (ε, δ) pushes the stopping rule's success threshold into
	// the tens of millions, guaranteeing the deadline fires
	// mid-estimation rather than after convergence.
	status := do(t, http.MethodPost, ts.URL+"/v1/instances/"+reg.ID+"/query", QueryRequest{
		Generator: "ur", Mode: "approx", Query: "Ans(n) :- Emp(i, n)", Tuple: "Alice", HasTuple: true,
		Epsilon: 0.001, Delta: 0.001, MaxSamples: 2_000_000_000,
	}, &out)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", status, out.Error)
	}
	// The engine observes the cancellation within one chunk; give the
	// abandoned goroutine a moment to reach its next chunk boundary.
	deadline := time.Now().Add(10 * time.Second)
	for engine.CancelledRuns() == before {
		if time.Now().After(deadline) {
			t.Fatal("engine never recorded the cancelled run: sampling kept going")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMarginalsWorkersDeterministic: the marginals endpoint accepts a
// worker count, parallel runs reproduce bit-for-bit for the same
// (seed, workers), and the result agrees with the serial run to
// Monte-Carlo accuracy.
func TestMarginalsWorkersDeterministic(t *testing.T) {
	ts, _ := newTestServer(t, Options{BatchWorkers: 8})
	reg := register(t, ts.URL, pkFacts, pkFDs)
	run := func(workers int) MarginalsResponse {
		var out MarginalsResponse
		status := do(t, http.MethodPost, ts.URL+"/v1/instances/"+reg.ID+"/marginals", MarginalsRequest{
			Generator: "ur", Mode: "approx", Seed: 5, MaxSamples: 40_000, Workers: workers,
		}, &out)
		if status != http.StatusOK {
			t.Fatalf("marginals(workers=%d): status %d", workers, status)
		}
		return out
	}
	par1, par2 := run(4), run(4)
	if !reflect.DeepEqual(par1.Marginals, par2.Marginals) {
		t.Fatal("same (seed, workers) must reproduce identical marginals")
	}
	serial := run(1)
	if len(serial.Marginals) != len(par1.Marginals) {
		t.Fatal("worker count changed the marginals arity")
	}
	for i := range serial.Marginals {
		if d := serial.Marginals[i].Value - par1.Marginals[i].Value; d > 0.02 || d < -0.02 {
			t.Fatalf("fact %d: serial %.4f vs parallel %.4f", i, serial.Marginals[i].Value, par1.Marginals[i].Value)
		}
	}
}

// TestVarzEngineCounters: /varz exposes the engine_* counters and
// sampling traffic moves them.
func TestVarzEngineCounters(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	reg := register(t, ts.URL, pkFacts, pkFDs)
	var out MarginalsResponse
	if status := do(t, http.MethodPost, ts.URL+"/v1/instances/"+reg.ID+"/marginals", MarginalsRequest{
		Generator: "ur", Mode: "approx", MaxSamples: 10_000,
	}, &out); status != http.StatusOK {
		t.Fatalf("marginals: status %d", status)
	}
	var v varz
	if status := do(t, http.MethodGet, ts.URL+"/varz", nil, &v); status != http.StatusOK {
		t.Fatalf("varz: status %d", status)
	}
	if v.EngineSamplesDrawn < 10_000 {
		t.Fatalf("engine_samples_drawn = %d after 10k-draw marginals", v.EngineSamplesDrawn)
	}
	if v.EngineCancelledRuns < 0 {
		t.Fatalf("engine_cancelled_runs = %d", v.EngineCancelledRuns)
	}
}
