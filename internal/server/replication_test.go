package server

import (
	"fmt"
	"io"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
)

// insertFact posts one fact and returns the mutation response.
func insertFact(t *testing.T, base, id, fact string) FactMutationResponse {
	t.Helper()
	var out FactMutationResponse
	status := do(t, http.MethodPost, base+"/v1/instances/"+id+"/facts", InsertFactRequest{Fact: fact}, &out)
	if status != http.StatusOK {
		t.Fatalf("insert %q: status %d", fact, status)
	}
	return out
}

// syncReplica asks the follower to pull id from the source backend.
func syncReplica(t *testing.T, follower, source, id string) ReplSyncResponse {
	t.Helper()
	var out ReplSyncResponse
	status := do(t, http.MethodPost, follower+"/v1/replication/sync", ReplSyncRequest{ID: id, Source: source}, &out)
	if status != http.StatusOK {
		t.Fatalf("sync %q from %s: status %d", id, source, status)
	}
	return out
}

func TestMutationResponseCarriesGen(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	reg := register(t, ts.URL, pkFacts, pkFDs)

	if m := insertFact(t, ts.URL, reg.ID, "Emp(4,Dan)"); m.Gen != 2 {
		t.Fatalf("gen after first insert = %d, want 2", m.Gen)
	}
	var del FactMutationResponse
	status := do(t, http.MethodDelete, fmt.Sprintf("%s/v1/instances/%s/facts/%d", ts.URL, reg.ID, 0), nil, &del)
	if status != http.StatusOK || del.Gen != 3 {
		t.Fatalf("delete: status %d gen %d, want 200 gen 3", status, del.Gen)
	}
}

func TestExplicitIDRegistration(t *testing.T) {
	ts, _ := newTestServer(t, Options{})

	var reg RegisterResponse
	req := RegisterRequest{Facts: pkFacts, FDs: pkFDs, ID: "node7-i42"}
	if status := do(t, http.MethodPost, ts.URL+"/v1/instances", req, &reg); status != http.StatusCreated {
		t.Fatalf("explicit-id register: status %d", status)
	}
	if reg.ID != "node7-i42" {
		t.Fatalf("registered id = %q, want node7-i42", reg.ID)
	}

	// The id is now taken: a second registration under it must 409
	// rather than silently overwrite.
	var e errorResponse
	if status := do(t, http.MethodPost, ts.URL+"/v1/instances", req, &e); status != http.StatusConflict {
		t.Fatalf("duplicate explicit id: status %d, want 409", status)
	}

	// Ill-formed ids are rejected before any engine work.
	bad := RegisterRequest{Facts: pkFacts, FDs: pkFDs, ID: "has space"}
	if status := do(t, http.MethodPost, ts.URL+"/v1/instances", bad, &e); status != http.StatusBadRequest {
		t.Fatalf("bad explicit id: status %d, want 400", status)
	}

	// Auto-allocation must not collide with a numeric explicit id.
	var reg2 RegisterResponse
	if status := do(t, http.MethodPost, ts.URL+"/v1/instances",
		RegisterRequest{Facts: pkFacts, FDs: pkFDs, ID: "i7"}, &reg2); status != http.StatusCreated {
		t.Fatalf("numeric explicit id: status %d", status)
	}
	auto := register(t, ts.URL, pkFacts, pkFDs)
	if auto.ID == "i7" || auto.ID == "node7-i42" {
		t.Fatalf("auto-allocated id %q collided with an explicit id", auto.ID)
	}
}

func TestReplicationFeed(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	reg := register(t, ts.URL, pkFacts, pkFDs)
	insertFact(t, ts.URL, reg.ID, "Emp(4,Dan)")
	insertFact(t, ts.URL, reg.ID, "Emp(5,Fay)")

	// A follower at gen 1 (registration) still has ops 2..3 in the tail:
	// the feed is incremental.
	var feed ReplFeedResponse
	if status := do(t, http.MethodGet, ts.URL+"/v1/replication/instances/"+reg.ID+"?after=1", nil, &feed); status != http.StatusOK {
		t.Fatalf("feed: status %d", status)
	}
	if feed.Full || len(feed.Ops) != 2 || feed.Gen != 3 {
		t.Fatalf("incremental feed = %+v, want 2 ops up to gen 3", feed)
	}
	if feed.Ops[0].Gen != 2 || feed.Ops[0].Op != "insert" || feed.Ops[1].Gen != 3 {
		t.Fatalf("feed ops = %+v", feed.Ops)
	}

	// after=0 asks for op 1, which never exists (registration is not an
	// op): the feed must fall back to full state.
	var full ReplFeedResponse
	if status := do(t, http.MethodGet, ts.URL+"/v1/replication/instances/"+reg.ID+"?after=0", nil, &full); status != http.StatusOK {
		t.Fatalf("full feed: status %d", status)
	}
	if !full.Full || full.Facts == "" || full.FDs == "" || len(full.Ops) != 0 {
		t.Fatalf("full feed = %+v, want full-state fallback", full)
	}

	// A follower already at the head receives neither ops nor state.
	var head ReplFeedResponse
	if status := do(t, http.MethodGet, ts.URL+"/v1/replication/instances/"+reg.ID+"?after=3", nil, &head); status != http.StatusOK {
		t.Fatalf("caught-up feed: status %d", status)
	}
	if head.Full || len(head.Ops) != 0 || head.Gen != 3 {
		t.Fatalf("caught-up feed = %+v", head)
	}

	// Unknown instance: 404.
	var e errorResponse
	if status := do(t, http.MethodGet, ts.URL+"/v1/replication/instances/nope?after=0", nil, &e); status != http.StatusNotFound {
		t.Fatalf("unknown instance feed: status %d, want 404", status)
	}
}

func TestReplicationSyncAndPromote(t *testing.T) {
	owner, _ := newTestServer(t, Options{})
	follower, _ := newTestServer(t, Options{})

	reg := register(t, owner.URL, pkFacts, pkFDs)

	// First sync has no local replica: full-state transfer at gen 1.
	sy := syncReplica(t, follower.URL, owner.URL, reg.ID)
	if !sy.Full || sy.Gen != 1 {
		t.Fatalf("initial sync = %+v, want full at gen 1", sy)
	}

	// Mutations on the owner, then an incremental catch-up.
	insertFact(t, owner.URL, reg.ID, "Emp(4,Dan)")
	insertFact(t, owner.URL, reg.ID, "Emp(4,Dana)")
	sy = syncReplica(t, follower.URL, owner.URL, reg.ID)
	if sy.Full || sy.Applied != 2 || sy.Gen != 3 {
		t.Fatalf("incremental sync = %+v, want 2 ops applied to gen 3", sy)
	}

	// Replicas are invisible to the serving surface.
	var listed []InstanceInfo
	do(t, http.MethodGet, follower.URL+"/v1/instances", nil, &listed)
	if len(listed) != 0 {
		t.Fatalf("replica leaked into the live listing: %+v", listed)
	}
	var reps []ReplInstanceInfo
	do(t, http.MethodGet, follower.URL+"/v1/replication/replicas", nil, &reps)
	if len(reps) != 1 || reps[0].ID != reg.ID || reps[0].Gen != 3 {
		t.Fatalf("replicas = %+v", reps)
	}

	// The owner's exact answers, as the oracle for the promoted copy.
	q := QueryRequest{Generator: "ur", Mode: "exact", Query: "Ans(n) :- Emp(i, n)"}
	var want QueryResponse
	if status := do(t, http.MethodPost, owner.URL+"/v1/instances/"+reg.ID+"/query", q, &want); status != http.StatusOK {
		t.Fatalf("owner query failed")
	}

	// Promote: the follower now serves the instance at the same gen.
	var pr ReplPromoteResponse
	if status := do(t, http.MethodPost, follower.URL+"/v1/replication/promote", ReplPromoteRequest{ID: reg.ID}, &pr); status != http.StatusOK {
		t.Fatalf("promote: status %d", status)
	}
	if pr.Gen != 3 || pr.Facts != 7 {
		t.Fatalf("promote = %+v, want gen 3 with 7 facts", pr)
	}

	var got QueryResponse
	if status := do(t, http.MethodPost, follower.URL+"/v1/instances/"+reg.ID+"/query", q, &got); status != http.StatusOK {
		t.Fatalf("promoted query: status %d", status)
	}
	if !reflect.DeepEqual(got.Answers, want.Answers) {
		t.Fatalf("promoted answers diverged:\n  owner:    %+v\n  follower: %+v", want.Answers, got.Answers)
	}

	// Promotion consumed the replica; a second promote is a 404.
	var e errorResponse
	if status := do(t, http.MethodPost, follower.URL+"/v1/replication/promote", ReplPromoteRequest{ID: reg.ID}, &e); status != http.StatusNotFound {
		t.Fatalf("re-promote: status %d, want 404", status)
	}

	// And now that the follower owns the instance, it refuses to follow
	// it again (split-brain guard).
	if status := do(t, http.MethodPost, follower.URL+"/v1/replication/sync",
		ReplSyncRequest{ID: reg.ID, Source: owner.URL}, &e); status != http.StatusConflict {
		t.Fatalf("sync of live instance: status %d, want 409", status)
	}

	// Mutations keep the gen lineage going on the new owner.
	if m := insertFact(t, follower.URL, reg.ID, "Emp(6,Gil)"); m.Gen != 4 {
		t.Fatalf("post-promotion gen = %d, want 4", m.Gen)
	}
}

func TestReplicationPromoteCollision(t *testing.T) {
	owner, _ := newTestServer(t, Options{})
	follower, _ := newTestServer(t, Options{})

	reg := register(t, owner.URL, pkFacts, pkFDs) // "i1" on the owner
	syncReplica(t, follower.URL, owner.URL, reg.ID)

	// The follower registers its own live instance under the same id.
	var dup RegisterResponse
	if status := do(t, http.MethodPost, follower.URL+"/v1/instances",
		RegisterRequest{Facts: fdFacts, FDs: fdFDs, ID: reg.ID}, &dup); status != http.StatusCreated {
		t.Fatalf("conflicting live register: status %d", status)
	}

	// Promote must refuse — and must NOT lose the replica.
	var e errorResponse
	if status := do(t, http.MethodPost, follower.URL+"/v1/replication/promote", ReplPromoteRequest{ID: reg.ID}, &e); status != http.StatusConflict {
		t.Fatalf("promote over live id: status %d, want 409", status)
	}
	var reps []ReplInstanceInfo
	do(t, http.MethodGet, follower.URL+"/v1/replication/replicas", nil, &reps)
	if len(reps) != 1 {
		t.Fatalf("replica lost by failed promotion: %+v", reps)
	}
}

func TestReplicationSyncAfterTailOverflow(t *testing.T) {
	owner, _ := newTestServer(t, Options{})
	follower, _ := newTestServer(t, Options{})

	reg := register(t, owner.URL, pkFacts, pkFDs)
	syncReplica(t, follower.URL, owner.URL, reg.ID)

	// Push the owner past the bounded tail so the follower's window is
	// gone; the sync must fall back to a full transfer and still land on
	// the owner's generation.
	for i := 0; i < replTailMax+8; i++ {
		insertFact(t, owner.URL, reg.ID, fmt.Sprintf("Emp(%d,N%d)", 100+i, i))
	}
	sy := syncReplica(t, follower.URL, owner.URL, reg.ID)
	if !sy.Full || sy.Gen != int64(1+replTailMax+8) {
		t.Fatalf("post-overflow sync = %+v, want full at gen %d", sy, 1+replTailMax+8)
	}
}

func TestReplicationStoreEndpoints(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	ts, _ := newTestServer(t, Options{Store: st})
	reg := register(t, ts.URL, pkFacts, pkFDs)
	insertFact(t, ts.URL, reg.ID, "Emp(4,Dan)")

	var man []store.SegmentInfo
	if status := do(t, http.MethodGet, ts.URL+"/v1/replication/store/manifest", nil, &man); status != http.StatusOK {
		t.Fatalf("manifest: status %d", status)
	}
	if len(man) == 0 {
		t.Fatalf("manifest is empty after a registration")
	}
	for _, f := range man {
		resp, err := http.Get(fmt.Sprintf("%s/v1/replication/store/segments/%s?size=%d", ts.URL, f.Name, f.Size))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || int64(len(b)) != f.Size {
			t.Fatalf("segment %s: status %d, %d bytes, want %d", f.Name, resp.StatusCode, len(b), f.Size)
		}
	}

	// Path traversal and foreign names are rejected.
	var e errorResponse
	if status := do(t, http.MethodGet, ts.URL+"/v1/replication/store/segments/..%2F..%2Fetc%2Fpasswd?size=1", nil, &e); status != http.StatusBadRequest {
		t.Fatalf("traversal segment name: status %d, want 400", status)
	}

	// Memory-only servers answer 404, not 500.
	mem, _ := newTestServer(t, Options{})
	if status := do(t, http.MethodGet, mem.URL+"/v1/replication/store/manifest", nil, &e); status != http.StatusNotFound {
		t.Fatalf("memory-only manifest: status %d, want 404", status)
	}
}

func TestLoadSheddingQueriesOnly(t *testing.T) {
	ts, s := newTestServer(t, Options{ShedInflight: 1, WatchWait: time.Minute})
	reg := register(t, ts.URL, pkFacts, pkFDs)

	// Park a watcher to occupy the single inflight slot.
	watchURL := ts.URL + "/v1/instances/" + reg.ID +
		"/watch?generator=ur&mode=exact&query=Ans(n)%20:-%20Emp(i,%20n)&since=1"
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(watchURL)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.inflight.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("watcher never became inflight")
		}
		time.Sleep(time.Millisecond)
	}

	// The query path sheds with 503...
	q := QueryRequest{Generator: "ur", Mode: "exact", Query: "Ans(n) :- Emp(i, n)"}
	var e errorResponse
	if status := do(t, http.MethodPost, ts.URL+"/v1/instances/"+reg.ID+"/query", q, &e); status != http.StatusServiceUnavailable {
		t.Fatalf("query under pressure: status %d, want 503", status)
	}
	if e.Error == "" || e.RequestID == "" {
		t.Fatalf("shed error body = %+v", e)
	}

	// ...while mutations, replication and control traffic pass.
	if m := insertFact(t, ts.URL, reg.ID, "Emp(9,Zoe)"); m.Gen != 2 {
		t.Fatalf("mutation under pressure: %+v", m)
	}
	var feed ReplFeedResponse
	if status := do(t, http.MethodGet, ts.URL+"/v1/replication/instances/"+reg.ID+"?after=1", nil, &feed); status != http.StatusOK {
		t.Fatalf("replication feed under pressure: status %d", status)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz under pressure: %v %v", err, resp)
	}
	resp.Body.Close()

	// The mutation above also wakes the parked watcher.
	wg.Wait()
}
