package server

import (
	"fmt"
	"sort"
	"sync"
	"time"

	ocqa "repro"
)

// instanceEntry is one registered instance: the prepared artifacts
// (conflict structure, block decomposition, sequence-sampler DP
// tables, constraint class) built once at registration and shared —
// read-only — by every query that names the instance.
type instanceEntry struct {
	id       string
	name     string
	prepared *ocqa.Prepared
	created  time.Time
}

func (e *instanceEntry) info() InstanceInfo {
	in := e.prepared.Instance
	return InstanceInfo{
		ID:         e.id,
		Name:       e.name,
		Facts:      in.DB().Len(),
		Class:      in.Class().String(),
		Consistent: in.IsConsistent(),
		Prepared:   in.Class() == ocqa.PrimaryKeys,
		CreatedAt:  e.created.UTC().Format(time.RFC3339),
	}
}

// registry maps instance IDs to prepared instances behind an RWMutex:
// registration and removal take the write lock; the (vastly more
// frequent) per-query lookups share the read lock. cap bounds the
// number of live instances (each holds a database plus DP tables).
type registry struct {
	mu      sync.RWMutex
	cap     int
	seq     int
	entries map[string]*instanceEntry
}

func newRegistry(capacity int) *registry {
	return &registry{cap: capacity, entries: make(map[string]*instanceEntry)}
}

// add prepares the instance eagerly and registers it under a fresh ID;
// it returns nil when the registry is at capacity.
func (r *registry) add(name string, inst *ocqa.Instance, now time.Time) *instanceEntry {
	// Preparation happens outside the lock on purpose: DP-table
	// construction is the expensive part and must not block lookups.
	prepared := inst.Prepare()
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.entries) >= r.cap {
		return nil
	}
	r.seq++
	e := &instanceEntry{
		id:       fmt.Sprintf("i%d", r.seq),
		name:     name,
		prepared: prepared,
		created:  now,
	}
	r.entries[e.id] = e
	return e
}

func (r *registry) get(id string) (*instanceEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[id]
	return e, ok
}

func (r *registry) remove(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[id]; !ok {
		return false
	}
	delete(r.entries, id)
	return true
}

func (r *registry) list() []*instanceEntry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*instanceEntry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].created.Before(out[j].created) || out[i].created.Equal(out[j].created) && out[i].id < out[j].id
	})
	return out
}

func (r *registry) len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}
