package server

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	ocqa "repro"
)

// instanceEntry is one registered instance: the prepared artifacts
// (conflict structure, block decomposition, sequence-sampler DP
// tables, constraint class) built once at registration — or lazily
// after a mutation or a warm boot — and shared, read-only, by every
// query that names the instance. Mutations never modify an entry's
// Prepared in place: they install a fresh entry whose instance was
// derived copy-on-write, so in-flight queries keep a consistent view.
type instanceEntry struct {
	id       string
	name     string
	prepared *ocqa.Prepared
	created  time.Time
	// gen counts the mutations applied to this id (1 at registration).
	// It is folded into result-cache keys, so a query computed against
	// an older generation can never be served — or cached — as current
	// after a mutation lands.
	gen int64
	// used is the registry-wide LRU clock value of the entry's last
	// lookup; updated atomically under the registry's read lock.
	used atomic.Int64
}

func (e *instanceEntry) info() InstanceInfo {
	in := e.prepared.Instance
	return InstanceInfo{
		ID:         e.id,
		Name:       e.name,
		Facts:      in.DB().Len(),
		Class:      in.Class().String(),
		Consistent: in.IsConsistent(),
		Prepared:   in.Class() == ocqa.PrimaryKeys,
		CreatedAt:  e.created.UTC().Format(time.RFC3339),
	}
}

// errNotFound distinguishes "no such instance" from mutation failures.
var errNotFound = errors.New("server: unknown instance")

// registry maps instance IDs to prepared instances behind an RWMutex:
// registration, removal and mutation take the write lock; the (vastly
// more frequent) per-query lookups share the read lock. cap bounds the
// number of live instances; at capacity, add evicts the
// least-recently-used entry instead of refusing, so a long-running
// service keeps absorbing new registrations.
type registry struct {
	mu      sync.RWMutex
	cap     int
	seq     int
	clock   atomic.Int64 // LRU clock, bumped on every lookup
	entries map[string]*instanceEntry
}

func newRegistry(capacity int) *registry {
	return &registry{cap: capacity, entries: make(map[string]*instanceEntry)}
}

// allocID reserves a fresh instance ID. IDs are allocated before the
// WAL record is written so the durable log and the in-memory registry
// agree on naming.
func (r *registry) allocID() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	return fmt.Sprintf("i%d", r.seq)
}

// add registers a prepared instance under the pre-allocated ID. When
// the registry is at (or, after a warm boot with a lowered cap, above)
// capacity, least-recently-used entries are evicted until the new
// entry fits, and returned so the caller can journal the evictions and
// drop their cached results.
func (r *registry) add(id, name string, prepared *ocqa.Prepared, now time.Time) (e *instanceEntry, evicted []*instanceEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.entries) >= r.cap {
		v := r.evictLRULocked()
		if v == nil {
			break
		}
		evicted = append(evicted, v)
	}
	e = &instanceEntry{id: id, name: name, prepared: prepared, created: now, gen: 1}
	e.used.Store(r.clock.Add(1))
	r.entries[id] = e
	return e, evicted
}

// installExplicit registers a prepared instance under a caller-chosen
// id with an explicit starting generation: coordinator-minted ids at
// gen 1, and replica promotions carrying their source's mutation count
// so result-cache keys and watch ?since cursors stay monotone across a
// failover. Unlike add, a collision with a live id is an error — the
// caller owns naming, so silently overwriting would mask a split brain.
// Evictions behave as in add.
func (r *registry) installExplicit(id, name string, prepared *ocqa.Prepared, created time.Time, gen int64) (e *instanceEntry, evicted []*instanceEntry, err error) {
	if gen < 1 {
		gen = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[id]; dup {
		return nil, nil, fmt.Errorf("instance id %q is already registered on this backend", id)
	}
	for len(r.entries) >= r.cap {
		v := r.evictLRULocked()
		if v == nil {
			break
		}
		evicted = append(evicted, v)
	}
	e = &instanceEntry{id: id, name: name, prepared: prepared, created: created, gen: gen}
	e.used.Store(r.clock.Add(1))
	r.entries[id] = e
	// Keep the auto-allocation sequence ahead of numeric explicit ids so
	// allocID never collides with one.
	if n, err := strconv.Atoi(strings.TrimPrefix(id, "i")); err == nil && n > r.seq {
		r.seq = n
	}
	return e, evicted, nil
}

// evictLRU evicts the least-recently-used entry, if any; the boot path
// uses it to shrink a replayed registry down to a lowered capacity.
func (r *registry) evictLRU() *instanceEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evictLRULocked()
}

// evictLRULocked removes and returns the entry with the oldest lookup
// clock. The scan is O(capacity), which is bounded and tiny next to
// the preparation work a registration performs anyway.
func (r *registry) evictLRULocked() *instanceEntry {
	var victim *instanceEntry
	for _, e := range r.entries {
		if victim == nil || e.used.Load() < victim.used.Load() ||
			(e.used.Load() == victim.used.Load() && e.id < victim.id) {
			victim = e
		}
	}
	if victim != nil {
		delete(r.entries, victim.id)
	}
	return victim
}

// restore installs a replayed entry under its original ID without
// consuming a new sequence number beyond it; used only at boot, before
// the server accepts traffic.
func (r *registry) restore(id, name string, prepared *ocqa.Prepared, created time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := &instanceEntry{id: id, name: name, prepared: prepared, created: created, gen: 1}
	e.used.Store(r.clock.Add(1))
	r.entries[id] = e
	// Keep the ID sequence ahead of every restored ID so new
	// registrations never collide with a live instance.
	if n, err := strconv.Atoi(strings.TrimPrefix(id, "i")); err == nil && n > r.seq {
		r.seq = n
	}
}

func (r *registry) get(id string) (*instanceEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[id]
	if ok {
		e.used.Store(r.clock.Add(1))
	}
	return e, ok
}

// mutate atomically replaces the entry for id with the one f derives
// from it. f runs under the write lock: mutations serialise against
// each other (no lost updates between two concurrent inserts) and
// against registration/removal, while the copy-on-write instance keeps
// in-flight readers of the old entry consistent. f journalling to the
// WAL inside the critical section gives the log the same order the
// registry applied.
func (r *registry) mutate(id string, f func(*instanceEntry) (*instanceEntry, error)) (*instanceEntry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[id]
	if !ok {
		return nil, errNotFound
	}
	ne, err := f(e)
	if err != nil {
		return nil, err
	}
	ne.used.Store(r.clock.Add(1))
	r.entries[id] = ne
	return ne, nil
}

func (r *registry) remove(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[id]; !ok {
		return false
	}
	delete(r.entries, id)
	return true
}

func (r *registry) list() []*instanceEntry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*instanceEntry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].created.Before(out[j].created) || out[i].created.Equal(out[j].created) && out[i].id < out[j].id
	})
	return out
}

func (r *registry) len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}
