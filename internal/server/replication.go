package server

// Backend-to-backend replication: the serving-tier half of the cluster
// layer. Every live instance exposes a generation-sequenced feed
// (GET /v1/replication/instances/{id}?after=GEN) that returns either
// the exact mutation ops in (after, gen] — when the bounded per-instance
// op tail still covers that window — or a full-state fallback (the
// database and FD set in their text formats). A follower backend pulls
// the feed with POST /v1/replication/sync and maintains a warm replica
// in a map SEPARATE from the live registry: replicas never serve
// queries, never appear in listings, and never journal — until
// POST /v1/replication/promote installs one into the registry with its
// generation intact, journalling the takeover so it survives a restart.
// The durable store's raw files are also streamable
// (GET /v1/replication/store/manifest + .../segments/{name}) for
// whole-directory cloning.
//
// Replication applies the SAME copy-on-write mutations the owner
// applied (Prepared.ApplyInsert/ApplyDelete, in generation order), so a
// promoted replica's exact query answers are big.Rat-bitwise equal to
// the owner's — the property the cluster failover audit checks.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	ocqa "repro"
	"repro/internal/parse"
)

// replTailMax bounds each live instance's in-memory op tail. A follower
// that lags by more than this many mutations falls back to a full-state
// sync instead of an incremental one.
const replTailMax = 256

// ReplOp is one replicated mutation: the generation it produced and the
// operation that produced it, in the same text encodings the public API
// uses.
type ReplOp struct {
	// Gen is the instance generation AFTER this op applied.
	Gen int64 `json:"gen"`
	// Op is "insert" or "delete".
	Op string `json:"op"`
	// Fact is the inserted fact's canonical text (insert only).
	Fact string `json:"fact,omitempty"`
	// Index is the deleted fact's index in the pre-delete sorted fact
	// order (delete only).
	Index int `json:"index"`
}

// ReplInstanceInfo is one instance's replication cursor.
type ReplInstanceInfo struct {
	ID  string `json:"id"`
	Gen int64  `json:"gen"`
}

// ReplFeedResponse is the owner's answer to a feed pull: ops covering
// (after, gen] when the tail still holds them, the full state otherwise.
// A follower already at gen receives neither.
type ReplFeedResponse struct {
	ID      string `json:"id"`
	Name    string `json:"name,omitempty"`
	Created string `json:"created"`
	Gen     int64  `json:"gen"`
	// Full marks a full-state fallback: Facts/FDs carry the database and
	// FD set in the text formats of package parse, and Ops is empty.
	Full  bool     `json:"full,omitempty"`
	Facts string   `json:"facts,omitempty"`
	FDs   string   `json:"fds,omitempty"`
	Ops   []ReplOp `json:"ops,omitempty"`
}

// ReplSyncRequest asks this backend to pull one instance from a source
// backend and bring its local replica up to the source's generation.
type ReplSyncRequest struct {
	ID string `json:"id"`
	// Source is the owning backend's base URL, e.g. "http://127.0.0.1:8081".
	Source string `json:"source"`
}

// ReplSyncResponse reports the replica's state after the pull.
type ReplSyncResponse struct {
	ID  string `json:"id"`
	Gen int64  `json:"gen"`
	// Full reports whether the sync fell back to a full-state transfer.
	Full bool `json:"full"`
	// Applied counts incremental ops applied by this sync.
	Applied int `json:"applied"`
}

// ReplPromoteRequest promotes this backend's replica of ID into its
// live registry.
type ReplPromoteRequest struct {
	ID string `json:"id"`
}

// ReplPromoteResponse describes the promoted instance.
type ReplPromoteResponse struct {
	ID    string `json:"id"`
	Gen   int64  `json:"gen"`
	Facts int    `json:"facts"`
}

// replicaEntry is one warm follower copy: the same prepared artifacts a
// live entry holds, advanced op-by-op in the owner's generation order,
// but outside the registry — it serves no queries until promoted.
type replicaEntry struct {
	id       string
	name     string
	prepared *ocqa.Prepared
	created  time.Time
	gen      int64
}

// replState is the server's replication bookkeeping: per-live-instance
// op tails (the feed's incremental source) and the replicas this
// backend follows for other backends.
type replState struct {
	mu       sync.Mutex
	tails    map[string][]ReplOp
	replicas map[string]*replicaEntry
}

func newReplState() *replState {
	return &replState{tails: make(map[string][]ReplOp), replicas: make(map[string]*replicaEntry)}
}

// appendOp records one committed mutation in the instance's tail,
// keeping only the most recent replTailMax ops (older windows fall back
// to full sync).
func (rs *replState) appendOp(id string, op ReplOp) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	tail := append(rs.tails[id], op)
	if len(tail) > replTailMax {
		tail = tail[len(tail)-replTailMax:]
	}
	rs.tails[id] = tail
}

func (rs *replState) dropTail(id string) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	delete(rs.tails, id)
}

// opsRange returns the contiguous ops covering exactly (after, upto],
// or ok=false when the tail no longer holds that window (full sync
// required). Ops newer than upto — a mutation that landed after the
// caller snapshotted its entry — are excluded, keeping the feed
// consistent with the entry it describes.
func (rs *replState) opsRange(id string, after, upto int64) ([]ReplOp, bool) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	next := after + 1
	var out []ReplOp
	for _, op := range rs.tails[id] {
		if op.Gen <= after {
			continue
		}
		if op.Gen > upto {
			break
		}
		if op.Gen != next {
			return nil, false
		}
		out = append(out, op)
		next++
	}
	if next != upto+1 {
		return nil, false
	}
	return out, true
}

func (rs *replState) replica(id string) (*replicaEntry, bool) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	re, ok := rs.replicas[id]
	return re, ok
}

func (rs *replState) setReplica(re *replicaEntry) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.replicas[re.id] = re
}

// takeReplica removes and returns the replica (promotion consumes it).
func (rs *replState) takeReplica(id string) (*replicaEntry, bool) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	re, ok := rs.replicas[id]
	if ok {
		delete(rs.replicas, id)
	}
	return re, ok
}

func (rs *replState) listReplicas() []ReplInstanceInfo {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make([]ReplInstanceInfo, 0, len(rs.replicas))
	for _, re := range rs.replicas {
		out = append(out, ReplInstanceInfo{ID: re.id, Gen: re.gen})
	}
	return out
}

// --- owner-side handlers ----------------------------------------------------

// handleReplInstances lists the live instances' replication cursors.
func (s *Server) handleReplInstances(w http.ResponseWriter, r *http.Request) {
	entries := s.reg.list()
	out := make([]ReplInstanceInfo, 0, len(entries))
	for _, e := range entries {
		out = append(out, ReplInstanceInfo{ID: e.id, Gen: e.gen})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleReplFeed serves one instance's replication feed.
func (s *Server) handleReplFeed(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var after int64
	if he := watchInt64(r, "after", &after); he != nil {
		s.writeError(w, he)
		return
	}
	// Snapshot the entry first, then read the tail: entries are
	// immutable (mutations install a successor), so e.gen and e.prepared
	// agree, and opsRange filters out any op newer than e.gen.
	resp := ReplFeedResponse{
		ID:      e.id,
		Name:    e.name,
		Created: e.created.UTC().Format(time.RFC3339Nano),
		Gen:     e.gen,
	}
	if after < e.gen {
		if ops, ok := s.repl.opsRange(e.id, after, e.gen); ok {
			resp.Ops = ops
		} else {
			resp.Full = true
			resp.Facts = ocqa.FormatDatabase(e.prepared.DB())
			resp.FDs = parse.FormatFDs(e.prepared.Sigma())
		}
	}
	s.met.replFeeds.Inc()
	writeJSON(w, http.StatusOK, resp)
}

// handleReplManifest lists the durable store's streamable files.
func (s *Server) handleReplManifest(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		s.writeError(w, &httpError{status: http.StatusNotFound, msg: "no durable store configured (-data-dir unset)"})
		return
	}
	man, err := s.store.Manifest()
	if err != nil {
		s.writeError(w, &httpError{status: http.StatusInternalServerError, msg: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, man)
}

// handleReplSegment streams one store file at the manifest-listed size.
// The bytes are staged in memory so a mid-stream store error can still
// produce a clean HTTP error instead of a torn 200.
func (s *Server) handleReplSegment(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		s.writeError(w, &httpError{status: http.StatusNotFound, msg: "no durable store configured (-data-dir unset)"})
		return
	}
	name := r.PathValue("name")
	sizeStr := r.URL.Query().Get("size")
	size, err := strconv.ParseInt(sizeStr, 10, 64)
	if err != nil {
		s.writeError(w, badRequest("parameter \"size\": %q is not an integer", sizeStr))
		return
	}
	var buf bytes.Buffer
	if err := s.store.StreamFile(name, size, &buf); err != nil {
		s.writeError(w, badRequest("%v", err))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

// --- follower-side handlers -------------------------------------------------

// replClient is the backend-to-backend HTTP client. The timeout bounds
// a feed pull end-to-end; individual requests also carry the inbound
// request's context.
var replClient = &http.Client{Timeout: 30 * time.Second}

// fetchFeed pulls one instance's feed from a source backend.
func fetchFeed(r *http.Request, source, id string, after int64) (*ReplFeedResponse, error) {
	u := fmt.Sprintf("%s/v1/replication/instances/%s?after=%d", source, url.PathEscape(id), after)
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	res, err := replClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		var eb errorResponse
		_ = json.NewDecoder(res.Body).Decode(&eb)
		return nil, fmt.Errorf("source %s: status %d: %s", source, res.StatusCode, eb.Error)
	}
	var feed ReplFeedResponse
	if err := json.NewDecoder(res.Body).Decode(&feed); err != nil {
		return nil, fmt.Errorf("decoding feed: %w", err)
	}
	return &feed, nil
}

// handleReplSync pulls one instance from a source backend into this
// backend's replica map, incrementally when the local replica's
// generation is still inside the source's op tail, by full-state
// transfer otherwise. Syncs are engine work (Prepare, ApplyInsert),
// so they hold a compute-semaphore slot.
func (s *Server) handleReplSync(w http.ResponseWriter, r *http.Request) {
	var req ReplSyncRequest
	if he := s.decodeJSON(w, r, &req); he != nil {
		s.writeError(w, he)
		return
	}
	if req.ID == "" || req.Source == "" {
		s.writeError(w, badRequest("\"id\" and \"source\" are both required"))
		return
	}
	if _, live := s.reg.get(req.ID); live {
		s.writeError(w, &httpError{status: http.StatusConflict,
			msg: "instance " + strconv.Quote(req.ID) + " is served live by this backend; a backend cannot follow an instance it owns"})
		return
	}
	s.compute <- struct{}{}
	defer func() { <-s.compute }()

	var after int64
	cur, hasCur := s.repl.replica(req.ID)
	if hasCur {
		after = cur.gen
	}
	feed, err := fetchFeed(r, req.Source, req.ID, after)
	if err != nil {
		s.writeError(w, &httpError{status: http.StatusBadGateway, msg: fmt.Sprintf("pulling feed: %v", err)})
		return
	}
	out := ReplSyncResponse{ID: req.ID, Gen: after}
	if feed.Gen <= after {
		// Already caught up (or the source regressed, which promotion's
		// gen continuity makes impossible in one lineage).
		writeJSON(w, http.StatusOK, out)
		return
	}
	if !feed.Full && hasCur {
		applied, err := applyReplOps(cur, feed.Ops)
		if err == nil {
			s.repl.setReplica(applied)
			s.met.replOpsApplied.Add(int64(len(feed.Ops)))
			out.Gen, out.Applied = applied.gen, len(feed.Ops)
			writeJSON(w, http.StatusOK, out)
			return
		}
		// Continuity broke (replica diverged or tail raced); fall through
		// to a full transfer.
		feed, err = fetchFeed(r, req.Source, req.ID, 0)
		if err != nil {
			s.writeError(w, &httpError{status: http.StatusBadGateway, msg: fmt.Sprintf("pulling full feed: %v", err)})
			return
		}
		if !feed.Full {
			s.writeError(w, &httpError{status: http.StatusBadGateway,
				msg: fmt.Sprintf("source did not fall back to a full feed for %q after op-continuity loss", req.ID)})
			return
		}
	}
	if !feed.Full {
		// No local replica and the feed sent ops: they cannot start at
		// generation 1 (registration is not an op), so this is a protocol
		// violation by the source.
		s.writeError(w, &httpError{status: http.StatusBadGateway,
			msg: fmt.Sprintf("source sent an incremental feed for %q but no replica exists here", req.ID)})
		return
	}
	inst, err := ocqa.NewInstanceFromText(feed.Facts, feed.FDs)
	if err != nil {
		s.writeError(w, &httpError{status: http.StatusBadGateway, msg: fmt.Sprintf("rebuilding %q from full feed: %v", req.ID, err)})
		return
	}
	created, _ := time.Parse(time.RFC3339Nano, feed.Created)
	// Prepare eagerly: the whole point of a warm follower is that
	// failover does not pay a cold DP-table build.
	re := &replicaEntry{id: feed.ID, name: feed.Name, prepared: inst.Prepare(), created: created, gen: feed.Gen}
	s.repl.setReplica(re)
	s.met.replFullSyncs.Inc()
	out.Gen, out.Full = re.gen, true
	writeJSON(w, http.StatusOK, out)
}

// applyReplOps advances a replica through contiguous feed ops, applying
// the same copy-on-write mutations the owner applied. Any gap or apply
// failure aborts (the caller falls back to a full sync) — a replica
// must never hold a state the owner never held.
func applyReplOps(cur *replicaEntry, ops []ReplOp) (*replicaEntry, error) {
	p, gen := cur.prepared, cur.gen
	for _, op := range ops {
		if op.Gen != gen+1 {
			return nil, fmt.Errorf("op generation %d does not extend replica generation %d", op.Gen, gen)
		}
		switch op.Op {
		case "insert":
			f, err := ocqa.ParseFact(op.Fact)
			if err != nil {
				return nil, fmt.Errorf("op gen %d: %w", op.Gen, err)
			}
			np, _, err := p.ApplyInsert(f)
			if err != nil {
				return nil, fmt.Errorf("op gen %d: %w", op.Gen, err)
			}
			p = np
		case "delete":
			np, err := p.ApplyDelete(op.Index)
			if err != nil {
				return nil, fmt.Errorf("op gen %d: %w", op.Gen, err)
			}
			p = np
		default:
			return nil, fmt.Errorf("op gen %d: unknown op %q", op.Gen, op.Op)
		}
		gen++
	}
	return &replicaEntry{id: cur.id, name: cur.name, prepared: p, created: cur.created, gen: gen}, nil
}

// handleReplReplicas lists this backend's warm replicas.
func (s *Server) handleReplReplicas(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.repl.listReplicas())
}

// handleReplPromote installs a warm replica into the live registry with
// its generation intact, journalling the takeover. From this response
// on, the backend serves the instance's queries and mutations exactly
// as if it had owned it all along; result-cache keys stay monotone
// because the generation carried over.
func (s *Server) handleReplPromote(w http.ResponseWriter, r *http.Request) {
	var req ReplPromoteRequest
	if he := s.decodeJSON(w, r, &req); he != nil {
		s.writeError(w, he)
		return
	}
	re, ok := s.repl.takeReplica(req.ID)
	if !ok {
		s.writeError(w, &httpError{status: http.StatusNotFound, msg: "no replica of instance " + strconv.Quote(req.ID) + " on this backend"})
		return
	}
	e, evicted, err := s.reg.installExplicit(re.id, re.name, re.prepared, re.created, re.gen)
	if err != nil {
		s.repl.setReplica(re) // promotion failed; keep following
		s.writeError(w, &httpError{status: http.StatusConflict, msg: err.Error()})
		return
	}
	if s.store != nil {
		// Journal the takeover so a restart replays the instance. The
		// journalled state is the promoted generation's database; earlier
		// generations never existed on this backend.
		if err := s.store.LogRegister(e.id, e.name, e.created, re.prepared.DB(), re.prepared.Sigma()); err != nil {
			s.met.errors.Inc()
		}
	}
	for _, v := range evicted {
		s.met.evictions.Inc()
		s.cache.invalidate(v.id)
		s.repl.dropTail(v.id)
		if s.store != nil {
			if err := s.store.LogUnregister(v.id); err != nil {
				s.met.errors.Inc()
			}
		}
	}
	// Drop any stale cached results under this id from a previous
	// ownership period of this process.
	s.cache.invalidate(e.id)
	s.met.replPromotes.Inc()
	writeJSON(w, http.StatusOK, ReplPromoteResponse{ID: e.id, Gen: e.gen, Facts: re.prepared.DB().Len()})
}
