package server

import (
	"fmt"
	"sync"
	"testing"
)

func respFor(id string) QueryResponse {
	return QueryResponse{Instance: id, Query: "Ans()"}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	c.put(cacheKey("i1", "a"), respFor("i1"))
	c.put(cacheKey("i1", "b"), respFor("i1"))
	// Touch "a" so "b" is the eviction victim.
	if _, ok := c.get(cacheKey("i1", "a")); !ok {
		t.Fatal("a missing")
	}
	c.put(cacheKey("i1", "c"), respFor("i1"))
	if _, ok := c.get(cacheKey("i1", "b")); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get(cacheKey("i1", "a")); !ok {
		t.Fatal("a should have survived")
	}
	if _, ok := c.get(cacheKey("i1", "c")); !ok {
		t.Fatal("c should be present")
	}
}

func TestCacheMarksResponsesCached(t *testing.T) {
	c := newResultCache(4)
	c.put(cacheKey("i1", "a"), respFor("i1"))
	got, ok := c.get(cacheKey("i1", "a"))
	if !ok || !got.Cached {
		t.Fatalf("get = %+v, %v; want Cached=true", got, ok)
	}
}

func TestCacheInvalidateByInstance(t *testing.T) {
	c := newResultCache(8)
	c.put(cacheKey("i1", "a"), respFor("i1"))
	c.put(cacheKey("i2", "a"), respFor("i2"))
	c.put(cacheKey("i1", "b"), respFor("i1"))
	// "i1" must not match "i10": the key separator prevents it.
	c.put(cacheKey("i10", "a"), respFor("i10"))

	c.invalidate("i1")
	if _, ok := c.get(cacheKey("i1", "a")); ok {
		t.Fatal("i1/a should be gone")
	}
	if _, ok := c.get(cacheKey("i1", "b")); ok {
		t.Fatal("i1/b should be gone")
	}
	if _, ok := c.get(cacheKey("i2", "a")); !ok {
		t.Fatal("i2/a should survive")
	}
	if _, ok := c.get(cacheKey("i10", "a")); !ok {
		t.Fatal("i10/a should survive")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newResultCache(0)
	c.put(cacheKey("i1", "a"), respFor("i1"))
	if _, ok := c.get(cacheKey("i1", "a")); ok {
		t.Fatal("disabled cache must never hit")
	}
	if c.len() != 0 {
		t.Fatalf("len = %d", c.len())
	}
}

// deepResp builds a response with every nested reference a shallow
// struct copy would share: tuple slices and the Converged pointer.
func deepResp(id string) QueryResponse {
	conv := true
	return QueryResponse{
		Instance: id,
		Query:    "Ans(x)",
		Answers: []Answer{
			{Tuple: []string{"a", "b"}, Value: 0.5, Samples: 100, Converged: &conv},
			{Tuple: []string{"c"}, Value: 0.25},
		},
	}
}

// TestCacheIsolatesNestedState: the aliasing regression — a caller
// mutating the response it got back (or the response it put in) must
// never corrupt what the next hit sees.
func TestCacheIsolatesNestedState(t *testing.T) {
	c := newResultCache(4)
	k := cacheKey("i1", "q")
	orig := deepResp("i1")
	c.put(k, orig)
	// Mutating the put-input after the fact must not reach the cache.
	orig.Answers[0].Tuple[0] = "CORRUPT"
	*orig.Answers[0].Converged = false
	orig.Answers[1].Value = -1

	got, ok := c.get(k)
	if !ok {
		t.Fatal("miss")
	}
	if got.Answers[0].Tuple[0] != "a" || *got.Answers[0].Converged != true || got.Answers[1].Value != 0.25 {
		t.Fatalf("put-input mutation reached the cache: %+v", got.Answers)
	}
	// Mutating the get-result must not reach the next reader either.
	got.Answers[0].Tuple[1] = "CORRUPT"
	*got.Answers[0].Converged = false
	again, _ := c.get(k)
	if again.Answers[0].Tuple[1] != "b" || *again.Answers[0].Converged != true {
		t.Fatalf("get-result mutation reached the cache: %+v", again.Answers)
	}
}

// TestCacheConcurrentMutation: many goroutines mutate their own copies
// of the same cached entry while others re-read it — under -race this
// fails if get ever hands out shared slices or pointers.
func TestCacheConcurrentMutation(t *testing.T) {
	c := newResultCache(4)
	k := cacheKey("i1", "q")
	c.put(k, deepResp("i1"))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				got, ok := c.get(k)
				if !ok {
					t.Error("miss")
					return
				}
				// Scribble over everything a shallow copy would share.
				got.Answers[0].Tuple[0] = fmt.Sprint(g)
				*got.Answers[0].Converged = g%2 == 0
				got.Answers[1].Value = float64(g)
			}
		}(g)
	}
	wg.Wait()
	final, _ := c.get(k)
	if final.Answers[0].Tuple[0] != "a" || final.Answers[1].Value != 0.25 {
		t.Fatalf("concurrent mutations leaked into the cache: %+v", final.Answers)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := newResultCache(16)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				k := cacheKey("i1", fmt.Sprint(i%32))
				if i%2 == 0 {
					c.put(k, respFor("i1"))
				} else {
					c.get(k)
				}
				if i%50 == 0 {
					c.invalidate("i2")
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
