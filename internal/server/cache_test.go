package server

import (
	"fmt"
	"testing"
)

func respFor(id string) QueryResponse {
	return QueryResponse{Instance: id, Query: "Ans()"}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	c.put(cacheKey("i1", "a"), respFor("i1"))
	c.put(cacheKey("i1", "b"), respFor("i1"))
	// Touch "a" so "b" is the eviction victim.
	if _, ok := c.get(cacheKey("i1", "a")); !ok {
		t.Fatal("a missing")
	}
	c.put(cacheKey("i1", "c"), respFor("i1"))
	if _, ok := c.get(cacheKey("i1", "b")); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get(cacheKey("i1", "a")); !ok {
		t.Fatal("a should have survived")
	}
	if _, ok := c.get(cacheKey("i1", "c")); !ok {
		t.Fatal("c should be present")
	}
}

func TestCacheMarksResponsesCached(t *testing.T) {
	c := newResultCache(4)
	c.put(cacheKey("i1", "a"), respFor("i1"))
	got, ok := c.get(cacheKey("i1", "a"))
	if !ok || !got.Cached {
		t.Fatalf("get = %+v, %v; want Cached=true", got, ok)
	}
}

func TestCacheInvalidateByInstance(t *testing.T) {
	c := newResultCache(8)
	c.put(cacheKey("i1", "a"), respFor("i1"))
	c.put(cacheKey("i2", "a"), respFor("i2"))
	c.put(cacheKey("i1", "b"), respFor("i1"))
	// "i1" must not match "i10": the key separator prevents it.
	c.put(cacheKey("i10", "a"), respFor("i10"))

	c.invalidate("i1")
	if _, ok := c.get(cacheKey("i1", "a")); ok {
		t.Fatal("i1/a should be gone")
	}
	if _, ok := c.get(cacheKey("i1", "b")); ok {
		t.Fatal("i1/b should be gone")
	}
	if _, ok := c.get(cacheKey("i2", "a")); !ok {
		t.Fatal("i2/a should survive")
	}
	if _, ok := c.get(cacheKey("i10", "a")); !ok {
		t.Fatal("i10/a should survive")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newResultCache(0)
	c.put(cacheKey("i1", "a"), respFor("i1"))
	if _, ok := c.get(cacheKey("i1", "a")); ok {
		t.Fatal("disabled cache must never hit")
	}
	if c.len() != 0 {
		t.Fatalf("len = %d", c.len())
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := newResultCache(16)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				k := cacheKey("i1", fmt.Sprint(i%32))
				if i%2 == 0 {
					c.put(k, respFor("i1"))
				} else {
					c.get(k)
				}
				if i%50 == 0 {
					c.invalidate("i2")
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
