package server

import (
	"container/list"
	"strings"
	"sync"
	"sync/atomic"

	ocqa "repro"
)

// resultCache is a bounded LRU over finished query responses, keyed by
// the full identity of the computation — instance, generator,
// operation space, mode, query text, tuple, and every parameter that
// changes the answer (ε, δ, seed, sample cap, worker count, force
// flag, state budget). Every engine in the library is deterministic
// given that key, so a hit is exactly the response the engine would
// recompute.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	items map[string]*list.Element
	// evictions counts entries dropped by the capacity bound (not by
	// instance-scoped invalidation); the metrics registry reads it at
	// scrape time.
	evictions atomic.Int64
}

type cacheItem struct {
	key  string
	resp QueryResponse
	// req and gen are the normalized request and instance generation the
	// entry was computed for — recorded only by putQuery, and what lets
	// a mutation delta-refresh the entry (re-execute req against the new
	// generation) instead of merely dropping it. hasReq distinguishes
	// refreshable entries from plain puts.
	req    QueryRequest
	gen    int64
	hasReq bool
}

// newResultCache returns a cache holding at most capacity entries;
// capacity <= 0 disables caching (every lookup misses).
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// cacheKey joins the identity fields NUL-separated; the instance ID is
// first so invalidate can match by prefix.
func cacheKey(instanceID string, fields ...string) string {
	return instanceID + "\x00" + strings.Join(fields, "\x00")
}

// cloneResponse deep-copies the response's nested slices and pointers.
// A shallow struct copy is not enough: QueryResponse carries Answers
// whose Tuple slices and Converged pointers would otherwise be shared
// between the cache and every caller — one caller mutating its
// response (or the handler that later serialises it) would corrupt
// what every subsequent hit sees.
func cloneResponse(r QueryResponse) QueryResponse {
	if r.Answers != nil {
		answers := make([]Answer, len(r.Answers))
		for i, a := range r.Answers {
			if a.Tuple != nil {
				a.Tuple = append([]string(nil), a.Tuple...)
			}
			if a.Converged != nil {
				conv := *a.Converged
				a.Converged = &conv
			}
			answers[i] = a
		}
		r.Answers = answers
	}
	if r.Cost != nil {
		cost := *r.Cost
		if cost.PerWorkerDraws != nil {
			cost.PerWorkerDraws = append([]int64(nil), cost.PerWorkerDraws...)
		}
		r.Cost = &cost
	}
	if r.Explain != nil {
		// executeQuery strips Explain before the put (a trace is one
		// run's story, not the computation's identity), so entries never
		// carry one — but the clone stays safe if that ever changes.
		ex := *r.Explain
		ex.Spans = append([]ocqa.TraceSpan(nil), ex.Spans...)
		ex.Convergence = append([]ocqa.TraceCheckpoint(nil), ex.Convergence...)
		r.Explain = &ex
	}
	return r
}

// get returns a deep copy of the cached response, marked Cached —
// callers own their copy outright and may mutate it freely.
func (c *resultCache) get(key string) (QueryResponse, bool) {
	if c.cap <= 0 {
		return QueryResponse{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return QueryResponse{}, false
	}
	c.ll.MoveToFront(el)
	resp := cloneResponse(el.Value.(*cacheItem).resp)
	resp.Cached = true
	return resp, true
}

// put stores a deep copy of resp, so later mutations by the caller
// cannot reach the cached entry either.
func (c *resultCache) put(key string, resp QueryResponse) {
	c.putItem(&cacheItem{key: key, resp: resp})
}

// putQuery stores resp like put, additionally recording the normalized
// request and the instance generation it was computed for, which makes
// the entry delta-refreshable after a mutation (see takeRefreshable).
func (c *resultCache) putQuery(key string, gen int64, req QueryRequest, resp QueryResponse) {
	c.putItem(&cacheItem{key: key, resp: resp, req: req, gen: gen, hasReq: true})
}

func (c *resultCache) putItem(it *cacheItem) {
	if c.cap <= 0 {
		return
	}
	it.resp = cloneResponse(it.resp)
	it.resp.Cached = false
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[it.key]; ok {
		c.ll.MoveToFront(el)
		*el.Value.(*cacheItem) = *it
		return
	}
	c.items[it.key] = c.ll.PushFront(it)
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheItem).key)
		c.evictions.Add(1)
	}
}

// invalidate drops every entry belonging to the instance (called when
// the instance is deregistered).
func (c *resultCache) invalidate(instanceID string) {
	c.takeRefreshable(instanceID, 0, 0)
}

// takeRefreshable drops every entry belonging to the instance — exactly
// what invalidate does — and additionally returns the normalized
// requests of up to limit dropped entries whose generation predates
// beforeGen, most recently used first. A mutation uses the returned
// requests to re-execute (and re-cache, under the new generation's key)
// the instance's hottest cached computations, so churned instances keep
// answering warm instead of taking a full cold miss per entry.
func (c *resultCache) takeRefreshable(instanceID string, beforeGen int64, limit int) []QueryRequest {
	c.mu.Lock()
	defer c.mu.Unlock()
	prefix := instanceID + "\x00"
	var reqs []QueryRequest
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if it := el.Value.(*cacheItem); strings.HasPrefix(it.key, prefix) {
			if it.hasReq && it.gen < beforeGen && len(reqs) < limit {
				reqs = append(reqs, it.req)
			}
			c.ll.Remove(el)
			delete(c.items, it.key)
		}
		el = next
	}
	return reqs
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// evicted returns the number of capacity evictions performed.
func (c *resultCache) evicted() int64 {
	return c.evictions.Load()
}
