package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/engine"
)

// Request tracing: every request gets an id (propagated from the
// client's X-Request-Id when it sends a plausible one, minted
// otherwise), echoed on the response header and in error bodies, and —
// when an access logger is configured — emitted in one structured line
// per request together with what the handler learned about the work
// (instance, generator, draws, cache disposition). The same wrapper
// feeds the per-endpoint request/latency metrics.

// reqInfoKey keys the per-request trace record in the context.
type reqInfoKey struct{}

// reqInfo is the mutable per-request trace record. Handlers fill the
// fields they learn; ServeHTTP reads them after the handler returns.
// The fields are atomics because batch elements update the record from
// pool workers concurrently.
type reqInfo struct {
	id        string
	instance  atomic.Value // string
	generator atomic.Value // string
	mode      atomic.Value // string
	draws     atomic.Int64
	cacheHit  atomic.Int64
	cacheMiss atomic.Int64
	// trace is the request-wide engine trace, armed by ServeHTTP before
	// the handler runs when the flight recorder or the slow-query log
	// needs one (nil otherwise — the engine's trace hooks are then
	// no-ops). Written once before the handler, read after it returns;
	// the Trace itself is internally mutex-guarded, so batch workers
	// recording into it concurrently are safe.
	trace *engine.Trace
}

func (ri *reqInfo) str(v *atomic.Value) string {
	if s, ok := v.Load().(string); ok {
		return s
	}
	return ""
}

// infoFrom returns the request's trace record, or nil outside
// ServeHTTP (direct executeQuery calls in tests).
func infoFrom(ctx context.Context) *reqInfo {
	ri, _ := ctx.Value(reqInfoKey{}).(*reqInfo)
	return ri
}

// maxRequestIDLen bounds a propagated id: anything longer (or with
// exotic characters) is replaced, so logs and headers stay clean.
const maxRequestIDLen = 64

func validRequestID(id string) bool {
	if id == "" || len(id) > maxRequestIDLen {
		return false
	}
	for _, r := range id {
		ok := r == '-' || r == '_' || r == '.' ||
			(r >= '0' && r <= '9') || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !ok {
			return false
		}
	}
	return true
}

// newRequestID mints a 16-hex-character id from crypto/rand.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; degrade to
		// a constant rather than take the server down over a log id.
		return "rid-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// statusWriter captures the response status for metrics and logs.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// endpointLabel classifies a request into a fixed, low-cardinality
// endpoint name for metric labels. Hand-written because the repo
// builds with Go 1.22, which has no http.Request.Pattern.
func endpointLabel(method, path string) string {
	switch path {
	case "/healthz":
		return "healthz"
	case "/varz":
		return "varz"
	case "/metrics":
		return "metrics"
	}
	if path == "/debug/queries" {
		return "debug_queries"
	}
	if strings.HasPrefix(path, "/debug/pprof") {
		return "pprof"
	}
	if strings.HasPrefix(path, "/v1/replication") {
		return "replication"
	}
	rest, ok := strings.CutPrefix(path, "/v1/instances")
	if !ok {
		return "other"
	}
	rest = strings.TrimPrefix(rest, "/")
	parts := strings.Split(rest, "/")
	switch {
	case rest == "":
		if method == http.MethodPost {
			return "register"
		}
		return "list"
	case len(parts) == 1:
		if method == http.MethodDelete {
			return "delete"
		}
		return "info"
	case parts[1] == "facts":
		if method == http.MethodDelete {
			return "delete_fact"
		}
		return "insert_fact"
	case parts[1] == "query":
		return "query"
	case parts[1] == "watch":
		return "watch"
	case parts[1] == "batch":
		return "batch"
	case parts[1] == "repairs":
		return "count"
	case parts[1] == "marginals":
		return "marginals"
	case parts[1] == "semantics":
		return "semantics"
	}
	return "other"
}

// shedEndpoint reports whether an endpoint is eligible for load
// shedding. Only the read/query path sheds: a shed query is a clean
// retry for the caller, while a shed mutation or replication pull
// would cost durability, and control endpoints (healthz, varz,
// metrics) must answer precisely when the server is saturated.
func shedEndpoint(ep string) bool {
	switch ep {
	case "query", "batch", "count", "marginals", "semantics":
		return true
	}
	return false
}

// ServeHTTP implements http.Handler: the tracing and metrics wrapper
// around the route mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	id := r.Header.Get("X-Request-Id")
	if !validRequestID(id) {
		id = newRequestID()
	}
	// Set on the response before the handler runs, so error paths (and
	// clients of streaming responses) always see it.
	w.Header().Set("X-Request-Id", id)
	ri := &reqInfo{id: id}
	ep := endpointLabel(r.Method, r.URL.Path)
	// Load shedding: once the inflight gate trips, query-path requests
	// get an immediate 503 instead of queueing behind the compute
	// semaphore into a timeout. Mutations, replication and control
	// endpoints pass — see Options.ShedInflight.
	if cap := int64(s.opts.ShedInflight); cap > 0 {
		n := s.inflight.Add(1)
		defer s.inflight.Add(-1)
		if n > cap && shedEndpoint(ep) {
			s.met.shedRequests.Inc()
			s.met.httpRequests.With(ep, strconv.Itoa(http.StatusServiceUnavailable)).Inc()
			w.Header().Set("X-Request-Id", id)
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{
				Error:     "server is at its inflight capacity; retry against another backend",
				RequestID: id,
			})
			return
		}
	}
	// Arm the request-wide trace only when something will read it: the
	// flight recorder rings or the slow-query log. Everywhere else the
	// engine sees a nil trace and its hooks cost nothing.
	if (s.flight != nil || s.opts.SlowQuery > 0) && flightEndpoint(ep) {
		ri.trace = engine.NewTrace()
	}
	r = r.WithContext(context.WithValue(r.Context(), reqInfoKey{}, ri))
	sw := &statusWriter{ResponseWriter: w}

	s.mux.ServeHTTP(sw, r)

	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	elapsed := time.Since(start)
	s.met.httpRequests.With(ep, strconv.Itoa(sw.status)).Inc()
	s.met.httpLatency.With(ep).Observe(elapsed.Seconds())

	if ri.trace != nil {
		rec := flightRecord{
			RequestID:       id,
			Endpoint:        ep,
			Method:          r.Method,
			Path:            r.URL.Path,
			Status:          sw.status,
			Start:           start,
			DurationSeconds: elapsed.Seconds(),
			Instance:        ri.str(&ri.instance),
			Generator:       ri.str(&ri.generator),
			Mode:            ri.str(&ri.mode),
			Draws:           ri.draws.Load(),
			CacheHits:       ri.cacheHit.Load(),
			CacheMisses:     ri.cacheMiss.Load(),
			Spans:           ri.trace.Spans(),
			Convergence:     ri.trace.Curve(),
		}
		if s.flight != nil {
			s.flight.record(rec)
		}
		if s.opts.SlowQuery > 0 && elapsed >= s.opts.SlowQuery {
			s.slowQueryLog(r.Context(), rec)
		}
	}

	if log := s.opts.AccessLog; log != nil {
		attrs := []slog.Attr{
			slog.String("request_id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("endpoint", ep),
			slog.Int("status", sw.status),
			slog.Duration("duration", elapsed),
		}
		if inst := ri.str(&ri.instance); inst != "" {
			attrs = append(attrs, slog.String("instance", inst))
		}
		if gen := ri.str(&ri.generator); gen != "" {
			attrs = append(attrs, slog.String("generator", gen))
		}
		if mode := ri.str(&ri.mode); mode != "" {
			attrs = append(attrs, slog.String("mode", mode))
		}
		if d := ri.draws.Load(); d > 0 {
			attrs = append(attrs, slog.Int64("draws", d))
		}
		if h, m := ri.cacheHit.Load(), ri.cacheMiss.Load(); h+m > 0 {
			attrs = append(attrs, slog.Int64("cache_hits", h), slog.Int64("cache_misses", m))
		}
		log.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
	}
}

// slowQueryLog emits one structured warning for a request at or above
// the slow-query threshold, carrying the full trace: per-phase span
// durations and the convergence curve's terminal shape. The access
// logger receives it when configured, slog's default logger otherwise,
// so enabling -slow-query alone still produces output.
func (s *Server) slowQueryLog(ctx context.Context, rec flightRecord) {
	log := s.opts.AccessLog
	if log == nil {
		log = slog.Default()
	}
	attrs := []slog.Attr{
		slog.String("request_id", rec.RequestID),
		slog.String("endpoint", rec.Endpoint),
		slog.Int("status", rec.Status),
		slog.Float64("duration_seconds", rec.DurationSeconds),
		slog.Duration("threshold", s.opts.SlowQuery),
	}
	if rec.Instance != "" {
		attrs = append(attrs, slog.String("instance", rec.Instance))
	}
	if rec.Generator != "" {
		attrs = append(attrs, slog.String("generator", rec.Generator))
	}
	if rec.Mode != "" {
		attrs = append(attrs, slog.String("mode", rec.Mode))
	}
	if rec.Draws > 0 {
		attrs = append(attrs, slog.Int64("draws", rec.Draws))
	}
	spans := make([]slog.Attr, 0, len(rec.Spans))
	for _, sp := range rec.Spans {
		spans = append(spans, slog.Duration(sp.Name, time.Duration(sp.EndNanos-sp.StartNanos)))
	}
	if len(spans) > 0 {
		attrs = append(attrs, slog.Attr{Key: "spans", Value: slog.GroupValue(spans...)})
	}
	if n := len(rec.Convergence); n > 0 {
		last := rec.Convergence[n-1]
		attrs = append(attrs, slog.Group("convergence",
			slog.Int("checkpoints", n),
			slog.Int64("final_draws", last.Draws),
			slog.Float64("final_value", last.Value),
			slog.Float64("final_half_width", last.HalfWidth),
		))
	}
	log.LogAttrs(ctx, slog.LevelWarn, "slow query", attrs...)
}
