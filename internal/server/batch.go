package server

import (
	"context"
	"net/http"
	"sync"
)

// handleBatch fans a list of queries out over the server's bounded
// worker pool and returns the results in request order. Each element
// runs the exact same path as the query endpoint — the result cache
// and the approximability refusals included — so worker scheduling
// cannot change a result: every engine is deterministic in the
// request's seed and the results array is indexed by request
// position. The one deliberate difference from issuing queries
// individually is the deadline: the whole batch shares a single
// QueryTimeout budget (so abandoned work stays bounded by the pool),
// which means elements of a very slow batch can 504 where standalone
// queries would have succeeded.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req BatchRequest
	if he := s.decodeJSON(w, r, &req); he != nil {
		s.writeError(w, he)
		return
	}
	if len(req.Queries) == 0 {
		s.writeError(w, badRequest("empty batch: \"queries\" must contain at least one query"))
		return
	}
	if len(req.Queries) > s.opts.MaxBatchQueries {
		s.writeError(w, badRequest("batch of %d queries exceeds the limit of %d", len(req.Queries), s.opts.MaxBatchQueries))
		return
	}
	s.met.batchRequests.Inc()
	// ?explain=1 on the batch endpoint applies to every element: each
	// executeQuery call builds its own plan and (absent a request-wide
	// recorder trace) its own per-element trace inside the worker.
	explain := explainRequested(r)

	// The whole batch shares one deadline budget: once it expires (or
	// the client disconnects), runWithDeadline stops spawning work for
	// the remaining elements, so abandoned computations never exceed
	// the worker pool size.
	ctx := r.Context()
	if s.opts.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.QueryTimeout)
		defer cancel()
	}

	results := make([]BatchResult, len(req.Queries))
	jobs := make(chan int)
	// Options.fill clamps BatchWorkers to ≥ 1, and the clamp below
	// re-asserts it: spawning zero workers would leave the jobs sends
	// blocking forever (the zero-worker batch deadlock).
	workers := min(s.opts.BatchWorkers, len(req.Queries))
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				resp, he := runWithDeadline(s, ctx, func(qctx context.Context) (QueryResponse, *httpError) {
					return s.executeQuery(qctx, e, req.Queries[i], explain)
				})
				if he != nil {
					s.recordFailure(he)
					results[i] = BatchResult{Index: i, Status: he.status, Error: he.msg}
					continue
				}
				results[i] = BatchResult{Index: i, Status: http.StatusOK, Result: &resp}
			}
		}()
	}
	for i := range req.Queries {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	writeJSON(w, http.StatusOK, BatchResponse{Results: results})
}
