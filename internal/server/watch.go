package server

// Long-poll change notification and post-mutation cache refresh: the
// serving half of the delta-aware estimation layer. Every committed
// fact mutation (1) re-executes the instance's hottest cached queries
// against the new generation — riding the prepared instance's warm
// per-block factor cache and stratified draw statistics — and re-caches
// them under the new generation's keys, and (2) wakes the instance's
// watchers, so a GET .../watch long-poll returns the refreshed answer
// within one mutation of it landing.

import (
	"context"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// watchHub is the per-instance mutation broadcast: waiters pick up the
// instance's current signal channel, and a mutation closes it (waking
// every waiter at once) and installs a fresh one. Close-and-recreate
// keeps the hub allocation-free per waiter and naturally coalesces
// bursts — a waiter that missed three mutations wakes once. Entries are
// refcounted: the map entry for a never-mutated instance disappears as
// soon as its last waiter times out or disconnects, instead of living
// until a mutation that may never come.
type watchHub struct {
	mu    sync.Mutex
	chans map[string]*watchEntry
}

type watchEntry struct {
	ch   chan struct{}
	refs int
}

func newWatchHub() *watchHub {
	return &watchHub{chans: make(map[string]*watchEntry)}
}

// wait returns the channel the instance's next mutation will close,
// plus a release func the caller must invoke once it is done with the
// channel (closed or not) so the hub can drop waiter-less entries.
// Callers must obtain the channel BEFORE reading the state they wait
// on (the entry's generation): a mutation landing between the two
// closes this very channel, so the recheck cannot miss it.
func (h *watchHub) wait(id string) (<-chan struct{}, func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	e, ok := h.chans[id]
	if !ok {
		e = &watchEntry{ch: make(chan struct{})}
		h.chans[id] = e
	}
	e.refs++
	released := false
	release := func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if released {
			return
		}
		released = true
		e.refs--
		// Delete only if the map still holds THIS entry: changed() may
		// have already removed it and a later waiter installed a fresh
		// one under the same id.
		if e.refs == 0 && h.chans[id] == e {
			delete(h.chans, id)
		}
	}
	return e.ch, release
}

// changed wakes every waiter of the instance (mutation committed or
// instance deleted).
func (h *watchHub) changed(id string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if e, ok := h.chans[id]; ok {
		close(e.ch)
		delete(h.chans, id)
	}
}

// size reports how many instances currently have live waiters; it must
// return to zero once every watcher has disconnected or timed out.
func (h *watchHub) size() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.chans)
}

// refreshAfterMutation is the serving-path half of a committed fact
// mutation: delta-refresh up to DeltaRefreshLimit of the instance's
// most-recently-used cached query results in place (re-executed against
// the new generation, re-cached under its keys), drop the rest, and
// wake the instance's watchers. It runs on the mutation handler's
// goroutine, which already holds a compute-semaphore slot, so refresh
// work is bounded exactly like any other engine computation. A refresh
// that fails (deadline, budget, refusal) is simply dropped — the entry
// falls back to a cold miss, never to a stale answer.
func (s *Server) refreshAfterMutation(e *instanceEntry) {
	reqs := s.cache.takeRefreshable(e.id, e.gen, s.opts.DeltaRefreshLimit)
	for _, req := range reqs {
		// Refreshes run on the server's own authority, not a client
		// request, so they derive from the lifecycle context: Close()
		// cancels in-flight refresh computations and skips queued ones,
		// instead of holding graceful shutdown hostage for up to
		// DeltaRefreshLimit engine runs.
		if s.lifecycle.Err() != nil {
			break
		}
		start := time.Now()
		ctx := s.lifecycle
		cancel := context.CancelFunc(func() {})
		if s.opts.QueryTimeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, s.opts.QueryTimeout)
		}
		_, he := safeCall(func() (QueryResponse, *httpError) {
			return s.executeQuery(ctx, e, req, false)
		})
		cancel()
		if he == nil {
			s.met.cacheRefreshes.Inc()
			s.met.deltaRefreshLatency.Observe(time.Since(start).Seconds())
		}
	}
	s.watch.changed(e.id)
}

// watchParam reads one URL query parameter as the named type, mapping
// malformed values to a 400 naming the parameter.
func watchInt(r *http.Request, name string, out *int) *httpError {
	v := r.URL.Query().Get(name)
	if v == "" {
		return nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return badRequest("parameter %q: %q is not an integer", name, v)
	}
	*out = n
	return nil
}

func watchInt64(r *http.Request, name string, out *int64) *httpError {
	v := r.URL.Query().Get(name)
	if v == "" {
		return nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return badRequest("parameter %q: %q is not an integer", name, v)
	}
	*out = n
	return nil
}

func watchFloat(r *http.Request, name string, out *float64) *httpError {
	v := r.URL.Query().Get(name)
	if v == "" {
		return nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return badRequest("parameter %q: %q is not a number", name, v)
	}
	*out = f
	return nil
}

func watchBool(r *http.Request, name string) bool {
	switch r.URL.Query().Get(name) {
	case "1", "true", "yes":
		return true
	}
	return false
}

// parseWatchRequest maps the GET parameters onto the same QueryRequest
// the POST query endpoint takes (a long-poll has no body), plus the
// ?since= generation the client has already seen.
func parseWatchRequest(r *http.Request) (QueryRequest, int64, *httpError) {
	q := r.URL.Query()
	req := QueryRequest{
		Generator: q.Get("generator"),
		Singleton: watchBool(r, "singleton"),
		Mode:      q.Get("mode"),
		Query:     q.Get("query"),
		Tuple:     q.Get("tuple"),
		HasTuple:  watchBool(r, "has_tuple"),
		Force:     watchBool(r, "force"),
	}
	if req.Mode == "" {
		req.Mode = "exact"
	}
	if req.Query == "" {
		return req, 0, badRequest("missing required parameter \"query\"")
	}
	var since int64
	for _, he := range []*httpError{
		watchFloat(r, "epsilon", &req.Epsilon),
		watchFloat(r, "delta", &req.Delta),
		watchInt64(r, "seed", &req.Seed),
		watchInt(r, "max_samples", &req.MaxSamples),
		watchInt(r, "workers", &req.Workers),
		watchInt(r, "limit", &req.Limit),
		watchInt64(r, "since", &since),
	} {
		if he != nil {
			return req, 0, he
		}
	}
	return req, since, nil
}

// handleWatch is the long-poll endpoint: GET .../watch?query=...&since=N
// answers as soon as the instance's generation exceeds N — immediately
// when it already does (since defaults to 0 and generations start at 1,
// so the first call returns the current answer), otherwise when the
// next mutation lands — with the refreshed query result and the
// generation it reflects. The client loops, passing each response's gen
// back as since. A window with no mutation answers 204 No Content; the
// client simply re-polls.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	req, since, he := parseWatchRequest(r)
	if he != nil {
		s.writeError(w, he)
		return
	}
	deadline := time.Now().Add(s.opts.WatchWait)
	for {
		// Channel before generation: see watchHub.wait.
		changed, release := s.watch.wait(e.id)
		cur, ok := s.reg.get(e.id)
		if !ok {
			release()
			s.writeError(w, &httpError{status: http.StatusNotFound, msg: "instance " + strconv.Quote(e.id) + " deleted while watching"})
			return
		}
		if cur.gen > since {
			release()
			resp, he := runWithDeadline(s, r.Context(), func(ctx context.Context) (QueryResponse, *httpError) {
				return s.executeQuery(ctx, cur, req, false)
			})
			if he != nil {
				s.writeError(w, he)
				return
			}
			writeJSON(w, http.StatusOK, WatchResponse{Gen: cur.gen, Result: &resp})
			return
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			release()
			w.WriteHeader(http.StatusNoContent)
			return
		}
		t := time.NewTimer(remaining)
		select {
		case <-changed:
			t.Stop()
			release()
		case <-r.Context().Done():
			t.Stop()
			release()
			return
		case <-s.lifecycle.Done():
			t.Stop()
			release()
			w.WriteHeader(http.StatusNoContent)
			return
		case <-t.C:
			release()
			w.WriteHeader(http.StatusNoContent)
			return
		}
	}
}
