package server

// Tests for the observability layer: per-query cost accounting
// (including the partial accounting of deadline-cancelled runs),
// the Prometheus exposition of /metrics, request-id tracing, the
// result-cache and coverage counters, and the pprof gate.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
)

// bigBlockFacts builds an instance large enough that a capped
// Monte-Carlo estimation takes far longer than a short server
// deadline: `blocks` two-fact key blocks.
func bigBlockFacts(blocks int) string {
	var sb strings.Builder
	for i := 0; i < blocks; i++ {
		fmt.Fprintf(&sb, "R(k%d,va%d)\nR(k%d,vb%d)\n", i, i, i, i)
	}
	return sb.String()
}

// TestCancellationAccounting is the deadline e2e: a query that cannot
// finish inside the server deadline must come back 504 carrying the
// partial estimate, the draws already spent, the Cancelled mark and
// the request id — and the engine's cancelled-run counter must move.
func TestCancellationAccounting(t *testing.T) {
	ts, _ := newTestServer(t, Options{
		QueryTimeout: 25 * time.Millisecond,
		CacheSize:    -1,
	})
	reg := register(t, ts.URL, bigBlockFacts(300), "R: A1 -> A2\n")

	cancelledBefore := engine.CancelledRuns()
	body, _ := jsonBody(t, QueryRequest{
		Generator: "ur", Mode: "approx",
		Query: "Ans() :- R(k1, 'va1')",
		// Tight (ε, δ) so the stopping rule needs millions of draws —
		// far beyond what 25ms allows on a 600-fact instance.
		Epsilon: 0.005, Delta: 0.01, Seed: 3, MaxSamples: 5_000_000,
	})
	resp, err := http.Post(ts.URL+"/v1/instances/"+reg.ID+"/query", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.RequestID == "" || er.RequestID != resp.Header.Get("X-Request-Id") {
		t.Errorf("error body request_id %q does not echo header %q", er.RequestID, resp.Header.Get("X-Request-Id"))
	}
	if er.Cost == nil {
		t.Fatalf("504 body carries no cost: %+v", er)
	}
	if er.Cost.Draws == 0 {
		t.Error("cancelled run reported zero draws — the partial accounting was lost")
	}
	if !er.Cost.Cancelled {
		t.Error("cancelled run's cost not marked Cancelled")
	}
	if len(er.Partial) != 1 || er.Partial[0].Samples == 0 {
		t.Errorf("504 body carries no usable partial estimate: %+v", er.Partial)
	}
	if d := engine.CancelledRuns() - cancelledBefore; d < 1 {
		t.Errorf("engine cancelled-run counter moved by %d, want >= 1", d)
	}
}

// jsonBody marshals v for http.Post.
func jsonBody(t *testing.T, v any) (io.Reader, []byte) {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b), b
}

// TestEveryResponseEmbedsCost pins the acceptance criterion that
// query, count and marginals responses all carry a cost object —
// exact (zero draws), approx (engine accounting) and cached
// (Cached=true) alike.
func TestEveryResponseEmbedsCost(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	reg := register(t, ts.URL, pkFacts, pkFDs)
	base := ts.URL + "/v1/instances/" + reg.ID

	var exact QueryResponse
	req := QueryRequest{Generator: "ur", Mode: "exact", Query: "Ans(n) :- Emp(i, n)"}
	if st := do(t, http.MethodPost, base+"/query", req, &exact); st != http.StatusOK {
		t.Fatalf("exact query: status %d", st)
	}
	if exact.Cost == nil || exact.Cost.Draws != 0 || exact.Cost.Cached {
		t.Errorf("exact cost = %+v, want non-nil with zero draws, not cached", exact.Cost)
	}

	var cached QueryResponse
	if st := do(t, http.MethodPost, base+"/query", req, &cached); st != http.StatusOK {
		t.Fatalf("cached query: status %d", st)
	}
	if cached.Cost == nil || !cached.Cost.Cached {
		t.Errorf("cache-hit cost = %+v, want Cached=true", cached.Cost)
	}

	var approx QueryResponse
	areq := QueryRequest{Generator: "ur", Mode: "approx", Query: "Ans(n) :- Emp(i, n)", Tuple: "Alice", Seed: 5}
	if st := do(t, http.MethodPost, base+"/query", areq, &approx); st != http.StatusOK {
		t.Fatalf("approx query: status %d", st)
	}
	if approx.Cost == nil || approx.Cost.Draws == 0 || approx.Cost.Workers < 1 {
		t.Errorf("approx cost = %+v, want non-nil with draws and workers", approx.Cost)
	}

	var count CountResponse
	if st := do(t, http.MethodPost, base+"/repairs/count", CountRequest{}, &count); st != http.StatusOK {
		t.Fatalf("count: status %d", st)
	}
	if count.Cost == nil {
		t.Error("count response carries no cost")
	}

	var marg MarginalsResponse
	mreq := MarginalsRequest{Generator: "ur", Mode: "approx", Seed: 5, MaxSamples: 2000}
	if st := do(t, http.MethodPost, base+"/marginals", mreq, &marg); st != http.StatusOK {
		t.Fatalf("marginals: status %d", st)
	}
	if marg.Cost == nil || marg.Cost.Draws == 0 {
		t.Errorf("approx marginals cost = %+v, want non-nil with draws", marg.Cost)
	}
}

var promNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// promSample is one parsed exposition line.
type promSample struct {
	name   string
	labels string
	value  float64
}

func parsePromLine(t *testing.T, line string) promSample {
	t.Helper()
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		t.Fatalf("no value separator in %q", line)
	}
	v, err := strconv.ParseFloat(line[sp+1:], 64)
	if err != nil {
		t.Fatalf("unparseable value in %q: %v", line, err)
	}
	id := line[:sp]
	name, labels := id, ""
	if br := strings.IndexByte(id, '{'); br >= 0 {
		name, labels = id[:br], id[br:]
		if !strings.HasSuffix(labels, "}") {
			t.Fatalf("unterminated label set in %q", line)
		}
	}
	if !promNameRe.MatchString(name) {
		t.Fatalf("invalid metric name in %q", line)
	}
	return promSample{name: name, labels: labels, value: v}
}

// TestMetricsPrometheusExposition drives mixed load at the server and
// lints the /metrics output: valid names, HELP/TYPE before samples,
// histogram buckets cumulative with +Inf == _count. This is the
// metrics-lint CI job's in-process core.
func TestMetricsPrometheusExposition(t *testing.T) {
	ts, _ := newTestServer(t, Options{CacheSize: 4})
	reg := register(t, ts.URL, pkFacts, pkFDs)
	base := ts.URL + "/v1/instances/" + reg.ID

	// Load: exact, cached repeat, approx, batch, marginals, count, a
	// refusal (general FDs, M^ur has no FPRAS), a 404 and a bad body.
	regFD := register(t, ts.URL, fdFacts, fdFDs)
	exact := QueryRequest{Generator: "ur", Mode: "exact", Query: "Ans(n) :- Emp(i, n)"}
	var qr QueryResponse
	do(t, http.MethodPost, base+"/query", exact, &qr)
	do(t, http.MethodPost, base+"/query", exact, &qr)
	do(t, http.MethodPost, base+"/query", QueryRequest{Generator: "ur", Mode: "approx", Query: "Ans(n) :- Emp(i, n)", Seed: 2}, &qr)
	do(t, http.MethodPost, base+"/batch", BatchRequest{Queries: []QueryRequest{exact, exact}}, nil)
	do(t, http.MethodPost, base+"/marginals", MarginalsRequest{Generator: "ur", Mode: "approx", Seed: 2, MaxSamples: 1000}, nil)
	do(t, http.MethodPost, base+"/repairs/count", CountRequest{}, nil)
	do(t, http.MethodPost, ts.URL+"/v1/instances/"+regFD.ID+"/query",
		QueryRequest{Generator: "ur", Mode: "approx", Query: "Ans(x) :- R(i, x, p)"}, nil)
	do(t, http.MethodPost, ts.URL+"/v1/instances/nope/query", exact, nil)
	http.Post(base+"/query", "application/json", strings.NewReader("{broken"))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q, want Prometheus text format 0.0.4", ct)
	}

	helped := map[string]bool{}
	typed := map[string]string{}
	var samples []promSample
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if f, ok := strings.CutPrefix(line, "# HELP "); ok {
			helped[strings.SplitN(f, " ", 2)[0]] = true
			continue
		}
		if f, ok := strings.CutPrefix(line, "# TYPE "); ok {
			parts := strings.SplitN(f, " ", 2)
			if len(parts) != 2 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			typed[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		samples = append(samples, parsePromLine(t, line))
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no samples in /metrics output")
	}

	// Every sample's family must be declared; histogram families export
	// under _bucket/_sum/_count suffixes.
	family := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name && typed[base] == "histogram" {
				return base
			}
		}
		return name
	}
	for _, s := range samples {
		f := family(s.name)
		if !helped[f] || typed[f] == "" {
			t.Errorf("sample %s has no # HELP/# TYPE for family %s", s.name, f)
		}
	}

	// Key families must be present and typed correctly.
	for fam, typ := range map[string]string{
		"ocqa_queries_served_total":          "counter",
		"ocqa_http_requests_total":           "counter",
		"ocqa_http_request_duration_seconds": "histogram",
		"ocqa_engine_run_draws":              "histogram",
		"ocqa_result_cache_hits_total":       "counter",
		"ocqa_engine_samples_drawn_total":    "counter",
		"ocqa_instance_estimation_runs":      "gauge",
		"ocqa_uptime_seconds":                "gauge",
	} {
		if typed[fam] != typ {
			t.Errorf("family %s: type %q, want %q", fam, typed[fam], typ)
		}
	}

	// Histogram linting: per (family, base label set), bucket counts
	// must be cumulative in le and the +Inf bucket must equal _count.
	leRe := regexp.MustCompile(`le="([^"]*)"`)
	type histKey struct{ name, labels string }
	buckets := map[histKey][]struct {
		le string
		v  float64
	}{}
	counts := map[histKey]float64{}
	for _, s := range samples {
		if strings.HasSuffix(s.name, "_bucket") {
			m := leRe.FindStringSubmatch(s.labels)
			if m == nil {
				t.Fatalf("bucket sample without le label: %s%s", s.name, s.labels)
			}
			stripped := strings.Trim(leRe.ReplaceAllString(s.labels, ""), "{,}")
			k := histKey{strings.TrimSuffix(s.name, "_bucket"), stripped}
			buckets[k] = append(buckets[k], struct {
				le string
				v  float64
			}{m[1], s.value})
		}
		if strings.HasSuffix(s.name, "_count") {
			k := histKey{strings.TrimSuffix(s.name, "_count"), strings.Trim(s.labels, "{,}")}
			counts[k] = s.value
		}
	}
	parseLE := func(s string) float64 {
		if s == "+Inf" {
			return float64(1 << 62)
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("unparseable le %q", s)
		}
		return v
	}
	for k, bs := range buckets {
		sort.Slice(bs, func(i, j int) bool { return parseLE(bs[i].le) < parseLE(bs[j].le) })
		for i := 1; i < len(bs); i++ {
			if bs[i].v < bs[i-1].v {
				t.Errorf("%s%s: bucket le=%s count %v below le=%s count %v — not cumulative",
					k.name, k.labels, bs[i].le, bs[i].v, bs[i-1].le, bs[i-1].v)
			}
		}
		last := bs[len(bs)-1]
		if last.le != "+Inf" {
			t.Errorf("%s%s: last bucket le=%s, want +Inf", k.name, k.labels, last.le)
		}
		if c, ok := counts[k]; !ok || last.v != c {
			t.Errorf("%s%s: +Inf bucket %v != _count %v", k.name, k.labels, last.v, c)
		}
	}
}

// TestRequestIDTracing covers the id lifecycle: a valid client id is
// propagated, an invalid one replaced, a missing one minted, and the
// access log carries the id and endpoint.
func TestRequestIDTracing(t *testing.T) {
	var logBuf bytes.Buffer
	ts, _ := newTestServer(t, Options{
		AccessLog: slog.New(slog.NewTextHandler(&logBuf, nil)),
	})
	reg := register(t, ts.URL, pkFacts, pkFDs)

	get := func(id string) *http.Response {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
		if err != nil {
			t.Fatal(err)
		}
		if id != "" {
			req.Header.Set("X-Request-Id", id)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if got := get("trace-me.123").Header.Get("X-Request-Id"); got != "trace-me.123" {
		t.Errorf("valid client id not propagated: got %q", got)
	}
	if got := get("has spaces!").Header.Get("X-Request-Id"); got == "has spaces!" || got == "" {
		t.Errorf("invalid client id not replaced: got %q", got)
	}
	minted := get("").Header.Get("X-Request-Id")
	if len(minted) != 16 {
		t.Errorf("minted id %q, want 16 hex chars", minted)
	}

	// An error body echoes the id.
	resp, err := http.Post(ts.URL+"/v1/instances/ghost/query", "application/json",
		strings.NewReader(`{"generator":"ur","mode":"exact","query":"Ans(n) :- Emp(i, n)"}`))
	if err != nil {
		t.Fatal(err)
	}
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if er.RequestID == "" || er.RequestID != resp.Header.Get("X-Request-Id") {
		t.Errorf("404 body request_id %q vs header %q", er.RequestID, resp.Header.Get("X-Request-Id"))
	}

	// A query lands in the access log with its id, endpoint and
	// instance.
	logBuf.Reset()
	var qr QueryResponse
	do(t, http.MethodPost, ts.URL+"/v1/instances/"+reg.ID+"/query",
		QueryRequest{Generator: "ur", Mode: "exact", Query: "Ans(n) :- Emp(i, n)"}, &qr)
	line := logBuf.String()
	for _, want := range []string{"request_id=", "endpoint=query", "instance=" + reg.ID, "status=200"} {
		if !strings.Contains(line, want) {
			t.Errorf("access log line missing %q: %s", want, line)
		}
	}
}

// TestCacheAndEvictionMetrics pins the result-cache counters across
// the generation-keyed lifecycle: miss, hit, capacity eviction — in
// the typed registry and on /varz.
func TestCacheAndEvictionMetrics(t *testing.T) {
	// Delta refresh disabled: the post-mutation re-query below must be a
	// genuine miss (refresh would re-execute the dropped entries itself,
	// recording its own misses and turning the re-query into a hit).
	ts, srv := newTestServer(t, Options{CacheSize: 2, DeltaRefreshLimit: -1})
	reg := register(t, ts.URL, pkFacts, pkFDs)
	base := ts.URL + "/v1/instances/" + reg.ID

	q := func(name string) QueryRequest {
		return QueryRequest{Generator: "ur", Mode: "exact", Query: "Ans(n) :- Emp(i, n)", Tuple: name, HasTuple: true}
	}
	var qr QueryResponse
	do(t, http.MethodPost, base+"/query", q("Alice"), &qr) // miss
	do(t, http.MethodPost, base+"/query", q("Alice"), &qr) // hit
	if h, m := srv.met.cacheHits.Value(), srv.met.cacheMisses.Value(); h != 1 || m != 1 {
		t.Fatalf("hits=%d misses=%d after miss+hit, want 1/1", h, m)
	}

	// Two more distinct keys overflow the 2-entry cache.
	do(t, http.MethodPost, base+"/query", q("Bob"), &qr)
	do(t, http.MethodPost, base+"/query", q("Eve"), &qr)
	if ev := srv.cache.evicted(); ev < 1 {
		t.Fatalf("evictions = %d after overflow, want >= 1", ev)
	}

	// A fact mutation bumps the generation: the old entry is
	// unreachable, the re-query is a miss, not a stale hit.
	missesBefore := srv.met.cacheMisses.Value()
	if st := do(t, http.MethodPost, base+"/facts", InsertFactRequest{Fact: "Emp(9,Zed)"}, nil); st != http.StatusOK {
		t.Fatalf("insert fact: status %d", st)
	}
	do(t, http.MethodPost, base+"/query", q("Eve"), &qr)
	if d := srv.met.cacheMisses.Value() - missesBefore; d != 1 {
		t.Fatalf("re-query after mutation recorded %d misses, want 1 (stale hit?)", d)
	}

	var vz varz
	if st := do(t, http.MethodGet, ts.URL+"/varz", nil, &vz); st != http.StatusOK {
		t.Fatal("varz not OK")
	}
	if vz.ResultCacheEvictions != srv.cache.evicted() {
		t.Errorf("varz result_cache_evictions %d != cache %d", vz.ResultCacheEvictions, srv.cache.evicted())
	}
	if vz.CacheHits != srv.met.cacheHits.Value() || vz.CacheMisses != srv.met.cacheMisses.Value() {
		t.Errorf("varz cache counters (%d/%d) diverge from registry (%d/%d)",
			vz.CacheHits, vz.CacheMisses, srv.met.cacheHits.Value(), srv.met.cacheMisses.Value())
	}
}

// TestCoverageCounters: an approx query whose exact twin is already
// cached feeds the empirical (ε, δ)-envelope counters.
func TestCoverageCounters(t *testing.T) {
	ts, srv := newTestServer(t, Options{})
	reg := register(t, ts.URL, pkFacts, pkFDs)
	base := ts.URL + "/v1/instances/" + reg.ID

	exact := QueryRequest{Generator: "ur", Mode: "exact", Query: "Ans(n) :- Emp(i, n)", Tuple: "Alice", HasTuple: true}
	var qr QueryResponse
	if st := do(t, http.MethodPost, base+"/query", exact, &qr); st != http.StatusOK {
		t.Fatalf("exact: status %d", st)
	}
	approx := exact
	approx.Mode = "approx"
	approx.Seed = 11
	if st := do(t, http.MethodPost, base+"/query", approx, &qr); st != http.StatusOK {
		t.Fatalf("approx: status %d", st)
	}
	checks := srv.met.coverageChecks.With(reg.ID).Value()
	within := srv.met.coverageWithin.With(reg.ID).Value()
	if checks != 1 {
		t.Fatalf("coverage checks = %d, want 1", checks)
	}
	if within != 1 {
		// ε=0.1 default and δ=0.05: a miss is possible but has
		// probability < δ at the default seed — pinned as deterministic
		// for this fixture.
		t.Errorf("coverage within = %d, want 1 (estimate left its (ε, δ) envelope)", within)
	}
	var vz varz
	do(t, http.MethodGet, ts.URL+"/varz", nil, &vz)
	if vz.CoverageChecks < 1 {
		t.Errorf("varz coverage_checks = %d, want >= 1", vz.CoverageChecks)
	}
}

// TestPprofGate: the profiler is absent by default and mounted with
// EnablePprof.
func TestPprofGate(t *testing.T) {
	tsOff, _ := newTestServer(t, Options{})
	if resp, err := http.Get(tsOff.URL + "/debug/pprof/cmdline"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("pprof off: status %d, want 404", resp.StatusCode)
		}
	}
	tsOn, _ := newTestServer(t, Options{EnablePprof: true})
	if resp, err := http.Get(tsOn.URL + "/debug/pprof/cmdline"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("pprof on: status %d, want 200", resp.StatusCode)
		}
	}
}
