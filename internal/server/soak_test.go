package server

// Server-level mutation/query soak: one writer toggles a hot fact in
// and out of a block while readers hammer the query, marginals, batch
// and count endpoints against the same instance. Run under -race (as
// CI does) this exercises every registry/cache/mutation interleaving;
// the assertions pin generation-keyed cache coherence:
//
//   - the writer's query IMMEDIATELY after each mutation must reflect
//     that mutation — a result cached under an older generation being
//     served as current is exactly the bug the generation key exists
//     to prevent;
//   - every concurrent reader response must equal one of the two
//     legal states bitwise (the exact rational, not a float blur) —
//     a torn response mixing generations fails loudly.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"

	ocqa "repro"
)

// soakDo is the goroutine-safe variant of do: reader goroutines must
// not call t.Fatal (FailNow from a non-test goroutine is undefined),
// so every failure travels back as an in-band error.
func soakDo(method, url string, body, out any) (int, error) {
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("decoding %s %s response: %w", method, url, err)
		}
	}
	return resp.StatusCode, nil
}

func TestSoakMutationsVsQueries(t *testing.T) {
	ts, _ := newTestServer(t, Options{CacheSize: 64})
	reg := register(t, ts.URL, pkFacts, pkFDs)
	base := ts.URL + "/v1/instances/" + reg.ID

	queryReq := QueryRequest{Generator: "ur", Mode: "exact", Query: "Ans() :- Emp(x, 'Hot')"}

	// The two legal instance states, and the exact library answer for
	// each generator under each — the bitwise currency every server
	// response must match.
	q, err := ocqa.ParseQuery("Ans() :- Emp(x, 'Hot')")
	if err != nil {
		t.Fatal(err)
	}
	instWithout, err := ocqa.NewInstanceFromText(pkFacts, pkFDs)
	if err != nil {
		t.Fatal(err)
	}
	instWith, _, err := instWithout.InsertFact(ocqa.Fact{Rel: "Emp", Args: []string{"1", "Hot"}})
	if err != nil {
		t.Fatal(err)
	}
	exact := func(in *ocqa.Instance, gen ocqa.Generator) string {
		t.Helper()
		p, err := in.ExactProbability(ocqa.Mode{Gen: gen}, q, ocqa.Tuple{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		return p.RatString()
	}
	legal := map[string][2]string{
		"ur": {exact(instWithout, ocqa.UniformRepairs), exact(instWith, ocqa.UniformRepairs)},
		"us": {exact(instWithout, ocqa.UniformSequences), exact(instWith, ocqa.UniformSequences)},
	}
	probWithout, probWith := legal["ur"][0], legal["ur"][1]

	iterations := 40
	readerIters := 150
	if testing.Short() {
		iterations, readerIters = 10, 40
	}

	queryProb := func() string {
		var qr QueryResponse
		status, err := soakDo(http.MethodPost, base+"/query", queryReq, &qr)
		if err != nil {
			return fmt.Sprintf("transport error: %v", err)
		}
		if status != http.StatusOK {
			return fmt.Sprintf("status %d", status)
		}
		if len(qr.Answers) != 1 {
			return fmt.Sprintf("%d answers", len(qr.Answers))
		}
		return qr.Answers[0].Prob
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, 16)
	report := func(format string, args ...any) {
		select {
		case errc <- fmt.Errorf(format, args...):
		default:
		}
	}

	// Readers: every response must be one of the two legal states —
	// whichever generation it was computed against — never a blend.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < readerIters; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 4 {
				case 0:
					if p := queryProb(); p != probWith && p != probWithout {
						report("reader %d: query returned %q, want %q or %q", r, p, probWith, probWithout)
						return
					}
				case 1:
					var mr MarginalsResponse
					status, err := soakDo(http.MethodPost, base+"/marginals",
						MarginalsRequest{Generator: "ur", Mode: "approx", Seed: 5, MaxSamples: 500, Workers: 2}, &mr)
					if err != nil || status != http.StatusOK {
						report("reader %d: marginals status %d (%v)", r, status, err)
						return
					}
					if n := len(mr.Marginals); n != 5 && n != 6 {
						report("reader %d: marginals for %d facts, want 5 or 6", r, n)
						return
					}
					for _, m := range mr.Marginals {
						if m.Value < 0 || m.Value > 1 {
							report("reader %d: marginal %v outside [0,1]", r, m.Value)
							return
						}
					}
				case 2:
					var br BatchResponse
					status, err := soakDo(http.MethodPost, base+"/batch",
						BatchRequest{Queries: []QueryRequest{queryReq, {Generator: "us", Mode: "exact", Query: "Ans() :- Emp(x, 'Hot')"}}}, &br)
					if err != nil || status != http.StatusOK || len(br.Results) != 2 {
						report("reader %d: batch status %d, %d results (%v)", r, status, len(br.Results), err)
						return
					}
					for _, res := range br.Results {
						if res.Status != http.StatusOK || len(res.Result.Answers) != 1 {
							report("reader %d: batch element status %d", r, res.Status)
							return
						}
						want := legal["ur"]
						if res.Result.Generator == "M^us" {
							want = legal["us"]
						}
						if p := res.Result.Answers[0].Prob; p != want[0] && p != want[1] {
							report("reader %d: batch element (%s) returned %q, want %q or %q",
								r, res.Result.Generator, p, want[0], want[1])
							return
						}
					}
				case 3:
					var cr CountResponse
					status, err := soakDo(http.MethodPost, base+"/repairs/count", CountRequest{}, &cr)
					if err != nil || status != http.StatusOK {
						report("reader %d: count status %d (%v)", r, status, err)
						return
					}
					// 3·1·3 block outcomes without Hot, 4·1·3 with.
					if cr.Count != "9" && cr.Count != "12" {
						report("reader %d: count %q, want 9 or 12", r, cr.Count)
						return
					}
				}
			}
		}(r)
	}

	// The single writer: toggle the hot fact, asserting read-your-write
	// coherence through the generation-keyed cache after every commit.
	writerFailed := false
	for i := 0; i < iterations && !writerFailed; i++ {
		var ins FactMutationResponse
		if status := do(t, http.MethodPost, base+"/facts", InsertFactRequest{Fact: "Emp(1,Hot)"}, &ins); status != http.StatusOK {
			t.Errorf("iteration %d: insert status %d", i, status)
			break
		}
		if p := queryProb(); p != probWith {
			t.Errorf("iteration %d: query after insert returned %q, want %q (stale generation served)", i, p, probWith)
			writerFailed = true
		}
		var del FactMutationResponse
		if status := do(t, http.MethodDelete, fmt.Sprintf("%s/facts/%d", base, ins.Index), nil, &del); status != http.StatusOK {
			t.Errorf("iteration %d: delete status %d", i, status)
			break
		}
		if del.Fact != "Emp(1,Hot)" {
			t.Errorf("iteration %d: deleted %q at index %d, want the hot fact", i, del.Fact, ins.Index)
			break
		}
		if p := queryProb(); p != probWithout {
			t.Errorf("iteration %d: query after delete returned %q, want %q (stale generation served)", i, p, probWithout)
			writerFailed = true
		}
	}
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
