package server

// Wire types of the HTTP API. Every request body is JSON; every
// response is JSON. Exact probabilities travel both as the rational
// string ("1/3") and as a float; estimates carry their (ε, δ) and
// sample-count metadata.

import ocqa "repro"

// RegisterRequest is the body of POST /v1/instances: a database and an
// FD set in the text formats of package parse.
type RegisterRequest struct {
	// Facts is a newline-separated fact list, e.g. "Emp(1,Alice)".
	Facts string `json:"facts"`
	// FDs is a newline-separated FD list, e.g. "Emp: A1 -> A2".
	FDs string `json:"fds"`
	// Name optionally labels the instance.
	Name string `json:"name,omitempty"`
	// ID optionally pins the instance id instead of letting the server
	// allocate one — the cluster coordinator mints cluster-unique ids
	// this way so every backend names the instance identically. A
	// collision with a live id is a 409. Same charset as request ids:
	// [A-Za-z0-9._-], at most 64 characters.
	ID string `json:"id,omitempty"`
}

// RegisterResponse describes a registered instance.
type RegisterResponse struct {
	ID         string `json:"id"`
	Name       string `json:"name,omitempty"`
	Facts      int    `json:"facts"`
	Class      string `json:"class"`
	Consistent bool   `json:"consistent"`
	// Prepared reports whether the DP sampler artifacts were built at
	// registration (true exactly for primary-key instances).
	Prepared bool `json:"prepared"`
}

// InstanceInfo is the GET /v1/instances[/{id}] view.
type InstanceInfo struct {
	ID         string `json:"id"`
	Name       string `json:"name,omitempty"`
	Facts      int    `json:"facts"`
	Class      string `json:"class"`
	Consistent bool   `json:"consistent"`
	Prepared   bool   `json:"prepared"`
	CreatedAt  string `json:"created_at"`
}

// InsertFactRequest is the body of POST .../facts: one fact in the
// text format, e.g. "Emp(2,Carol)".
type InsertFactRequest struct {
	Fact string `json:"fact"`
}

// FactMutationResponse describes the instance after an insert-fact or
// delete-fact mutation.
type FactMutationResponse struct {
	ID string `json:"id"`
	// Op is "insert" or "delete".
	Op string `json:"op"`
	// Fact is the canonical rendering of the touched fact.
	Fact string `json:"fact"`
	// Index is the fact's index in the instance's sorted fact order:
	// the index assigned on insert, or the index removed on delete
	// (facts after it shift down by one).
	Index int `json:"index"`
	// Facts, Consistent and ConflictPairs describe the mutated
	// instance.
	Facts         int  `json:"facts"`
	Consistent    bool `json:"consistent"`
	ConflictPairs int  `json:"conflict_pairs"`
	// Gen is the instance's mutation generation after this operation.
	// The cluster coordinator acks a mutation only once the follower's
	// replica has synced to at least this generation.
	Gen int64 `json:"gen"`
}

// QueryRequest drives POST .../query and each element of a batch.
type QueryRequest struct {
	// Generator is "ur" (uniform repairs), "us" (uniform sequences) or
	// "uo" (uniform operations).
	Generator string `json:"generator"`
	// Singleton restricts to single-fact deletions (M^{·,1}).
	Singleton bool `json:"singleton,omitempty"`
	// Mode is "exact" (♯P engines, state-budget bounded) or "approx"
	// (the paper's samplers, matrix-enforced).
	Mode string `json:"mode"`
	// Query is a conjunctive query, e.g. "Ans(n) :- Emp(i, n)".
	Query string `json:"query"`
	// Tuple, when set, asks for that single candidate answer; empty
	// means every tuple of Q(D). Boolean queries use the empty tuple.
	Tuple string `json:"tuple,omitempty"`
	// HasTuple forces single-tuple semantics even for the empty tuple
	// of a Boolean query.
	HasTuple bool `json:"has_tuple,omitempty"`

	// Approx parameters (defaults mirror ocqa.ApproxOptions).
	Epsilon    float64 `json:"epsilon,omitempty"`
	Delta      float64 `json:"delta,omitempty"`
	Seed       int64   `json:"seed,omitempty"`
	MaxSamples int     `json:"max_samples,omitempty"`
	Workers    int     `json:"workers,omitempty"`
	Force      bool    `json:"force,omitempty"`

	// Limit bounds the exact engines' state budget; it is clamped to
	// the server's -exact-limit cap (0 means "server cap").
	Limit int `json:"limit,omitempty"`
}

// Answer is one tuple with its exact or estimated probability.
type Answer struct {
	Tuple []string `json:"tuple"`
	// Prob is the exact rational ("1/3"); empty for estimates.
	Prob string `json:"prob,omitempty"`
	// Value is the probability as a float (exact value or estimate).
	Value float64 `json:"value"`
	// Estimate metadata (approx mode only).
	Samples   int   `json:"samples,omitempty"`
	Converged *bool `json:"converged,omitempty"`
}

// CostInfo is the per-request cost accounting embedded in every query,
// batch-element, count and marginals response. For sampling runs the
// draw fields come from the engine's own accounting; exact engines
// report zero draws and the handler-measured wall time.
type CostInfo struct {
	// Draws is the number of Monte-Carlo repair draws the computation
	// consumed, discarded parallel tails included (0 for exact engines;
	// on a cache hit, the draws the cached computation originally spent).
	Draws int64 `json:"draws"`
	// Chunks counts the cancellation-check chunks the draw loop passed.
	Chunks int64 `json:"chunks,omitempty"`
	// ReusedDraws counts draws whose statistics were carried over from a
	// previous generation's strata by the delta-stratified estimator
	// instead of being redrawn. Draws stays the fresh work of this
	// request, so Draws + ReusedDraws is the statistical weight behind
	// the estimate.
	ReusedDraws int64 `json:"reused_draws,omitempty"`
	// Workers is the parallel fan-out of the sampling pass (0 when no
	// sampling ran).
	Workers int `json:"workers"`
	// PerWorkerDraws is the per-worker draw split of a parallel pass.
	PerWorkerDraws []int64 `json:"per_worker_draws,omitempty"`
	// WallSeconds is the handler-measured wall time of this request's
	// computation — the cache lookup, when Cached.
	WallSeconds float64 `json:"wall_seconds"`
	// Cached reports whether the response was served from the result
	// cache without executing any engine.
	Cached bool `json:"cached"`
	// Cancelled marks partial accounting from a run stopped by the
	// server deadline or a client disconnect.
	Cancelled bool `json:"cancelled,omitempty"`
}

// ExplainInfo is the per-query introspection payload a request opts
// into with ?explain=1: the pre-sampling plan (route, worst-case draw
// budget for the requested (ε, δ), budget_capped verdict), the phase
// spans the execution recorded, and the convergence curve of its draw
// loop. Predicted-vs-actual comparison is Plan.PredictedDraws against
// ActualDraws. Explain is presentation, not identity: it never enters
// the result-cache key, and a cache hit answers with the zero-draw
// cached plan instead of the original run's trace.
type ExplainInfo struct {
	Plan ocqa.QueryPlan `json:"plan"`
	// Spans are the execution's named phases (compile, plan, sample:*,
	// aa:phase*), with nanosecond offsets on the trace's own timeline.
	Spans []ocqa.TraceSpan `json:"spans,omitempty"`
	// Convergence is the draw loop's checkpoint curve: draws-so-far,
	// running estimate, distribution-free CI half-width. Deterministic
	// for a fixed (seed, workers) pair.
	Convergence []ocqa.TraceCheckpoint `json:"convergence,omitempty"`
	// ActualDraws is what the run really spent (0 for exact engines and
	// cache hits) — compare against Plan.PredictedDraws.
	ActualDraws int64 `json:"actual_draws"`
}

// QueryResponse is the result of one query execution.
type QueryResponse struct {
	Instance  string   `json:"instance"`
	Generator string   `json:"generator"`
	Mode      string   `json:"mode"`
	Query     string   `json:"query"`
	Answers   []Answer `json:"answers"`
	// Approximability echoes the matrix verdict with its citation.
	Approximability string `json:"approximability"`
	Citation        string `json:"citation"`
	// Cached is true when the response was served from the result
	// cache without executing any engine.
	Cached bool `json:"cached"`
	// Cost is the request's cost accounting.
	Cost *CostInfo `json:"cost,omitempty"`
	// Explain is the introspection payload, present only with ?explain=1.
	Explain *ExplainInfo `json:"explain,omitempty"`
}

// WatchResponse is the body of a successful GET .../watch long-poll:
// the instance generation that satisfied the watch and the query result
// computed against it. A watch that sees no mutation within the wait
// window answers 204 No Content instead.
type WatchResponse struct {
	// Gen is the instance's mutation generation the result reflects;
	// pass it back as ?since= to wait for the next change.
	Gen    int64          `json:"gen"`
	Result *QueryResponse `json:"result"`
}

// BatchRequest is the body of POST .../batch.
type BatchRequest struct {
	Queries []QueryRequest `json:"queries"`
}

// BatchResult pairs a batch element (by its request index) with its
// result or error; Status is the HTTP status the same request would
// have received at the query endpoint.
type BatchResult struct {
	Index  int            `json:"index"`
	Status int            `json:"status"`
	Result *QueryResponse `json:"result,omitempty"`
	Error  string         `json:"error,omitempty"`
}

// BatchResponse lists the results in request order.
type BatchResponse struct {
	Results []BatchResult `json:"results"`
}

// CountRequest is the body of POST .../repairs/count.
type CountRequest struct {
	// Singleton selects |CORep^1| / |CRS^1|.
	Singleton bool `json:"singleton,omitempty"`
	// Sequences counts complete repairing sequences (|CRS|) instead of
	// candidate repairs (|CORep|).
	Sequences bool `json:"sequences,omitempty"`
	// Limit bounds the exponential fallback for non-primary-key CRS
	// counting (clamped to the server cap).
	Limit int `json:"limit,omitempty"`
}

// CountResponse carries the (possibly astronomically large) count as a
// decimal string.
type CountResponse struct {
	Count     string `json:"count"`
	Singleton bool   `json:"singleton"`
	Sequences bool   `json:"sequences"`
	// Cost is the request's cost accounting (exact counting performs no
	// draws; the wall time is the interesting part).
	Cost *CostInfo `json:"cost,omitempty"`
	// Explain is the introspection payload, present only with ?explain=1.
	Explain *ExplainInfo `json:"explain,omitempty"`
}

// MarginalsRequest is the body of POST .../marginals.
type MarginalsRequest struct {
	Generator string `json:"generator"`
	Singleton bool   `json:"singleton,omitempty"`
	// Mode is "exact" or "approx".
	Mode string `json:"mode"`
	// Exact state budget (clamped to the server cap).
	Limit int `json:"limit,omitempty"`
	// Approx parameters; MaxSamples is the exact draw count
	// (default 100,000). Workers parallelises the draw loop (clamped
	// to the server's batch pool size); estimates are deterministic in
	// (seed, workers).
	Seed       int64 `json:"seed,omitempty"`
	MaxSamples int   `json:"max_samples,omitempty"`
	Workers    int   `json:"workers,omitempty"`
	Force      bool  `json:"force,omitempty"`
}

// FactMarginal is one fact's survival probability.
type FactMarginal struct {
	Fact  string  `json:"fact"`
	Prob  string  `json:"prob,omitempty"`
	Value float64 `json:"value"`
}

// MarginalsResponse lists per-fact marginals in database fact order.
type MarginalsResponse struct {
	Instance  string         `json:"instance"`
	Generator string         `json:"generator"`
	Mode      string         `json:"mode"`
	Marginals []FactMarginal `json:"marginals"`
	// Cost is the request's cost accounting.
	Cost *CostInfo `json:"cost,omitempty"`
	// Explain is the introspection payload, present only with ?explain=1.
	Explain *ExplainInfo `json:"explain,omitempty"`
}

// SemanticsRequest is the body of POST .../semantics.
type SemanticsRequest struct {
	Generator string `json:"generator"`
	Singleton bool   `json:"singleton,omitempty"`
	Limit     int    `json:"limit,omitempty"`
}

// RepairEntry is one operational repair with its probability.
type RepairEntry struct {
	Facts []string `json:"facts"`
	Prob  string   `json:"prob"`
	Value float64  `json:"value"`
}

// SemanticsResponse is the exact distribution [[D]]_M over repairs.
type SemanticsResponse struct {
	Instance  string        `json:"instance"`
	Generator string        `json:"generator"`
	Repairs   []RepairEntry `json:"repairs"`
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
	// RequestID echoes the X-Request-Id response header so failures can
	// be correlated with the access log from the body alone.
	RequestID string `json:"request_id,omitempty"`
	// Cost carries the accounting of a computation that ran and was
	// stopped early (deadline, disconnect): the draws already spent are
	// real work, visible here rather than silently discarded.
	Cost *CostInfo `json:"cost,omitempty"`
	// Partial lists the per-tuple estimates a cancelled estimation had
	// computed when it stopped — below the requested (ε, δ), but often
	// still informative.
	Partial []Answer `json:"partial,omitempty"`
}
