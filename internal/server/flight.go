package server

// The slow-query flight recorder: a bounded in-memory record of recent
// and slowest query executions, each carrying the request's identity,
// cost and — when a trace ran — its phase spans and convergence curve.
// Mounted at GET /debug/queries, gated behind Options.EnableDebugQueries
// exactly like the pprof endpoints (the traces expose query text and
// timing internals, so the operator opts in). Recording happens once
// per request in ServeHTTP, after the handler returns; the rings are
// mutex-guarded and fixed-size, so a concurrent query storm costs one
// short critical section per request and bounded memory forever.

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/engine"
)

const (
	// flightRecentSize bounds the last-N ring; flightSlowestSize bounds
	// the slowest-N leaderboard.
	flightRecentSize  = 64
	flightSlowestSize = 32
)

// flightRecord is one recorded query execution.
type flightRecord struct {
	RequestID string `json:"request_id"`
	Endpoint  string `json:"endpoint"`
	Method    string `json:"method"`
	Path      string `json:"path"`
	Status    int    `json:"status"`
	// Start is when the request arrived; DurationSeconds its total wall
	// time inside the server.
	Start           time.Time `json:"start"`
	DurationSeconds float64   `json:"duration_seconds"`
	Instance        string    `json:"instance,omitempty"`
	Generator       string    `json:"generator,omitempty"`
	Mode            string    `json:"mode,omitempty"`
	Draws           int64     `json:"draws,omitempty"`
	CacheHits       int64     `json:"cache_hits,omitempty"`
	CacheMisses     int64     `json:"cache_misses,omitempty"`
	// Spans and Convergence come from the request-wide trace ServeHTTP
	// arms while the recorder is enabled.
	Spans       []engine.Span       `json:"spans,omitempty"`
	Convergence []engine.Checkpoint `json:"convergence,omitempty"`
}

// flightRecorder holds the two bounded rings.
type flightRecorder struct {
	mu     sync.Mutex
	total  int64
	recent []flightRecord // circular, next points at the oldest slot
	next   int
	// slowest is kept sorted by duration descending and truncated to
	// flightSlowestSize.
	slowest []flightRecord
}

func newFlightRecorder() *flightRecorder {
	return &flightRecorder{}
}

// record admits one finished request into both rings.
func (f *flightRecorder) record(rec flightRecord) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.total++
	if len(f.recent) < flightRecentSize {
		f.recent = append(f.recent, rec)
	} else {
		f.recent[f.next] = rec
		f.next = (f.next + 1) % flightRecentSize
	}
	if len(f.slowest) < flightSlowestSize || rec.DurationSeconds > f.slowest[len(f.slowest)-1].DurationSeconds {
		f.slowest = append(f.slowest, rec)
		sort.SliceStable(f.slowest, func(i, j int) bool {
			return f.slowest[i].DurationSeconds > f.slowest[j].DurationSeconds
		})
		if len(f.slowest) > flightSlowestSize {
			f.slowest = f.slowest[:flightSlowestSize]
		}
	}
}

// snapshot returns the total admitted count, the recent ring newest
// first, and the slowest leaderboard; the slices are copies.
func (f *flightRecorder) snapshot() (total int64, recent, slowest []flightRecord) {
	f.mu.Lock()
	defer f.mu.Unlock()
	recent = make([]flightRecord, 0, len(f.recent))
	// The ring stores oldest at next (once full); walk backwards from
	// the newest slot.
	for i := 0; i < len(f.recent); i++ {
		idx := (f.next - 1 - i + len(f.recent)) % len(f.recent)
		recent = append(recent, f.recent[idx])
	}
	slowest = append([]flightRecord(nil), f.slowest...)
	return f.total, recent, slowest
}

// flightResponse is the JSON shape of GET /debug/queries.
type flightResponse struct {
	// Total counts every request admitted since the server started —
	// the rings below are bounded views of it.
	Total   int64          `json:"total"`
	Recent  []flightRecord `json:"recent"`
	Slowest []flightRecord `json:"slowest"`
}

// handleDebugQueries serves the recorder: JSON by default, a terse
// human-readable table with ?format=text.
func (s *Server) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	total, recent, slowest := s.flight.snapshot()
	if r.URL.Query().Get("format") != "text" {
		writeJSON(w, http.StatusOK, flightResponse{Total: total, Recent: recent, Slowest: slowest})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "flight recorder: %d requests recorded (ring %d, slowest %d)\n\n",
		total, flightRecentSize, flightSlowestSize)
	writeSection := func(title string, recs []flightRecord) {
		fmt.Fprintf(w, "%s:\n", title)
		for _, rec := range recs {
			fmt.Fprintf(w, "  %-16s %-10s %3d %9.3fms draws=%-8d %s %s\n",
				rec.RequestID, rec.Endpoint, rec.Status, rec.DurationSeconds*1000,
				rec.Draws, rec.Instance, rec.Mode)
			for _, sp := range rec.Spans {
				fmt.Fprintf(w, "      span %-14s %9.3fms\n",
					sp.Name, float64(sp.EndNanos-sp.StartNanos)/1e6)
			}
		}
		fmt.Fprintln(w)
	}
	writeSection("recent (newest first)", recent)
	writeSection("slowest", slowest)
}

// flightEndpoint reports whether a classified endpoint performs query
// work worth recording — registry bookkeeping, scrapes and the
// recorder itself stay out of the rings.
func flightEndpoint(ep string) bool {
	switch ep {
	case "query", "batch", "count", "marginals", "semantics":
		return true
	}
	return false
}
