package server

import (
	"context"
	"fmt"
	"net/http"
	"reflect"
	"sync"
	"testing"

	ocqa "repro"
	"repro/internal/sampler"
	"repro/internal/store"
)

func openTestStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatalf("store.Open(%s): %v", dir, err)
	}
	return st
}

// TestServerPersistenceRestart is the PR's acceptance criterion: a
// server restarted over the same data dir serves identical query
// results for all previously registered instances — including one that
// was mutated through the fact endpoints — without re-registration.
func TestServerPersistenceRestart(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	ts, _ := newTestServer(t, Options{Store: st})

	reg1 := register(t, ts.URL, pkFacts, pkFDs)
	reg2 := register(t, ts.URL, fdFacts, fdFDs)
	var mut FactMutationResponse
	if status := do(t, http.MethodPost, ts.URL+"/v1/instances/"+reg1.ID+"/facts",
		InsertFactRequest{Fact: "Emp(2,Carol)"}, &mut); status != http.StatusOK {
		t.Fatalf("insert fact: status %d", status)
	}
	if mut.Facts != 6 || mut.Consistent {
		t.Fatalf("mutation response %+v", mut)
	}

	queries := []struct {
		id  string
		req QueryRequest
	}{
		{reg1.ID, QueryRequest{Generator: "ur", Mode: "exact", Query: "Ans(n) :- Emp(i, n)"}},
		{reg1.ID, QueryRequest{Generator: "us", Mode: "approx", Query: "Ans(n) :- Emp(i, n)", Tuple: "Alice", Seed: 7, MaxSamples: 5000}},
		{reg2.ID, QueryRequest{Generator: "uo", Mode: "exact", Query: "Ans(x) :- R(a, x, p)"}},
	}
	var before []QueryResponse
	for _, q := range queries {
		var resp QueryResponse
		if status := do(t, http.MethodPost, ts.URL+"/v1/instances/"+q.id+"/query", q.req, &resp); status != http.StatusOK {
			t.Fatalf("pre-restart query on %s: status %d", q.id, status)
		}
		resp.Cached = false
		before = append(before, resp)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh store over the same directory, a fresh server,
	// no registrations.
	st2 := openTestStore(t, dir)
	defer st2.Close()
	ts2, _ := newTestServer(t, Options{Store: st2})
	var infos []InstanceInfo
	if status := do(t, http.MethodGet, ts2.URL+"/v1/instances", nil, &infos); status != http.StatusOK || len(infos) != 2 {
		t.Fatalf("after restart: %d instances (status %d), want 2", len(infos), status)
	}
	for i, q := range queries {
		var resp QueryResponse
		if status := do(t, http.MethodPost, ts2.URL+"/v1/instances/"+q.id+"/query", q.req, &resp); status != http.StatusOK {
			t.Fatalf("post-restart query on %s: status %d", q.id, status)
		}
		resp.Cached = false
		// Cost wall time is not reproducible across runs; everything
		// else must be.
		resp.Cost, before[i].Cost = nil, nil
		if !reflect.DeepEqual(resp, before[i]) {
			t.Fatalf("query %d diverges after restart:\nbefore %+v\nafter  %+v", i, before[i], resp)
		}
	}
	var v varz
	if status := do(t, http.MethodGet, ts2.URL+"/varz", nil, &v); status != http.StatusOK {
		t.Fatalf("varz: status %d", status)
	}
	if !v.Persistent || v.ReplayedOps != 3 { // 2 registers + 1 insert
		t.Fatalf("varz persistence counters %+v, want persistent with 3 replayed ops", v)
	}
}

// TestMutationMatchesFromScratch asserts the differential criterion at
// the HTTP layer: the conflict count after an insert equals a fresh
// registration of the post-mutation database, and exact answers agree.
func TestMutationMatchesFromScratch(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	reg := register(t, ts.URL, pkFacts, pkFDs)
	var mut FactMutationResponse
	if status := do(t, http.MethodPost, ts.URL+"/v1/instances/"+reg.ID+"/facts",
		InsertFactRequest{Fact: "Emp(2,Carol)"}, &mut); status != http.StatusOK {
		t.Fatalf("insert: status %d", status)
	}
	fresh := register(t, ts.URL, pkFacts+"Emp(2,Carol)\n", pkFDs)
	inst, err := ocqa.NewInstanceFromText(pkFacts+"Emp(2,Carol)\n", pkFDs)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(inst.Core().ConflictPairs()); mut.ConflictPairs != want {
		t.Fatalf("conflict_pairs = %d, want %d", mut.ConflictPairs, want)
	}
	q := QueryRequest{Generator: "ur", Mode: "exact", Query: "Ans(n) :- Emp(i, n)"}
	var a, b QueryResponse
	if status := do(t, http.MethodPost, ts.URL+"/v1/instances/"+reg.ID+"/query", q, &a); status != http.StatusOK {
		t.Fatalf("mutated query: status %d", status)
	}
	if status := do(t, http.MethodPost, ts.URL+"/v1/instances/"+fresh.ID+"/query", q, &b); status != http.StatusOK {
		t.Fatalf("fresh query: status %d", status)
	}
	if !reflect.DeepEqual(a.Answers, b.Answers) {
		t.Fatalf("mutated answers %+v != from-scratch %+v", a.Answers, b.Answers)
	}
}

func TestMutationErrorsAndCacheInvalidation(t *testing.T) {
	// Delta refresh disabled: this test pins the bare invalidation
	// semantics (post-mutation queries recompute, never replay); the
	// refresh-enabled path is pinned by TestCacheDeltaRefreshAfterMutation.
	ts, _ := newTestServer(t, Options{DeltaRefreshLimit: -1})
	reg := register(t, ts.URL, pkFacts, pkFDs)
	url := ts.URL + "/v1/instances/" + reg.ID

	var e errorResponse
	if status := do(t, http.MethodPost, url+"/facts", InsertFactRequest{Fact: "Emp(1,Alice)"}, &e); status != http.StatusConflict {
		t.Fatalf("duplicate insert: status %d (%+v)", status, e)
	}
	if status := do(t, http.MethodPost, url+"/facts", InsertFactRequest{Fact: "Zz(1)"}, &e); status != http.StatusBadRequest {
		t.Fatalf("unknown relation: status %d", status)
	}
	if status := do(t, http.MethodPost, url+"/facts", InsertFactRequest{Fact: "not a fact"}, &e); status != http.StatusBadRequest {
		t.Fatalf("malformed fact: status %d", status)
	}
	if status := do(t, http.MethodDelete, url+"/facts/99", nil, &e); status != http.StatusBadRequest {
		t.Fatalf("out-of-range delete: status %d", status)
	}
	if status := do(t, http.MethodDelete, url+"/facts/x", nil, &e); status != http.StatusBadRequest {
		t.Fatalf("non-integer index: status %d", status)
	}
	if status := do(t, http.MethodPost, ts.URL+"/v1/instances/nope/facts", InsertFactRequest{Fact: "Emp(7,New)"}, &e); status != http.StatusNotFound {
		t.Fatalf("unknown instance: status %d", status)
	}

	// Cache invalidation: the same exact query must change after an
	// insert that adds a conflict, rather than replaying a stale entry.
	q := QueryRequest{Generator: "ur", Mode: "exact", Query: "Ans(n) :- Emp(i, n)"}
	var beforeResp QueryResponse
	if status := do(t, http.MethodPost, url+"/query", q, &beforeResp); status != http.StatusOK {
		t.Fatalf("query: status %d", status)
	}
	var mut FactMutationResponse
	if status := do(t, http.MethodPost, url+"/facts", InsertFactRequest{Fact: "Emp(2,Carol)"}, &mut); status != http.StatusOK {
		t.Fatalf("insert: status %d", status)
	}
	var afterResp QueryResponse
	if status := do(t, http.MethodPost, url+"/query", q, &afterResp); status != http.StatusOK {
		t.Fatalf("query after insert: status %d", status)
	}
	if afterResp.Cached {
		t.Fatal("post-mutation query served from the stale cache")
	}
	if reflect.DeepEqual(beforeResp.Answers, afterResp.Answers) {
		t.Fatalf("answers unchanged by a conflicting insert: %+v", afterResp.Answers)
	}
}

// TestStaleCachePutCannotMaskMutation replays the in-flight-query race
// directly: a query computed against the pre-mutation entry finishes
// (and caches) after the mutation's cache invalidation ran. Its result
// must land under the old generation's key, invisible to post-mutation
// lookups.
func TestStaleCachePutCannotMaskMutation(t *testing.T) {
	// Delta refresh disabled so the post-mutation lookup must miss: with
	// refresh on, the same lookup would legitimately hit the refreshed
	// (new-generation, correct) entry and the race being replayed here
	// would be invisible.
	ts, s := newTestServer(t, Options{DeltaRefreshLimit: -1})
	reg := register(t, ts.URL, pkFacts, pkFDs)
	stale, ok := s.reg.get(reg.ID)
	if !ok {
		t.Fatal("entry missing")
	}
	req := QueryRequest{Generator: "ur", Mode: "exact", Query: "Ans(n) :- Emp(i, n)"}
	var mut FactMutationResponse
	if status := do(t, http.MethodPost, ts.URL+"/v1/instances/"+reg.ID+"/facts",
		InsertFactRequest{Fact: "Emp(2,Carol)"}, &mut); status != http.StatusOK {
		t.Fatalf("insert: status %d", status)
	}
	// The abandoned pre-mutation computation lands now, after the
	// invalidation, holding the stale entry pointer.
	staleResp, he := s.executeQuery(context.Background(), stale, req, false)
	if he != nil {
		t.Fatalf("stale executeQuery: %v", he)
	}
	var fresh QueryResponse
	if status := do(t, http.MethodPost, ts.URL+"/v1/instances/"+reg.ID+"/query", req, &fresh); status != http.StatusOK {
		t.Fatalf("fresh query: status %d", status)
	}
	if fresh.Cached {
		t.Fatal("post-mutation query served the stale in-flight result from the cache")
	}
	if reflect.DeepEqual(fresh.Answers, staleResp.Answers) {
		t.Fatalf("post-mutation answers equal the pre-mutation ones: %+v", fresh.Answers)
	}
}

// TestWarmBootEnforcesLoweredCapacity: a store written under a high
// -max-instances replayed into a smaller registry must be evicted (and
// journalled) down to the new cap at boot.
func TestWarmBootEnforcesLoweredCapacity(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	ts, _ := newTestServer(t, Options{Store: st, MaxInstances: 8})
	for i := 0; i < 5; i++ {
		register(t, ts.URL, pkFacts, pkFDs)
	}
	st.Close()

	st2 := openTestStore(t, dir)
	s2 := New(Options{Store: st2, MaxInstances: 2})
	if n := s2.reg.len(); n != 2 {
		t.Fatalf("registry holds %d entries after warm boot, want lowered cap 2", n)
	}
	st2.Close()
	// The boot-time evictions must be durable too.
	st3 := openTestStore(t, dir)
	defer st3.Close()
	if n := len(st3.Instances()); n != 2 {
		t.Fatalf("store replays %d instances after capped boot, want 2", n)
	}
}

// TestEvictionIsJournalled: with a capacity-1 registry over a store,
// the evicted instance must not resurrect at the next boot.
func TestEvictionIsJournalled(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	ts, _ := newTestServer(t, Options{Store: st, MaxInstances: 1})
	register(t, ts.URL, pkFacts, pkFDs)      // will be evicted
	b := register(t, ts.URL, fdFacts, fdFDs) // evicts a
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := openTestStore(t, dir)
	defer st2.Close()
	states := st2.Instances()
	if len(states) != 1 || states[0].ID != b.ID {
		t.Fatalf("replayed state %v, want only %s", states, b.ID)
	}
}

// TestConcurrentRegisterRemoveGetRace is the satellite race test: the
// registry (behind the HTTP handlers) is hammered by concurrent
// registrations, removals, lookups and mutations at tiny capacity, so
// LRU eviction interleaves with everything. Run under -race in CI.
func TestConcurrentRegisterRemoveGetRace(t *testing.T) {
	ts, s := newTestServer(t, Options{MaxInstances: 4})
	seed := make([]string, 4)
	for i := range seed {
		seed[i] = register(t, ts.URL, pkFacts, pkFDs).ID
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				switch (w + i) % 4 {
				case 0:
					var reg RegisterResponse
					do(t, http.MethodPost, ts.URL+"/v1/instances",
						RegisterRequest{Facts: pkFacts, FDs: pkFDs, Name: fmt.Sprintf("w%d-%d", w, i)}, &reg)
				case 1:
					do(t, http.MethodDelete, ts.URL+"/v1/instances/"+seed[i%len(seed)], nil, nil)
				case 2:
					do(t, http.MethodGet, ts.URL+"/v1/instances/"+seed[(w+i)%len(seed)], nil, nil)
					do(t, http.MethodGet, ts.URL+"/v1/instances", nil, nil)
				case 3:
					var mut FactMutationResponse
					do(t, http.MethodPost, ts.URL+"/v1/instances/"+seed[i%len(seed)]+"/facts",
						InsertFactRequest{Fact: fmt.Sprintf("Emp(9%d,W%d)", i, w)}, &mut)
				}
			}
		}(w)
	}
	wg.Wait()
	if n := s.reg.len(); n > 4 {
		t.Fatalf("registry exceeded capacity: %d", n)
	}
	// The server must still be coherent: a fresh register + query works.
	reg := register(t, ts.URL, pkFacts, pkFDs)
	var resp QueryResponse
	if status := do(t, http.MethodPost, ts.URL+"/v1/instances/"+reg.ID+"/query",
		QueryRequest{Generator: "ur", Mode: "exact", Query: "Ans(n) :- Emp(i, n)"}, &resp); status != http.StatusOK {
		t.Fatalf("post-race query: status %d", status)
	}
}

// TestWarmBootPrepLazily: replayed instances must not pay sampler
// construction until first use.
func TestWarmBootPreparesLazily(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	ts, _ := newTestServer(t, Options{Store: st})
	reg := register(t, ts.URL, pkFacts, pkFDs)
	st.Close()

	st2 := openTestStore(t, dir)
	defer st2.Close()
	before := sampler.Constructions()
	ts2, _ := newTestServer(t, Options{Store: st2})
	if got := sampler.Constructions(); got != before {
		t.Fatalf("warm boot built %d samplers eagerly", got-before)
	}
	var resp QueryResponse
	if status := do(t, http.MethodPost, ts2.URL+"/v1/instances/"+reg.ID+"/query",
		QueryRequest{Generator: "us", Mode: "approx", Query: "Ans(n) :- Emp(i, n)", Tuple: "Alice", MaxSamples: 2000}, &resp); status != http.StatusOK {
		t.Fatalf("query after warm boot: status %d", status)
	}
	if got := sampler.Constructions(); got == before {
		t.Fatal("first query after warm boot did not build samplers")
	}
}
