// Package server is the concurrent OCQA query service: a long-running
// HTTP layer over the ocqa facade that amortizes the expensive
// per-instance artifacts (conflict structure, block decomposition,
// sequence-sampler DP tables) across many queries and many concurrent
// clients.
//
// Endpoints (all request/response bodies are JSON):
//
//	POST   /v1/instances                      register a database + FD set
//	GET    /v1/instances                      list registered instances
//	GET    /v1/instances/{id}                 inspect one instance
//	DELETE /v1/instances/{id}                 deregister (and drop cached results)
//	POST   /v1/instances/{id}/facts           insert one fact (incremental)
//	DELETE /v1/instances/{id}/facts/{index}   delete the fact at that index
//	POST   /v1/instances/{id}/query           exact or approximate OCQA
//	GET    /v1/instances/{id}/watch           long-poll a query across mutations
//	POST   /v1/instances/{id}/batch           N queries over a bounded worker pool
//	POST   /v1/instances/{id}/repairs/count   |CORep| / |CRS| (and ^1 variants)
//	POST   /v1/instances/{id}/marginals       per-fact survival probabilities
//	POST   /v1/instances/{id}/semantics       the exact repair distribution [[D]]_M
//	GET    /healthz                           liveness
//	GET    /varz                              operational counters
//
// Registration eagerly prepares the instance (ocqa.Prepare), so every
// subsequent query — including thousands running concurrently —
// performs zero sampler constructions. The approximability matrix is
// enforced exactly as in the library: a (generator, constraint-class)
// pair without an FPRAS is refused with HTTP 422 and the error cites
// the paper's theorem. Repeated identical queries are served from a
// bounded LRU result cache.
//
// With Options.Store set, the server is durable: every registry
// operation — register, unregister (explicit or LRU eviction),
// insert-fact, delete-fact — is journalled to the store's write-ahead
// log before it is acknowledged, and New replays the snapshot + WAL so
// a restarted server answers for every previously registered instance
// without re-registration. Fact mutations maintain the conflict
// structure incrementally (copy-on-write) and invalidate the cached
// results and sampler artifacts of the touched instance lazily.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync/atomic"
	"time"

	ocqa "repro"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/store"
)

// Options configures a Server.
type Options struct {
	// BatchWorkers bounds the worker pool a batch request fans out
	// over. Default: GOMAXPROCS.
	BatchWorkers int
	// DefaultWorkers is the estimation worker count applied to approx
	// query and marginals requests that omit workers (or request ≤ 0).
	// Default 0 means adaptive: the engine sizes each run's pool from
	// the instance's conflict structure and draw budget, bounded by
	// GOMAXPROCS. Set a positive value to pin a fixed count instead.
	DefaultWorkers int
	// CacheSize bounds the LRU result cache (entries). 0 picks the
	// default of 1024; negative disables caching.
	CacheSize int
	// QueryTimeout bounds each query execution; expired queries return
	// HTTP 504. 0 picks the default of 30s; negative disables the
	// deadline.
	QueryTimeout time.Duration
	// ExactLimit caps the exact engines' state budget per query
	// (requests may ask for less, never more). Default: 2,000,000.
	ExactLimit int
	// MaxBodyBytes caps request bodies (a registration carries a whole
	// database). Default: 16 MiB.
	MaxBodyBytes int64
	// MaxBatchQueries caps the number of elements one batch request
	// may carry. Default: 1024.
	MaxBatchQueries int
	// SampleCap caps the Monte-Carlo draw budget a single request may
	// demand (query MaxSamples and marginals draw counts). Default:
	// 5,000,000 (the library's own estimator default).
	SampleCap int
	// MaxConcurrentQueries bounds engine computations running at once
	// across all endpoints — including computations already abandoned
	// by a 504, so a retrying client cannot stack unbounded work.
	// Worst-case sampling goroutines are MaxConcurrentQueries ×
	// min(request workers, BatchWorkers); lower either knob to shrink
	// that product. Default: 4 × GOMAXPROCS.
	MaxConcurrentQueries int
	// MaxInstances bounds the registry (each instance holds its
	// database, conflict structure and DP tables while live).
	// Registrations beyond it evict the least-recently-used instance,
	// journalling the eviction when a Store is configured.
	// Default: 1024.
	MaxInstances int
	// DeltaRefreshLimit bounds how many of an instance's cached query
	// results a fact mutation delta-refreshes in place: the
	// most-recently-used previous-generation entries are re-executed
	// against the mutated instance (riding its warm per-block factor
	// cache and stratified draw reuse) and re-cached under the new
	// generation, so hot queries stay cache-warm across churn. Entries
	// beyond the limit are dropped as before. 0 picks the default of 8;
	// negative disables refresh (mutations only invalidate).
	DeltaRefreshLimit int
	// WatchWait bounds how long GET .../watch long-polls for a mutation
	// before answering 204 No Content. 0 picks the default of 25s;
	// negative makes watches return immediately.
	WatchWait time.Duration
	// ShedInflight, when positive, sheds query-path requests (query,
	// batch, count, marginals, semantics) with HTTP 503 once that many
	// requests are already inside the server — the backend half of the
	// cluster tier's load shedding, whose coordinator passes the 503
	// through and opens the backend's circuit breaker. Mutations and
	// replication traffic are never shed: dropping an acked write or a
	// follower sync would cost durability, not just latency. 0 (the
	// default) disables shedding.
	ShedInflight int
	// CancelGrace is how long a timed-out request waits for its
	// computation to return cooperatively before giving up on it. The
	// estimation engines stop within one sample chunk of cancellation
	// and hand back partial estimates with their accounting; the grace
	// window is what lets a 504 body carry that partial work instead of
	// discarding it. 0 picks the default of 250ms; negative disables
	// the wait (504s return immediately, without partial results).
	CancelGrace time.Duration
	// EnablePprof mounts net/http/pprof under GET /debug/pprof/. Off by
	// default: the profiles expose internals and cost CPU to collect,
	// so the operator opts in (ocqa-serve -pprof).
	EnablePprof bool
	// EnableDebugQueries mounts the slow-query flight recorder at
	// GET /debug/queries: bounded rings of the last and the slowest
	// query executions with their traces. Off by default for the same
	// reason as pprof — the records expose query text and timing
	// internals — and opted into with ocqa-serve -debug-queries.
	// Enabling it arms a per-request engine trace on query endpoints.
	EnableDebugQueries bool
	// SlowQuery, when positive, logs every query-endpoint request whose
	// total wall time reaches the threshold as one structured warning
	// carrying the full trace (phase spans, convergence terminal). Uses
	// AccessLog when configured, slog's default logger otherwise.
	SlowQuery time.Duration
	// AccessLog, when non-nil, receives one structured line per request
	// (request id, endpoint, status, latency, instance, draws, cache
	// disposition). Nil disables access logging.
	AccessLog *slog.Logger
	// Store, when non-nil, makes the registry durable: every registry
	// operation is journalled to its WAL and New replays its contents
	// into the registry before serving. The server owns neither Open
	// nor Close — the caller (cmd/ocqa-serve) manages the store's
	// lifecycle around the HTTP listener's.
	Store *store.Store
}

func (o *Options) fill() {
	if o.BatchWorkers <= 0 {
		o.BatchWorkers = runtime.GOMAXPROCS(0)
	}
	// Never below 1: a zero-worker pool would leave handleBatch feeding
	// an unbuffered jobs channel no goroutine ever reads — a deadlock,
	// not a slow batch.
	o.BatchWorkers = max(o.BatchWorkers, 1)
	// DefaultWorkers 0 is meaningful (adaptive), only negatives are
	// normalised; a positive pin is still bounded by the batch pool.
	o.DefaultWorkers = max(o.DefaultWorkers, 0)
	o.DefaultWorkers = min(o.DefaultWorkers, o.BatchWorkers)
	switch {
	case o.CacheSize == 0:
		o.CacheSize = 1024
	case o.CacheSize < 0:
		o.CacheSize = 0
	}
	switch {
	case o.QueryTimeout == 0:
		o.QueryTimeout = 30 * time.Second
	case o.QueryTimeout < 0:
		o.QueryTimeout = 0
	}
	if o.ExactLimit <= 0 {
		o.ExactLimit = 2_000_000
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 16 << 20
	}
	if o.MaxBatchQueries <= 0 {
		o.MaxBatchQueries = 1024
	}
	if o.SampleCap <= 0 {
		o.SampleCap = 5_000_000
	}
	if o.MaxConcurrentQueries <= 0 {
		o.MaxConcurrentQueries = 4 * runtime.GOMAXPROCS(0)
	}
	if o.MaxInstances <= 0 {
		o.MaxInstances = 1024
	}
	switch {
	case o.DeltaRefreshLimit == 0:
		o.DeltaRefreshLimit = 8
	case o.DeltaRefreshLimit < 0:
		o.DeltaRefreshLimit = 0
	}
	switch {
	case o.WatchWait == 0:
		o.WatchWait = 25 * time.Second
	case o.WatchWait < 0:
		o.WatchWait = 0
	}
	switch {
	case o.CancelGrace == 0:
		o.CancelGrace = 250 * time.Millisecond
	case o.CancelGrace < 0:
		o.CancelGrace = 0
	}
}

// Server is the HTTP handler. Create with New; it is safe for
// concurrent use by any number of clients.
type Server struct {
	opts  Options
	reg   *registry
	cache *resultCache
	store *store.Store // nil when running memory-only
	met   *serverMetrics
	start time.Time
	mux   *http.ServeMux
	// flight is the slow-query flight recorder, nil unless
	// Options.EnableDebugQueries opted in.
	flight *flightRecorder
	// compute is the server-wide semaphore every engine computation
	// holds while running; see Options.MaxConcurrentQueries.
	compute chan struct{}
	// watch wakes the long-poll watchers of an instance after every
	// mutation (and deregistration) of it.
	watch *watchHub
	// repl holds the replication bookkeeping: per-instance op tails for
	// the feed this backend serves as an owner, and the warm replicas it
	// maintains as a follower.
	repl *replState
	// inflight counts requests currently inside ServeHTTP, for the
	// ShedInflight load-shedding gate.
	inflight atomic.Int64
	// lifecycle is cancelled by Close: background work the server starts
	// on its own authority — post-mutation delta refreshes above all —
	// derives its context from it, so a graceful shutdown stops that
	// work within one sample chunk instead of blocking behind up to
	// DeltaRefreshLimit engine computations per in-flight mutation.
	lifecycle context.Context
	stop      context.CancelFunc
}

// Close cancels the server's lifecycle context: in-flight delta
// refreshes stop at their next cancellation check and long-poll
// watchers return immediately, so the HTTP listener's graceful
// shutdown drains instead of waiting out engine computations no client
// is reading. Close never blocks; calling it more than once is safe.
// The server's store (if any) is still owned by the caller.
func (s *Server) Close() {
	s.stop()
}

// Inflight reports how many requests are currently inside ServeHTTP.
// Cluster tests use it to know when a parked long-poll watcher has
// actually occupied an inflight slot before provoking the shed gate.
func (s *Server) Inflight() int64 {
	return s.inflight.Load()
}

// New builds a Server with its routes installed. With opts.Store set,
// the store's replayed state (snapshot + WAL) is restored into the
// registry first — a warm boot: every previously registered instance
// answers queries without re-registration, rebuilding its sampler
// artifacts lazily on first use.
func New(opts Options) *Server {
	opts.fill()
	lifecycle, stop := context.WithCancel(context.Background())
	s := &Server{
		opts:      opts,
		reg:       newRegistry(opts.MaxInstances),
		cache:     newResultCache(opts.CacheSize),
		store:     opts.Store,
		start:     time.Now(),
		mux:       http.NewServeMux(),
		compute:   make(chan struct{}, opts.MaxConcurrentQueries),
		watch:     newWatchHub(),
		repl:      newReplState(),
		lifecycle: lifecycle,
		stop:      stop,
	}
	s.met = newServerMetrics(s)
	// The engine reports every estimation run (cancelled ones included)
	// through its run hook: one observation per run, far below the <5%
	// instrumentation budget. Process-wide, so the most recently built
	// server owns the histograms — in production there is one.
	engine.SetRunHook(func(ri engine.RunInfo) {
		s.met.engineDraws.Observe(float64(ri.Acct.Draws))
		s.met.engineWall.Observe(ri.Acct.Wall().Seconds())
	})
	if s.store != nil {
		for _, is := range s.store.Instances() {
			inst := ocqa.NewInstance(is.DB, is.Sigma)
			s.reg.restore(is.ID, is.Name, inst.PrepareLazy(), is.Created)
		}
		// A store written under a higher -max-instances may replay more
		// entries than this boot's capacity: evict (and journal) down
		// so the documented memory bound holds from the first request.
		for s.reg.len() > opts.MaxInstances {
			v := s.reg.evictLRU()
			if v == nil {
				break
			}
			s.met.evictions.Inc()
			if err := s.store.LogUnregister(v.id); err != nil {
				s.met.errors.Inc()
			}
		}
	}
	s.mux.HandleFunc("POST /v1/instances", s.handleRegister)
	s.mux.HandleFunc("GET /v1/instances", s.handleList)
	s.mux.HandleFunc("GET /v1/instances/{id}", s.handleInfo)
	s.mux.HandleFunc("DELETE /v1/instances/{id}", s.handleDelete)
	s.mux.HandleFunc("POST /v1/instances/{id}/facts", s.handleInsertFact)
	s.mux.HandleFunc("DELETE /v1/instances/{id}/facts/{index}", s.handleDeleteFact)
	s.mux.HandleFunc("POST /v1/instances/{id}/query", s.handleQuery)
	s.mux.HandleFunc("GET /v1/instances/{id}/watch", s.handleWatch)
	s.mux.HandleFunc("POST /v1/instances/{id}/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/instances/{id}/repairs/count", s.handleCount)
	s.mux.HandleFunc("POST /v1/instances/{id}/marginals", s.handleMarginals)
	s.mux.HandleFunc("POST /v1/instances/{id}/semantics", s.handleSemantics)
	s.mux.HandleFunc("GET /v1/replication/instances", s.handleReplInstances)
	s.mux.HandleFunc("GET /v1/replication/instances/{id}", s.handleReplFeed)
	s.mux.HandleFunc("GET /v1/replication/replicas", s.handleReplReplicas)
	s.mux.HandleFunc("POST /v1/replication/sync", s.handleReplSync)
	s.mux.HandleFunc("POST /v1/replication/promote", s.handleReplPromote)
	s.mux.HandleFunc("GET /v1/replication/store/manifest", s.handleReplManifest)
	s.mux.HandleFunc("GET /v1/replication/store/segments/{name}", s.handleReplSegment)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /varz", s.handleVarz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if opts.EnableDebugQueries {
		s.flight = newFlightRecorder()
		s.mux.HandleFunc("GET /debug/queries", s.handleDebugQueries)
	}
	if opts.EnablePprof {
		// pprof.Index dispatches /debug/pprof/{heap,goroutine,...} off
		// the path suffix, so the subtree route covers the named
		// profiles; the four below have dedicated handlers.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// httpError is an error with the HTTP status it should surface as,
// optionally carrying the partial work of a run stopped early: the
// accounting of the draws spent and the per-tuple estimates computed
// before cancellation, which writeError surfaces in the error body.
type httpError struct {
	status  int
	msg     string
	cost    *CostInfo
	partial []Answer
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// toHTTPError classifies a library error: approximability refusals are
// client errors (422, theorem citation preserved), state-budget
// exhaustion asks the client to switch to sampling, a cancelled
// estimation maps to the status its cause would have received (504 for
// an expired deadline, 499 for a vanished client), anything else is a
// 500.
func toHTTPError(err error) *httpError {
	var he *httpError
	if errors.As(err, &he) {
		return he
	}
	if errors.Is(err, ocqa.ErrNotApproximable) {
		return &httpError{status: http.StatusUnprocessableEntity, msg: err.Error()}
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return &httpError{status: http.StatusGatewayTimeout, msg: "query exceeded the server deadline; the estimation stopped at its next sample chunk"}
	}
	if errors.Is(err, context.Canceled) {
		return &httpError{status: statusClientClosedRequest, msg: "client disconnected; the estimation stopped at its next sample chunk"}
	}
	var sl core.StateLimitError
	if errors.As(err, &sl) {
		return &httpError{status: http.StatusUnprocessableEntity, msg: fmt.Sprintf("exact engine exceeded its state budget (%v); raise limit or use mode \"approx\"", err)}
	}
	return &httpError{status: http.StatusInternalServerError, msg: err.Error()}
}

// recordFailure bumps the counter matching the failure class.
func (s *Server) recordFailure(he *httpError) {
	switch he.status {
	case http.StatusUnprocessableEntity:
		s.met.refusals.Inc()
	case http.StatusGatewayTimeout:
		s.met.timeouts.Inc()
	case statusClientClosedRequest:
		// The client is gone; neither a server error nor a timeout.
	default:
		s.met.errors.Inc()
	}
}

// writeError renders the uniform error body — the request id (already
// stamped on the response header by ServeHTTP) and any partial work the
// failed computation salvaged included — and bumps the counters.
func (s *Server) writeError(w http.ResponseWriter, he *httpError) {
	s.recordFailure(he)
	writeJSON(w, he.status, errorResponse{
		Error:     he.msg,
		RequestID: w.Header().Get("X-Request-Id"),
		Cost:      he.cost,
		Partial:   he.partial,
	})
}

// decodeJSON strictly decodes the body-size-capped request body into v.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) *httpError {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return &httpError{status: http.StatusRequestEntityTooLarge, msg: fmt.Sprintf("request body exceeds the %d-byte limit", mbe.Limit)}
		}
		return badRequest("decoding request body: %v", err)
	}
	return nil
}

// statusClientClosedRequest is nginx's convention for "the client went
// away before the response"; nothing is written to the wire, the code
// only classifies the failure internally.
const statusClientClosedRequest = 499

// classifyCtxErr maps a finished parent context to the failure it
// represents: an expired deadline (batch budget spent) is a 504, a
// cancellation is a vanished client.
func (s *Server) classifyCtxErr(err error) *httpError {
	if errors.Is(err, context.DeadlineExceeded) {
		return &httpError{status: http.StatusGatewayTimeout, msg: fmt.Sprintf("query exceeded the server deadline of %v", s.opts.QueryTimeout)}
	}
	return &httpError{status: statusClientClosedRequest, msg: "client disconnected"}
}

// safeCall runs f, converting a panic anywhere below (an engine
// invariant violation, say) into a 500 instead of tearing down the
// process — essential because runWithDeadline executes f on a bare
// goroutine that net/http's per-connection recover never sees.
func safeCall[T any](f func() (T, *httpError)) (v T, he *httpError) {
	defer func() {
		if p := recover(); p != nil {
			he = &httpError{status: http.StatusInternalServerError, msg: fmt.Sprintf("internal error: %v", p)}
		}
	}()
	return f()
}

// runWithDeadline executes f with a context bounding it by the
// server's query timeout (and the request's own lifetime: a client
// disconnect cancels it). The estimation engines check that context
// between sample chunks, so sampling work genuinely stops shortly
// after the deadline instead of draining its full draw budget. The
// exact engines still have no cancellation points (they are bounded by
// their state budget instead), so the select below keeps the caller's
// wait bounded either way and abandons a non-cooperating computation
// to finish in the background. A request whose parent context is
// already done (client disconnected, or the whole-batch budget spent)
// spawns no computation at all — this is what keeps the abandoned work
// of a batch bounded by the worker pool rather than fanning out per
// element.
func runWithDeadline[T any](s *Server, parent context.Context, f func(ctx context.Context) (T, *httpError)) (T, *httpError) {
	var zero T
	if err := parent.Err(); err != nil {
		return zero, s.classifyCtxErr(err)
	}
	if s.opts.QueryTimeout <= 0 {
		s.compute <- struct{}{}
		defer func() { <-s.compute }()
		return safeCall(func() (T, *httpError) { return f(parent) })
	}
	ctx, cancel := context.WithTimeout(parent, s.opts.QueryTimeout)
	defer cancel()
	type outcome struct {
		v  T
		he *httpError
	}
	ch := make(chan outcome, 1)
	go func() {
		// The semaphore is held for the computation itself — even one
		// the select below has already abandoned — so retry storms
		// against slow queries queue here instead of stacking engines.
		s.compute <- struct{}{}
		defer func() { <-s.compute }()
		v, he := safeCall(func() (T, *httpError) { return f(ctx) })
		ch <- outcome{v, he}
	}()
	select {
	case o := <-ch:
		return o.v, o.he
	case <-ctx.Done():
		// The estimation engines stop within one sample chunk of the
		// cancellation and return their partial estimates with the
		// error; wait briefly for that cooperative return so the
		// failure response can carry the accounting (and, for a lucky
		// race, a computation that finished right at the deadline is
		// served whole). Exact engines have no cancellation points, so
		// the wait is bounded by the grace window, not by them.
		if grace := s.opts.CancelGrace; grace > 0 {
			t := time.NewTimer(grace)
			select {
			case o := <-ch:
				t.Stop()
				return o.v, o.he
			case <-t.C:
			}
		}
		if err := parent.Err(); err != nil {
			return zero, s.classifyCtxErr(err)
		}
		return zero, &httpError{
			status: http.StatusGatewayTimeout,
			msg:    fmt.Sprintf("query exceeded the server deadline of %v", s.opts.QueryTimeout),
		}
	}
}

// clampSamples applies the server's Monte-Carlo draw cap. An omitted
// value is resolved to the library's estimator default first, so an
// operator-lowered cap binds even when the client sends nothing.
func (s *Server) clampSamples(requested int) int {
	if requested <= 0 {
		requested = ocqa.DefaultMaxSamples
	}
	if requested > s.opts.SampleCap {
		return s.opts.SampleCap
	}
	return requested
}

// clampLimit applies the server's exact-engine state-budget cap.
func (s *Server) clampLimit(requested int) int {
	if requested <= 0 || requested > s.opts.ExactLimit {
		return s.opts.ExactLimit
	}
	return requested
}
