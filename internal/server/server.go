// Package server is the concurrent OCQA query service: a long-running
// HTTP layer over the ocqa facade that amortizes the expensive
// per-instance artifacts (conflict structure, block decomposition,
// sequence-sampler DP tables) across many queries and many concurrent
// clients.
//
// Endpoints (all request/response bodies are JSON):
//
//	POST   /v1/instances                      register a database + FD set
//	GET    /v1/instances                      list registered instances
//	GET    /v1/instances/{id}                 inspect one instance
//	DELETE /v1/instances/{id}                 deregister (and drop cached results)
//	POST   /v1/instances/{id}/facts           insert one fact (incremental)
//	DELETE /v1/instances/{id}/facts/{index}   delete the fact at that index
//	POST   /v1/instances/{id}/query           exact or approximate OCQA
//	POST   /v1/instances/{id}/batch           N queries over a bounded worker pool
//	POST   /v1/instances/{id}/repairs/count   |CORep| / |CRS| (and ^1 variants)
//	POST   /v1/instances/{id}/marginals       per-fact survival probabilities
//	POST   /v1/instances/{id}/semantics       the exact repair distribution [[D]]_M
//	GET    /healthz                           liveness
//	GET    /varz                              operational counters
//
// Registration eagerly prepares the instance (ocqa.Prepare), so every
// subsequent query — including thousands running concurrently —
// performs zero sampler constructions. The approximability matrix is
// enforced exactly as in the library: a (generator, constraint-class)
// pair without an FPRAS is refused with HTTP 422 and the error cites
// the paper's theorem. Repeated identical queries are served from a
// bounded LRU result cache.
//
// With Options.Store set, the server is durable: every registry
// operation — register, unregister (explicit or LRU eviction),
// insert-fact, delete-fact — is journalled to the store's write-ahead
// log before it is acknowledged, and New replays the snapshot + WAL so
// a restarted server answers for every previously registered instance
// without re-registration. Fact mutations maintain the conflict
// structure incrementally (copy-on-write) and invalidate the cached
// results and sampler artifacts of the touched instance lazily.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"time"

	ocqa "repro"
	"repro/internal/core"
	"repro/internal/store"
)

// Options configures a Server.
type Options struct {
	// BatchWorkers bounds the worker pool a batch request fans out
	// over. Default: GOMAXPROCS.
	BatchWorkers int
	// CacheSize bounds the LRU result cache (entries). 0 picks the
	// default of 1024; negative disables caching.
	CacheSize int
	// QueryTimeout bounds each query execution; expired queries return
	// HTTP 504. 0 picks the default of 30s; negative disables the
	// deadline.
	QueryTimeout time.Duration
	// ExactLimit caps the exact engines' state budget per query
	// (requests may ask for less, never more). Default: 2,000,000.
	ExactLimit int
	// MaxBodyBytes caps request bodies (a registration carries a whole
	// database). Default: 16 MiB.
	MaxBodyBytes int64
	// MaxBatchQueries caps the number of elements one batch request
	// may carry. Default: 1024.
	MaxBatchQueries int
	// SampleCap caps the Monte-Carlo draw budget a single request may
	// demand (query MaxSamples and marginals draw counts). Default:
	// 5,000,000 (the library's own estimator default).
	SampleCap int
	// MaxConcurrentQueries bounds engine computations running at once
	// across all endpoints — including computations already abandoned
	// by a 504, so a retrying client cannot stack unbounded work.
	// Worst-case sampling goroutines are MaxConcurrentQueries ×
	// min(request workers, BatchWorkers); lower either knob to shrink
	// that product. Default: 4 × GOMAXPROCS.
	MaxConcurrentQueries int
	// MaxInstances bounds the registry (each instance holds its
	// database, conflict structure and DP tables while live).
	// Registrations beyond it evict the least-recently-used instance,
	// journalling the eviction when a Store is configured.
	// Default: 1024.
	MaxInstances int
	// Store, when non-nil, makes the registry durable: every registry
	// operation is journalled to its WAL and New replays its contents
	// into the registry before serving. The server owns neither Open
	// nor Close — the caller (cmd/ocqa-serve) manages the store's
	// lifecycle around the HTTP listener's.
	Store *store.Store
}

func (o *Options) fill() {
	if o.BatchWorkers <= 0 {
		o.BatchWorkers = runtime.GOMAXPROCS(0)
	}
	// Never below 1: a zero-worker pool would leave handleBatch feeding
	// an unbuffered jobs channel no goroutine ever reads — a deadlock,
	// not a slow batch.
	o.BatchWorkers = max(o.BatchWorkers, 1)
	switch {
	case o.CacheSize == 0:
		o.CacheSize = 1024
	case o.CacheSize < 0:
		o.CacheSize = 0
	}
	switch {
	case o.QueryTimeout == 0:
		o.QueryTimeout = 30 * time.Second
	case o.QueryTimeout < 0:
		o.QueryTimeout = 0
	}
	if o.ExactLimit <= 0 {
		o.ExactLimit = 2_000_000
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 16 << 20
	}
	if o.MaxBatchQueries <= 0 {
		o.MaxBatchQueries = 1024
	}
	if o.SampleCap <= 0 {
		o.SampleCap = 5_000_000
	}
	if o.MaxConcurrentQueries <= 0 {
		o.MaxConcurrentQueries = 4 * runtime.GOMAXPROCS(0)
	}
	if o.MaxInstances <= 0 {
		o.MaxInstances = 1024
	}
}

// Server is the HTTP handler. Create with New; it is safe for
// concurrent use by any number of clients.
type Server struct {
	opts     Options
	reg      *registry
	cache    *resultCache
	store    *store.Store // nil when running memory-only
	counters counters
	start    time.Time
	mux      *http.ServeMux
	// compute is the server-wide semaphore every engine computation
	// holds while running; see Options.MaxConcurrentQueries.
	compute chan struct{}
}

// New builds a Server with its routes installed. With opts.Store set,
// the store's replayed state (snapshot + WAL) is restored into the
// registry first — a warm boot: every previously registered instance
// answers queries without re-registration, rebuilding its sampler
// artifacts lazily on first use.
func New(opts Options) *Server {
	opts.fill()
	s := &Server{
		opts:    opts,
		reg:     newRegistry(opts.MaxInstances),
		cache:   newResultCache(opts.CacheSize),
		store:   opts.Store,
		start:   time.Now(),
		mux:     http.NewServeMux(),
		compute: make(chan struct{}, opts.MaxConcurrentQueries),
	}
	if s.store != nil {
		for _, is := range s.store.Instances() {
			inst := ocqa.NewInstance(is.DB, is.Sigma)
			s.reg.restore(is.ID, is.Name, inst.PrepareLazy(), is.Created)
		}
		// A store written under a higher -max-instances may replay more
		// entries than this boot's capacity: evict (and journal) down
		// so the documented memory bound holds from the first request.
		for s.reg.len() > opts.MaxInstances {
			v := s.reg.evictLRU()
			if v == nil {
				break
			}
			s.counters.evictions.Add(1)
			if err := s.store.LogUnregister(v.id); err != nil {
				s.counters.errors.Add(1)
			}
		}
	}
	s.mux.HandleFunc("POST /v1/instances", s.handleRegister)
	s.mux.HandleFunc("GET /v1/instances", s.handleList)
	s.mux.HandleFunc("GET /v1/instances/{id}", s.handleInfo)
	s.mux.HandleFunc("DELETE /v1/instances/{id}", s.handleDelete)
	s.mux.HandleFunc("POST /v1/instances/{id}/facts", s.handleInsertFact)
	s.mux.HandleFunc("DELETE /v1/instances/{id}/facts/{index}", s.handleDeleteFact)
	s.mux.HandleFunc("POST /v1/instances/{id}/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/instances/{id}/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/instances/{id}/repairs/count", s.handleCount)
	s.mux.HandleFunc("POST /v1/instances/{id}/marginals", s.handleMarginals)
	s.mux.HandleFunc("POST /v1/instances/{id}/semantics", s.handleSemantics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /varz", s.handleVarz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// httpError is an error with the HTTP status it should surface as.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{http.StatusBadRequest, fmt.Sprintf(format, args...)}
}

// toHTTPError classifies a library error: approximability refusals are
// client errors (422, theorem citation preserved), state-budget
// exhaustion asks the client to switch to sampling, a cancelled
// estimation maps to the status its cause would have received (504 for
// an expired deadline, 499 for a vanished client), anything else is a
// 500.
func toHTTPError(err error) *httpError {
	var he *httpError
	if errors.As(err, &he) {
		return he
	}
	if errors.Is(err, ocqa.ErrNotApproximable) {
		return &httpError{http.StatusUnprocessableEntity, err.Error()}
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return &httpError{http.StatusGatewayTimeout,
			"query exceeded the server deadline; the estimation stopped at its next sample chunk"}
	}
	if errors.Is(err, context.Canceled) {
		return &httpError{statusClientClosedRequest, "client disconnected; the estimation stopped at its next sample chunk"}
	}
	var sl core.StateLimitError
	if errors.As(err, &sl) {
		return &httpError{http.StatusUnprocessableEntity,
			fmt.Sprintf("exact engine exceeded its state budget (%v); raise limit or use mode \"approx\"", err)}
	}
	return &httpError{http.StatusInternalServerError, err.Error()}
}

// recordFailure bumps the counter matching the failure class.
func (s *Server) recordFailure(he *httpError) {
	switch he.status {
	case http.StatusUnprocessableEntity:
		s.counters.refusals.Add(1)
	case http.StatusGatewayTimeout:
		s.counters.timeouts.Add(1)
	case statusClientClosedRequest:
		// The client is gone; neither a server error nor a timeout.
	default:
		s.counters.errors.Add(1)
	}
}

// writeError renders the uniform error body and bumps the counters.
func (s *Server) writeError(w http.ResponseWriter, he *httpError) {
	s.recordFailure(he)
	writeJSON(w, he.status, errorResponse{Error: he.msg})
}

// decodeJSON strictly decodes the body-size-capped request body into v.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) *httpError {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return &httpError{http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds the %d-byte limit", mbe.Limit)}
		}
		return badRequest("decoding request body: %v", err)
	}
	return nil
}

// statusClientClosedRequest is nginx's convention for "the client went
// away before the response"; nothing is written to the wire, the code
// only classifies the failure internally.
const statusClientClosedRequest = 499

// classifyCtxErr maps a finished parent context to the failure it
// represents: an expired deadline (batch budget spent) is a 504, a
// cancellation is a vanished client.
func (s *Server) classifyCtxErr(err error) *httpError {
	if errors.Is(err, context.DeadlineExceeded) {
		return &httpError{http.StatusGatewayTimeout,
			fmt.Sprintf("query exceeded the server deadline of %v", s.opts.QueryTimeout)}
	}
	return &httpError{statusClientClosedRequest, "client disconnected"}
}

// safeCall runs f, converting a panic anywhere below (an engine
// invariant violation, say) into a 500 instead of tearing down the
// process — essential because runWithDeadline executes f on a bare
// goroutine that net/http's per-connection recover never sees.
func safeCall[T any](f func() (T, *httpError)) (v T, he *httpError) {
	defer func() {
		if p := recover(); p != nil {
			he = &httpError{http.StatusInternalServerError, fmt.Sprintf("internal error: %v", p)}
		}
	}()
	return f()
}

// runWithDeadline executes f with a context bounding it by the
// server's query timeout (and the request's own lifetime: a client
// disconnect cancels it). The estimation engines check that context
// between sample chunks, so sampling work genuinely stops shortly
// after the deadline instead of draining its full draw budget. The
// exact engines still have no cancellation points (they are bounded by
// their state budget instead), so the select below keeps the caller's
// wait bounded either way and abandons a non-cooperating computation
// to finish in the background. A request whose parent context is
// already done (client disconnected, or the whole-batch budget spent)
// spawns no computation at all — this is what keeps the abandoned work
// of a batch bounded by the worker pool rather than fanning out per
// element.
func runWithDeadline[T any](s *Server, parent context.Context, f func(ctx context.Context) (T, *httpError)) (T, *httpError) {
	var zero T
	if err := parent.Err(); err != nil {
		return zero, s.classifyCtxErr(err)
	}
	if s.opts.QueryTimeout <= 0 {
		s.compute <- struct{}{}
		defer func() { <-s.compute }()
		return safeCall(func() (T, *httpError) { return f(parent) })
	}
	ctx, cancel := context.WithTimeout(parent, s.opts.QueryTimeout)
	defer cancel()
	type outcome struct {
		v  T
		he *httpError
	}
	ch := make(chan outcome, 1)
	go func() {
		// The semaphore is held for the computation itself — even one
		// the select below has already abandoned — so retry storms
		// against slow queries queue here instead of stacking engines.
		s.compute <- struct{}{}
		defer func() { <-s.compute }()
		v, he := safeCall(func() (T, *httpError) { return f(ctx) })
		ch <- outcome{v, he}
	}()
	select {
	case o := <-ch:
		return o.v, o.he
	case <-ctx.Done():
		if err := parent.Err(); err != nil {
			return zero, s.classifyCtxErr(err)
		}
		return zero, &httpError{http.StatusGatewayTimeout,
			fmt.Sprintf("query exceeded the server deadline of %v", s.opts.QueryTimeout)}
	}
}

// clampSamples applies the server's Monte-Carlo draw cap. An omitted
// value is resolved to the library's estimator default first, so an
// operator-lowered cap binds even when the client sends nothing.
func (s *Server) clampSamples(requested int) int {
	if requested <= 0 {
		requested = ocqa.DefaultMaxSamples
	}
	if requested > s.opts.SampleCap {
		return s.opts.SampleCap
	}
	return requested
}

// clampLimit applies the server's exact-engine state-budget cap.
func (s *Server) clampLimit(requested int) int {
	if requested <= 0 || requested > s.opts.ExactLimit {
		return s.opts.ExactLimit
	}
	return requested
}
