package server

// Tests for the per-query introspection surface: ?explain=1 plans and
// traces on the query/batch/count/marginals endpoints, the cached
// zero-draw explain, the /debug/queries flight recorder (bounded under
// concurrent load, gated off by default), the -slow-query log, and the
// build-info identity on /varz and /metrics.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	ocqa "repro"
)

// postExplainQuery posts one query with ?explain=1 and decodes the
// response.
func postExplainQuery(t *testing.T, base, id string, req QueryRequest) QueryResponse {
	t.Helper()
	var resp QueryResponse
	status := do(t, http.MethodPost, base+"/v1/instances/"+id+"/query?explain=1", req, &resp)
	if status != http.StatusOK {
		t.Fatalf("explain query: status %d", status)
	}
	return resp
}

// TestExplainQuery is the endpoint e2e: with ?explain=1 an approx
// query returns the pre-sampling plan, the phase spans and the
// convergence curve; without it the response carries no explain
// payload at all (trace off by default).
func TestExplainQuery(t *testing.T) {
	ts, _ := newTestServer(t, Options{CacheSize: -1})
	reg := register(t, ts.URL, pkFacts, pkFDs)
	req := QueryRequest{
		Generator: "ur", Mode: "approx",
		Query:   "Ans() :- Emp(1, 'Alice')",
		Epsilon: 0.2, Delta: 0.1, Seed: 5,
	}

	var plain QueryResponse
	if status := do(t, http.MethodPost, ts.URL+"/v1/instances/"+reg.ID+"/query", req, &plain); status != http.StatusOK {
		t.Fatalf("plain query: status %d", status)
	}
	if plain.Explain != nil {
		t.Fatalf("response without ?explain=1 carries an explain payload: %+v", plain.Explain)
	}

	resp := postExplainQuery(t, ts.URL, reg.ID, req)
	ex := resp.Explain
	if ex == nil {
		t.Fatal("?explain=1 response carries no explain payload")
	}
	if ex.Plan.Route != ocqa.RouteDKLR {
		t.Fatalf("plan route = %q, want %q", ex.Plan.Route, ocqa.RouteDKLR)
	}
	if ex.Plan.PredictedDraws <= 0 || ex.Plan.RequiredDraws < ex.Plan.PredictedDraws {
		t.Fatalf("implausible plan budget: %+v", ex.Plan)
	}
	if ex.ActualDraws <= 0 {
		t.Fatalf("explain reports %d actual draws for a sampling run", ex.ActualDraws)
	}
	if len(ex.Convergence) == 0 {
		t.Fatal("explain carries no convergence curve")
	}
	last := ex.Convergence[len(ex.Convergence)-1]
	if last.Draws <= 0 || last.HalfWidth <= 0 {
		t.Fatalf("malformed terminal checkpoint: %+v", last)
	}
	var sawPlan, sawSample bool
	for _, sp := range ex.Spans {
		if sp.Name == "plan" {
			sawPlan = true
		}
		if strings.HasPrefix(sp.Name, "sample:") {
			sawSample = true
		}
	}
	if !sawPlan || !sawSample {
		t.Fatalf("spans missing plan/sample phases: %+v", ex.Spans)
	}
}

// TestExplainDeterministicCurve: for a fixed (seed, workers) pair the
// convergence curve is bitwise-identical across two (uncached) runs.
func TestExplainDeterministicCurve(t *testing.T) {
	ts, _ := newTestServer(t, Options{CacheSize: -1})
	reg := register(t, ts.URL, pkFacts, pkFDs)
	req := QueryRequest{
		Generator: "ur", Mode: "approx",
		Query:   "Ans(n) :- Emp(i, n)",
		Epsilon: 0.2, Delta: 0.1, Seed: 9, Workers: 2,
	}
	c1 := postExplainQuery(t, ts.URL, reg.ID, req).Explain
	c2 := postExplainQuery(t, ts.URL, reg.ID, req).Explain
	if c1 == nil || c2 == nil {
		t.Fatal("missing explain payload")
	}
	b1, _ := json.Marshal(c1.Convergence)
	b2, _ := json.Marshal(c2.Convergence)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("curves differ across identical runs:\n%s\nvs\n%s", b1, b2)
	}
	if c1.Plan.Targets != len(postExplainQuery(t, ts.URL, reg.ID, req).Answers) {
		t.Fatalf("plan targets %d != answer count", c1.Plan.Targets)
	}
}

// TestExplainCachedHit: a cache hit with ?explain=1 reports the
// zero-draw cached plan — and the hit itself stays marked Cached.
func TestExplainCachedHit(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	reg := register(t, ts.URL, pkFacts, pkFDs)
	req := QueryRequest{
		Generator: "ur", Mode: "approx",
		Query:   "Ans() :- Emp(1, 'Alice')",
		Epsilon: 0.2, Delta: 0.1, Seed: 5,
	}
	first := postExplainQuery(t, ts.URL, reg.ID, req)
	if first.Cached || first.Explain == nil || first.Explain.Plan.Route == ocqa.RouteCached {
		t.Fatalf("first execution looks cached: %+v", first.Explain)
	}
	second := postExplainQuery(t, ts.URL, reg.ID, req)
	if !second.Cached || second.Cost == nil || !second.Cost.Cached {
		t.Fatalf("second execution not served from cache: %+v", second)
	}
	ex := second.Explain
	if ex == nil {
		t.Fatal("cache hit with ?explain=1 carries no explain payload")
	}
	if ex.Plan.Route != ocqa.RouteCached || !ex.Plan.Cached {
		t.Fatalf("cache hit plan = %+v, want the cached route", ex.Plan)
	}
	if ex.ActualDraws != 0 || ex.Plan.PredictedDraws != 0 {
		t.Fatalf("cached explain reports draws: %+v", ex)
	}
	if len(ex.Spans) != 0 || len(ex.Convergence) != 0 {
		t.Fatalf("cached explain carries another run's trace: %+v", ex)
	}
	// The cache key ignores explain: a plain request now also hits.
	var plain QueryResponse
	if status := do(t, http.MethodPost, ts.URL+"/v1/instances/"+reg.ID+"/query", req, &plain); status != http.StatusOK {
		t.Fatalf("plain query: status %d", status)
	}
	if !plain.Cached || plain.Explain != nil {
		t.Fatalf("plain request after explain run: cached=%v explain=%v", plain.Cached, plain.Explain)
	}
}

// TestExplainBatchCountMarginals: the remaining ?explain=1 surfaces.
func TestExplainBatchCountMarginals(t *testing.T) {
	ts, _ := newTestServer(t, Options{CacheSize: -1})
	reg := register(t, ts.URL, pkFacts, pkFDs)

	var batch BatchResponse
	breq := BatchRequest{Queries: []QueryRequest{
		{Generator: "ur", Mode: "approx", Query: "Ans() :- Emp(1, 'Alice')", Epsilon: 0.2, Delta: 0.1, Seed: 5},
		{Generator: "ur", Mode: "exact", Query: "Ans() :- Emp(1, 'Alice')"},
	}}
	if status := do(t, http.MethodPost, ts.URL+"/v1/instances/"+reg.ID+"/batch?explain=1", breq, &batch); status != http.StatusOK {
		t.Fatalf("batch: status %d", status)
	}
	for i, res := range batch.Results {
		if res.Result == nil || res.Result.Explain == nil {
			t.Fatalf("batch element %d carries no explain payload: %+v", i, res)
		}
	}
	if got := batch.Results[1].Result.Explain.Plan.Route; got != ocqa.RouteExactDP {
		t.Fatalf("exact batch element route = %q, want %q", got, ocqa.RouteExactDP)
	}

	var count CountResponse
	if status := do(t, http.MethodPost, ts.URL+"/v1/instances/"+reg.ID+"/repairs/count?explain=1",
		CountRequest{}, &count); status != http.StatusOK {
		t.Fatalf("count: status %d", status)
	}
	if count.Explain == nil || count.Explain.Plan.Route != ocqa.RouteExactDP {
		t.Fatalf("count explain = %+v", count.Explain)
	}

	var marg MarginalsResponse
	mreq := MarginalsRequest{Generator: "ur", Mode: "approx", Seed: 3, MaxSamples: 2000}
	if status := do(t, http.MethodPost, ts.URL+"/v1/instances/"+reg.ID+"/marginals?explain=1",
		mreq, &marg); status != http.StatusOK {
		t.Fatalf("marginals: status %d", status)
	}
	ex := marg.Explain
	if ex == nil {
		t.Fatal("marginals explain missing")
	}
	if ex.Plan.Targets != 5 || ex.Plan.PredictedDraws != 2000 || ex.ActualDraws <= 0 {
		t.Fatalf("marginals plan = %+v actual=%d", ex.Plan, ex.ActualDraws)
	}
}

// TestFlightRecorderGatedOff: without EnableDebugQueries the endpoint
// does not exist — the same opt-in contract as pprof.
func TestFlightRecorderGatedOff(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/debug/queries")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ungated /debug/queries: status %d, want 404", resp.StatusCode)
	}
}

// TestFlightRecorderBounded: under a concurrent query storm the rings
// stay bounded at their documented sizes while the total keeps
// counting, and the records carry traces.
func TestFlightRecorderBounded(t *testing.T) {
	ts, _ := newTestServer(t, Options{EnableDebugQueries: true, CacheSize: -1})
	reg := register(t, ts.URL, pkFacts, pkFDs)

	const queries = 3 * flightRecentSize
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	jobs := make(chan int)
	errs := make(chan error, queries)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				body := jsonBytes(QueryRequest{
					Generator: "ur", Mode: "approx",
					Query:   "Ans() :- Emp(1, 'Alice')",
					Epsilon: 0.3, Delta: 0.2, Seed: int64(i + 1),
				})
				resp, err := http.Post(ts.URL+"/v1/instances/"+reg.ID+"/query",
					"application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("query %d: status %d", i, resp.StatusCode)
				}
			}
		}()
	}
	for i := 0; i < queries; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var fr flightResponse
	if status := do(t, http.MethodGet, ts.URL+"/debug/queries", nil, &fr); status != http.StatusOK {
		t.Fatalf("/debug/queries: status %d", status)
	}
	if fr.Total != queries {
		t.Fatalf("recorder total = %d, want %d", fr.Total, queries)
	}
	if len(fr.Recent) != flightRecentSize {
		t.Fatalf("recent ring holds %d records, want %d", len(fr.Recent), flightRecentSize)
	}
	if len(fr.Slowest) > flightSlowestSize {
		t.Fatalf("slowest ring holds %d records, cap %d", len(fr.Slowest), flightSlowestSize)
	}
	for i := 1; i < len(fr.Slowest); i++ {
		if fr.Slowest[i].DurationSeconds > fr.Slowest[i-1].DurationSeconds {
			t.Fatalf("slowest ring unsorted at %d", i)
		}
	}
	var traced bool
	for _, rec := range fr.Recent {
		if rec.RequestID == "" || rec.Endpoint != "query" {
			t.Fatalf("malformed record: %+v", rec)
		}
		if len(rec.Spans) > 0 && len(rec.Convergence) > 0 {
			traced = true
		}
	}
	if !traced {
		t.Fatal("no recorded request carries a trace")
	}

	// The text rendering serves too.
	resp, err := http.Get(ts.URL + "/debug/queries?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "flight recorder:") {
		t.Fatalf("text rendering missing header:\n%s", body)
	}
}

// TestSlowQueryLog: a threshold of 1ns makes every query slow; the log
// line must carry the request id, the trace spans and the convergence
// terminal.
func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewTextHandler(&lockedWriter{w: &buf, mu: &mu}, nil))
	ts, _ := newTestServer(t, Options{SlowQuery: time.Nanosecond, AccessLog: logger, CacheSize: -1})
	reg := register(t, ts.URL, pkFacts, pkFDs)
	var resp QueryResponse
	if status := do(t, http.MethodPost, ts.URL+"/v1/instances/"+reg.ID+"/query", QueryRequest{
		Generator: "ur", Mode: "approx",
		Query:   "Ans() :- Emp(1, 'Alice')",
		Epsilon: 0.2, Delta: 0.1, Seed: 5,
	}, &resp); status != http.StatusOK {
		t.Fatalf("query: status %d", status)
	}
	mu.Lock()
	logged := buf.String()
	mu.Unlock()
	if !strings.Contains(logged, "slow query") {
		t.Fatalf("no slow-query line logged:\n%s", logged)
	}
	if !strings.Contains(logged, "request_id=") || !strings.Contains(logged, "endpoint=query") {
		t.Fatalf("slow-query line missing identity attrs:\n%s", logged)
	}
	if !strings.Contains(logged, "spans.") || !strings.Contains(logged, "convergence.final_draws=") {
		t.Fatalf("slow-query line missing trace payload:\n%s", logged)
	}
}

// jsonBytes marshals v, panicking on failure (test fixtures only).
func jsonBytes(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

// lockedWriter serialises concurrent handler writes into the buffer.
type lockedWriter struct {
	w  io.Writer
	mu *sync.Mutex
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// TestBuildInfoExposed: /varz carries the build object and /metrics the
// ocqa_build_info gauge, agreeing on the Go version.
func TestBuildInfoExposed(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	var v struct {
		Build struct {
			GitCommit  string `json:"git_commit"`
			GoVersion  string `json:"go_version"`
			NumCPU     int    `json:"num_cpu"`
			GoMaxProcs int    `json:"gomaxprocs"`
		} `json:"build"`
	}
	if status := do(t, http.MethodGet, ts.URL+"/varz", nil, &v); status != http.StatusOK {
		t.Fatalf("/varz: status %d", status)
	}
	if v.Build.GoVersion != runtime.Version() {
		t.Fatalf("varz build.go_version = %q, want %q", v.Build.GoVersion, runtime.Version())
	}
	if v.Build.GitCommit == "" || v.Build.NumCPU < 1 || v.Build.GoMaxProcs < 1 {
		t.Fatalf("varz build incomplete: %+v", v.Build)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	want := fmt.Sprintf("ocqa_build_info{git_commit=%q,go_version=%q,gomaxprocs=%q} 1",
		v.Build.GitCommit, v.Build.GoVersion, fmt.Sprint(v.Build.GoMaxProcs))
	if !strings.Contains(string(body), want) {
		t.Fatalf("/metrics missing %s in:\n%s", want, grepLines(string(body), "ocqa_build_info"))
	}
}

// grepLines returns the lines of s containing sub (for terse failures).
func grepLines(s, sub string) string {
	var out []string
	for _, ln := range strings.Split(s, "\n") {
		if strings.Contains(ln, sub) {
			out = append(out, ln)
		}
	}
	return strings.Join(out, "\n")
}
