package server

// Server-level tests of the delta-aware incremental estimation layer:
// mutation handlers threading Prepared.ApplyInsert/ApplyDelete, the
// result cache's post-mutation delta-refresh, the /watch long-poll, the
// reused-draws cost accounting, and the delta counter families on
// /varz and /metrics. The names deliberately match the metrics-lint CI
// job's -run filter (Metrics|Varz|Cost|Cache), so the whole file runs
// under -race there too.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"
)

// stratifiedFixture builds the two-block fixture whose single witness
// cluster is too large to enumerate (65×65 outcomes > the exact cap),
// forcing the delta path onto a sampled stratum: blocks 'b0' and 'b1'
// of 64 facts each under the key FD.
func stratifiedFixture() string {
	var b strings.Builder
	for blk := 0; blk < 2; blk++ {
		for i := 0; i < 64; i++ {
			fmt.Fprintf(&b, "R(b%d,v%d_%d)\n", blk, blk, i)
		}
	}
	return b.String()
}

const stratifiedQuery = "Ans() :- R('b0', x), R('b1', y)"

func TestCacheDeltaRefreshAfterMutation(t *testing.T) {
	ts, s := newTestServer(t, Options{})
	reg := register(t, ts.URL, pkFacts, pkFDs)
	url := ts.URL + "/v1/instances/" + reg.ID

	q := QueryRequest{Generator: "ur", Mode: "exact", Query: "Ans(n) :- Emp(i, n)"}
	var cold QueryResponse
	if status := do(t, http.MethodPost, url+"/query", q, &cold); status != http.StatusOK {
		t.Fatalf("cold query: status %d", status)
	}
	if cold.Cached {
		t.Fatal("first query served from an empty cache")
	}

	var mut FactMutationResponse
	if status := do(t, http.MethodPost, url+"/facts", InsertFactRequest{Fact: "Emp(2,Carol)"}, &mut); status != http.StatusOK {
		t.Fatalf("insert: status %d", status)
	}

	// The mutation delta-refreshed the cached entry in place: the next
	// lookup is a HIT, and its answers are the new generation's — equal
	// bitwise to a from-scratch registration of the mutated database.
	var warm QueryResponse
	if status := do(t, http.MethodPost, url+"/query", q, &warm); status != http.StatusOK {
		t.Fatalf("post-mutation query: status %d", status)
	}
	if !warm.Cached {
		t.Fatal("post-mutation query missed the cache: delta-refresh did not re-cache the entry")
	}
	fresh := register(t, ts.URL, pkFacts+"Emp(2,Carol)\n", pkFDs)
	var want QueryResponse
	if status := do(t, http.MethodPost, ts.URL+"/v1/instances/"+fresh.ID+"/query", q, &want); status != http.StatusOK {
		t.Fatalf("fresh query: status %d", status)
	}
	if !reflect.DeepEqual(warm.Answers, want.Answers) {
		t.Fatalf("refreshed answers %+v != from-scratch %+v", warm.Answers, want.Answers)
	}
	if reflect.DeepEqual(warm.Answers, cold.Answers) {
		t.Fatalf("refreshed answers unchanged by a conflicting insert: %+v", warm.Answers)
	}
	if n := s.met.cacheRefreshes.Value(); n < 1 {
		t.Fatalf("cacheRefreshes = %d, want >= 1", n)
	}
	if s.met.deltaRefreshLatency.Count() < 1 {
		t.Fatal("delta-refresh latency histogram observed nothing")
	}
}

func TestCacheDeltaRefreshDisabled(t *testing.T) {
	ts, s := newTestServer(t, Options{DeltaRefreshLimit: -1})
	reg := register(t, ts.URL, pkFacts, pkFDs)
	url := ts.URL + "/v1/instances/" + reg.ID
	q := QueryRequest{Generator: "ur", Mode: "exact", Query: "Ans(n) :- Emp(i, n)"}
	var resp QueryResponse
	if status := do(t, http.MethodPost, url+"/query", q, &resp); status != http.StatusOK {
		t.Fatalf("query: status %d", status)
	}
	var mut FactMutationResponse
	if status := do(t, http.MethodPost, url+"/facts", InsertFactRequest{Fact: "Emp(2,Carol)"}, &mut); status != http.StatusOK {
		t.Fatalf("insert: status %d", status)
	}
	if status := do(t, http.MethodPost, url+"/query", q, &resp); status != http.StatusOK {
		t.Fatalf("post-mutation query: status %d", status)
	}
	if resp.Cached {
		t.Fatal("refresh disabled, yet the post-mutation query hit the cache")
	}
	if n := s.met.cacheRefreshes.Value(); n != 0 {
		t.Fatalf("cacheRefreshes = %d with refresh disabled", n)
	}
}

// TestCostReusedDrawsAcrossMutation drives the delta-stratified
// estimator through the HTTP API: after a mutation warms the prepared
// instance, the first approx query pays fresh draws for its sampled
// stratum and a later query (different seed, so a different cache key)
// reuses the stored stratum statistics — zero fresh draws, the reused
// weight reported in cost.reused_draws.
func TestCostReusedDrawsAcrossMutation(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	reg := register(t, ts.URL, stratifiedFixture(), "R: A1 -> A2\n")
	url := ts.URL + "/v1/instances/" + reg.ID

	// Warm the delta state: an insert into a third block leaves the
	// query's witnesses (over b0 and b1) untouched.
	var mut FactMutationResponse
	if status := do(t, http.MethodPost, url+"/facts", InsertFactRequest{Fact: "R(b2,z)"}, &mut); status != http.StatusOK {
		t.Fatalf("insert: status %d", status)
	}

	q := QueryRequest{Generator: "ur", Mode: "approx", Query: stratifiedQuery,
		Epsilon: 0.25, Delta: 0.2, Seed: 5, Workers: 1}
	var first QueryResponse
	if status := do(t, http.MethodPost, url+"/query", q, &first); status != http.StatusOK {
		t.Fatalf("first approx query: status %d", status)
	}
	if first.Cost == nil || first.Cost.Draws == 0 {
		t.Fatalf("first warm query reported no fresh draws: %+v", first.Cost)
	}
	if first.Cost.ReusedDraws != 0 {
		t.Fatalf("first warm query reused %d draws with no prior stratum", first.Cost.ReusedDraws)
	}

	q2 := q
	q2.Seed = 6 // different cache key, same stratum signature
	var second QueryResponse
	if status := do(t, http.MethodPost, url+"/query", q2, &second); status != http.StatusOK {
		t.Fatalf("second approx query: status %d", status)
	}
	if second.Cost == nil || second.Cost.ReusedDraws == 0 {
		t.Fatalf("second query reused nothing: %+v", second.Cost)
	}
	if second.Cost.Draws != 0 {
		t.Fatalf("second query drew %d fresh samples despite a reusable stratum", second.Cost.Draws)
	}
	if second.Cost.ReusedDraws != first.Cost.Draws {
		t.Fatalf("reused_draws = %d, want the first run's fresh draws %d",
			second.Cost.ReusedDraws, first.Cost.Draws)
	}
	if second.Answers[0].Value != first.Answers[0].Value {
		t.Fatalf("reused estimate %v != original %v", second.Answers[0].Value, first.Answers[0].Value)
	}
}

func TestDeltaVarzAndMetricsExposition(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	reg := register(t, ts.URL, pkFacts, pkFDs)
	url := ts.URL + "/v1/instances/" + reg.ID

	q := QueryRequest{Generator: "ur", Mode: "exact", Query: "Ans(n) :- Emp(i, n)"}
	var resp QueryResponse
	if status := do(t, http.MethodPost, url+"/query", q, &resp); status != http.StatusOK {
		t.Fatalf("query: status %d", status)
	}
	var mut FactMutationResponse
	if status := do(t, http.MethodPost, url+"/facts", InsertFactRequest{Fact: "Emp(2,Carol)"}, &mut); status != http.StatusOK {
		t.Fatalf("insert: status %d", status)
	}

	var v map[string]any
	if status := do(t, http.MethodGet, ts.URL+"/varz", nil, &v); status != http.StatusOK {
		t.Fatalf("varz: status %d", status)
	}
	for _, field := range []string{
		"delta_refreshes", "delta_factor_cache_hits", "delta_factor_cache_misses",
		"delta_reused_draws", "result_cache_delta_refreshes",
	} {
		if _, ok := v[field]; !ok {
			t.Errorf("varz missing %q", field)
		}
	}
	// The mutation delta-refreshed one exact cached entry, which the
	// always-on exact delta path serves: both layers must have moved.
	if n, _ := v["result_cache_delta_refreshes"].(float64); n < 1 {
		t.Errorf("result_cache_delta_refreshes = %v, want >= 1", v["result_cache_delta_refreshes"])
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, family := range []string{
		"ocqa_delta_refreshes_total",
		"ocqa_delta_factor_cache_hits_total",
		"ocqa_delta_factor_cache_misses_total",
		"ocqa_delta_reused_draws_total",
		"ocqa_result_cache_delta_refreshes_total",
		"ocqa_delta_refresh_seconds",
	} {
		if !strings.Contains(text, "# TYPE "+family+" ") {
			t.Errorf("/metrics missing family %q", family)
		}
	}
}

// TestWatchLongPollServesRefreshedCache covers the /watch endpoint:
// since=0 answers immediately with the current generation, a watch at
// the current generation blocks until a mutation lands and then returns
// the refreshed answer, and an idle window answers 204.
func TestWatchLongPollServesRefreshedCache(t *testing.T) {
	ts, _ := newTestServer(t, Options{WatchWait: 5 * time.Second})
	reg := register(t, ts.URL, pkFacts, pkFDs)
	url := ts.URL + "/v1/instances/" + reg.ID
	watchURL := url + "/watch?generator=ur&mode=exact&query=" +
		"Ans(n)%20:-%20Emp(i,%20n)"

	var first WatchResponse
	if status := do(t, http.MethodGet, watchURL, nil, &first); status != http.StatusOK {
		t.Fatalf("initial watch: status %d", status)
	}
	if first.Gen != 1 || first.Result == nil || len(first.Result.Answers) == 0 {
		t.Fatalf("initial watch = %+v, want gen 1 with answers", first)
	}

	// Long-poll at the current generation while a mutation lands.
	type watchOut struct {
		status int
		resp   WatchResponse
		err    error
	}
	ch := make(chan watchOut, 1)
	go func() {
		var out watchOut
		r, err := http.Get(fmt.Sprintf("%s&since=%d", watchURL, first.Gen))
		if err != nil {
			out.err = err
		} else {
			defer r.Body.Close()
			out.status = r.StatusCode
			out.err = json.NewDecoder(r.Body).Decode(&out.resp)
		}
		ch <- out
	}()
	time.Sleep(50 * time.Millisecond) // let the watcher park
	var mut FactMutationResponse
	if status := do(t, http.MethodPost, url+"/facts", InsertFactRequest{Fact: "Emp(2,Carol)"}, &mut); status != http.StatusOK {
		t.Fatalf("insert: status %d", status)
	}
	select {
	case out := <-ch:
		if out.err != nil || out.status != http.StatusOK {
			t.Fatalf("watch after mutation: status %d, err %v", out.status, out.err)
		}
		if out.resp.Gen != 2 {
			t.Fatalf("watch gen = %d, want 2", out.resp.Gen)
		}
		if reflect.DeepEqual(out.resp.Result.Answers, first.Result.Answers) {
			t.Fatal("watch returned the pre-mutation answers")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("watch did not wake after the mutation")
	}

	// An idle watch times out with 204 within the (short) wait window.
	ts2, _ := newTestServer(t, Options{WatchWait: 50 * time.Millisecond})
	reg2 := register(t, ts2.URL, pkFacts, pkFDs)
	idle := ts2.URL + "/v1/instances/" + reg2.ID + "/watch?query=Ans(n)%20:-%20Emp(i,%20n)&generator=ur&mode=exact&since=1"
	r, err := http.Get(idle)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNoContent {
		t.Fatalf("idle watch: status %d, want 204", r.StatusCode)
	}

	// Malformed and missing parameters are 400s.
	for _, bad := range []string{
		url + "/watch",                         // no query
		watchURL + "&since=x",                  // non-integer since
		watchURL + "&epsilon=nope&mode=approx", // non-number epsilon
	} {
		r, err := http.Get(bad)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s: status %d, want 400", bad, r.StatusCode)
		}
	}
}
