package workload

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fd"
)

func TestBlockDatabaseShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := BlockDatabase(rng, BlockSpec{Blocks: 5, MinSize: 2, MaxSize: 4})
	if w.Sigma.Classify() != fd.PrimaryKeys {
		t.Fatal("block database must be a primary-key instance")
	}
	blocks := w.Sigma.Blocks(w.DB)
	if len(blocks) != 5 {
		t.Fatalf("blocks = %d, want 5", len(blocks))
	}
	for _, b := range blocks {
		if b.Size() < 2 || b.Size() > 4 {
			t.Fatalf("block size %d out of range", b.Size())
		}
	}
}

func TestBlockDatabaseSkewCreatesHotValues(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := BlockDatabase(rng, BlockSpec{Blocks: 30, MinSize: 2, MaxSize: 2, ValueSkew: 0.9})
	hot := 0
	for _, f := range w.DB.Facts() {
		if f.Arg(1) == "hot" {
			hot++
		}
	}
	if hot < 15 {
		t.Fatalf("only %d hot facts with skew 0.9", hot)
	}
	// At most one hot fact per block: hot facts never conflict... they
	// DO conflict within a block, so each block contributes ≤ 1.
	if hot > 30 {
		t.Fatalf("more hot facts than blocks: %d", hot)
	}
}

func TestBlockDatabasePanicsOnBadSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BlockDatabase(rand.New(rand.NewSource(1)), BlockSpec{Blocks: 0, MinSize: 1, MaxSize: 1})
}

func TestHotBlockDatabaseGuaranteesWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := HotBlockDatabase(rng, BlockSpec{Blocks: 3, MinSize: 2, MaxSize: 3})
	if !w.Query.Entails(w.DB) {
		t.Fatal("hot workload must entail its query over D")
	}
	inst := w.Core()
	p, err := inst.RRFreq(false, 0, inst.EntailPred(w.Query, w.Tuple))
	if err != nil {
		t.Fatal(err)
	}
	if p.Sign() <= 0 {
		t.Fatal("hot workload must have positive probability")
	}
}

func TestMultiKeyDatabaseClass(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := MultiKeyDatabase(rng, 12, 3)
	if w.Sigma.Classify() != fd.Keys {
		t.Fatalf("class = %v, want keys", w.Sigma.Classify())
	}
	if w.DB.Len() == 0 {
		t.Fatal("empty database")
	}
}

func TestFDChainDatabaseClass(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w := FDChainDatabase(rng, 10, 3)
	if w.Sigma.Classify() != fd.GeneralFDs {
		t.Fatalf("class = %v, want FDs", w.Sigma.Classify())
	}
}

func TestIntroExample(t *testing.T) {
	w := IntroExample()
	inst := w.Core()
	if inst.Sigma.Satisfies(w.DB) {
		t.Fatal("intro example must be inconsistent")
	}
	// Three repairs: {Alice}, {Tom}, ∅.
	if got := inst.CountCandidateRepairs(false); got.Int64() != 3 {
		t.Fatalf("|CORep| = %v, want 3", got)
	}
	// Consistent answers under M^ur: Alice 1/3, Tom 1/3.
	ans, err := inst.ConsistentAnswers(
		coreMode(), w.Query, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 2 {
		t.Fatalf("answers = %v", ans)
	}
	for _, a := range ans {
		if a.Prob.RatString() != "1/3" {
			t.Fatalf("answer %v prob = %s, want 1/3", a.Tuple, a.Prob.RatString())
		}
	}
}

func TestDataIntegrationMultipleIDs(t *testing.T) {
	w := DataIntegration([]EmpSource{
		{"1", "Alice"}, {"1", "Tom"},
		{"2", "Bob"},
	})
	inst := w.Core()
	// id 2 is clean: Bob survives everywhere. |CORep| = 3 (block of id 1).
	if got := inst.CountCandidateRepairs(false); got.Int64() != 3 {
		t.Fatalf("|CORep| = %v, want 3", got)
	}
	ans, err := inst.ConsistentAnswers(coreMode(), w.Query, 0)
	if err != nil {
		t.Fatal(err)
	}
	probs := map[string]string{}
	for _, a := range ans {
		probs[a.Tuple[0]] = a.Prob.RatString()
	}
	if probs["Bob"] != "1" {
		t.Fatalf("Bob prob = %q, want 1", probs["Bob"])
	}
	if probs["Alice"] != "1/3" || probs["Tom"] != "1/3" {
		t.Fatalf("probs = %v", probs)
	}
}

func TestUniformBlockSizes(t *testing.T) {
	spec := UniformBlockSizes(7, 3)
	rng := rand.New(rand.NewSource(6))
	w := BlockDatabase(rng, spec)
	if w.DB.Len() != 21 {
		t.Fatalf("|D| = %d, want 21", w.DB.Len())
	}
}

// coreMode returns the uniform-repairs mode (helper keeps imports tidy).
func coreMode() core.Mode { return core.Mode{Gen: core.UniformRepairs} }
