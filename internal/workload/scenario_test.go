package workload

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/parse"
)

func specsUnderTest() []ScenarioSpec {
	var specs []ScenarioSpec
	for _, class := range []fd.Class{fd.PrimaryKeys, fd.Keys, fd.GeneralFDs} {
		for _, shape := range Shapes(class) {
			for _, av := range []bool{false, true} {
				specs = append(specs, ScenarioSpec{Class: class, Shape: shape, AnswerVars: av})
			}
		}
	}
	return specs
}

func TestRandomScenarioInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, spec := range specsUnderTest() {
		for i := 0; i < 25; i++ {
			sc := RandomScenario(rng, spec)
			if got := sc.Sigma.Classify(); got != spec.Class {
				t.Fatalf("%v/%v: classified %v, want %v", spec.Class, spec.Shape, got, spec.Class)
			}
			if sc.DB.Len() == 0 || sc.DB.Len() > 8 {
				t.Fatalf("%v/%v: %d facts outside (0, 8]", spec.Class, spec.Shape, sc.DB.Len())
			}
			pairs := sc.Sigma.ConflictPairs(sc.DB)
			if len(pairs) > maxConflictEdges {
				t.Fatalf("%v/%v: %d conflict edges exceed the brute-force bound", spec.Class, spec.Shape, len(pairs))
			}
			if err := sc.Query.Validate(sc.Schema); err != nil {
				t.Fatalf("%v/%v: invalid query %v: %v", spec.Class, spec.Shape, sc.Query, err)
			}
			if spec.AnswerVars != (len(sc.Query.AnswerVars) > 0) {
				// AnswerVars is best-effort only when the random body
				// happens to be variable-free; that needs every position
				// of every atom to roll a constant.
				if spec.AnswerVars && len(sc.Query.Variables()) > 0 {
					t.Fatalf("%v/%v: wanted answer variables, query %v has none", spec.Class, spec.Shape, sc.Query)
				}
			}
			if sc.Cell != CellFor(spec.Class) {
				t.Fatalf("%v/%v: cell %v does not match class", spec.Class, spec.Shape, sc.Cell)
			}
		}
	}
}

func TestRandomScenarioDeterministic(t *testing.T) {
	spec := ScenarioSpec{Class: fd.GeneralFDs, Shape: ShapeRandom, AnswerVars: true}
	a := RandomScenario(rand.New(rand.NewSource(99)), spec)
	b := RandomScenario(rand.New(rand.NewSource(99)), spec)
	if parse.FormatDatabase(a.DB) != parse.FormatDatabase(b.DB) {
		t.Error("same seed produced different databases")
	}
	if a.Sigma.String() != b.Sigma.String() {
		t.Error("same seed produced different FD sets")
	}
	if a.Query.String() != b.Query.String() {
		t.Error("same seed produced different queries")
	}
}

func TestShapesProduceTheirGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// A chain scenario's conflict graph is a path: every fact has
	// degree ≤ 2 and #edges = #conflicting facts − 1.
	for i := 0; i < 20; i++ {
		sc := RandomScenario(rng, ScenarioSpec{Class: fd.GeneralFDs, Shape: ShapeChain})
		pairs := sc.Sigma.ConflictPairs(sc.DB)
		deg := map[int]int{}
		for _, p := range pairs {
			deg[p[0]]++
			deg[p[1]]++
		}
		for f, d := range deg {
			if d > 2 {
				t.Fatalf("chain: fact %d has degree %d: %v", f, d, pairs)
			}
		}
		if len(pairs) != len(deg)-1 {
			t.Fatalf("chain: %d edges over %d conflicting facts is not a path", len(pairs), len(deg))
		}
	}
	// A star scenario has one center of degree #edges and leaves of
	// degree 1.
	for i := 0; i < 20; i++ {
		sc := RandomScenario(rng, ScenarioSpec{Class: fd.GeneralFDs, Shape: ShapeStar})
		pairs := sc.Sigma.ConflictPairs(sc.DB)
		deg := map[int]int{}
		for _, p := range pairs {
			deg[p[0]]++
			deg[p[1]]++
		}
		centers, leaves := 0, 0
		for _, d := range deg {
			switch d {
			case len(pairs):
				centers++
			case 1:
				leaves++
			default:
				t.Fatalf("star: unexpected degree %d: %v", d, pairs)
			}
		}
		// A 1-edge star degenerates to a single edge (two "centers").
		if len(pairs) > 1 && (centers != 1 || leaves != len(pairs)) {
			t.Fatalf("star: got %d centers, %d leaves for %d edges", centers, leaves, len(pairs))
		}
	}
}

func TestMatrixCellTags(t *testing.T) {
	pk := CellFor(fd.PrimaryKeys)
	for i := range pk.Status {
		if pk.Status[i] != core.StatusFPRAS {
			t.Errorf("primary keys should be FPRAS everywhere, mode %d is %v",
				i, pk.Status[i])
		}
	}
	fds := CellFor(fd.GeneralFDs)
	modes := core.AllModes()
	for i, m := range modes {
		want, _ := core.Approximability(m, fd.GeneralFDs)
		if fds.Status[i] != want {
			t.Errorf("%s: cell says %v, matrix says %v", m.Symbol(), fds.Status[i], want)
		}
	}
	// The rendering distinguishes the classes.
	if CellFor(fd.PrimaryKeys).String() == CellFor(fd.Keys).String() {
		t.Error("primary-key and key cells render identically")
	}
}
