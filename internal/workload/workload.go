// Package workload generates the synthetic inconsistent databases the
// experiments and benchmarks run on. The paper has no empirical section,
// so the workloads are designed to exercise exactly the regimes its
// complexity results distinguish:
//
//   - block databases under a primary key (Theorems 5.1(2), 6.1(2)),
//     with controllable block-size distributions;
//   - multi-key databases (Theorem 7.1(2)): facts conflicting through
//     several keys of one relation;
//   - general-FD databases (Theorem 7.5, Proposition D.6): conflict
//     structures impossible under keys;
//   - the intro's data-integration scenario (Emp with conflicting
//     sources).
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/fd"
	"repro/internal/rel"
)

// Instance bundles a generated database with its constraints and a
// natural query for it.
type Instance struct {
	Schema *rel.Schema
	Sigma  *fd.Set
	DB     *rel.Database
	Query  *cq.Query
	// Tuple is a candidate answer with positive probability (when the
	// generator can guarantee one; nil otherwise).
	Tuple cq.Tuple
}

// Core builds the core.Instance of the workload.
func (w Instance) Core() *core.Instance { return core.NewInstance(w.DB, w.Sigma) }

// BlockSpec controls BlockDatabase.
type BlockSpec struct {
	// Blocks is the number of key-groups.
	Blocks int
	// MinSize and MaxSize bound the (uniform) block sizes.
	MinSize, MaxSize int
	// ValueSkew, in [0,1), is the probability that a block reuses the
	// shared value "hot" in its second attribute, creating answer
	// correlations across blocks.
	ValueSkew float64
}

// BlockDatabase generates a database over R(A1,A2) with the primary key
// R: A1 → A2 whose blocks follow the spec, and the query
// Ans() :- R(x, 'hot') asking whether some surviving fact carries the
// hot value. Block i has key constant "k<i>"; non-hot values are unique.
func BlockDatabase(rng *rand.Rand, spec BlockSpec) Instance {
	if spec.Blocks < 1 || spec.MinSize < 1 || spec.MaxSize < spec.MinSize {
		panic("workload: invalid block spec")
	}
	sch := rel.MustSchema(rel.NewRelation("R", 2))
	sigma := fd.MustSet(sch, fd.New("R", []int{0}, []int{1}))
	var facts []rel.Fact
	next := 0
	for b := 0; b < spec.Blocks; b++ {
		size := spec.MinSize + rng.Intn(spec.MaxSize-spec.MinSize+1)
		hotDone := false
		for j := 0; j < size; j++ {
			var val string
			if !hotDone && rng.Float64() < spec.ValueSkew {
				val = "hot"
				hotDone = true
			} else {
				val = fmt.Sprintf("v%d", next)
				next++
			}
			facts = append(facts, rel.NewFact("R", fmt.Sprintf("k%d", b), val))
		}
	}
	q := cq.MustNew(nil, cq.NewAtom("R", cq.Var("x"), cq.Const("hot")))
	return Instance{Schema: sch, Sigma: sigma, DB: rel.NewDatabase(facts...), Query: q, Tuple: cq.Tuple{}}
}

// HotBlockDatabase is BlockDatabase with a guaranteed hot fact in the
// first block, so the query probability is positive.
func HotBlockDatabase(rng *rand.Rand, spec BlockSpec) Instance {
	w := BlockDatabase(rng, spec)
	hot := rel.NewFact("R", "k0", "hot")
	if !w.DB.Contains(hot) {
		w.DB = w.DB.Union(rel.NewDatabase(hot))
	}
	return w
}

// MultiKeyDatabase generates a database over R(A1,A2,A3) with the two
// keys A1 → A2A3 and A2 → A1A3 (Theorem 7.1's regime: keys, not
// primary keys). Facts are drawn over small attribute domains so both
// keys produce conflicts; the query asks for a surviving fact with the
// hot third attribute.
func MultiKeyDatabase(rng *rand.Rand, n int, domain int) Instance {
	if n < 1 || domain < 1 {
		panic("workload: invalid multi-key spec")
	}
	sch := rel.MustSchema(rel.NewRelation("R", 3))
	sigma := fd.MustSet(sch,
		fd.New("R", []int{0}, []int{1, 2}),
		fd.New("R", []int{1}, []int{0, 2}),
	)
	var facts []rel.Fact
	for i := 0; i < n; i++ {
		val := fmt.Sprintf("p%d", i)
		if i == 0 {
			val = "hot"
		}
		facts = append(facts, rel.NewFact("R",
			fmt.Sprintf("a%d", rng.Intn(domain)),
			fmt.Sprintf("b%d", rng.Intn(domain)),
			val))
	}
	q := cq.MustNew(nil, cq.NewAtom("R", cq.Var("x"), cq.Var("y"), cq.Const("hot")))
	return Instance{Schema: sch, Sigma: sigma, DB: rel.NewDatabase(facts...), Query: q, Tuple: cq.Tuple{}}
}

// FDChainDatabase generates a database over R(A1,A2,A3) with the
// general (non-key) FDs A1 → A2 and A3 → A2 — the running example's
// constraint shape — whose conflict graph is a collection of paths and
// stars. n is the number of facts.
func FDChainDatabase(rng *rand.Rand, n int, domain int) Instance {
	if n < 1 || domain < 1 {
		panic("workload: invalid FD chain spec")
	}
	sch := rel.MustSchema(rel.NewRelation("R", 3))
	sigma := fd.MustSet(sch,
		fd.New("R", []int{0}, []int{1}),
		fd.New("R", []int{2}, []int{1}),
	)
	var facts []rel.Fact
	for i := 0; i < n; i++ {
		b := fmt.Sprintf("b%d", rng.Intn(domain))
		if i == 0 {
			b = "hot"
		}
		facts = append(facts, rel.NewFact("R",
			fmt.Sprintf("a%d", rng.Intn(domain)),
			b,
			fmt.Sprintf("c%d", rng.Intn(domain))))
	}
	q := cq.MustNew(nil, cq.NewAtom("R", cq.Var("x"), cq.Const("hot"), cq.Var("z")))
	return Instance{Schema: sch, Sigma: sigma, DB: rel.NewDatabase(facts...), Query: q, Tuple: cq.Tuple{}}
}

// EmpSource is one source's claim about an employee, for the intro
// scenario.
type EmpSource struct {
	ID, Name string
}

// DataIntegration builds the introduction's running scenario: an
// Emp(id, name) relation integrated from multiple sources, with the
// primary key Emp: id → name, plus the query asking for the names
// recorded for a given id. Conflicting claims about the same id form
// blocks.
func DataIntegration(claims []EmpSource) Instance {
	sch := rel.MustSchema(rel.Relation{Name: "Emp", Attrs: []string{"id", "name"}})
	sigma := fd.MustSet(sch, fd.New("Emp", []int{0}, []int{1}))
	var facts []rel.Fact
	for _, c := range claims {
		facts = append(facts, rel.NewFact("Emp", c.ID, c.Name))
	}
	q := cq.MustNew([]string{"n"}, cq.NewAtom("Emp", cq.Var("i"), cq.Var("n")))
	return Instance{Schema: sch, Sigma: sigma, DB: rel.NewDatabase(facts...), Query: q}
}

// IntroExample is the exact two-fact example of the introduction:
// Emp(1, Alice) and Emp(1, Tom) violating the key on id.
func IntroExample() Instance {
	return DataIntegration([]EmpSource{{"1", "Alice"}, {"1", "Tom"}})
}

// UniformBlockSizes returns n blocks all of size m (deterministic
// profiles for scaling benchmarks).
func UniformBlockSizes(n, m int) BlockSpec {
	return BlockSpec{Blocks: n, MinSize: m, MaxSize: m}
}
