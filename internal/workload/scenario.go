package workload

// Seeded random scenario generation for the verification harness: the
// fixtures in workload.go exercise the regimes the paper's theorems
// name; RandomScenario fills the space between them with adversarial
// instances — random schemas, random FD sets (keys and non-key FDs),
// controllable conflict-graph shapes, random CQs with and without
// answer variables — each tagged with its row of the approximability
// matrix. Scenarios are sized for brute force: the oracle enumerates
// their full sequence tree, so the generator keeps the conflict
// structure tiny and retries until it fits the budget.

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/fd"
	"repro/internal/rel"
)

// Shape selects the conflict-graph shape the generator aims for.
type Shape int

const (
	// ShapeRandom draws facts over small attribute domains and takes
	// whatever conflict graph falls out.
	ShapeRandom Shape = iota
	// ShapeBlocks builds key-equal groups — cliques, the only shape a
	// single key can produce.
	ShapeBlocks
	// ShapeChain builds a path: consecutive facts conflict through
	// alternating FDs (general FDs only).
	ShapeChain
	// ShapeStar builds one center fact conflicting with every leaf,
	// leaves pairwise compatible (general FDs only).
	ShapeStar
)

// String names the shape.
func (s Shape) String() string {
	switch s {
	case ShapeRandom:
		return "random"
	case ShapeBlocks:
		return "blocks"
	case ShapeChain:
		return "chain"
	case ShapeStar:
		return "star"
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// Shapes lists the shapes compatible with a constraint class: a single
// key per relation can only produce disjoint cliques, so chains and
// stars require general FDs.
func Shapes(class fd.Class) []Shape {
	if class == fd.GeneralFDs {
		return []Shape{ShapeRandom, ShapeBlocks, ShapeChain, ShapeStar}
	}
	return []Shape{ShapeRandom, ShapeBlocks}
}

// ScenarioSpec controls RandomScenario. The zero value is valid: a
// random-shape primary-key scenario with a Boolean query.
type ScenarioSpec struct {
	// Class is the target constraint class; the generator guarantees
	// the emitted Σ classifies exactly there.
	Class fd.Class
	// Shape is the conflict-graph shape to aim for.
	Shape Shape
	// MaxFacts caps the database size (default 8).
	MaxFacts int
	// Domain is the per-attribute constant-domain size (default 3);
	// smaller domains mean denser conflicts.
	Domain int
	// AnswerVars asks for a query with answer variables (an answers
	// workload); otherwise the query is Boolean.
	AnswerVars bool
	// MaxAtoms caps the query body (default 2).
	MaxAtoms int
}

func (s *ScenarioSpec) fill() {
	if s.MaxFacts <= 0 {
		s.MaxFacts = 8
	}
	if s.Domain <= 0 {
		s.Domain = 3
	}
	if s.MaxAtoms <= 0 {
		s.MaxAtoms = 2
	}
}

// Brute-force feasibility bounds: a scenario is accepted only when at
// most this many facts sit in conflicts, with at most this many
// conflict-graph edges — the regime where the oracle's exhaustive
// sequence-tree walk stays cheap.
const (
	maxConflictFacts = 7
	maxConflictEdges = 8
)

// MatrixCell is one row of the paper's approximability matrix: the
// verdict for every operational mode at a constraint class. Scenarios
// carry their cell so harnesses can bucket coverage by what the paper
// claims about each instance.
type MatrixCell struct {
	Class fd.Class
	// Status[i] is the verdict for core.AllModes()[i].
	Status [6]core.ApproxStatus
}

// CellFor reads the matrix row of a constraint class.
func CellFor(class fd.Class) MatrixCell {
	c := MatrixCell{Class: class}
	for i, m := range core.AllModes() {
		c.Status[i], _ = core.Approximability(m, class)
	}
	return c
}

// String renders the cell compactly, e.g.
// "FDs[M^ur:none M^ur,1:none M^us:open M^us,1:open M^uo:heuristic M^uo,1:fpras]".
func (c MatrixCell) String() string {
	parts := make([]string, 0, 6)
	for i, m := range core.AllModes() {
		parts = append(parts, m.Symbol()+":"+c.Status[i].Tag())
	}
	return c.Class.String() + "[" + strings.Join(parts, " ") + "]"
}

// Scenario is a generated instance tagged with its generation spec and
// approximability-matrix cell.
type Scenario struct {
	Instance
	Spec ScenarioSpec
	Cell MatrixCell
}

// RandomScenario draws a scenario from the spec. Generation is
// deterministic in the rng state, rejection-sampled until the emitted
// Σ classifies exactly at spec.Class and the conflict structure fits
// the brute-force bounds.
func RandomScenario(rng *rand.Rand, spec ScenarioSpec) Scenario {
	spec.fill()
	for {
		sch, sigma, db := randomInstance(rng, spec)
		if sigma.Classify() != spec.Class {
			continue
		}
		pairs := sigma.ConflictPairs(db)
		if len(pairs) > maxConflictEdges {
			continue
		}
		inConflict := map[int]bool{}
		for _, p := range pairs {
			inConflict[p[0]] = true
			inConflict[p[1]] = true
		}
		if len(inConflict) > maxConflictFacts {
			continue
		}
		q := randomQuery(rng, db, sch, spec)
		return Scenario{
			Instance: Instance{Schema: sch, Sigma: sigma, DB: db, Query: q},
			Spec:     spec,
			Cell:     CellFor(spec.Class),
		}
	}
}

// randomInstance draws one (schema, Σ, D) attempt for the spec.
func randomInstance(rng *rand.Rand, spec ScenarioSpec) (*rel.Schema, *fd.Set, *rel.Database) {
	switch spec.Class {
	case fd.PrimaryKeys:
		return primaryKeyInstance(rng, spec)
	case fd.Keys:
		return multiKeyInstance(rng, spec)
	default:
		switch spec.Shape {
		case ShapeChain:
			return chainInstance(rng, spec)
		case ShapeStar:
			return starInstance(rng, spec)
		default:
			return generalFDInstance(rng, spec)
		}
	}
}

func val(rng *rand.Rand, domain int) string { return fmt.Sprintf("c%d", rng.Intn(domain)) }

// primaryKeyInstance builds 1–2 relations, each with at most one key,
// and block-structured facts (under a single key every conflict
// component is a clique, whatever the shape asks for).
func primaryKeyInstance(rng *rand.Rand, spec ScenarioSpec) (*rel.Schema, *fd.Set, *rel.Database) {
	arity := 2 + rng.Intn(2)
	rels := []rel.Relation{rel.NewRelation("R", arity)}
	var fds []fd.FD
	keyWidth := 1
	if arity == 3 && rng.Intn(3) == 0 {
		keyWidth = 2
	}
	lhs := make([]int, keyWidth)
	for i := range lhs {
		lhs[i] = i
	}
	var rhs []int
	for i := keyWidth; i < arity; i++ {
		rhs = append(rhs, i)
	}
	fds = append(fds, fd.New("R", lhs, rhs))

	var facts []rel.Fact
	budget := spec.MaxFacts
	// A keyless second relation feeds join queries without adding
	// conflicts.
	if rng.Intn(2) == 0 && budget > 3 {
		rels = append(rels, rel.NewRelation("S", 2))
		n := 1 + rng.Intn(2)
		for i := 0; i < n; i++ {
			facts = append(facts, rel.NewFact("S", val(rng, spec.Domain), val(rng, spec.Domain)))
		}
		budget -= n
	}
	blocks := 1 + rng.Intn(3)
	for b := 0; b < blocks && budget > 0; b++ {
		size := 1 + rng.Intn(3)
		if size > budget {
			size = budget
		}
		budget -= size
		for j := 0; j < size; j++ {
			args := make([]string, arity)
			for k := 0; k < keyWidth; k++ {
				args[k] = fmt.Sprintf("k%d_%d", b, k)
			}
			for k := keyWidth; k < arity; k++ {
				args[k] = val(rng, spec.Domain)
			}
			facts = append(facts, rel.NewFact("R", args...))
		}
	}
	sch := rel.MustSchema(rels...)
	return sch, fd.MustSet(sch, fds...), rel.NewDatabase(facts...)
}

// multiKeyInstance builds one relation with two keys (Theorem 7.1's
// regime): A1 → A2A3 and A2 → A1A3, facts over small domains so both
// keys bite.
func multiKeyInstance(rng *rand.Rand, spec ScenarioSpec) (*rel.Schema, *fd.Set, *rel.Database) {
	sch := rel.MustSchema(rel.NewRelation("R", 3))
	sigma := fd.MustSet(sch,
		fd.New("R", []int{0}, []int{1, 2}),
		fd.New("R", []int{1}, []int{0, 2}),
	)
	n := 2 + rng.Intn(spec.MaxFacts-1)
	var facts []rel.Fact
	for i := 0; i < n; i++ {
		facts = append(facts, rel.NewFact("R",
			fmt.Sprintf("a%d", rng.Intn(spec.Domain)),
			fmt.Sprintf("b%d", rng.Intn(spec.Domain)),
			val(rng, spec.Domain)))
	}
	return sch, sigma, rel.NewDatabase(facts...)
}

// generalFDInstance builds one relation with 1–2 non-key FDs and
// random facts — the uncontrolled general-FD regime.
func generalFDInstance(rng *rand.Rand, spec ScenarioSpec) (*rel.Schema, *fd.Set, *rel.Database) {
	sch := rel.MustSchema(rel.NewRelation("R", 3))
	fds := []fd.FD{fd.New("R", []int{0}, []int{1})}
	if rng.Intn(2) == 0 {
		fds = append(fds, fd.New("R", []int{2}, []int{1}))
	}
	sigma := fd.MustSet(sch, fds...)
	n := 2 + rng.Intn(spec.MaxFacts-1)
	var facts []rel.Fact
	for i := 0; i < n; i++ {
		facts = append(facts, rel.NewFact("R",
			fmt.Sprintf("a%d", rng.Intn(spec.Domain)),
			val(rng, spec.Domain),
			fmt.Sprintf("e%d", rng.Intn(spec.Domain))))
	}
	return sch, sigma, rel.NewDatabase(facts...)
}

// chainInstance builds an exact conflict path f_0 — f_1 — … — f_L
// under the FDs A1 → A2 and A3 → A2: consecutive facts share A1 (even
// links) or A3 (odd links) while all A2 values are distinct, and the
// non-shared attributes are unique so no other edges appear.
func chainInstance(rng *rand.Rand, spec ScenarioSpec) (*rel.Schema, *fd.Set, *rel.Database) {
	sch := rel.MustSchema(rel.NewRelation("R", 3))
	sigma := fd.MustSet(sch, fd.New("R", []int{0}, []int{1}), fd.New("R", []int{2}, []int{1}))
	n := 3 + rng.Intn(3)
	if n > spec.MaxFacts {
		n = spec.MaxFacts
	}
	a := make([]string, n)
	c := make([]string, n)
	for i := 0; i < n; i++ {
		a[i] = fmt.Sprintf("a%d", i)
		c[i] = fmt.Sprintf("e%d", i)
	}
	for i := 0; i+1 < n; i++ {
		if i%2 == 0 {
			a[i+1] = a[i] // share A1: conflict via A1 → A2
		} else {
			c[i+1] = c[i] // share A3: conflict via A3 → A2
		}
	}
	facts := make([]rel.Fact, n)
	for i := 0; i < n; i++ {
		facts[i] = rel.NewFact("R", a[i], fmt.Sprintf("v%d", i), c[i])
	}
	return sch, sigma, rel.NewDatabase(facts...)
}

// starInstance builds a star under the single non-key FD A1 → A2: the
// center shares A1 with every leaf and disagrees on A2, while the
// leaves all carry the same A2 value (pairwise compatible), kept
// distinct by A3.
func starInstance(rng *rand.Rand, spec ScenarioSpec) (*rel.Schema, *fd.Set, *rel.Database) {
	sch := rel.MustSchema(rel.NewRelation("R", 3))
	sigma := fd.MustSet(sch, fd.New("R", []int{0}, []int{1}))
	leaves := 2 + rng.Intn(3)
	if leaves+1 > spec.MaxFacts {
		leaves = spec.MaxFacts - 1
	}
	facts := []rel.Fact{rel.NewFact("R", "hub", "center", "e0")}
	for i := 0; i < leaves; i++ {
		facts = append(facts, rel.NewFact("R", "hub", "leaf", fmt.Sprintf("l%d", i)))
	}
	return sch, sigma, rel.NewDatabase(facts...)
}

// randomQuery draws a conjunctive query over the schema: 1–MaxAtoms
// atoms, each position independently a constant sampled from the
// column's actual values (so queries are satisfiable often enough to
// be interesting), a reused variable (joins), or a fresh variable.
// With spec.AnswerVars, 1–2 of the body variables become answer
// variables.
func randomQuery(rng *rand.Rand, db *rel.Database, sch *rel.Schema, spec ScenarioSpec) *cq.Query {
	rels := sch.Relations()
	varNames := []string{"x", "y", "z", "u", "v", "w"}
	nAtoms := 1 + rng.Intn(spec.MaxAtoms)
	var used []string
	var atoms []cq.Atom
	for i := 0; i < nAtoms; i++ {
		r := rels[rng.Intn(len(rels))]
		terms := make([]cq.Term, r.Arity())
		for pos := range terms {
			switch roll := rng.Intn(10); {
			case roll < 4:
				terms[pos] = cq.Const(columnValue(rng, db, r.Name, pos, spec))
			case roll < 7 && len(used) > 0:
				terms[pos] = cq.Var(used[rng.Intn(len(used))])
			default:
				v := varNames[len(used)%len(varNames)]
				if len(used) >= len(varNames) {
					v = fmt.Sprintf("%s%d", v, len(used)/len(varNames))
				}
				used = append(used, v)
				terms[pos] = cq.Var(v)
			}
		}
		atoms = append(atoms, cq.NewAtom(r.Name, terms...))
	}
	var answerVars []string
	if spec.AnswerVars && len(used) > 0 {
		n := 1 + rng.Intn(2)
		if n > len(used) {
			n = len(used)
		}
		seen := map[string]bool{}
		for len(answerVars) < n {
			v := used[rng.Intn(len(used))]
			if !seen[v] {
				seen[v] = true
				answerVars = append(answerVars, v)
			}
		}
	}
	return cq.MustNew(answerVars, atoms...)
}

// columnValue samples a constant that actually occurs in the column
// (or a domain value when the relation has no facts).
func columnValue(rng *rand.Rand, db *rel.Database, relName string, pos int, spec ScenarioSpec) string {
	facts := db.FactsOf(relName)
	if len(facts) == 0 {
		return val(rng, spec.Domain)
	}
	return facts[rng.Intn(len(facts))].Arg(pos)
}
