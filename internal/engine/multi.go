package engine

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"
)

// MultiSampler draws ONE repair (or sequence, or chain walk) and
// records, per estimation target, whether the draw satisfies it. It
// is the multi-target form of Sampler — the shared-draw answers hot
// path, where one drawn subset is evaluated against every candidate
// answer tuple at once, so K targets cost one sampler walk instead of
// K. active lists, in ascending order, the target indices whose
// outputs the caller will consume; nil means all targets.
// Implementations may skip evaluating targets outside active and
// leave their out entries stale — the stopping-rule driver uses this
// to stop paying for targets that have already converged.
// Implementations are typically stateful and not safe for concurrent
// use; the parallel estimators call the factory once per worker.
type MultiSampler func(rng *rand.Rand, out []bool, active []int)

// finishMulti builds the run-level accounting of a multi-target run,
// feeds the process-wide counters and the run hook, and stamps every
// returned estimate with the shared record.
func finishMulti(phase Phase, ests []Estimate, nTargets int, acct Accounting) []Estimate {
	record(phase, nTargets, acct)
	for t := range ests {
		ests[t].Acct = acct
	}
	return ests
}

// EstimateFixedMulti draws exactly n shared samples and returns the
// per-target empirical means: every target's estimate is computed from
// the SAME n draws. With workers > 1 the draws are split across
// goroutines — each with its own sampler instance, its own
// PhaseMultiFixed substream and its own hit-count vector — and the
// vectors are merged in worker order, so the result is deterministic
// in (seed, workers) regardless of scheduling.
//
// The context is checked between chunks on every worker; a cancelled
// run returns the per-target means over the draws actually performed
// (Samples records them) and ctx.Err().
func EstimateFixedMulti(ctx context.Context, newSampler func() MultiSampler, nTargets, n int, seed int64, workers int) ([]Estimate, error) {
	if n <= 0 {
		panic("engine: need a positive sample count")
	}
	if workers <= 1 {
		return estimateFixedMultiSerial(ctx, newSampler(), nTargets, n, seed)
	}
	tr := TraceFrom(ctx)
	defer tr.StartSpan("sample:multi-fixed")()
	start := time.Now()
	perWorker := make([][]int, workers)
	perDrawn := make([]int64, workers)
	perChunks := make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		quota := splitQuota(n, workers, w)
		if quota == 0 {
			continue
		}
		wg.Add(1)
		go func(w, quota int) {
			defer wg.Done()
			s := newSampler()
			rng := rngFor(seed, PhaseMultiFixed, w)
			local := make([]int, nTargets)
			out := make([]bool, nTargets)
			localN := 0
			chunks := int64(0)
			for localN < quota {
				if ctx.Err() != nil {
					break
				}
				chunks++
				step := min(Chunk, quota-localN)
				for i := 0; i < step; i++ {
					s(rng, out, nil)
					for t, hit := range out {
						if hit {
							local[t]++
						}
					}
				}
				localN += step
			}
			perWorker[w] = local
			perDrawn[w] = int64(localN)
			perChunks[w] = chunks
		}(w, quota)
	}
	wg.Wait()
	counts := make([]int, nTargets)
	var drawn, chunks int64
	for w := range perWorker {
		chunks += perChunks[w]
		if perWorker[w] == nil {
			continue
		}
		drawn += perDrawn[w]
		for t, c := range perWorker[w] {
			counts[t] += c
		}
	}
	err := ctx.Err()
	acct := Accounting{
		Draws: drawn, Chunks: chunks, Workers: workers, PerWorker: perDrawn,
		WallNanos: time.Since(start).Nanoseconds(), Cancelled: err != nil,
	}
	if tr != nil {
		tr.FinalCheckpoint(drawn, meanAcrossTargets(counts, drawn), 0)
	}
	out := make([]Estimate, nTargets)
	for t, c := range counts {
		out[t] = Estimate{Value: safeDiv(float64(c), int(drawn)), Samples: int(drawn), Converged: err == nil}
	}
	return finishMulti(PhaseMultiFixed, out, nTargets, acct), err
}

// meanAcrossTargets is the scalar a fixed multi-target checkpoint
// reports: the mean of the per-target running estimates. O(nTargets),
// so callers compute it only when a trace is attached.
func meanAcrossTargets(counts []int, drawn int64) float64 {
	if drawn == 0 || len(counts) == 0 {
		return 0
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	return float64(total) / (float64(drawn) * float64(len(counts)))
}

func estimateFixedMultiSerial(ctx context.Context, s MultiSampler, nTargets, n int, seed int64) ([]Estimate, error) {
	tr := TraceFrom(ctx)
	defer tr.StartSpan("sample:multi-fixed")()
	start := time.Now()
	rng := rngFor(seed, PhaseMultiFixed, 0)
	counts := make([]int, nTargets)
	outBuf := make([]bool, nTargets)
	drawn := 0
	chunks := int64(0)
	var err error
	for drawn < n {
		if err = ctx.Err(); err != nil {
			break
		}
		chunks++
		step := min(Chunk, n-drawn)
		for i := 0; i < step; i++ {
			s(rng, outBuf, nil)
			for t, hit := range outBuf {
				if hit {
					counts[t]++
				}
			}
		}
		drawn += step
		if tr != nil {
			tr.Checkpoint(int64(drawn), meanAcrossTargets(counts, int64(drawn)), 0)
		}
	}
	acct := Accounting{
		Draws: int64(drawn), Chunks: chunks, Workers: 1,
		WallNanos: time.Since(start).Nanoseconds(), Cancelled: err != nil,
	}
	if tr != nil {
		tr.FinalCheckpoint(int64(drawn), meanAcrossTargets(counts, int64(drawn)), 0)
	}
	out := make([]Estimate, nTargets)
	for t, c := range counts {
		out[t] = Estimate{Value: safeDiv(float64(c), drawn), Samples: drawn, Converged: err == nil}
	}
	return finishMulti(PhaseMultiFixed, out, nTargets, acct), err
}

// EstimateStoppingRuleMulti applies the Dagum–Karp–Luby–Ross stopping
// rule to every target over ONE shared i.i.d. draw stream: target t
// stops at the first draw where its running success count reaches Υ₁
// and outputs Υ₁/n_t, exactly the law of EstimateStoppingRule applied
// to t's Bernoulli marginal of the stream — so each estimate carries
// the same (ε, δ) multiplicative guarantee the per-target rule gives,
// while K targets consume max_t n_t draws instead of Σ_t n_t. Draws
// continue until every target has met the rule or maxSamples is
// exhausted (0 = no cap; a zero-probability target never meets the
// rule); targets still open at exhaustion report the plain mean with
// Converged = false. Per-target Samples records the consumed prefix
// length at that target's stopping point.
//
// With workers > 1, workers draw fixed-size batches from independent
// substreams and the sequential rule is applied to the canonical
// interleaving (worker 0's batch, then worker 1's, ...), stopping each
// target mid-batch exactly where the serial rule would on that stream;
// unused draws are discarded. Deterministic in (seed, workers). The
// round scaffolding deliberately mirrors EstimateStoppingRuleParallel
// (adaptive.go) rather than sharing it: folding the single-target rule
// into a 1-target multi would move it onto the PhaseMultiStopping
// substream and silently change every existing seed's output. Keep
// the two drivers' cancellation/cap/accounting behaviour in sync.
//
// The context is checked between rounds (one batch of Chunk draws per
// worker); a cancelled run returns the open targets' partial means and
// ctx.Err().
func EstimateStoppingRuleMulti(ctx context.Context, newSampler func() MultiSampler, nTargets int, eps, delta float64, seed int64, workers, maxSamples int) ([]Estimate, error) {
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		panic(fmt.Sprintf("engine: invalid parameters eps=%v delta=%v", eps, delta))
	}
	if nTargets == 0 {
		return nil, nil
	}
	if workers <= 1 {
		return estimateStoppingRuleMultiSerial(ctx, newSampler(), nTargets, eps, delta, seed, maxSamples)
	}
	upsilon1 := 1 + (1+eps)*4*(math.E-2)*math.Log(2/delta)/(eps*eps)
	tr := TraceFrom(ctx)
	defer tr.StartSpan("sample:multi-stopping")()
	start := time.Now()
	samplers := make([]MultiSampler, workers)
	rngs := make([]*rand.Rand, workers)
	// batches[w][i] is worker w's i-th draw of the current round: the
	// per-target outcome vector. Allocated once and reused per round.
	batches := make([][][]bool, workers)
	for w := 0; w < workers; w++ {
		samplers[w] = newSampler()
		rngs[w] = rngFor(seed, PhaseMultiStopping, w)
		batches[w] = make([][]bool, Chunk)
		for i := range batches[w] {
			batches[w][i] = make([]bool, nTargets)
		}
	}
	st := newMultiRule(nTargets, eps, delta, upsilon1)
	// performed counts every sampler invocation, discarded tail
	// included — the engine_samples_drawn number; st.n counts only the
	// consumed prefix the rule's law is defined on.
	performed := 0
	rounds := int64(0)
	acct := func(cancelled bool) Accounting {
		tr.FinalCheckpoint(int64(st.n), convergedFraction(nTargets, len(st.open)), len(st.open))
		per := make([]int64, workers)
		for w := range per {
			per[w] = rounds * Chunk
		}
		return Accounting{
			Draws: int64(performed), Chunks: rounds, Workers: workers, PerWorker: per,
			WallNanos: time.Since(start).Nanoseconds(), Cancelled: cancelled,
		}
	}
	done := make(chan struct{}, workers)
	for {
		if err := ctx.Err(); err != nil {
			return finishMulti(PhaseMultiStopping, st.finalize(), nTargets, acct(true)), err
		}
		if maxSamples > 0 && st.n >= maxSamples {
			return finishMulti(PhaseMultiStopping, st.finalize(), nTargets, acct(false)), nil
		}
		// Snapshot the open set at the round boundary: workers fill
		// their batches against it while consume may close targets
		// mid-round, whose stale outputs the rule then ignores. The
		// snapshot is a pure function of consumed state, so skipping
		// cannot perturb determinism.
		active := append([]int(nil), st.open...)
		for w := 0; w < workers; w++ {
			go func(w int) {
				for i := range batches[w] {
					samplers[w](rngs[w], batches[w][i], active)
				}
				done <- struct{}{}
			}(w)
		}
		for w := 0; w < workers; w++ {
			<-done
		}
		performed += workers * Chunk
		rounds++
		// Consume the canonical interleaving sequentially.
		for w := 0; w < workers; w++ {
			for _, out := range batches[w] {
				if st.consume(out) {
					return finishMulti(PhaseMultiStopping, st.finalize(), nTargets, acct(false)), nil
				}
			}
		}
		// One checkpoint per round, after the deterministic sequential
		// consume: the fraction of targets that have met the rule.
		tr.Checkpoint(int64(st.n), convergedFraction(nTargets, len(st.open)), len(st.open))
	}
}

func estimateStoppingRuleMultiSerial(ctx context.Context, s MultiSampler, nTargets int, eps, delta float64, seed int64, maxSamples int) ([]Estimate, error) {
	upsilon1 := 1 + (1+eps)*4*(math.E-2)*math.Log(2/delta)/(eps*eps)
	tr := TraceFrom(ctx)
	defer tr.StartSpan("sample:multi-stopping")()
	start := time.Now()
	rng := rngFor(seed, PhaseMultiStopping, 0)
	st := newMultiRule(nTargets, eps, delta, upsilon1)
	chunks := int64(0)
	acct := func(cancelled bool) Accounting {
		tr.FinalCheckpoint(int64(st.n), convergedFraction(nTargets, len(st.open)), len(st.open))
		return Accounting{
			Draws: int64(st.n), Chunks: chunks, Workers: 1,
			WallNanos: time.Since(start).Nanoseconds(), Cancelled: cancelled,
		}
	}
	out := make([]bool, nTargets)
	for {
		if st.n%Chunk == 0 {
			chunks++
			if err := ctx.Err(); err != nil {
				return finishMulti(PhaseMultiStopping, st.finalize(), nTargets, acct(true)), err
			}
			if st.n > 0 {
				tr.Checkpoint(int64(st.n), convergedFraction(nTargets, len(st.open)), len(st.open))
			}
		}
		if maxSamples > 0 && st.n >= maxSamples {
			return finishMulti(PhaseMultiStopping, st.finalize(), nTargets, acct(false)), nil
		}
		// Only still-open targets are evaluated; closed targets' out
		// entries go stale, which consume never reads.
		s(rng, out, st.open)
		if st.consume(out) {
			return finishMulti(PhaseMultiStopping, st.finalize(), nTargets, acct(false)), nil
		}
	}
}

// convergedFraction is the scalar a stopping-rule multi-target
// checkpoint reports: the fraction of targets that have met the rule.
func convergedFraction(nTargets, open int) float64 {
	if nTargets == 0 {
		return 1
	}
	return float64(nTargets-open) / float64(nTargets)
}

// multiRule tracks the per-target stopping-rule state over one shared
// draw stream.
type multiRule struct {
	eps, delta, upsilon1 float64
	n                    int // consumed draws
	sums                 []int
	ests                 []Estimate
	open                 []int // targets that have not met the rule, ascending
}

func newMultiRule(nTargets int, eps, delta, upsilon1 float64) *multiRule {
	st := &multiRule{
		eps: eps, delta: delta, upsilon1: upsilon1,
		sums: make([]int, nTargets),
		ests: make([]Estimate, nTargets),
		open: make([]int, nTargets),
	}
	for t := range st.open {
		st.open[t] = t
	}
	return st
}

// consume applies one draw's outcome vector to every open target and
// reports whether all targets have now met the rule.
func (st *multiRule) consume(out []bool) (allDone bool) {
	st.n++
	kept := st.open[:0]
	for _, t := range st.open {
		if out[t] {
			st.sums[t]++
			if float64(st.sums[t]) >= st.upsilon1 {
				st.ests[t] = Estimate{
					Value: st.upsilon1 / float64(st.n), Samples: st.n,
					Epsilon: st.eps, Delta: st.delta, Converged: true,
				}
				continue
			}
		}
		kept = append(kept, t)
	}
	st.open = kept
	return len(st.open) == 0
}

// finalize fills the estimates of still-open targets with the plain
// mean over the consumed prefix (Converged stays false) and returns
// the full per-target vector.
func (st *multiRule) finalize() []Estimate {
	for _, t := range st.open {
		st.ests[t] = Estimate{
			Value: safeDiv(float64(st.sums[t]), st.n), Samples: st.n,
			Epsilon: st.eps, Delta: st.delta,
		}
	}
	return st.ests
}
