package engine

// Per-run introspection: a Trace carried through the context collects
// named phase spans and periodic convergence checkpoints from the
// estimation loops. Tracing is strictly opt-in — without a Trace in
// the context every hook below degenerates to a nil-receiver check, so
// the draw loops pay nothing when observability is off (the bench
// regression gate enforces this).
//
// Checkpoints are captured at deterministic points only: serial loops
// emit one per Chunk draws, the parallel stopping rules one per round
// (after the sequential consume of the canonical interleaving), and
// the parallel fixed loops a single terminal point after the
// deterministic merge — a mid-run global view of racing workers would
// depend on scheduling, and the whole value of the curve is that two
// runs with the same (seed, workers) produce bitwise-identical
// checkpoints.

import (
	"context"
	"math"
	"sync"
	"time"
)

// Span is one named phase of a traced run. Start/End are offsets in
// nanoseconds from the trace's creation, so spans from different
// layers (compile, plan, sampling) share one timeline.
type Span struct {
	Name       string `json:"name"`
	StartNanos int64  `json:"start_nanos"`
	EndNanos   int64  `json:"end_nanos"`
}

// Checkpoint is one convergence observation: the draws consumed so
// far, the running estimate at that point, and the additive 95%
// Hoeffding confidence half-width those draws support. For
// multi-target runs Value is the fraction of targets that have met
// the stopping rule (fixed multi: the mean estimate across targets)
// and Open counts the targets still running.
type Checkpoint struct {
	Draws     int64   `json:"draws"`
	Value     float64 `json:"value"`
	HalfWidth float64 `json:"half_width"`
	Open      int     `json:"open,omitempty"`
}

// maxCheckpoints bounds the convergence curve: when full, every other
// point is dropped and the keep-stride doubles, so a 100M-draw run
// still costs at most 2×maxCheckpoints appends and one bounded slice.
const maxCheckpoints = 256

// Trace accumulates the spans and convergence curve of one query.
// All methods are nil-receiver-safe — estimation loops call them
// unconditionally — and safe for concurrent use (the flight recorder
// snapshots a trace while its handler may still be appending).
type Trace struct {
	start time.Time

	mu      sync.Mutex
	spans   []Span
	curve   []Checkpoint
	stride  int64 // keep every stride-th offered checkpoint
	offered int64 // checkpoints offered since the trace started
}

// NewTrace starts an empty trace clocked from now.
func NewTrace() *Trace {
	return &Trace{start: time.Now(), stride: 1}
}

type traceKey struct{}

// ContextWithTrace returns a context carrying tr; the estimation
// loops pick it up via TraceFrom. A nil tr returns ctx unchanged.
func ContextWithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, tr)
}

// TraceFrom extracts the trace from ctx, nil when the run is
// untraced. Estimators call this once per run, never per draw.
func TraceFrom(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}

// StartSpan opens a named span and returns the closure that ends it —
// use `defer tr.StartSpan("sample:fixed")()`. On a nil trace both
// halves are no-ops.
func (tr *Trace) StartSpan(name string) func() {
	if tr == nil {
		return func() {}
	}
	startN := time.Since(tr.start).Nanoseconds()
	return func() {
		end := time.Since(tr.start).Nanoseconds()
		tr.mu.Lock()
		tr.spans = append(tr.spans, Span{Name: name, StartNanos: startN, EndNanos: end})
		tr.mu.Unlock()
	}
}

// Checkpoint offers one periodic convergence observation. Decimation
// keeps the curve bounded: once maxCheckpoints are held, even-indexed
// points survive and the keep-stride doubles, which preserves the
// curve's shape and stays a pure function of the offered sequence —
// deterministic runs keep deterministic curves.
func (tr *Trace) Checkpoint(draws int64, value float64, open int) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	keep := tr.offered%tr.stride == 0
	tr.offered++
	if !keep {
		return
	}
	tr.appendLocked(Checkpoint{Draws: draws, Value: value, HalfWidth: halfWidth(draws), Open: open})
}

// FinalCheckpoint records the run's terminal point, bypassing
// decimation so the curve always ends at the run's actual exit. If
// the last periodic point already sits at the same draw count it is
// replaced rather than duplicated.
func (tr *Trace) FinalCheckpoint(draws int64, value float64, open int) {
	if tr == nil {
		return
	}
	cp := Checkpoint{Draws: draws, Value: value, HalfWidth: halfWidth(draws), Open: open}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if n := len(tr.curve); n > 0 && tr.curve[n-1].Draws == draws {
		tr.curve[n-1] = cp
		return
	}
	tr.appendLocked(cp)
}

func (tr *Trace) appendLocked(cp Checkpoint) {
	tr.curve = append(tr.curve, cp)
	if len(tr.curve) >= maxCheckpoints {
		kept := tr.curve[:0]
		for i := 0; i < len(tr.curve); i += 2 {
			kept = append(kept, tr.curve[i])
		}
		tr.curve = kept
		tr.stride *= 2
	}
}

// Spans returns a copy of the spans recorded so far.
func (tr *Trace) Spans() []Span {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]Span(nil), tr.spans...)
}

// Curve returns a copy of the convergence checkpoints recorded so far.
func (tr *Trace) Curve() []Checkpoint {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]Checkpoint(nil), tr.curve...)
}

// halfWidth is the additive 95% Hoeffding confidence half-width a
// plain mean of n Bernoulli draws supports: √(ln(2/0.05)/(2n)). It
// depends on the draw count alone — no estimate enters — so the curve
// stays bitwise-deterministic and costs one sqrt per checkpoint.
func halfWidth(n int64) float64 {
	if n <= 0 {
		return 1
	}
	return math.Sqrt(math.Log(40) / (2 * float64(n)))
}
