package engine

import (
	"context"
	"sync"
	"sync/atomic"
)

// EstimateFixed draws exactly n samples and returns the empirical
// mean. With workers > 1 the draws are split across goroutines, each
// drawing from its own sampler instance (newSampler is called once per
// worker — samplers are typically stateful and not safe for concurrent
// use) on its own PhaseFixed substream. The result is deterministic in
// (seed, workers) regardless of scheduling.
//
// The context is checked between chunks on every worker; a cancelled
// run returns the mean over the draws actually performed, the count of
// those draws, and ctx.Err().
func EstimateFixed(ctx context.Context, newSampler func() Sampler, n int, seed int64, workers int) (Estimate, error) {
	if n <= 0 {
		panic("engine: need a positive sample count")
	}
	if workers <= 1 {
		return estimateFixedSerial(ctx, newSampler(), n, seed)
	}
	var hits, drawn int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		quota := splitQuota(n, workers, w)
		if quota == 0 {
			continue
		}
		wg.Add(1)
		go func(w, quota int) {
			defer wg.Done()
			s := newSampler()
			rng := rngFor(seed, PhaseFixed, w)
			local, localN := 0, 0
			for localN < quota {
				if ctx.Err() != nil {
					break
				}
				step := min(Chunk, quota-localN)
				for i := 0; i < step; i++ {
					if s(rng) {
						local++
					}
				}
				localN += step
			}
			atomic.AddInt64(&hits, int64(local))
			atomic.AddInt64(&drawn, int64(localN))
		}(w, quota)
	}
	wg.Wait()
	samplesDrawn.Add(drawn)
	if err := ctx.Err(); err != nil {
		cancelledRuns.Add(1)
		return Estimate{Value: safeDiv(float64(hits), int(drawn)), Samples: int(drawn)}, err
	}
	return Estimate{Value: float64(hits) / float64(n), Samples: n, Converged: true}, nil
}

func estimateFixedSerial(ctx context.Context, s Sampler, n int, seed int64) (Estimate, error) {
	rng := rngFor(seed, PhaseFixed, 0)
	hits, drawn := 0, 0
	for drawn < n {
		if err := ctx.Err(); err != nil {
			samplesDrawn.Add(int64(drawn))
			cancelledRuns.Add(1)
			return Estimate{Value: safeDiv(float64(hits), drawn), Samples: drawn}, err
		}
		step := min(Chunk, n-drawn)
		for i := 0; i < step; i++ {
			if s(rng) {
				hits++
			}
		}
		drawn += step
	}
	samplesDrawn.Add(int64(n))
	return Estimate{Value: float64(hits) / float64(n), Samples: n, Converged: true}, nil
}

func safeDiv(a float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return a / float64(n)
}
