package engine

import (
	"context"
	"sync"
	"time"
)

// EstimateFixed draws exactly n samples and returns the empirical
// mean. With workers > 1 the draws are split across goroutines, each
// drawing from its own sampler instance (newSampler is called once per
// worker — samplers are typically stateful and not safe for concurrent
// use) on its own PhaseFixed substream. The result is deterministic in
// (seed, workers) regardless of scheduling.
//
// The context is checked between chunks on every worker; a cancelled
// run returns the mean over the draws actually performed, the count of
// those draws, and ctx.Err().
func EstimateFixed(ctx context.Context, newSampler func() Sampler, n int, seed int64, workers int) (Estimate, error) {
	if n <= 0 {
		panic("engine: need a positive sample count")
	}
	if workers <= 1 {
		return estimateFixedSerial(ctx, newSampler(), n, seed)
	}
	tr := TraceFrom(ctx)
	defer tr.StartSpan("sample:fixed")()
	start := time.Now()
	perHits := make([]int64, workers)
	perDrawn := make([]int64, workers)
	perChunks := make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		quota := splitQuota(n, workers, w)
		if quota == 0 {
			continue
		}
		wg.Add(1)
		go func(w, quota int) {
			defer wg.Done()
			s := newSampler()
			rng := rngFor(seed, PhaseFixed, w)
			local, localN, chunks := 0, 0, int64(0)
			for localN < quota {
				if ctx.Err() != nil {
					break
				}
				chunks++
				step := min(Chunk, quota-localN)
				for i := 0; i < step; i++ {
					if s(rng) {
						local++
					}
				}
				localN += step
			}
			perHits[w] = int64(local)
			perDrawn[w] = int64(localN)
			perChunks[w] = chunks
		}(w, quota)
	}
	wg.Wait()
	var hits, drawn, chunks int64
	for w := 0; w < workers; w++ {
		hits += perHits[w]
		drawn += perDrawn[w]
		chunks += perChunks[w]
	}
	err := ctx.Err()
	acct := Accounting{
		Draws: drawn, Chunks: chunks, Workers: workers, PerWorker: perDrawn,
		WallNanos: time.Since(start).Nanoseconds(), Cancelled: err != nil,
	}
	// One terminal checkpoint after the deterministic merge: a mid-run
	// global view of racing workers would depend on scheduling.
	tr.FinalCheckpoint(drawn, safeDiv(float64(hits), int(drawn)), 0)
	record(PhaseFixed, 0, acct)
	if err != nil {
		return Estimate{Value: safeDiv(float64(hits), int(drawn)), Samples: int(drawn), Acct: acct}, err
	}
	return Estimate{Value: float64(hits) / float64(n), Samples: n, Converged: true, Acct: acct}, nil
}

func estimateFixedSerial(ctx context.Context, s Sampler, n int, seed int64) (Estimate, error) {
	tr := TraceFrom(ctx)
	defer tr.StartSpan("sample:fixed")()
	start := time.Now()
	rng := rngFor(seed, PhaseFixed, 0)
	hits, drawn := 0, 0
	chunks := int64(0)
	acct := func(cancelled bool) Accounting {
		tr.FinalCheckpoint(int64(drawn), safeDiv(float64(hits), drawn), 0)
		return Accounting{
			Draws: int64(drawn), Chunks: chunks, Workers: 1,
			WallNanos: time.Since(start).Nanoseconds(), Cancelled: cancelled,
		}
	}
	for drawn < n {
		if err := ctx.Err(); err != nil {
			a := acct(true)
			record(PhaseFixed, 0, a)
			return Estimate{Value: safeDiv(float64(hits), drawn), Samples: drawn, Acct: a}, err
		}
		chunks++
		step := min(Chunk, n-drawn)
		for i := 0; i < step; i++ {
			if s(rng) {
				hits++
			}
		}
		drawn += step
		tr.Checkpoint(int64(drawn), safeDiv(float64(hits), drawn), 0)
	}
	a := acct(false)
	record(PhaseFixed, 0, a)
	return Estimate{Value: float64(hits) / float64(n), Samples: n, Converged: true, Acct: a}, nil
}

func safeDiv(a float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return a / float64(n)
}
