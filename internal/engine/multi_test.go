package engine

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// biasedMulti builds a MultiSampler whose target t succeeds with
// probability ps[t], all targets driven by the same draw (one uniform
// variate per draw, thresholded per target — the shared-stream shape
// of the answers path).
func biasedMulti(ps []float64) func() MultiSampler {
	return func() MultiSampler {
		return func(rng *rand.Rand, out []bool, _ []int) {
			u := rng.Float64()
			for t, p := range ps {
				out[t] = u < p
			}
		}
	}
}

// sameEstimate compares the statistical outcome of two estimates,
// ignoring Acct: determinism is promised for the estimate's law, not
// for wall-clock metadata.
func sameEstimate(a, b Estimate) bool {
	return a.Value == b.Value && a.Samples == b.Samples &&
		a.Epsilon == b.Epsilon && a.Delta == b.Delta && a.Converged == b.Converged
}

func TestEstimateFixedMultiMeans(t *testing.T) {
	ps := []float64{0.8, 0.5, 0.1}
	for _, workers := range []int{1, 4} {
		ests, err := EstimateFixedMulti(context.Background(), biasedMulti(ps), len(ps), 40_000, 3, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i, e := range ests {
			if e.Samples != 40_000 || !e.Converged {
				t.Fatalf("workers=%d target %d: samples=%d converged=%v", workers, i, e.Samples, e.Converged)
			}
			if math.Abs(e.Value-ps[i]) > 0.02 {
				t.Errorf("workers=%d target %d: estimate %.4f, want ≈ %.2f", workers, i, e.Value, ps[i])
			}
		}
	}
}

func TestEstimateFixedMultiDeterministic(t *testing.T) {
	ps := []float64{0.6, 0.3}
	for _, workers := range []int{1, 3} {
		a, err := EstimateFixedMulti(context.Background(), biasedMulti(ps), len(ps), 10_000, 11, workers)
		if err != nil {
			t.Fatal(err)
		}
		b, err := EstimateFixedMulti(context.Background(), biasedMulti(ps), len(ps), 10_000, 11, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if !sameEstimate(a[i], b[i]) {
				t.Fatalf("workers=%d target %d: %+v != %+v", workers, i, a[i], b[i])
			}
		}
	}
}

func TestEstimateStoppingRuleMultiConverges(t *testing.T) {
	ps := []float64{0.9, 0.5, 0.2}
	for _, workers := range []int{1, 4} {
		ests, err := EstimateStoppingRuleMulti(context.Background(), biasedMulti(ps), len(ps), 0.1, 0.05, 5, workers, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i, e := range ests {
			if !e.Converged {
				t.Fatalf("workers=%d target %d did not converge", workers, i)
			}
			if math.Abs(e.Value-ps[i]) > 0.1*ps[i]+0.02 {
				t.Errorf("workers=%d target %d: estimate %.4f, want ≈ %.2f", workers, i, e.Value, ps[i])
			}
		}
		// A rarer target needs a longer prefix of the shared stream.
		if ests[2].Samples < ests[0].Samples {
			t.Errorf("workers=%d: rare target stopped before the common one: %d < %d",
				workers, ests[2].Samples, ests[0].Samples)
		}
	}
}

func TestEstimateStoppingRuleMultiDeterministic(t *testing.T) {
	ps := []float64{0.7, 0.3, 0.05}
	for _, workers := range []int{1, 4} {
		a, err := EstimateStoppingRuleMulti(context.Background(), biasedMulti(ps), len(ps), 0.2, 0.1, 21, workers, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := EstimateStoppingRuleMulti(context.Background(), biasedMulti(ps), len(ps), 0.2, 0.1, 21, workers, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if !sameEstimate(a[i], b[i]) {
				t.Fatalf("workers=%d target %d: %+v != %+v", workers, i, a[i], b[i])
			}
		}
	}
}

// TestEstimateStoppingRuleMultiSingleTargetLaw: with one target, the
// multi rule applied to a stream must produce exactly the sequential
// stopping rule's output on that same stream (same Υ₁ crossing, same
// consumed prefix).
func TestEstimateStoppingRuleMultiSingleTargetLaw(t *testing.T) {
	// Drive both rules from identical pre-recorded outcomes.
	outcomes := make([]bool, 200_000)
	rng := rand.New(rand.NewSource(99))
	for i := range outcomes {
		outcomes[i] = rng.Float64() < 0.4
	}
	iMulti := 0
	multi := func() MultiSampler {
		return func(_ *rand.Rand, out []bool, _ []int) { out[0] = outcomes[iMulti]; iMulti++ }
	}
	iSingle := 0
	single := func(_ *rand.Rand) bool { b := outcomes[iSingle]; iSingle++; return b }

	m, err := EstimateStoppingRuleMulti(context.Background(), multi, 1, 0.1, 0.05, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := EstimateStoppingRule(context.Background(), single, 0.1, 0.05, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m[0].Value != s.Value || m[0].Samples != s.Samples || m[0].Converged != s.Converged {
		t.Fatalf("multi %+v != sequential %+v on the same stream", m[0], s)
	}
}

func TestEstimateStoppingRuleMultiCap(t *testing.T) {
	ps := []float64{0.9, 0.0} // target 1 never succeeds: only the cap stops it
	for _, workers := range []int{1, 4} {
		ests, err := EstimateStoppingRuleMulti(context.Background(), biasedMulti(ps), len(ps), 0.1, 0.05, 2, workers, 5000)
		if err != nil {
			t.Fatal(err)
		}
		if !ests[0].Converged {
			t.Errorf("workers=%d: likely target should converge before the cap", workers)
		}
		if ests[1].Converged || ests[1].Value != 0 {
			t.Errorf("workers=%d: impossible target: %+v, want unconverged zero", workers, ests[1])
		}
		if ests[1].Samples < 5000 {
			t.Errorf("workers=%d: cap target consumed %d draws, want ≥ cap", workers, ests[1].Samples)
		}
	}
}

func TestEstimateMultiCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ps := []float64{0.5, 0.0}
	for _, workers := range []int{1, 4} {
		ests, err := EstimateStoppingRuleMulti(ctx, biasedMulti(ps), len(ps), 0.1, 0.05, 2, workers, 0)
		if err == nil {
			t.Fatalf("workers=%d: want context error", workers)
		}
		if len(ests) != len(ps) {
			t.Fatalf("workers=%d: partial estimates missing", workers)
		}
		if _, err := EstimateFixedMulti(ctx, biasedMulti(ps), len(ps), 100_000, 2, workers); err == nil {
			t.Fatalf("workers=%d: fixed multi: want context error", workers)
		}
	}
}

// TestEstimateStoppingRuleMultiActiveSkip: a sampler that strictly
// honours the active hint — and actively garbles every inactive out
// entry — must produce the identical estimates to one that always
// evaluates all targets, because the rule never reads closed targets'
// outputs.
func TestEstimateStoppingRuleMultiActiveSkip(t *testing.T) {
	ps := []float64{0.9, 0.4, 0.1}
	strict := func() MultiSampler {
		full := biasedMulti(ps)()
		buf := make([]bool, len(ps))
		return func(rng *rand.Rand, out []bool, active []int) {
			full(rng, buf, nil)
			for i := range out {
				out[i] = !out[i] // garbage unless overwritten below
			}
			if active == nil {
				copy(out, buf)
				return
			}
			for _, t := range active {
				out[t] = buf[t]
			}
		}
	}
	for _, workers := range []int{1, 4} {
		a, err := EstimateStoppingRuleMulti(context.Background(), biasedMulti(ps), len(ps), 0.15, 0.1, 17, workers, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := EstimateStoppingRuleMulti(context.Background(), strict, len(ps), 0.15, 0.1, 17, workers, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if !sameEstimate(a[i], b[i]) {
				t.Fatalf("workers=%d target %d: full-eval %+v != active-skip %+v", workers, i, a[i], b[i])
			}
		}
	}
}

func TestEstimateStoppingRuleMultiNoTargets(t *testing.T) {
	ests, err := EstimateStoppingRuleMulti(context.Background(), biasedMulti(nil), 0, 0.1, 0.05, 1, 4, 0)
	if err != nil || len(ests) != 0 {
		t.Fatalf("no-target run: ests=%v err=%v", ests, err)
	}
}

func BenchmarkMultiStoppingRule8Targets(b *testing.B) {
	ps := make([]float64, 8)
	for i := range ps {
		ps[i] = 0.5
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateStoppingRuleMulti(context.Background(), biasedMulti(ps), len(ps), 0.1, 0.05, int64(i+1), 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiFixed8Targets(b *testing.B) {
	ps := make([]float64, 8)
	for i := range ps {
		ps[i] = 0.5
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateFixedMulti(context.Background(), biasedMulti(ps), len(ps), 20_000, int64(i+1), 1); err != nil {
			b.Fatal(err)
		}
	}
}
