package engine

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// CountSampler draws one repair and increments the survival counter of
// every fact it contains — the amortised form of the marginals hot
// path: one draw updates up to len(counts) counters in a single pass,
// so all per-fact estimates share one sample stream. Implementations
// may skip facts that survive every repair (the caller accounts for
// them separately) and must not retain counts across calls.
type CountSampler func(rng *rand.Rand, counts []int)

// Marginals draws n repairs and accumulates per-fact survival counts.
// With workers > 1 the draws are split across goroutines — each with
// its own CountSampler instance (newSampler is called once per worker;
// samplers are typically stateful and not concurrency-safe), its own
// PhaseMarginals substream and its own count vector — and the vectors
// are summed at the end, so the result is deterministic in
// (seed, workers) regardless of scheduling. Because one draw updates
// every undetermined fact's counter, parallel draws speed up all |D|
// marginal estimates at once.
//
// The context is checked between chunks on every worker. A cancelled
// run returns the counts accumulated so far, the number of draws they
// represent, and ctx.Err(); callers must not divide by n on that path.
func Marginals(ctx context.Context, newSampler func() CountSampler, nFacts, n int, seed int64, workers int) (counts []int, drawn int, err error) {
	counts, acct, err := MarginalsAcct(ctx, newSampler, nFacts, n, seed, workers)
	return counts, int(acct.Draws), err
}

// MarginalsAcct is Marginals with the run's full cost accounting; the
// drawn count Marginals reports is acct.Draws.
func MarginalsAcct(ctx context.Context, newSampler func() CountSampler, nFacts, n int, seed int64, workers int) (counts []int, acct Accounting, err error) {
	if n <= 0 {
		panic("engine: need a positive sample count")
	}
	// The marginals loop gets a span but no convergence curve: its
	// output is a |D|-sized vector, not a scalar, and a per-chunk
	// summary would cost O(nFacts) per checkpoint.
	tr := TraceFrom(ctx)
	defer tr.StartSpan("sample:marginals")()
	if workers <= 1 {
		return marginalsSerial(ctx, newSampler(), nFacts, n, seed)
	}
	start := time.Now()
	perWorker := make([][]int, workers)
	perDrawn := make([]int64, workers)
	perChunks := make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		quota := splitQuota(n, workers, w)
		if quota == 0 {
			continue
		}
		wg.Add(1)
		go func(w, quota int) {
			defer wg.Done()
			s := newSampler()
			rng := rngFor(seed, PhaseMarginals, w)
			local := make([]int, nFacts)
			localN := 0
			chunks := int64(0)
			for localN < quota {
				if ctx.Err() != nil {
					break
				}
				chunks++
				step := min(Chunk, quota-localN)
				for i := 0; i < step; i++ {
					s(rng, local)
				}
				localN += step
			}
			perWorker[w] = local
			perDrawn[w] = int64(localN)
			perChunks[w] = chunks
		}(w, quota)
	}
	wg.Wait()
	counts = make([]int, nFacts)
	var drawn, chunks int64
	for w := range perWorker {
		chunks += perChunks[w]
		if perWorker[w] == nil {
			continue
		}
		drawn += perDrawn[w]
		for i, c := range perWorker[w] {
			counts[i] += c
		}
	}
	err = ctx.Err()
	acct = Accounting{
		Draws: drawn, Chunks: chunks, Workers: workers, PerWorker: perDrawn,
		WallNanos: time.Since(start).Nanoseconds(), Cancelled: err != nil,
	}
	record(PhaseMarginals, 0, acct)
	return counts, acct, err
}

func marginalsSerial(ctx context.Context, s CountSampler, nFacts, n int, seed int64) ([]int, Accounting, error) {
	start := time.Now()
	rng := rngFor(seed, PhaseMarginals, 0)
	counts := make([]int, nFacts)
	drawn := 0
	chunks := int64(0)
	acct := func(cancelled bool) Accounting {
		a := Accounting{
			Draws: int64(drawn), Chunks: chunks, Workers: 1,
			WallNanos: time.Since(start).Nanoseconds(), Cancelled: cancelled,
		}
		record(PhaseMarginals, 0, a)
		return a
	}
	for drawn < n {
		if err := ctx.Err(); err != nil {
			return counts, acct(true), err
		}
		chunks++
		step := min(Chunk, n-drawn)
		for i := 0; i < step; i++ {
			s(rng, counts)
		}
		drawn += step
	}
	return counts, acct(false), nil
}
