package engine

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
)

// countingFactory returns a sampler factory whose total draw count is
// observable, optionally cancelling the context once `after` draws
// have been performed (after < 0 never cancels).
func countingFactory(total *atomic.Int64, cancel context.CancelFunc, after int64) func() Sampler {
	return func() Sampler {
		return func(rng *rand.Rand) bool {
			if n := total.Add(1); cancel != nil && n == after {
				cancel()
			}
			return rng.Float64() < 0.5
		}
	}
}

func TestEstimateFixedPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var total atomic.Int64
	for _, workers := range []int{1, 4} {
		before := CancelledRuns()
		e, err := EstimateFixed(ctx, countingFactory(&total, nil, -1), 1_000_000, 5, workers)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if e.Samples != 0 && int64(e.Samples) > int64(workers)*Chunk {
			t.Fatalf("workers=%d: pre-cancelled run drew %d samples", workers, e.Samples)
		}
		if CancelledRuns() <= before {
			t.Fatalf("workers=%d: cancelled-runs counter did not move", workers)
		}
	}
	if got := total.Load(); got > int64(4)*Chunk {
		t.Fatalf("pre-cancelled runs performed %d draws in total", got)
	}
}

// TestEstimateFixedMidFlightCancel: cancelling during the run stops
// every worker within one chunk — the sample counter must come out
// near the cancellation point, far below the requested budget.
func TestEstimateFixedMidFlightCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var total atomic.Int64
		const stopAfter = 2000
		const budget = 50_000_000
		e, err := EstimateFixed(ctx, countingFactory(&total, cancel, stopAfter), budget, 7, workers)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// Each worker may finish the chunk it was inside when the
		// cancellation landed, nothing more.
		limit := int64(stopAfter + (workers+1)*Chunk)
		if got := total.Load(); got > limit {
			t.Fatalf("workers=%d: %d draws performed after cancel at %d (limit %d)", workers, got, stopAfter, limit)
		}
		if e.Samples >= budget {
			t.Fatalf("workers=%d: cancelled run drained its full budget", workers)
		}
	}
}

func TestStoppingRuleMidFlightCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var total atomic.Int64
	const stopAfter = 1500
	// p = 0 never converges, so only the cancellation can stop it.
	f := func() Sampler {
		return func(rng *rand.Rand) bool {
			if total.Add(1) == stopAfter {
				cancel()
			}
			return false
		}
	}
	e, err := EstimateStoppingRule(ctx, f(), 0.1, 0.05, 3, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := total.Load(); got > stopAfter+2*Chunk {
		t.Fatalf("%d draws performed after cancel at %d", got, stopAfter)
	}
	if e.Value != 0 {
		t.Fatalf("partial estimate of an all-miss stream = %v", e.Value)
	}
}

func TestStoppingRuleParallelMidFlightCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var total atomic.Int64
	const workers = 4
	const stopAfter = 3000
	e, err := EstimateStoppingRuleParallel(ctx, countingFactory(&total, cancel, stopAfter), 0.01, 0.01, 9, workers, 0)
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The round in flight completes (workers × Chunk draws), then the
	// next round's context check fires.
	if got := total.Load(); got > stopAfter+2*workers*Chunk {
		t.Fatalf("%d draws performed after cancel at %d", got, stopAfter)
	}
	if e.Converged {
		t.Fatal("cancelled run cannot report convergence")
	}
}

func TestEstimateAAMidFlightCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var total atomic.Int64
	const stopAfter = 2500
	f := countingFactory(&total, cancel, stopAfter)
	e, err := EstimateAA(ctx, f(), 0.05, 0.05, 11, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := total.Load(); got > stopAfter+2*Chunk {
		t.Fatalf("%d draws performed after cancel at %d", got, stopAfter)
	}
	if e.Samples > int(total.Load()) {
		t.Fatalf("Samples = %d exceeds draws performed", e.Samples)
	}
}

func TestMarginalsPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	newSampler := func() CountSampler {
		return func(rng *rand.Rand, counts []int) { counts[rng.Intn(len(counts))]++ }
	}
	for _, workers := range []int{1, 4} {
		counts, drawn, err := Marginals(ctx, newSampler, 8, 100_000, 3, workers)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if drawn != 0 {
			t.Fatalf("workers=%d: pre-cancelled marginals drew %d", workers, drawn)
		}
		for i, c := range counts {
			if c != 0 {
				t.Fatalf("workers=%d: counts[%d] = %d on a zero-draw run", workers, i, c)
			}
		}
	}
}

func TestMarginalsMidFlightCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var total atomic.Int64
		const stopAfter = 2000
		const budget = 50_000_000
		newSampler := func() CountSampler {
			return func(rng *rand.Rand, counts []int) {
				if total.Add(1) == stopAfter {
					cancel()
				}
				counts[rng.Intn(len(counts))]++
			}
		}
		counts, drawn, err := Marginals(ctx, newSampler, 16, budget, 5, workers)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		limit := int64(stopAfter + (workers+1)*Chunk)
		if got := total.Load(); got > limit {
			t.Fatalf("workers=%d: %d draws after cancel at %d (limit %d)", workers, got, stopAfter, limit)
		}
		if drawn >= budget {
			t.Fatalf("workers=%d: cancelled marginals drained the budget", workers)
		}
		// The partial counts are consistent with the partial draw count.
		sum := 0
		for _, c := range counts {
			sum += c
		}
		if sum != drawn {
			t.Fatalf("workers=%d: counts sum %d != drawn %d", workers, sum, drawn)
		}
	}
}
