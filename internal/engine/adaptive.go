package engine

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"
)

// EstimateStoppingRule implements the Dagum–Karp–Luby–Ross stopping-
// rule algorithm [8] for Bernoulli variables: sample until the running
// sum of successes reaches Υ₁ = 1 + 4(e−2)(1+ε)·ln(2/δ)/ε², and output
// Υ₁/N. For any true mean μ > 0 it guarantees Pr[|est − μ| ≤ ε·μ] ≥
// 1−δ with E[N] = O(ln(1/δ)/(ε²·μ)) — the "number of samples
// proportional to 1/p" the paper refers to. maxSamples caps the run
// (0 = no cap; the rule does not terminate when μ = 0): on exhaustion
// the plain mean is returned with Converged = false.
//
// The context is checked once per Chunk draws; a cancelled run returns
// the partial mean and ctx.Err().
func EstimateStoppingRule(ctx context.Context, s Sampler, eps, delta float64, seed int64, maxSamples int) (Estimate, error) {
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		panic(fmt.Sprintf("engine: invalid parameters eps=%v delta=%v", eps, delta))
	}
	upsilon1 := 1 + (1+eps)*4*(math.E-2)*math.Log(2/delta)/(eps*eps)
	tr := TraceFrom(ctx)
	defer tr.StartSpan("sample:stopping-rule")()
	start := time.Now()
	rng := rngFor(seed, PhaseStoppingRule, 0)
	sum := 0.0
	n := 0
	chunks := int64(0)
	acct := func(cancelled bool) Accounting {
		open := 1
		if sum >= upsilon1 {
			open = 0
		}
		tr.FinalCheckpoint(int64(n), safeDiv(sum, n), open)
		a := Accounting{
			Draws: int64(n), Chunks: chunks, Workers: 1,
			WallNanos: time.Since(start).Nanoseconds(), Cancelled: cancelled,
		}
		record(PhaseStoppingRule, 0, a)
		return a
	}
	for sum < upsilon1 {
		if n%Chunk == 0 {
			chunks++
			if err := ctx.Err(); err != nil {
				return Estimate{Value: safeDiv(sum, n), Samples: n, Epsilon: eps, Delta: delta, Acct: acct(true)}, err
			}
			if n > 0 {
				tr.Checkpoint(int64(n), sum/float64(n), 1)
			}
		}
		if maxSamples > 0 && n >= maxSamples {
			return Estimate{Value: sum / float64(n), Samples: n, Epsilon: eps, Delta: delta, Converged: false, Acct: acct(false)}, nil
		}
		n++
		if s(rng) {
			sum++
		}
	}
	return Estimate{Value: upsilon1 / float64(n), Samples: n, Epsilon: eps, Delta: delta, Converged: true, Acct: acct(false)}, nil
}

// EstimateStoppingRuleParallel is a parallel variant of the stopping
// rule with the *identical* statistical behaviour: workers draw
// fixed-size batches from independent sub-streams and return the
// outcome vectors; the sequential rule is then applied to the
// canonical interleaving (worker 0's batch, then worker 1's, ...),
// which is a valid i.i.d. sample stream, stopping mid-batch exactly
// where the sequential rule would. Unused draws are discarded.
// Deterministic per (seed, workers). The returned Samples counts the
// consumed prefix, not the discarded tail.
//
// newSampler is called once per worker: samplers are typically
// stateful (walkers, caches) and not safe for concurrent use, so each
// worker needs its own instance.
//
// The context is checked between rounds (one batch of Chunk draws per
// worker); a cancelled run returns the partial mean and ctx.Err().
//
// EstimateStoppingRuleMulti (multi.go) mirrors this round scaffolding
// for multi-target streams; behavioural changes here (cancellation,
// cap, accounting) must be applied there too.
func EstimateStoppingRuleParallel(ctx context.Context, newSampler func() Sampler, eps, delta float64, seed int64, workers, maxSamples int) (Estimate, error) {
	if workers <= 1 {
		return EstimateStoppingRule(ctx, newSampler(), eps, delta, seed, maxSamples)
	}
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		panic(fmt.Sprintf("engine: invalid parameters eps=%v delta=%v", eps, delta))
	}
	upsilon1 := 1 + (1+eps)*4*(math.E-2)*math.Log(2/delta)/(eps*eps)
	tr := TraceFrom(ctx)
	defer tr.StartSpan("sample:stopping-rule")()
	start := time.Now()
	samplers := make([]Sampler, workers)
	rngs := make([]*rand.Rand, workers)
	for i := range samplers {
		samplers[i] = newSampler()
		rngs[i] = rngFor(seed, PhaseStoppingRule, i)
	}
	sum := 0.0
	n := 0
	// performed counts every sampler invocation, discarded tail
	// included — the number the engine_samples_drawn counter reports;
	// n counts only the consumed prefix the rule's law is defined on.
	performed := 0
	rounds := int64(0)
	acct := func(cancelled bool) Accounting {
		open := 1
		if sum >= upsilon1 {
			open = 0
		}
		tr.FinalCheckpoint(int64(n), safeDiv(sum, n), open)
		per := make([]int64, workers)
		for w := range per {
			per[w] = rounds * Chunk
		}
		a := Accounting{
			Draws: int64(performed), Chunks: rounds, Workers: workers, PerWorker: per,
			WallNanos: time.Since(start).Nanoseconds(), Cancelled: cancelled,
		}
		record(PhaseStoppingRule, 0, a)
		return a
	}
	outcomes := make([][]bool, workers)
	done := make(chan int, workers)
	for {
		if err := ctx.Err(); err != nil {
			return Estimate{Value: safeDiv(sum, n), Samples: n, Epsilon: eps, Delta: delta, Acct: acct(true)}, err
		}
		if maxSamples > 0 && n >= maxSamples {
			return Estimate{Value: safeDiv(sum, n), Samples: n, Epsilon: eps, Delta: delta, Acct: acct(false)}, nil
		}
		for w := 0; w < workers; w++ {
			go func(w int) {
				out := make([]bool, Chunk)
				for i := range out {
					out[i] = samplers[w](rngs[w])
				}
				outcomes[w] = out
				done <- w
			}(w)
		}
		for w := 0; w < workers; w++ {
			<-done
		}
		performed += workers * Chunk
		rounds++
		// Consume the canonical interleaving sequentially.
		for w := 0; w < workers; w++ {
			for _, hit := range outcomes[w] {
				n++
				if hit {
					sum++
				}
				if sum >= upsilon1 {
					return Estimate{Value: upsilon1 / float64(n), Samples: n, Epsilon: eps, Delta: delta, Converged: true, Acct: acct(false)}, nil
				}
			}
		}
		// One checkpoint per round, after the deterministic sequential
		// consume — the only scheduler-independent mid-run view.
		tr.Checkpoint(int64(n), sum/float64(n), 1)
	}
}

// EstimateAA runs the full 𝒜𝒜 (approximation algorithm) of Dagum,
// Karp, Luby and Ross, "An Optimal Algorithm for Monte Carlo
// Estimation" [reference 8 of the paper] — the estimator whose
// expected sample count is within a constant factor of optimal for any
// random variable on [0,1]. The stopping rule of EstimateStoppingRule
// is its first phase; the full algorithm adds a variance-estimation
// phase so that low-variance targets (probabilities near 0 or 1) cost
// fewer samples than the plain 1/μ rule.
//
// Phases (for Bernoulli Z with mean μ):
//  1. Stopping rule with ε' = min(1/2, √ε) and δ/3 → crude estimate μ̂.
//  2. Estimate ρ = max(σ², εμ) with N = Υ₂·ε/μ̂ sample pairs, where
//     Υ₂ = 2(1+√ε)(1+2√ε)(1+ln(3/2)/ln(2/δ))·Υ and
//     Υ = 4(e−2)ln(2/δ)/ε².
//  3. Final estimate with N = Υ₂·ρ̂/μ̂² samples.
//
// Guarantee: Pr[|μ̃ − μ| ≤ ε·μ] ≥ 1−δ, with E[N] = O(ρ·ln(1/δ)/(ε²μ²)),
// which for Bernoulli variables is O(ln(1/δ)/(ε²·max(μ, ε))) — a
// factor min(1/ε, 1/μ) better than the plain stopping rule when μ ≫ ε.
//
// maxSamples caps the total draws across all three phases (0 = no
// cap); on exhaustion the current phase's plain mean is returned with
// Converged = false. The context is checked once per Chunk draws; a
// cancelled run returns the current phase's partial estimate and
// ctx.Err().
func EstimateAA(ctx context.Context, s Sampler, eps, delta float64, seed int64, maxSamples int) (Estimate, error) {
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		panic("engine: invalid parameters for EstimateAA")
	}
	tr := TraceFrom(ctx)
	defer tr.StartSpan("sample:aa")()
	// endPhase closes the sub-span of whichever 𝒜𝒜 phase is running;
	// finish calls it so budget-exhausted and cancelled exits still
	// close the current phase.
	endPhase := func() {}
	start := time.Now()
	rng := rngFor(seed, PhaseAA, 0)
	used := 0
	chunks := int64(0)
	var ctxErr error
	// draw returns false when the budget is exhausted or the context is
	// cancelled (recorded in ctxErr); the caller then reports the
	// current phase's partial estimate.
	draw := func() (float64, bool) {
		if maxSamples > 0 && used >= maxSamples {
			return 0, false
		}
		if used%Chunk == 0 {
			chunks++
			if err := ctx.Err(); err != nil {
				ctxErr = err
				return 0, false
			}
		}
		used++
		if s(rng) {
			return 1, true
		}
		return 0, true
	}
	finish := func(e Estimate) (Estimate, error) {
		endPhase()
		open := 1
		if e.Converged {
			open = 0
		}
		tr.FinalCheckpoint(int64(used), e.Value, open)
		e.Acct = Accounting{
			Draws: int64(used), Chunks: chunks, Workers: 1,
			WallNanos: time.Since(start).Nanoseconds(), Cancelled: ctxErr != nil,
		}
		record(PhaseAA, 0, e.Acct)
		return e, ctxErr
	}

	upsilon := 4 * (math.E - 2) * math.Log(3/delta) / (eps * eps)
	upsilon2 := 2 * (1 + math.Sqrt(eps)) * (1 + 2*math.Sqrt(eps)) *
		(1 + math.Log(1.5)/math.Log(3/delta)) * upsilon

	// Phase 1: stopping rule with ε' = min(1/2, √ε).
	endPhase = tr.StartSpan("aa:phase1")
	eps1 := math.Min(0.5, math.Sqrt(eps))
	upsilon1 := 1 + (1+eps1)*4*(math.E-2)*math.Log(3/delta)/(eps1*eps1)
	sum := 0.0
	n1 := 0
	for sum < upsilon1 {
		x, ok := draw()
		if !ok {
			return finish(Estimate{Value: safeDiv(sum, n1), Samples: used, Epsilon: eps, Delta: delta})
		}
		n1++
		sum += x
		if n1%Chunk == 0 {
			tr.Checkpoint(int64(used), sum/float64(n1), 1)
		}
	}
	muHat := upsilon1 / float64(n1)

	// Phase 2: variance estimation from sample pairs.
	endPhase()
	endPhase = tr.StartSpan("aa:phase2")
	n2 := int(math.Ceil(upsilon2 * eps / muHat))
	if n2 < 1 {
		n2 = 1
	}
	var s2 float64
	for i := 0; i < n2; i++ {
		a, ok := draw()
		if !ok {
			return finish(Estimate{Value: muHat, Samples: used, Epsilon: eps, Delta: delta})
		}
		b, ok := draw()
		if !ok {
			return finish(Estimate{Value: muHat, Samples: used, Epsilon: eps, Delta: delta})
		}
		d := a - b
		s2 += d * d / 2
	}
	rhoHat := math.Max(s2/float64(n2), eps*muHat)

	// Phase 3: final estimate.
	endPhase()
	endPhase = tr.StartSpan("aa:phase3")
	n3 := int(math.Ceil(upsilon2 * rhoHat / (muHat * muHat)))
	if n3 < 1 {
		n3 = 1
	}
	total := 0.0
	for i := 0; i < n3; i++ {
		x, ok := draw()
		if !ok {
			return finish(Estimate{Value: total / float64(i+1), Samples: used, Epsilon: eps, Delta: delta})
		}
		total += x
		if (i+1)%Chunk == 0 {
			tr.Checkpoint(int64(used), total/float64(i+1), 1)
		}
	}
	return finish(Estimate{
		Value:     total / float64(n3),
		Samples:   used,
		Epsilon:   eps,
		Delta:     delta,
		Converged: true,
	})
}
