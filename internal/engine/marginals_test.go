package engine

import (
	"math"
	"math/rand"
	"testing"
)

// biasedCounter simulates a repair drawer over nFacts facts where fact
// i survives independently with probability p[i]; one call updates
// every fact's counter — the amortised marginals shape.
func biasedCounter(p []float64) func() CountSampler {
	return func() CountSampler {
		return func(rng *rand.Rand, counts []int) {
			for i, pi := range p {
				if rng.Float64() < pi {
					counts[i]++
				}
			}
		}
	}
}

func TestMarginalsAccuracy(t *testing.T) {
	p := []float64{0.9, 0.5, 0.1, 1, 0}
	counts, drawn, err := Marginals(bg, biasedCounter(p), len(p), 60_000, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if drawn != 60_000 {
		t.Fatalf("drawn = %d", drawn)
	}
	for i, pi := range p {
		got := float64(counts[i]) / float64(drawn)
		if math.Abs(got-pi) > 0.01 {
			t.Fatalf("fact %d: marginal %.4f far from %.2f", i, got, pi)
		}
	}
}

func TestMarginalsParallelAccuracyAndFullBudget(t *testing.T) {
	p := []float64{0.8, 0.25}
	counts, drawn, err := Marginals(bg, biasedCounter(p), len(p), 100_001, 7, 8)
	if err != nil {
		t.Fatal(err)
	}
	if drawn != 100_001 {
		t.Fatalf("parallel marginals drew %d of 100001", drawn)
	}
	for i, pi := range p {
		got := float64(counts[i]) / float64(drawn)
		if math.Abs(got-pi) > 0.01 {
			t.Fatalf("fact %d: marginal %.4f far from %.2f", i, got, pi)
		}
	}
}

// TestMarginalsDeterministicPerSeedAndWorkers: the worker/seed
// determinism guarantee — same (seed, workers) reproduces the exact
// count vector; different seeds or worker counts move it.
func TestMarginalsDeterministicPerSeedAndWorkers(t *testing.T) {
	p := []float64{0.6, 0.3, 0.9}
	run := func(seed int64, workers int) []int {
		counts, _, err := Marginals(bg, biasedCounter(p), len(p), 20_000, seed, workers)
		if err != nil {
			t.Fatal(err)
		}
		return counts
	}
	for _, workers := range []int{1, 4} {
		a, b := run(11, workers), run(11, workers)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("workers=%d: counts differ at %d: %d vs %d", workers, i, a[i], b[i])
			}
		}
	}
	a, c := run(11, 1), run(12, 1)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should produce different counts (overwhelmingly)")
	}
}

func TestMarginalsPanicsOnZeroBudget(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Marginals(bg, biasedCounter([]float64{0.5}), 1, 0, 1, 1)
}

func TestSamplesDrawnCounterMoves(t *testing.T) {
	before := SamplesDrawn()
	if _, _, err := Marginals(bg, biasedCounter([]float64{0.5}), 1, 1000, 1, 2); err != nil {
		t.Fatal(err)
	}
	if got := SamplesDrawn() - before; got < 1000 {
		t.Fatalf("samples-drawn counter moved by %d, want ≥ 1000", got)
	}
}
