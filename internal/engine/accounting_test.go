package engine

import (
	"context"
	"math/rand"
	"testing"
)

func coin(p float64) func() Sampler {
	return func() Sampler {
		return func(rng *rand.Rand) bool { return rng.Float64() < p }
	}
}

// TestAccountingFixed: the per-worker split must sum to the draw
// total and match splitQuota, and wall time must be recorded.
func TestAccountingFixed(t *testing.T) {
	for _, workers := range []int{1, 4} {
		est, err := EstimateFixed(context.Background(), coin(0.5), 10_000, 3, workers)
		if err != nil {
			t.Fatal(err)
		}
		a := est.Acct
		if a.Draws != 10_000 {
			t.Fatalf("workers=%d: %d draws accounted, want 10000", workers, a.Draws)
		}
		if a.Workers != workers {
			t.Fatalf("workers=%d: accounted %d workers", workers, a.Workers)
		}
		if a.Chunks <= 0 || a.WallNanos < 0 || a.Cancelled {
			t.Fatalf("workers=%d: implausible accounting %+v", workers, a)
		}
		if workers == 1 {
			if a.PerWorker != nil {
				t.Fatalf("serial run should have no per-worker split, got %v", a.PerWorker)
			}
			continue
		}
		var sum int64
		for w, d := range a.PerWorker {
			if d != int64(splitQuota(10_000, workers, w)) {
				t.Fatalf("worker %d drew %d, want splitQuota %d", w, d, splitQuota(10_000, workers, w))
			}
			sum += d
		}
		if sum != a.Draws {
			t.Fatalf("per-worker split sums to %d, draws %d", sum, a.Draws)
		}
	}
}

// TestAccountingStoppingRuleParallel: Draws counts the discarded tail
// (a multiple of workers×Chunk), Samples only the consumed prefix.
func TestAccountingStoppingRuleParallel(t *testing.T) {
	est, err := EstimateStoppingRuleParallel(context.Background(), coin(0.3), 0.2, 0.1, 7, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := est.Acct
	if a.Draws < int64(est.Samples) {
		t.Fatalf("accounted draws %d < consumed samples %d", a.Draws, est.Samples)
	}
	if a.Draws%(4*Chunk) != 0 {
		t.Fatalf("parallel rule draws %d not a whole number of rounds", a.Draws)
	}
	var sum int64
	for _, d := range a.PerWorker {
		sum += d
	}
	if sum != a.Draws {
		t.Fatalf("per-worker split sums to %d, draws %d", sum, a.Draws)
	}
}

// TestAccountingCancelled: a cancelled run is flagged in its own
// accounting and in the process-wide counter.
func TestAccountingCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := CancelledRuns()
	est, err := EstimateFixed(ctx, coin(0.5), 100_000, 1, 2)
	if err == nil {
		t.Fatal("want context error")
	}
	if !est.Acct.Cancelled {
		t.Fatalf("cancelled run not flagged: %+v", est.Acct)
	}
	if CancelledRuns() != before+1 {
		t.Fatalf("cancelled-runs counter moved %d, want 1", CancelledRuns()-before)
	}
}

// TestRunHook: the hook observes every run exactly once, with the
// phase and the run's accounting; SetRunHook(nil) removes it.
func TestRunHook(t *testing.T) {
	var infos []RunInfo
	SetRunHook(func(ri RunInfo) { infos = append(infos, ri) })
	defer SetRunHook(nil)

	if _, err := EstimateFixed(context.Background(), coin(0.5), 1000, 1, 1); err != nil {
		t.Fatal(err)
	}
	multi := func() MultiSampler {
		return func(rng *rand.Rand, out []bool, _ []int) {
			out[0] = rng.Float64() < 0.5
			out[1] = rng.Float64() < 0.2
		}
	}
	if _, err := EstimateFixedMulti(context.Background(), multi, 2, 1000, 1, 1); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("hook fired %d times, want 2", len(infos))
	}
	if infos[0].Phase != PhaseFixed || infos[0].Targets != 0 || infos[0].Acct.Draws != 1000 {
		t.Fatalf("fixed run info %+v", infos[0])
	}
	if infos[1].Phase != PhaseMultiFixed || infos[1].Targets != 2 || infos[1].Acct.Draws != 1000 {
		t.Fatalf("multi run info %+v", infos[1])
	}

	SetRunHook(nil)
	if _, err := EstimateFixed(context.Background(), coin(0.5), 1000, 1, 1); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatal("hook fired after removal")
	}
}
