package engine

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
)

// traceSampler is a deterministic Bernoulli(0.3) sampler.
func traceSampler() Sampler {
	return func(rng *rand.Rand) bool { return rng.Float64() < 0.3 }
}

func traceMultiSampler() MultiSampler {
	return func(rng *rand.Rand, out []bool, active []int) {
		x := rng.Float64()
		if active == nil {
			for t := range out {
				out[t] = x < 0.2+0.1*float64(t)
			}
			return
		}
		for _, t := range active {
			out[t] = x < 0.2+0.1*float64(t)
		}
	}
}

// runTraced runs f under a fresh trace and returns its curve.
func runTraced(t *testing.T, f func(ctx context.Context)) []Checkpoint {
	t.Helper()
	tr := NewTrace()
	f(ContextWithTrace(context.Background(), tr))
	return tr.Curve()
}

// TestTraceCheckpointsDeterministic: for a fixed (seed, workers) pair
// the convergence curve is bitwise-identical across two runs — the
// property the explain surface's diffability rests on. Spans carry
// wall-clock times and are deliberately excluded.
func TestTraceCheckpointsDeterministic(t *testing.T) {
	cases := []struct {
		name string
		run  func(ctx context.Context)
	}{
		{"fixed-serial", func(ctx context.Context) {
			_, _ = EstimateFixed(ctx, traceSampler, 5000, 42, 1)
		}},
		{"fixed-parallel", func(ctx context.Context) {
			_, _ = EstimateFixed(ctx, traceSampler, 5000, 42, 4)
		}},
		{"stopping-serial", func(ctx context.Context) {
			_, _ = EstimateStoppingRule(ctx, traceSampler(), 0.2, 0.1, 42, 0)
		}},
		{"stopping-parallel", func(ctx context.Context) {
			_, _ = EstimateStoppingRuleParallel(ctx, traceSampler, 0.2, 0.1, 42, 4, 0)
		}},
		{"aa", func(ctx context.Context) {
			_, _ = EstimateAA(ctx, traceSampler(), 0.2, 0.1, 42, 0)
		}},
		{"multi-fixed-serial", func(ctx context.Context) {
			_, _ = EstimateFixedMulti(ctx, traceMultiSampler, 3, 5000, 42, 1)
		}},
		{"multi-stopping-parallel", func(ctx context.Context) {
			_, _ = EstimateStoppingRuleMulti(ctx, traceMultiSampler, 3, 0.2, 0.1, 42, 4, 0)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c1 := runTraced(t, tc.run)
			c2 := runTraced(t, tc.run)
			if len(c1) == 0 {
				t.Fatalf("no checkpoints recorded")
			}
			if !reflect.DeepEqual(c1, c2) {
				t.Fatalf("curves differ across identical runs:\n%v\nvs\n%v", c1, c2)
			}
			last := c1[len(c1)-1]
			if last.Draws <= 0 || last.HalfWidth <= 0 {
				t.Fatalf("terminal checkpoint malformed: %+v", last)
			}
		})
	}
}

// TestTraceOffByDefault: without ContextWithTrace, TraceFrom yields
// nil and every Trace method is a safe no-op — the gated-off path the
// bench regression gate requires to cost ~nothing.
func TestTraceOffByDefault(t *testing.T) {
	if tr := TraceFrom(context.Background()); tr != nil {
		t.Fatalf("TraceFrom on a bare context = %v, want nil", tr)
	}
	var tr *Trace
	tr.Checkpoint(100, 0.5, 0)
	tr.FinalCheckpoint(100, 0.5, 0)
	tr.StartSpan("noop")()
	if got := tr.Curve(); got != nil {
		t.Fatalf("nil trace Curve() = %v, want nil", got)
	}
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil trace Spans() = %v, want nil", got)
	}
	if ContextWithTrace(context.Background(), nil) != context.Background() {
		t.Fatalf("ContextWithTrace(nil) must return ctx unchanged")
	}
}

// TestTraceDecimationBounded: offering far more checkpoints than the
// cap keeps the curve bounded, ordered and terminated by the final
// point.
func TestTraceDecimationBounded(t *testing.T) {
	tr := NewTrace()
	for i := 1; i <= 10_000; i++ {
		tr.Checkpoint(int64(i*Chunk), 0.5, 0)
	}
	tr.FinalCheckpoint(10_000*Chunk+7, 0.25, 0)
	curve := tr.Curve()
	if len(curve) > maxCheckpoints {
		t.Fatalf("curve holds %d points, cap is %d", len(curve), maxCheckpoints)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Draws <= curve[i-1].Draws {
			t.Fatalf("curve not strictly increasing at %d: %v then %v", i, curve[i-1], curve[i])
		}
	}
	last := curve[len(curve)-1]
	if last.Draws != 10_000*Chunk+7 || last.Value != 0.25 {
		t.Fatalf("terminal point lost in decimation: %+v", last)
	}
}

// TestTraceSpansRecorded: the estimators label their sampling phases;
// 𝒜𝒜 additionally nests its three phase sub-spans inside sample:aa.
func TestTraceSpansRecorded(t *testing.T) {
	tr := NewTrace()
	ctx := ContextWithTrace(context.Background(), tr)
	if _, err := EstimateAA(ctx, traceSampler(), 0.2, 0.1, 42, 0); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"sample:aa": false, "aa:phase1": false, "aa:phase2": false, "aa:phase3": false}
	for _, sp := range tr.Spans() {
		if sp.EndNanos < sp.StartNanos {
			t.Fatalf("span %q ends before it starts: %+v", sp.Name, sp)
		}
		if _, ok := want[sp.Name]; ok {
			want[sp.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("span %q missing from %v", name, tr.Spans())
		}
	}
}
