// Package engine is the shared Monte-Carlo estimation engine every
// sampling consumer of the reproduction runs through: the fixed-sample
// Chernoff construction behind the paper's FPRAS theorems (5.1(2),
// 6.1(2), 7.1(2), 7.5), the Dagum–Karp–Luby–Ross stopping rule and
// full 𝒜𝒜 estimator [reference 8 of the paper], and the amortised
// per-fact marginal counter. The statistical machinery (sample-count
// bounds, probability lower bounds) stays in internal/fpras; this
// package owns the execution of the draw loops.
//
// Three properties hold for every loop in this package:
//
//   - Cancellable: every estimator takes a context.Context and checks
//     it between sample chunks (Chunk draws per worker), so a server
//     deadline or a vanished client stops the work within one chunk
//     instead of abandoning it to burn a worker to completion. A
//     cancelled run returns the partial estimate together with the
//     context's error.
//
//   - Parallel: the fixed-sample, stopping-rule and marginal loops
//     split their draws across workers. Merging is deterministic, so
//     the same (seed, workers) pair always reproduces the same
//     estimate regardless of goroutine scheduling.
//
//   - Centrally seeded: every worker RNG is derived once, here, by
//     Substream — SplitMix64-style mixing of (seed, phase, worker) —
//     so distinct estimation phases can never hand identical
//     substreams to their workers for the same user seed (the bug the
//     previous per-call-site `seed + w*constant` derivations had).
package engine

import (
	"math/rand"
	"sync/atomic"
)

// Sampler draws one Bernoulli observation: whether a sampled repair
// (or sequence, or chain walk) satisfies the query.
type Sampler func(rng *rand.Rand) bool

// Estimate is the outcome of a randomized estimation.
type Estimate struct {
	// Value is the estimate of the target probability.
	Value float64
	// Samples is the number of draws consumed.
	Samples int
	// Epsilon and Delta echo the requested guarantee (0 when a raw
	// fixed-sample estimate was requested).
	Epsilon, Delta float64
	// Converged is false when a capped stopping-rule run exhausted its
	// budget before meeting the rule; Value is then the plain mean.
	Converged bool
	// Acct is the run's cost accounting. Multi-target runs stamp every
	// returned estimate with the same run-level record (one shared
	// PerWorker slice — treat as read-only).
	Acct Accounting
}

// Chunk is the cancellation granularity: every estimation loop checks
// its context at least once per Chunk draws per worker, so a cancelled
// run overshoots the cancellation point by at most workers × Chunk
// samples.
const Chunk = 256

// Phase names an estimation phase for substream derivation. Distinct
// phases mix differently into Substream, so two phases that happen to
// run with the same user seed and worker index still draw from
// independent streams.
type Phase uint64

const (
	// PhaseFixed: the fixed-sample-count loops (EstimateFixed).
	PhaseFixed Phase = 1 + iota
	// PhaseStoppingRule: the DKLR stopping rule, serial and parallel.
	PhaseStoppingRule
	// PhaseAA: the full three-phase 𝒜𝒜 estimator.
	PhaseAA
	// PhaseMarginals: the per-fact marginal counting loop.
	PhaseMarginals
	// PhaseMultiFixed: the fixed-sample multi-target loop
	// (EstimateFixedMulti).
	PhaseMultiFixed
	// PhaseMultiStopping: the multi-target stopping rule, serial and
	// parallel.
	PhaseMultiStopping
)

// splitmix64 is the finalizer of the SplitMix64 generator (Steele,
// Lea, Flood 2014) — a bijective avalanche mix.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Substream derives the deterministic RNG seed for one worker of one
// estimation phase. All worker streams in this package come from here:
// the (seed, phase, worker) triple is avalanche-mixed, so neighbouring
// seeds, phases or worker indices share no structure.
func Substream(seed int64, phase Phase, worker int) int64 {
	x := splitmix64(uint64(seed))
	x = splitmix64(x ^ uint64(phase))
	x = splitmix64(x ^ uint64(worker))
	return int64(x)
}

// rngFor builds the worker's rand.Rand on its derived substream.
func rngFor(seed int64, phase Phase, worker int) *rand.Rand {
	return rand.New(rand.NewSource(Substream(seed, phase, worker)))
}

// Process-wide operational counters, exposed by the server as
// engine_* fields of /varz.
var (
	samplesDrawn  atomic.Int64
	cancelledRuns atomic.Int64
	multiRuns     atomic.Int64
	multiTargets  atomic.Int64
)

// SamplesDrawn returns the total Monte-Carlo draws performed by this
// package's loops process-wide (partial draws of cancelled runs
// included).
func SamplesDrawn() int64 { return samplesDrawn.Load() }

// CancelledRuns returns the number of estimation runs stopped early by
// context cancellation process-wide.
func CancelledRuns() int64 { return cancelledRuns.Load() }

// MultiRuns returns the number of multi-target estimation runs
// (shared-draw passes serving every answer tuple at once) performed
// process-wide, cancelled runs included.
func MultiRuns() int64 { return multiRuns.Load() }

// MultiTargets returns the total number of targets estimated by
// multi-target runs process-wide — MultiTargets/MultiRuns is the mean
// number of answer tuples a single shared pass served.
func MultiTargets() int64 { return multiTargets.Load() }

// splitQuota divides n draws over workers as evenly as possible
// (earlier workers take the remainder), mirroring the deterministic
// split every parallel loop uses.
func splitQuota(n, workers, w int) int {
	per, extra := n/workers, n%workers
	if w < extra {
		return per + 1
	}
	return per
}
