package engine

import (
	"math"
	"runtime"
	"testing"
)

func TestChooseWorkersBounds(t *testing.T) {
	maxW := runtime.GOMAXPROCS(0)
	cases := []struct {
		blocks int
		draws  int64
	}{
		{0, 0}, {1, 1}, {0, -5}, {1, 1000}, {250, 20000},
		{1000, 5_000_000}, {1 << 20, 1 << 40},
	}
	for _, c := range cases {
		w := ChooseWorkers(c.blocks, c.draws)
		if w < 1 || w > maxW {
			t.Fatalf("ChooseWorkers(%d, %d) = %d, outside [1, %d]", c.blocks, c.draws, w, maxW)
		}
	}
}

func TestChooseWorkersSmallWorkStaysSerial(t *testing.T) {
	// Anything below the per-worker threshold must not spawn a pool:
	// the goroutine and merge overhead would exceed the sampling work.
	for _, c := range []struct {
		blocks int
		draws  int64
	}{{1, 1000}, {10, 10_000}, {250, 5000}} {
		if w := ChooseWorkers(c.blocks, c.draws); w != 1 {
			t.Fatalf("ChooseWorkers(%d, %d) = %d, want 1 for sub-threshold work", c.blocks, c.draws, w)
		}
	}
}

func TestChooseWorkersMonotoneInWork(t *testing.T) {
	prev := 0
	for _, draws := range []int64{1, 1 << 10, 1 << 15, 1 << 20, 1 << 25, 1 << 30, 1 << 40} {
		w := ChooseWorkers(64, draws)
		if w < prev {
			t.Fatalf("ChooseWorkers not monotone: draws=%d gives %d after %d", draws, w, prev)
		}
		prev = w
	}
	if huge := ChooseWorkers(1<<20, 1<<40); huge != runtime.GOMAXPROCS(0) {
		t.Fatalf("saturating work chose %d workers, want GOMAXPROCS=%d", huge, runtime.GOMAXPROCS(0))
	}
}

func TestChooseWorkersOverflowSaturates(t *testing.T) {
	// The work estimate draws×blocks used to be an unchecked int64
	// multiply: ~25k blocks × a huge draw budget wrapped negative and
	// auto-selected 1 worker on exactly the workloads that need the
	// most. Pin GOMAXPROCS above 1 so the regression is visible on
	// single-core CI hosts too (there the [1, GOMAXPROCS] clamp would
	// mask the wrap).
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	maxW := runtime.GOMAXPROCS(0)
	cases := []struct {
		blocks int
		draws  int64
	}{
		{25_000, math.MaxInt64 / 2},    // wraps negative unchecked
		{1 << 30, 1 << 40},             // wraps positive-but-garbage
		{math.MaxInt32, math.MaxInt64}, // extreme corner
		{2, math.MaxInt64},             // blocks > MaxInt64/draws boundary
	}
	for _, c := range cases {
		if w := ChooseWorkers(c.blocks, c.draws); w != maxW {
			t.Fatalf("ChooseWorkers(%d, %d) = %d, want GOMAXPROCS=%d (overflow must saturate, not wrap)",
				c.blocks, c.draws, w, maxW)
		}
	}
	// Just below the threshold the exact product is still used: the
	// saturation path must not inflate small work.
	if w := ChooseWorkers(1, 10); w != 1 {
		t.Fatalf("tiny work chose %d workers after saturation change, want 1", w)
	}
}

func TestResolveWorkers(t *testing.T) {
	if got := ResolveWorkers(3, 1000, 1<<40); got != 3 {
		t.Fatalf("explicit request must pass through, got %d", got)
	}
	before := AutoWorkerRuns()
	w := ResolveWorkers(AutoWorkers, 250, 20000)
	if w < 1 || w > runtime.GOMAXPROCS(0) {
		t.Fatalf("auto resolution out of range: %d", w)
	}
	if AutoWorkerRuns() != before+1 {
		t.Fatalf("auto resolution did not bump AutoWorkerRuns")
	}
	if LastAutoWorkers() != int64(w) {
		t.Fatalf("LastAutoWorkers=%d, want %d", LastAutoWorkers(), w)
	}
	if got := ResolveWorkers(-2, 1, 1); got != 1 {
		t.Fatalf("negative request must resolve adaptively to ≥1, got %d", got)
	}
}
