package engine

import (
	"math"
	"testing"
)

func TestEstimateAAAccuracy(t *testing.T) {
	for _, p := range []float64{0.5, 0.1, 0.02} {
		e, err := EstimateAA(bg, bernoulli(p), 0.1, 0.05, 23, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !e.Converged {
			t.Fatalf("p=%v: did not converge", p)
		}
		if math.Abs(e.Value-p) > 0.15*p {
			t.Fatalf("p=%v: estimate %.5f outside tolerance", p, e.Value)
		}
	}
}

// TestEstimateAABeatsSRAForLargeMu: for μ ≫ ε the variance phase lets
// AA stop with far fewer samples than the plain stopping rule, which
// is the whole point of [8]'s optimality.
func TestEstimateAABeatsSRAForLargeMu(t *testing.T) {
	const p, eps, delta = 0.9, 0.05, 0.05
	aa, err := EstimateAA(bg, bernoulli(p), eps, delta, 29, 0)
	if err != nil {
		t.Fatal(err)
	}
	sra, err := EstimateStoppingRule(bg, bernoulli(p), eps, delta, 29, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !aa.Converged || !sra.Converged {
		t.Fatal("estimators did not converge")
	}
	if math.Abs(aa.Value-p) > eps*p {
		t.Fatalf("AA estimate %.4f outside ε", aa.Value)
	}
	if aa.Samples >= sra.Samples {
		t.Fatalf("AA used %d samples, SRA %d: variance phase should win at μ=0.9",
			aa.Samples, sra.Samples)
	}
}

func TestEstimateAACapped(t *testing.T) {
	e, err := EstimateAA(bg, bernoulli(0), 0.1, 0.1, 31, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if e.Converged {
		t.Fatal("p=0 cannot converge")
	}
	if e.Samples > 3000 {
		t.Fatalf("budget exceeded: %d", e.Samples)
	}
}

func TestEstimateAAPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EstimateAA(bg, bernoulli(0.5), 0, 0.1, 1, 0)
}

func TestStoppingRuleParallelAccuracy(t *testing.T) {
	for _, p := range []float64{0.3, 0.05} {
		e, err := EstimateStoppingRuleParallel(bg, factory(p), 0.1, 0.05, 37, 4, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !e.Converged {
			t.Fatalf("p=%v: did not converge", p)
		}
		if math.Abs(e.Value-p) > 0.15*p {
			t.Fatalf("p=%v: estimate %.5f outside tolerance", p, e.Value)
		}
	}
}

func TestStoppingRuleParallelSingleWorkerDelegates(t *testing.T) {
	a, _ := EstimateStoppingRuleParallel(bg, factory(0.4), 0.1, 0.05, 41, 1, 0)
	b, _ := EstimateStoppingRule(bg, bernoulli(0.4), 0.1, 0.05, 41, 0)
	if a.Value != b.Value || a.Samples != b.Samples {
		t.Fatal("workers=1 must delegate to the sequential rule")
	}
}

func TestStoppingRuleParallelDeterministic(t *testing.T) {
	a, _ := EstimateStoppingRuleParallel(bg, factory(0.2), 0.1, 0.05, 43, 4, 0)
	b, _ := EstimateStoppingRuleParallel(bg, factory(0.2), 0.1, 0.05, 43, 4, 0)
	if a.Value != b.Value || a.Samples != b.Samples {
		t.Fatal("same seed and workers must reproduce")
	}
}

func TestStoppingRuleParallelCapped(t *testing.T) {
	e, err := EstimateStoppingRuleParallel(bg, factory(0), 0.1, 0.1, 47, 4, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if e.Converged || e.Value != 0 {
		t.Fatalf("capped run wrong: %+v", e)
	}
}

// TestParallelMatchesSequentialLaw: across many seeds, the parallel
// rule's estimates have the same accuracy profile as the sequential
// rule (both honour the (ε, δ) guarantee).
func TestParallelMatchesSequentialLaw(t *testing.T) {
	const p, eps = 0.15, 0.2
	failSeq, failPar := 0, 0
	for seed := int64(0); seed < 40; seed++ {
		seq, _ := EstimateStoppingRule(bg, bernoulli(p), eps, 0.1, 1000+seed, 0)
		par, _ := EstimateStoppingRuleParallel(bg, factory(p), eps, 0.1, 2000+seed, 3, 0)
		if math.Abs(seq.Value-p) > eps*p {
			failSeq++
		}
		if math.Abs(par.Value-p) > eps*p {
			failPar++
		}
	}
	if failSeq > 10 || failPar > 10 {
		t.Fatalf("failure rates too high: seq %d, par %d of 40", failSeq, failPar)
	}
}
