package engine

// Adaptive worker selection. Callers historically hardcoded a worker
// count, which lets a caller talk the engine into a slowdown: on a
// single-core host 8 workers lose to 1 (goroutine churn, chunk
// synchronisation), and even on big hosts a tiny draw budget never
// amortises the spawn cost. Workers = 0 now means "auto": the engine
// sizes the pool from the work it can actually see — the draw budget
// times the per-draw cost proxy (block count) — and never exceeds
// GOMAXPROCS.

import (
	"math"
	"runtime"
	"sync/atomic"
)

// AutoWorkers is the workers value that requests adaptive selection.
const AutoWorkers = 0

// autoWorkUnitsPerWorker calibrates the heuristic: one additional
// worker per this many work units, where a unit is one block visited
// by one draw (≈ a few ns of sampling work). The threshold corresponds
// to several milliseconds of serial work per worker — well above the
// per-run cost of spawning and merging a goroutine, so auto never
// parallelises a run that would finish faster serially.
const autoWorkUnitsPerWorker = 1 << 21

var (
	autoRuns        atomic.Int64
	lastAutoWorkers atomic.Int64
)

// ChooseWorkers returns the adaptive worker count for a run expected
// to perform `draws` draws over an instance whose per-draw cost is
// proportional to `blocks` (conflict blocks for repair samplers, alive
// pairs for operation walks). The result is in [1, GOMAXPROCS]: 1
// whenever the work cannot amortise a second goroutine, the core count
// when the work dwarfs the spawn cost.
func ChooseWorkers(blocks int, draws int64) int {
	maxW := runtime.GOMAXPROCS(0)
	if maxW < 1 {
		maxW = 1
	}
	if blocks < 1 {
		blocks = 1
	}
	if draws < 0 {
		draws = 0
	}
	// Saturate the work estimate: ~25k blocks times a multi-million draw
	// budget overflows int64, and a negative product would auto-select 1
	// worker on exactly the workloads that need the most. Past MaxInt64
	// units the answer is GOMAXPROCS either way, so clamping loses
	// nothing.
	work := int64(math.MaxInt64)
	if draws == 0 || int64(blocks) <= math.MaxInt64/draws {
		work = draws * int64(blocks)
	}
	w := int(work / autoWorkUnitsPerWorker)
	if w < 1 {
		return 1
	}
	if w > maxW {
		return maxW
	}
	return w
}

// ResolveWorkers maps a caller-requested worker count to the count a
// run will actually use: positive values are trusted verbatim,
// AutoWorkers (or any non-positive value) engages ChooseWorkers. Auto
// resolutions are counted for /varz.
func ResolveWorkers(requested, blocks int, draws int64) int {
	if requested > 0 {
		return requested
	}
	w := ChooseWorkers(blocks, draws)
	autoRuns.Add(1)
	lastAutoWorkers.Store(int64(w))
	return w
}

// AutoWorkerRuns returns how many runs resolved their worker count
// adaptively process-wide.
func AutoWorkerRuns() int64 { return autoRuns.Load() }

// LastAutoWorkers returns the worker count chosen by the most recent
// adaptive resolution (0 before the first one).
func LastAutoWorkers() int64 { return lastAutoWorkers.Load() }
