package engine

import (
	"sync/atomic"
	"time"
)

// Accounting is the structured cost record every estimation run
// produces: how many draws it performed (discarded stopping-rule tails
// included — this is the number a capacity planner pays for, not the
// statistical prefix Estimate.Samples reports), how many cancellation
// checkpoints it crossed, how the draws split across workers, and how
// long it ran. The server threads it into every response's `cost`
// object; Prepared accumulates it into per-instance totals.
//
// Accounting is filled once, at run exit, from per-worker locals — the
// draw loops never touch shared state per draw, so carrying it costs
// two time.Now calls and one slice allocation per run.
type Accounting struct {
	// Draws counts every sampler invocation of the run, including the
	// discarded tail of a parallel stopping rule and the partial work
	// of a cancelled run.
	Draws int64
	// Chunks counts the cancellation checkpoints the run crossed (one
	// per Chunk draws per worker in fixed loops, one per round in the
	// parallel stopping rules).
	Chunks int64
	// Workers is the effective worker count the run executed with
	// (after the ≤1 → serial collapse).
	Workers int
	// PerWorker is the per-worker draw split, indexed by worker; nil
	// for serial runs. Callers must treat it as read-only — multi-
	// target runs share one slice across all returned estimates.
	PerWorker []int64
	// WallNanos is the wall-clock duration of the run.
	WallNanos int64
	// Cancelled reports that the run was stopped by its context before
	// completing its budget or meeting its rule.
	Cancelled bool
	// ReusedDraws counts draws whose statistics were carried over from
	// a previous generation's strata instead of being redrawn — the
	// delta-stratified estimation path sets it; the engine's own loops
	// never do. Draws remains the fresh work of THIS run, so
	// Draws + ReusedDraws is the statistical weight behind the
	// estimate.
	ReusedDraws int64
}

// Wall returns the run's wall-clock duration.
func (a Accounting) Wall() time.Duration { return time.Duration(a.WallNanos) }

// RunInfo is what the run hook observes: the phase that ran, the
// number of multi-run targets (0 for single-target phases), and the
// run's accounting.
type RunInfo struct {
	Phase   Phase
	Targets int
	Acct    Accounting
}

// RunHook observes one completed (or cancelled) estimation run. Hooks
// must be cheap and must not block: they run inline on the estimation
// goroutine, once per run — never per draw — so a histogram update
// keeps engine overhead well under the instrumentation budget.
type RunHook func(RunInfo)

var runHook atomic.Pointer[RunHook]

// SetRunHook installs the process-wide run hook (nil to remove). The
// server uses it to feed per-run draw and latency histograms.
func SetRunHook(h RunHook) {
	if h == nil {
		runHook.Store(nil)
		return
	}
	runHook.Store(&h)
}

// record is the single exit point of every estimation run: it updates
// the process-wide counters and fires the run hook. targets is 0 for
// single-target phases.
func record(phase Phase, targets int, acct Accounting) {
	samplesDrawn.Add(acct.Draws)
	if acct.Cancelled {
		cancelledRuns.Add(1)
	}
	if phase == PhaseMultiFixed || phase == PhaseMultiStopping {
		multiRuns.Add(1)
		multiTargets.Add(int64(targets))
	}
	if h := runHook.Load(); h != nil {
		(*h)(RunInfo{Phase: phase, Targets: targets, Acct: acct})
	}
}
