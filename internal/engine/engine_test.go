package engine

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/fpras"
)

func bernoulli(p float64) Sampler {
	return func(rng *rand.Rand) bool { return rng.Float64() < p }
}

func factory(p float64) func() Sampler {
	return func() Sampler { return bernoulli(p) }
}

var bg = context.Background()

func TestSubstreamDistinctAcrossPhasesAndWorkers(t *testing.T) {
	seen := make(map[int64][2]any)
	for _, phase := range []Phase{PhaseFixed, PhaseStoppingRule, PhaseAA, PhaseMarginals} {
		for w := 0; w < 64; w++ {
			s := Substream(7, phase, w)
			if prev, dup := seen[s]; dup {
				t.Fatalf("substream collision: (%v,%d) and %v both map to %d", phase, w, prev, s)
			}
			seen[s] = [2]any{phase, w}
		}
	}
	// The same triple is stable.
	if Substream(7, PhaseFixed, 3) != Substream(7, PhaseFixed, 3) {
		t.Fatal("Substream must be deterministic")
	}
	// Different user seeds move every stream.
	if Substream(7, PhaseFixed, 0) == Substream(8, PhaseFixed, 0) {
		t.Fatal("seed must perturb the stream")
	}
}

// TestSubstreamSeparatesPhases is the regression test for the
// correlated-substream bug: the old per-call-site derivations
// (seed + w·0x5851f42d4c957f2d in both the fixed and stopping-rule
// loops) handed identical worker streams to different estimation
// phases for the same user seed. Phases must now never share a stream.
func TestSubstreamSeparatesPhases(t *testing.T) {
	for w := 0; w < 16; w++ {
		if Substream(42, PhaseFixed, w) == Substream(42, PhaseStoppingRule, w) {
			t.Fatalf("worker %d: fixed and stopping-rule phases share a substream", w)
		}
		if Substream(42, PhaseStoppingRule, w) == Substream(42, PhaseAA, w) {
			t.Fatalf("worker %d: stopping-rule and AA phases share a substream", w)
		}
	}
}

func TestEstimateFixedAccuracy(t *testing.T) {
	const p = 0.3
	e, err := EstimateFixed(bg, factory(p), 200000, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Value-p) > 0.01 {
		t.Fatalf("estimate %.4f far from %.2f", e.Value, p)
	}
	if e.Samples != 200000 || !e.Converged {
		t.Fatal("metadata wrong")
	}
}

func TestEstimateFixedParallelMatchesBudget(t *testing.T) {
	const p = 0.25
	e, err := EstimateFixed(bg, factory(p), 100001, 11, 4)
	if err != nil {
		t.Fatal(err)
	}
	if e.Samples != 100001 {
		t.Fatalf("Samples = %d", e.Samples)
	}
	if math.Abs(e.Value-p) > 0.02 {
		t.Fatalf("parallel estimate %.4f far from %.2f", e.Value, p)
	}
}

func TestEstimateFixedPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EstimateFixed(bg, factory(0.5), 0, 1, 1)
}

func TestEstimateFixedDeterministicPerSeedAndWorkers(t *testing.T) {
	for _, workers := range []int{1, 4} {
		a, _ := EstimateFixed(bg, factory(0.4), 10000, 42, workers)
		b, _ := EstimateFixed(bg, factory(0.4), 10000, 42, workers)
		if a.Value != b.Value {
			t.Fatalf("workers=%d: same seed must give same estimate", workers)
		}
		c, _ := EstimateFixed(bg, factory(0.4), 10000, 43, workers)
		if a.Value == c.Value {
			t.Fatalf("workers=%d: different seeds should differ (overwhelmingly)", workers)
		}
	}
}

// TestEstimateFPRASGuarantee runs the FPRAS template (Chernoff sample
// count + fixed-sample mean) many times and checks the empirical
// failure rate is below δ.
func TestEstimateFPRASGuarantee(t *testing.T) {
	const (
		p     = 0.2
		eps   = 0.2
		delta = 0.1
	)
	n := fpras.ChernoffSamples(eps, delta, p)
	fail := 0
	const runs = 60
	for i := 0; i < runs; i++ {
		e, err := EstimateFixed(bg, factory(p), n, int64(1000+i), 2)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(e.Value-p) > eps*p {
			fail++
		}
	}
	// Expected failures ≤ δ·runs = 6; allow generous slack.
	if fail > 12 {
		t.Fatalf("failed %d/%d runs; guarantee broken", fail, runs)
	}
}

func TestEstimateStoppingRuleAccuracy(t *testing.T) {
	for _, p := range []float64{0.5, 0.1, 0.01} {
		e, err := EstimateStoppingRule(bg, bernoulli(p), 0.1, 0.05, 13, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !e.Converged {
			t.Fatalf("p=%v did not converge", p)
		}
		if math.Abs(e.Value-p) > 0.15*p {
			t.Fatalf("p=%v: estimate %.5f outside 15%%", p, e.Value)
		}
	}
}

// TestStoppingRuleAdaptiveCost verifies E[N] scales like 1/p: the run
// at p=0.01 must use roughly 10× the samples of the run at p=0.1.
func TestStoppingRuleAdaptiveCost(t *testing.T) {
	hi, _ := EstimateStoppingRule(bg, bernoulli(0.1), 0.2, 0.1, 17, 0)
	lo, _ := EstimateStoppingRule(bg, bernoulli(0.01), 0.2, 0.1, 17, 0)
	ratio := float64(lo.Samples) / float64(hi.Samples)
	if ratio < 5 || ratio > 20 {
		t.Fatalf("sample ratio %.1f, want ≈10 (N_hi=%d, N_lo=%d)", ratio, hi.Samples, lo.Samples)
	}
}

func TestStoppingRuleZeroProbabilityCapped(t *testing.T) {
	e, err := EstimateStoppingRule(bg, bernoulli(0), 0.1, 0.1, 19, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if e.Converged {
		t.Fatal("p=0 cannot converge")
	}
	if e.Value != 0 || e.Samples != 5000 {
		t.Fatalf("capped estimate = %+v", e)
	}
}

func TestStoppingRulePanics(t *testing.T) {
	for _, args := range [][2]float64{{0, 0.1}, {1, 0.1}, {0.1, 0}, {0.1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("EstimateStoppingRule(%v) should panic", args)
				}
			}()
			EstimateStoppingRule(bg, bernoulli(0.5), args[0], args[1], 1, 0)
		}()
	}
}

func TestSafeDiv(t *testing.T) {
	if safeDiv(1, 0) != 0 {
		t.Fatal("safeDiv(x, 0) must be 0")
	}
	if safeDiv(6, 3) != 2 {
		t.Fatal("safeDiv wrong")
	}
}
