package engine

import (
	"math/rand"
	"testing"
)

// The package benchmarks cover the two hot shapes: the Bernoulli
// estimation loop and the amortised marginal counting loop, serial and
// at 8 workers. CI runs them with -benchtime=1x as a smoke test so the
// benchmark code cannot rot; cmd/ocqa-bench -engine runs the full
// end-to-end comparison against the pre-engine serial baseline and
// records BENCH_engine.json.

func BenchmarkEstimateFixedSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := EstimateFixed(bg, factory(0.3), 100_000, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateFixed8Workers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := EstimateFixed(bg, factory(0.3), 100_000, 1, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCounter mimics a marginals drawer over a mostly-consistent
// instance: 250 undetermined blocks, one Intn decision each.
func benchCounter() CountSampler {
	return func(rng *rand.Rand, counts []int) {
		for b := 0; b < len(counts); b += 4 {
			if pick := rng.Intn(5); pick < 4 {
				counts[b+pick]++
			}
		}
	}
}

func BenchmarkMarginalsSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := Marginals(bg, func() CountSampler { return benchCounter() }, 1000, 20_000, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarginals8Workers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := Marginals(bg, func() CountSampler { return benchCounter() }, 1000, 20_000, 1, 8); err != nil {
			b.Fatal(err)
		}
	}
}
