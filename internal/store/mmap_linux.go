//go:build linux

package store

import (
	"fmt"
	"os"
	"syscall"

	"repro/internal/fd"
	"repro/internal/rel"
)

// MapInstance opens a standalone snapshot file by memory-mapping it
// and decoding in place: for a columnar v2 snapshot on a little-endian
// host the database's integer columns alias the mapping, so booting a
// million-fact instance faults in only the pages the workload touches
// instead of copying and re-parsing the whole file. The returned close
// function unmaps the file and MUST NOT be called while the database
// is still in use. v1 snapshots decode by copy as usual (close is then
// safe immediately, but the contract is the same).
func MapInstance(path string) (*rel.Database, *fd.Set, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, nil, err
	}
	size := st.Size()
	if size <= 0 || size != int64(int(size)) {
		return nil, nil, nil, fmt.Errorf("store: snapshot %s has unusable size %d", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("store: mmap %s: %w", path, err)
	}
	db, sigma, err := decodeInstanceBytes(data)
	if err != nil {
		syscall.Munmap(data)
		return nil, nil, nil, err
	}
	return db, sigma, func() error { return syscall.Munmap(data) }, nil
}
