package store

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/fd"
	"repro/internal/rel"
)

// BenchmarkWALReplay measures a cold boot: Open replays a WAL of one
// registration plus 512 incremental fact mutations.
func BenchmarkWALReplay(b *testing.B) {
	dir := b.TempDir()
	sch := rel.MustSchema(rel.NewRelation("R", 2))
	sigma := fd.MustSet(sch, fd.New("R", []int{0}, []int{1}))
	st, err := Open(Options{Dir: dir, CompactEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	if err := st.LogRegister("i1", "bench", time.Now(), rel.NewDatabase(), sigma); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 512; i++ {
		if err := st.LogInsertFact("i1", rel.NewFact("R", fmt.Sprintf("k%d", i%64), fmt.Sprintf("v%d", i))); err != nil {
			b.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := Open(Options{Dir: dir, CompactEvery: -1})
		if err != nil {
			b.Fatal(err)
		}
		if n := len(st.Instances()); n != 1 {
			b.Fatalf("replayed %d instances", n)
		}
		st.Close()
	}
}
