package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fd"
	"repro/internal/rel"
)

// randFixture builds a randomized instance with repeated symbols and
// mixed arities, the shapes dictionary encoding has to get right.
func randFixture(t *testing.T, rng *rand.Rand, n int) (*rel.Database, *fd.Set) {
	t.Helper()
	var facts []rel.Fact
	for i := 0; i < n; i++ {
		switch rng.Intn(2) {
		case 0:
			facts = append(facts, rel.NewFact("Emp",
				fmt.Sprintf("k%d", rng.Intn(n/2+1)), fmt.Sprintf("v%d", rng.Intn(8))))
		default:
			facts = append(facts, rel.NewFact("Dept",
				fmt.Sprintf("d%d", rng.Intn(5)), fmt.Sprintf("v%d", rng.Intn(8)), "hq"))
		}
	}
	sch := rel.MustSchema(rel.NewRelation("Emp", 2), rel.NewRelation("Dept", 3))
	sigma := fd.MustSet(sch,
		fd.New("Emp", []int{0}, []int{1}),
		fd.New("Dept", []int{0}, []int{1}))
	return rel.NewDatabase(facts...), sigma
}

// TestV2RoundTrip: the columnar encoding reproduces the database and
// FD set exactly, including the interned representation — same symbol
// ids, same columns — so downstream id-keyed caches survive a
// snapshot/boot cycle.
func TestV2RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 7, 200} {
		d, sigma := randFixture(t, rng, n)
		var buf bytes.Buffer
		if err := EncodeInstance(&buf, d, sigma); err != nil {
			t.Fatal(err)
		}
		d2, sigma2, err := DecodeInstance(&buf)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !d2.Equal(d) {
			t.Fatalf("n=%d: database round trip diverged", n)
		}
		if sigma2.String() != sigma.String() {
			t.Fatalf("n=%d: FD set round trip diverged", n)
		}
		s1, s2 := d.Symbols().Strings(), d2.Symbols().Strings()
		if len(s1) != len(s2) {
			t.Fatalf("n=%d: symbol table size changed: %d -> %d", n, len(s1), len(s2))
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("n=%d: symbol id %d changed: %q -> %q", n, i, s1[i], s2[i])
			}
		}
	}
}

// TestV1MigrationRoundTrip: a legacy v1 snapshot still decodes, and
// re-encoding it as v2 yields the same instance — the v1 -> v2
// migration path is just decode + encode.
func TestV1MigrationRoundTrip(t *testing.T) {
	d, sigma := randFixture(t, rand.New(rand.NewSource(5)), 100)
	var v1 bytes.Buffer
	if err := encodeInstanceV1(&v1, d, sigma); err != nil {
		t.Fatal(err)
	}
	dv1, sv1, err := DecodeInstance(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatalf("v1 snapshot no longer readable: %v", err)
	}
	if !dv1.Equal(d) || sv1.String() != sigma.String() {
		t.Fatal("v1 decode diverged")
	}
	var v2 bytes.Buffer
	if err := EncodeInstance(&v2, dv1, sv1); err != nil {
		t.Fatal(err)
	}
	dv2, sv2, err := DecodeInstance(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatalf("migrated v2 snapshot unreadable: %v", err)
	}
	if !dv2.Equal(d) || sv2.String() != sigma.String() {
		t.Fatal("v1 -> v2 migration diverged")
	}
	if v2.Bytes()[len(instanceMagic)] != codecV2 {
		t.Fatal("EncodeInstance did not stamp version 2")
	}
}

// TestV2RejectsCorruption: truncations and bit flips anywhere in a v2
// snapshot must produce an error, never a panic or a silently corrupt
// database (the decoder validates sections before adopting them).
func TestV2RejectsCorruption(t *testing.T) {
	d, sigma := randFixture(t, rand.New(rand.NewSource(9)), 50)
	var buf bytes.Buffer
	if err := EncodeInstance(&buf, d, sigma); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for cut := len(good) - 1; cut > len(instanceMagic); cut -= 7 {
		if _, _, err := DecodeInstance(bytes.NewReader(good[:cut])); err == nil {
			// A truncation that only drops trailing slack could decode;
			// any cut into the columns must not.
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		bad := append([]byte(nil), good...)
		bad[len(instanceMagic)+1+rng.Intn(len(bad)-len(instanceMagic)-1)] ^= 1 << rng.Intn(8)
		d2, s2, err := DecodeInstance(bytes.NewReader(bad))
		if err != nil {
			continue
		}
		// A flip the validators cannot see (e.g. inside a symbol string)
		// must still yield a structurally sound database.
		if d2.Len() < 0 || s2 == nil {
			t.Fatal("corrupt decode returned a broken instance")
		}
		for i := 0; i < d2.Len(); i++ {
			_ = d2.Fact(i)
		}
	}
}

// TestMapInstance: the mmap boot path decodes the same instance the
// byte-stream path does, for both codec versions.
func TestMapInstance(t *testing.T) {
	d, sigma := randFixture(t, rand.New(rand.NewSource(21)), 120)
	dir := t.TempDir()
	write := func(name string, enc func(f *os.File) error) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := enc(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	p2 := write("v2.snap", func(f *os.File) error { return EncodeInstance(f, d, sigma) })
	p1 := write("v1.snap", func(f *os.File) error { return encodeInstanceV1(f, d, sigma) })
	for _, path := range []string{p2, p1} {
		db, sg, closeFn, err := MapInstance(path)
		if err != nil {
			t.Fatalf("MapInstance(%s): %v", path, err)
		}
		if !db.Equal(d) || sg.String() != sigma.String() {
			t.Fatalf("MapInstance(%s) diverged from the encoded instance", path)
		}
		// Exercise id-level lookups against the (possibly mmap-aliased)
		// columns before unmapping.
		for i := 0; i < db.Len(); i++ {
			if db.IndexOf(db.Fact(i)) != i {
				t.Fatalf("MapInstance(%s): fact %d not found via stored lookup slots", path, i)
			}
		}
		if err := closeFn(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}
	if _, _, _, err := MapInstance(filepath.Join(dir, "missing.snap")); err == nil {
		t.Fatal("missing file accepted")
	}
}
