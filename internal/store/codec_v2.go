package store

// The columnar v2 instance payload. The on-disk layout is the
// in-memory dictionary-encoded representation of rel.Database:
//
//	varint block: schema | FDs | nSyms | symBlobLen | nFacts |
//	              argsLen | slotsLen
//	zero padding to the next 4-byte file offset
//	symOffs: (nSyms+1) × u32 LE   cumulative byte offsets into the blob
//	symBlob: symBlobLen bytes     symbol strings, concatenated in id order
//	zero padding to the next 4-byte file offset
//	rels:  nFacts × u32 LE        relation-id column
//	offs:  (nFacts+1) × u32 LE    argument-offset column
//	args:  argsLen × u32 LE       flattened argument-id column
//	slots: slotsLen × u32 LE      open-addressing lookup table (idx+1, 0 empty)
//
// Because the integer sections are exactly the arrays the database
// holds at runtime (stored little-endian, 4-aligned), a little-endian
// host decodes them with zero copies — the columns alias the input
// buffer — and the stored lookup slots make rebuilding the fact hash
// unnecessary. Warm-booting a snapshot therefore costs the symbol
// table (O(distinct symbols)) plus validation scans, not a per-fact
// string decode: on a memory-mapped file the column bytes are only
// faulted in as pages are touched. Big-endian or misaligned hosts fall
// back to a copying decode of the same bytes.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"unsafe"

	"repro/internal/fd"
	"repro/internal/rel"
)

// hostLittleEndian reports whether native integer layout matches the
// file format, enabling the zero-copy column views.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

func pad4(b *bytes.Buffer) {
	for b.Len()%4 != 0 {
		b.WriteByte(0)
	}
}

func putU32(b *bytes.Buffer, v uint32) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	b.Write(tmp[:])
}

func putInt32s(b *bytes.Buffer, xs []int32) {
	if hostLittleEndian && len(xs) > 0 {
		b.Write(unsafe.Slice((*byte)(unsafe.Pointer(&xs[0])), 4*len(xs)))
		return
	}
	for _, x := range xs {
		putU32(b, uint32(x))
	}
}

// int32Section returns n little-endian int32s starting at absolute
// offset off — a zero-copy view into raw when the host layout matches,
// a converted copy otherwise. The caller has bounds-checked the range.
func int32Section(raw []byte, off, n int) []int32 {
	if n == 0 {
		return nil
	}
	b := raw[off : off+4*n]
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// encodeInstancePayloadV2 appends the columnar body. It uses b.Len()
// as the absolute file offset for alignment, so it must only be called
// with b holding the whole snapshot from offset 0 (the standalone
// magic+version header) — embedding it mid-frame would misalign the
// integer sections.
func encodeInstancePayloadV2(b *bytes.Buffer, d *rel.Database, sigma *fd.Set) {
	encodeSchemaFDs(b, sigma)
	syms, relsCol, offsCol, argsCol := d.Columns()
	slots := d.LookupSlots()
	strs := syms.Strings()
	blobLen := 0
	for _, s := range strs {
		blobLen += len(s)
	}
	putUvarint(b, uint64(len(strs)))
	putUvarint(b, uint64(blobLen))
	putUvarint(b, uint64(len(relsCol)))
	putUvarint(b, uint64(len(argsCol)))
	putUvarint(b, uint64(len(slots)))
	pad4(b)
	off := uint32(0)
	putU32(b, 0)
	for _, s := range strs {
		off += uint32(len(s))
		putU32(b, off)
	}
	for _, s := range strs {
		b.WriteString(s)
	}
	pad4(b)
	putInt32s(b, relsCol)
	putInt32s(b, offsCol)
	putInt32s(b, argsCol)
	putInt32s(b, slots)
}

// decodeInstancePayloadV2 decodes the columnar body. raw is the whole
// snapshot from offset 0; rd is positioned just past the magic and
// version. On little-endian hosts the returned database's integer
// columns alias raw — callers that unmap or reuse the buffer must keep
// it alive for the database's lifetime (see MapInstance).
func decodeInstancePayloadV2(raw []byte, rd reader) (*rel.Database, *fd.Set, error) {
	sigma, err := decodeSchemaFDs(rd)
	if err != nil {
		return nil, nil, err
	}
	nSyms, err := rd.count("symbol", 1<<28)
	if err != nil {
		return nil, nil, err
	}
	blobLen, err := rd.count("symbol blob byte", 1<<30)
	if err != nil {
		return nil, nil, err
	}
	nFacts, err := rd.count("fact", 1<<28)
	if err != nil {
		return nil, nil, err
	}
	argsLen, err := rd.count("argument id", 1<<30)
	if err != nil {
		return nil, nil, err
	}
	slotsLen, err := rd.count("lookup slot", 1<<30)
	if err != nil {
		return nil, nil, err
	}
	pos := len(raw) - rd.r.Len()
	if rem := pos % 4; rem != 0 {
		pos += 4 - rem
	}
	// Walk the fixed-width sections with one running bounds check.
	take := func(n int) (int, error) {
		start := pos
		if n < 0 || start > len(raw) || n > len(raw)-start {
			return 0, fmt.Errorf("store: columnar section of %d bytes exceeds snapshot size %d", n, len(raw))
		}
		pos += n
		return start, nil
	}
	symOffsAt, err := take(4 * (nSyms + 1))
	if err != nil {
		return nil, nil, err
	}
	blobAt, err := take(blobLen)
	if err != nil {
		return nil, nil, err
	}
	if rem := pos % 4; rem != 0 {
		if _, err := take(4 - rem); err != nil {
			return nil, nil, err
		}
	}
	relsAt, err := take(4 * nFacts)
	if err != nil {
		return nil, nil, err
	}
	offsAt, err := take(4 * (nFacts + 1))
	if err != nil {
		return nil, nil, err
	}
	argsAt, err := take(4 * argsLen)
	if err != nil {
		return nil, nil, err
	}
	slotsAt, err := take(4 * slotsLen)
	if err != nil {
		return nil, nil, err
	}

	symOffs := int32Section(raw, symOffsAt, nSyms+1)
	if symOffs[0] != 0 || int(symOffs[nSyms]) != blobLen {
		return nil, nil, fmt.Errorf("store: symbol offsets do not cover the %d-byte blob", blobLen)
	}
	strs := make([]string, nSyms)
	for i := range strs {
		a, z := symOffs[i], symOffs[i+1]
		if a < 0 || z < a || int(z) > blobLen {
			return nil, nil, fmt.Errorf("store: symbol %d has corrupt blob offsets [%d, %d)", i, a, z)
		}
		strs[i] = string(raw[blobAt+int(a) : blobAt+int(z)])
	}
	syms, err := rel.NewSymbolsFromStrings(strs)
	if err != nil {
		return nil, nil, fmt.Errorf("store: columnar snapshot: %w", err)
	}
	db, err := rel.NewDatabaseFromParts(syms,
		int32Section(raw, relsAt, nFacts),
		int32Section(raw, offsAt, nFacts+1),
		int32Section(raw, argsAt, argsLen),
		int32Section(raw, slotsAt, slotsLen))
	if err != nil {
		return nil, nil, fmt.Errorf("store: columnar snapshot: %w", err)
	}
	return db, sigma, nil
}
