// Package store is the durable instance store behind the OCQA service:
// a versioned binary snapshot codec for (schema, database, FD set)
// triples plus an append-only, CRC-framed write-ahead log that journals
// every registry operation (register, unregister, insert-fact,
// delete-fact). Boot replays snapshot-then-WAL; replay is crash-safe —
// a torn or corrupt tail record is detected by its checksum and the log
// is truncated back to the last complete record. Periodic compaction
// rotates the WAL to a fresh generation-named segment, folds the state
// into a snapshot stamped with that generation (written atomically via
// temp-file + rename), and deletes the retired segments; boot never
// replays a segment older than the snapshot's stamp, so a crash at any
// point of compaction leaves a consistent snapshot/WAL pair.
package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/fd"
	"repro/internal/rel"
)

// Instance payload versions. v1 is the row-oriented varint encoding
// (one string per relation name and argument occurrence); v2 is the
// columnar encoding of codec_v2.go, whose on-disk layout mirrors the
// in-memory dictionary-encoded columns. Standalone snapshots are
// written as v2 and read as either; WAL register records and store
// snapshots embed the v1 payload unversioned, so existing logs replay
// unchanged.
const (
	codecV1 = 1
	codecV2 = 2
)

// instanceMagic introduces a standalone instance snapshot (the facade's
// Instance.Snapshot writes exactly one of these).
var instanceMagic = []byte("OCQI")

// --- primitive encoders ---------------------------------------------------

func putUvarint(b *bytes.Buffer, n uint64) {
	var tmp [binary.MaxVarintLen64]byte
	b.Write(tmp[:binary.PutUvarint(tmp[:], n)])
}

func putString(b *bytes.Buffer, s string) {
	putUvarint(b, uint64(len(s)))
	b.WriteString(s)
}

func putInts(b *bytes.Buffer, xs []int) {
	putUvarint(b, uint64(len(xs)))
	for _, x := range xs {
		putUvarint(b, uint64(x))
	}
}

type reader struct {
	r *bytes.Reader
}

func (rd reader) uvarint() (uint64, error) {
	return binary.ReadUvarint(rd.r)
}

func (rd reader) count(what string, limit uint64) (int, error) {
	n, err := rd.uvarint()
	if err != nil {
		return 0, fmt.Errorf("store: reading %s count: %w", what, err)
	}
	if n > limit {
		return 0, fmt.Errorf("store: %s count %d exceeds sanity limit %d", what, n, limit)
	}
	return int(n), nil
}

func (rd reader) string_() (string, error) {
	n, err := rd.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(rd.r.Len()) {
		return "", fmt.Errorf("store: string length %d exceeds remaining %d bytes", n, rd.r.Len())
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(rd.r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func (rd reader) ints() ([]int, error) {
	n, err := rd.count("attribute", 1<<16)
	if err != nil {
		return nil, err
	}
	out := make([]int, n)
	for i := range out {
		v, err := rd.uvarint()
		if err != nil {
			return nil, err
		}
		out[i] = int(v)
	}
	return out, nil
}

// --- instance payload -----------------------------------------------------

// encodeSchemaFDs appends the schema and FD blocks shared by both
// payload versions.
func encodeSchemaFDs(b *bytes.Buffer, sigma *fd.Set) {
	sch := sigma.Schema()
	rels := sch.Relations()
	putUvarint(b, uint64(len(rels)))
	for _, r := range rels {
		putString(b, r.Name)
		putUvarint(b, uint64(len(r.Attrs)))
		for _, a := range r.Attrs {
			putString(b, a)
		}
	}
	fds := sigma.FDs()
	putUvarint(b, uint64(len(fds)))
	for _, f := range fds {
		putString(b, f.Rel)
		putInts(b, f.LHS)
		putInts(b, f.RHS)
	}
}

// encodeInstancePayload appends the versionless v1 body: schema, FDs,
// facts as strings. WAL register records and store snapshots embed
// this body in their own frames; standalone snapshots now write the
// columnar v2 payload instead (codec_v2.go).
func encodeInstancePayload(b *bytes.Buffer, d *rel.Database, sigma *fd.Set) {
	encodeSchemaFDs(b, sigma)
	putUvarint(b, uint64(d.Len()))
	for _, f := range d.Facts() {
		putString(b, f.Rel)
		putUvarint(b, uint64(len(f.Args)))
		for _, a := range f.Args {
			putString(b, a)
		}
	}
}

// decodeSchemaFDs reads the schema and FD blocks shared by both
// payload versions.
func decodeSchemaFDs(rd reader) (*fd.Set, error) {
	nRels, err := rd.count("relation", 1<<20)
	if err != nil {
		return nil, err
	}
	rels := make([]rel.Relation, 0, nRels)
	for i := 0; i < nRels; i++ {
		name, err := rd.string_()
		if err != nil {
			return nil, fmt.Errorf("store: relation name: %w", err)
		}
		nAttrs, err := rd.count("attribute", 1<<16)
		if err != nil {
			return nil, err
		}
		attrs := make([]string, nAttrs)
		for j := range attrs {
			if attrs[j], err = rd.string_(); err != nil {
				return nil, fmt.Errorf("store: attribute name: %w", err)
			}
		}
		rels = append(rels, rel.Relation{Name: name, Attrs: attrs})
	}
	sch, err := rel.NewSchema(rels...)
	if err != nil {
		return nil, fmt.Errorf("store: decoded schema invalid: %w", err)
	}
	nFDs, err := rd.count("FD", 1<<20)
	if err != nil {
		return nil, err
	}
	fds := make([]fd.FD, 0, nFDs)
	for i := 0; i < nFDs; i++ {
		relName, err := rd.string_()
		if err != nil {
			return nil, err
		}
		lhs, err := rd.ints()
		if err != nil {
			return nil, err
		}
		rhs, err := rd.ints()
		if err != nil {
			return nil, err
		}
		fds = append(fds, fd.New(relName, lhs, rhs))
	}
	sigma, err := fd.NewSet(sch, fds...)
	if err != nil {
		return nil, fmt.Errorf("store: decoded FD set invalid: %w", err)
	}
	return sigma, nil
}

func decodeInstancePayload(rd reader) (*rel.Database, *fd.Set, error) {
	sigma, err := decodeSchemaFDs(rd)
	if err != nil {
		return nil, nil, err
	}
	nFacts, err := rd.count("fact", 1<<28)
	if err != nil {
		return nil, nil, err
	}
	facts := make([]rel.Fact, 0, nFacts)
	for i := 0; i < nFacts; i++ {
		relName, err := rd.string_()
		if err != nil {
			return nil, nil, err
		}
		nArgs, err := rd.count("argument", 1<<16)
		if err != nil {
			return nil, nil, err
		}
		args := make([]string, nArgs)
		for j := range args {
			if args[j], err = rd.string_(); err != nil {
				return nil, nil, err
			}
		}
		facts = append(facts, rel.NewFact(relName, args...))
	}
	return rel.NewDatabase(facts...), sigma, nil
}

// EncodeInstance writes a standalone versioned snapshot of one
// (schema, database, FD set) triple in the columnar v2 format.
func EncodeInstance(w io.Writer, d *rel.Database, sigma *fd.Set) error {
	var b bytes.Buffer
	b.Write(instanceMagic)
	putUvarint(&b, codecV2)
	encodeInstancePayloadV2(&b, d, sigma)
	_, err := w.Write(b.Bytes())
	return err
}

// encodeInstanceV1 writes the legacy row-oriented snapshot — kept so
// the migration tests (and any tool that needs to produce v1 for old
// readers) exercise the exact bytes previous releases wrote.
func encodeInstanceV1(w io.Writer, d *rel.Database, sigma *fd.Set) error {
	var b bytes.Buffer
	b.Write(instanceMagic)
	putUvarint(&b, codecV1)
	encodeInstancePayload(&b, d, sigma)
	_, err := w.Write(b.Bytes())
	return err
}

// DecodeInstance reads a standalone snapshot written by EncodeInstance:
// the columnar v2 format or the legacy v1 row format.
func DecodeInstance(r io.Reader) (*rel.Database, *fd.Set, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, err
	}
	return decodeInstanceBytes(raw)
}

// decodeInstanceBytes decodes a standalone snapshot held in memory (or
// in a file mapping — the v2 fast path lets the database columns alias
// raw, see codec_v2.go).
func decodeInstanceBytes(raw []byte) (*rel.Database, *fd.Set, error) {
	if len(raw) < len(instanceMagic) || !bytes.Equal(raw[:len(instanceMagic)], instanceMagic) {
		return nil, nil, fmt.Errorf("store: not an instance snapshot (bad magic)")
	}
	rd := reader{bytes.NewReader(raw[len(instanceMagic):])}
	v, err := rd.uvarint()
	if err != nil {
		return nil, nil, err
	}
	switch v {
	case codecV1:
		return decodeInstancePayload(rd)
	case codecV2:
		return decodeInstancePayloadV2(raw, rd)
	default:
		return nil, nil, fmt.Errorf("store: snapshot codec version %d not supported (have %d)", v, codecV2)
	}
}
