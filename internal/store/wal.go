package store

// WAL framing. Each record is
//
//	[uint32 LE payload length][uint32 LE IEEE-CRC32 of payload][payload]
//
// and the payload is
//
//	[kind byte][kind-specific fields]
//
// A crash mid-append leaves a short or checksum-failing tail; replay
// stops at the first such record and the store truncates the file back
// to the last complete one, so every acknowledged record before the
// tear survives and nothing half-written is ever applied.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/fd"
	"repro/internal/rel"
)

// opKind tags a WAL record.
type opKind byte

const (
	opRegister opKind = iota + 1
	opUnregister
	opInsertFact
	opDeleteFact
)

func (k opKind) String() string {
	switch k {
	case opRegister:
		return "register"
	case opUnregister:
		return "unregister"
	case opInsertFact:
		return "insert-fact"
	case opDeleteFact:
		return "delete-fact"
	default:
		return fmt.Sprintf("opKind(%d)", byte(k))
	}
}

// record is one decoded WAL entry.
type record struct {
	kind opKind
	id   string
	// register only:
	name    string
	created int64 // unix nanoseconds
	db      *rel.Database
	sigma   *fd.Set
	// insert-fact only:
	fact rel.Fact
	// delete-fact only:
	index int
}

// maxRecordBytes is a sanity bound on a single WAL record; a length
// header beyond it is treated as corruption, not an allocation request.
const maxRecordBytes = 1 << 30

// encodeRecord renders the payload (no frame header).
func encodeRecord(rec record) []byte {
	var b bytes.Buffer
	b.WriteByte(byte(rec.kind))
	putString(&b, rec.id)
	switch rec.kind {
	case opRegister:
		putString(&b, rec.name)
		putUvarint(&b, uint64(rec.created))
		encodeInstancePayload(&b, rec.db, rec.sigma)
	case opUnregister:
	case opInsertFact:
		putString(&b, rec.fact.Rel)
		putUvarint(&b, uint64(len(rec.fact.Args)))
		for _, a := range rec.fact.Args {
			putString(&b, a)
		}
	case opDeleteFact:
		putUvarint(&b, uint64(rec.index))
	}
	return b.Bytes()
}

// decodeRecord parses a frame payload.
func decodeRecord(payload []byte) (record, error) {
	if len(payload) == 0 {
		return record{}, fmt.Errorf("store: empty WAL payload")
	}
	rec := record{kind: opKind(payload[0])}
	rd := reader{bytes.NewReader(payload[1:])}
	var err error
	if rec.id, err = rd.string_(); err != nil {
		return record{}, fmt.Errorf("store: WAL record id: %w", err)
	}
	switch rec.kind {
	case opRegister:
		if rec.name, err = rd.string_(); err != nil {
			return record{}, err
		}
		created, err := rd.uvarint()
		if err != nil {
			return record{}, err
		}
		rec.created = int64(created)
		if rec.db, rec.sigma, err = decodeInstancePayload(rd); err != nil {
			return record{}, err
		}
	case opUnregister:
	case opInsertFact:
		relName, err := rd.string_()
		if err != nil {
			return record{}, err
		}
		nArgs, err := rd.count("argument", 1<<16)
		if err != nil {
			return record{}, err
		}
		args := make([]string, nArgs)
		for i := range args {
			if args[i], err = rd.string_(); err != nil {
				return record{}, err
			}
		}
		rec.fact = rel.NewFact(relName, args...)
	case opDeleteFact:
		idx, err := rd.uvarint()
		if err != nil {
			return record{}, err
		}
		rec.index = int(idx)
	default:
		return record{}, fmt.Errorf("store: unknown WAL record kind %d", payload[0])
	}
	return rec, nil
}

// frameRecord prepends the length+CRC header to a payload.
func frameRecord(payload []byte) []byte {
	out := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	copy(out[8:], payload)
	return out
}

// replayResult is what scanning a WAL yields: the complete records, the
// offset just past the last complete record (where appends resume and
// any torn tail is truncated), and whether a tear was found.
type replayResult struct {
	records []record
	goodLen int64
	torn    bool
	tornErr error
}

// scanWAL reads frames from r until EOF or the first incomplete or
// corrupt record. It never fails on a torn tail — that is the expected
// crash signature — only on read errors from the underlying file.
func scanWAL(r io.Reader) (replayResult, error) {
	var res replayResult
	var header [8]byte
	for {
		n, err := io.ReadFull(r, header[:])
		if err == io.EOF {
			return res, nil // clean end
		}
		if err == io.ErrUnexpectedEOF {
			res.torn, res.tornErr = true, fmt.Errorf("store: torn WAL header (%d of 8 bytes)", n)
			return res, nil
		}
		if err != nil {
			return res, err
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if length > maxRecordBytes {
			res.torn, res.tornErr = true, fmt.Errorf("store: WAL record length %d exceeds sanity bound", length)
			return res, nil
		}
		// Stream the payload instead of trusting the header with one
		// up-front allocation: a corrupt (or hostile) length field may
		// claim up to the sanity bound, and allocating it before any
		// byte is read lets a 16-byte torn tail demand a gigabyte of
		// memory at boot. Growing through a buffer costs at most ~2× the
		// bytes actually present in the file.
		var payloadBuf bytes.Buffer
		if _, err := io.CopyN(&payloadBuf, r, int64(length)); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				res.torn, res.tornErr = true, fmt.Errorf("store: torn WAL payload: %w", err)
				return res, nil
			}
			return res, err
		}
		payload := payloadBuf.Bytes()
		if crc32.ChecksumIEEE(payload) != sum {
			res.torn, res.tornErr = true, fmt.Errorf("store: WAL record checksum mismatch at offset %d", res.goodLen)
			return res, nil
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			// A record that passes its checksum but does not decode is
			// real corruption (or a future codec); stop before it like a
			// tear so everything prior still replays.
			res.torn, res.tornErr = true, err
			return res, nil
		}
		res.records = append(res.records, rec)
		res.goodLen += int64(8 + len(payload))
	}
}
