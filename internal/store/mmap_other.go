//go:build !linux

package store

import (
	"os"

	"repro/internal/fd"
	"repro/internal/rel"
)

// MapInstance falls back to a plain read + decode on platforms without
// the mmap fast path. The close function exists for interface parity
// and is always safe to call.
func MapInstance(path string) (*rel.Database, *fd.Set, func() error, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, nil, err
	}
	db, sigma, err := decodeInstanceBytes(raw)
	if err != nil {
		return nil, nil, nil, err
	}
	return db, sigma, func() error { return nil }, nil
}
