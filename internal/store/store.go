package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fd"
	"repro/internal/rel"
)

// snapshotFile is the snapshot's name inside the data directory. WAL
// segments live alongside it as wal.<generation>.bin (segmentName);
// the snapshot is stamped with the generation of the segment that was
// current when it was captured, which is what makes the pair
// crash-consistent — see Compact.
const snapshotFile = "snapshot.bin"

var snapshotMagic = []byte("OCQS")

// snapshotVersion is the store snapshot container format, bumped
// independently of codecVersion (the embedded instance payload
// encoding). Version 2 added the WAL generation stamp.
const snapshotVersion = 2

// Options configures a Store.
type Options struct {
	// Dir is the data directory (created if absent).
	Dir string
	// Fsync syncs the WAL file after every append. Off by default: an
	// OS crash may then lose the tail of the log (a process crash loses
	// nothing either way); replay still stops cleanly at the tear.
	Fsync bool
	// CompactEvery triggers automatic compaction (snapshot + WAL
	// segment rotation, run on a background goroutine; appenders block
	// only for the segment swap, never for the snapshot I/O) once the
	// WAL holds that many records. 0 picks the default of 4096;
	// negative disables auto-compaction (explicit Compact still works).
	CompactEvery int
}

func (o *Options) fill() {
	switch {
	case o.CompactEvery == 0:
		o.CompactEvery = 4096
	case o.CompactEvery < 0:
		o.CompactEvery = 0
	}
}

// InstanceState is the durable view of one registered instance.
type InstanceState struct {
	ID      string
	Name    string
	Created time.Time
	DB      *rel.Database
	Sigma   *fd.Set
}

// Stats are the store's persistence counters, all monotone over the
// store's lifetime (replayedOps counts boot replay only).
type Stats struct {
	WalAppends  int64 `json:"wal_appends"`
	Snapshots   int64 `json:"snapshots"`
	ReplayedOps int64 `json:"replayed_ops"`
	Compactions int64 `json:"compactions"`
	CompactErrs int64 `json:"compact_errors"`
	WalRecords  int64 `json:"wal_records"`
	TornTail    bool  `json:"torn_tail_truncated"`
}

// Store is the durable instance store: a snapshot file plus an
// append-only WAL (generation-named segments) in one directory. It
// maintains the logical state (id → instance) so compaction can
// serialise it without help from the caller; the serving layer keeps
// its own prepared artifacts and treats the store as the system of
// record. All methods are safe for concurrent use.
type Store struct {
	opts Options

	mu      sync.Mutex
	wal     *os.File
	walGen  uint64 // generation of the segment wal writes to
	walOff  int64  // offset just past the last acknowledged frame in wal
	walOps  int    // records in the WAL not yet folded into a snapshot
	state   map[string]*InstanceState
	order   []string // ids in registration order, for deterministic snapshots
	closed  bool
	tornLog bool
	// failed latches when a failed append leaves a frame — partial, or
	// complete but unacknowledged — that truncation could not remove:
	// appending past it would let replay apply a record no client saw
	// succeed, or strand later records behind a tear. Compaction
	// retries the repair and refuses to retire a segment that keeps it.
	failed bool

	// compactMu serialises compactions (explicit Compact racing the
	// scheduled one) without blocking appenders, which only contend on
	// mu.
	compactMu sync.Mutex

	walAppends  atomic.Int64
	snapshots   atomic.Int64
	replayedOps atomic.Int64
	compactions atomic.Int64
	compactErrs atomic.Int64
	// compacting gates the single in-flight background compaction.
	compacting atomic.Bool
	// compactWG lets Close wait out a scheduled compaction.
	compactWG sync.WaitGroup

	// Crash-injection points, set only by tests. Returning early from
	// Compact models a process crash at that point: nothing after it
	// runs, and the next Open must recover from whatever is on disk.
	testCrashAfterSwap    bool // after the segment rotation, before the snapshot install
	testCrashAfterInstall bool // after the snapshot install, before stale segments are removed
}

// segmentName names the WAL segment for a generation. The zero-padding
// is cosmetic (listing order); parsing is numeric.
func segmentName(gen uint64) string {
	return fmt.Sprintf("wal.%06d.bin", gen)
}

func parseSegmentName(name string) (uint64, bool) {
	digits, ok := strings.CutPrefix(name, "wal.")
	if !ok {
		return 0, false
	}
	digits, ok = strings.CutSuffix(digits, ".bin")
	if !ok || digits == "" {
		return 0, false
	}
	gen, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

type walSegment struct {
	gen  uint64
	path string
}

func listSegments(dir string) ([]walSegment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []walSegment
	for _, e := range entries {
		if gen, ok := parseSegmentName(e.Name()); ok {
			segs = append(segs, walSegment{gen: gen, path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].gen < segs[j].gen })
	return segs, nil
}

// syncDir flushes directory metadata so a freshly created or renamed
// file survives an OS crash.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// Open loads the snapshot (if any), replays the live WAL segments over
// it, truncates any torn tail, and leaves the store ready for appends.
// Segments older than the snapshot's generation stamp are already
// folded into it (a crash can leave them behind — see Compact) and are
// deleted, never replayed. The replayed instances are available via
// Instances.
func Open(opts Options) (*Store, error) {
	opts.fill()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating data dir: %w", err)
	}
	if _, err := os.Stat(filepath.Join(opts.Dir, "wal.bin")); err == nil {
		return nil, fmt.Errorf("store: data dir %s holds a legacy single-file wal.bin; this build reads generation-named segments (wal.<gen>.bin) — migrate or remove the legacy log", opts.Dir)
	}
	st := &Store{opts: opts, state: make(map[string]*InstanceState)}

	snapGen, err := st.loadSnapshot()
	if err != nil {
		return nil, err
	}

	segs, err := listSegments(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("store: listing WAL segments: %w", err)
	}
	live := segs[:0]
	for _, sg := range segs {
		if sg.gen < snapGen {
			// Replaying a stale segment would apply its records a second
			// time (and fail or corrupt: a duplicate insert-fact, an
			// unregister of an absent id, a delete-fact index resolving
			// to the wrong fact).
			if err := os.Remove(sg.path); err != nil {
				return nil, fmt.Errorf("store: removing stale WAL segment %s: %w", sg.path, err)
			}
			continue
		}
		live = append(live, sg)
	}

	for i, sg := range live {
		f, err := os.OpenFile(sg.path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, fmt.Errorf("store: opening WAL segment %s: %w", sg.path, err)
		}
		res, err := scanWAL(f)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("store: replaying WAL: %w", err)
		}
		for _, rec := range res.records {
			if err := st.apply(rec); err != nil {
				f.Close()
				return nil, fmt.Errorf("store: replaying %s(%s): %w", rec.kind, rec.id, err)
			}
			st.replayedOps.Add(1)
		}
		st.walOps += len(res.records)
		if res.torn {
			// A torn record was never acknowledged (the append rolled it
			// back and latched the store failed), so records in later
			// segments never built on it: truncate the tear and keep
			// replaying.
			if err := f.Truncate(res.goodLen); err != nil {
				f.Close()
				return nil, fmt.Errorf("store: truncating torn WAL tail: %w", err)
			}
			st.tornLog = true
		}
		if i == len(live)-1 {
			if _, err := f.Seek(res.goodLen, 0); err != nil {
				f.Close()
				return nil, err
			}
			st.wal, st.walGen, st.walOff = f, sg.gen, res.goodLen
		} else {
			f.Close()
		}
	}
	if st.wal == nil {
		wal, err := os.OpenFile(filepath.Join(opts.Dir, segmentName(snapGen)), os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			return nil, fmt.Errorf("store: opening WAL: %w", err)
		}
		st.wal, st.walGen = wal, snapGen
	}
	return st, nil
}

// Instances returns the current logical state in registration order.
// The returned states share the store's immutable databases; callers
// must not mutate them.
func (st *Store) Instances() []*InstanceState {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*InstanceState, 0, len(st.order))
	for _, id := range st.order {
		if s, ok := st.state[id]; ok {
			out = append(out, s)
		}
	}
	return out
}

// Stats returns the persistence counters.
func (st *Store) Stats() Stats {
	st.mu.Lock()
	walRecords := int64(st.walOps)
	torn := st.tornLog
	st.mu.Unlock()
	return Stats{
		WalAppends:  st.walAppends.Load(),
		Snapshots:   st.snapshots.Load(),
		ReplayedOps: st.replayedOps.Load(),
		Compactions: st.compactions.Load(),
		CompactErrs: st.compactErrs.Load(),
		WalRecords:  walRecords,
		TornTail:    torn,
	}
}

// Close waits out any scheduled compaction, then flushes and closes
// the WAL. The store must not be used after.
func (st *Store) Close() error {
	st.compactWG.Wait()
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return nil
	}
	st.closed = true
	if err := st.wal.Sync(); err != nil {
		st.wal.Close()
		return err
	}
	return st.wal.Close()
}

// --- logging --------------------------------------------------------------

// LogRegister journals a registration. The database and FD set are
// embedded as a full codec payload, so replay needs no other files.
func (st *Store) LogRegister(id, name string, created time.Time, d *rel.Database, sigma *fd.Set) error {
	return st.append(record{kind: opRegister, id: id, name: name, created: created.UnixNano(), db: d, sigma: sigma})
}

// LogUnregister journals a deregistration (explicit delete or LRU
// eviction — durably they are the same operation).
func (st *Store) LogUnregister(id string) error {
	return st.append(record{kind: opUnregister, id: id})
}

// LogInsertFact journals an incremental fact insertion.
func (st *Store) LogInsertFact(id string, f rel.Fact) error {
	return st.append(record{kind: opInsertFact, id: id, fact: f})
}

// LogDeleteFact journals an incremental fact deletion by the fact's
// index in the instance's (sorted, deterministic) fact order at the
// time of the delete — replay applies operations in order, so the
// index resolves to the same fact.
func (st *Store) LogDeleteFact(id string, index int) error {
	return st.append(record{kind: opDeleteFact, id: id, index: index})
}

// append applies the record to the logical state, frames it onto the
// WAL, and schedules compaction when the WAL has grown past the
// threshold. The state is updated first (under the same lock) so a
// record that cannot apply — an unknown id, say — is rejected before
// it reaches the log; a record that fails to *write* is rolled back,
// so a failure the client saw never persists, in memory or on disk.
func (st *Store) append(rec record) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return fmt.Errorf("store: closed")
	}
	if st.failed {
		return fmt.Errorf("store: WAL failed a previous append; compact or restart to recover")
	}
	undo, err := st.applyWithUndo(rec)
	if err != nil {
		return err
	}
	frame := frameRecord(encodeRecord(rec))
	if _, err := st.wal.Write(frame); err != nil {
		// The file may now hold part of the frame; appending after it
		// would bury every later record behind a torn one that replay
		// cannot pass. Cut the tail back to the last good offset, or
		// latch the store failed if even that is impossible.
		undo()
		if !st.repairTailLocked() {
			st.failed = true
		}
		return fmt.Errorf("store: appending %s(%s): %w", rec.kind, rec.id, err)
	}
	if st.opts.Fsync {
		if err := st.wal.Sync(); err != nil {
			// The frame is COMPLETE in the file (only its durability is
			// unknown) — replay could not tell it from an acknowledged
			// record, so it must be truncated away, not left for a tear
			// scan that would never flag it.
			undo()
			if !st.repairTailLocked() {
				st.failed = true
			}
			return fmt.Errorf("store: syncing %s(%s): %w", rec.kind, rec.id, err)
		}
	}
	st.walOff += int64(len(frame))
	st.walOps++
	st.walAppends.Add(1)
	if st.opts.CompactEvery > 0 && st.walOps >= st.opts.CompactEvery {
		st.scheduleCompaction()
	}
	return nil
}

// repairTailLocked removes the remains of a failed append — a partial
// frame, or a complete frame the client never saw acknowledged — by
// truncating the WAL back to the last good offset and syncing the
// truncation down so an OS crash cannot resurrect the frame. Reports
// whether the tail is clean again.
func (st *Store) repairTailLocked() bool {
	if st.wal.Truncate(st.walOff) != nil {
		return false
	}
	if _, err := st.wal.Seek(st.walOff, 0); err != nil {
		return false
	}
	return st.wal.Sync() == nil
}

// scheduleCompaction kicks off one background compaction (at most one
// in flight). Compaction holds the store mutex only for the segment
// swap and state capture — a fact mutation inside the server's
// registry write lock never pays for (or blocks the query plane on) a
// full snapshot.
func (st *Store) scheduleCompaction() {
	if !st.compacting.CompareAndSwap(false, true) {
		return
	}
	st.compactWG.Add(1)
	go func() {
		defer st.compactWG.Done()
		defer st.compacting.Store(false)
		if err := st.Compact(); err != nil {
			// The WAL keeps absorbing appends; replay just has more to
			// do at the next boot. Surface through the stats.
			st.compactErrs.Add(1)
		}
	}()
}

// applyWithUndo is apply plus a closure restoring the prior state,
// used to roll a mutation back when its WAL write fails. The undo
// closures restore pointers into immutable values (databases are
// copy-on-write), so they are exact, not best-effort.
func (st *Store) applyWithUndo(rec record) (func(), error) {
	switch rec.kind {
	case opRegister:
		prev, had := st.state[rec.id]
		pos := -1
		if had {
			for i, id := range st.order {
				if id == rec.id {
					pos = i
					break
				}
			}
		}
		undo := func() {
			delete(st.state, rec.id)
			st.removeFromOrder(rec.id)
			if had {
				st.state[rec.id] = prev
				if pos >= 0 && pos <= len(st.order) {
					st.order = append(st.order[:pos], append([]string{rec.id}, st.order[pos:]...)...)
				} else {
					st.order = append(st.order, rec.id)
				}
			}
		}
		return undo, st.apply(rec)
	case opUnregister:
		prev, had := st.state[rec.id]
		pos := -1
		for i, id := range st.order {
			if id == rec.id {
				pos = i
				break
			}
		}
		undo := func() {
			if !had {
				return
			}
			st.state[rec.id] = prev
			if pos >= 0 && pos <= len(st.order) {
				st.order = append(st.order[:pos], append([]string{rec.id}, st.order[pos:]...)...)
			} else {
				st.order = append(st.order, rec.id)
			}
		}
		return undo, st.apply(rec)
	case opInsertFact, opDeleteFact:
		s, ok := st.state[rec.id]
		if !ok {
			return func() {}, st.apply(rec) // apply will report the error
		}
		prevDB := s.DB
		return func() { s.DB = prevDB }, st.apply(rec)
	default:
		return func() {}, st.apply(rec)
	}
}

// apply folds one record into the logical state.
func (st *Store) apply(rec record) error {
	switch rec.kind {
	case opRegister:
		if _, dup := st.state[rec.id]; dup {
			// Replay after id reuse (unregister + re-register across a
			// compaction boundary can interleave); last write wins.
			st.removeFromOrder(rec.id)
		}
		st.state[rec.id] = &InstanceState{
			ID:      rec.id,
			Name:    rec.name,
			Created: time.Unix(0, rec.created).UTC(),
			DB:      rec.db,
			Sigma:   rec.sigma,
		}
		st.order = append(st.order, rec.id)
	case opUnregister:
		if _, ok := st.state[rec.id]; !ok {
			return fmt.Errorf("store: unregister of unknown instance %q", rec.id)
		}
		delete(st.state, rec.id)
		st.removeFromOrder(rec.id)
	case opInsertFact:
		s, ok := st.state[rec.id]
		if !ok {
			return fmt.Errorf("store: insert-fact into unknown instance %q", rec.id)
		}
		nd, _, fresh := s.DB.Insert(rec.fact)
		if !fresh {
			return fmt.Errorf("store: insert-fact duplicate %v in %q", rec.fact, rec.id)
		}
		s.DB = nd
	case opDeleteFact:
		s, ok := st.state[rec.id]
		if !ok {
			return fmt.Errorf("store: delete-fact from unknown instance %q", rec.id)
		}
		if rec.index < 0 || rec.index >= s.DB.Len() {
			return fmt.Errorf("store: delete-fact index %d out of range for %q (%d facts)", rec.index, rec.id, s.DB.Len())
		}
		s.DB = s.DB.Remove(rec.index)
	default:
		return fmt.Errorf("store: unknown record kind %d", rec.kind)
	}
	return nil
}

func (st *Store) removeFromOrder(id string) {
	for i, v := range st.order {
		if v == id {
			st.order = append(st.order[:i], st.order[i+1:]...)
			return
		}
	}
}

// --- snapshot + compaction ------------------------------------------------

// Compact folds the current state into a fresh snapshot and retires
// the old WAL. The store mutex is held only to rotate the WAL to a
// fresh segment and capture a copy of the state (cheap: the databases
// are copy-on-write values, so capturing pins pointers); the snapshot
// encode, write, fsync and rename run without it, so appenders and the
// query plane never wait on snapshot I/O.
//
// Crash safety is by generation pairing. Each snapshot is stamped with
// the generation of the WAL segment opened at capture time
// (wal.<gen>.bin), and boot deletes — never replays — segments older
// than the stamp. Whichever side of the snapshot install a crash
// lands on, boot sees a consistent pair:
//
//   - before the install: the old snapshot, the old segment (complete,
//     synced before the swap), and the new segment (post-swap
//     appends), replayed in generation order;
//   - after the install: the new snapshot, whose stamp retires the old
//     segment, plus the new segment.
//
// A WAL record is therefore never replayed over a snapshot that
// already folds it in.
func (st *Store) Compact() error {
	st.compactMu.Lock()
	defer st.compactMu.Unlock()

	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return fmt.Errorf("store: closed")
	}
	oldWAL, gen := st.wal, st.walGen+1
	st.mu.Unlock()

	// Make the retiring segment durable before any record can land in
	// its successor: replay assumes a segment is complete once a later
	// one has records, so the old segment's tail must not be lost to an
	// OS crash that spares the new one. The bulk of the sync happens
	// here, unlocked; the short re-sync below (under the mutex) flushes
	// only appends that raced in between. walGen and wal are stable
	// across the gap: only Compact changes them, and compactMu is held.
	if err := oldWAL.Sync(); err != nil {
		return fmt.Errorf("store: syncing WAL before compaction: %w", err)
	}
	segPath := filepath.Join(st.opts.Dir, segmentName(gen))
	seg, err := os.OpenFile(segPath, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating WAL segment: %w", err)
	}
	if err := syncDir(st.opts.Dir); err != nil {
		seg.Close()
		os.Remove(segPath)
		return fmt.Errorf("store: syncing data dir: %w", err)
	}

	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		seg.Close()
		os.Remove(segPath)
		return fmt.Errorf("store: closed")
	}
	if st.failed {
		// The retiring segment may end in the remains of a failed
		// append (a complete frame replay could not tell from an
		// acknowledged record). It must not be rotated out of reach of
		// repair with that tail in place.
		if !st.repairTailLocked() {
			st.mu.Unlock()
			seg.Close()
			os.Remove(segPath)
			return fmt.Errorf("store: WAL tail unrepairable; refusing to retire the segment")
		}
		st.failed = false
	}
	if err := st.wal.Sync(); err != nil {
		st.mu.Unlock()
		seg.Close()
		os.Remove(segPath)
		return fmt.Errorf("store: syncing WAL before compaction: %w", err)
	}
	st.wal, st.walGen, st.walOff = seg, gen, 0
	// walOps keeps counting the retiring segment's records: they remain
	// replay debt until the snapshot that folds them in is installed.
	captured := st.walOps
	states := make([]InstanceState, 0, len(st.order))
	for _, id := range st.order {
		states = append(states, *st.state[id])
	}
	st.mu.Unlock()

	oldWAL.Close() // no further writes; boot replays it only until the snapshot installs

	if st.testCrashAfterSwap {
		return nil
	}
	if err := st.writeSnapshot(gen, states); err != nil {
		// The pair stays consistent: the snapshot still carries the old
		// stamp, so boot replays the retired segment and then this one,
		// and walOps still counts both.
		return err
	}
	st.mu.Lock()
	st.walOps -= captured // the install retired the captured records
	st.mu.Unlock()
	if st.testCrashAfterInstall {
		return nil
	}
	// The install retired every older segment; removal is cleanup, and
	// boot redoes it if a crash (or an error here) leaves one behind.
	if segs, err := listSegments(st.opts.Dir); err == nil {
		for _, sg := range segs {
			if sg.gen < gen {
				os.Remove(sg.path)
			}
		}
	}
	st.compactions.Add(1)
	return nil
}

// writeSnapshot serialises a captured state:
//
//	magic "OCQS" | uvarint snapshotVersion | uvarint generation |
//	uvarint count | per instance: id, name, created, instance payload |
//	uint32 LE IEEE-CRC32 of everything before it
//
// It runs without the store mutex: the states are value copies whose
// DB/Sigma pointers are immutable, so concurrent mutations build new
// databases and cannot reach them.
func (st *Store) writeSnapshot(gen uint64, states []InstanceState) error {
	var b bytes.Buffer
	b.Write(snapshotMagic)
	putUvarint(&b, snapshotVersion)
	putUvarint(&b, gen)
	putUvarint(&b, uint64(len(states)))
	for i := range states {
		s := &states[i]
		putString(&b, s.ID)
		putString(&b, s.Name)
		putUvarint(&b, uint64(s.Created.UnixNano()))
		encodeInstancePayload(&b, s.DB, s.Sigma)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(b.Bytes()))
	b.Write(crc[:])

	tmp := filepath.Join(st.opts.Dir, snapshotFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating snapshot temp file: %w", err)
	}
	if _, err := f.Write(b.Bytes()); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(st.opts.Dir, snapshotFile)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: installing snapshot: %w", err)
	}
	if err := syncDir(st.opts.Dir); err != nil {
		return fmt.Errorf("store: syncing data dir: %w", err)
	}
	st.snapshots.Add(1)
	return nil
}

// loadSnapshot reads the snapshot file into the state map and returns
// its generation stamp; a missing file is an empty store at generation
// zero. A corrupt snapshot is a hard error — unlike the WAL tail, the
// snapshot is written atomically, so damage means operator-level
// trouble (disk fault), not a crash signature.
func (st *Store) loadSnapshot() (uint64, error) {
	raw, err := os.ReadFile(filepath.Join(st.opts.Dir, snapshotFile))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: reading snapshot: %w", err)
	}
	if len(raw) < len(snapshotMagic)+4 || !bytes.Equal(raw[:len(snapshotMagic)], snapshotMagic) {
		return 0, fmt.Errorf("store: snapshot has bad magic")
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return 0, fmt.Errorf("store: snapshot checksum mismatch")
	}
	rd := reader{bytes.NewReader(body[len(snapshotMagic):])}
	v, err := rd.uvarint()
	if err != nil {
		return 0, err
	}
	if v != snapshotVersion {
		return 0, fmt.Errorf("store: snapshot format version %d not supported (have %d)", v, snapshotVersion)
	}
	gen, err := rd.uvarint()
	if err != nil {
		return 0, fmt.Errorf("store: snapshot generation: %w", err)
	}
	n, err := rd.count("instance", 1<<20)
	if err != nil {
		return 0, err
	}
	for i := 0; i < n; i++ {
		id, err := rd.string_()
		if err != nil {
			return 0, fmt.Errorf("store: snapshot instance id: %w", err)
		}
		name, err := rd.string_()
		if err != nil {
			return 0, err
		}
		created, err := rd.uvarint()
		if err != nil {
			return 0, err
		}
		db, sigma, err := decodeInstancePayload(rd)
		if err != nil {
			return 0, fmt.Errorf("store: snapshot instance %q: %w", id, err)
		}
		st.state[id] = &InstanceState{
			ID:      id,
			Name:    name,
			Created: time.Unix(0, int64(created)).UTC(),
			DB:      db,
			Sigma:   sigma,
		}
		st.order = append(st.order, id)
	}
	return gen, nil
}
