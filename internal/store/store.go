package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fd"
	"repro/internal/rel"
)

// File names inside the data directory.
const (
	snapshotFile = "snapshot.bin"
	walFile      = "wal.bin"
)

var snapshotMagic = []byte("OCQS")

// Options configures a Store.
type Options struct {
	// Dir is the data directory (created if absent).
	Dir string
	// Fsync syncs the WAL file after every append. Off by default: an
	// OS crash may then lose the tail of the log (a process crash loses
	// nothing either way); replay still stops cleanly at the tear.
	Fsync bool
	// CompactEvery triggers automatic compaction (snapshot + WAL
	// truncation, run on a background goroutine so appenders never
	// wait for it) once the WAL holds that many records. 0 picks the
	// default of 4096; negative disables auto-compaction (explicit
	// Compact still works).
	CompactEvery int
}

func (o *Options) fill() {
	switch {
	case o.CompactEvery == 0:
		o.CompactEvery = 4096
	case o.CompactEvery < 0:
		o.CompactEvery = 0
	}
}

// InstanceState is the durable view of one registered instance.
type InstanceState struct {
	ID      string
	Name    string
	Created time.Time
	DB      *rel.Database
	Sigma   *fd.Set
}

// Stats are the store's persistence counters, all monotone over the
// store's lifetime (replayedOps counts boot replay only).
type Stats struct {
	WalAppends  int64 `json:"wal_appends"`
	Snapshots   int64 `json:"snapshots"`
	ReplayedOps int64 `json:"replayed_ops"`
	Compactions int64 `json:"compactions"`
	CompactErrs int64 `json:"compact_errors"`
	WalRecords  int64 `json:"wal_records"`
	TornTail    bool  `json:"torn_tail_truncated"`
}

// Store is the durable instance store: a snapshot file plus an
// append-only WAL in one directory. It maintains the logical state
// (id → instance) so compaction can serialise it without help from the
// caller; the serving layer keeps its own prepared artifacts and treats
// the store as the system of record. All methods are safe for
// concurrent use.
type Store struct {
	opts Options

	mu      sync.Mutex
	wal     *os.File
	walOps  int // records currently in the WAL
	state   map[string]*InstanceState
	order   []string // ids in registration order, for deterministic snapshots
	closed  bool
	tornLog bool
	// failed latches after a WAL write error: the file may end in a
	// partial frame, and appending past it would strand every later
	// record behind a tear replay cannot cross.
	failed bool

	walAppends  atomic.Int64
	snapshots   atomic.Int64
	replayedOps atomic.Int64
	compactions atomic.Int64
	compactErrs atomic.Int64
	// compacting gates the single in-flight background compaction.
	compacting atomic.Bool
	// compactWG lets Close wait out a scheduled compaction.
	compactWG sync.WaitGroup
}

// Open loads the snapshot (if any), replays the WAL over it, truncates
// any torn tail, and leaves the store ready for appends. The replayed
// instances are available via Instances.
func Open(opts Options) (*Store, error) {
	opts.fill()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating data dir: %w", err)
	}
	st := &Store{opts: opts, state: make(map[string]*InstanceState)}

	if err := st.loadSnapshot(); err != nil {
		return nil, err
	}

	wal, err := os.OpenFile(filepath.Join(opts.Dir, walFile), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening WAL: %w", err)
	}
	res, err := scanWAL(wal)
	if err != nil {
		wal.Close()
		return nil, fmt.Errorf("store: replaying WAL: %w", err)
	}
	for _, rec := range res.records {
		if err := st.apply(rec); err != nil {
			wal.Close()
			return nil, fmt.Errorf("store: replaying %s(%s): %w", rec.kind, rec.id, err)
		}
		st.replayedOps.Add(1)
	}
	if res.torn {
		if err := wal.Truncate(res.goodLen); err != nil {
			wal.Close()
			return nil, fmt.Errorf("store: truncating torn WAL tail: %w", err)
		}
		st.tornLog = true
	}
	if _, err := wal.Seek(res.goodLen, 0); err != nil {
		wal.Close()
		return nil, err
	}
	st.wal = wal
	st.walOps = len(res.records)
	return st, nil
}

// Instances returns the current logical state in registration order.
// The returned states share the store's immutable databases; callers
// must not mutate them.
func (st *Store) Instances() []*InstanceState {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*InstanceState, 0, len(st.order))
	for _, id := range st.order {
		if s, ok := st.state[id]; ok {
			out = append(out, s)
		}
	}
	return out
}

// Stats returns the persistence counters.
func (st *Store) Stats() Stats {
	st.mu.Lock()
	walRecords := int64(st.walOps)
	torn := st.tornLog
	st.mu.Unlock()
	return Stats{
		WalAppends:  st.walAppends.Load(),
		Snapshots:   st.snapshots.Load(),
		ReplayedOps: st.replayedOps.Load(),
		Compactions: st.compactions.Load(),
		CompactErrs: st.compactErrs.Load(),
		WalRecords:  walRecords,
		TornTail:    torn,
	}
}

// Close waits out any scheduled compaction, then flushes and closes
// the WAL. The store must not be used after.
func (st *Store) Close() error {
	st.compactWG.Wait()
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return nil
	}
	st.closed = true
	if err := st.wal.Sync(); err != nil {
		st.wal.Close()
		return err
	}
	return st.wal.Close()
}

// --- logging --------------------------------------------------------------

// LogRegister journals a registration. The database and FD set are
// embedded as a full codec payload, so replay needs no other files.
func (st *Store) LogRegister(id, name string, created time.Time, d *rel.Database, sigma *fd.Set) error {
	return st.append(record{kind: opRegister, id: id, name: name, created: created.UnixNano(), db: d, sigma: sigma})
}

// LogUnregister journals a deregistration (explicit delete or LRU
// eviction — durably they are the same operation).
func (st *Store) LogUnregister(id string) error {
	return st.append(record{kind: opUnregister, id: id})
}

// LogInsertFact journals an incremental fact insertion.
func (st *Store) LogInsertFact(id string, f rel.Fact) error {
	return st.append(record{kind: opInsertFact, id: id, fact: f})
}

// LogDeleteFact journals an incremental fact deletion by the fact's
// index in the instance's (sorted, deterministic) fact order at the
// time of the delete — replay applies operations in order, so the
// index resolves to the same fact.
func (st *Store) LogDeleteFact(id string, index int) error {
	return st.append(record{kind: opDeleteFact, id: id, index: index})
}

// append applies the record to the logical state, frames it onto the
// WAL, and schedules compaction when the WAL has grown past the
// threshold. The state is updated first (under the same lock) so a
// record that cannot apply — an unknown id, say — is rejected before
// it reaches the log; a record that fails to *write* is rolled back,
// so a failure the client saw never persists, in memory or on disk.
func (st *Store) append(rec record) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return fmt.Errorf("store: closed")
	}
	if st.failed {
		return fmt.Errorf("store: WAL failed a previous append; restart to recover")
	}
	undo, err := st.applyWithUndo(rec)
	if err != nil {
		return err
	}
	frame := frameRecord(encodeRecord(rec))
	if _, err := st.wal.Write(frame); err != nil {
		// The file may now hold a partial frame; appending after it
		// would bury every later record behind a torn one that replay
		// cannot pass. Latch the store failed — replay at the next
		// boot truncates the tear.
		undo()
		st.failed = true
		return fmt.Errorf("store: appending %s(%s): %w", rec.kind, rec.id, err)
	}
	if st.opts.Fsync {
		if err := st.wal.Sync(); err != nil {
			// The bytes may or may not be durable; memory reflects
			// "not acknowledged" and replay decides after a crash.
			undo()
			st.failed = true
			return fmt.Errorf("store: syncing %s(%s): %w", rec.kind, rec.id, err)
		}
	}
	st.walOps++
	st.walAppends.Add(1)
	if st.opts.CompactEvery > 0 && st.walOps >= st.opts.CompactEvery {
		st.scheduleCompaction()
	}
	return nil
}

// scheduleCompaction kicks off one background compaction (at most one
// in flight). Compaction takes only the store mutex, so it runs
// outside whatever lock the caller of a Log* method holds — a fact
// mutation inside the server's registry write lock never pays for (or
// blocks the query plane on) a full snapshot.
func (st *Store) scheduleCompaction() {
	if !st.compacting.CompareAndSwap(false, true) {
		return
	}
	st.compactWG.Add(1)
	go func() {
		defer st.compactWG.Done()
		defer st.compacting.Store(false)
		if err := st.Compact(); err != nil {
			// The WAL keeps absorbing appends; replay just has more to
			// do at the next boot. Surface through the stats.
			st.compactErrs.Add(1)
		}
	}()
}

// applyWithUndo is apply plus a closure restoring the prior state,
// used to roll a mutation back when its WAL write fails. The undo
// closures restore pointers into immutable values (databases are
// copy-on-write), so they are exact, not best-effort.
func (st *Store) applyWithUndo(rec record) (func(), error) {
	switch rec.kind {
	case opRegister:
		prev, had := st.state[rec.id]
		undo := func() {
			delete(st.state, rec.id)
			st.removeFromOrder(rec.id)
			if had {
				st.state[rec.id] = prev
				st.order = append(st.order, rec.id)
			}
		}
		return undo, st.apply(rec)
	case opUnregister:
		prev, had := st.state[rec.id]
		pos := -1
		for i, id := range st.order {
			if id == rec.id {
				pos = i
				break
			}
		}
		undo := func() {
			if !had {
				return
			}
			st.state[rec.id] = prev
			if pos >= 0 && pos <= len(st.order) {
				st.order = append(st.order[:pos], append([]string{rec.id}, st.order[pos:]...)...)
			} else {
				st.order = append(st.order, rec.id)
			}
		}
		return undo, st.apply(rec)
	case opInsertFact, opDeleteFact:
		s, ok := st.state[rec.id]
		if !ok {
			return func() {}, st.apply(rec) // apply will report the error
		}
		prevDB := s.DB
		return func() { s.DB = prevDB }, st.apply(rec)
	default:
		return func() {}, st.apply(rec)
	}
}

// apply folds one record into the logical state.
func (st *Store) apply(rec record) error {
	switch rec.kind {
	case opRegister:
		if _, dup := st.state[rec.id]; dup {
			// Replay after id reuse (unregister + re-register across a
			// compaction boundary can interleave); last write wins.
			st.removeFromOrder(rec.id)
		}
		st.state[rec.id] = &InstanceState{
			ID:      rec.id,
			Name:    rec.name,
			Created: time.Unix(0, rec.created).UTC(),
			DB:      rec.db,
			Sigma:   rec.sigma,
		}
		st.order = append(st.order, rec.id)
	case opUnregister:
		if _, ok := st.state[rec.id]; !ok {
			return fmt.Errorf("store: unregister of unknown instance %q", rec.id)
		}
		delete(st.state, rec.id)
		st.removeFromOrder(rec.id)
	case opInsertFact:
		s, ok := st.state[rec.id]
		if !ok {
			return fmt.Errorf("store: insert-fact into unknown instance %q", rec.id)
		}
		nd, _, fresh := s.DB.Insert(rec.fact)
		if !fresh {
			return fmt.Errorf("store: insert-fact duplicate %v in %q", rec.fact, rec.id)
		}
		s.DB = nd
	case opDeleteFact:
		s, ok := st.state[rec.id]
		if !ok {
			return fmt.Errorf("store: delete-fact from unknown instance %q", rec.id)
		}
		if rec.index < 0 || rec.index >= s.DB.Len() {
			return fmt.Errorf("store: delete-fact index %d out of range for %q (%d facts)", rec.index, rec.id, s.DB.Len())
		}
		s.DB = s.DB.Remove(rec.index)
	default:
		return fmt.Errorf("store: unknown record kind %d", rec.kind)
	}
	return nil
}

func (st *Store) removeFromOrder(id string) {
	for i, v := range st.order {
		if v == id {
			st.order = append(st.order[:i], st.order[i+1:]...)
			return
		}
	}
}

// --- snapshot + compaction ------------------------------------------------

// Compact folds the current state into a fresh snapshot and truncates
// the WAL. Safe to call at any time; a crash during compaction is
// harmless because the snapshot is replaced atomically (temp file +
// rename) and the WAL is truncated only after the rename.
func (st *Store) Compact() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return fmt.Errorf("store: closed")
	}
	return st.compactLocked()
}

func (st *Store) compactLocked() error {
	if err := st.writeSnapshotLocked(); err != nil {
		return err
	}
	if err := st.wal.Truncate(0); err != nil {
		return fmt.Errorf("store: truncating WAL after snapshot: %w", err)
	}
	if _, err := st.wal.Seek(0, 0); err != nil {
		return err
	}
	st.walOps = 0
	st.compactions.Add(1)
	return nil
}

// writeSnapshotLocked serialises the full state:
//
//	magic "OCQS" | uvarint version | uvarint count |
//	per instance: id, name, created, instance payload |
//	uint32 LE IEEE-CRC32 of everything before it
func (st *Store) writeSnapshotLocked() error {
	var b bytes.Buffer
	b.Write(snapshotMagic)
	putUvarint(&b, codecVersion)
	ids := st.order // registration order, deterministic
	putUvarint(&b, uint64(len(ids)))
	for _, id := range ids {
		s := st.state[id]
		putString(&b, s.ID)
		putString(&b, s.Name)
		putUvarint(&b, uint64(s.Created.UnixNano()))
		encodeInstancePayload(&b, s.DB, s.Sigma)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(b.Bytes()))
	b.Write(crc[:])

	tmp := filepath.Join(st.opts.Dir, snapshotFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating snapshot temp file: %w", err)
	}
	if _, err := f.Write(b.Bytes()); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(st.opts.Dir, snapshotFile)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: installing snapshot: %w", err)
	}
	st.snapshots.Add(1)
	return nil
}

// loadSnapshot reads the snapshot file into the state map; a missing
// file is an empty store. A corrupt snapshot is a hard error — unlike
// the WAL tail, the snapshot is written atomically, so damage means
// operator-level trouble (disk fault), not a crash signature.
func (st *Store) loadSnapshot() error {
	raw, err := os.ReadFile(filepath.Join(st.opts.Dir, snapshotFile))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: reading snapshot: %w", err)
	}
	if len(raw) < len(snapshotMagic)+4 || !bytes.Equal(raw[:len(snapshotMagic)], snapshotMagic) {
		return fmt.Errorf("store: snapshot has bad magic")
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return fmt.Errorf("store: snapshot checksum mismatch")
	}
	rd := reader{bytes.NewReader(body[len(snapshotMagic):])}
	v, err := rd.uvarint()
	if err != nil {
		return err
	}
	if v != codecVersion {
		return fmt.Errorf("store: snapshot codec version %d not supported (have %d)", v, codecVersion)
	}
	n, err := rd.count("instance", 1<<20)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		id, err := rd.string_()
		if err != nil {
			return fmt.Errorf("store: snapshot instance id: %w", err)
		}
		name, err := rd.string_()
		if err != nil {
			return err
		}
		created, err := rd.uvarint()
		if err != nil {
			return err
		}
		db, sigma, err := decodeInstancePayload(rd)
		if err != nil {
			return fmt.Errorf("store: snapshot instance %q: %w", id, err)
		}
		st.state[id] = &InstanceState{
			ID:      id,
			Name:    name,
			Created: time.Unix(0, int64(created)).UTC(),
			DB:      db,
			Sigma:   sigma,
		}
		st.order = append(st.order, id)
	}
	return nil
}
